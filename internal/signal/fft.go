// Package signal implements the signal-processing substrate of SDS/P (paper
// §4.2.2): the discrete Fourier transform, the autocorrelation function, and
// the combined DFT–ACF period estimator of Vlachos et al. that SDS/P adopts.
// It also provides the correlation measures (Pearson, cross-correlation,
// spectral coherence) that the paper explored and rejected in §3.4.
package signal

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. Any length is accepted:
// power-of-two inputs use the iterative radix-2 algorithm and all other
// lengths use Bluestein's chirp-z transform. The input is not modified.
func FFT(x []complex128) []complex128 {
	return dft(x, false)
}

// IFFT returns the inverse discrete Fourier transform of X, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	out := dft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

func dft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		radix2(out, inverse)
		return out
	}
	return bluestein(x, inverse)
}

// radix2 performs an in-place iterative Cooley-Tukey FFT. len(x) must be a
// power of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, which is in
// turn computed with power-of-two FFTs.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w_k = exp(sign * i*pi*k^2/n).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// Reduce k^2 mod 2n to keep the angle argument small.
		k2 := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(k2)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// FFTReal transforms a real series.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// Periodogram returns the power spectral density estimate |X_k|^2 / N for
// k = 0..N/2 of the (demeaned) real series x.
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v-mean, 0)
	}
	X := FFT(cx)
	out := make([]float64, n/2+1)
	for k := range out {
		re, im := real(X[k]), imag(X[k])
		out[k] = (re*re + im*im) / float64(n)
	}
	return out
}

// checkLengths validates that two series have equal, nonzero lengths.
func checkLengths(op string, a, b []float64) error {
	if len(a) == 0 || len(a) != len(b) {
		return fmt.Errorf("signal: %s requires equal nonzero lengths, got %d and %d", op, len(a), len(b))
	}
	return nil
}
