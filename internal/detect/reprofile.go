package detect

import (
	"fmt"

	"github.com/memdos/sds/internal/pcm"
)

// Reprofiler implements the re-profiling workflow the paper sketches in its
// discussion (§6): applications may legitimately change behaviour (daily
// load patterns, new input data), which makes a Stage-1 profile stale and
// turns SDS's boundary violations into persistent false alarms. The paper
// proposes letting tenants request re-profiling; Reprofiler provides that
// operation without a detection gap:
//
//   - it continuously buffers the most recent profiling window of samples
//     while forwarding every sample to the active detector, and
//   - Reprofile() rebuilds the profile from that buffer — which the
//     operator asserts is attack-free, exactly like the original Stage 1 —
//     and swaps in a fresh detector atomically.
//
// StaleSuspected reports the heuristic the provider would alert the tenant
// on: an alarm that has persisted far longer than attacks are expected to
// survive mitigation.
type Reprofiler struct {
	cfg Config
	app string

	det *SDS

	buf      []pcm.Sample // ring of the most recent window
	pos      int
	filled   bool
	lastSeen float64

	// history holds the alarms of every detector generation retired by
	// Reprofile(). Alarm history must survive the swap: consumers track
	// emission progress as an index into Alarms() (the server's
	// emitted-count poll), so a swap that dropped old alarms would make
	// AlarmCount() regress below the consumer's index — suppressing every
	// later rising edge, or slicing out of range.
	history      []Alarm
	alarmedSince float64 // virtual time the current alarm started; -1 if none
	reprofiles   int
}

// NewReprofiler wraps a combined SDS detector built from the initial
// Stage-1 profile. bufferSeconds is the length of the rolling sample window
// a Reprofile() call rebuilds from; it must be long enough for BuildProfile
// (a few hundred seconds at T_PCM=0.01).
func NewReprofiler(app string, initial Profile, cfg Config, bufferSeconds float64) (*Reprofiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := pcm.SampleCount(bufferSeconds, cfg.TPCM)
	const minWindows = 20
	if need := cfg.W + (minWindows-1)*cfg.DW; n < need {
		return nil, fmt.Errorf("detect: reprofile buffer of %v s holds %d samples; need ≥ %d", bufferSeconds, n, need)
	}
	det, err := NewSDS(initial, cfg)
	if err != nil {
		return nil, err
	}
	return &Reprofiler{
		cfg:          cfg,
		app:          app,
		det:          det,
		buf:          make([]pcm.Sample, n),
		alarmedSince: -1,
	}, nil
}

var _ Detector = (*Reprofiler)(nil)

// Name implements Detector.
func (r *Reprofiler) Name() string { return r.det.Name() }

// Observe implements Detector.
func (r *Reprofiler) Observe(s pcm.Sample) {
	r.buf[r.pos] = s
	r.pos = (r.pos + 1) % len(r.buf)
	if r.pos == 0 {
		r.filled = true
	}
	r.lastSeen = s.T
	r.det.Observe(s)
	if r.det.Alarmed() {
		if r.alarmedSince < 0 {
			r.alarmedSince = s.T
		}
	} else {
		r.alarmedSince = -1
	}
}

// Alarmed implements Detector.
func (r *Reprofiler) Alarmed() bool { return r.det.Alarmed() }

// Alarms implements Detector: every alarm raised across all detector
// generations, retired ones included, in rising order.
func (r *Reprofiler) Alarms() []Alarm {
	cur := r.det.Alarms()
	if len(r.history) == 0 {
		return cur
	}
	out := make([]Alarm, 0, len(r.history)+len(cur))
	out = append(out, r.history...)
	return append(out, cur...)
}

// AlarmCount implements AlarmCounter. It is monotone across Reprofile()
// calls: retired generations keep contributing their alarms.
func (r *Reprofiler) AlarmCount() int { return len(r.history) + alarmCount(r.det) }

// Reprofiles returns how many times the profile has been rebuilt.
func (r *Reprofiler) Reprofiles() int { return r.reprofiles }

// Profile returns the profile of the active detector.
func (r *Reprofiler) Profile() Profile { return r.det.Boundary().Profile() }

// StaleSuspected reports whether the current alarm has persisted for at
// least the given duration — the signal a provider would surface to the
// tenant as "either you are under a very long attack, or your application
// changed and needs re-profiling" (§6).
func (r *Reprofiler) StaleSuspected(persistSeconds float64) bool {
	return r.alarmedSince >= 0 && r.lastSeen-r.alarmedSince >= persistSeconds
}

// Reprofile rebuilds the Stage-1 profile from the buffered window and swaps
// in a fresh detector. The caller (tenant/operator) asserts the buffered
// window is attack-free, exactly as for the original profiling run. It
// fails if the buffer has not filled yet.
func (r *Reprofiler) Reprofile() (Profile, error) {
	if !r.filled {
		return Profile{}, fmt.Errorf("detect: reprofile buffer not full yet (%d/%d samples)", r.pos, len(r.buf))
	}
	window := make([]pcm.Sample, len(r.buf))
	copy(window, r.buf[r.pos:])
	copy(window[len(r.buf)-r.pos:], r.buf[:r.pos])

	prof, err := BuildProfile(r.app, window, r.cfg)
	if err != nil {
		return Profile{}, err
	}
	det, err := NewSDS(prof, r.cfg)
	if err != nil {
		return Profile{}, err
	}
	// Retire the old generation's alarms into the history before the swap
	// (Alarms() already hands back a copy, safe to keep).
	r.history = append(r.history, r.det.Alarms()...)
	r.det = det
	r.alarmedSince = -1
	r.reprofiles++
	return prof, nil
}
