// Package report is the reproduction's regression harness: it re-runs the
// experiments and checks every headline claim of the paper against the
// measured results, so that any model or detector change that silently
// breaks the reproduction is caught by a single command (cmd/report) or
// test run.
package report

import (
	"fmt"
	"io"
	"sort"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/experiment"
	"github.com/memdos/sds/internal/workload"
)

// Check is one verified claim.
type Check struct {
	// ID ties the check to the paper artifact (e.g. "fig10/sds-range").
	ID string
	// Claim is the paper statement being verified.
	Claim string
	// Pass reports whether the measured results support the claim.
	Pass bool
	// Detail carries the measured numbers.
	Detail string
}

// Options sizes the verification run.
type Options struct {
	// Runs per accuracy cell (default 8; the paper uses 20).
	Runs int
	// Apps to evaluate (default: all ten).
	Apps []string
	// Seed for the whole verification.
	Seed uint64
	// SkipMicro skips the micro-architectural checks (they dominate the
	// runtime of small verification runs).
	SkipMicro bool
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 8
	}
	if len(o.Apps) == 0 {
		o.Apps = workload.AppNames()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Run executes the verification and returns every check. Progress notes go
// to w (may be nil).
func Run(opts Options, w io.Writer) ([]Check, error) {
	o := opts.withDefaults()
	logf := func(format string, args ...any) {
		if w != nil {
			fmt.Fprintf(w, format+"\n", args...)
		}
	}
	cfg := experiment.DefaultConfig()
	cfg.Runs = o.Runs
	cfg.Seed = o.Seed

	var checks []Check
	add := func(id, claim string, pass bool, detail string) {
		checks = append(checks, Check{ID: id, Claim: claim, Pass: pass, Detail: detail})
	}

	// Table 1 / Eq. 4.
	hc, err := detect.ChebyshevHC(1.125, 0.999)
	if err != nil {
		return nil, err
	}
	add("table1/chebyshev", "k=1.125 at 99.9% confidence yields H_C=30",
		hc == 30, fmt.Sprintf("H_C=%d", hc))

	// §3.2 false alarms.
	logf("running §3.2 KStest false-alarm study...")
	fa, err := cfg.KStestFalseAlarms(o.Apps, 20)
	if err != nil {
		return nil, err
	}
	worstDiff, worstApp := 0.0, ""
	for _, r := range fa {
		paper, ok := experiment.PaperKStestFalseAlarmRate[r.App]
		if !ok {
			continue
		}
		diff := abs(r.Rate - paper)
		if diff > worstDiff {
			worstDiff, worstApp = diff, r.App
		}
	}
	add("sec3.2/falsealarm-calibration",
		"per-app KStest false-alarm rates match the paper within ±20 points (20-interval noise)",
		worstDiff <= 0.20, fmt.Sprintf("worst |measured−paper| = %.0f points (%s)", 100*worstDiff, worstApp))

	// Figs. 2–6 observations.
	logf("running attack-impact traces...")
	dropOK, gainOK := true, true
	detail26 := ""
	for _, app := range o.Apps {
		trB, err := cfg.AttackTrace(app, attack.BusLock, 120)
		if err != nil {
			return nil, err
		}
		trC, err := cfg.AttackTrace(app, attack.Cleanse, 120)
		if err != nil {
			return nil, err
		}
		if trB.MeanAfter > 0.7*trB.MeanBefore {
			dropOK = false
			detail26 += fmt.Sprintf("%s: weak access drop; ", app)
		}
		if trC.MeanAfter < 2*trC.MeanBefore {
			gainOK = false
			detail26 += fmt.Sprintf("%s: weak miss gain; ", app)
		}
	}
	add("figs2-6/observation1a", "AccessNum drops ≥30% under bus locking for every application", dropOK, detail26)
	add("figs2-6/observation1b", "MissNum at least doubles under LLC cleansing for every application", gainOK, detail26)

	stretchOK := true
	detailStretch := ""
	for _, app := range workload.PeriodicApps() {
		if !contains(o.Apps, app) {
			continue
		}
		tr, err := cfg.AttackTrace(app, attack.BusLock, 120)
		if err != nil {
			return nil, err
		}
		detailStretch += fmt.Sprintf("%s: %d→%d; ", app, tr.PeriodBefore, tr.PeriodAfter)
		if tr.PeriodBefore == 0 || float64(tr.PeriodAfter) < 1.15*float64(tr.PeriodBefore) {
			stretchOK = false
		}
	}
	add("figs2-6/observation2", "periodic applications' period stretches ≥15% under attack", stretchOK, detailStretch)

	// Fig. 8 normal period.
	if contains(o.Apps, workload.FaceNet) {
		fig8, err := cfg.SDSPExample(workload.FaceNet, 300)
		if err != nil {
			return nil, err
		}
		add("fig8/period", "FaceNet MA-series period ≈ 17",
			fig8.NormalPeriod >= 15 && fig8.NormalPeriod <= 19,
			fmt.Sprintf("period=%d", fig8.NormalPeriod))
	}

	// Figs. 9–11 accuracy.
	logf("running accuracy evaluation (%d runs/cell)...", cfg.Runs)
	cells, err := cfg.Accuracy(o.Apps)
	if err != nil {
		return nil, err
	}
	checks = append(checks, accuracyChecks(cells)...)

	// Fig. 12 overhead.
	logf("running overhead evaluation...")
	over, err := cfg.Overhead(o.Apps)
	if err != nil {
		return nil, err
	}
	checks = append(checks, overheadChecks(over)...)

	// §3.4 exploration (negative result).
	logf("running exploration study...")
	expl, err := cfg.ExplorationStudy(o.Apps)
	if err != nil {
		return nil, err
	}
	explOK, explDetail := true, ""
	for _, r := range expl {
		for _, approach := range experiment.ExplorationApproaches() {
			sep, err := r.Separation(approach)
			if err != nil {
				return nil, err
			}
			if sep > 0.45 {
				explOK = false
				explDetail += fmt.Sprintf("%s/%v/%s sep=%.2f; ", r.App, r.Attack, approach, sep)
			}
		}
	}
	add("sec3.4/negative-result", "no correlation approach separates attack from no-attack", explOK, explDetail)

	// §4.2.2 estimator ablation.
	abl, err := cfg.PeriodEstimatorAblation(300)
	if err != nil {
		return nil, err
	}
	byName := map[string]experiment.PeriodEstimatorResult{}
	for _, r := range abl {
		byName[r.Method] = r
	}
	add("sec4.2.2/ablation",
		"combined DFT–ACF beats single methods: fewer ACF period multiples, fewer DFT false detections",
		byName["ACF-only"].MultipleErrors > byName["DFT-ACF"].MultipleErrors &&
			byName["DFT-only"].FalseDetections > byName["DFT-ACF"].FalseDetections,
		fmt.Sprintf("correct: dft=%.0f%% acf=%.0f%% combined=%.0f%%",
			100*byName["DFT-only"].Correct, 100*byName["ACF-only"].Correct, 100*byName["DFT-ACF"].Correct))

	if !o.SkipMicro {
		// §2.3 defense study.
		logf("running defense study (microsim)...")
		def, err := cfg.DefenseStudy()
		if err != nil {
			return nil, err
		}
		checks = append(checks, defenseChecks(def)...)

		// Migration study.
		logf("running migration study...")
		study := experiment.MigrationStudyConfig{Seconds: 900}
		none, err := cfg.MigrationStudy(study, experiment.PolicyNone, "")
		if err != nil {
			return nil, err
		}
		withSDS, err := cfg.MigrationStudy(study, experiment.PolicyOnAlarm, experiment.SchemeSDS)
		if err != nil {
			return nil, err
		}
		add("intro/migration",
			"migration-on-alarm bounds attack exposure but the attacker keeps returning",
			withSDS.UnderAttackFrac < none.UnderAttackFrac && withSDS.UnderAttackFrac > 0 && withSDS.Migrations >= 2,
			fmt.Sprintf("exposure none=%.0f%% sds=%.0f%%, migrations=%d",
				100*none.UnderAttackFrac, 100*withSDS.UnderAttackFrac, withSDS.Migrations))

		// End-to-end microsim detection.
		logf("running end-to-end microsim detection...")
		detected, total := 0, 0
		for _, app := range o.Apps {
			for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
				r, err := experiment.MicroConfig{App: app, AttackKind: kind, Seed: o.Seed}.MicroDetectionRun()
				if err != nil {
					return nil, err
				}
				total++
				if r.Detected {
					detected++
				}
			}
		}
		add("microsim/end-to-end",
			"SDS/B detects both attacks from simulated hardware counters for ≥90% of applications",
			float64(detected) >= 0.9*float64(total),
			fmt.Sprintf("%d/%d cells detected", detected, total))
	}

	sort.SliceStable(checks, func(i, j int) bool { return checks[i].ID < checks[j].ID })
	return checks, nil
}

// accuracyChecks verifies the Fig. 9–11 claims over the evaluated cells.
func accuracyChecks(cells []experiment.AccuracyCell) []Check {
	var (
		sdsRecallMin                  = 101.0
		sdsSpecMin, sdsSpecMax        = 101.0, -1.0
		ksSpecMin, ksSpecMax          = 101.0, -1.0
		sdsDelayMin, sdsDelayMax      = 1e9, -1.0
		ksDelayMedSum, sdsDelayMedSum float64
		ksCells, sdsCells             int
	)
	for _, c := range cells {
		switch c.Scheme {
		case experiment.SchemeSDS:
			sdsCells++
			sdsRecallMin = min(sdsRecallMin, c.Recall.Median)
			sdsSpecMin = min(sdsSpecMin, c.Specificity.Median)
			sdsSpecMax = max(sdsSpecMax, c.Specificity.Median)
			sdsDelayMin = min(sdsDelayMin, c.Delay.Median)
			sdsDelayMax = max(sdsDelayMax, c.Delay.Median)
			sdsDelayMedSum += c.Delay.Median
		case experiment.SchemeKSTest:
			ksCells++
			ksSpecMin = min(ksSpecMin, c.Specificity.Median)
			ksSpecMax = max(ksSpecMax, c.Specificity.Median)
			ksDelayMedSum += c.Delay.Median
		}
	}
	var out []Check
	out = append(out, Check{
		ID:     "fig9/recall",
		Claim:  "SDS median recall is 100% for every application and attack",
		Pass:   sdsRecallMin >= 99.5,
		Detail: fmt.Sprintf("min SDS recall median = %.1f%%", sdsRecallMin),
	})
	out = append(out, Check{
		ID:     "fig10/sds-range",
		Claim:  "SDS specificity medians lie in the paper's 90–100% band",
		Pass:   sdsSpecMin >= 90,
		Detail: fmt.Sprintf("SDS specificity medians span [%.0f, %.0f]%%", sdsSpecMin, sdsSpecMax),
	})
	out = append(out, Check{
		ID:     "fig10/kstest-range",
		Claim:  "KStest specificity medians fall well below SDS (paper: 30–80%)",
		Pass:   ksSpecMax <= 90 && ksSpecMin < sdsSpecMin,
		Detail: fmt.Sprintf("KStest specificity medians span [%.0f, %.0f]%%", ksSpecMin, ksSpecMax),
	})
	out = append(out, Check{
		ID:     "fig11/sds-range",
		Claim:  "SDS detection-delay medians lie in the paper's 15–30 s band",
		Pass:   sdsDelayMin >= 13 && sdsDelayMax <= 32,
		Detail: fmt.Sprintf("SDS delay medians span [%.1f, %.1f] s", sdsDelayMin, sdsDelayMax),
	})
	if sdsCells > 0 && ksCells > 0 {
		sdsAvg := sdsDelayMedSum / float64(sdsCells)
		ksAvg := ksDelayMedSum / float64(ksCells)
		out = append(out, Check{
			ID:     "fig11/ordering",
			Claim:  "SDS detects faster than KStest on average",
			Pass:   sdsAvg < ksAvg,
			Detail: fmt.Sprintf("mean delay medians: SDS %.1f s vs KStest %.1f s", sdsAvg, ksAvg),
		})
	}
	return out
}

// overheadChecks verifies the Fig. 12 claims.
func overheadChecks(cells []experiment.OverheadCell) []Check {
	sdsMin, sdsMax := 10.0, -1.0
	ksMin, ksMax := 10.0, -1.0
	for _, c := range cells {
		switch c.Scheme {
		case experiment.SchemeSDS:
			sdsMin = min(sdsMin, c.Normalized.Median)
			sdsMax = max(sdsMax, c.Normalized.Median)
		case experiment.SchemeKSTest:
			ksMin = min(ksMin, c.Normalized.Median)
			ksMax = max(ksMax, c.Normalized.Median)
		}
	}
	return []Check{
		{
			ID:     "fig12/sds",
			Claim:  "SDS overhead ≈ 1–2% (paper: 1.01–1.02×)",
			Pass:   sdsMin >= 1.0 && sdsMax <= 1.03,
			Detail: fmt.Sprintf("SDS normalized exec time spans [%.3f, %.3f]", sdsMin, sdsMax),
		},
		{
			ID:     "fig12/kstest",
			Claim:  "KStest overhead ≈ 3–8% (paper: 1.03–1.08×) and above SDS",
			Pass:   ksMin >= 1.03 && ksMax <= 1.09 && ksMin > sdsMax,
			Detail: fmt.Sprintf("KStest normalized exec time spans [%.3f, %.3f]", ksMin, ksMax),
		},
	}
}

// defenseChecks verifies the §2.3 claims.
func defenseChecks(results []experiment.DefenseResult) []Check {
	byKey := map[string]experiment.DefenseResult{}
	for _, r := range results {
		key := r.Attack.String()
		if r.Partitioned {
			key += "/part"
		}
		byKey[key] = r
	}
	clean, cleanPart := byKey["llc-cleansing"], byKey["llc-cleansing/part"]
	bus, busPart := byKey["bus-locking"], byKey["bus-locking/part"]
	return []Check{
		{
			ID:     "sec2.3/partition-vs-cleansing",
			Claim:  "way partitioning suppresses LLC cleansing",
			Pass:   clean.MissRate > 5*cleanPart.MissRate+0.01,
			Detail: fmt.Sprintf("victim miss rate %.4f → %.4f with partitioning", clean.MissRate, cleanPart.MissRate),
		},
		{
			ID:     "sec2.3/partition-vs-buslock",
			Claim:  "way partitioning cannot defeat bus locking",
			Pass:   bus.ProgressRatio <= 0.45 && busPart.ProgressRatio <= 0.45,
			Detail: fmt.Sprintf("victim progress %.0f%% unpartitioned, %.0f%% partitioned", 100*bus.ProgressRatio, 100*busPart.ProgressRatio),
		},
	}
}

// Render writes the checks as an aligned text report and returns the number
// of failures.
func Render(w io.Writer, checks []Check) (failures int, err error) {
	tb := experiment.Table{
		Title:  "Reproduction verification report",
		Header: []string{"check", "verdict", "claim", "measured"},
	}
	for _, c := range checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
			failures++
		}
		tb.AddRow(c.ID, verdict, c.Claim, c.Detail)
	}
	if err := tb.Render(w); err != nil {
		return failures, err
	}
	fmt.Fprintf(w, "\n%d/%d checks passed\n", len(checks)-failures, len(checks))
	return failures, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}
