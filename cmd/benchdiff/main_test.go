package main

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

var gate = regexp.MustCompile(defaultNSMatch)

// testGates returns the default thresholds main wires up from flags.
func testGates() gates {
	return gates{nsTol: 0.10, nsMinIters: 50, rateTol: 0.10, allocTol: 1e-4, driftMin: 8, nsGated: gate}
}

// TestDiffGates: the two gate rules — any allocs/op increase fails, ns/op
// regressions fail only past the tolerance and only on gated names.
func TestDiffGates(t *testing.T) {
	oldRes := map[string]Result{
		"BenchmarkSDSObserve":          {NsPerOp: 100, AllocsPerOp: 0, Iterations: 1000},
		"BenchmarkFFT1024":             {NsPerOp: 5000, AllocsPerOp: 0, Iterations: 1000},
		"BenchmarkFig9Recall":          {NsPerOp: 1e9, AllocsPerOp: 1000, Iterations: 1000},
		"BenchmarkGoneNextTrack":       {NsPerOp: 10, AllocsPerOp: 0, Iterations: 1000},
		"BenchmarkSessionObserveBatch": {NsPerOp: 20000, AllocsPerOp: 0, Iterations: 1000},
	}

	t.Run("clean", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkSDSObserve":          {NsPerOp: 105, AllocsPerOp: 0, Iterations: 1000},  // +5% < tol
			"BenchmarkFFT1024":             {NsPerOp: 4000, AllocsPerOp: 0, Iterations: 1000}, // faster
			"BenchmarkFig9Recall":          {NsPerOp: 5e9, AllocsPerOp: 900, Iterations: 1000},
			"BenchmarkSessionObserveBatch": {NsPerOp: 21000, AllocsPerOp: 0, Iterations: 1000},
			"BenchmarkBrandNew":            {NsPerOp: 1, AllocsPerOp: 99, Iterations: 1000},
		}
		compared, _, violations := diff(oldRes, newRes, testGates())
		if compared != 4 {
			t.Errorf("compared %d benchmarks, want the 4 common ones", compared)
		}
		if len(violations) != 0 {
			t.Errorf("clean trajectory flagged: %v", violations)
		}
	})

	t.Run("ns regression on gated benchmark", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkSDSObserve": {NsPerOp: 150, AllocsPerOp: 0, Iterations: 1000},
		}
		_, _, violations := diff(oldRes, newRes, testGates())
		if len(violations) != 1 || !strings.Contains(violations[0].msg, "ns/op") {
			t.Errorf("+50%% on a gated hot path not flagged: %v", violations)
		}
	})

	t.Run("ns regression on ungated benchmark passes", func(t *testing.T) {
		// Figure benchmarks are wall-clock noisy end-to-end sims; ns/op is
		// not gated for them (allocs/op still is).
		newRes := map[string]Result{
			"BenchmarkFig9Recall": {NsPerOp: 9e9, AllocsPerOp: 1000, Iterations: 1000},
		}
		if _, _, violations := diff(oldRes, newRes, testGates()); len(violations) != 0 {
			t.Errorf("ungated benchmark's ns/op flagged: %v", violations)
		}
	})

	t.Run("noise baseline is not ns-gated", func(t *testing.T) {
		// A baseline recorded over 10 iterations (the -benchtime=10x era)
		// cannot anchor a wall-clock gate; allocs/op still applies.
		old := map[string]Result{
			"BenchmarkSDSObserve": {NsPerOp: 30, AllocsPerOp: 0, Iterations: 10},
		}
		newRes := map[string]Result{
			"BenchmarkSDSObserve": {NsPerOp: 70, AllocsPerOp: 0, Iterations: 1000000},
		}
		if _, _, violations := diff(old, newRes, testGates()); len(violations) != 0 {
			t.Errorf("10-iteration baseline anchored an ns gate: %v", violations)
		}
		newRes["BenchmarkSDSObserve"] = Result{NsPerOp: 70, AllocsPerOp: 1, Iterations: 1000000}
		if _, _, violations := diff(old, newRes, testGates()); len(violations) != 1 {
			t.Errorf("alloc gate must still apply to noise baselines: %v", violations)
		}
	})

	t.Run("alloc jitter inside tolerance passes only at sim scale", func(t *testing.T) {
		// -alloc-tol (0.01%) absorbs scheduler-dependent jitter in the
		// whole-datacenter sims (~634k allocs/op) but rounds to zero extra
		// allocations on every hot path, which still fails exactly.
		old := map[string]Result{
			"BenchmarkCloud1000x8x900Window": {NsPerOp: 1e10, AllocsPerOp: 634218, Iterations: 3},
		}
		newRes := map[string]Result{
			"BenchmarkCloud1000x8x900Window": {NsPerOp: 1e10, AllocsPerOp: 634220, Iterations: 3},
		}
		if _, _, violations := diff(old, newRes, testGates()); len(violations) != 0 {
			t.Errorf("+2 allocs on a 634k-alloc sim flagged: %v", violations)
		}
		newRes["BenchmarkCloud1000x8x900Window"] = Result{NsPerOp: 1e10, AllocsPerOp: 634300, Iterations: 3}
		if _, _, violations := diff(old, newRes, testGates()); len(violations) != 1 {
			t.Errorf("+82 allocs (past tolerance) not flagged: %v", violations)
		}
	})

	t.Run("alloc increase fails anywhere", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkFig9Recall":          {NsPerOp: 1e9, AllocsPerOp: 1001, Iterations: 1000},
			"BenchmarkSessionObserveBatch": {NsPerOp: 20000, AllocsPerOp: 1, Iterations: 1000},
		}
		_, _, violations := diff(oldRes, newRes, testGates())
		if len(violations) != 2 {
			t.Fatalf("want 2 alloc violations, got %v", violations)
		}
		for _, v := range violations {
			if !strings.Contains(v.msg, "allocs/op") {
				t.Errorf("violation %q is not the alloc gate", v)
			}
		}
	})
}

// TestDiffRateGate: samples/sec (the sdsload scale-run unit) may not drop
// past -rate-tol, but only when the baseline recorded the unit — older
// trajectories without it must not trip the gate.
func TestDiffRateGate(t *testing.T) {
	oldRes := map[string]Result{
		"BenchmarkServerIngestBin10kVMs": {SamplesPerSec: 10e6, Iterations: 1},
	}

	t.Run("drop past tolerance fails", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkServerIngestBin10kVMs": {SamplesPerSec: 8.5e6, Iterations: 1}, // -15%
		}
		_, _, violations := diff(oldRes, newRes, testGates())
		if len(violations) != 1 || !strings.Contains(violations[0].msg, "samples/sec") {
			t.Fatalf("want one samples/sec violation, got %v", violations)
		}
	})

	t.Run("drop inside tolerance passes", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkServerIngestBin10kVMs": {SamplesPerSec: 9.5e6, Iterations: 1}, // -5%
		}
		if _, _, violations := diff(oldRes, newRes, testGates()); len(violations) != 0 {
			t.Errorf("within-tolerance throughput drop flagged: %v", violations)
		}
	})

	t.Run("improvement passes", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkServerIngestBin10kVMs": {SamplesPerSec: 20e6, Iterations: 1},
		}
		if _, _, violations := diff(oldRes, newRes, testGates()); len(violations) != 0 {
			t.Errorf("throughput improvement flagged: %v", violations)
		}
	})

	t.Run("baseline without rate is exempt", func(t *testing.T) {
		// A trajectory recorded before the unit existed (ns/op only) must
		// not anchor the rate gate, whatever the candidate records.
		old := map[string]Result{
			"BenchmarkServerIngestBin10kVMs": {NsPerOp: 151, Iterations: 1000},
		}
		newRes := map[string]Result{
			"BenchmarkServerIngestBin10kVMs": {NsPerOp: 151, SamplesPerSec: 1, Iterations: 1000},
		}
		if _, _, violations := diff(old, newRes, testGates()); len(violations) != 0 {
			t.Errorf("missing-baseline rate gated: %v", violations)
		}
	})

	t.Run("candidate that dropped the unit is exempt", func(t *testing.T) {
		// Renaming a scale run away is visible in the comparison count, not
		// a spurious division by zero here.
		newRes := map[string]Result{
			"BenchmarkServerIngestBin10kVMs": {NsPerOp: 151, Iterations: 1000},
		}
		if _, _, violations := diff(oldRes, newRes, testGates()); len(violations) != 0 {
			t.Errorf("candidate without rate gated: %v", violations)
		}
	})
}

// TestDefaultGateCoversHotPaths: the default -ns-match must keep the
// benchmarks named by the tracking policy under the wall-clock gate.
func TestDefaultGateCoversHotPaths(t *testing.T) {
	for _, name := range []string{
		"BenchmarkSDSObserve",
		"BenchmarkKSTestObserve",
		"BenchmarkFleetObserveParallel",
		"BenchmarkFFT1024",
		"BenchmarkACFDirect2048",
		"BenchmarkPeriodEstimate34",
		"BenchmarkSessionObserveBatch",
		"BenchmarkServerIngestBin10000VMs",
		"BenchmarkBinReadFrame",
		"BenchmarkCSVReadSample",
	} {
		if !gate.MatchString(name) {
			t.Errorf("default ns gate does not cover %s", name)
		}
	}
	for _, name := range []string{"BenchmarkFig9Recall", "BenchmarkTable1Defaults"} {
		if gate.MatchString(name) {
			t.Errorf("default ns gate covers noisy end-to-end benchmark %s", name)
		}
	}
}

// TestDiffDriftNormalization: wall-clock gates divide out the suite-median
// ns ratio, so recording sessions on a slower (or faster) machine don't
// read as hot-path regressions — while a path that moved against the suite
// median still fails.
func TestDiffDriftNormalization(t *testing.T) {
	// Ten stable pairs: enough for the default driftMin of 8.
	mk := func(scale func(i int) float64) (map[string]Result, map[string]Result) {
		oldRes := make(map[string]Result)
		newRes := make(map[string]Result)
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("BenchmarkSDSObserve%d", i) // all ns-gated
			oldRes[name] = Result{NsPerOp: 1000, Iterations: 1000}
			newRes[name] = Result{NsPerOp: 1000 * scale(i), Iterations: 1000}
		}
		return oldRes, newRes
	}

	t.Run("uniform slowdown is machine drift, not regression", func(t *testing.T) {
		oldRes, newRes := mk(func(int) float64 { return 1.25 })
		_, drift, violations := diff(oldRes, newRes, testGates())
		if drift != 1.25 {
			t.Errorf("drift = %v, want the uniform 1.25 ratio", drift)
		}
		if len(violations) != 0 {
			t.Errorf("uniformly slower machine flagged: %v", violations)
		}
	})

	t.Run("outlier against the drifted suite still fails", func(t *testing.T) {
		oldRes, newRes := mk(func(i int) float64 {
			if i == 0 {
				return 2.0 // genuine regression on top of the drift
			}
			return 1.25
		})
		_, _, violations := diff(oldRes, newRes, testGates())
		if len(violations) != 1 || !strings.Contains(violations[0].msg, "BenchmarkSDSObserve0") {
			t.Fatalf("want exactly the outlier flagged, got %v", violations)
		}
	})

	t.Run("below drift-min the correction stays off", func(t *testing.T) {
		oldRes, newRes := mk(func(int) float64 { return 1.25 })
		g := testGates()
		g.driftMin = 11
		_, drift, violations := diff(oldRes, newRes, g)
		if drift != 1 {
			t.Errorf("drift = %v with only 10 of 11 required pairs", drift)
		}
		if len(violations) != 10 {
			t.Errorf("want all 10 flagged without normalization, got %d", len(violations))
		}
	})

	t.Run("faster machine tightens the gate", func(t *testing.T) {
		// The suite sped up 30%; a path whose wall clock did not move kept
		// pace with nothing — that is a relative regression and must fail.
		oldRes, newRes := mk(func(i int) float64 {
			if i == 0 {
				return 1.0
			}
			return 0.7
		})
		_, _, violations := diff(oldRes, newRes, testGates())
		if len(violations) != 1 || !strings.Contains(violations[0].msg, "BenchmarkSDSObserve0") {
			t.Fatalf("unmoved path on a faster machine not flagged: %v", violations)
		}
	})

	t.Run("rate gate credits drift", func(t *testing.T) {
		oldRes, newRes := mk(func(int) float64 { return 1.25 })
		oldRes["BenchmarkServerIngestBin10kVMs"] = Result{SamplesPerSec: 10e6, Iterations: 1}
		// -20% raw, but the machine itself is 25% slower: drift-adjusted the
		// plane kept (and slightly beat) its throughput.
		newRes["BenchmarkServerIngestBin10kVMs"] = Result{SamplesPerSec: 8e6, Iterations: 1}
		_, _, violations := diff(oldRes, newRes, testGates())
		if len(violations) != 0 {
			t.Errorf("drift-explained throughput drop flagged: %v", violations)
		}
	})
}
