// Command benchjson converts `go test -bench` output into the repository's
// machine-readable benchmark-trajectory format (BENCH_PR*.json): a JSON
// object mapping benchmark name → {ns/op, B/op, allocs/op}. It reads bench
// output from the files named as arguments — stdin when none are given —
// and writes JSON to stdout (or -o FILE):
//
//	go test -run=NONE -bench=. -benchmem -benchtime=10x . | benchjson -o BENCH_PR3.json
//	benchjson -o BENCH_PR6.json bench_output.txt bench_scale.txt
//
// Several inputs merge into one trajectory, so scale-run measurements
// recorded outside `go test` — the sdsload -bench-name lines — land in the
// same file as the microbenchmarks. Repeated measurements of one benchmark
// (`go test -count=N`, or the same name across files) keep the best run
// per metric: minimum ns/op, B/op and allocs/op, maximum samples/sec.
// Interference on a shared host is one-sided — a noisy neighbor only ever
// slows a run down — so the minimum is the robust low-noise estimator, and
// recording it keeps the benchdiff gates from tripping on scheduling
// jitter. Lines that are not benchmark results (log output, ok/PASS lines)
// are ignored; the GOMAXPROCS suffix (-16 etc.) is stripped so trajectories
// compare across machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is the recorded measurement of one benchmark. SamplesPerSec is
// the sdsload scale-run throughput unit (a bigger-is-better rate the
// ns/op gate cannot express losslessly at millions of samples per second).
type Result struct {
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
	Iterations    int64   `json:"iterations"`
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results := make(map[string]Result)
	if flag.NArg() == 0 {
		if err := parse(os.Stdin, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		err = parse(f, results)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines of the form
//
//	BenchmarkName-16    10    38212345 ns/op    1234 B/op    56 allocs/op
//
// from f into results. Go guarantees the name prefix and the "value unit"
// pairs.
func parse(f *os.File, results map[string]Result) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "samples/sec":
				res.SamplesPerSec = v
			}
		}
		results[name] = bestOf(results[name], res)
	}
	return sc.Err()
}

// bestOf merges a repeated measurement into the recorded one, keeping the
// best run per metric (see the package comment). The zero Result (no prior
// measurement) defers to the new one entirely.
func bestOf(old, new Result) Result {
	if old.Iterations == 0 {
		return new
	}
	if new.NsPerOp > 0 && (old.NsPerOp == 0 || new.NsPerOp < old.NsPerOp) {
		old.NsPerOp = new.NsPerOp
	}
	if new.BytesPerOp < old.BytesPerOp {
		old.BytesPerOp = new.BytesPerOp
	}
	if new.AllocsPerOp < old.AllocsPerOp {
		old.AllocsPerOp = new.AllocsPerOp
	}
	if new.SamplesPerSec > old.SamplesPerSec {
		old.SamplesPerSec = new.SamplesPerSec
	}
	if new.Iterations > old.Iterations {
		old.Iterations = new.Iterations
	}
	return old
}
