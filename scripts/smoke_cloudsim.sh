#!/bin/sh
# Smoke-test the event-driven datacenter simulation end to end: build the
# cloudsim CLI, run a small cluster under the no-response baseline and the
# full throttle-migrate loop on matched seeds, and assert the comparison
# table reports a quarantine and positive slowdown recovery. A second run
# with -json must be byte-identical to itself (determinism of the whole
# binary, not just the library).
set -eu

tmp=$(mktemp -d)
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT INT TERM

go build -o "$tmp/cloudsim" ./cmd/cloudsim

"$tmp/cloudsim" -hosts 20 -seconds 600 -runs 2 -attackers 2 \
    -policies none,throttle-migrate >"$tmp/table.txt" || {
    echo "smoke-cloudsim: run failed" >&2
    cat "$tmp/table.txt" >&2
    exit 1
}

grep -q 'throttle-migrate' "$tmp/table.txt" || {
    echo "smoke-cloudsim: policy row missing" >&2
    cat "$tmp/table.txt" >&2
    exit 1
}
# The throttle-migrate row must quarantine at least one attacker and report
# a quarantine-time distribution (column 8 is non-"n/a").
awk '$1 == "throttle-migrate" { if ($7 + 0 < 1 || $8 == "n/a") exit 1; found = 1 }
     END { exit found ? 0 : 1 }' "$tmp/table.txt" || {
    echo "smoke-cloudsim: no quarantine scored under throttle-migrate" >&2
    cat "$tmp/table.txt" >&2
    exit 1
}

"$tmp/cloudsim" -hosts 20 -seconds 600 -runs 2 -attackers 2 \
    -policies throttle-migrate -json >"$tmp/a.json"
"$tmp/cloudsim" -hosts 20 -seconds 600 -runs 2 -attackers 2 \
    -policies throttle-migrate -json >"$tmp/b.json"
cmp -s "$tmp/a.json" "$tmp/b.json" || {
    echo "smoke-cloudsim: JSON output not deterministic across invocations" >&2
    exit 1
}

echo "smoke-cloudsim: ok"
