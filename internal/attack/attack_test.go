package attack

import (
	"math"
	"testing"

	"github.com/memdos/sds/internal/workload"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{None, "none"},
		{BusLock, "bus-locking"},
		{Cleanse, "llc-cleansing"},
		{Kind(42), "attack.Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestScheduleIntensityRamp(t *testing.T) {
	s := Schedule{Kind: BusLock, Start: 300, Ramp: 10}
	tests := []struct {
		t    float64
		want float64
	}{
		{0, 0}, {299.99, 0}, {300, 0}, {305, 0.5}, {310, 1}, {500, 1},
	}
	for _, tt := range tests {
		if got := s.Intensity(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Intensity(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestScheduleZeroRampIsStep(t *testing.T) {
	s := Schedule{Kind: Cleanse, Start: 10}
	if got := s.Intensity(10); got != 1 {
		t.Fatalf("Intensity at start = %v, want 1", got)
	}
}

func TestScheduleStop(t *testing.T) {
	s := Schedule{Kind: BusLock, Start: 10, Ramp: 1, Stop: 20}
	if !s.Active(15) {
		t.Error("inactive mid-attack")
	}
	if s.Active(20) || s.Active(25) {
		t.Error("active after stop")
	}
}

func TestScheduleNone(t *testing.T) {
	s := Schedule{Kind: None, Start: 0}
	if s.Active(100) {
		t.Error("None schedule active")
	}
	if env := s.Env(100, false); env != (workload.Env{}) {
		t.Errorf("None env = %+v", env)
	}
}

func TestScheduleEnvRouting(t *testing.T) {
	bus := Schedule{Kind: BusLock, Start: 0}
	if env := bus.Env(5, false); env.BusLock != 1 || env.Cleanse != 0 {
		t.Errorf("bus env = %+v", env)
	}
	cl := Schedule{Kind: Cleanse, Start: 0}
	if env := cl.Env(5, false); env.Cleanse != 1 || env.BusLock != 0 {
		t.Errorf("cleanse env = %+v", env)
	}
}

func TestScheduleQuiescedSuppressesAttack(t *testing.T) {
	// Execution throttling pauses the attacker too: reference samples are
	// attack-free even mid-attack, as in the KStest baseline's design.
	s := Schedule{Kind: BusLock, Start: 0}
	env := s.Env(5, true)
	if env.BusLock != 0 || !env.Quiesced {
		t.Errorf("quiesced env = %+v", env)
	}
}
