package timeseries

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
)

func TestMovingAverageWindowOneIsIdentity(t *testing.T) {
	r := randx.New(40, 41)
	data := make([]float64, 200)
	for i := range data {
		data[i] = r.Normal(0, 5)
	}
	out, err := MovingAverage(data, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) {
		t.Fatalf("len = %d, want %d", len(out), len(data))
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("W=1 MA differs at %d: %v != %v", i, out[i], data[i])
		}
	}
}

func TestMovingAverageLinearityProperty(t *testing.T) {
	// MA(a·x + b) == a·MA(x) + b.
	r := randx.New(42, 43)
	f := func(aRaw, bRaw int8) bool {
		a := float64(aRaw)/16 + 0.5
		b := float64(bRaw)
		x := make([]float64, 300)
		y := make([]float64, 300)
		for i := range x {
			x[i] = r.Normal(10, 3)
			y[i] = a*x[i] + b
		}
		mx, err1 := MovingAverage(x, 50, 10)
		my, err2 := MovingAverage(y, 50, 10)
		if err1 != nil || err2 != nil || len(mx) != len(my) {
			return false
		}
		for i := range mx {
			if math.Abs(my[i]-(a*mx[i]+b)) > 1e-6*(1+math.Abs(my[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMALinearityProperty(t *testing.T) {
	r := randx.New(44, 45)
	f := func(alphaRaw uint8, aRaw int8) bool {
		alpha := (float64(alphaRaw) + 1) / 256
		a := float64(aRaw)/16 + 0.5
		e1, err1 := NewEWMA(alpha)
		e2, err2 := NewEWMA(alpha)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			x := r.Normal(0, 4)
			v1 := e1.Push(x)
			v2 := e2.Push(a * x)
			if math.Abs(v2-a*v1) > 1e-9*(1+math.Abs(v2)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	// Percentile is non-decreasing in p and bracketed by min/max.
	r := randx.New(46, 47)
	f := func(n uint8) bool {
		count := int(n)%100 + 1
		data := make([]float64, count)
		for i := range data {
			data[i] = r.Normal(0, 10)
		}
		lo, hi := MinMax(data)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(data, p)
			if v < prev-1e-12 || v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeMatchesSortedDefinition(t *testing.T) {
	r := randx.New(48, 49)
	data := make([]float64, 501)
	for i := range data {
		data[i] = r.Normal(50, 20)
	}
	s := Summarize(data)
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	if s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
		t.Fatalf("min/max mismatch: %+v", s)
	}
	if s.Median != sorted[250] {
		t.Fatalf("median %v, want %v", s.Median, sorted[250])
	}
	if s.P10 > s.Median || s.Median > s.P90 {
		t.Fatalf("percentile ordering broken: %+v", s)
	}
}

func TestStdDevShiftInvariantProperty(t *testing.T) {
	r := randx.New(50, 51)
	f := func(shiftRaw int16) bool {
		shift := float64(shiftRaw)
		x := make([]float64, 100)
		y := make([]float64, 100)
		for i := range x {
			x[i] = r.Normal(0, 7)
			y[i] = x[i] + shift
		}
		return math.Abs(StdDev(x)-StdDev(y)) < 1e-7*(1+StdDev(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
