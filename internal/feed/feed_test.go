package feed

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
)

func TestReaderBasic(t *testing.T) {
	in := "t,access,miss\n0.01,100,10\n0.02,120,12\n"
	r := NewReader(strings.NewReader(in))
	s1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if s1.T != 0.01 || s1.Access != 100 || s1.Miss != 10 {
		t.Fatalf("s1 = %+v", s1)
	}
	s2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if s2.T != 0.02 {
		t.Fatalf("s2 = %+v", s2)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# produced by pcm wrapper\n\n0.01,100,10\n\n# more comments\n0.02,110,11\n"
	samples, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples", len(samples))
	}
}

func TestReaderCommentThenHeader(t *testing.T) {
	// Regression: the header used to be skipped only on physical line 1,
	// so a comment banner above it made the whole stream unparseable.
	in := "# produced by pcm wrapper\n# host: node-7\n\nt,access,miss\n0.01,100,10\n0.02,110,11\n"
	samples, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatalf("comment-then-header stream rejected: %v", err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	if samples[0].T != 0.01 || samples[1].T != 0.02 {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestReaderHeaderOnlyOnFirstDataLine(t *testing.T) {
	// A header-looking line after real data is a parse error, not a skip.
	in := "0.01,100,10\nt,access,miss\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("mid-stream header line parsed without error")
	}
}

func TestReaderNoHeader(t *testing.T) {
	in := "0.01,100,10\n"
	samples, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("got %d samples", len(samples))
	}
}

func TestReaderErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"wrong field count", "0.01,100\n"},
		{"bad time mid-stream", "0.01,100,10\nxx,100,10\n"},
		{"bad access", "0.01,zz,10\n"},
		{"bad miss", "0.01,100,zz\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tt.in))
			var err error
			for err == nil {
				_, err = r.Next()
			}
			if err == io.EOF {
				t.Fatal("malformed input parsed without error")
			}
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("error %v lacks line number", err)
			}
		})
	}
}

// TestReaderParseErrorIsRecoverable: a malformed line surfaces as a typed
// *ParseError carrying the line number and raw text, and the reader keeps
// its position — the caller can quarantine the line and keep consuming the
// stream. This is the contract the server's quarantine path depends on.
func TestReaderParseErrorIsRecoverable(t *testing.T) {
	in := "t,access,miss\n0.01,100,10\nGARBAGE-LINE\n0.03,120,12\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("malformed line returned %T (%v), want *ParseError", err, err)
	}
	if pe.Line != 3 || pe.Text != "GARBAGE-LINE" {
		t.Errorf("ParseError = %+v, want line 3 with the raw text", pe)
	}
	if !strings.HasPrefix(pe.Error(), "feed: line 3: ") {
		t.Errorf("message %q lost the feed: line N: prefix", pe.Error())
	}
	s, err := r.Next()
	if err != nil {
		t.Fatalf("reader did not recover past the malformed line: %v", err)
	}
	if s.T != 0.03 {
		t.Errorf("post-error sample = %+v, want t=0.03", s)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF after last sample, got %v", err)
	}
}

// TestReaderRejectsNonFinite: strconv.ParseFloat happily parses NaN and
// ±Inf tokens, but a NaN sample breaks ksstat's sorted-window invariant
// and corrupts SDS profile means (NaN contaminates every mean it touches).
// Regression for the pre-fix behaviour where such lines parsed through:
// each non-finite line must surface as a recoverable *ParseError so the
// server quarantines it, and the reader must keep delivering the healthy
// remainder of the stream.
func TestReaderRejectsNonFinite(t *testing.T) {
	in := "NaN,100,10\n0.02,+Inf,11\n0.03,120,-Inf\n0.04,inf,11\n0.05,130,13\n"
	r := NewReader(strings.NewReader(in))
	var (
		samples     []pcm.Sample
		quarantined int
	)
	for {
		s, err := r.Next()
		if err == io.EOF {
			break
		}
		var pe *ParseError
		if errors.As(err, &pe) {
			if !strings.Contains(pe.Err.Error(), "non-finite") {
				t.Errorf("line %d rejected for the wrong reason: %v", pe.Line, pe.Err)
			}
			quarantined++
			continue
		}
		if err != nil {
			t.Fatalf("non-finite line killed the stream: %v", err)
		}
		samples = append(samples, s)
	}
	if quarantined != 4 {
		t.Errorf("quarantined %d lines, want 4", quarantined)
	}
	if len(samples) != 1 || samples[0].T != 0.05 {
		t.Errorf("surviving samples = %+v, want just t=0.05", samples)
	}
	for _, s := range samples {
		if math.IsNaN(s.T) || math.IsInf(s.Access, 0) || math.IsInf(s.Miss, 0) {
			t.Errorf("non-finite sample leaked through: %+v", s)
		}
	}
}

// TestReaderOversizedLineIsRecoverable: a line beyond MaxLineBytes used to
// surface bufio.ErrTooLong as a fatal read error, killing the connection
// and its buffered samples. Regression: the oversized line must be
// discarded with a recoverable *ParseError and the reader must deliver
// every sample after it.
func TestReaderOversizedLineIsRecoverable(t *testing.T) {
	var b strings.Builder
	b.WriteString("t,access,miss\n0.01,100,10\n0.02,")
	for b.Len() < MaxLineBytes+512*1024 {
		b.WriteString("11111111")
	}
	b.WriteString(",10\n0.03,120,12\n")
	r := NewReader(strings.NewReader(b.String()))
	if s, err := r.Next(); err != nil || s.T != 0.01 {
		t.Fatalf("first sample = %+v, %v", s, err)
	}
	_, err := r.Next()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("oversized line returned %T (%v), want recoverable *ParseError", err, err)
	}
	if pe.Line != 3 || !strings.Contains(pe.Err.Error(), "exceeds") {
		t.Errorf("ParseError = %+v, want line 3 oversize diagnosis", pe)
	}
	if len(pe.Text) > 128 {
		t.Errorf("ParseError.Text carries %d bytes of the oversized line, want a short prefix", len(pe.Text))
	}
	s, err := r.Next()
	if err != nil {
		t.Fatalf("reader did not recover past the oversized line: %v", err)
	}
	if s.T != 0.03 {
		t.Errorf("post-oversize sample = %+v, want t=0.03", s)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF after last sample, got %v", err)
	}
}

// TestReaderOversizedLineNoNewline: an oversized final line without a
// trailing newline is still quarantined, then EOF.
func TestReaderOversizedLineNoNewline(t *testing.T) {
	var b strings.Builder
	b.WriteString("0.01,100,10\n9.9,")
	for b.Len() < MaxLineBytes+4096 {
		b.WriteString("22222222")
	}
	r := NewReader(strings.NewReader(b.String()))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError for unterminated oversized line, got %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF after quarantined tail, got %v", err)
	}
}

// TestReaderGarbageFirstLineNotHeader: the old isHeader heuristic treated
// ANY first non-comment line without a numeric field as a header, so a
// garbage first data line was silently dropped — never quarantined, never
// counted. Regression: only the canonical `t,…` header may be skipped.
func TestReaderGarbageFirstLineNotHeader(t *testing.T) {
	in := "GARBAGE FIRST LINE\n0.01,100,10\n"
	r := NewReader(strings.NewReader(in))
	_, err := r.Next()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("garbage first line returned %v, want *ParseError (was silently skipped pre-fix)", err)
	}
	if pe.Line != 1 {
		t.Errorf("ParseError.Line = %d, want 1", pe.Line)
	}
	s, err := r.Next()
	if err != nil || s.T != 0.01 {
		t.Fatalf("stream did not continue past quarantined first line: %+v, %v", s, err)
	}
}

// TestReaderHeaderVariants pins exactly which first lines count as a
// header: first field `t` in any case, nothing else.
func TestReaderHeaderVariants(t *testing.T) {
	tests := []struct {
		first  string
		header bool
	}{
		{"t,access,miss", true},
		{"T,ACCESS,MISS", true},
		{" t , access , miss ", true},
		{"t", true},
		{"time,access,miss", false},
		{"x,y,z", false},
		{"access,miss,t", false},
		{"#not reached - comment", true}, // comments skip before the check
	}
	for _, tt := range tests {
		t.Run(tt.first, func(t *testing.T) {
			in := tt.first + "\n0.01,100,10\n"
			r := NewReader(strings.NewReader(in))
			s, err := r.Next()
			if tt.header {
				if err != nil || s.T != 0.01 {
					t.Fatalf("header line not skipped: %+v, %v", s, err)
				}
				return
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-header first line %q returned %v, want *ParseError", tt.first, err)
			}
		})
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	r := randx.New(1, 2)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := make([]pcm.Sample, 100)
	for i := range want {
		want[i] = pcm.Sample{
			T:      float64(i+1) * 0.01,
			Access: float64(r.IntN(1 << 20)),
			Miss:   float64(r.IntN(1 << 16)),
		}
		if err := w.Write(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip lost samples: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(tRaw uint16, aRaw, mRaw uint32) bool {
		s := pcm.Sample{T: float64(tRaw) / 100, Access: float64(aRaw % 1000000), Miss: float64(mRaw % 100000)}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(s); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		return err == nil && len(got) == 1 && got[0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
