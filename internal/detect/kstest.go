package detect

import (
	"fmt"
	"sort"

	"github.com/memdos/sds/internal/ksstat"
	"github.com/memdos/sds/internal/pcm"
)

// KSTestConfig carries the baseline's parameters, defaulting to the
// settings of Zhang et al. that the paper reuses (§3.2): T_PCM=0.01 s,
// W_R=W_M=1 s, L_M=2 s, L_R=30 s, four consecutive rejections.
type KSTestConfig struct {
	// TPCM is the PCM sampling interval in seconds.
	TPCM float64
	// WR is the reference-collection duration in seconds (others throttled).
	WR float64
	// WM is the monitored-sample window duration in seconds.
	WM float64
	// LM is the interval between distribution checks in seconds.
	LM float64
	// LR is the interval between reference re-collections in seconds.
	LR float64
	// Consecutive is the number of consecutive rejections that raise a
	// suspicion (the paper: four).
	Consecutive int
	// ConfirmStreaks is how many Consecutive-length rejection streaks must
	// accumulate against the same reference before the attack is declared
	// (streaks may be separated by isolated acceptances; a reference
	// refresh resets the count). The paper ties the baseline's 20–50 s
	// detection delay to the infrequency of its throttled reference
	// collections ("such collection cannot be too frequent … this
	// indirectly increases the detection latency"): once suspicious, the
	// detector defers the next scheduled refresh (once) and keeps
	// verifying against the current baseline before declaring.
	// 1 declares immediately at the first streak.
	ConfirmStreaks int
	// FreezeBaselineOnSuspicion defers due reference refreshes while a
	// suspicion is being verified or an alarm stands, so the baseline is
	// never re-learned from behaviour the detector considers anomalous.
	// The evaluation uses the default (true); the §3.2 measurement study
	// disables it to follow the published per-interval protocol exactly.
	FreezeBaselineOnSuspicion bool
	// Alpha is the KS significance level.
	Alpha float64
}

// DefaultKSTestConfig returns the baseline parameters of the paper.
func DefaultKSTestConfig() KSTestConfig {
	return KSTestConfig{
		TPCM:                      0.01,
		WR:                        1,
		WM:                        1,
		LM:                        2,
		LR:                        30,
		Consecutive:               4,
		ConfirmStreaks:            3,
		FreezeBaselineOnSuspicion: true,
		Alpha:                     0.05,
	}
}

// Validate reports configuration errors.
func (c KSTestConfig) Validate() error {
	switch {
	case c.TPCM <= 0:
		return fmt.Errorf("detect: KStest T_PCM must be positive, got %v", c.TPCM)
	case c.WR <= 0 || c.WM <= 0:
		return fmt.Errorf("detect: KStest window durations must be positive (W_R=%v, W_M=%v)", c.WR, c.WM)
	case c.LM < c.WM:
		return fmt.Errorf("detect: KStest check interval L_M=%v shorter than window W_M=%v", c.LM, c.WM)
	case c.LR < c.WR+c.LM:
		return fmt.Errorf("detect: KStest reference interval L_R=%v leaves no room to monitor", c.LR)
	case c.Consecutive <= 0:
		return fmt.Errorf("detect: KStest consecutive threshold must be positive, got %d", c.Consecutive)
	case c.ConfirmStreaks <= 0:
		return fmt.Errorf("detect: KStest confirm streaks must be positive, got %d", c.ConfirmStreaks)
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("detect: KStest alpha must be in (0,1), got %v", c.Alpha)
	}
	return nil
}

// Throttler is the hypervisor hook the baseline needs: it pauses every VM
// except the protected one while reference samples are collected, and
// resumes them afterwards. Implementations are provided by the simulation
// harness; both calls must be idempotent.
type Throttler interface {
	PauseOthers()
	ResumeOthers()
}

// CheckStat is one KS comparison outcome, exposed to hooks (the 0/1 series
// of the paper's Fig. 1).
type CheckStat struct {
	// T is the virtual time of the check.
	T float64
	// Rejected reports that reference and monitored samples had distinct
	// distributions (the "1" value in Fig. 1).
	Rejected bool
	// DAccess and DMiss are the KS statistics of the two counters.
	DAccess, DMiss float64
}

// KSTest is the baseline detector (Zhang et al., AsiaCCS '17). Every L_R
// seconds it throttles all other VMs and collects W_R seconds of reference
// samples from the protected VM; then once every L_M seconds it compares the
// last W_M seconds of monitored samples against the reference with the
// two-sample KS test on both counters, declaring an attack after the
// configured number of consecutive rejections.
type KSTest struct {
	cfg       KSTestConfig
	throttler Throttler

	refA, refM []float64
	refReady   bool

	winA, winM []float64 // ring buffers of the last W_M samples
	winPos     int
	winCount   int

	// monA and monM are reusable scratch the monitored rings are linearized
	// and sorted into at each check, keeping the steady state allocation-free
	// (the reference slices are sorted in place once per collection).
	monA, monM []float64

	collecting  bool
	refDeadline float64
	nextRef     float64
	nextCheck   float64

	consec    int
	streaks   int // Consecutive-length rejection streaks since last refresh
	deferred  bool
	alarmed   bool
	alarms    []Alarm
	checkHook func(CheckStat)
}

var _ Detector = (*KSTest)(nil)

// KSTestOption customizes a KSTest detector.
type KSTestOption interface{ applyKSTest(*KSTest) }

type ksCheckHook func(CheckStat)

func (h ksCheckHook) applyKSTest(d *KSTest) { d.checkHook = h }

// WithKSTestCheckHook registers a callback invoked after every KS
// comparison — used to trace the 0/1 sequences of the paper's Fig. 1.
func WithKSTestCheckHook(hook func(CheckStat)) KSTestOption {
	return ksCheckHook(hook)
}

// NewKSTest returns the baseline detector. throttler may be nil when the
// caller accounts for throttling externally (or ignores it).
func NewKSTest(cfg KSTestConfig, throttler Throttler, opts ...KSTestOption) (*KSTest, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	winLen := pcm.SampleCount(cfg.WM, cfg.TPCM)
	if winLen < 2 {
		return nil, fmt.Errorf("detect: KStest monitored window holds %d samples; need ≥ 2", winLen)
	}
	d := &KSTest{
		cfg:       cfg,
		throttler: throttler,
		winA:      make([]float64, winLen),
		winM:      make([]float64, winLen),
		monA:      make([]float64, winLen),
		monM:      make([]float64, winLen),
	}
	for _, o := range opts {
		o.applyKSTest(d)
	}
	return d, nil
}

// Name implements Detector.
func (d *KSTest) Name() string { return "KStest" }

// Observe implements Detector.
func (d *KSTest) Observe(s pcm.Sample) {
	// A due reference refresh is deferred — once — while a suspicion is
	// being verified or an alarm stands: the baseline should not be
	// re-learned from behaviour the detector currently considers
	// anomalous, but profiling cannot be starved forever either.
	if !d.collecting && s.T >= d.nextRef {
		suspicious := d.cfg.FreezeBaselineOnSuspicion && (d.streaks > 0 || d.alarmed)
		if suspicious && !d.deferred {
			d.deferred = true
			d.nextRef += d.cfg.LR
		} else {
			d.beginReference(s.T)
		}
	}
	if d.collecting {
		d.refA = append(d.refA, s.Access)
		d.refM = append(d.refM, s.Miss)
		if s.T >= d.refDeadline {
			d.endReference(s.T)
		}
		return
	}

	// Monitored-sample ring.
	d.winA[d.winPos] = s.Access
	d.winM[d.winPos] = s.Miss
	if d.winPos++; d.winPos == len(d.winA) {
		d.winPos = 0
	}
	if d.winCount < len(d.winA) {
		d.winCount++
	}

	if d.refReady && d.winCount == len(d.winA) && s.T >= d.nextCheck {
		d.check(s.T)
		d.nextCheck += d.cfg.LM
	}
}

func (d *KSTest) beginReference(t float64) {
	d.collecting = true
	d.refA = d.refA[:0]
	d.refM = d.refM[:0]
	d.refDeadline = t + d.cfg.WR
	if d.throttler != nil {
		d.throttler.PauseOthers()
	}
}

func (d *KSTest) endReference(t float64) {
	d.collecting = false
	d.refReady = true
	// The reference is only ever consumed as an empirical distribution, so
	// sort it once here instead of copy+sort at every check.
	sort.Float64s(d.refA)
	sort.Float64s(d.refM)
	if d.throttler != nil {
		d.throttler.ResumeOthers()
	}
	// A fresh reference restarts the verdict: the consecutive count, the
	// alarm state, and the monitored window (samples collected while others
	// were throttled are not representative of monitored conditions).
	d.consec = 0
	d.streaks = 0
	d.deferred = false
	d.alarmed = false
	d.winCount = 0
	d.winPos = 0
	d.nextRef = t + d.cfg.LR - d.cfg.WR
	d.nextCheck = t + d.cfg.LM
}

func (d *KSTest) check(t float64) {
	monA := d.ringSnapshotInto(d.monA, d.winA)
	monM := d.ringSnapshotInto(d.monM, d.winM)
	sort.Float64s(monA)
	sort.Float64s(monM)
	dA, errA := ksstat.StatisticSorted(d.refA, monA)
	dM, errM := ksstat.StatisticSorted(d.refM, monM)
	if errA != nil || errM != nil {
		// Cannot happen with validated windows; treat as non-rejection.
		return
	}
	n, m := len(d.refA), len(monA)
	rejected := ksstat.PValue(dA, n, m) < d.cfg.Alpha ||
		ksstat.PValue(dM, len(d.refM), len(monM)) < d.cfg.Alpha

	if d.checkHook != nil {
		d.checkHook(CheckStat{T: t, Rejected: rejected, DAccess: dA, DMiss: dM})
	}

	if rejected {
		d.consec++
		if d.consec%d.cfg.Consecutive == 0 {
			d.streaks++
		}
	} else {
		d.consec = 0
	}
	nowAlarmed := d.streaks >= d.cfg.ConfirmStreaks
	if nowAlarmed && !d.alarmed {
		d.alarms = append(d.alarms, Alarm{
			T:        t,
			Detector: d.Name(),
			Metric:   MetricAccess,
			Reason: fmt.Sprintf("reference and monitored samples differ (KS D=%.3f/%.3f) over %d rejection streaks",
				dA, dM, d.streaks),
		})
	}
	d.alarmed = nowAlarmed
}

// ringSnapshotInto linearizes the ring (oldest first) into the caller's
// scratch and returns it.
func (d *KSTest) ringSnapshotInto(out, ring []float64) []float64 {
	copy(out, ring[d.winPos:])
	copy(out[len(ring)-d.winPos:], ring[:d.winPos])
	return out
}

// Alarmed implements Detector.
func (d *KSTest) Alarmed() bool { return d.alarmed }

// AlarmCount implements AlarmCounter.
func (d *KSTest) AlarmCount() int { return len(d.alarms) }

// Alarms implements Detector.
func (d *KSTest) Alarms() []Alarm { return cloneAlarms(d.alarms) }

// Collecting reports whether the detector is currently collecting reference
// samples (i.e. other VMs are throttled).
func (d *KSTest) Collecting() bool { return d.collecting }
