package main

import (
	"regexp"
	"strings"
	"testing"
)

var gate = regexp.MustCompile(defaultNSMatch)

// TestDiffGates: the two gate rules — any allocs/op increase fails, ns/op
// regressions fail only past the tolerance and only on gated names.
func TestDiffGates(t *testing.T) {
	oldRes := map[string]Result{
		"BenchmarkSDSObserve":          {NsPerOp: 100, AllocsPerOp: 0, Iterations: 1000},
		"BenchmarkFFT1024":             {NsPerOp: 5000, AllocsPerOp: 0, Iterations: 1000},
		"BenchmarkFig9Recall":          {NsPerOp: 1e9, AllocsPerOp: 1000, Iterations: 1000},
		"BenchmarkGoneNextTrack":       {NsPerOp: 10, AllocsPerOp: 0, Iterations: 1000},
		"BenchmarkSessionObserveBatch": {NsPerOp: 20000, AllocsPerOp: 0, Iterations: 1000},
	}

	t.Run("clean", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkSDSObserve":          {NsPerOp: 105, AllocsPerOp: 0, Iterations: 1000},  // +5% < tol
			"BenchmarkFFT1024":             {NsPerOp: 4000, AllocsPerOp: 0, Iterations: 1000}, // faster
			"BenchmarkFig9Recall":          {NsPerOp: 5e9, AllocsPerOp: 900, Iterations: 1000},
			"BenchmarkSessionObserveBatch": {NsPerOp: 21000, AllocsPerOp: 0, Iterations: 1000},
			"BenchmarkBrandNew":            {NsPerOp: 1, AllocsPerOp: 99, Iterations: 1000},
		}
		compared, violations := diff(oldRes, newRes, 0.10, 50, gate)
		if compared != 4 {
			t.Errorf("compared %d benchmarks, want the 4 common ones", compared)
		}
		if len(violations) != 0 {
			t.Errorf("clean trajectory flagged: %v", violations)
		}
	})

	t.Run("ns regression on gated benchmark", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkSDSObserve": {NsPerOp: 150, AllocsPerOp: 0, Iterations: 1000},
		}
		_, violations := diff(oldRes, newRes, 0.10, 50, gate)
		if len(violations) != 1 || !strings.Contains(violations[0], "ns/op") {
			t.Errorf("+50%% on a gated hot path not flagged: %v", violations)
		}
	})

	t.Run("ns regression on ungated benchmark passes", func(t *testing.T) {
		// Figure benchmarks are wall-clock noisy end-to-end sims; ns/op is
		// not gated for them (allocs/op still is).
		newRes := map[string]Result{
			"BenchmarkFig9Recall": {NsPerOp: 9e9, AllocsPerOp: 1000, Iterations: 1000},
		}
		if _, violations := diff(oldRes, newRes, 0.10, 50, gate); len(violations) != 0 {
			t.Errorf("ungated benchmark's ns/op flagged: %v", violations)
		}
	})

	t.Run("noise baseline is not ns-gated", func(t *testing.T) {
		// A baseline recorded over 10 iterations (the -benchtime=10x era)
		// cannot anchor a wall-clock gate; allocs/op still applies.
		old := map[string]Result{
			"BenchmarkSDSObserve": {NsPerOp: 30, AllocsPerOp: 0, Iterations: 10},
		}
		newRes := map[string]Result{
			"BenchmarkSDSObserve": {NsPerOp: 70, AllocsPerOp: 0, Iterations: 1000000},
		}
		if _, violations := diff(old, newRes, 0.10, 50, gate); len(violations) != 0 {
			t.Errorf("10-iteration baseline anchored an ns gate: %v", violations)
		}
		newRes["BenchmarkSDSObserve"] = Result{NsPerOp: 70, AllocsPerOp: 1, Iterations: 1000000}
		if _, violations := diff(old, newRes, 0.10, 50, gate); len(violations) != 1 {
			t.Errorf("alloc gate must still apply to noise baselines: %v", violations)
		}
	})

	t.Run("alloc increase fails anywhere", func(t *testing.T) {
		newRes := map[string]Result{
			"BenchmarkFig9Recall":          {NsPerOp: 1e9, AllocsPerOp: 1001, Iterations: 1000},
			"BenchmarkSessionObserveBatch": {NsPerOp: 20000, AllocsPerOp: 1, Iterations: 1000},
		}
		_, violations := diff(oldRes, newRes, 0.10, 50, gate)
		if len(violations) != 2 {
			t.Fatalf("want 2 alloc violations, got %v", violations)
		}
		for _, v := range violations {
			if !strings.Contains(v, "allocs/op") {
				t.Errorf("violation %q is not the alloc gate", v)
			}
		}
	})
}

// TestDefaultGateCoversHotPaths: the default -ns-match must keep the
// benchmarks named by the tracking policy under the wall-clock gate.
func TestDefaultGateCoversHotPaths(t *testing.T) {
	for _, name := range []string{
		"BenchmarkSDSObserve",
		"BenchmarkKSTestObserve",
		"BenchmarkFleetObserveParallel",
		"BenchmarkFFT1024",
		"BenchmarkACFDirect2048",
		"BenchmarkPeriodEstimate34",
		"BenchmarkSessionObserveBatch",
		"BenchmarkServerIngestBin10000VMs",
		"BenchmarkBinReadFrame",
		"BenchmarkCSVReadSample",
	} {
		if !gate.MatchString(name) {
			t.Errorf("default ns gate does not cover %s", name)
		}
	}
	for _, name := range []string{"BenchmarkFig9Recall", "BenchmarkTable1Defaults"} {
		if gate.MatchString(name) {
			t.Errorf("default ns gate covers noisy end-to-end benchmark %s", name)
		}
	}
}
