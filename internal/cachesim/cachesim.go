// Package cachesim implements a set-associative last-level cache (LLC)
// simulator with per-owner accounting. It is the shared hardware resource
// through which the LLC-cleansing attack operates (paper §2.2): an attacker
// that repeatedly touches lines mapping into a victim's cache sets evicts
// the victim's data and inflates its miss count.
//
// The simulator is deliberately scaled down from the paper's 35 MB / 20-way
// Xeon LLC: the attacks act through set conflicts and eviction, which are
// geometry-independent, so a smaller cache reproduces the same behaviour at
// a fraction of the simulation cost.
package cachesim

import (
	"fmt"
)

// Owner identifies the VM (or other agent) performing an access. Owners are
// small dense integers assigned by the caller.
type Owner int

// NoOwner marks an invalid line owner.
const NoOwner Owner = -1

// Config describes the cache geometry.
type Config struct {
	// SizeBytes is the total capacity. Default 2 MiB.
	SizeBytes int
	// LineSize is the cache-line size in bytes. Default 64.
	LineSize int
	// Ways is the set associativity. Default 16.
	Ways int
}

func (c Config) withDefaults() Config {
	if c.SizeBytes == 0 {
		c.SizeBytes = 2 << 20
	}
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
	return c
}

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cachesim: config values must be positive: %+v", c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cachesim: line size %d is not a power of two", c.LineSize)
	}
	lines := c.SizeBytes / c.LineSize
	if lines%c.Ways != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets == 0 {
		return fmt.Errorf("cachesim: zero sets for config %+v", c)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d is not a power of two", sets)
	}
	return nil
}

// Stats holds cumulative per-owner counters. Accesses = Hits + Misses always
// holds; EvictedOthers counts lines of *other* owners this owner displaced
// (the cleansing attacker's effectiveness measure).
type Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64
	EvictedOthers uint64
}

type way struct {
	tag     uint64
	owner   Owner
	lastUse uint64
	valid   bool
}

// Cache is a set-associative LRU cache with per-owner statistics. It is not
// safe for concurrent use; the machine simulator drives it from one
// goroutine.
type Cache struct {
	cfg        Config
	sets       int
	setShift   uint // log2(LineSize)
	setMask    uint64
	ways       []way // sets * cfg.Ways, row-major by set
	clock      uint64
	stats      []Stats     // indexed by Owner
	partitions []partition // indexed by Owner; empty = unpartitioned
}

// partition restricts which ways of every set an owner may fill into
// (Intel CAT-style way partitioning). Zero value = all ways allowed.
type partition struct {
	first, count int
	set          bool
}

// New returns a cache with the given geometry (zero fields take defaults).
func New(cfg Config) (*Cache, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / cfg.LineSize / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: shift,
		setMask:  uint64(sets - 1),
		ways:     make([]way, sets*cfg.Ways),
	}, nil
}

// Config returns the cache geometry in effect.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of cache sets.
func (c *Cache) NumSets() int { return c.sets }

// SetOf returns the set index an address maps to.
func (c *Cache) SetOf(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

// Partition restricts the owner to fill only into ways
// [firstWay, firstWay+wayCount) of every set — Intel CAT-style way
// partitioning, the performance-isolation defense the paper's related work
// discusses (§2.3). Hits anywhere in the set still count (CAT masks
// restrict allocation, not lookup). Pass wayCount ≤ 0 to clear the
// owner's partition.
func (c *Cache) Partition(owner Owner, firstWay, wayCount int) error {
	if owner < 0 {
		return fmt.Errorf("cachesim: negative owner %d", owner)
	}
	for int(owner) >= len(c.partitions) {
		c.partitions = append(c.partitions, partition{})
	}
	if wayCount <= 0 {
		c.partitions[owner] = partition{}
		return nil
	}
	if firstWay < 0 || firstWay+wayCount > c.cfg.Ways {
		return fmt.Errorf("cachesim: partition [%d, %d) outside %d ways", firstWay, firstWay+wayCount, c.cfg.Ways)
	}
	c.partitions[owner] = partition{first: firstWay, count: wayCount, set: true}
	return nil
}

// fillRange returns the way-index range within a set that the owner may
// fill into.
func (c *Cache) fillRange(owner Owner) (first, count int) {
	if int(owner) < len(c.partitions) && c.partitions[owner].set {
		p := c.partitions[owner]
		return p.first, p.count
	}
	return 0, c.cfg.Ways
}

// Access performs one access by owner at the given byte address and reports
// whether it hit. Misses install the line, evicting the LRU way of the
// owner's allowed fill range in the set if necessary.
func (c *Cache) Access(owner Owner, addr uint64) bool {
	if owner < 0 {
		panic("cachesim: negative owner")
	}
	c.clock++
	set := c.SetOf(addr)
	tag := addr >> c.setShift
	base := set * c.cfg.Ways
	st := c.ownerStats(owner)
	st.Accesses++

	for i := base; i < base+c.cfg.Ways; i++ {
		w := &c.ways[i]
		if w.valid && w.tag == tag {
			w.lastUse = c.clock
			w.owner = owner
			st.Hits++
			return true
		}
	}
	st.Misses++
	first, count := c.fillRange(owner)
	victim := base + first
	for i := base + first; i < base+first+count; i++ {
		w := &c.ways[i]
		if !w.valid {
			victim = i
			break
		}
		if c.ways[victim].valid && w.lastUse < c.ways[victim].lastUse {
			victim = i
		}
	}
	v := &c.ways[victim]
	if v.valid && v.owner != owner {
		st.EvictedOthers++
	}
	*v = way{tag: tag, owner: owner, lastUse: c.clock, valid: true}
	return false
}

// AccessSeries issues count accesses starting at base with the given byte
// stride and returns the number of misses. It is the batched fast path used
// by the workload loops.
func (c *Cache) AccessSeries(owner Owner, base uint64, stride uint64, count int) (misses int) {
	addr := base
	for i := 0; i < count; i++ {
		if !c.Access(owner, addr) {
			misses++
		}
		addr += stride
	}
	return misses
}

// Stats returns a copy of the cumulative counters for owner (zero Stats for
// owners that never accessed the cache).
func (c *Cache) Stats(owner Owner) Stats {
	if int(owner) < 0 || int(owner) >= len(c.stats) {
		return Stats{}
	}
	return c.stats[owner]
}

// Occupancy returns the number of valid lines currently owned by owner in
// the given set. The cleansing attacker uses this through its probe loop
// indirectly (by observing self-misses); tests use it directly.
func (c *Cache) Occupancy(set int, owner Owner) int {
	if set < 0 || set >= c.sets {
		return 0
	}
	n := 0
	base := set * c.cfg.Ways
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.ways[i].valid && c.ways[i].owner == owner {
			n++
		}
	}
	return n
}

// ForeignOccupancy returns the number of valid lines in the set owned by
// anyone other than owner.
func (c *Cache) ForeignOccupancy(set int, owner Owner) int {
	if set < 0 || set >= c.sets {
		return 0
	}
	n := 0
	base := set * c.cfg.Ways
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.ways[i].valid && c.ways[i].owner != owner {
			n++
		}
	}
	return n
}

// TotalOccupancy returns the number of valid lines in the whole cache.
func (c *Cache) TotalOccupancy() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}

// AddrForSet returns a byte address that maps to the given set with the
// given tag index, a convenience for constructing conflict patterns.
func (c *Cache) AddrForSet(set int, tag uint64) uint64 {
	return (tag*uint64(c.sets) + uint64(set)) << c.setShift
}

func (c *Cache) ownerStats(owner Owner) *Stats {
	for int(owner) >= len(c.stats) {
		c.stats = append(c.stats, Stats{})
	}
	return &c.stats[owner]
}
