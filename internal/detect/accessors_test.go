package detect

import (
	"strings"
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/workload"
)

// TestDetectorAccessors exercises the small informational methods every
// scheme exposes, which the examples and cmd tools rely on.
func TestDetectorAccessors(t *testing.T) {
	cfg := DefaultConfig()
	prof := steadyProfile(t, workload.FaceNet, 150)

	b, err := NewSDSB(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "SDS/B" {
		t.Errorf("SDSB name = %q", b.Name())
	}
	if got := b.Profile(); got.App != workload.FaceNet {
		t.Errorf("SDSB profile app = %q", got.App)
	}
	if a, m := b.Violations(); a != 0 || m != 0 {
		t.Errorf("fresh violations = (%d, %d)", a, m)
	}

	p, err := NewSDSP(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "SDS/P" {
		t.Errorf("SDSP name = %q", p.Name())
	}
	if p.Deviations() != 0 {
		t.Errorf("fresh deviations = %d", p.Deviations())
	}

	s, err := NewSDS(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SDS" {
		t.Errorf("SDS name = %q", s.Name())
	}

	k, err := NewKSTest(DefaultKSTestConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "KStest" {
		t.Errorf("KStest name = %q", k.Name())
	}
	if k.Collecting() {
		t.Error("fresh KStest already collecting")
	}
	k.Observe(samp(0.005, 100, 10))
	if !k.Collecting() {
		t.Error("KStest not collecting its first reference")
	}

	r, err := NewReprofiler(workload.FaceNet, prof, cfg, 600)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "SDS" {
		t.Errorf("reprofiler name = %q", r.Name())
	}
	if got := r.Profile(); got.App != workload.FaceNet {
		t.Errorf("reprofiler profile app = %q", got.App)
	}
	if len(r.Alarms()) != 0 || r.Alarmed() {
		t.Error("fresh reprofiler has alarm state")
	}
}

func TestSDSAlarmReasonMentionsBothSchemes(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 151)
	d, err := NewSDS(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(d, genSamples(t, workload.FaceNet, 152, 500, attack.Schedule{Kind: attack.BusLock, Start: 250, Ramp: 10}))
	alarms := d.Alarms()
	if len(alarms) == 0 {
		t.Fatal("no alarms")
	}
	found := false
	for _, a := range alarms {
		if a.T >= 250 {
			found = true
			if want := "confirmed by SDS/P"; !strings.Contains(a.Reason, want) {
				t.Errorf("combined alarm reason %q lacks %q", a.Reason, want)
			}
		}
	}
	if !found {
		t.Fatal("no alarm after attack start")
	}
}
