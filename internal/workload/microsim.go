package workload

import (
	"fmt"

	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/vmm"
)

// Loop is a micro-simulation workload that repeatedly accesses a fixed
// working set at a fixed demand rate — the access-stream equivalent of a
// steady application. Its addresses are drawn uniformly from the working
// set, so its hit rate is governed by how much of the set survives in the
// shared LLC.
type Loop struct {
	name string
	rng  *randx.Rand

	base   uint64 // base byte address of the working set
	lines  int    // working-set size in cache lines
	lineSz uint64
	perSec float64 // demanded accesses per second
}

var _ vmm.Workload = (*Loop)(nil)

// NewLoop returns a Loop named name over a working set of setBytes bytes
// starting at base, demanding perSec accesses per second.
func NewLoop(name string, base uint64, setBytes int, perSec float64, rng *randx.Rand) (*Loop, error) {
	if setBytes < 64 || perSec <= 0 || rng == nil {
		return nil, fmt.Errorf("workload: bad Loop parameters (setBytes=%d perSec=%v)", setBytes, perSec)
	}
	return &Loop{
		name:   name,
		rng:    rng,
		base:   base,
		lines:  setBytes / 64,
		lineSz: 64,
		perSec: perSec,
	}, nil
}

// Name implements vmm.Workload.
func (l *Loop) Name() string { return l.name }

// Demand implements vmm.Workload.
func (l *Loop) Demand(dt float64) (int, float64) {
	return int(l.perSec * dt), 0
}

// Issue implements vmm.Workload.
func (l *Loop) Issue(granted int, c *cachesim.Cache, owner cachesim.Owner) {
	for i := 0; i < granted; i++ {
		line := uint64(l.rng.IntN(l.lines))
		c.Access(owner, l.base+line*l.lineSz)
	}
}

// PhasedLoop cycles through execution phases, each defined by a working-set
// window and an amount of *work* (cache hits) to complete. Because phase
// progress is counted in completed work rather than wall time, any attack
// that starves the workload of accesses (bus locking) or of hits (LLC
// cleansing) stretches the wall-clock period of the cycle — the paper's
// Observation 2, reproduced from first principles.
type PhasedLoop struct {
	name string
	rng  *randx.Rand

	base     uint64
	lineSz   uint64
	perSec   float64
	phases   []LoopPhase
	phaseIdx int
	workLeft int
}

// LoopPhase is one phase of a PhasedLoop cycle.
type LoopPhase struct {
	// Lines is the phase's working-set size in cache lines.
	Lines int
	// Work is the number of cache hits needed to finish the phase.
	Work int
}

var _ vmm.Workload = (*PhasedLoop)(nil)

// NewPhasedLoop returns a PhasedLoop cycling through the given phases.
func NewPhasedLoop(name string, base uint64, perSec float64, phases []LoopPhase, rng *randx.Rand) (*PhasedLoop, error) {
	if len(phases) == 0 || perSec <= 0 || rng == nil {
		return nil, fmt.Errorf("workload: bad PhasedLoop parameters")
	}
	for i, ph := range phases {
		if ph.Lines <= 0 || ph.Work <= 0 {
			return nil, fmt.Errorf("workload: PhasedLoop phase %d must have positive Lines and Work", i)
		}
	}
	return &PhasedLoop{
		name:     name,
		rng:      rng,
		base:     base,
		lineSz:   64,
		perSec:   perSec,
		phases:   phases,
		workLeft: phases[0].Work,
	}, nil
}

// Name implements vmm.Workload.
func (p *PhasedLoop) Name() string { return p.name }

// Phase returns the index of the current phase (for tests).
func (p *PhasedLoop) Phase() int { return p.phaseIdx }

// Demand implements vmm.Workload. The demand carries ±10% per-tick jitter:
// real applications do not issue perfectly metronomic access streams, and
// the variance keeps profiled counter bounds non-degenerate.
func (p *PhasedLoop) Demand(dt float64) (int, float64) {
	return int(p.perSec * dt * p.rng.Uniform(0.9, 1.1)), 0
}

// Issue implements vmm.Workload.
func (p *PhasedLoop) Issue(granted int, c *cachesim.Cache, owner cachesim.Owner) {
	for i := 0; i < granted; i++ {
		ph := p.phases[p.phaseIdx]
		line := uint64(p.rng.IntN(ph.Lines))
		// Each phase works in its own address window so that phase
		// transitions shift the cache footprint.
		addr := p.base + uint64(p.phaseIdx)<<28 + line*p.lineSz
		if c.Access(owner, addr) {
			p.workLeft--
			if p.workLeft <= 0 {
				p.phaseIdx = (p.phaseIdx + 1) % len(p.phases)
				p.workLeft = p.phases[p.phaseIdx].Work
			}
		}
	}
}

// Idle is a workload with no memory demand (a benign VM running light
// utilities like sysstat/dstat, per the paper's testbed).
type Idle struct {
	name   string
	rng    *randx.Rand
	perSec float64
}

var _ vmm.Workload = (*Idle)(nil)

// NewIdle returns a near-idle workload issuing perSec scattered accesses per
// second (may be zero).
func NewIdle(name string, perSec float64, rng *randx.Rand) (*Idle, error) {
	if perSec < 0 || rng == nil {
		return nil, fmt.Errorf("workload: bad Idle parameters")
	}
	return &Idle{name: name, rng: rng, perSec: perSec}, nil
}

// Name implements vmm.Workload.
func (u *Idle) Name() string { return u.name }

// Demand implements vmm.Workload.
func (u *Idle) Demand(dt float64) (int, float64) {
	return int(u.perSec * dt), 0
}

// Issue implements vmm.Workload.
func (u *Idle) Issue(granted int, c *cachesim.Cache, owner cachesim.Owner) {
	for i := 0; i < granted; i++ {
		c.Access(owner, uint64(u.rng.IntN(1<<26))*64)
	}
}
