// Package faultinject is a deterministic, seedable fault layer for the
// line-oriented telemetry plane: it wraps a client's net.Conn (write side)
// or an io.Reader feeding feed.Reader (read side) and injects the failure
// modes a provider-side sdsd deployment sees in production — connection
// drops, mid-line truncation, byte corruption, reordering-free stalls,
// partial writes, and abrupt EOFs — on a configurable schedule.
//
// Every fault is a pure function of (Faults, line number, Seed): the same
// schedule over the same stream produces byte-identical damage, so a chaos
// test can replay the transformation locally (Apply) and compute the exact
// set of lines the server must ingest, quarantine, or never see. There is
// no reordering and no record invention: the layer only removes, damages,
// inflates, delays, or splits what the application wrote.
package faultinject

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"time"

	"github.com/memdos/sds/internal/randx"
)

// ErrDrop is returned by a wrapped connection or reader once the schedule's
// DropAfterLines cut has fired: the stream ended abruptly mid-conversation.
var ErrDrop = errors.New("faultinject: stream dropped by fault schedule")

// ErrWriteFail is returned by a wrapped connection once FailWritesAfterLines
// has fired: the peer is gone and every further write fails, the way a
// crashed client surfaces to the server as EPIPE/ECONNRESET.
var ErrWriteFail = errors.New("faultinject: writes failing by fault schedule")

// Faults is a deterministic fault schedule over one line-oriented stream.
// Line counts refer to fault-eligible lines: the first SkipLines lines
// (handshake, CSV header) pass through untouched and are not counted.
// The zero value injects nothing.
type Faults struct {
	// Seed derives the per-line random choices (corruption position and
	// byte, truncation cut). Schedules with equal Seed are identical.
	Seed uint64
	// SkipLines exempts the first N lines from every fault — set it to 2
	// for a client stream so the handshake and CSV header survive.
	SkipLines int
	// CorruptEvery overwrites one byte of every Nth line with a junk
	// character (guaranteed unparseable as a t,access,miss record). 0 = off.
	CorruptEvery int
	// TruncateEvery cuts every Nth line shortly after its first comma and
	// drops the newline, so it merges with the following line into one
	// malformed record (mid-line truncation — a torn write). 0 = off.
	TruncateEvery int
	// OversizeEvery inflates every Nth line past OversizeLen bytes by
	// stuffing junk between the record and its newline — a runaway writer
	// emitting an unbounded line. The parser must quarantine the line and
	// resume on the next one. 0 = off.
	OversizeEvery int
	// DropAfterLines ends the stream abruptly after N lines: a wrapped
	// conn half-closes its write side (hard-closes transports without
	// CloseWrite), a wrapped reader returns io.EOF (abrupt EOF). 0 = off.
	DropAfterLines int
	// StallEvery sleeps Stall before delivering every Nth line — a
	// reordering-free read/write delay. 0 = off.
	StallEvery int
	// Stall is the delay StallEvery applies.
	Stall time.Duration
	// PartialWriteMax splits each delivered line into underlying writes of
	// at most this many bytes, so the peer observes torn write boundaries
	// mid-line. 0 = off.
	PartialWriteMax int
	// FailWritesAfterLines makes every write after the Nth line fail with
	// ErrWriteFail without delivering anything — a dead peer as seen from
	// the writing side. 0 = off.
	FailWritesAfterLines int
}

// active reports whether the schedule injects anything at all.
func (f Faults) active() bool {
	return f.CorruptEvery > 0 || f.TruncateEvery > 0 || f.OversizeEvery > 0 ||
		f.DropAfterLines > 0 || f.StallEvery > 0 || f.PartialWriteMax > 0 ||
		f.FailWritesAfterLines > 0
}

// OversizeLen is the length OversizeEvery inflates lines past: one byte over
// the feed parser's MaxLineBytes cap (the packages are kept decoupled; the
// parser's own tests pin the two constants together).
const OversizeLen = 1024*1024 + 1

// corruptBytes are the overwrite candidates: none of them can appear in a
// valid t,access,miss record, so a corrupted line always fails to parse
// rather than silently becoming a different sample.
var corruptBytes = []byte{'X', '!', '?', '~'}

// junkRun is the oversize filler, appended in chunks to bound the append
// loop; 'x' cannot occur in a valid t,access,miss record.
var junkRun = bytes.Repeat([]byte{'x'}, 4096)

// faulter applies the schedule line by line. It is not safe for concurrent
// use; Conn serializes access.
type faulter struct {
	f       Faults
	rng     *randx.Rand
	seen    int // total lines, including skipped ones
	n       int // fault-eligible lines
	scratch []byte
}

func newFaulter(f Faults) *faulter {
	return &faulter{f: f, rng: randx.Derive(f.Seed, 0xfa017)}
}

// every reports whether the current line index n hits a 1-in-period cadence.
func every(n, period int) bool { return period > 0 && n%period == 0 }

// apply transforms one complete line (trailing newline included, except
// possibly on the stream's final line). It returns the bytes to deliver,
// the stall to sleep before delivering them, and whether the stream drops
// before this line.
func (lf *faulter) apply(line []byte) (out []byte, stall time.Duration, drop bool) {
	lf.seen++
	if lf.seen <= lf.f.SkipLines {
		return line, 0, false
	}
	lf.n++
	if lf.f.DropAfterLines > 0 && lf.n > lf.f.DropAfterLines {
		return nil, 0, true
	}
	if every(lf.n, lf.f.StallEvery) {
		stall = lf.f.Stall
	}
	switch {
	case every(lf.n, lf.f.OversizeEvery):
		// Inflate the line past the parser's cap: record, then junk, then
		// the original newline (if any). The junk glues onto the last field,
		// so even a parser without a length cap could never mistake the line
		// for a different valid record.
		body := line
		nl := false
		if ln := len(body); ln > 0 && body[ln-1] == '\n' {
			body, nl = body[:ln-1], true
		}
		out = append(lf.scratch[:0], body...)
		for len(out) < OversizeLen {
			out = append(out, junkRun...)
		}
		out = out[:OversizeLen]
		if nl {
			out = append(out, '\n')
		}
		lf.scratch = out
	case every(lf.n, lf.f.TruncateEvery):
		// Cut shortly after the first comma and drop the newline: the
		// remnant merges with the next line into a ≥4-field record, which
		// can never parse as t,access,miss. (Keep TruncateEvery ≥ 2 so two
		// consecutive lines don't both truncate.)
		cut := bytes.IndexByte(line, ',')
		if cut < 0 {
			cut = len(line) / 2
		}
		cut += 1 + lf.rng.IntN(2)
		if cut >= len(line) {
			cut = len(line) - 1
		}
		out = append(lf.scratch[:0], line[:cut]...)
		lf.scratch = out
	case every(lf.n, lf.f.CorruptEvery):
		out = append(lf.scratch[:0], line...)
		lf.scratch = out
		span := len(out)
		if span > 0 && out[span-1] == '\n' {
			span--
		}
		if span > 0 {
			out[lf.rng.IntN(span)] = corruptBytes[lf.rng.IntN(len(corruptBytes))]
		}
	default:
		out = line
	}
	return out, stall, false
}

// Apply replays the schedule over a recorded stream and returns the bytes
// the peer would observe — the local oracle a chaos test uses to compute
// exactly which records survive. Stalls are skipped (they do not change
// bytes), and a scheduled drop cuts the result short.
func Apply(data []byte, f Faults) []byte {
	f.Stall = 0
	f.StallEvery = 0
	lf := newFaulter(f)
	var out bytes.Buffer
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line = data[:i+1]
		}
		data = data[len(line):]
		got, _, drop := lf.apply(line)
		if drop {
			break
		}
		out.Write(got)
	}
	return out.Bytes()
}

// Reader wraps an io.Reader with the fault schedule, for feeding a
// feed.Reader (or any line parser) a damaged stream: corrupted and
// truncated lines, stalled delivery, and an abrupt mid-stream EOF on drop.
type Reader struct {
	src  *bufio.Reader
	lf   *faulter
	buf  []byte
	off  int
	done bool
	err  error
}

// NewReader wraps r with schedule f.
func NewReader(r io.Reader, f Faults) *Reader {
	return &Reader{src: bufio.NewReaderSize(r, 64*1024), lf: newFaulter(f)}
}

// Read serves the transformed stream.
func (r *Reader) Read(p []byte) (int, error) {
	for r.off >= len(r.buf) {
		if r.done {
			if r.err != nil {
				return 0, r.err
			}
			return 0, io.EOF
		}
		line, err := r.src.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return 0, err
		}
		if err == io.EOF {
			r.done = true
			if len(line) == 0 {
				return 0, io.EOF
			}
		}
		out, stall, drop := r.lf.apply(line)
		if drop {
			// Abrupt EOF mid-stream: the reader sees a clean end of file
			// even though the writer had more to say.
			r.done = true
			return 0, io.EOF
		}
		if stall > 0 {
			time.Sleep(stall)
		}
		r.buf = append(r.buf[:0], out...)
		r.off = 0
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}
