package pcm

import (
	"math"
	"testing"
)

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, 0.01); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := NewMonitor(func() (uint64, uint64) { return 0, 0 }, 0); err == nil {
		t.Error("zero T_PCM accepted")
	}
}

func TestMonitorDeltas(t *testing.T) {
	var access, miss uint64
	m, err := NewMonitor(func() (uint64, uint64) { return access, miss }, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	access, miss = 150, 30
	samples, err := m.Advance(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	s := samples[0]
	if s.Access != 150 || s.Miss != 30 || math.Abs(s.T-0.01) > 1e-12 {
		t.Fatalf("sample = %+v", s)
	}
	// Second interval: only the new delta.
	access, miss = 250, 35
	samples, err = m.Advance(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Access != 100 || samples[0].Miss != 5 {
		t.Fatalf("second sample = %+v", samples[0])
	}
}

func TestMonitorSubIntervalAdvance(t *testing.T) {
	var access uint64
	m, err := NewMonitor(func() (uint64, uint64) { return access, 0 }, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	access = 10
	samples, err := m.Advance(0.004)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 {
		t.Fatalf("sampled before T_PCM elapsed: %v", samples)
	}
	access = 25
	samples, err = m.Advance(0.006)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Access != 25 {
		t.Fatalf("samples = %+v, want one with Access=25", samples)
	}
}

func TestMonitorStartingCountersIgnored(t *testing.T) {
	// Counters that were nonzero before the monitor attached must not leak
	// into the first sample.
	m, err := NewMonitor(func() (uint64, uint64) { return 1000, 500 }, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := m.Advance(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Access != 0 || samples[0].Miss != 0 {
		t.Fatalf("first sample leaked pre-attach counters: %+v", samples[0])
	}
}

func TestMonitorAdvanceValidation(t *testing.T) {
	m, err := NewMonitor(func() (uint64, uint64) { return 0, 0 }, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(0); err == nil {
		t.Error("zero advance accepted")
	}
	if m.TPCM() != 0.01 {
		t.Errorf("TPCM = %v", m.TPCM())
	}
}

func TestMonitorLongRunSampleCount(t *testing.T) {
	var access uint64
	m, err := NewMonitor(func() (uint64, uint64) { access += 10; return access, 0 }, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 1000; i++ { // 10 s in 0.01 steps
		samples, err := m.Advance(0.01)
		if err != nil {
			t.Fatal(err)
		}
		total += len(samples)
	}
	if total != 1000 {
		t.Fatalf("got %d samples over 10 s, want 1000", total)
	}
}

func TestSampleCount(t *testing.T) {
	cases := []struct {
		seconds, tpcm float64
		want          int
	}{
		// Exact multiples whose float quotient lands just below the
		// integer: plain truncation would lose the final sample.
		{0.3, 0.1, 3},
		{4.2, 0.7, 6},
		{2000, 0.01, 200000},
		// Genuine partial intervals still truncate.
		{0.35, 0.1, 3},
		{1.99, 1, 1},
		// Degenerate inputs.
		{0, 0.01, 0},
		{-5, 0.01, 0},
		{10, 0, 0},
		{10, -1, 0},
	}
	for _, c := range cases {
		if got := SampleCount(c.seconds, c.tpcm); got != c.want {
			t.Errorf("SampleCount(%v, %v) = %d, want %d", c.seconds, c.tpcm, got, c.want)
		}
	}
}
