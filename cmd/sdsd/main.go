// Command sdsd is the concurrent multi-VM detection server — the paper's
// provider-side deployment (§4): one SDS instance per physical server,
// monitoring every co-resident VM's PCM counter stream at once.
//
// Each protected VM (or its telemetry agent) opens one connection, sends
// the handshake line
//
//	sds/1 vm=<id> [app=<name>] [scheme=<sds|sdsb|sdsp|kstest|cusum|timefrag|ewmavar>] [profile=<seconds>]
//
// and then streams `t,access,miss` CSV lines. The server runs the
// profile→detect lifecycle per stream and answers on the same connection
// with `ok`, `alarm {json}` and `done` lines. Operational state is served
// over HTTP at -ops: GET /healthz and GET /metricsz.
//
//	# serve TCP streams, ops surface on :7032
//	sdsd -listen 127.0.0.1:7031 -ops 127.0.0.1:7032
//
//	# stream a recorded file at it
//	(echo "sds/1 vm=web-1 app=kmeans profile=60"; cat samples.csv) | nc 127.0.0.1 7031
//
// SIGINT/SIGTERM trigger a graceful drain: listeners close, buffered
// samples are processed, every client receives its `done` summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/memdos/sds/internal/server"
)

func main() {
	var (
		listen         = flag.String("listen", "127.0.0.1:7031", "TCP address for VM sample streams (empty to disable)")
		unixPath       = flag.String("unix", "", "unix socket path for VM sample streams (empty to disable)")
		ops            = flag.String("ops", "127.0.0.1:7032", "HTTP address for /healthz and /metricsz (empty to disable)")
		scheme         = flag.String("scheme", "sds", "default detection scheme: sds, sdsb, sdsp, kstest, cusum, timefrag or ewmavar")
		app            = flag.String("app", "monitored-vm", "default application name for profiles")
		profileSeconds = flag.Float64("profile-seconds", 900, "default Stage-1 profile window in stream seconds")
		buffer         = flag.Int("buffer", 1024, "per-connection sample buffer (full buffer backpressures the client)")
		shards         = flag.Int("shards", 0, "ingest shards and SO_REUSEPORT accept queues (0 = GOMAXPROCS)")
		fdLimit        = flag.Uint64("fd-limit", 131072, "raise RLIMIT_NOFILE to at least this many fds (best effort; 0 = leave as is)")
		quiet          = flag.Bool("quiet", false, "suppress per-stream log lines (scale runs: logging 100k streams costs more than ingesting them)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown drain may take before connections are force-closed")
	)
	flag.Parse()
	if err := run(*listen, *unixPath, *ops, *scheme, *app, *profileSeconds, *buffer, *shards, *fdLimit, *quiet, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sdsd:", err)
		os.Exit(1)
	}
}

func run(listen, unixPath, ops, scheme, app string, profileSeconds float64, buffer, shards int, fdLimit uint64, quiet bool, drainTimeout time.Duration) error {
	if listen == "" && unixPath == "" {
		return fmt.Errorf("need at least one stream listener (-listen or -unix)")
	}
	if fdLimit > 0 {
		if limit, err := server.EnsureFDLimit(fdLimit); err != nil {
			log.Printf("sdsd: %v (continuing with %d fds)", err, limit)
		}
	}
	opts := server.Options{
		Scheme:         scheme,
		App:            app,
		ProfileSeconds: profileSeconds,
		BufferSamples:  buffer,
		Shards:         shards,
		Logf:           log.Printf,
	}
	if quiet {
		opts.Logf = nil
	}
	srv := server.New(opts)

	serveErr := make(chan error, srv.ShardCount()+2)
	if listen != "" {
		listeners, sharded, err := server.ListenShards("tcp", listen, srv.ShardCount())
		if err != nil {
			return err
		}
		if sharded {
			log.Printf("sdsd: streaming on tcp %s (%d ingest shards, %d SO_REUSEPORT accept queues)",
				listeners[0].Addr(), srv.ShardCount(), len(listeners))
		} else {
			log.Printf("sdsd: streaming on tcp %s (%d ingest shards, single accept queue)",
				listeners[0].Addr(), srv.ShardCount())
		}
		for _, l := range listeners {
			l := l
			go func() { serveErr <- srv.Serve(l) }()
		}
	}
	if unixPath != "" {
		// A stale socket file from a previous run blocks the bind.
		os.Remove(unixPath)
		l, err := net.Listen("unix", unixPath)
		if err != nil {
			return err
		}
		defer os.Remove(unixPath)
		log.Printf("sdsd: streaming on unix %s", unixPath)
		go func() { serveErr <- srv.Serve(l) }()
	}
	var opsSrv *http.Server
	if ops != "" {
		l, err := net.Listen("tcp", ops)
		if err != nil {
			return err
		}
		log.Printf("sdsd: ops surface on http://%s", l.Addr())
		opsSrv = &http.Server{Handler: srv.Handler()}
		go func() {
			if err := opsSrv.Serve(l); err != nil && err != http.ErrServerClosed {
				serveErr <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("sdsd: %v, draining (timeout %s)", s, drainTimeout)
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	if opsSrv != nil {
		opsSrv.Close()
	}
	m := srv.Metrics()
	log.Printf("sdsd: drained (%d samples, %d alarms over %d VMs)", m.TotalSamples, m.TotalAlarms, len(m.VMs))
	return err
}
