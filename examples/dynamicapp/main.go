// Dynamic applications (paper §6): an application's behaviour legitimately
// changes at runtime — here, k-means input data grows and the base counter
// level jumps by 60%. The stale Stage-1 profile turns into a persistent
// alarm; the Reprofiler flags it as suspected-stale, the tenant confirms,
// the profile is rebuilt from the rolling buffer without a detection gap,
// and a real attack afterwards is still caught.
//
//	go run ./examples/dynamicapp
package main

import (
	"fmt"
	"log"

	"github.com/memdos/sds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := sds.DefaultConfig()
	profile, err := sds.CollectProfile(sds.KMeans, 1, 900, cfg)
	if err != nil {
		return err
	}
	detector, err := sds.NewReprofiler(sds.KMeans, profile, cfg, 600)
	if err != nil {
		return err
	}
	fmt.Printf("initial profile: μ_access = %.4g\n", profile.MeanAccess)

	// The "changed" application: same workload, 60% higher counter level.
	changedProfile, err := changedApp()
	if err != nil {
		return err
	}
	app, err := sds.NewApplicationFromProfile(changedProfile, 2)
	if err != nil {
		return err
	}

	now := 0.0
	feed := func(seconds float64, attack sds.AttackSchedule) {
		n := sds.SampleCount(seconds, cfg.TPCM)
		for i := 0; i < n; i++ {
			now += cfg.TPCM
			a, m := app.Sample(cfg.TPCM, attack.Env(now, false))
			detector.Observe(sds.Sample{T: now, Access: a, Miss: m})
		}
	}

	// 15 minutes of the changed application: the stale profile alarms.
	feed(900, sds.AttackSchedule{})
	fmt.Printf("[%6.0fs] alarmed=%v suspected-stale=%v (alarm persisted ≫ attack time scales)\n",
		now, detector.Alarmed(), detector.StaleSuspected(120))

	// The tenant confirms the change; re-profile from the rolling buffer.
	fresh, err := detector.Reprofile()
	if err != nil {
		return err
	}
	fmt.Printf("[%6.0fs] re-profiled: μ_access %.4g → %.4g\n", now, profile.MeanAccess, fresh.MeanAccess)

	feed(300, sds.AttackSchedule{})
	fmt.Printf("[%6.0fs] alarmed=%v on the new baseline\n", now, detector.Alarmed())

	// A real LLC-cleansing attack on the new baseline.
	attackAt := now + 60
	feed(240, sds.AttackSchedule{Kind: sds.CleanseAttack, Start: attackAt, Ramp: 10})
	alarms := detector.Alarms()
	if len(alarms) == 0 {
		return fmt.Errorf("attack missed")
	}
	last := alarms[len(alarms)-1]
	fmt.Printf("[%6.0fs] attack detected %.1f s after launch: %s\n", now, last.T-attackAt, last.Reason)
	return nil
}

// changedApp builds the post-change application profile.
func changedApp() (sds.AppProfile, error) {
	prof, err := sds.ApplicationProfile(sds.KMeans)
	if err != nil {
		return sds.AppProfile{}, err
	}
	prof.BaseAccess *= 1.6
	return prof, nil
}
