package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2)
	for i := 0; i < 100; i++ {
		if got, want := a.Float64(), b.Float64(); got != want {
			t.Fatalf("draw %d: %v != %v", i, got, want)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(42, 1)
	b := Derive(42, 2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams collided %d/64 times", same)
	}
}

func TestDeriveStable(t *testing.T) {
	x := Derive(7, 3, 9).Uint64()
	y := Derive(7, 3, 9).Uint64()
	if x != y {
		t.Fatalf("Derive not stable: %d != %d", x, y)
	}
}

func TestDeriveStringDistinct(t *testing.T) {
	a := DeriveString(1, "terasort").Uint64()
	b := DeriveString(1, "kmeans").Uint64()
	if a == b {
		t.Fatal("different labels produced identical first draws")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3, 4)
	f := func(span uint8) bool {
		lo := -5.0
		hi := lo + float64(span)/16 + 0.01
		v := r.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5, 6)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(std-3) > 0.05 {
		t.Errorf("std = %v, want ~3", std)
	}
}

func TestNoiseFactorMoments(t *testing.T) {
	r := New(7, 8)
	const n = 200000
	const cv = 0.25
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NoiseFactor(cv)
		if v <= 0 {
			t.Fatalf("noise factor %v not positive", v)
		}
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("mean = %v, want ~1", mean)
	}
	if math.Abs(std/mean-cv) > 0.01 {
		t.Errorf("cv = %v, want ~%v", std/mean, cv)
	}
}

func TestNoiseFactorZeroCV(t *testing.T) {
	r := New(9, 10)
	for i := 0; i < 10; i++ {
		if got := r.NoiseFactor(0); got != 1 {
			t.Fatalf("NoiseFactor(0) = %v, want 1", got)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(11, 12)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("mean = %v, want ~4", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13, 14)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("p = %v, want ~0.3", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(15, 16)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
