// Package vmm models the virtualized server of the paper's testbed: a
// physical machine whose VMs share a last-level cache and a memory bus, a
// scheduler that advances them in virtual time, and the execution-throttling
// primitive the KStest baseline detector relies on (pausing every VM except
// the protected one while reference samples are collected).
//
// Per-VM execution progress is tracked explicitly so the evaluation can
// compute normalized execution times (the paper's performance-overhead
// metric, Fig. 12) without wall-clock measurement.
package vmm

import (
	"fmt"
	"math"

	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/membus"
)

// Workload generates the memory behaviour of one VM in the
// micro-architectural simulation.
type Workload interface {
	// Name identifies the workload (e.g. "terasort", "buslock-attack").
	Name() string
	// Demand returns how many LLC accesses the workload wants to issue
	// during a tick of dt virtual seconds, and the fraction of the tick it
	// holds atomic bus locks (nonzero only for the bus-lock attacker).
	Demand(dt float64) (accesses int, lockFraction float64)
	// Issue performs granted accesses against the shared cache on behalf
	// of owner. granted may be less than the demand when the bus is
	// contended or locked.
	Issue(granted int, c *cachesim.Cache, owner cachesim.Owner)
}

// VM is one virtual machine placed on a Machine.
type VM struct {
	id       int
	name     string
	workload Workload
	paused   bool

	progress float64 // useful execution seconds achieved
	demanded uint64  // cumulative demanded accesses
	granted  uint64  // cumulative granted accesses
}

// ID returns the VM's dense index on its machine (also its cache owner id).
func (v *VM) ID() int { return v.id }

// Name returns the VM name.
func (v *VM) Name() string { return v.name }

// Paused reports whether the VM is currently throttled.
func (v *VM) Paused() bool { return v.paused }

// Progress returns the useful execution seconds the VM has achieved. A VM
// that is never paused and never starved progresses at 1 second per
// simulated second; throttling and bus starvation slow it down.
func (v *VM) Progress() float64 { return v.progress }

// Granted returns the cumulative number of LLC accesses the VM performed.
func (v *VM) Granted() uint64 { return v.granted }

// Demanded returns the cumulative number of LLC accesses the VM requested.
func (v *VM) Demanded() uint64 { return v.demanded }

// Arbiter is the bus-allocation contract the machine schedules against.
// *membus.Bus satisfies it; tests may substitute arbiters with different
// grant orderings — Tick pairs grants to demands by Owner, never by
// position, so any permutation of the returned grants is acceptable.
type Arbiter interface {
	Allocate(dt float64, demands []membus.Demand) ([]membus.Grant, error)
}

// Machine is the simulated physical server.
type Machine struct {
	cache *cachesim.Cache
	bus   Arbiter
	vms   []*VM
	now   float64

	// demandScratch is reused across ticks so the steady-state Tick path
	// does not allocate; demandOwner[id] indexes the tick's demand for VM
	// id (-1 when the VM was paused and demanded nothing).
	demandScratch []membus.Demand
	demandOwner   []int
}

// NewMachine assembles a server from its shared hardware resources.
func NewMachine(cache *cachesim.Cache, bus Arbiter) (*Machine, error) {
	if cache == nil || bus == nil {
		return nil, fmt.Errorf("vmm: machine requires a cache and a bus")
	}
	return &Machine{cache: cache, bus: bus}, nil
}

// AddVM places a VM running the given workload on the machine and returns it.
func (m *Machine) AddVM(name string, w Workload) (*VM, error) {
	if w == nil {
		return nil, fmt.Errorf("vmm: VM %q requires a workload", name)
	}
	vm := &VM{id: len(m.vms), name: name, workload: w}
	m.vms = append(m.vms, vm)
	return vm, nil
}

// VMs returns the machine's VMs in placement order. The returned slice is a
// copy; the VMs themselves are shared.
func (m *Machine) VMs() []*VM {
	out := make([]*VM, len(m.vms))
	copy(out, m.vms)
	return out
}

// Cache returns the machine's shared LLC.
func (m *Machine) Cache() *cachesim.Cache { return m.cache }

// Bus returns the machine's shared memory bus arbiter.
func (m *Machine) Bus() Arbiter { return m.bus }

// Now returns the current virtual time in seconds.
func (m *Machine) Now() float64 { return m.now }

// Pause throttles the VM with the given id (idempotent).
func (m *Machine) Pause(id int) error {
	vm, err := m.vm(id)
	if err != nil {
		return err
	}
	vm.paused = true
	return nil
}

// Resume unthrottles the VM with the given id (idempotent).
func (m *Machine) Resume(id int) error {
	vm, err := m.vm(id)
	if err != nil {
		return err
	}
	vm.paused = false
	return nil
}

// PauseAllExcept throttles every VM except the one given — the execution
// throttling step of the KStest baseline's reference collection.
func (m *Machine) PauseAllExcept(id int) error {
	if _, err := m.vm(id); err != nil {
		return err
	}
	for _, vm := range m.vms {
		vm.paused = vm.id != id
	}
	return nil
}

// ResumeAll unthrottles every VM.
func (m *Machine) ResumeAll() {
	for _, vm := range m.vms {
		vm.paused = false
	}
}

// Tick advances virtual time by dt seconds: it gathers demands from all
// runnable VMs, lets the bus arbitrate, and has each VM issue its granted
// accesses against the shared cache. Paused VMs neither demand nor progress.
func (m *Machine) Tick(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("vmm: tick duration must be positive, got %v", dt)
	}
	demands := m.demandScratch[:0]
	if m.demandOwner == nil || len(m.demandOwner) < len(m.vms) {
		m.demandOwner = make([]int, len(m.vms))
	}
	for _, vm := range m.vms {
		m.demandOwner[vm.id] = -1
	}
	for _, vm := range m.vms {
		if vm.paused {
			continue
		}
		accesses, lock := vm.workload.Demand(dt)
		if accesses < 0 {
			return fmt.Errorf("vmm: workload %q returned negative demand %d", vm.workload.Name(), accesses)
		}
		m.demandOwner[vm.id] = len(demands)
		vm.demanded += uint64(accesses)
		demands = append(demands, membus.Demand{Owner: vm.id, Accesses: accesses, LockFraction: lock})
	}
	m.demandScratch = demands
	grants, err := m.bus.Allocate(dt, demands)
	if err != nil {
		return fmt.Errorf("vmm: bus allocation: %w", err)
	}
	for _, g := range grants {
		if g.Owner < 0 || g.Owner >= len(m.vms) {
			return fmt.Errorf("vmm: bus granted to unknown owner %d", g.Owner)
		}
		di := m.demandOwner[g.Owner]
		switch {
		case di == -1:
			return fmt.Errorf("vmm: bus granted to owner %d which demanded nothing this tick", g.Owner)
		case di == -2:
			return fmt.Errorf("vmm: bus granted twice to owner %d in one tick", g.Owner)
		}
		m.demandOwner[g.Owner] = -2
		vm := m.vms[g.Owner]
		d := demands[di]
		vm.granted += uint64(g.Accesses)
		vm.workload.Issue(g.Accesses, m.cache, cachesim.Owner(vm.id))
		// Progress at the fraction of demanded memory work that actually
		// completed; a VM with no memory demand this tick progresses fully.
		if d.Accesses > 0 {
			vm.progress += dt * float64(g.Accesses) / float64(d.Accesses)
		} else {
			vm.progress += dt
		}
	}
	m.now += dt
	return nil
}

// Run advances the machine until virtual time reaches deadline, in steps of
// dt seconds (the final step count is rounded, so floating-point drift never
// adds a spurious extra tick). A deadline earlier than the machine's current
// virtual time is an error, not a silent no-op.
func (m *Machine) Run(deadline, dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("vmm: run step must be positive, got %v", dt)
	}
	ticks := int(math.Round((deadline - m.now) / dt))
	if ticks < 0 {
		return fmt.Errorf("vmm: run deadline %v is before current virtual time %v", deadline, m.now)
	}
	for i := 0; i < ticks; i++ {
		if err := m.Tick(dt); err != nil {
			return err
		}
	}
	return nil
}

// CacheStats returns the shared-cache counters attributed to the VM.
func (m *Machine) CacheStats(id int) (cachesim.Stats, error) {
	if _, err := m.vm(id); err != nil {
		return cachesim.Stats{}, err
	}
	return m.cache.Stats(cachesim.Owner(id)), nil
}

func (m *Machine) vm(id int) (*VM, error) {
	if id < 0 || id >= len(m.vms) {
		return nil, fmt.Errorf("vmm: no VM with id %d (have %d)", id, len(m.vms))
	}
	return m.vms[id], nil
}
