package experiment

import (
	"sync"

	"github.com/memdos/sds/internal/detect"
)

// profileKey identifies a Stage-1 profiling pass exactly: the profile is a
// pure function of the application, the derived seed, the profiling duration
// and the profile-affecting detection parameters (the profiling RNG
// substream app+"/profile" is independent of the run substream, so runs
// sharing a derived seed share the profile bit for bit).
//
// Only the detect.Config fields that BuildProfile actually consumes enter
// the key — the sampling interval and the MA/EWMA/periodicity geometry.
// Detection-side knobs (k, H_C, H_P, the zoo's CUSUM/TimeFrag/EWMAVar
// thresholds) deliberately do not: the ROC tournament sweeps those knobs
// across dozens of configs per scheme, and keying on the full Config would
// rebuild the identical 2000-virtual-second profiling pass once per
// threshold instead of once per (app, seed).
type profileKey struct {
	app            string
	seed           uint64
	profileSeconds float64
	params         profileParams
}

// profileParams is the profile-affecting subset of detect.Config.
type profileParams struct {
	tpcm, alpha, periodTolerance float64
	w, dw                        int
}

func profileParamsOf(cfg detect.Config) profileParams {
	return profileParams{
		tpcm:            cfg.TPCM,
		alpha:           cfg.Alpha,
		periodTolerance: cfg.PeriodTolerance,
		w:               cfg.W,
		dw:              cfg.DW,
	}
}

// profileCache deduplicates Stage-1 profiling across an experiment grid.
// Accuracy evaluates up to 8 (attack × scheme) cells per (app, run) pair,
// and DetectionRun derives the profile seed from (Seed, run) alone — so
// without the cache the identical 2000-virtual-second profiling pass is
// recomputed for every cell. The cache is safe for concurrent use; each
// profile is built once (sync.Once per entry) even when workers race.
type profileCache struct {
	mu      sync.Mutex
	entries map[profileKey]*profileEntry
}

type profileEntry struct {
	once sync.Once
	prof detect.Profile
	err  error
}

func newProfileCache() *profileCache {
	return &profileCache{entries: make(map[profileKey]*profileEntry)}
}

// profile returns the Stage-1 profile for the key, building it at most once.
func (pc *profileCache) profile(c Config, app string, seed uint64) (detect.Profile, error) {
	key := profileKey{app: app, seed: seed, profileSeconds: c.ProfileSeconds, params: profileParamsOf(c.Detect)}
	pc.mu.Lock()
	e := pc.entries[key]
	if e == nil {
		e = &profileEntry{}
		pc.entries[key] = e
	}
	pc.mu.Unlock()
	e.once.Do(func() { e.prof, e.err = c.buildProfile(app, seed) })
	return e.prof, e.err
}

// cachedProfile routes through the cache when one is attached (the grid
// runners attach one for the duration of their fan-out) and falls back to a
// direct build otherwise.
func (c Config) cachedProfile(app string, seed uint64) (detect.Profile, error) {
	if c.profiles != nil {
		return c.profiles.profile(c, app, seed)
	}
	return c.buildProfile(app, seed)
}
