// Package feed parses PCM counter streams from external tools. The
// expected format is CSV lines of `t,access,miss` — time in seconds plus
// the LLC access and miss counts of the monitored VM for the preceding
// sampling interval — which is trivial to produce from Intel PCM's csv
// output or a perf-stat wrapper. A header line and comment lines starting
// with '#' are skipped.
package feed

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/memdos/sds/internal/pcm"
)

// ParseError describes one malformed line in an otherwise healthy stream.
// The Reader keeps its position after returning one, so callers may treat
// it as recoverable — quarantine the line and call Next again — while I/O
// failures (which are not ParseErrors) remain fatal.
type ParseError struct {
	Line int    // 1-based physical line number
	Text string // the offending line, as read
	Err  error  // what was wrong with it
}

func (e *ParseError) Error() string { return fmt.Sprintf("feed: line %d: %v", e.Line, e.Err) }

func (e *ParseError) Unwrap() error { return e.Err }

// Reader parses a PCM sample stream.
type Reader struct {
	scanner *bufio.Scanner
	line    int
	sawData bool // a data candidate line (non-blank, non-comment) was seen
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{scanner: sc}
}

// Next returns the next sample, io.EOF at end of stream, or a parse error
// annotated with the line number. Blank lines, comments and a leading
// header are skipped.
func (r *Reader) Next() (pcm.Sample, error) {
	for r.scanner.Scan() {
		r.line++
		text := strings.TrimSpace(r.scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		first := !r.sawData
		r.sawData = true
		s, err := parseLine(text)
		if err != nil {
			// A header is only valid on the first non-comment, non-blank
			// line — not necessarily physical line 1, since PCM wrappers
			// commonly emit '#' comment banners above it.
			if first && isHeader(text) {
				continue
			}
			return pcm.Sample{}, &ParseError{Line: r.line, Text: text, Err: err}
		}
		return s, nil
	}
	if err := r.scanner.Err(); err != nil {
		return pcm.Sample{}, fmt.Errorf("feed: read: %w", err)
	}
	return pcm.Sample{}, io.EOF
}

// ReadAll drains the stream into a slice (profiling helper).
func (r *Reader) ReadAll() ([]pcm.Sample, error) {
	var out []pcm.Sample
	for {
		s, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}

func parseLine(text string) (pcm.Sample, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 3 {
		return pcm.Sample{}, fmt.Errorf("want 3 comma-separated fields (t,access,miss), got %d", len(fields))
	}
	var (
		s   pcm.Sample
		err error
	)
	if s.T, err = strconv.ParseFloat(strings.TrimSpace(fields[0]), 64); err != nil {
		return pcm.Sample{}, fmt.Errorf("bad time %q", fields[0])
	}
	if s.Access, err = strconv.ParseFloat(strings.TrimSpace(fields[1]), 64); err != nil {
		return pcm.Sample{}, fmt.Errorf("bad access count %q", fields[1])
	}
	if s.Miss, err = strconv.ParseFloat(strings.TrimSpace(fields[2]), 64); err != nil {
		return pcm.Sample{}, fmt.Errorf("bad miss count %q", fields[2])
	}
	return s, nil
}

// isHeader reports whether the first line looks like a CSV header rather
// than data.
func isHeader(text string) bool {
	for _, f := range strings.Split(text, ",") {
		if _, err := strconv.ParseFloat(strings.TrimSpace(f), 64); err == nil {
			return false
		}
	}
	return true
}

// Writer emits samples in the same CSV format (for recording simulated
// streams that detectd or external tools can replay).
type Writer struct {
	w      *bufio.Writer
	header bool
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one sample (writing the header first).
func (w *Writer) Write(s pcm.Sample) error {
	if !w.header {
		if _, err := w.w.WriteString("t,access,miss\n"); err != nil {
			return err
		}
		w.header = true
	}
	// 'g' with precision -1 is the shortest exact representation, so
	// Write→Read round trips losslessly.
	_, err := fmt.Fprintf(w.w, "%s,%s,%s\n",
		strconv.FormatFloat(s.T, 'g', -1, 64),
		strconv.FormatFloat(s.Access, 'g', -1, 64),
		strconv.FormatFloat(s.Miss, 'g', -1, 64))
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
