package detect

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/memdos/sds/internal/pcm"
)

// workerID hands each parallel benchmark worker a distinct VM.
var workerID atomic.Uint64

// TestFleetShardDistribution: realistic VM-name populations must spread
// across the registry shards — a degenerate hash would put every stream
// back behind one lock and silently undo the striping.
func TestFleetShardDistribution(t *testing.T) {
	f := NewFleet()
	const vms = 4096
	counts := make(map[*fleetShard]int)
	for i := 0; i < vms; i++ {
		counts[f.shard(fmt.Sprintf("load-%05d", i))]++
	}
	if len(counts) != fleetShardCount {
		t.Fatalf("%d VM names hit only %d of %d shards", vms, len(counts), fleetShardCount)
	}
	// With 64 samples expected per shard, 4x over the mean would be a
	// badly skewed hash.
	for sh, n := range counts {
		if n > 4*vms/fleetShardCount {
			t.Errorf("shard %p holds %d of %d VMs — hash is skewed", sh, n, vms)
		}
	}
}

// TestFleetShardStability: the shard of a name never changes — Protect,
// Observe and Unprotect must all land on the same stripe.
func TestFleetShardStability(t *testing.T) {
	f := NewFleet()
	for i := 0; i < 100; i++ {
		vm := fmt.Sprintf("vm-%d", i)
		if f.shard(vm) != f.shard(vm) {
			t.Fatalf("shard of %q is unstable", vm)
		}
		if err := f.Protect(vm, &tickingDetector{}); err != nil {
			t.Fatal(err)
		}
		if err := f.Observe(vm, pcm.Sample{T: 0.01, Access: 1, Miss: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Size() != 100 {
		t.Fatalf("Size() = %d, want 100", f.Size())
	}
	for i := 0; i < 100; i++ {
		f.Unprotect(fmt.Sprintf("vm-%d", i))
	}
	if f.Size() != 0 {
		t.Fatalf("Size() = %d after Unprotect of every VM, want 0", f.Size())
	}
}

// TestFleetObserveZeroAlloc pins the fleet routing overhead (hash, shard
// RLock, entry lock) at zero allocations per sample, matching the
// detectors' own Observe contract.
func TestFleetObserveZeroAlloc(t *testing.T) {
	f := NewFleet()
	const vms = 64
	names := make([]string, vms)
	for i := range names {
		names[i] = fmt.Sprintf("vm-%03d", i)
		if err := f.Protect(names[i], &tickingDetector{}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		if err := f.Observe(names[i%vms], pcm.Sample{T: float64(i), Access: 1, Miss: 0}); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// tickingDetector itself appends an alarm every 100 observes; allow
	// that amortized append, nothing more.
	if allocs > 0.05 {
		t.Fatalf("Fleet.Observe: %.3f allocs/op, want ~0 (routing must not allocate)", allocs)
	}
}

// BenchmarkFleetObserveParallel measures the Observe path under the
// server's shape: many goroutines, each feeding its own VM. With the
// sharded registry the only shared state two distinct VMs touch is a
// shard RWMutex 1/64th of the time.
func BenchmarkFleetObserveParallel(b *testing.B) {
	f := NewFleet()
	const vms = 1024
	for i := 0; i < vms; i++ {
		if err := f.Protect(fmt.Sprintf("vm-%04d", i), nopDetector{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		// Each worker owns one VM, like one connection goroutine.
		vm := fmt.Sprintf("vm-%04d", workerID.Add(1)%vms)
		n := 0
		for pb.Next() {
			n++
			if err := f.Observe(vm, pcm.Sample{T: float64(n) * 0.01, Access: 100, Miss: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// nopDetector isolates the fleet's routing cost from detector work.
type nopDetector struct{}

func (nopDetector) Name() string       { return "nop" }
func (nopDetector) Observe(pcm.Sample) {}
func (nopDetector) Alarmed() bool      { return false }
func (nopDetector) Alarms() []Alarm    { return nil }
