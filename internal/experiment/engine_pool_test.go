package experiment

import (
	"testing"

	"github.com/memdos/sds/internal/metrics"
)

// TestRunPoolExcludesNoOnsetRuns pins the cell-accounting contract: runs
// without an attack onset (Kind None — TP+FN = 0) contribute to the
// specificity pool only. Before the fix their vacuous Recall = 1 entered
// the recall distribution, their latched false alarms (metrics marks
// Detected on any alarm when AttackStart is 0) bumped the detection
// count, and the detection-rate denominator counted them as missed or
// detected attacks that never happened — exactly the mix the ROC
// tournament's FPR cells pool.
func TestRunPoolExcludesNoOnsetRuns(t *testing.T) {
	var p runPool
	// One genuine attack run: half the attack epochs caught, 12 s delay.
	p.add(metrics.Outcome{
		TP: 5, FN: 5, TN: 8, FP: 2,
		Recall: 0.5, Specificity: 0.8,
		Detected: true, Delay: 12,
	})
	// Two no-onset runs, one clean, one with a false alarm that set the
	// vacuous Detected flag. Neither may touch recall, delay or the
	// detection rate.
	p.add(metrics.Outcome{
		TN: 10, Recall: 1, Specificity: 1, Delay: -1,
	})
	p.add(metrics.Outcome{
		TN: 9, FP: 1, Recall: 1, Specificity: 0.9,
		Detected: true, Delay: 3,
	})

	if p.runs != 3 || p.onsets != 1 {
		t.Fatalf("runs/onsets = %d/%d, want 3/1", p.runs, p.onsets)
	}
	if rec := p.recall(); rec.N != 1 || rec.Median != 50 {
		t.Fatalf("recall pooled %d samples (median %v), want the single onset run at 50", rec.N, rec.Median)
	}
	if d := p.delay(); d.N != 1 || d.Median != 12 {
		t.Fatalf("delay pooled %d samples (median %v), want only the onset run's 12 s", d.N, d.Median)
	}
	if rate := p.detectionRate(); rate != 1 {
		t.Fatalf("detectionRate = %v, want 1 (1 of 1 onset runs; false alarms on no-onset runs do not count)", rate)
	}
	if sp := p.specificity(); sp.N != 3 {
		t.Fatalf("specificity pooled %d samples, want all 3 runs", sp.N)
	}
}

// TestRunPoolAllNoOnset pins the empty-denominator behaviour: a cell of
// only no-attack runs has no detection rate (0, not NaN or 1) and empty
// recall/delay distributions.
func TestRunPoolAllNoOnset(t *testing.T) {
	var p runPool
	p.add(metrics.Outcome{TN: 10, Recall: 1, Specificity: 1, Delay: -1})
	p.add(metrics.Outcome{TN: 8, FP: 2, Recall: 1, Specificity: 0.8, Detected: true, Delay: -1})

	if rate := p.detectionRate(); rate != 0 {
		t.Fatalf("detectionRate = %v on a no-onset cell, want 0", rate)
	}
	if rec := p.recall(); rec.N != 0 {
		t.Fatalf("recall pooled %d samples on a no-onset cell, want 0", rec.N)
	}
	if d := p.delay(); d.N != 0 {
		t.Fatalf("delay pooled %d samples on a no-onset cell, want 0", d.N)
	}
	if sp := p.specificity(); sp.N != 2 {
		t.Fatalf("specificity pooled %d samples, want 2", sp.N)
	}
}
