package detect

import (
	"fmt"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/signal"
	"github.com/memdos/sds/internal/timeseries"
)

// SDSP is the Period-based Statistical Detection Scheme for periodic
// applications (paper §4.2.2). It maintains the moving-average series of
// both cache counters, and every ΔW_P new MA values re-estimates the period
// of the latest W_P values with the DFT–ACF method; H_P consecutive rounds
// in which either counter's period deviates from the profiled normal period
// by more than the tolerance (20%) — or has no detectable period at all —
// raise the alarm.
//
// Both memory DoS attacks slow the victim's computation, so the period
// stretches under bus locking and LLC cleansing alike (Observation 2); the
// cleansing attack additionally disrupts the MissNum waveform directly.
type SDSP struct {
	cfg  Config
	prof Profile

	maA, maM   *timeseries.MovingAverager
	bufA, bufM []float64 // rings of the latest W_P MA values
	wp         int
	pos        int
	filled     bool

	// Steady-state scratch: the period estimator (FFT plans, periodogram,
	// ACF and candidate buffers), the linearized-window buffer the rings
	// are unrolled into, and the precomputed estimator options. Together
	// they make every estimation round allocation-free.
	est        *signal.PeriodEstimator
	winScratch []float64
	estOpts    signal.PeriodOptions

	sinceEstimate int
	devCount      int
	alarmed       bool
	alarms        []Alarm
	estimateHook  func(PeriodStat)
}

var _ Detector = (*SDSP)(nil)

// PeriodStat is one SDS/P period estimate, exposed to hooks (paper Fig. 8b).
type PeriodStat struct {
	// T is the virtual time of the estimate.
	T float64
	// Metric is the counter the estimate was computed on.
	Metric Metric
	// Period is the estimated period in MA windows (0 when none found).
	Period int
	// Found reports whether a period was detected at all.
	Found bool
	// Deviant reports whether this estimate counted as a period change.
	Deviant bool
}

// SDSPOption customizes an SDSP detector.
type SDSPOption interface{ applySDSP(*SDSP) }

type sdspEstimateHook func(PeriodStat)

func (h sdspEstimateHook) applySDSP(d *SDSP) { d.estimateHook = h }

// WithSDSPEstimateHook registers a callback invoked at every period
// estimate (one per counter per estimation round) — used to trace the
// computed-period sequence of the paper's Fig. 8(b).
func WithSDSPEstimateHook(hook func(PeriodStat)) SDSPOption {
	return sdspEstimateHook(hook)
}

// NewSDSP returns an SDS/P detector. The profile must be periodic: SDS/P is
// only applicable to applications with repeating cache-access patterns.
func NewSDSP(prof Profile, cfg Config, opts ...SDSPOption) (*SDSP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !prof.Periodic || prof.PeriodMA < 2 {
		return nil, fmt.Errorf("detect: SDS/P requires a periodic profile, %q has none", prof.App)
	}
	d := &SDSP{
		cfg:  cfg,
		prof: prof,
		wp:   cfg.WPFactor * prof.PeriodMA,
	}
	var err error
	if d.maA, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.maM, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	d.bufA = make([]float64, 0, d.wp)
	d.bufM = make([]float64, 0, d.wp)
	d.est = signal.NewPeriodEstimator()
	d.winScratch = make([]float64, d.wp)
	d.estOpts = periodOptions(cfg, prof.PeriodMA)
	for _, o := range opts {
		o.applySDSP(d)
	}
	return d, nil
}

// Name implements Detector.
func (d *SDSP) Name() string { return "SDS/P" }

// WP returns the period-estimation window size W_P in MA values.
func (d *SDSP) WP() int { return d.wp }

// Observe implements Detector.
func (d *SDSP) Observe(s pcm.Sample) {
	mA, okA := d.maA.Push(s.Access)
	mM, _ := d.maM.Push(s.Miss)
	if !okA {
		// The two averagers share their geometry and emit together.
		return
	}
	d.ObserveMA(s.T, mA, mM)
}

// ObserveMA feeds one window-level observation — the moving averages M_n of
// the two counters at virtual time t — directly into the period-estimation
// rings, bypassing the internal averagers. It is the batch-observation entry
// point of the event-driven cloud simulator. Feed a detector through either
// Observe or ObserveMA, never both.
func (d *SDSP) ObserveMA(t float64, mA, mM float64) {
	if !d.filled {
		d.bufA = append(d.bufA, mA)
		d.bufM = append(d.bufM, mM)
		if len(d.bufA) < d.wp {
			return
		}
		d.filled = true
		// First full window: estimate immediately.
		d.estimate(t)
		return
	}
	d.bufA[d.pos] = mA
	d.bufM[d.pos] = mM
	if d.pos++; d.pos == d.wp {
		d.pos = 0
	}
	d.sinceEstimate++
	if d.sinceEstimate >= d.cfg.DWP {
		d.estimate(t)
	}
}

// estimate runs DFT–ACF on both counters' current windows and updates the
// deviation count and alarm state.
func (d *SDSP) estimate(t float64) {
	d.sinceEstimate = 0
	estA, devA := d.estimateMetric(t, MetricAccess, d.bufA)
	estM, devM := d.estimateMetric(t, MetricMiss, d.bufM)

	if devA || devM {
		d.devCount++
	} else {
		d.devCount = 0
	}
	nowAlarmed := d.devCount >= d.cfg.HP
	if nowAlarmed && !d.alarmed {
		metric, est := MetricAccess, estA
		if devM && !devA {
			metric, est = MetricMiss, estM
		}
		reason := fmt.Sprintf("%s period %d deviates >%.0f%% from normal period %d for %d consecutive estimates",
			metric, est.Period, d.cfg.PeriodTolerance*100, d.prof.PeriodMA, d.devCount)
		if est.Period == 0 {
			reason = fmt.Sprintf("%s has no detectable period (normal period %d) for %d consecutive estimates",
				metric, d.prof.PeriodMA, d.devCount)
		}
		d.alarms = append(d.alarms, Alarm{T: t, Detector: d.Name(), Metric: MetricPeriod, Reason: reason})
	}
	d.alarmed = nowAlarmed
}

// estimateMetric analyses one counter's window, fires the hook, and reports
// the estimate and whether it counts as a deviation.
func (d *SDSP) estimateMetric(t float64, metric Metric, ring []float64) (signal.PeriodEstimate, bool) {
	// Linearize the ring into the reusable scratch window (oldest first).
	window := d.winScratch
	copy(window, ring[d.pos:])
	copy(window[d.wp-d.pos:], ring[:d.pos])

	est, found := d.est.Estimate(window, d.estOpts)
	deviant := !found
	if found {
		diff := relDiff(float64(est.Period), float64(d.prof.PeriodMA))
		deviant = diff > d.cfg.PeriodTolerance
	}
	if d.estimateHook != nil {
		d.estimateHook(PeriodStat{T: t, Metric: metric, Period: est.Period, Found: found, Deviant: deviant})
	}
	return est, deviant
}

// Alarmed implements Detector.
func (d *SDSP) Alarmed() bool { return d.alarmed }

// AlarmCount implements AlarmCounter.
func (d *SDSP) AlarmCount() int { return len(d.alarms) }

// Alarms implements Detector.
func (d *SDSP) Alarms() []Alarm { return cloneAlarms(d.alarms) }

// Deviations returns the current consecutive-deviation count (diagnostics).
func (d *SDSP) Deviations() int { return d.devCount }

// relDiff returns |a−b| / max(|a|,|b|), 0 when both are zero. Inputs are
// non-negative (periods).
func relDiff(a, b float64) float64 {
	den := a
	if b > den {
		den = b
	}
	if den == 0 {
		return 0
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff / den
}
