package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells, printable
// as aligned text (for terminals) or CSV (for plotting).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// distCell formats a metrics distribution the way the paper's error-bar
// plots do: median with the 10th/90th percentiles.
func distCell(median, p10, p90 float64) string {
	return fmt.Sprintf("%.1f [%.1f, %.1f]", median, p10, p90)
}
