// Command benchdiff compares two benchmark trajectories (BENCH_PR*.json
// files, as written by benchjson) and exits non-zero when the newer one
// regresses — the CI gate that keeps the ingest and detection hot paths from
// backsliding between PRs:
//
//	benchdiff -old BENCH_PR3.json -new BENCH_PR6.json
//
// Two gates apply to every benchmark present in both files:
//
//   - allocs/op may never increase. Allocation counts are deterministic per
//     build, so this gate is machine-independent and has no tolerance.
//   - ns/op may not regress by more than -ns-tol (default 10%). Wall-clock
//     measurements are noisy across machines and noisy neighbors, so the
//     gate is restricted to the benchmarks matching -ns-match — by default
//     the detector Observe, FFT/ACF and server ingest hot paths the
//     repository tracks PR over PR — and only applies when the baseline was
//     measured over at least -ns-min-iters iterations (early trajectories
//     recorded microbenchmarks at -benchtime=10x; ten iterations of a 30 ns
//     operation is noise, not a baseline).
//
// Benchmarks that appear in only one trajectory are reported but do not
// fail the gate (suites grow and get renamed); the comparison count is
// printed so an accidentally empty intersection is visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// defaultNSMatch selects the hot-path benchmarks whose wall-clock time is
// gated: detector Observe paths, the FFT/ACF signal kernels, the server
// ingest plane (session batches and the sdsload scale-run lines), and the
// datacenter engine's block-telemetry generator. (The Cloud* scenario
// benchmarks record with -benchtime=1x, so the ≥50-iteration stability rule
// tracks them without ns-gating their single noisy iteration.)
const defaultNSMatch = `Observe|FFT|ACF|PeriodEstimat|ServerIngest|ReadFrame|ReadSample|BlockModel`

// Result mirrors benchjson's recorded measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	oldPath := flag.String("old", "", "baseline trajectory (required)")
	newPath := flag.String("new", "", "candidate trajectory (required)")
	nsTol := flag.Float64("ns-tol", 0.10, "allowed fractional ns/op regression")
	nsMatch := flag.String("ns-match", defaultNSMatch, "regexp of benchmarks whose ns/op is gated")
	nsMinIters := flag.Int64("ns-min-iters", 50, "baseline iterations below which ns/op is not gated")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*nsMatch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: bad -ns-match:", err)
		os.Exit(2)
	}
	oldRes, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	compared, violations := diff(oldRes, newRes, *nsTol, *nsMinIters, re)
	for _, v := range violations {
		fmt.Println("FAIL:", v)
	}
	fmt.Printf("benchdiff: %d benchmarks compared (%s -> %s), %d regressions\n",
		compared, *oldPath, *newPath, len(violations))
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: the trajectories share no benchmarks")
		os.Exit(2)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func load(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res map[string]Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// diff applies both gates to the benchmarks common to old and new, returning
// how many were compared and one message per violation, in name order.
func diff(oldRes, newRes map[string]Result, nsTol float64, nsMinIters int64, nsGated *regexp.Regexp) (int, []string) {
	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		if _, ok := newRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var violations []string
	for _, name := range names {
		o, n := oldRes[name], newRes[name]
		if n.AllocsPerOp > o.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %g -> %g (allocations may never increase)",
				name, o.AllocsPerOp, n.AllocsPerOp))
		}
		if nsGated.MatchString(name) && o.Iterations >= nsMinIters &&
			o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+nsTol) {
			violations = append(violations, fmt.Sprintf(
				"%s: ns/op %.1f -> %.1f (+%.1f%%, tolerance %.0f%%)",
				name, o.NsPerOp, n.NsPerOp, (n.NsPerOp/o.NsPerOp-1)*100, nsTol*100))
		}
	}
	return len(names), violations
}
