// Package attack implements the two memory DoS attacks of the paper (§2.2)
// for both simulation substrates:
//
//   - the atomic bus-locking attack, which continuously issues atomic
//     operations that lock the socket's memory buses, starving co-located
//     VMs of bus bandwidth; and
//   - the LLC-cleansing attack, which first probes the shared cache for
//     sets heavily occupied by other VMs and then repeatedly evicts their
//     lines, inflating the victims' miss counts.
//
// For the telemetry substrate, Schedule maps virtual time to the contention
// environment (workload.Env) a victim experiences, including the attacker's
// probe/ramp-up window.
package attack

import (
	"fmt"
	"math"

	"github.com/memdos/sds/internal/workload"
)

// Kind identifies an attack type.
type Kind int

// The attack kinds of the paper.
const (
	None Kind = iota
	BusLock
	Cleanse
)

// String returns the attack name used in reports.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case BusLock:
		return "bus-locking"
	case Cleanse:
		return "llc-cleansing"
	default:
		return fmt.Sprintf("attack.Kind(%d)", int(k))
	}
}

// Schedule describes when an attack starts and how fast it reaches full
// effect on the telemetry substrate.
type Schedule struct {
	// Kind selects the attack (None disables it).
	Kind Kind
	// Start is the virtual time in seconds at which the attacker begins.
	Start float64
	// Ramp is the seconds the attack takes to reach full intensity — the
	// attacker's probe phase (cleansing must discover contended cache
	// sets; bus locking spins up its atomic-operation loop).
	Ramp float64
	// Stop optionally ends the attack; zero means it runs forever.
	Stop float64
	// Peak scales the whole schedule's intensity: the attacker's maximum
	// effect in [0, 1]. Zero means unset (full intensity 1.0) so existing
	// schedules keep their meaning; the evasion grid sweeps this knob.
	Peak float64
	// Strategy optionally modulates the intensity after the ramp envelope
	// (see evasive.go); nil is the steady attacker of the paper.
	Strategy Strategy
}

// peak returns the effective peak scale: 0 means unset (1.0); NaN and
// negative values silence the schedule; values above 1 clamp to 1.
func (s Schedule) peak() float64 {
	switch {
	case s.Peak == 0:
		return 1
	case math.IsNaN(s.Peak) || s.Peak < 0:
		return 0
	case s.Peak > 1:
		return 1
	}
	return s.Peak
}

// envelope returns the ramp envelope in [0,1] at time t, before strategy
// modulation and peak scaling.
func (s Schedule) envelope(t float64) float64 {
	if s.Kind == None || t < s.Start {
		return 0
	}
	if s.Stop > 0 && t >= s.Stop {
		return 0
	}
	if s.Ramp <= 0 {
		return 1
	}
	frac := (t - s.Start) / s.Ramp
	if frac > 1 {
		return 1
	}
	return frac
}

// Intensity returns the attack intensity in [0,1] at virtual time t: the
// ramp envelope, modulated by the strategy (if any), scaled by the peak.
// Degenerate strategy knobs are sanitized here so the value is always
// finite and in range.
func (s Schedule) Intensity(t float64) float64 {
	base := s.envelope(t)
	if base == 0 {
		return 0
	}
	if s.Strategy != nil {
		base *= sanitizeFactor(s.Strategy.Factor(t - s.Start))
		if base == 0 {
			return 0
		}
	}
	return base * s.peak()
}

// Active reports whether the attack is running (at any intensity) at time t.
func (s Schedule) Active(t float64) bool { return s.Intensity(t) > 0 }

// MeanIntensity returns the exact mean of Intensity over [a, b]. For a
// steady schedule the ramp is linear and the plateau constant, so the
// integral is a trapezoid; with a strategy attached the plateau uses the
// strategy's analytic MeanFactor and the (short) ramp span falls back to a
// fixed-step midpoint quadrature. The window-fidelity cloud simulator
// integrates per-block contention through this.
func (s Schedule) MeanIntensity(a, b float64) float64 {
	if s.Kind == None || b <= a {
		return 0
	}
	stop := s.Stop
	if stop <= 0 {
		stop = math.Inf(1)
	}
	lo := math.Max(a, s.Start)
	hi := math.Min(b, stop)
	if hi <= lo {
		return 0
	}
	var area float64
	if s.Ramp > 0 {
		if rampEnd := s.Start + s.Ramp; lo < rampEnd {
			re := math.Min(hi, rampEnd)
			if s.Strategy == nil {
				i0 := (lo - s.Start) / s.Ramp
				i1 := (re - s.Start) / s.Ramp
				area += (i0 + i1) / 2 * (re - lo)
			} else {
				area += s.rampQuad(lo, re)
			}
			lo = re
		}
	}
	if hi > lo {
		if s.Strategy == nil {
			area += hi - lo
		} else {
			area += sanitizeFactor(s.Strategy.MeanFactor(lo-s.Start, hi-s.Start)) * (hi - lo)
		}
	}
	return area / (b - a) * s.peak()
}

// rampQuadSteps fixes the midpoint-quadrature resolution for strategy-
// modulated ramp spans: strategy factors are discontinuous (on/off bursts),
// so the error is dominated by edges at ~jump·span/steps. Ramps are a few
// seconds against multi-second burst periods; 64 midpoints keep the error
// well below the block model's own fidelity while staying deterministic.
const rampQuadSteps = 64

// rampQuad integrates envelope·factor over a span inside the ramp by
// midpoint quadrature (peak applied by the caller).
func (s Schedule) rampQuad(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	h := (hi - lo) / rampQuadSteps
	var sum float64
	for i := 0; i < rampQuadSteps; i++ {
		t := lo + (float64(i)+0.5)*h
		sum += s.envelope(t) * sanitizeFactor(s.Strategy.Factor(t-s.Start))
	}
	return sum / rampQuadSteps * (hi - lo)
}

// Env returns the contention environment a co-located victim experiences at
// time t. quiesced marks KStest-style execution throttling of all other VMs,
// which also pauses the attacker.
func (s Schedule) Env(t float64, quiesced bool) workload.Env {
	env := workload.Env{Quiesced: quiesced}
	if quiesced {
		// The throttled attacker cannot attack.
		return env
	}
	switch s.Kind {
	case BusLock:
		env.BusLock = s.Intensity(t)
	case Cleanse:
		env.Cleanse = s.Intensity(t)
	}
	return env
}
