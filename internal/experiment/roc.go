package experiment

import (
	"fmt"
	"sort"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/workload"
)

// The ROC tournament: every registered scheme's detection knob is swept
// across a fixed grid, each setting is evaluated over the full app × attack
// grid with an equal share of attack-free (Kind None) runs, and the pooled
// epoch counts yield one (FPR, TPR) point per setting. The per-scheme
// curves are summarized by trapezoidal AUC and by the operating point at a
// fixed false-positive budget — the provider-side question ("which scheme,
// tuned how, catches the most attacks at an FPR we can staff for?") that
// single-threshold recall/specificity tables cannot answer.

// ROCBudgetFPR is the false-positive-rate budget the tournament reports
// operating points at: the highest-TPR setting with FPR at or under 5%.
const ROCBudgetFPR = 0.05

// ROCPoint is one swept threshold setting of one scheme: the knob value,
// the epoch counts pooled over every (app, attack, run) cell at that
// setting, the resulting rates, and the detection-delay distribution over
// the attack-onset runs.
type ROCPoint struct {
	Threshold float64
	// TP, FN come from attack runs; FP, TN pool the negative epochs of
	// both attack runs (pre-onset stage) and dedicated no-attack runs.
	TP, FP, TN, FN int
	TPR, FPR       float64
	// Delay is the rising-edge detection-delay distribution (seconds);
	// DetectionRate the fraction of attack-onset runs detected.
	Delay         metrics.Distribution
	DetectionRate float64
}

// ROCCurve is one scheme's swept curve.
type ROCCurve struct {
	Scheme Scheme
	// Knob names the swept parameter (each scheme exposes one).
	Knob string
	// Points are in grid order (knob ascending).
	Points []ROCPoint
	// AUC is the trapezoidal area under the (FPR, TPR) curve with (0,0)
	// and (1,1) anchors.
	AUC float64
	// Operating indexes the point chosen at ROCBudgetFPR (highest TPR with
	// FPR ≤ budget; ties break toward lower FPR, then lower threshold).
	// -1 when no setting meets the budget.
	Operating int
}

// OperatingPoint returns the budgeted operating point, ok reporting
// whether any setting met the budget.
func (c ROCCurve) OperatingPoint() (ROCPoint, bool) {
	if c.Operating < 0 || c.Operating >= len(c.Points) {
		return ROCPoint{}, false
	}
	return c.Points[c.Operating], true
}

// rocScheme couples a scheme with its swept knob.
type rocScheme struct {
	scheme       Scheme
	knob         string
	grid         []float64
	apply        func(*Config, float64) error
	periodicOnly bool
}

// rocKGrid spans the boundary factor k from nearly-everything-violates to
// nearly-nothing-does; Table 1's 1.125 sits inside it.
var rocKGrid = []float64{1.02, 1.05, 1.125, 1.5, 2, 3}

// applyBoundaryK moves k and re-derives H_C from Chebyshev's inequality at
// 99.9% confidence, exactly as the paper (and SweepK) couple them.
func applyBoundaryK(cfg *Config, v float64) error {
	hc, err := detect.ChebyshevHC(v, 0.999)
	if err != nil {
		return err
	}
	cfg.Detect.K = v
	cfg.Detect.HC = hc
	return nil
}

// rocSchemes returns the tournament lineup in report order.
func rocSchemes() []rocScheme {
	return []rocScheme{
		{scheme: SchemeSDSB, knob: "k", grid: rocKGrid, apply: applyBoundaryK},
		{scheme: SchemeSDSP, knob: "H_P", grid: []float64{1, 2, 3, 5, 8, 12}, periodicOnly: true,
			apply: func(cfg *Config, v float64) error {
				cfg.Detect.HP = int(v)
				return nil
			}},
		{scheme: SchemeSDS, knob: "k", grid: rocKGrid, apply: applyBoundaryK},
		{scheme: SchemeKSTest, knob: "alpha", grid: []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2},
			apply: func(cfg *Config, v float64) error {
				cfg.KSTest.Alpha = v
				return nil
			}},
		{scheme: SchemeCUSUM, knob: "H", grid: []float64{2, 4, 6, 8, 12, 20},
			apply: func(cfg *Config, v float64) error {
				cfg.Detect.CusumH = v
				return nil
			}},
		{scheme: SchemeTimeFrag, knob: "frac", grid: []float64{0.2, 0.3, 0.4, 0.5, 0.65, 0.8},
			apply: func(cfg *Config, v float64) error {
				cfg.Detect.FragFrac = v
				return nil
			}},
		// EWMAVar's band is k·varBandMult·σ_v; sweeping k moves the whole
		// band without touching the SDS boundary coupling.
		{scheme: SchemeEWMAVar, knob: "k", grid: rocKGrid,
			apply: func(cfg *Config, v float64) error {
				cfg.Detect.K = v
				return nil
			}},
	}
}

// rocAttackKinds are the per-cell run kinds: both attacks for the positive
// epochs plus a dedicated attack-free run contributing negatives only —
// without it, FPR at aggressive thresholds is dominated by the pre-onset
// stage of attack runs and under-weights sustained clean traffic.
var rocAttackKinds = []attack.Kind{attack.BusLock, attack.Cleanse, attack.None}

// ROC runs the tournament over the given applications. All (scheme,
// threshold, app, kind, run) cells fan out onto the parallel engine
// together and are pooled in input order, so the result is bit-identical
// at every Config.Parallel setting. Schemes marked periodic-only (SDS/P)
// are evaluated on the periodic applications; if none of the given apps is
// periodic, their curve is omitted.
func (c Config) ROC(apps []string) ([]ROCCurve, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(apps) == 0 {
		return nil, fmt.Errorf("experiment: ROC needs at least one application")
	}
	// One Stage-1 profile per (app, run-seed): the cache key excludes
	// detection-side knobs, so every threshold setting shares the pass.
	c.profiles = newProfileCache()

	schemes := rocSchemes()
	type job struct {
		si, ti int
		app    string
		kind   attack.Kind
		run    int
	}
	var jobs []job
	cfgs := make([][]Config, len(schemes))
	for si, s := range schemes {
		schemeApps, err := rocApps(apps, s.periodicOnly)
		if err != nil {
			return nil, err
		}
		if len(schemeApps) == 0 {
			continue
		}
		cfgs[si] = make([]Config, len(s.grid))
		for ti, v := range s.grid {
			cfg := c
			if err := s.apply(&cfg, v); err != nil {
				return nil, fmt.Errorf("%s %s=%v: %w", s.scheme, s.knob, v, err)
			}
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("%s %s=%v: %w", s.scheme, s.knob, v, err)
			}
			cfgs[si][ti] = cfg
			for _, app := range schemeApps {
				for _, kind := range rocAttackKinds {
					for run := 0; run < c.Runs; run++ {
						jobs = append(jobs, job{si, ti, app, kind, run})
					}
				}
			}
		}
	}

	outs, err := parallelMap(c.workers(), len(jobs), func(i int) (metrics.Outcome, error) {
		j := jobs[i]
		out, err := cfgs[j.si][j.ti].DetectionRun(j.app, j.kind, schemes[j.si].scheme, j.run)
		if err != nil {
			return metrics.Outcome{}, fmt.Errorf("%s %s=%v %s/%v run %d: %w",
				schemes[j.si].scheme, schemes[j.si].knob, schemes[j.si].grid[j.ti], j.app, j.kind, j.run, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Pool epoch counts and delays per (scheme, threshold) in input order.
	type cell struct {
		tp, fp, tn, fn int
		pool           runPool
	}
	cells := make([][]cell, len(schemes))
	for si := range schemes {
		cells[si] = make([]cell, len(schemes[si].grid))
	}
	for i, j := range jobs {
		out := outs[i]
		cl := &cells[j.si][j.ti]
		cl.tp += out.TP
		cl.fp += out.FP
		cl.tn += out.TN
		cl.fn += out.FN
		cl.pool.add(out)
	}

	var curves []ROCCurve
	for si, s := range schemes {
		if cfgs[si] == nil {
			continue
		}
		curve := ROCCurve{Scheme: s.scheme, Knob: s.knob, Operating: -1}
		for ti, v := range s.grid {
			cl := &cells[si][ti]
			curve.Points = append(curve.Points, ROCPoint{
				Threshold:     v,
				TP:            cl.tp,
				FP:            cl.fp,
				TN:            cl.tn,
				FN:            cl.fn,
				TPR:           safeRate(cl.tp, cl.tp+cl.fn),
				FPR:           safeRate(cl.fp, cl.fp+cl.tn),
				Delay:         cl.pool.delay(),
				DetectionRate: cl.pool.detectionRate(),
			})
		}
		curve.AUC = trapezoidAUC(curve.Points)
		curve.Operating = operatingIndex(curve.Points, ROCBudgetFPR)
		curves = append(curves, curve)
	}
	return curves, nil
}

// rocApps filters the app list for a scheme, validating names as a side
// effect.
func rocApps(apps []string, periodicOnly bool) ([]string, error) {
	var out []string
	for _, app := range apps {
		prof, err := workload.AppProfile(app)
		if err != nil {
			return nil, err
		}
		if periodicOnly && !prof.Periodic {
			continue
		}
		out = append(out, app)
	}
	return out, nil
}

// safeRate returns num/den, 0 when the denominator is empty (a curve point
// with no positive — or no negative — epochs pins to the axis rather than
// NaN).
func safeRate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// trapezoidAUC integrates the (FPR, TPR) points with (0,0) and (1,1)
// anchors. Points are sorted by FPR (ties by TPR) first: threshold grids
// are monotone in spirit but the empirical rates need not be.
func trapezoidAUC(points []ROCPoint) float64 {
	type xy struct{ x, y float64 }
	pts := make([]xy, 0, len(points)+2)
	pts = append(pts, xy{0, 0})
	for _, p := range points {
		pts = append(pts, xy{p.FPR, p.TPR})
	}
	pts = append(pts, xy{1, 1})
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].x != pts[j].x {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	auc := 0.0
	for i := 1; i < len(pts); i++ {
		auc += (pts[i].x - pts[i-1].x) * (pts[i].y + pts[i-1].y) / 2
	}
	return auc
}

// operatingIndex picks the highest-TPR point with FPR within the budget;
// ties break toward lower FPR, then lower threshold (earlier index).
// Returns -1 when no point qualifies.
func operatingIndex(points []ROCPoint, budget float64) int {
	best := -1
	for i, p := range points {
		if p.FPR > budget {
			continue
		}
		if best < 0 || p.TPR > points[best].TPR ||
			(p.TPR == points[best].TPR && p.FPR < points[best].FPR) {
			best = i
		}
	}
	return best
}
