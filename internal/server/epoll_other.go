//go:build !linux

package server

import (
	"errors"
	"net"
)

// epollLoop is Linux-only; elsewhere every connection uses the
// per-connection goroutine pumps and the shard is a bookkeeping unit.
type epollLoop struct{}

func newEpollLoop(sh *ingestShard) (*epollLoop, error) {
	return nil, errors.New("no shard event loop on this platform")
}

func (l *epollLoop) wake() {}

// tryEventLoopHandoff never takes ownership off Linux.
func (s *Server) tryEventLoopHandoff(conn net.Conn, sh *ingestShard, cw *connWriter, st *vmState, sess *Session, vm string, resumed bool, resumeT float64, leftover []byte) bool {
	return false
}
