package workload

import (
	"fmt"

	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/vmm"
)

// MicroApp is a micro-architectural access-stream equivalent of one of the
// modelled applications: instead of generating counter values statistically
// (like Model), it issues actual cache accesses on the vmm machine, and the
// same statistical signatures — base rate, miss ratio, execution phases,
// periodic working-set cycles — emerge from the simulated hardware.
//
// MicroApps run at 1/10 of the telemetry models' time scale (phases of
// seconds rather than minutes) so that measurement-study-sized microsim
// runs stay cheap.
type MicroApp struct {
	name string
	rng  *randx.Rand

	baseRate float64 // demanded accesses per second
	missFrac float64 // fraction of accesses sent to the streaming region

	// Resident working set (hits once warm).
	residentBase  uint64
	residentLines int

	// Streaming region (compulsory misses).
	streamBase   uint64
	streamCursor uint64

	// Wall-time execution phases (the phased applications).
	phaseDelta float64
	meanDur    float64
	now        float64
	phaseHigh  bool
	nextSwitch float64

	// Work-based periodic cycle (PCA, FaceNet): the app alternates between
	// two resident windows, advancing on completed work, so attacks stretch
	// the cycle.
	periodic bool
	workPer  int
	phaseIdx int
	workLeft int
}

var _ vmm.Workload = (*MicroApp)(nil)

// timeScale compresses the telemetry models' wall-clock dynamics for
// microsim runs.
const microTimeScale = 10.0

// NewMicroApp builds the micro-architectural equivalent of the named
// application. base is the byte address of the VM's address-space slice
// (give each VM a disjoint region).
func NewMicroApp(name string, base uint64, rng *randx.Rand) (*MicroApp, error) {
	prof, err := AppProfile(name)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: MicroApp %s: nil rng", name)
	}
	a := &MicroApp{
		name: name,
		rng:  rng,
		// Scale the telemetry base (counts per 0.01 s) down to a microsim
		// access rate the simulated bus can carry.
		baseRate: prof.BaseAccess / 500 * 100, // e.g. 2e5 → 4e4 accesses/s
		// At micro scale the streaming component models only the
		// steady-state LLC misses (a few percent); most of the telemetry
		// models' MissRatio is reuse pressure that the cleansing attack
		// recreates by flushing the resident set.
		missFrac:      0.02 + prof.MissRatio*0.2,
		residentBase:  base,
		residentLines: 1024, // 64 KiB resident set
		streamBase:    base + 1<<30,
		phaseDelta:    prof.PhaseDelta,
		meanDur:       prof.MeanPhaseDur / microTimeScale,
		periodic:      prof.Periodic,
	}
	if a.phaseDelta > 0 {
		a.phaseHigh = rng.Bool(0.5)
		a.nextSwitch = a.meanDur * rng.Uniform(0.5, 1.5)
	}
	if a.periodic {
		// Work per half-cycle so that a full cycle lasts
		// PeriodSec/microTimeScale seconds at the nominal hit rate. The
		// compression is capped so even short-cycle apps (PCA) keep their
		// micro cycle resolvable against the PCM sampling rate.
		period := prof.PeriodSec / microTimeScale
		if period < 0.85 {
			period = 0.85
		}
		halfCycle := period / 2
		a.workPer = int(a.baseRate * (1 - a.missFrac) * halfCycle)
		if a.workPer < 1 {
			a.workPer = 1
		}
		a.workLeft = a.workPer
	}
	return a, nil
}

// Name implements vmm.Workload.
func (a *MicroApp) Name() string { return a.name }

// Phase returns the periodic half-cycle index (diagnostics; 0 for
// non-periodic apps).
func (a *MicroApp) Phase() int { return a.phaseIdx }

// Demand implements vmm.Workload.
func (a *MicroApp) Demand(dt float64) (int, float64) {
	a.now += dt
	level := 1.0
	if a.phaseDelta > 0 {
		for a.now >= a.nextSwitch {
			a.phaseHigh = !a.phaseHigh
			a.nextSwitch += a.meanDur * a.rng.Uniform(0.5, 1.5)
		}
		if a.phaseHigh {
			level += a.phaseDelta
		} else {
			level -= a.phaseDelta
		}
	}
	return int(a.baseRate * level * dt * a.rng.Uniform(0.95, 1.05)), 0
}

// Issue implements vmm.Workload.
func (a *MicroApp) Issue(granted int, c *cachesim.Cache, owner cachesim.Owner) {
	for i := 0; i < granted; i++ {
		if a.rng.Float64() < a.missFrac {
			// Streaming access: fresh line, compulsory miss.
			a.streamCursor += 64
			c.Access(owner, a.streamBase+a.streamCursor)
			continue
		}
		// Resident access; periodic apps work through alternating resident
		// windows, so the cycle position advances with completed work.
		base := a.residentBase
		if a.periodic && a.phaseIdx%2 == 1 {
			// The second half-cycle's window overlaps the first by half,
			// as consecutive processing batches share code and metadata;
			// the switch re-fetches only the non-shared half.
			base += uint64(a.residentLines) / 2 * 64
		}
		line := uint64(a.rng.IntN(a.residentLines))
		if c.Access(owner, base+line*64) && a.periodic {
			a.workLeft--
			if a.workLeft <= 0 {
				a.phaseIdx++
				a.workLeft = a.workPer
			}
		}
	}
}
