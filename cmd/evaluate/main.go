// Command evaluate reproduces the paper's evaluation (§5.2):
//
//	evaluate -fig9     recall per application, attack and scheme
//	evaluate -fig10    specificity
//	evaluate -fig11    detection delay
//	evaluate -fig12    performance overhead (normalized execution time)
//	evaluate -table1   the SDS parameters in effect
//	evaluate -all      everything
//
// The accuracy figures share one experiment pass, so -fig9 -fig10 -fig11
// together cost the same as any one of them. Use -runs to trade precision
// for time (the paper uses 20 runs per cell).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/experiment"
	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/profiling"
	"github.com/memdos/sds/internal/workload"
)

func main() {
	var (
		fig9     = flag.Bool("fig9", false, "recall results")
		fig10    = flag.Bool("fig10", false, "specificity results")
		fig11    = flag.Bool("fig11", false, "detection delay results")
		fig12    = flag.Bool("fig12", false, "performance overhead results")
		table1   = flag.Bool("table1", false, "print the SDS parameters (Table 1)")
		ablate   = flag.Bool("ablation", false, "DFT-only vs ACF-only vs DFT-ACF period estimation (§4.2.2 motivation)")
		all      = flag.Bool("all", false, "run the full evaluation")
		runs     = flag.Int("runs", 20, "runs per cell")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		apps     = flag.String("apps", "", "comma-separated application subset (default: all)")
		parallel = flag.Int("parallel", 0, "concurrent detection runs (0 = all CPUs); results are identical at any setting")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if !(*fig9 || *fig10 || *fig11 || *fig12 || *table1 || *ablate || *all) {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
	err = run(os.Stdout, *fig9 || *all, *fig10 || *all, *fig11 || *all, *fig12 || *all, *table1 || *all, *ablate || *all, *runs, *seed, *apps, *parallel)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, fig9, fig10, fig11, fig12, table1, ablate bool, runs int, seed uint64, appsFlag string, parallel int) error {
	cfg := experiment.DefaultConfig()
	cfg.Runs = runs
	cfg.Seed = seed
	cfg.Parallel = parallel

	var apps []string
	if appsFlag != "" {
		for _, a := range strings.Split(appsFlag, ",") {
			apps = append(apps, strings.TrimSpace(a))
		}
	} else {
		apps = workload.AppNames()
	}

	if table1 {
		if err := printTable1(out, cfg); err != nil {
			return err
		}
	}
	if ablate {
		if err := runAblation(out, cfg); err != nil {
			return err
		}
	}

	if fig9 || fig10 || fig11 {
		cells, err := cfg.Accuracy(apps)
		if err != nil {
			return err
		}
		if fig9 {
			if err := renderAccuracy(out, "Fig. 9 — recall (%), median [p10, p90] over runs; paper: medians 100% everywhere",
				cells, func(c experiment.AccuracyCell) string {
					return distCell(c.Recall)
				}); err != nil {
				return err
			}
		}
		if fig10 {
			if err := renderAccuracy(out, "Fig. 10 — specificity (%); paper: SDS 90–100, KStest 30–80, SDS/B 94–97, SDS/P 93–94",
				cells, func(c experiment.AccuracyCell) string {
					return distCell(c.Specificity)
				}); err != nil {
				return err
			}
		}
		if fig11 {
			if err := renderAccuracy(out, "Fig. 11 — detection delay (s); paper: SDS 15–30, KStest 20–50",
				cells, func(c experiment.AccuracyCell) string {
					// No run had an alarm onset during the attack: there is
					// no delay distribution to summarize, and printing its
					// zero value would read as instant detection.
					if c.Delay.N == 0 {
						return fmt.Sprintf("n/a (detection rate %.0f%%)", 100*c.DetectionRate)
					}
					return distCell(c.Delay)
				}); err != nil {
				return err
			}
		}
	}

	if fig12 {
		cells, err := cfg.Overhead(apps)
		if err != nil {
			return err
		}
		tb := experiment.Table{
			Title:  "Fig. 12 — normalized execution time; paper: SDS 1.01–1.02, KStest 1.03–1.08",
			Header: []string{"application", "scheme", "normalized [p10, p90]"},
		}
		for _, c := range cells {
			tb.AddRow(c.App, string(c.Scheme),
				fmt.Sprintf("%.3f [%.3f, %.3f]", c.Normalized.Median, c.Normalized.P10, c.Normalized.P90))
		}
		if err := tb.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

func distCell(d metrics.Distribution) string {
	return fmt.Sprintf("%.1f [%.1f, %.1f]", d.Median, d.P10, d.P90)
}

func renderAccuracy(out io.Writer, title string, cells []experiment.AccuracyCell, format func(experiment.AccuracyCell) string) error {
	for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
		tb := experiment.Table{
			Title:  fmt.Sprintf("%s — %s attack", title, kind),
			Header: []string{"application", "scheme", "median [p10, p90]"},
		}
		for _, c := range cells {
			if c.Attack != kind {
				continue
			}
			tb.AddRow(c.App, string(c.Scheme), format(c))
		}
		if err := tb.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

func runAblation(out io.Writer, cfg experiment.Config) error {
	results, err := cfg.PeriodEstimatorAblation(500)
	if err != nil {
		return err
	}
	tb := experiment.Table{
		Title:  "§4.2.2 motivation — period-estimator ablation (500 planted-period + 500 trended-noise trials)",
		Header: []string{"method", "correct", "multiple-of-period errors", "other errors", "false detections on noise"},
	}
	for _, r := range results {
		tb.AddRow(r.Method,
			fmt.Sprintf("%.0f%%", 100*r.Correct),
			fmt.Sprintf("%.0f%%", 100*r.MultipleErrors),
			fmt.Sprintf("%.0f%%", 100*r.OtherErrors),
			fmt.Sprintf("%.0f%%", 100*r.FalseDetections))
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

func printTable1(out io.Writer, cfg experiment.Config) error {
	d := cfg.Detect
	tb := experiment.Table{
		Title:  "Table 1 — SDS parameters",
		Header: []string{"parameter", "value"},
	}
	tb.AddRow("T_PCM", d.TPCM)
	tb.AddRow("window size W of raw data", d.W)
	tb.AddRow("sliding step size ΔW", d.DW)
	tb.AddRow("EWMA smooth factor α", d.Alpha)
	tb.AddRow("upper bound", fmt.Sprintf("μ + %gσ", d.K))
	tb.AddRow("lower bound", fmt.Sprintf("μ − %gσ", d.K))
	tb.AddRow("consecutive violation threshold H_C", d.HC)
	tb.AddRow("window size W_P in SDS/P", fmt.Sprintf("%d · period", d.WPFactor))
	tb.AddRow("sliding step size ΔW_P in SDS/P", d.DWP)
	tb.AddRow("consecutive period change threshold H_P", d.HP)
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}
