package experiment

import (
	"math"
	"reflect"
	"testing"

	"github.com/memdos/sds/internal/workload"
)

// TestROCDeterministicAcrossWorkerCounts asserts the tournament's
// acceptance criterion: the full curve set is bit-identical at any
// worker-pool size. A single non-periodic app also pins the lineup rule
// that periodic-only schemes (SDS/P) are omitted rather than reported
// with an empty curve.
func TestROCDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced tournament grid; skipped in -short mode")
	}
	base := fastConfig()
	base.Runs = 1
	var ref []ROCCurve
	for _, parallel := range []int{1, 2, 8} {
		c := base
		c.Parallel = parallel
		curves, err := c.ROC([]string{workload.KMeans})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for _, cv := range curves {
			if cv.Scheme == SchemeSDSP {
				t.Fatalf("SDS/P curve present for a non-periodic app set")
			}
		}
		if ref == nil {
			ref = curves
			continue
		}
		if !reflect.DeepEqual(ref, curves) {
			t.Fatalf("parallel=%d diverges from parallel=1:\n%+v\nvs\n%+v", parallel, curves, ref)
		}
	}
	if len(ref) != len(rocSchemes())-1 {
		t.Fatalf("got %d curves, want %d (lineup minus SDS/P)", len(ref), len(rocSchemes())-1)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestTrapezoidAUC(t *testing.T) {
	// No swept points: the (0,0)–(1,1) anchors alone give the chance
	// diagonal.
	if got := trapezoidAUC(nil); !almost(got, 0.5) {
		t.Fatalf("anchors only: AUC = %v, want 0.5", got)
	}
	// A perfect point at (0,1) squares off the whole unit area.
	if got := trapezoidAUC([]ROCPoint{{FPR: 0, TPR: 1}}); !almost(got, 1) {
		t.Fatalf("perfect point: AUC = %v, want 1", got)
	}
	// Points arrive in threshold order, not FPR order; the integral must
	// sort them. Both orderings of the same two points agree.
	fwd := trapezoidAUC([]ROCPoint{{FPR: 0.2, TPR: 0.8}, {FPR: 0.6, TPR: 0.9}})
	rev := trapezoidAUC([]ROCPoint{{FPR: 0.6, TPR: 0.9}, {FPR: 0.2, TPR: 0.8}})
	if !almost(fwd, rev) {
		t.Fatalf("order dependence: %v vs %v", fwd, rev)
	}
	// Hand integral: (0,0)→(0.2,0.8)→(0.6,0.9)→(1,1):
	// 0.2·0.4 + 0.4·0.85 + 0.4·0.95 = 0.08 + 0.34 + 0.38 = 0.80.
	if !almost(fwd, 0.80) {
		t.Fatalf("AUC = %v, want 0.80", fwd)
	}
}

func TestOperatingIndex(t *testing.T) {
	pts := []ROCPoint{
		{Threshold: 1, TPR: 0.99, FPR: 0.30}, // over budget
		{Threshold: 2, TPR: 0.90, FPR: 0.05}, // at budget, best TPR
		{Threshold: 3, TPR: 0.90, FPR: 0.02}, // tie on TPR, lower FPR wins
		{Threshold: 4, TPR: 0.90, FPR: 0.02}, // full tie, earlier index wins
		{Threshold: 5, TPR: 0.40, FPR: 0.00},
	}
	if got := operatingIndex(pts, ROCBudgetFPR); got != 2 {
		t.Fatalf("operatingIndex = %d, want 2", got)
	}
	// Nothing within a zero budget except the FPR=0 point.
	if got := operatingIndex(pts, 0); got != 4 {
		t.Fatalf("operatingIndex(budget=0) = %d, want 4", got)
	}
	// No point qualifies.
	if got := operatingIndex(pts[:1], ROCBudgetFPR); got != -1 {
		t.Fatalf("operatingIndex over-budget = %d, want -1", got)
	}
	if _, ok := (ROCCurve{Operating: -1, Points: pts}).OperatingPoint(); ok {
		t.Fatalf("OperatingPoint ok for Operating=-1")
	}
	if op, ok := (ROCCurve{Operating: 1, Points: pts}).OperatingPoint(); !ok || op.Threshold != 2 {
		t.Fatalf("OperatingPoint = %+v, %v; want threshold 2, true", op, ok)
	}
}
