package feed

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"github.com/memdos/sds/internal/pcm"
)

// FuzzParseLine checks that no input crashes the line parser and that every
// accepted line reproduces itself through the Writer's formatting.
func FuzzParseLine(f *testing.F) {
	f.Add("0.01,100,10")
	f.Add("t,access,miss")
	f.Add(" 1e-3 , 5.5 , 0 ")
	f.Add("NaN,Inf,-Inf")
	f.Add(",,")
	f.Add("1,2,3,4")
	f.Add("0x1p-2,1,1")
	f.Fuzz(func(t *testing.T, line string) {
		s, err := parseLine(line)
		if err != nil {
			return
		}
		// parseLine rejects non-finite fields, so every accepted sample is
		// finite and must round-trip through the CSV format.
		if math.IsNaN(s.T) || math.IsInf(s.T, 0) ||
			math.IsNaN(s.Access) || math.IsInf(s.Access, 0) ||
			math.IsNaN(s.Miss) || math.IsInf(s.Miss, 0) {
			t.Fatalf("parseLine(%q) accepted a non-finite sample: %+v", line, s)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(s); err != nil {
			t.Fatalf("write of parsed sample %+v: %v", s, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("re-read of %+v: %v", s, err)
		}
		if len(got) != 1 || got[0] != s {
			t.Fatalf("round trip changed sample: %+v -> %+v", s, got)
		}
	})
}

// FuzzReader throws arbitrary byte streams at the Reader: it must terminate
// with io.EOF or a diagnostic error, never panic or loop.
func FuzzReader(f *testing.F) {
	f.Add([]byte("t,access,miss\n0.01,100,10\n"))
	f.Add([]byte("# comment\n\nt,access,miss\n0.01,1,0\n"))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte("0.01,100"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !strings.Contains(err.Error(), "feed:") {
					t.Fatalf("error %v lacks the feed: prefix", err)
				}
				return
			}
			if i > len(data) {
				t.Fatalf("reader produced more samples than input lines (%d)", i)
			}
		}
	})
}

// FuzzRoundTrip proves the Writer's 'g',-1 formatting claim: every finite
// sample written is read back bit-for-bit identical.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x3FF0000000000000), uint64(100), uint64(10))
	f.Add(uint64(0x0000000000000001), uint64(0x7FEFFFFFFFFFFFFF), uint64(0)) // denormal, MaxFloat64
	f.Add(uint64(0x3F50624DD2F1A9FC), uint64(0x4059000000000000), uint64(0x4024000000000000))
	f.Fuzz(func(t *testing.T, tBits, aBits, mBits uint64) {
		s := pcm.Sample{
			T:      math.Float64frombits(tBits),
			Access: math.Float64frombits(aBits),
			Miss:   math.Float64frombits(mBits),
		}
		if isNonFinite(s.T) || isNonFinite(s.Access) || isNonFinite(s.Miss) {
			t.Skip("non-finite values are the Sanitizer's department")
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("re-read of %+v: %v", s, err)
		}
		if len(got) != 1 {
			t.Fatalf("round trip lost the sample: %v", got)
		}
		if math.Float64bits(got[0].T) != tBits ||
			math.Float64bits(got[0].Access) != aBits ||
			math.Float64bits(got[0].Miss) != mBits {
			t.Fatalf("round trip not lossless: %+v -> %+v", s, got[0])
		}
	})
}

func isNonFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// FuzzBinReader throws arbitrary byte streams at the binary frame decoder:
// it must terminate with io.EOF or a diagnostic error, never panic, never
// loop, and never yield more samples than the input could encode.
func FuzzBinReader(f *testing.F) {
	var seed bytes.Buffer
	w := NewBinWriter(&seed)
	w.WriteBatch([]pcm.Sample{{T: 0.01, Access: 100, Miss: 10}, {T: 0.02, Access: 110, Miss: 11}})
	w.End()
	f.Add(seed.Bytes())
	f.Add([]byte{0x01, 0x01, 0x00})       // truncated payload
	f.Add([]byte{0x02})                   // bare end frame
	f.Add([]byte{0xff, 0x00, 0x01, 0x02}) // unknown type
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinReader(bytes.NewReader(data))
		dst := make([]pcm.Sample, 0, MaxFrameSamples)
		total := 0
		for {
			n, _, err := r.ReadFrame(dst)
			total += n
			if err == io.EOF {
				return
			}
			if err != nil {
				if !strings.Contains(err.Error(), "feed:") {
					t.Fatalf("error %v lacks the feed: prefix", err)
				}
				return
			}
			for _, s := range dst[:n] {
				if isNonFinite(s.T) || isNonFinite(s.Access) || isNonFinite(s.Miss) {
					t.Fatalf("decoder passed a non-finite sample: %+v", s)
				}
			}
			if total > len(data)/sampleBytes+MaxFrameSamples {
				t.Fatalf("decoder produced %d samples from %d bytes", total, len(data))
			}
		}
	})
}

// FuzzBinRoundTrip: every finite sample triple written as a binary frame
// is read back bit-for-bit identical (the binary twin of FuzzRoundTrip).
func FuzzBinRoundTrip(f *testing.F) {
	f.Add(uint64(0x3FF0000000000000), uint64(100), uint64(10))
	f.Add(uint64(0x0000000000000001), uint64(0x7FEFFFFFFFFFFFFF), uint64(0))
	f.Fuzz(func(t *testing.T, tBits, aBits, mBits uint64) {
		s := pcm.Sample{
			T:      math.Float64frombits(tBits),
			Access: math.Float64frombits(aBits),
			Miss:   math.Float64frombits(mBits),
		}
		var buf bytes.Buffer
		w := NewBinWriter(&buf)
		if err := w.WriteBatch([]pcm.Sample{s}); err != nil {
			t.Fatal(err)
		}
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
		got, q, err := NewBinReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("re-read of %+v: %v", s, err)
		}
		if isNonFinite(s.T) || isNonFinite(s.Access) || isNonFinite(s.Miss) {
			if q != 1 || len(got) != 0 {
				t.Fatalf("non-finite sample not quarantined: got %d, q=%d", len(got), q)
			}
			return
		}
		if q != 0 || len(got) != 1 {
			t.Fatalf("round trip lost the sample: got %d, q=%d", len(got), q)
		}
		if math.Float64bits(got[0].T) != tBits ||
			math.Float64bits(got[0].Access) != aBits ||
			math.Float64bits(got[0].Miss) != mBits {
			t.Fatalf("round trip not lossless: %+v -> %+v", s, got[0])
		}
	})
}
