package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/metrics"
)

// SweepPoint is one x-value of a sensitivity figure (§5.3): the recall,
// specificity and delay distributions of SDS at one parameter setting.
type SweepPoint struct {
	Value       float64
	Recall      metrics.Distribution
	Specificity metrics.Distribution
	Delay       metrics.Distribution
}

// Sweep runs the accuracy experiment for the app at each parameter value,
// applying the value with apply (which mutates a copy of the SDS config).
// Both attacks are pooled, as the paper's sensitivity figures do not split
// them. Pooling goes through the shared runPool, whose per-side accounting
// excludes vacuous statistics: only attack-onset runs feed the recall and
// delay distributions (every run here has an onset; the guard matters for
// the ROC tournament, which mixes in Kind None cells). All (value, attack, run) combinations fan out onto the parallel
// engine together; see Config.Parallel.
func (c Config) Sweep(app string, values []float64, apply func(*Config, float64) error) ([]SweepPoint, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("experiment: sweep needs at least one value")
	}
	// Sweep values that leave the profiling parameters unchanged (e.g. the
	// SDS/P-only knobs W_P and ΔW_P) share Stage-1 profiles through the
	// cache; the key includes detect.Config, so values that do alter
	// profiling stay separate.
	c.profiles = newProfileCache()
	cfgs := make([]Config, len(values))
	for i, v := range values {
		cfg := c
		if err := apply(&cfg, v); err != nil {
			return nil, fmt.Errorf("apply %v: %w", v, err)
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("config at %v: %w", v, err)
		}
		cfgs[i] = cfg
	}

	type job struct {
		vi   int
		kind attack.Kind
		run  int
	}
	var jobs []job
	for vi := range values {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			for run := 0; run < cfgs[vi].Runs; run++ {
				jobs = append(jobs, job{vi, kind, run})
			}
		}
	}
	outs, err := parallelMap(c.workers(), len(jobs), func(i int) (metrics.Outcome, error) {
		j := jobs[i]
		out, err := cfgs[j.vi].DetectionRun(app, j.kind, SchemeSDS, j.run)
		if err != nil {
			return metrics.Outcome{}, fmt.Errorf("%s/%v at %v run %d: %w", app, j.kind, values[j.vi], j.run, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	pools := make([]runPool, len(values))
	for i, j := range jobs {
		pools[j.vi].add(outs[i])
	}
	points := make([]SweepPoint, 0, len(values))
	for i, v := range values {
		points = append(points, SweepPoint{
			Value:       v,
			Recall:      pools[i].recall(),
			Specificity: pools[i].specificity(),
			Delay:       pools[i].delay(),
		})
	}
	return points, nil
}

// SweepAlpha reproduces Fig. 13: sensitivity to the EWMA smoothing factor.
func (c Config) SweepAlpha(app string, values []float64) ([]SweepPoint, error) {
	return c.Sweep(app, values, func(cfg *Config, v float64) error {
		cfg.Detect.Alpha = v
		return nil
	})
}

// SweepK reproduces Fig. 14: sensitivity to the boundary factor k, with
// H_C re-derived from Chebyshev's inequality at 99.9% confidence, as the
// paper does.
func (c Config) SweepK(app string, values []float64) ([]SweepPoint, error) {
	return c.Sweep(app, values, func(cfg *Config, v float64) error {
		hc, err := detect.ChebyshevHC(v, 0.999)
		if err != nil {
			return err
		}
		cfg.Detect.K = v
		cfg.Detect.HC = hc
		return nil
	})
}

// SweepW reproduces Fig. 15: sensitivity to the MA window size W.
func (c Config) SweepW(app string, values []float64) ([]SweepPoint, error) {
	return c.Sweep(app, values, func(cfg *Config, v float64) error {
		cfg.Detect.W = int(v)
		if cfg.Detect.DW > cfg.Detect.W {
			cfg.Detect.DW = cfg.Detect.W
		}
		return nil
	})
}

// SweepDW reproduces Fig. 16: sensitivity to the MA sliding step ΔW.
func (c Config) SweepDW(app string, values []float64) ([]SweepPoint, error) {
	return c.Sweep(app, values, func(cfg *Config, v float64) error {
		cfg.Detect.DW = int(v)
		return nil
	})
}

// SweepWPFactor reproduces Fig. 17: sensitivity to the SDS/P window W_P,
// expressed as the multiple of the profiled period (the paper sweeps
// 2p–6p).
func (c Config) SweepWPFactor(app string, values []float64) ([]SweepPoint, error) {
	return c.Sweep(app, values, func(cfg *Config, v float64) error {
		cfg.Detect.WPFactor = int(v)
		return nil
	})
}

// SweepDWP reproduces Fig. 18: sensitivity to the SDS/P sliding step ΔW_P.
func (c Config) SweepDWP(app string, values []float64) ([]SweepPoint, error) {
	return c.Sweep(app, values, func(cfg *Config, v float64) error {
		cfg.Detect.DWP = int(v)
		return nil
	})
}
