// Package attack implements the two memory DoS attacks of the paper (§2.2)
// for both simulation substrates:
//
//   - the atomic bus-locking attack, which continuously issues atomic
//     operations that lock the socket's memory buses, starving co-located
//     VMs of bus bandwidth; and
//   - the LLC-cleansing attack, which first probes the shared cache for
//     sets heavily occupied by other VMs and then repeatedly evicts their
//     lines, inflating the victims' miss counts.
//
// For the telemetry substrate, Schedule maps virtual time to the contention
// environment (workload.Env) a victim experiences, including the attacker's
// probe/ramp-up window.
package attack

import (
	"fmt"

	"github.com/memdos/sds/internal/workload"
)

// Kind identifies an attack type.
type Kind int

// The attack kinds of the paper.
const (
	None Kind = iota
	BusLock
	Cleanse
)

// String returns the attack name used in reports.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case BusLock:
		return "bus-locking"
	case Cleanse:
		return "llc-cleansing"
	default:
		return fmt.Sprintf("attack.Kind(%d)", int(k))
	}
}

// Schedule describes when an attack starts and how fast it reaches full
// effect on the telemetry substrate.
type Schedule struct {
	// Kind selects the attack (None disables it).
	Kind Kind
	// Start is the virtual time in seconds at which the attacker begins.
	Start float64
	// Ramp is the seconds the attack takes to reach full intensity — the
	// attacker's probe phase (cleansing must discover contended cache
	// sets; bus locking spins up its atomic-operation loop).
	Ramp float64
	// Stop optionally ends the attack; zero means it runs forever.
	Stop float64
}

// Intensity returns the attack intensity in [0,1] at virtual time t.
func (s Schedule) Intensity(t float64) float64 {
	if s.Kind == None || t < s.Start {
		return 0
	}
	if s.Stop > 0 && t >= s.Stop {
		return 0
	}
	if s.Ramp <= 0 {
		return 1
	}
	frac := (t - s.Start) / s.Ramp
	if frac > 1 {
		return 1
	}
	return frac
}

// Active reports whether the attack is running (at any intensity) at time t.
func (s Schedule) Active(t float64) bool { return s.Intensity(t) > 0 }

// Env returns the contention environment a co-located victim experiences at
// time t. quiesced marks KStest-style execution throttling of all other VMs,
// which also pauses the attacker.
func (s Schedule) Env(t float64, quiesced bool) workload.Env {
	env := workload.Env{Quiesced: quiesced}
	if quiesced {
		// The throttled attacker cannot attack.
		return env
	}
	switch s.Kind {
	case BusLock:
		env.BusLock = s.Intensity(t)
	case Cleanse:
		env.Cleanse = s.Intensity(t)
	}
	return env
}
