package cloudsim

import (
	"container/heap"
	"testing"

	"github.com/memdos/sds/internal/randx"
)

// TestEventOrderInsensitive pins the determinism contract of the event
// queue: the pop order of a set of distinct events is a pure function of
// their semantic keys (tick, kind, host, vm) — permuting the insertion
// order, and with it the seq numbers, cannot change it.
func TestEventOrderInsensitive(t *testing.T) {
	base := []event{
		{tick: 100, kind: evMitigate, vm: 3},
		{tick: 100, kind: evMitigate, vm: 1},
		{tick: 100, kind: evDepart, vm: 9},
		{tick: 100, kind: evPlace, vm: 2},
		{tick: 100, kind: evArrive, vm: -1},
		{tick: 50, kind: evPlace, vm: 7},
		{tick: 150, kind: evDepart, vm: 1},
		{tick: 100, kind: evVerifyThrottle, vm: 4},
		{tick: 100, kind: evVerifyMigrate, vm: 4},
		{tick: 100, kind: evResume, vm: 0},
		{tick: 100, kind: evHop, vm: 5},
		{tick: 100, kind: evPlace, host: 2},
	}

	popAll := func(events []event) []event {
		var h eventHeap
		for i, ev := range events {
			ev.seq = uint64(i)
			heap.Push(&h, ev)
		}
		out := make([]event, 0, len(events))
		for h.Len() > 0 {
			out = append(out, heap.Pop(&h).(event))
		}
		// seq depends on insertion order by construction; the contract is
		// about the semantic fields only.
		for i := range out {
			out[i].seq = 0
		}
		return out
	}

	want := popAll(base)
	rng := randx.New(42, 7)
	for trial := 0; trial < 50; trial++ {
		perm := make([]event, len(base))
		for i, j := range rng.Perm(len(base)) {
			perm[i] = base[j]
		}
		got := popAll(perm)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop order diverged at %d:\n got %+v\nwant %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestEventSeqBreaksIdenticalTies checks that fully identical events pop in
// insertion order rather than nondeterministically.
func TestEventSeqBreaksIdenticalTies(t *testing.T) {
	var h eventHeap
	for i := 0; i < 5; i++ {
		heap.Push(&h, event{tick: 10, kind: evArrive, vm: -1, seq: uint64(i)})
	}
	for i := 0; i < 5; i++ {
		if got := heap.Pop(&h).(event).seq; got != uint64(i) {
			t.Fatalf("identical events out of insertion order: pop %d got seq %d", i, got)
		}
	}
}
