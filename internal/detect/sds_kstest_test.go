package detect

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

func TestSDSNonPeriodicEqualsSDSB(t *testing.T) {
	prof := steadyProfile(t, workload.TeraSort, 60)
	combined, err := NewSDS(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if combined.Periodic() != nil {
		t.Fatal("SDS attached SDS/P to a non-periodic profile")
	}
	boundary, err := NewSDSB(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := genSamples(t, workload.TeraSort, 61, 600, attack.Schedule{Kind: attack.BusLock, Start: 300, Ramp: 10})
	feed(combined, samples)
	feed(boundary, samples)
	if combined.Alarmed() != boundary.Alarmed() {
		t.Fatal("SDS and SDS/B disagree for a non-periodic app")
	}
	ca, ba := firstAlarmTime(combined), firstAlarmTime(boundary)
	if ca != ba {
		t.Fatalf("first alarm times differ: %v vs %v", ca, ba)
	}
}

func TestSDSPeriodicRequiresBothSchemes(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 62)
	d, err := NewSDS(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Periodic() == nil || d.Boundary() == nil {
		t.Fatal("SDS missing a sub-detector for a periodic profile")
	}
	samples := genSamples(t, workload.FaceNet, 63, 600, attack.Schedule{Kind: attack.BusLock, Start: 300, Ramp: 10})
	feed(d, samples)
	if !d.Alarmed() {
		t.Fatal("combined SDS missed the attack")
	}
	at := firstAlarmTime(d)
	// The conjunction fires when the slower of the two agrees.
	bAt, pAt := firstAlarmTime(d.Boundary()), firstAlarmTime(d.Periodic())
	if at < bAt || at < pAt {
		t.Fatalf("SDS alarm %v earlier than sub-detectors (%v, %v)", at, bAt, pAt)
	}
}

func TestSDSDetectsAllAppsBothAttacks(t *testing.T) {
	// Fig. 9: 100% recall for every application and both attacks.
	for _, app := range workload.AppNames() {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			prof := steadyProfile(t, app, 64)
			d, err := NewSDS(prof, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			feed(d, genSamples(t, app, 65, 600, attack.Schedule{Kind: kind, Start: 300, Ramp: 10}))
			// Detection shows either as a rising edge after the attack
			// started or as an alarm that latched across it and is still
			// active at the end of the run.
			if firstAlarmAfter(d, 300) < 0 && !d.Alarmed() {
				t.Errorf("%s/%v: no detection (alarms: %+v)", app, kind, d.Alarms())
			}
		}
	}
}

// recordingThrottler counts throttle transitions for overhead accounting.
type recordingThrottler struct {
	pauses, resumes int
	paused          bool
}

func (r *recordingThrottler) PauseOthers()  { r.pauses++; r.paused = true }
func (r *recordingThrottler) ResumeOthers() { r.resumes++; r.paused = false }

func TestKSTestConfigValidation(t *testing.T) {
	if err := DefaultKSTestConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*KSTestConfig)
	}{
		{"zero tpcm", func(c *KSTestConfig) { c.TPCM = 0 }},
		{"zero WR", func(c *KSTestConfig) { c.WR = 0 }},
		{"LM shorter than WM", func(c *KSTestConfig) { c.LM = 0.5 }},
		{"LR too small", func(c *KSTestConfig) { c.LR = 2 }},
		{"zero consecutive", func(c *KSTestConfig) { c.Consecutive = 0 }},
		{"alpha 1", func(c *KSTestConfig) { c.Alpha = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultKSTestConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := NewKSTest(KSTestConfig{TPCM: 1, WR: 1, WM: 1, LM: 2, LR: 30, Consecutive: 4, Alpha: 0.05}, nil); err == nil {
		t.Error("window with one sample accepted")
	}
}

func TestKSTestThrottlesDuringReferenceCollection(t *testing.T) {
	th := &recordingThrottler{}
	d, err := NewKSTest(DefaultKSTestConfig(), th)
	if err != nil {
		t.Fatal(err)
	}
	feed(d, genSamples(t, workload.KMeans, 70, 65, attack.Schedule{}))
	// 65 s with L_R=30 s → references at t≈0, 30, 60 → 3 pause/resume pairs.
	if th.pauses != 3 || th.resumes != 3 {
		t.Fatalf("pauses/resumes = %d/%d, want 3/3", th.pauses, th.resumes)
	}
	if th.paused {
		t.Fatal("left others paused")
	}
}

// feedClosedLoop drives a KSTest detector with live telemetry whose
// environment honours the detector's own throttling requests: while the
// detector collects reference samples, co-located VMs (including the
// attacker) are paused, so references stay attack-free — the property the
// baseline's correctness depends on.
func feedClosedLoop(t *testing.T, d *KSTest, th *recordingThrottler, app string, seed uint64, seconds float64, sched attack.Schedule) {
	t.Helper()
	model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(seed, app))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	n := int(seconds / cfg.TPCM)
	for i := 0; i < n; i++ {
		now := float64(i+1) * cfg.TPCM
		a, m := model.Sample(cfg.TPCM, sched.Env(now, th.paused))
		d.Observe(samp(now, a, m))
	}
}

func TestKSTestDetectsAttacks(t *testing.T) {
	for _, app := range []string{workload.KMeans, workload.Bayes} {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			th := &recordingThrottler{}
			d, err := NewKSTest(DefaultKSTestConfig(), th)
			if err != nil {
				t.Fatal(err)
			}
			feedClosedLoop(t, d, th, app, 71, 450, attack.Schedule{Kind: kind, Start: 300, Ramp: 10})
			// Phased apps legitimately trip KStest before the attack (the
			// paper's criticism), so assert on the latched end state.
			if !d.Alarmed() {
				t.Errorf("%s/%v: not alarmed at end of attack stage", app, kind)
			}
			if at := firstAlarmAfter(d, 300); at >= 0 && at-300 < 8 && firstAlarmTime(d) == at {
				t.Errorf("%s/%v: delay %v s below the 4·L_M floor", app, kind, at-300)
			}
		}
	}
}

func TestKSTestFalseAlarmsOnPhasedApps(t *testing.T) {
	// The paper's core criticism (Fig. 1): on TeraSort, KStest falsely
	// alarms in most L_R intervals even without an attack.
	hits := 0
	const runs = 5
	for seed := uint64(0); seed < runs; seed++ {
		d, err := NewKSTest(DefaultKSTestConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		feed(d, genSamples(t, workload.TeraSort, 72+seed, 300, attack.Schedule{}))
		if len(d.Alarms()) > 0 {
			hits++
		}
	}
	if hits < runs-1 {
		t.Fatalf("KStest false-alarmed in only %d/%d TeraSort runs; the paper's criticism needs most", hits, runs)
	}
}

func TestKSTestCheckHookEmitsSeries(t *testing.T) {
	var checks []CheckStat
	d, err := NewKSTest(DefaultKSTestConfig(), nil, WithKSTestCheckHook(func(c CheckStat) {
		checks = append(checks, c)
	}))
	if err != nil {
		t.Fatal(err)
	}
	feed(d, genSamples(t, workload.KMeans, 80, 30, attack.Schedule{}))
	// One L_R interval: reference at ~1 s, then checks every 2 s ≈ 13.
	if len(checks) < 10 || len(checks) > 15 {
		t.Fatalf("got %d checks in one interval, want ≈13", len(checks))
	}
	for _, c := range checks {
		if c.DAccess < 0 || c.DAccess > 1 || c.DMiss < 0 || c.DMiss > 1 {
			t.Fatalf("check stat out of range: %+v", c)
		}
	}
}

func TestKSTestAlarmNeedsConsecutiveRejections(t *testing.T) {
	// With a stationary app and no attack the detector must stay quiet.
	prof := workload.MustAppProfile(workload.KMeans)
	prof.PhaseDelta = 0
	prof.MeanPhaseDur = 0
	prof.BurstProb = 0
	model, err := workloadModel(prof, 81)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewKSTest(DefaultKSTestConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for i := 0; i < 30000; i++ {
		now := float64(i+1) * cfg.TPCM
		a, m := model.Sample(cfg.TPCM, workload.Env{})
		d.Observe(samp(now, a, m))
	}
	if len(d.Alarms()) != 0 {
		t.Fatalf("false alarms on stationary app: %+v", d.Alarms())
	}
}
