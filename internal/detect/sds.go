package detect

import (
	"fmt"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/timeseries"
)

// SDS is the combined Statistical-based Detection System of §5.1: for
// non-periodic applications it is SDS/B alone; for periodic applications it
// requires both SDS/B and SDS/P to agree before raising an alarm, which
// eliminates most residual false positives of either scheme (the paper
// measures a 3–6% specificity improvement from the conjunction).
type SDS struct {
	b *SDSB
	p *SDSP // nil for non-periodic applications

	// The combined detector drives one moving-average pair and feeds both
	// sub-detectors' post-MA pipelines from it: SDS/B and SDS/P use the
	// same (W, ΔW) geometry, so running their averagers separately would
	// push every raw sample through four identical ring buffers instead
	// of two. MA preprocessing is the hottest per-sample work in the
	// ingest plane, so the dedup halves the dominant term. The pair is
	// borrowed from the embedded SDS/B (idle there, since SDS never calls
	// the sub-detectors' raw Observe) to keep construction allocation-free
	// relative to the un-deduplicated layout.
	maA, maM *timeseries.MovingAverager

	alarmed bool
	alarms  []Alarm
}

var _ Detector = (*SDS)(nil)

// NewSDS assembles the combined detector from a Stage-1 profile: SDS/P is
// attached automatically when the profile is periodic.
func NewSDS(prof Profile, cfg Config) (*SDS, error) {
	b, err := NewSDSB(prof, cfg)
	if err != nil {
		return nil, fmt.Errorf("detect: SDS: %w", err)
	}
	d := &SDS{b: b}
	if prof.Periodic {
		p, err := NewSDSP(prof, cfg)
		if err != nil {
			return nil, fmt.Errorf("detect: SDS: %w", err)
		}
		d.p = p
	}
	d.maA, d.maM = b.maA, b.maM
	return d, nil
}

// Name implements Detector.
func (d *SDS) Name() string { return "SDS" }

// Boundary returns the embedded SDS/B detector.
func (d *SDS) Boundary() *SDSB { return d.b }

// Periodic returns the embedded SDS/P detector, or nil for non-periodic
// applications.
func (d *SDS) Periodic() *SDSP { return d.p }

// Observe implements Detector. Raw samples run through the shared MA pair
// once; window boundaries fan out to both sub-detectors' ObserveMA. The
// sub-detectors only change alarm state at window boundaries, so skipping
// update between emissions is observationally identical to updating per
// sample.
func (d *SDS) Observe(s pcm.Sample) {
	mA, okA := d.maA.Push(s.Access)
	mM, _ := d.maM.Push(s.Miss)
	if !okA {
		// Both averagers share their geometry and emit together.
		return
	}
	d.ObserveMA(s.T, mA, mM)
}

// ObserveMA feeds one window-level observation into both sub-detectors'
// post-MA pipelines — the batch-observation entry point of the event-driven
// cloud simulator. Feed a detector through either Observe or ObserveMA,
// never both.
func (d *SDS) ObserveMA(t float64, mA, mM float64) {
	d.b.ObserveMA(t, mA, mM)
	if d.p != nil {
		d.p.ObserveMA(t, mA, mM)
	}
	d.update(t)
}

// update re-evaluates the conjunction alarm state at virtual time t.
func (d *SDS) update(t float64) {
	nowAlarmed := d.b.Alarmed()
	if d.p != nil {
		nowAlarmed = nowAlarmed && d.p.Alarmed()
	}
	if nowAlarmed && !d.alarmed {
		metric := MetricAccess
		reason := "SDS/B boundary violation"
		if n := len(d.b.alarms); n > 0 {
			metric = d.b.alarms[n-1].Metric
			reason = d.b.alarms[n-1].Reason
		}
		if d.p != nil {
			reason += "; confirmed by SDS/P period deviation"
		}
		d.alarms = append(d.alarms, Alarm{T: t, Detector: d.Name(), Metric: metric, Reason: reason})
	}
	d.alarmed = nowAlarmed
}

// Alarmed implements Detector.
func (d *SDS) Alarmed() bool { return d.alarmed }

// AlarmCount implements AlarmCounter.
func (d *SDS) AlarmCount() int { return len(d.alarms) }

// Alarms implements Detector.
func (d *SDS) Alarms() []Alarm { return cloneAlarms(d.alarms) }
