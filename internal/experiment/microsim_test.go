package experiment

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/workload"
)

func TestMicroDetectionRunBusLock(t *testing.T) {
	res, err := MicroConfig{App: workload.KMeans, AttackKind: attack.BusLock, Seed: 1}.MicroDetectionRun()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatalf("bus-locking attack not detected on the microsim: %+v", res)
	}
	if res.Delay < 0 || res.Delay > 20 {
		t.Fatalf("micro-scale delay %v, want within (0, 20]", res.Delay)
	}
	if res.Profile.MeanAccess <= 0 || res.Profile.StdAccess <= 0 {
		t.Fatalf("degenerate micro profile: %+v", res.Profile)
	}
	if res.FalseAlarms > 1 {
		t.Fatalf("%d false alarms in the attack-free stage", res.FalseAlarms)
	}
}

func TestMicroDetectionRunCleanse(t *testing.T) {
	res, err := MicroConfig{App: workload.Scan, AttackKind: attack.Cleanse, Seed: 2}.MicroDetectionRun()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatalf("cleansing attack not detected on the microsim: %+v", res)
	}
}

func TestMicroAppPhasesAndRates(t *testing.T) {
	// Every app's MicroApp must build and demand a plausible rate.
	for _, name := range workload.AppNames() {
		app, err := workload.NewMicroApp(name, 0, fastConfig().rng(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		demand, lock := app.Demand(0.01)
		if demand <= 0 || lock != 0 {
			t.Fatalf("%s: demand (%d, %v)", name, demand, lock)
		}
	}
	if _, err := workload.NewMicroApp("nope", 0, fastConfig().rng("x")); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := workload.NewMicroApp(workload.Bayes, 0, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
