package detect

import (
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// workloadModel builds a telemetry model from an explicit profile.
func workloadModel(prof workload.Profile, seed uint64) (*workload.Model, error) {
	return workload.NewModel(prof, randx.Derive(seed, 99))
}

// samp builds a pcm.Sample.
func samp(t, access, miss float64) pcm.Sample {
	return pcm.Sample{T: t, Access: access, Miss: miss}
}
