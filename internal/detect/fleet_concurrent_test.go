package detect

import (
	"fmt"
	"sync"
	"testing"

	"github.com/memdos/sds/internal/pcm"
)

// tickingDetector is a minimal detector whose state transitions make data
// races observable under -race: every Observe mutates shared fields.
type tickingDetector struct {
	seen   int
	alarms []Alarm
}

func (d *tickingDetector) Name() string { return "counting" }

func (d *tickingDetector) Observe(s pcm.Sample) {
	d.seen++
	if d.seen%100 == 0 {
		d.alarms = append(d.alarms, Alarm{T: s.T, Detector: d.Name(), Metric: MetricAccess, Reason: "tick"})
	}
}

func (d *tickingDetector) Alarmed() bool { return len(d.alarms) > 0 }

func (d *tickingDetector) Alarms() []Alarm {
	out := make([]Alarm, len(d.alarms))
	copy(out, d.alarms)
	return out
}

// TestFleetConcurrentObserve drives one goroutine per VM through Observe
// while other goroutines churn Protect/Unprotect and read aggregate alarm
// state — the exact access pattern of the multi-VM ingestion server. Run
// with -race (CI does) to make it a real concurrency regression test.
// 512 VMs cover every registry shard several times over, so cross-shard
// isolation and same-shard contention both get exercised.
func TestFleetConcurrentObserve(t *testing.T) {
	const (
		vms     = 512
		samples = 200
	)
	fleet := NewFleet()
	dets := make([]*tickingDetector, vms)
	for i := range dets {
		dets[i] = &tickingDetector{}
		if err := fleet.Protect(vmName(i), dets[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, vms)
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vm := vmName(i)
			for n := 0; n < samples; n++ {
				s := pcm.Sample{T: float64(n+1) * 0.01, Access: 100, Miss: 10}
				if err := fleet.Observe(vm, s); err != nil {
					errc <- err
					return
				}
				if n%50 == 0 {
					if _, err := fleet.VMAlarmed(vm); err != nil {
						errc <- err
						return
					}
				}
			}
			if _, err := fleet.VMAlarms(vm); err != nil {
				errc <- err
			}
		}(i)
	}
	// Control-plane readers concurrent with ingestion.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			fleet.Alarmed()
			fleet.AlarmedVMs()
			fleet.Alarms()
			fleet.Size()
		}
	}()
	// Protect/Unprotect churn on names disjoint from the observed VMs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			vm := fmt.Sprintf("churn-%d", i%8)
			if err := fleet.Protect(vm, &tickingDetector{}); err != nil {
				errc <- err
				return
			}
			fleet.Unprotect(vm)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	for i, d := range dets {
		alarms, err := fleet.VMAlarms(vmName(i))
		if err != nil {
			t.Fatal(err)
		}
		if d.seen != samples {
			t.Errorf("vm %d saw %d samples, want %d", i, d.seen, samples)
		}
		if len(alarms) != samples/100 {
			t.Errorf("vm %d has %d alarms, want %d", i, len(alarms), samples/100)
		}
	}
}

// TestFleetProtectSwapDuringObserve replaces a VM's detector while samples
// flow: no sample may be lost across the swap and no race may occur.
func TestFleetProtectSwapDuringObserve(t *testing.T) {
	fleet := NewFleet()
	first := &tickingDetector{}
	if err := fleet.Protect("vm", first); err != nil {
		t.Fatal(err)
	}
	second := &tickingDetector{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for n := 0; n < 1000; n++ {
			if err := fleet.Observe("vm", pcm.Sample{T: float64(n+1) * 0.01, Access: 1, Miss: 0}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		if err := fleet.Protect("vm", second); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if got := first.seen + second.seen; got != 1000 {
		t.Fatalf("samples split %d + %d = %d across the swap, want 1000", first.seen, second.seen, got)
	}
}

func vmName(i int) string { return fmt.Sprintf("vm-%02d", i) }
