package sds

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// Simulation types, re-exported for downstream users.
type (
	// Application is a calibrated telemetry model of one of the paper's
	// ten cloud applications: it generates the (AccessNum, MissNum)
	// counter stream a PCM tool would report for the VM running it.
	Application = workload.Model
	// AppProfile holds the statistical signature behind an Application.
	AppProfile = workload.Profile
	// Env is the contention environment of one sampling instant.
	Env = workload.Env
	// AttackKind selects a memory DoS attack.
	AttackKind = attack.Kind
	// AttackSchedule maps virtual time to attack intensity.
	AttackSchedule = attack.Schedule
)

// Attack kinds.
const (
	NoAttack      = attack.None
	BusLockAttack = attack.BusLock
	CleanseAttack = attack.Cleanse
)

// Application names from the paper's measurement study.
const (
	Bayes       = workload.Bayes
	SVM         = workload.SVM
	KMeans      = workload.KMeans
	PCA         = workload.PCA
	Aggregation = workload.Aggregation
	Join        = workload.Join
	Scan        = workload.Scan
	TeraSort    = workload.TeraSort
	PageRank    = workload.PageRank
	FaceNet     = workload.FaceNet
)

// Applications lists all modelled application names.
func Applications() []string { return workload.AppNames() }

// PeriodicApplications lists the applications with periodic cache-access
// patterns (PCA and FaceNet in the paper).
func PeriodicApplications() []string { return workload.PeriodicApps() }

// NewApplication instantiates a named application's telemetry model with a
// deterministic random stream derived from seed.
func NewApplication(name string, seed uint64) (*Application, error) {
	prof, err := workload.AppProfile(name)
	if err != nil {
		return nil, err
	}
	return workload.NewModel(prof, randx.DeriveString(seed, name))
}

// ApplicationProfile returns the calibrated statistical profile of a named
// application, for inspection or as a starting point for custom workloads.
func ApplicationProfile(name string) (AppProfile, error) {
	return workload.AppProfile(name)
}

// NewApplicationFromProfile instantiates a telemetry model from a custom
// profile — e.g. an ApplicationProfile with adjusted levels, or an entirely
// synthetic workload.
func NewApplicationFromProfile(prof AppProfile, seed uint64) (*Application, error) {
	return workload.NewModel(prof, randx.DeriveString(seed, prof.Name+"/custom"))
}

// CollectProfile runs Stage 1 for an application: it samples `seconds` of
// attack-free telemetry at the configured T_PCM and builds the detection
// profile. A few hundred seconds are typically needed to cover the
// application's execution phases; 900 s matches the evaluation harness.
func CollectProfile(name string, seed uint64, seconds float64, cfg Config) (Profile, error) {
	if err := cfg.Validate(); err != nil {
		return Profile{}, err
	}
	model, err := NewApplication(name, seed)
	if err != nil {
		return Profile{}, err
	}
	n := SampleCount(seconds, cfg.TPCM)
	samples := make([]Sample, n)
	for i := 0; i < n; i++ {
		a, m := model.Sample(cfg.TPCM, Env{})
		samples[i] = pcm.Sample{T: float64(i+1) * cfg.TPCM, Access: a, Miss: m}
	}
	return BuildProfile(name, samples, cfg)
}

// SimulateOptions configures a Simulate run.
type SimulateOptions struct {
	// Seconds is the virtual run duration.
	Seconds float64
	// Attack is the attack schedule (zero value: no attack).
	Attack AttackSchedule
	// OnSample, when set, observes every generated sample after the
	// detector has processed it.
	OnSample func(s Sample, alarmed bool)
}

// throttleProbe lets Simulate honour a KStest detector's throttling: the
// KSTest detector exposes Collecting, other detectors never throttle.
type throttleProbe interface{ Collecting() bool }

// Simulate runs a closed detection loop: the application's telemetry stream
// — with the attack schedule applied — is fed to the detector sample by
// sample. If the detector is a *KSTest, its reference-collection throttling
// pauses the attacker, exactly as execution throttling does on a real
// hypervisor. It returns all alarms the detector raised.
func Simulate(app *Application, det Detector, cfg Config, opts SimulateOptions) ([]Alarm, error) {
	if app == nil || det == nil {
		return nil, fmt.Errorf("sds: Simulate requires an application and a detector")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Seconds <= 0 {
		return nil, fmt.Errorf("sds: simulation duration must be positive, got %v", opts.Seconds)
	}
	probe, _ := det.(throttleProbe)
	n := SampleCount(opts.Seconds, cfg.TPCM)
	for i := 0; i < n; i++ {
		now := float64(i+1) * cfg.TPCM
		quiesced := probe != nil && probe.Collecting()
		a, m := app.Sample(cfg.TPCM, opts.Attack.Env(now, quiesced))
		s := pcm.Sample{T: now, Access: a, Miss: m}
		det.Observe(s)
		if opts.OnSample != nil {
			opts.OnSample(s, det.Alarmed())
		}
	}
	return det.Alarms(), nil
}
