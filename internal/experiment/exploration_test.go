package experiment

import (
	"math"
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/workload"
)

func TestExplorationValidation(t *testing.T) {
	c := fastConfig()
	if _, err := c.Exploration(workload.Bayes, attack.None, 120, 5); err == nil {
		t.Error("no-attack exploration accepted")
	}
	if _, err := c.Exploration(workload.Bayes, attack.BusLock, 10, 5); err == nil {
		t.Error("too-short run accepted")
	}
	if _, err := c.Exploration("nope", attack.BusLock, 120, 5); err == nil {
		t.Error("unknown app accepted — expected panic-free error path")
	}
}

func TestExplorationReproducesNegativeResult(t *testing.T) {
	// §3.4: none of the correlation approaches shows a decreasing trend
	// usable for detection — the statistics stay in the same ballpark
	// before and during the attack.
	c := fastConfig()
	results, err := c.ExplorationStudy([]string{workload.KMeans, workload.TeraSort, workload.FaceNet})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		for _, approach := range ExplorationApproaches() {
			sep, err := r.Separation(approach)
			if err != nil {
				t.Fatal(err)
			}
			// A usable detector signal would need a large, consistent
			// drop; the paper found none. Require the separation to stay
			// small relative to a full-scale drop of 1.0.
			if sep > 0.45 {
				t.Errorf("%s/%v: %s separation %v — the paper's negative result did not reproduce",
					r.App, r.Attack, approach, sep)
			}
		}
	}
}

func TestExplorationStatisticsInRange(t *testing.T) {
	c := fastConfig()
	r, err := c.Exploration(workload.FaceNet, attack.BusLock, 120, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"pearson before":   r.PearsonBefore,
		"pearson after":    r.PearsonAfter,
		"crosscorr before": r.CrossCorrBefore,
		"crosscorr after":  r.CrossCorrAfter,
	} {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Errorf("%s = %v out of [-1,1]", name, v)
		}
	}
	for name, v := range map[string]float64{
		"coherence before": r.CoherenceBefore,
		"coherence after":  r.CoherenceAfter,
	} {
		if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
			t.Errorf("%s = %v out of [0,1]", name, v)
		}
	}
	if _, err := r.Separation("nonsense"); err == nil {
		t.Error("unknown approach accepted")
	}
}
