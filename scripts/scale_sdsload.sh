#!/bin/sh
# Scale-run the sdsd ingest plane: launch one sdsd, drive it with VMS
# concurrent sdsload streams (default 10000) in binary-frame mode, assert
# zero sample loss, and record the sustained samples/sec in the benchmark
# trajectory. A second pass with the same parameters over CSV frames gives
# the baseline the binary plane is measured against.
#
#   scripts/scale_sdsload.sh                # 10k binary + 10k CSV baseline
#   SDSD_VMS=2000 scripts/scale_sdsload.sh  # smaller rehearsal
#   SDSD_BENCH_OUT=bench_scale.txt          # where the bench lines land
#
# Streams are pre-rendered (-prebuild) so the timed window measures the
# transport and server ingest, not client-side sample generation. Each VM
# streams 60 virtual seconds at the Table 1 sampling interval with a 15 s
# Stage-1 profile window — long enough to clear the profiler's minimum
# window count and amortize the connection ramp, short enough that 10k
# profile windows fit comfortably in memory.
#
# Both processes run with GOGC=600: at 10k connections the default GC
# target spends a measurable slice of the single-digit-core budget on
# collection cycles, and the steady-state live set (profile windows +
# per-conn buffers) is small relative to host memory.
set -eu

ADDR=${SDSD_ADDR:-127.0.0.1:17041}
OPS=${SDSD_OPS:-127.0.0.1:17042}
VMS=${SDSD_VMS:-10000}
SECONDS_PER_VM=${SDSD_SECONDS:-60}
PROFILE=${SDSD_PROFILE:-15}
OUT=${SDSD_BENCH_OUT:-bench_scale.txt}
export GOGC=${GOGC:-600}

fdneed=$((VMS + 100))
if [ "$(ulimit -n)" -lt "$fdneed" ]; then
    echo "scale: need $fdneed fds for $VMS streams, have $(ulimit -n) (raise ulimit -n)" >&2
    exit 1
fi

tmp=$(mktemp -d)
sdsd_pid=""
cleanup() {
    [ -n "$sdsd_pid" ] && kill "$sdsd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/sdsd" ./cmd/sdsd
go build -o "$tmp/sdsload" ./cmd/sdsload

: > "$OUT"

run_pass() {
    frames=$1
    name=$2
    "$tmp/sdsd" -listen "$ADDR" -ops "$OPS" -profile-seconds "$PROFILE" \
        2>"$tmp/sdsd-$frames.log" &
    sdsd_pid=$!
    # sdsload retries its connections, so no explicit wait-for-listen is
    # needed; 100 retries ride out 10k streams racing one accept loop.
    "$tmp/sdsload" -addr "$ADDR" -vms "$VMS" -seconds "$SECONDS_PER_VM" \
        -profile-seconds "$PROFILE" -frames "$frames" -prebuild \
        -connect-retries 100 -bench-name "$name" | tee -a "$OUT" || {
        echo "scale: $frames pass failed; server log tail:" >&2
        tail -20 "$tmp/sdsd-$frames.log" >&2
        exit 1
    }
    kill -TERM "$sdsd_pid"
    wait "$sdsd_pid" || {
        echo "scale: sdsd exited non-zero on drain ($frames pass)" >&2
        tail -20 "$tmp/sdsd-$frames.log" >&2
        exit 1
    }
    sdsd_pid=""
}

run_pass bin "ServerIngestBin${VMS}VMs"
run_pass csv "ServerIngestCSV${VMS}VMs"

echo "scale: ok — bench lines appended to $OUT"
