package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func states(pairs ...AlarmState) []AlarmState { return pairs }

func TestScorerValidate(t *testing.T) {
	good := Scorer{RunSeconds: 600, AttackStart: 300, EpochSeconds: 30}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scorer{
		{RunSeconds: 0, EpochSeconds: 30},
		{RunSeconds: 600, EpochSeconds: 0},
		{RunSeconds: 600, AttackStart: 700, EpochSeconds: 30},
		{RunSeconds: 10, EpochSeconds: 30},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad scorer %d accepted", i)
		}
	}
}

func TestScoreOutOfOrderStates(t *testing.T) {
	s := Scorer{RunSeconds: 60, EpochSeconds: 30}
	if _, err := s.Score(states(AlarmState{T: 10}, AlarmState{T: 5})); err == nil {
		t.Fatal("out-of-order states accepted")
	}
}

func TestScorePerfectDetector(t *testing.T) {
	// Alarm exactly during the attack stage.
	s := Scorer{RunSeconds: 600, AttackStart: 300, EpochSeconds: 30}
	var tr []AlarmState
	for ti := 0.0; ti < 600; ti += 1 {
		tr = append(tr, AlarmState{T: ti, Alarmed: ti >= 315})
	}
	out, err := s.Score(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recall != 1 || out.Specificity != 1 {
		t.Fatalf("outcome = %+v, want perfect", out)
	}
	if math.Abs(out.Delay-15) > 1e-9 || !out.Detected {
		t.Fatalf("delay = %v, want 15", out.Delay)
	}
	if out.TP != 10 || out.TN != 10 || out.FP != 0 || out.FN != 0 {
		t.Fatalf("confusion = %+v", out)
	}
}

func TestScoreSilentDetector(t *testing.T) {
	s := Scorer{RunSeconds: 600, AttackStart: 300, EpochSeconds: 30}
	out, err := s.Score(states(AlarmState{T: 0}, AlarmState{T: 599}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Recall != 0 || out.Specificity != 1 || out.Detected || out.Delay >= 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestScoreFalsePositives(t *testing.T) {
	// One false-alarm epoch in a no-attack run.
	s := Scorer{RunSeconds: 300, EpochSeconds: 30}
	var tr []AlarmState
	for ti := 0.0; ti < 300; ti += 1 {
		tr = append(tr, AlarmState{T: ti, Alarmed: ti >= 65 && ti < 75})
	}
	out, err := s.Score(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.FP != 1 || out.TN != 9 {
		t.Fatalf("confusion = %+v, want FP=1 TN=9", out)
	}
	if math.Abs(out.Specificity-0.9) > 1e-9 {
		t.Fatalf("specificity = %v, want 0.9", out.Specificity)
	}
	if out.Recall != 1 { // no positive epochs → defined as 1
		t.Fatalf("recall = %v, want 1", out.Recall)
	}
}

func TestScoreLateDetectionMissesFirstEpoch(t *testing.T) {
	// Detection 35 s into the attack leaves the first positive epoch FN:
	// recall 9/10 — the mechanism behind the paper's 10th-percentile
	// recall values just below 100%.
	s := Scorer{RunSeconds: 600, AttackStart: 300, EpochSeconds: 30}
	var tr []AlarmState
	for ti := 0.0; ti < 600; ti += 1 {
		tr = append(tr, AlarmState{T: ti, Alarmed: ti >= 335})
	}
	out, err := s.Score(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Recall-0.9) > 1e-9 {
		t.Fatalf("recall = %v, want 0.9", out.Recall)
	}
	if math.Abs(out.Delay-35) > 1e-9 {
		t.Fatalf("delay = %v, want 35", out.Delay)
	}
}

func TestScoreConfusionTotalsProperty(t *testing.T) {
	// Property: TP+FP+TN+FN == number of epochs, regardless of the trace.
	s := Scorer{RunSeconds: 600, AttackStart: 300, EpochSeconds: 30}
	f := func(raw []bool) bool {
		var tr []AlarmState
		for i, b := range raw {
			tr = append(tr, AlarmState{T: float64(i * 7 % 600), Alarmed: b})
		}
		// Times must be ordered; sort by construction instead.
		for i := range tr {
			tr[i].T = float64(i) * 600 / float64(len(tr)+1)
		}
		out, err := s.Score(tr)
		if err != nil {
			return false
		}
		return out.TP+out.FP+out.TN+out.FN == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{3, 1, 2, 5, 4})
	if d.N != 5 || d.Median != 3 {
		t.Fatalf("distribution = %+v", d)
	}
	if d.P10 != 1.4 || d.P90 != 4.6 {
		t.Fatalf("percentiles = %+v", d)
	}
	if got := Summarize(nil); got != (Distribution{}) {
		t.Fatalf("Summarize(nil) = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.P10 != 7 || one.P90 != 7 {
		t.Fatalf("single-value distribution = %+v", one)
	}
}

func TestNormalizedExecTime(t *testing.T) {
	got, err := NormalizedExecTime(290, 300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-300.0/290) > 1e-12 {
		t.Fatalf("normalized = %v", got)
	}
	if _, err := NormalizedExecTime(0, 300); err == nil {
		t.Error("zero progress accepted")
	}
	if _, err := NormalizedExecTime(301, 300); err == nil {
		t.Error("progress above elapsed accepted")
	}
}

// TestScoreLatchedAlarmContract pins the Delay contract the experiment
// pooling relies on: an alarm that was already active when the attack began
// and never clears afterwards yields Detected == true (the alarm covered
// the attack) with Delay == -1 (no rising edge occurred at or after attack
// start, so there is no detection delay to report).
func TestScoreLatchedAlarmContract(t *testing.T) {
	s := Scorer{RunSeconds: 600, AttackStart: 300, EpochSeconds: 30}
	var tr []AlarmState
	for ti := 0.0; ti < 600; ti += 1 {
		tr = append(tr, AlarmState{T: ti, Alarmed: ti >= 150}) // false alarm latches across the attack
	}
	out, err := s.Score(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("latched alarm not counted as detected: %+v", out)
	}
	if out.Delay != -1 {
		t.Fatalf("latched alarm delay = %v, want -1 (no onset during attack)", out.Delay)
	}
	if out.FP == 0 {
		t.Fatalf("pre-attack alarm epochs not scored as false positives: %+v", out)
	}
}

// TestScoreAlarmClearsThenReraises is the companion case: when the
// pre-existing alarm clears before the attack and a fresh onset occurs
// during it, the delay is measured from attack start to that onset.
func TestScoreAlarmClearsThenReraises(t *testing.T) {
	s := Scorer{RunSeconds: 600, AttackStart: 300, EpochSeconds: 30}
	var tr []AlarmState
	for ti := 0.0; ti < 600; ti += 1 {
		alarmed := (ti >= 150 && ti < 250) || ti >= 320
		tr = append(tr, AlarmState{T: ti, Alarmed: alarmed})
	}
	out, err := s.Score(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("onset during attack not detected: %+v", out)
	}
	if math.Abs(out.Delay-20) > 1e-9 {
		t.Fatalf("delay = %v, want 20", out.Delay)
	}
}
