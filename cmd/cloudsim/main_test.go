package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/memdos/sds/internal/cloudsim"
	"github.com/memdos/sds/internal/experiment"
)

func testConfig() experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Runs = 2
	cfg.Parallel = 0
	return cfg
}

func testScenario() cloudsim.Scenario {
	return cloudsim.Scenario{
		Name:           "test",
		Hosts:          4,
		VMsPerHost:     3,
		Seconds:        300,
		Apps:           []string{"kmeans"},
		ProfileSeconds: 400,
		Attackers:      1,
		AttackKind:     cloudsim.AttackBusLock,
		AttackStart:    60,
		RelocateMean:   80,
	}
}

func TestRunRendersPolicyTable(t *testing.T) {
	var out strings.Builder
	policies := []string{cloudsim.PolicyNone, cloudsim.PolicyThrottleMigrate}
	if err := run(&out, testConfig(), testScenario(), policies, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"cloud mitigation policies", "none", "throttle-migrate", "samples/s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunJSONDeterministic(t *testing.T) {
	policies := []string{cloudsim.PolicyMigrate}
	var a, b strings.Builder
	if err := run(&a, testConfig(), testScenario(), policies, true); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, testConfig(), testScenario(), policies, true); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("JSON output differs between identical invocations")
	}
	var parsed struct {
		Cells     []experiment.CloudCell          `json:"cells"`
		Summaries []experiment.CloudPolicySummary `json:"summaries"`
	}
	if err := json.Unmarshal([]byte(a.String()), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(parsed.Cells) != 2 || len(parsed.Summaries) != 1 {
		t.Fatalf("unexpected grid shape: %d cells, %d summaries", len(parsed.Cells), len(parsed.Summaries))
	}
}

func TestLoadScenarioAndFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(`{"hosts": 50, "seconds": 600, "attackers": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := loadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	applyFlags(&sc, 100, 0, 0, "", "", -1, "")
	if sc.Hosts != 50 || sc.Seconds != 600 || sc.Attackers != 2 {
		t.Fatalf("scenario file fields lost: %+v", sc)
	}

	sc = cloudsim.Scenario{}
	applyFlags(&sc, 100, 0, 0, "exact", "KStest", -1, "duty-cycle")
	if sc.Hosts != 100 || sc.Attackers != 100/20+1 || sc.Fidelity != "exact" || sc.Scheme != "KStest" || sc.AttackStrategy != "duty-cycle" {
		t.Fatalf("flag defaults not applied: %+v", sc)
	}

	if _, err := loadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}

func TestSplitPolicies(t *testing.T) {
	got := splitPolicies(" none, migrate ,,throttle-migrate ")
	want := []string{"none", "migrate", "throttle-migrate"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}
