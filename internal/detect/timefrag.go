package detect

import (
	"fmt"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/timeseries"
)

// TimeFrag default knobs (Config.FragWindow/FragFrac zero values resolve to
// these: a 60-window evaluation span — 30 s at Table 1 geometry — and a
// half-full density threshold, i.e. the same 30 suspicious windows as H_C
// but without the consecutiveness demand).
const (
	defaultFragWindow = 60
	defaultFragFrac   = 0.5
)

// TimeFrag is a density-based windowed PMC detector in the style of Prada,
// Restuccia and Palmieri (arXiv 1904.11268): instead of demanding H_C
// *consecutive* boundary violations the way SDS/B does, it counts how many
// of the last FragWindow moving-average windows were suspicious — EWMA value
// outside the profiled normal range [μ_E−kσ_E, μ_E+kσ_E] on either counter —
// and raises an alarm while that count is at or above ⌈FragFrac·FragWindow⌉.
//
// The point of the relaxation is time-fragmented attacks: an adversary that
// duty-cycles its bus locking to stay below H_C consecutive violations
// resets SDS/B's streak on every pause, but every active burst still lands
// suspicious windows inside TimeFrag's evaluation span, so the density
// threshold is crossed anyway. The price is a slower de-alarm (violations
// age out of the window instead of a streak resetting instantly).
type TimeFrag struct {
	cfg  Config
	prof Profile

	loA, hiA float64
	loM, hiM float64

	maA, maM *timeseries.MovingAverager
	ewA, ewM *timeseries.EWMA

	ring    []bool // suspicion verdicts of the last len(ring) windows
	pos     int
	filled  int
	count   int // suspicious windows currently inside the ring
	need    int // alarm threshold ⌈FragFrac·FragWindow⌉
	windows int

	alarmed bool
	alarms  []Alarm
}

var _ Detector = (*TimeFrag)(nil)
var _ WindowObserver = (*TimeFrag)(nil)
var _ AlarmCounter = (*TimeFrag)(nil)

// NewTimeFrag returns a TimeFrag detector for an application with the given
// Stage-1 profile.
func NewTimeFrag(prof Profile, cfg Config) (*TimeFrag, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prof.StdAccess < 0 || prof.StdMiss < 0 {
		return nil, fmt.Errorf("detect: profile for %q has negative σ", prof.App)
	}
	window := cfg.FragWindow
	if window == 0 {
		window = defaultFragWindow
	}
	frac := cfg.FragFrac
	if frac == 0 {
		frac = defaultFragFrac
	}
	need := int(frac*float64(window) + 0.999999)
	if need < 1 {
		need = 1
	}
	if need > window {
		need = window
	}
	d := &TimeFrag{
		cfg:  cfg,
		prof: prof,
		ring: make([]bool, window),
		need: need,
	}
	var err error
	if d.loA, d.hiA, err = prof.Bounds(MetricAccess, cfg.K); err != nil {
		return nil, err
	}
	if d.loM, d.hiM, err = prof.Bounds(MetricMiss, cfg.K); err != nil {
		return nil, err
	}
	if d.maA, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.maM, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.ewA, err = timeseries.NewEWMA(cfg.Alpha); err != nil {
		return nil, err
	}
	if d.ewM, err = timeseries.NewEWMA(cfg.Alpha); err != nil {
		return nil, err
	}
	return d, nil
}

// Name implements Detector.
func (d *TimeFrag) Name() string { return "TimeFrag" }

// Profile returns the profile the detector was built with.
func (d *TimeFrag) Profile() Profile { return d.prof }

// Window and Need return the resolved evaluation-window length and the
// suspicious-window count that raises the alarm (diagnostics and tests).
func (d *TimeFrag) Window() int { return len(d.ring) }
func (d *TimeFrag) Need() int   { return d.need }

// Observe implements Detector.
func (d *TimeFrag) Observe(s pcm.Sample) {
	mA, okA := d.maA.Push(s.Access)
	mM, okM := d.maM.Push(s.Miss)
	if !okA && !okM {
		return
	}
	// Both averagers share the same geometry, so they emit together.
	d.ObserveMA(s.T, mA, mM)
}

// ObserveMA feeds one window-level observation — the moving averages M_n of
// the two counters at virtual time t — directly into the post-MA pipeline.
// Feed a detector through either Observe or ObserveMA, never both.
func (d *TimeFrag) ObserveMA(t float64, mA, mM float64) {
	eA := d.ewA.Push(mA)
	eM := d.ewM.Push(mM)
	d.windows++

	suspicious := eA < d.loA || eA > d.hiA || eM < d.loM || eM > d.hiM
	if d.filled == len(d.ring) {
		// Ring full: the verdict aging out leaves the count first.
		if d.ring[d.pos] {
			d.count--
		}
	} else {
		d.filled++
	}
	d.ring[d.pos] = suspicious
	if suspicious {
		d.count++
	}
	if d.pos++; d.pos == len(d.ring) {
		d.pos = 0
	}

	nowAlarmed := d.count >= d.need
	if nowAlarmed && !d.alarmed {
		metric := MetricAccess
		if eM < d.loM || eM > d.hiM {
			metric = MetricMiss
		}
		d.alarms = append(d.alarms, Alarm{
			T:        t,
			Detector: d.Name(),
			Metric:   metric,
			Reason: fmt.Sprintf("%d of last %d MA windows suspicious (threshold %d): fragmented out-of-range activity",
				d.count, len(d.ring), d.need),
		})
	}
	d.alarmed = nowAlarmed
}

// Suspicious returns the number of suspicious windows currently inside the
// evaluation span (diagnostics and tests).
func (d *TimeFrag) Suspicious() int { return d.count }

// Alarmed implements Detector.
func (d *TimeFrag) Alarmed() bool { return d.alarmed }

// AlarmCount implements AlarmCounter.
func (d *TimeFrag) AlarmCount() int { return len(d.alarms) }

// Alarms implements Detector.
func (d *TimeFrag) Alarms() []Alarm { return cloneAlarms(d.alarms) }
