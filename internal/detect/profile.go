package detect

import (
	"fmt"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/signal"
	"github.com/memdos/sds/internal/timeseries"
)

// Profile is the Stage-1 output of SDS: the normal-behaviour statistics of
// one application, collected while the VM is known to be attack-free
// (immediately after it is started or migrated, §4.2.1). SDS/B uses the
// EWMA mean/σ per counter; SDS/P uses the MA-series period.
type Profile struct {
	// App names the profiled application.
	App string
	// Windows is the number of MA windows the profile was built from.
	Windows int

	// MeanAccess and StdAccess are μ_E and σ_E of the EWMA'd AccessNum.
	MeanAccess, StdAccess float64
	// MeanMiss and StdMiss are μ_E and σ_E of the EWMA'd MissNum.
	MeanMiss, StdMiss float64

	// Periodic reports whether the application shows a stable repeating
	// MA pattern (the Stage-1 periodicity check).
	Periodic bool
	// PeriodMA is the period in MA windows (0 when not periodic). The
	// paper's FaceNet example has PeriodMA ≈ 17.
	PeriodMA int
}

// Bounds returns the SDS/B normal range [μ−kσ, μ+kσ] for the given counter.
func (p Profile) Bounds(metric Metric, k float64) (lo, hi float64, err error) {
	var mean, std float64
	switch metric {
	case MetricAccess:
		mean, std = p.MeanAccess, p.StdAccess
	case MetricMiss:
		mean, std = p.MeanMiss, p.StdMiss
	default:
		return 0, 0, fmt.Errorf("detect: no bounds for metric %v", metric)
	}
	return mean - k*std, mean + k*std, nil
}

// BuildProfile computes a Profile from attack-free PCM samples using the
// pipeline of §4.1 (MA with window W and step ΔW, then EWMA with factor α).
// It needs enough samples for a statistically useful number of MA windows.
func BuildProfile(app string, samples []pcm.Sample, cfg Config) (Profile, error) {
	if err := cfg.Validate(); err != nil {
		return Profile{}, err
	}
	const minWindows = 20
	need := cfg.W + (minWindows-1)*cfg.DW
	if len(samples) < need {
		return Profile{}, fmt.Errorf("detect: profiling %q needs at least %d samples (%d MA windows), got %d",
			app, need, minWindows, len(samples))
	}

	rawA := make([]float64, len(samples))
	rawM := make([]float64, len(samples))
	for i, s := range samples {
		rawA[i] = s.Access
		rawM[i] = s.Miss
	}
	maA, err := timeseries.MovingAverage(rawA, cfg.W, cfg.DW)
	if err != nil {
		return Profile{}, err
	}
	maM, err := timeseries.MovingAverage(rawM, cfg.W, cfg.DW)
	if err != nil {
		return Profile{}, err
	}
	ewA, err := timeseries.EWMASeries(maA, cfg.Alpha)
	if err != nil {
		return Profile{}, err
	}
	ewM, err := timeseries.EWMASeries(maM, cfg.Alpha)
	if err != nil {
		return Profile{}, err
	}

	prof := Profile{
		App:        app,
		Windows:    len(maA),
		MeanAccess: timeseries.Mean(ewA),
		StdAccess:  timeseries.StdDev(ewA),
		MeanMiss:   timeseries.Mean(ewM),
		StdMiss:    timeseries.StdDev(ewM),
	}
	// Stage-1 periodicity check on the MA series (EWMA may smooth the
	// pattern away, §4.2.2 computes periods over MA).
	if period, ok := signal.IsPeriodic(maA, cfg.PeriodTolerance, periodOptions(cfg, 0)); ok {
		prof.Periodic = true
		prof.PeriodMA = period
	}
	return prof, nil
}

// maxProfilePeriod caps the MA-window period the Stage-1 check will accept
// (60 windows = 30 s with Table 1 parameters). Longer "periods" are slow
// phase alternation, not the batch-processing cycles SDS/P targets — and a
// detector window of W_P = 2p would make period monitoring uselessly slow.
const maxProfilePeriod = 60

// periodOptions builds the estimator options SDS/P and the profiler share.
// knownPeriod > 0 narrows the minimum candidate period, stabilising
// estimates on short W_P windows; knownPeriod == 0 (profiling) caps the
// maximum period instead.
func periodOptions(cfg Config, knownPeriod int) signal.PeriodOptions {
	opts := signal.PeriodOptions{}
	if knownPeriod > 0 {
		opts.MinPeriod = max(2, knownPeriod/3)
		return opts
	}
	opts.MaxPeriod = maxProfilePeriod
	return opts
}
