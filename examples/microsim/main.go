// Micro-architectural demonstration: instead of the calibrated telemetry
// models, this example runs the repository's cache/bus/VM simulator — a
// set-associative LLC shared by nine VMs and an arbitrated memory bus — and
// reproduces the paper's two observations from first principles:
//
//	Observation 1: the bus-locking attack collapses the victim's LLC
//	access rate; the cleansing attack inflates its miss rate.
//	Observation 2: a work-based periodic loop's cycle stretches under
//	either attack.
//
// A PCM monitor samples the victim's counters every T_PCM, and SDS/B —
// profiled on the same machine before the attack — detects the attack from
// that stream alone.
//
//	go run ./examples/microsim
package main

import (
	"fmt"
	"log"

	"github.com/memdos/sds"
	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/membus"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/vmm"
	"github.com/memdos/sds/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Shared hardware: a scaled-down LLC and a memory bus.
	cache, err := cachesim.New(cachesim.Config{SizeBytes: 512 * 1024, LineSize: 64, Ways: 8})
	if err != nil {
		return err
	}
	bus, err := membus.New(2e6, 0.95)
	if err != nil {
		return err
	}
	machine, err := vmm.NewMachine(cache, bus)
	if err != nil {
		return err
	}

	// The victim VM runs a periodic working-set loop (think FaceNet
	// batches); seven benign VMs run near-idle utilities; the ninth VM is
	// the attacker, which starts bus locking at t=30 s.
	victim, err := workload.NewPhasedLoop("victim-app", 0, 4e5, []workload.LoopPhase{
		{Lines: 512, Work: 30000},
		{Lines: 1024, Work: 30000},
	}, randx.New(1, 2))
	if err != nil {
		return err
	}
	victimVM, err := machine.AddVM("victim", victim)
	if err != nil {
		return err
	}
	for i := 0; i < 7; i++ {
		idle, err := workload.NewIdle(fmt.Sprintf("benign-%d", i), 2000, randx.Derive(3, uint64(i)))
		if err != nil {
			return err
		}
		if _, err := machine.AddVM(idle.Name(), idle); err != nil {
			return err
		}
	}
	const attackAt = 30.0
	locker, err := attack.NewBusLocker(attackAt, 0.9, randx.New(4, 5))
	if err != nil {
		return err
	}
	if _, err := machine.AddVM(locker.Name(), locker); err != nil {
		return err
	}

	// A PCM monitor watches the victim's shared-cache counters.
	monitor, err := pcm.NewMonitor(func() (uint64, uint64) {
		st, err := machine.CacheStats(victimVM.ID())
		if err != nil {
			return 0, 0
		}
		return st.Accesses, st.Misses
	}, 0.01)
	if err != nil {
		return err
	}

	// Phase 1 — profile the victim before the attack window.
	cfg := sds.DefaultConfig()
	cfg.W, cfg.DW, cfg.HC = 100, 25, 30 // smaller windows: the microsim runs shorter
	var profileSamples []sds.Sample
	for machine.Now() < 20 {
		if err := machine.Tick(0.01); err != nil {
			return err
		}
		samples, err := monitor.Advance(0.01)
		if err != nil {
			return err
		}
		profileSamples = append(profileSamples, samples...)
	}
	profile, err := sds.BuildProfile("victim-app", profileSamples, cfg)
	if err != nil {
		return err
	}
	detector, err := sds.NewSDSB(profile, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("profiled victim on the micro-simulator: access rate ≈ %.0f/sample (σ %.0f)\n",
		profile.MeanAccess, profile.StdAccess)

	// Phase 2 — keep running; the attacker fires at t=30 s.
	cyclesBefore, cyclesAfter := 0, 0
	lastPhase := victim.Phase()
	for machine.Now() < 60 {
		if err := machine.Tick(0.01); err != nil {
			return err
		}
		if victim.Phase() != lastPhase {
			lastPhase = victim.Phase()
			if machine.Now() < attackAt {
				cyclesBefore++
			} else {
				cyclesAfter++
			}
		}
		samples, err := monitor.Advance(0.01)
		if err != nil {
			return err
		}
		for _, s := range samples {
			wasAlarmed := detector.Alarmed()
			detector.Observe(s)
			if detector.Alarmed() && !wasAlarmed && s.T+20 > attackAt {
				fmt.Printf("[%6.2fs] SDS/B alarm: %s\n", machine.Now(), detector.Alarms()[len(detector.Alarms())-1].Reason)
			}
		}
	}

	st, err := machine.CacheStats(victimVM.ID())
	if err != nil {
		return err
	}
	fmt.Printf("victim phase transitions: %d in the 10 s before the attack, %d in the 30 s under it\n",
		cyclesBefore, cyclesAfter)
	fmt.Printf("victim totals: %d LLC accesses, %d misses; progress %.1f s of work in %.0f s wall time\n",
		st.Accesses, st.Misses, victimVM.Progress(), machine.Now())
	if !detector.Alarmed() {
		return fmt.Errorf("SDS/B failed to detect the bus-locking attack")
	}
	return nil
}
