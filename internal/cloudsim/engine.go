package cloudsim

import (
	"fmt"
	"math"
	"strconv"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// Run executes one datacenter scenario to completion and returns its
// deterministic result.
func Run(sc Scenario) (Result, error) {
	e, err := newEngine(sc)
	if err != nil {
		return Result{}, err
	}
	return e.run()
}

// engine is the single-threaded discrete-event simulator state.
type engine struct {
	sc         Scenario
	cfg        detect.Config
	tpcm       float64
	horizon    int64 // run length in ticks (T_PCM intervals)
	blockTicks int64 // ΔW at window fidelity, 1 at exact fidelity
	window     bool

	hosts   []*host
	vms     []*vm
	victims []int // victim VM ids, in id order

	heap eventHeap
	seq  uint64

	// Labelled substreams: placement decisions, churn arrivals/lifetimes,
	// and attacker campaigns each draw from their own stream so adding one
	// consumer never perturbs the others. Every VM model additionally owns
	// a stream derived from its name.
	placeRng, churnRng, campRng *randx.Rand

	profiles map[string]detect.Profile
	appProfs map[string]workload.Profile

	res         Result
	quarantines []float64
	churnSeq    int

	victimProg, victimElapsed float64
	benignProg, benignElapsed float64
	exposureSum               float64
}

// newEngine builds the initial cluster and seeds the event queue.
func newEngine(sc Scenario) (*engine, error) {
	sc = sc.withDefaults()
	if err := sc.validate(); err != nil {
		return nil, err
	}
	e := &engine{
		sc:         sc,
		cfg:        sc.Detect,
		tpcm:       sc.Detect.TPCM,
		horizon:    int64(pcm.SampleCount(sc.Seconds, sc.Detect.TPCM)),
		blockTicks: 1,
		window:     sc.Fidelity == FidelityWindow,
		placeRng:   randx.DeriveString(sc.Seed, "cloud/place"),
		churnRng:   randx.DeriveString(sc.Seed, "cloud/churn"),
		campRng:    randx.DeriveString(sc.Seed, "cloud/campaign"),
		profiles:   make(map[string]detect.Profile),
		appProfs:   make(map[string]workload.Profile),
	}
	if e.window {
		e.blockTicks = int64(e.cfg.DW)
	}
	for _, app := range sc.Apps {
		e.appProfs[app] = workload.MustAppProfile(app)
	}

	monitorScheme := sc.Scheme != "none"
	e.hosts = make([]*host, sc.Hosts)
	for i := range e.hosts {
		e.hosts[i] = &host{id: i}
	}
	for i := 0; i < sc.Hosts; i++ {
		for j := 0; j < sc.VMsPerHost; j++ {
			id := len(e.vms)
			r := roleBenign
			if j == 0 {
				r = roleVictim
				e.victims = append(e.victims, id)
			}
			monitored := monitorScheme && (j == 0 || sc.MonitorAll)
			v, err := e.newVM(id, r, sc.Apps[id%len(sc.Apps)], monitored)
			if err != nil {
				return nil, err
			}
			e.vms = append(e.vms, v)
			e.hosts[i].add(v, 0)
		}
	}
	for k := 0; k < sc.Attackers; k++ {
		id := len(e.vms)
		a := &vm{
			id:        id,
			name:      "atk" + strconv.Itoa(k),
			role:      roleAttacker,
			host:      -1,
			kind:      e.attackerKind(k),
			targetIdx: k * len(e.victims) / sc.Attackers,
		}
		a.target = e.victims[a.targetIdx]
		a.nextStart = sc.AttackStart
		e.vms = append(e.vms, a)
		e.push(event{tick: e.tickFor(sc.AttackStart), kind: evPlace, host: -1, vm: int32(id)})
	}
	if sc.ChurnArrivalsPerMin > 0 {
		e.push(event{tick: e.tickFor(e.churnRng.Exp(60 / sc.ChurnArrivalsPerMin)), kind: evArrive, host: -1, vm: -1})
	}

	e.res = Result{
		Scenario:  sc.Name,
		Policy:    sc.Mitigation.Policy,
		Fidelity:  sc.Fidelity,
		Scheme:    sc.Scheme,
		Hosts:     sc.Hosts,
		VMs:       sc.Hosts * sc.VMsPerHost,
		Attackers: sc.Attackers,
		Seconds:   sc.Seconds,
	}
	return e, nil
}

// attackerKind maps an attacker index to its attack kind.
func (e *engine) attackerKind(k int) attack.Kind {
	switch e.sc.AttackKind {
	case AttackBusLock:
		return attack.BusLock
	case AttackCleanse:
		return attack.Cleanse
	default: // AttackMixed
		if k%2 == 0 {
			return attack.BusLock
		}
		return attack.Cleanse
	}
}

// newVM constructs one benign or victim VM, with telemetry model and
// detector when monitored.
func (e *engine) newVM(id int, r role, app string, monitored bool) (*vm, error) {
	v := &vm{
		id:        id,
		name:      "vm" + strconv.Itoa(id),
		role:      r,
		app:       app,
		prof:      e.appProfs[app],
		host:      -1,
		monitored: monitored,
	}
	if !monitored {
		return v, nil
	}
	rng := randx.DeriveString(e.sc.Seed, v.name+"/model")
	if e.window {
		v.bm = newBlockModel(v.prof, rng, float64(e.cfg.DW)*e.tpcm, e.cfg.DW)
		bpw := e.cfg.W / e.cfg.DW
		v.ringA = make([]float64, bpw)
		v.ringM = make([]float64, bpw)
	} else {
		model, err := workload.NewModel(v.prof, rng)
		if err != nil {
			return nil, err
		}
		v.model = model
	}
	if err := e.attachDetector(v); err != nil {
		return nil, err
	}
	return v, nil
}

// attachDetector (re-)builds v's detector from the cached Stage-1 profile —
// used at construction and after every migration (the paper reruns Stage 1
// on the destination host; the per-application profile is the same
// statistical object, so the engine reuses it).
func (e *engine) attachDetector(v *vm) error {
	v.det, v.wobs, v.counter, v.probe = nil, nil, nil, nil
	v.ringPos, v.ringN, v.alarmsSeen = 0, 0, 0
	switch e.sc.Scheme {
	case "KStest":
		d, err := detect.NewKSTest(e.sc.KSTest, &throttleFlag{})
		if err != nil {
			return err
		}
		v.det, v.counter, v.probe = d, d, d
		return nil
	}
	prof, err := e.profileFor(v.app)
	if err != nil {
		return err
	}
	switch e.sc.Scheme {
	case "SDS":
		d, err := detect.NewSDS(prof, e.cfg)
		if err != nil {
			return err
		}
		v.det, v.wobs, v.counter = d, d, d
	case "SDS/B":
		d, err := detect.NewSDSB(prof, e.cfg)
		if err != nil {
			return err
		}
		v.det, v.wobs, v.counter = d, d, d
	case "SDS/P":
		d, err := detect.NewSDSP(prof, e.cfg)
		if err != nil {
			return err
		}
		v.det, v.wobs, v.counter = d, d, d
	case "CUSUM":
		d, err := detect.NewCUSUM(prof, e.cfg)
		if err != nil {
			return err
		}
		v.det, v.wobs, v.counter = d, d, d
	case "TimeFrag":
		d, err := detect.NewTimeFrag(prof, e.cfg)
		if err != nil {
			return err
		}
		v.det, v.wobs, v.counter = d, d, d
	case "EWMAVar":
		d, err := detect.NewEWMAVar(prof, e.cfg)
		if err != nil {
			return err
		}
		v.det, v.wobs, v.counter = d, d, d
	default:
		return fmt.Errorf("cloudsim: no detector for scheme %q", e.sc.Scheme)
	}
	return nil
}

// profileFor returns the app's Stage-1 detection profile, building it on
// first use. Profiling itself always runs at exact per-sample fidelity, so
// detector bounds are identical across fidelities.
func (e *engine) profileFor(app string) (detect.Profile, error) {
	if p, ok := e.profiles[app]; ok {
		return p, nil
	}
	p, err := stage1Profile(app, e.sc.Seed, e.sc.ProfileSeconds, e.cfg)
	if err != nil {
		return detect.Profile{}, err
	}
	e.profiles[app] = p
	return p, nil
}

// stage1Profile runs the attack-free Stage-1 profiling pass for one
// application, with the experiment harness's stream-labelling convention.
func stage1Profile(app string, seed uint64, seconds float64, cfg detect.Config) (detect.Profile, error) {
	prof, err := workload.AppProfile(app)
	if err != nil {
		return detect.Profile{}, err
	}
	model, err := workload.NewModel(prof, randx.DeriveString(seed, app+"/profile"))
	if err != nil {
		return detect.Profile{}, err
	}
	n := pcm.SampleCount(seconds, cfg.TPCM)
	samples := make([]pcm.Sample, n)
	for i := 0; i < n; i++ {
		a, m := model.Sample(cfg.TPCM, workload.Env{})
		samples[i] = pcm.Sample{T: float64(i+1) * cfg.TPCM, Access: a, Miss: m}
	}
	return detect.BuildProfile(app, samples, cfg)
}

// tickFor converts a virtual time to the event tick it lands on: rounded up
// to the next sample boundary, and at window fidelity up to the next block
// boundary, so events only ever apply between telemetry batches.
func (e *engine) tickFor(at float64) int64 {
	t := int64(math.Ceil(at/e.tpcm - 1e-9))
	if t < 0 {
		t = 0
	}
	if e.blockTicks > 1 {
		if r := t % e.blockTicks; r != 0 {
			t += e.blockTicks - r
		}
	}
	return t
}

// run drives the event loop to the horizon.
func (e *engine) run() (Result, error) {
	for {
		target := e.horizon
		if len(e.heap) > 0 && e.heap[0].tick < target {
			target = e.heap[0].tick
		}
		if !e.advanceAll(target) {
			// A host stopped early to let a freshly scheduled alarm
			// reaction keep its causal slot; re-evaluate the queue head.
			continue
		}
		if len(e.heap) == 0 {
			break // queue drained and every host at the horizon
		}
		ev := e.pop()
		if ev.tick > e.horizon {
			continue // scheduled past the end of the run
		}
		e.res.Events++
		if err := e.apply(ev); err != nil {
			return Result{}, err
		}
	}
	e.finalize()
	return e.res, nil
}

// advanceAll lazily brings every host forward to the target tick. It
// returns false as soon as one host stops early (a new alarm scheduled
// events that may precede the current target).
func (e *engine) advanceAll(to int64) bool {
	for _, h := range e.hosts {
		if !e.advanceHost(h, to) {
			return false
		}
	}
	return true
}

// advanceHost generates telemetry and progress on h up to the target tick,
// block by block (sample by sample at exact fidelity). When a monitored VM
// raises a new alarm the host finishes the current block for all its VMs,
// handles the alarm, and stops so scheduled reactions stay causally ordered.
func (e *engine) advanceHost(h *host, to int64) bool {
	for h.tick < to {
		end := h.tick + e.blockTicks
		if end > to {
			end = to
		}
		t0 := float64(h.tick) * e.tpcm
		t1 := float64(end) * e.tpcm
		dt := t1 - t0
		stopped := false
		if e.window {
			bus, cl := h.envOver(t0, t1)
			for _, v := range h.vms {
				if v.role == roleAttacker {
					continue
				}
				if v.paused {
					v.elapsed += dt
					continue
				}
				e.account(v, bus, cl, dt)
				if !v.monitored {
					continue
				}
				a, m := v.bm.step(bus, cl)
				e.res.Blocks++
				if maA, maM, ok := v.pushBlock(a, m); ok {
					v.wobs.ObserveMA(t1, maA, maM)
					if n := v.counter.AlarmCount(); n > v.alarmsSeen {
						v.alarmsSeen = n
						e.onAlarm(h, v, t1, end)
						stopped = true
					}
				}
			}
		} else {
			bus, cl := h.envAt(t1)
			for _, v := range h.vms {
				if v.role == roleAttacker {
					continue
				}
				if v.paused {
					v.elapsed += dt
					continue
				}
				e.account(v, bus, cl, dt)
				if !v.monitored {
					continue
				}
				var env workload.Env
				if v.probe != nil && v.probe.Collecting() {
					env = workload.Env{Quiesced: true}
				} else {
					env = workload.Env{BusLock: bus, Cleanse: cl}
				}
				a, m := v.model.Sample(e.tpcm, env)
				v.det.Observe(pcm.Sample{T: t1, Access: a, Miss: m})
				e.res.SamplesRepresented++
				if n := v.counter.AlarmCount(); n > v.alarmsSeen {
					v.alarmsSeen = n
					e.onAlarm(h, v, t1, end)
					stopped = true
				}
			}
		}
		h.tick = end
		if stopped && h.tick < to {
			return false
		}
	}
	return true
}

// account accrues elapsed time, analytic progress and attack exposure for
// one VM over one interval.
func (e *engine) account(v *vm, bus, cl, dt float64) {
	v.elapsed += dt
	v.progress += dt * (1 - v.slowdownRate(bus, cl))
	if v.role == roleVictim {
		i := bus
		if cl > i {
			i = cl
		}
		if i > 0 {
			v.exposure += i * dt
		}
	}
}

// pushBlock records one block mean in the VM's MA-assembly ring and, once
// the ring covers a full window, returns the moving averages to feed the
// detector.
func (v *vm) pushBlock(a, m float64) (maA, maM float64, ok bool) {
	bpw := len(v.ringA)
	v.ringA[v.ringPos] = a
	v.ringM[v.ringPos] = m
	if v.ringPos++; v.ringPos == bpw {
		v.ringPos = 0
	}
	if v.ringN < bpw {
		if v.ringN++; v.ringN < bpw {
			return 0, 0, false
		}
	}
	var sa, sm float64
	for i := 0; i < bpw; i++ {
		sa += v.ringA[i]
		sm += v.ringM[i]
	}
	k := float64(bpw)
	return sa / k, sm / k, true
}

// onAlarm scores a fresh alarm edge and, under an active mitigation policy,
// schedules the provider's reaction.
func (e *engine) onAlarm(h *host, v *vm, t float64, tick int64) {
	e.res.Alarms++
	e.res.noteAlarm(v.id, tick)
	if h.attackActive(t) {
		e.res.TrueAlarms++
	} else {
		e.res.FalseAlarms++
	}
	pol := e.sc.Mitigation.Policy
	if pol == PolicyNone || v.mitPending {
		return
	}
	if pol == PolicyThrottleMigrate && h.throttling {
		return
	}
	v.mitPending = true
	e.res.Mitigations++
	e.push(event{tick: e.tickFor(t + e.sc.Mitigation.ReactionDelay), kind: evMitigate, host: -1, vm: int32(v.id)})
}

// apply dispatches one event. Hosts are already advanced to the event tick.
func (e *engine) apply(ev event) error {
	now := float64(ev.tick) * e.tpcm
	switch ev.kind {
	case evArrive:
		e.handleArrive(now)
	case evDepart:
		e.handleDepart(e.vms[ev.vm])
	case evPlace:
		e.handlePlace(e.vms[ev.vm], now)
	case evHop:
		e.handleHop(e.vms[ev.vm], now)
	case evMitigate:
		e.handleMitigate(e.vms[ev.vm], now)
	case evVerifyThrottle:
		e.handleVerifyThrottle(e.vms[ev.vm], now)
	case evVerifyMigrate:
		e.handleVerifyMigrate(e.vms[ev.vm])
	case evResume:
		return e.handleResume(e.vms[ev.vm])
	default:
		return fmt.Errorf("cloudsim: unknown event kind %d", ev.kind)
	}
	return nil
}

// fold moves a VM's accounting into the run totals (at departure or at the
// end of the run).
func (e *engine) fold(v *vm) {
	switch v.role {
	case roleVictim:
		e.victimProg += v.progress
		e.victimElapsed += v.elapsed
		e.exposureSum += v.exposure
	case roleBenign:
		e.benignProg += v.progress
		e.benignElapsed += v.elapsed
	}
}

// finalize folds the still-placed VMs and fills the summary statistics.
func (e *engine) finalize() {
	for _, h := range e.hosts {
		for _, v := range h.vms {
			e.fold(v)
		}
	}
	if e.window {
		e.res.SamplesRepresented = e.res.Blocks * int64(e.cfg.DW)
	}
	e.res.TimeToQuarantine = metrics.Summarize(e.quarantines)
	e.res.QuarantineCount = len(e.quarantines)
	if e.victimElapsed > 0 {
		e.res.VictimSlowdown = 1 - e.victimProg/e.victimElapsed
	}
	if e.benignElapsed > 0 {
		e.res.BenignSlowdown = 1 - e.benignProg/e.benignElapsed
	}
	if n := len(e.victims); n > 0 {
		e.res.VictimExposureSec = e.exposureSum / float64(n)
	}
}
