package signal

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
)

func complexClose(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,1,1,1] is [4,0,0,0]; FFT of an impulse is flat.
	got := FFTReal([]float64{1, 1, 1, 1})
	want := []complex128{4, 0, 0, 0}
	for i := range want {
		if !complexClose(got[i], want[i], 1e-12) {
			t.Fatalf("FFT(ones)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	got = FFTReal([]float64{1, 0, 0, 0})
	for i := range got {
		if !complexClose(got[i], 1, 1e-12) {
			t.Fatalf("FFT(impulse)[%d] = %v, want 1", i, got[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure cosine at bin k concentrates power at bins k and N-k.
	const n, k = 64, 5
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(k) * float64(i) / n)
	}
	X := FFTReal(x)
	for i, v := range X {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Errorf("bin %d magnitude = %v, want %v", i, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want 0", i, mag)
		}
	}
}

func TestFFTRoundTripPowerOfTwo(t *testing.T) {
	r := randx.New(1, 2)
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
		}
		back := IFFT(FFT(x))
		for i := range x {
			if !complexClose(back[i], x[i], 1e-9) {
				t.Fatalf("n=%d: round trip [%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTRoundTripArbitraryLength(t *testing.T) {
	r := randx.New(3, 4)
	for _, n := range []int{3, 5, 7, 12, 100, 101, 255} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
		}
		back := IFFT(FFT(x))
		for i := range x {
			if !complexClose(back[i], x[i], 1e-8) {
				t.Fatalf("n=%d: round trip [%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := randx.New(5, 6)
	for _, n := range []int{4, 9, 16, 30} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
		}
		fast := FFT(x)
		for k := 0; k < n; k++ {
			var want complex128
			for j := 0; j < n; j++ {
				angle := -2 * math.Pi * float64(j) * float64(k) / float64(n)
				want += x[j] * cmplx.Exp(complex(0, angle))
			}
			if !complexClose(fast[k], want, 1e-8) {
				t.Fatalf("n=%d bin %d: fast %v, naive %v", n, k, fast[k], want)
			}
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	r := randx.New(7, 8)
	f := func(nRaw uint8, aRaw, bRaw int8) bool {
		n := int(nRaw)%60 + 2
		a := complex(float64(aRaw)/16, 0)
		b := complex(float64(bRaw)/16, 0)
		x := make([]complex128, n)
		y := make([]complex128, n)
		combo := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(r.Normal(0, 1), 0)
			y[i] = complex(r.Normal(0, 1), 0)
			combo[i] = a*x[i] + b*y[i]
		}
		fx, fy, fc := FFT(x), FFT(y), FFT(combo)
		for i := 0; i < n; i++ {
			if !complexClose(fc[i], a*fx[i]+b*fy[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Sum |x|^2 == (1/N) Sum |X|^2.
	r := randx.New(9, 10)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(r.Normal(0, 2), r.Normal(0, 2))
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		X := FFT(x)
		var freqEnergy float64
		for _, v := range X {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) <= 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTEmpty(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Fatalf("FFT(nil) = %v, want nil", got)
	}
	if got := IFFT(nil); got != nil {
		t.Fatalf("IFFT(nil) = %v, want nil", got)
	}
}

func TestPeriodogramPeakAtPlantedFrequency(t *testing.T) {
	const n, k = 200, 8
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + 10*math.Sin(2*math.Pi*float64(k)*float64(i)/n)
	}
	spec := Periodogram(x)
	best := 1
	for i := 2; i < len(spec); i++ {
		if spec[i] > spec[best] {
			best = i
		}
	}
	if best != k {
		t.Fatalf("periodogram peak at bin %d, want %d", best, k)
	}
	if spec[0] > 1e-9 {
		t.Fatalf("DC component %v after demeaning, want ~0", spec[0])
	}
}

func TestPeriodogramEmpty(t *testing.T) {
	if got := Periodogram(nil); got != nil {
		t.Fatalf("Periodogram(nil) = %v", got)
	}
}
