package detect

import (
	"fmt"
	"math"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/timeseries"
)

// EWMAVar default knobs (Config.VarBeta/VarCalib/VarH zero values resolve to
// these: a slow variance smoother, a 100-window self-calibration phase —
// 50 s at Table 1 geometry — and a 10-window consecutive-violation streak).
const (
	defaultVarBeta  = 0.05
	defaultVarCalib = 100
	defaultVarH     = 10

	// varBandMult is a fixed dispersion-headroom factor applied on top of
	// the swept boundary factor k: the violation band is μ_v ± k·varBandMult·σ_v.
	// Two structural properties of v demand it. First, v is itself an
	// exponentially smoothed second moment, so consecutive v values are
	// correlated over ~1/β windows — a VarH-long violation streak is not
	// the (1/k²)^VarH rare event it would be for independent values, and
	// the streak filter alone cannot carry the false-alarm budget the way
	// H_C does for SDS/B. Second, squared deviations are heavier-tailed
	// than the deviations themselves. The headroom restores a workable
	// operating range at the paper's k values; the ROC sweep still moves
	// the whole band through k.
	varBandMult = 3.0

	// varBurnInFactor · (1/β) windows are discarded before calibration
	// starts: v relaxes from 0 toward its stationary level with time
	// constant 1/β, and calibrating on the ramp biases μ_v low (the
	// stationary signal then sits permanently above the band).
	varBurnInFactor = 3
)

// EWMAVar is a cheap EWMA-of-variance baseline: alongside the usual EWMA
// mean S_n of each counter's moving-average series, it tracks an
// exponentially weighted variance
//
//	v_n = (1−β)·v_{n−1} + β·(M_n − S_{n−1})²
//
// (the EWMS/EWMV estimator of Finch 2009), self-calibrates the normal range
// of v over the first VarCalib windows of live traffic, and alarms after
// VarH consecutive windows in which either counter's v falls outside
// μ_v ± k·σ_v, with the same boundary factor k the SDS schemes use.
//
// The signal is deliberately orthogonal to SDS/B's: a level detector watches
// where the counters sit, a variance detector watches how much they churn.
// Attacks that shift dispersion more than level (ramping bus locks, noisy
// cleansing) move v first; conversely a clean level shift with unchanged
// spread is EWMAVar's blind spot — which is exactly why it is fielded as a
// baseline for the ROC tournament rather than a replacement.
type EWMAVar struct {
	cfg  Config
	prof Profile

	k      float64
	beta   float64
	calibN int
	varH   int

	maA, maM *timeseries.MovingAverager
	ewA, ewM *timeseries.EWMA

	prevA, prevM float64 // S_{n−1}, the smoothed means before this window
	vA, vM       float64
	started      bool // first window seen (seeds prevA/prevM)

	// Welford accumulators over v during the calibration phase, then the
	// calibrated normal ranges.
	burnLeft               int
	calibSeen              int
	meanVA, m2VA           float64
	meanVM, m2VM           float64
	calibrated             bool
	loVA, hiVA, loVM, hiVM float64

	consec     int
	windows    int // detection-phase windows observed
	violations int // detection-phase windows with v outside the normal range
	alarmed    bool
	alarms     []Alarm
}

var _ Detector = (*EWMAVar)(nil)
var _ WindowObserver = (*EWMAVar)(nil)
var _ AlarmCounter = (*EWMAVar)(nil)

// NewEWMAVar returns an EWMAVar detector. The Stage-1 profile is carried for
// provenance only: unlike the SDS schemes, EWMAVar self-calibrates its
// variance baseline from the first VarCalib windows of live traffic, so it
// needs no offline variance profile.
func NewEWMAVar(prof Profile, cfg Config) (*EWMAVar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &EWMAVar{
		cfg:    cfg,
		prof:   prof,
		k:      cfg.K,
		beta:   cfg.VarBeta,
		calibN: cfg.VarCalib,
		varH:   cfg.VarH,
	}
	if d.beta == 0 {
		d.beta = defaultVarBeta
	}
	if d.calibN == 0 {
		d.calibN = defaultVarCalib
	}
	if d.varH == 0 {
		d.varH = defaultVarH
	}
	d.burnLeft = int(varBurnInFactor / d.beta)
	var err error
	if d.maA, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.maM, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.ewA, err = timeseries.NewEWMA(cfg.Alpha); err != nil {
		return nil, err
	}
	if d.ewM, err = timeseries.NewEWMA(cfg.Alpha); err != nil {
		return nil, err
	}
	return d, nil
}

// Name implements Detector.
func (d *EWMAVar) Name() string { return "EWMAVar" }

// Profile returns the profile the detector was built with.
func (d *EWMAVar) Profile() Profile { return d.prof }

// Calibrated reports whether the variance baseline has been learned (the
// detector cannot alarm before then).
func (d *EWMAVar) Calibrated() bool { return d.calibrated }

// Observe implements Detector.
func (d *EWMAVar) Observe(s pcm.Sample) {
	mA, okA := d.maA.Push(s.Access)
	mM, okM := d.maM.Push(s.Miss)
	if !okA && !okM {
		return
	}
	// Both averagers share the same geometry, so they emit together.
	d.ObserveMA(s.T, mA, mM)
}

// ObserveMA feeds one window-level observation — the moving averages M_n of
// the two counters at virtual time t — directly into the post-MA pipeline.
// Feed a detector through either Observe or ObserveMA, never both.
func (d *EWMAVar) ObserveMA(t float64, mA, mM float64) {
	if !d.started {
		// First window seeds the smoothed means; no deviation to square yet.
		d.started = true
		d.prevA = d.ewA.Push(mA)
		d.prevM = d.ewM.Push(mM)
		return
	}
	devA := mA - d.prevA
	devM := mM - d.prevM
	d.vA = (1-d.beta)*d.vA + d.beta*devA*devA
	d.vM = (1-d.beta)*d.vM + d.beta*devM*devM
	d.prevA = d.ewA.Push(mA)
	d.prevM = d.ewM.Push(mM)

	if !d.calibrated {
		if d.burnLeft > 0 {
			d.burnLeft--
			return
		}
		d.calibSeen++
		d.meanVA, d.m2VA = welfordStep(d.meanVA, d.m2VA, d.vA, d.calibSeen)
		d.meanVM, d.m2VM = welfordStep(d.meanVM, d.m2VM, d.vM, d.calibSeen)
		if d.calibSeen >= d.calibN {
			d.finishCalibration()
		}
		return
	}

	d.windows++
	violated := d.vA < d.loVA || d.vA > d.hiVA || d.vM < d.loVM || d.vM > d.hiVM
	if violated {
		d.violations++
		d.consec++
	} else {
		d.consec = 0
	}
	nowAlarmed := d.consec >= d.varH
	if nowAlarmed && !d.alarmed {
		metric, v, lo, hi := MetricAccess, d.vA, d.loVA, d.hiVA
		if d.vM < d.loVM || d.vM > d.hiVM {
			metric, v, lo, hi = MetricMiss, d.vM, d.loVM, d.hiVM
		}
		d.alarms = append(d.alarms, Alarm{
			T:        t,
			Detector: d.Name(),
			Metric:   metric,
			Reason: fmt.Sprintf("%s EWMA variance %.4g outside normal range [%.4g, %.4g] for %d consecutive windows",
				metric, v, lo, hi, d.consec),
		})
	}
	d.alarmed = nowAlarmed
}

// welfordStep advances one running mean/M2 pair with the n-th value.
func welfordStep(mean, m2, x float64, n int) (float64, float64) {
	delta := x - mean
	mean += delta / float64(n)
	m2 += delta * (x - mean)
	return mean, m2
}

// finishCalibration turns the Welford accumulators into μ_v ± kσ_v normal
// ranges. A relative σ floor keeps a near-constant calibration stream (σ≈0)
// from declaring every subsequent jitter a violation.
func (d *EWMAVar) finishCalibration() {
	d.calibrated = true
	d.loVA, d.hiVA = varBounds(d.meanVA, d.m2VA, d.calibSeen, d.k*varBandMult)
	d.loVM, d.hiVM = varBounds(d.meanVM, d.m2VM, d.calibSeen, d.k*varBandMult)
}

func varBounds(mean, m2 float64, n int, k float64) (lo, hi float64) {
	sd := 0.0
	if n > 1 {
		sd = math.Sqrt(m2 / float64(n-1))
	}
	if floor := 1e-3 * mean; sd < floor {
		sd = floor
	}
	lo = mean - k*sd
	if lo < 0 {
		lo = 0 // v is a squared quantity; a negative bound is vacuous
	}
	hi = mean + k*sd
	return lo, hi
}

// Variances returns the current EWMA variance of each counter's MA series
// (diagnostics and tests).
func (d *EWMAVar) Variances() (vA, vM float64) { return d.vA, d.vM }

// VarianceBounds returns the calibrated normal range of each counter's EWMA
// variance; ok is false before calibration completes.
func (d *EWMAVar) VarianceBounds() (loA, hiA, loM, hiM float64, ok bool) {
	return d.loVA, d.hiVA, d.loVM, d.hiVM, d.calibrated
}

// ViolationStats returns how many detection-phase windows have been observed
// and how many of them violated the calibrated range — the per-window
// false-alarm ratio the Chebyshev property test checks against 1/k².
func (d *EWMAVar) ViolationStats() (windows, violations int) {
	return d.windows, d.violations
}

// Alarmed implements Detector.
func (d *EWMAVar) Alarmed() bool { return d.alarmed }

// AlarmCount implements AlarmCounter.
func (d *EWMAVar) AlarmCount() int { return len(d.alarms) }

// Alarms implements Detector.
func (d *EWMAVar) Alarms() []Alarm { return cloneAlarms(d.alarms) }
