package server

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The ingest plane is sharded: the server owns Options.Shards ingest
// shards (default runtime.GOMAXPROCS(0)), and every network stream is
// affine to exactly one of them for its whole life. Affinity is derived
// from the VM name, not the accepting listener: ingest shard =
// fleet.Stripe(vm) mod shard count. That keys the shard off the same
// FNV-1a striping the detect.Fleet registry uses, so one ingest shard's
// VMs occupy a disjoint subset of the fleet's 64 stripes — Protect and
// Unprotect traffic from different shards never meets on a stripe lock,
// and a VM that disconnects and resumes always lands back on the same
// shard (the affinity invariant the race tests pin: one VM's samples are
// never observed from two shards concurrently).
//
// On Linux, each shard runs an epoll event loop (see epoll_linux.go) that
// owns its connections' binary-frame ingest: one bounded worker services
// socket-readiness events with large block reads into a shard-local
// buffer, decoding frames in place (feed.FrameScanner) and batching them
// into Session.ObserveBatch — no per-connection pump goroutines, no
// bufio copy, no channel handoff. Connections the event loop cannot take
// (CSV streams, non-socket conns like net.Pipe in tests, non-Linux
// platforms) fall back to an inline per-connection pump and are still
// accounted to their shard.
//
// SO_REUSEPORT accept sharding (ListenShards) is the front door: it gives
// the daemon one accept queue per shard so accept work spreads across
// cores. It deliberately does not determine processing affinity — the
// kernel hashes connections by 4-tuple, which says nothing about VM
// identity; the VM-stripe mapping above does.
type ingestShard struct {
	id  int
	srv *Server

	// Hot counters, exported per shard on /metricsz.
	conns       atomic.Int64  // streams currently attached to this shard
	samples     atomic.Uint64 // samples ingested via this shard
	frames      atomic.Uint64 // binary frames decoded by this shard
	quarantined atomic.Uint64 // samples quarantined on this shard
	queueDepth  atomic.Int64  // readiness events awaiting service in the event loop

	// mu guards lazy event-loop construction; ep stays nil where the
	// platform (or the socket) cannot support it.
	mu      sync.Mutex
	ep      *epollLoop
	epFatal bool // loop construction failed; don't retry per connection
}

// shardFor maps a VM name to its ingest shard.
func (s *Server) shardFor(vm string) *ingestShard {
	return s.shards[s.fleet.Stripe(vm)%len(s.shards)]
}

// eventLoop returns the shard's event loop, starting it on first use.
// Returns nil when the platform has no event loop or starting one failed.
func (sh *ingestShard) eventLoop() *epollLoop {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.ep != nil || sh.epFatal {
		return sh.ep
	}
	ep, err := newEpollLoop(sh)
	if err != nil {
		sh.epFatal = true
		sh.srv.logf("shard %d: event loop unavailable, using per-connection pumps: %v", sh.id, err)
		return nil
	}
	sh.ep = ep
	return ep
}

// wakeLoops nudges every running event loop (shutdown, drain).
func (s *Server) wakeLoops() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.ep != nil {
			sh.ep.wake()
		}
		sh.mu.Unlock()
	}
}

// sinceStart is the monotonic clock the idle sweeps run on (nanoseconds
// since server start; one VDSO clock read, no syscall).
func (s *Server) sinceStart() int64 { return int64(time.Since(s.start)) }

// connActivity tracks a goroutine-mode connection's read liveness for the
// idle sweep. readStart holds the sinceStart timestamp at which the
// current blocking Read began (0 = not blocked in Read): a connection is
// idle when one Read has been blocked longer than IdleTimeout — exactly
// the window the old per-read SetReadDeadline armed, now observed by a
// coarse sweep instead of two deadline syscalls per read.
type connActivity struct {
	readStart atomic.Int64
	evicted   atomic.Bool
}

// sweptConn stamps read liveness for the sweep. It arms no deadlines
// itself; the sweeper sets a deadline in the past to interrupt a read it
// has decided to evict, and Shutdown does the same to every tracked conn,
// so the pump tells the two apart via act.evicted + the draining flag.
type sweptConn struct {
	net.Conn
	act *connActivity
	srv *Server
}

func (c *sweptConn) Read(p []byte) (int, error) {
	c.act.readStart.Store(c.srv.sinceStart())
	n, err := c.Conn.Read(p)
	c.act.readStart.Store(0)
	return n, err
}

// sweepPeriod is the idle-sweep granularity: fine enough that an eviction
// fires within ~¼ of the timeout past the deadline, coarse enough that
// the sweep is noise even at 100k connections.
func sweepPeriod(idle time.Duration) time.Duration {
	p := idle / 4
	if p < time.Millisecond {
		p = time.Millisecond
	}
	if p > time.Second {
		p = time.Second
	}
	return p
}

// startSweeper launches the goroutine-path idle sweeper once. Event-loop
// connections are swept by their own shard loops; this covers the
// goroutine pumps (CSV streams, fallback binary pumps, handshakes).
func (s *Server) startSweeper() {
	if s.opts.IdleTimeout <= 0 {
		return
	}
	s.sweepOnce.Do(func() {
		go func() {
			t := time.NewTicker(sweepPeriod(s.opts.IdleTimeout))
			defer t.Stop()
			for {
				select {
				case <-s.sweepStop:
					return
				case <-t.C:
					s.sweepConns()
				}
			}
		}()
	})
}

// sweepConns evicts goroutine-path connections whose current Read has
// been blocked past IdleTimeout.
func (s *Server) sweepConns() {
	now := s.sinceStart()
	idle := int64(s.opts.IdleTimeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return // shutdown's interrupt owns the deadlines now
	}
	for conn, act := range s.conns {
		if act == nil {
			continue
		}
		if rs := act.readStart.Load(); rs != 0 && now-rs > idle {
			act.evicted.Store(true)
			conn.SetReadDeadline(time.Now())
		}
	}
}
