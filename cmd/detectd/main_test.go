package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/memdos/sds"
	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
)

// recordStream builds an in-memory CSV stream: profileSeconds attack-free,
// then an attack until the end.
func recordStream(t *testing.T, app string, seconds, attackAt float64) *bytes.Buffer {
	t.Helper()
	model, err := sds.NewApplication(app, 7)
	if err != nil {
		t.Fatal(err)
	}
	sched := sds.AttackSchedule{Kind: sds.BusLockAttack, Start: attackAt, Ramp: 10}
	var buf bytes.Buffer
	w := feed.NewWriter(&buf)
	cfg := sds.DefaultConfig()
	n := int(seconds / cfg.TPCM)
	for i := 0; i < n; i++ {
		now := float64(i+1) * cfg.TPCM
		a, m := model.Sample(cfg.TPCM, sched.Env(now, false))
		if err := w.Write(pcm.Sample{T: now, Access: a, Miss: m}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRunDetectTextOutput(t *testing.T) {
	in := recordStream(t, sds.KMeans, 1400, 1100)
	var out bytes.Buffer
	if err := runDetect(in, &out, "sds", sds.KMeans, 900, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "ALARM") {
		t.Fatalf("no alarm emitted:\n%s", text)
	}
}

func TestRunDetectJSONOutput(t *testing.T) {
	in := recordStream(t, sds.KMeans, 1400, 1100)
	var out bytes.Buffer
	if err := runDetect(in, &out, "sdsb", sds.KMeans, 900, true); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	attackEvents := 0
	for sc.Scan() {
		var ev alarmEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		if ev.Detector == "" || ev.Reason == "" || ev.Metric == "" {
			t.Fatalf("incomplete event %+v", ev)
		}
		// Rare pre-attack false alarms are part of the model; the attack
		// itself must be among the events.
		if ev.T >= 1100 {
			attackEvents++
		}
	}
	if attackEvents == 0 {
		t.Fatal("no JSON event for the attack")
	}
}

func TestRunDetectErrors(t *testing.T) {
	if err := runDetect(strings.NewReader(""), &bytes.Buffer{}, "sds", "x", 900, false); err == nil {
		t.Error("empty stream accepted")
	}
	in := recordStream(t, sds.KMeans, 1000, 0)
	if err := runDetect(in, &bytes.Buffer{}, "bogus", sds.KMeans, 900, false); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := runDetect(strings.NewReader("0.01,1,0\n"), &bytes.Buffer{}, "sds", "x", 0, false); err == nil {
		t.Error("zero profile window accepted")
	}
}

func TestBuildDetectorSchemes(t *testing.T) {
	cfg := sds.DefaultConfig()
	prof, err := sds.CollectProfile(sds.FaceNet, 1, 900, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"sds", "sdsb", "sdsp", "kstest"} {
		if _, err := buildDetector(scheme, prof, cfg); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
	if _, err := buildDetector("nope", prof, cfg); err == nil {
		t.Error("unknown scheme accepted")
	}
}
