package sds

import (
	"testing"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	cfg := DefaultConfig()
	prof, err := CollectProfile(KMeans, 1, 900, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prof.App != KMeans || prof.MeanAccess <= 0 {
		t.Fatalf("profile = %+v", prof)
	}
	det, err := NewSDS(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewApplication(KMeans, 2)
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := Simulate(app, det, cfg, SimulateOptions{
		Seconds: 240,
		Attack:  AttackSchedule{Kind: BusLockAttack, Start: 120, Ramp: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range alarms {
		if a.T >= 120 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no alarm after attack start; alarms: %+v", alarms)
	}
}

func TestPublicAPIPeriodicFlow(t *testing.T) {
	cfg := DefaultConfig()
	prof, err := CollectProfile(FaceNet, 3, 900, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Periodic {
		t.Fatal("FaceNet profile not periodic")
	}
	var estimates []PeriodStat
	det, err := NewSDSP(prof, cfg, WithSDSPEstimateHook(func(p PeriodStat) {
		estimates = append(estimates, p)
	}))
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewApplication(FaceNet, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(app, det, cfg, SimulateOptions{
		Seconds: 300,
		Attack:  AttackSchedule{Kind: CleanseAttack, Start: 150, Ramp: 10},
	}); err != nil {
		t.Fatal(err)
	}
	if !det.Alarmed() {
		t.Fatal("SDS/P did not alarm under a persisting attack")
	}
	if len(estimates) == 0 {
		t.Fatal("estimate hook never fired")
	}
}

func TestPublicAPIKSTestThrottleLoop(t *testing.T) {
	cfg := DefaultConfig()
	det, err := NewKSTest(DefaultKSTestConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewApplication(Bayes, 5)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	if _, err := Simulate(app, det, cfg, SimulateOptions{
		Seconds: 200,
		Attack:  AttackSchedule{Kind: CleanseAttack, Start: 100, Ramp: 8},
		OnSample: func(s Sample, alarmed bool) {
			samples++
		},
	}); err != nil {
		t.Fatal(err)
	}
	if samples != 20000 {
		t.Fatalf("observed %d samples, want 20000", samples)
	}
	if !det.Alarmed() {
		t.Fatal("KStest did not alarm under a persisting attack")
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := NewApplication("nope", 1); err == nil {
		t.Error("unknown application accepted")
	}
	if _, err := CollectProfile(KMeans, 1, 900, Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := Simulate(nil, nil, DefaultConfig(), SimulateOptions{Seconds: 10}); err == nil {
		t.Error("nil inputs accepted")
	}
	app, err := NewApplication(KMeans, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := CollectProfile(KMeans, 1, 300, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewSDSB(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(app, det, DefaultConfig(), SimulateOptions{}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestChebyshevReexports(t *testing.T) {
	hc, err := ChebyshevHC(1.125, 0.999)
	if err != nil || hc != 30 {
		t.Fatalf("ChebyshevHC = (%d, %v), want (30, nil)", hc, err)
	}
	bound, err := ChebyshevFalseAlarmBound(1.125, 30)
	if err != nil || bound > 0.001 {
		t.Fatalf("bound = (%v, %v)", bound, err)
	}
}

func TestApplicationsList(t *testing.T) {
	apps := Applications()
	if len(apps) != 10 {
		t.Fatalf("Applications() has %d entries", len(apps))
	}
	periodic := PeriodicApplications()
	if len(periodic) != 2 || periodic[0] != PCA || periodic[1] != FaceNet {
		t.Fatalf("PeriodicApplications() = %v", periodic)
	}
}
