//go:build linux

package server

import (
	"context"
	"net"
	"syscall"
)

// ListenShards opens the daemon's front door: n TCP listeners bound to the
// same address with SO_REUSEPORT, one accept queue per ingest shard, so
// accept work spreads across cores instead of funneling through a single
// accept loop. Serve each returned listener on its own goroutine.
//
// The boolean reports whether accept sharding is actually in effect. It
// degrades gracefully to a single plain listener — sharded == false,
// len(listeners) == 1 — when n <= 1, when the network has no REUSEPORT
// semantics (unix sockets), or when the socket option is unsupported.
func ListenShards(network, addr string, n int) ([]net.Listener, bool, error) {
	if n <= 1 || !isTCP(network) {
		l, err := net.Listen(network, addr)
		if err != nil {
			return nil, false, err
		}
		return []net.Listener{l}, false, nil
	}
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		})
		if err != nil {
			return err
		}
		return serr
	}}
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		l, err := lc.Listen(context.Background(), network, addr)
		if err != nil {
			for _, open := range listeners {
				open.Close()
			}
			if i == 0 {
				// REUSEPORT itself is unsupported here: fall back to the
				// single-listener shape rather than failing the daemon.
				single, serr := net.Listen(network, addr)
				if serr != nil {
					return nil, false, err
				}
				return []net.Listener{single}, false, nil
			}
			return nil, false, err
		}
		if i == 0 {
			// With addr ":0" every subsequent bind must reuse the port the
			// first listener was assigned, or the group would not share an
			// accept queue at all.
			addr = l.Addr().String()
		}
		listeners = append(listeners, l)
	}
	return listeners, true, nil
}

func isTCP(network string) bool {
	return network == "tcp" || network == "tcp4" || network == "tcp6"
}
