#!/bin/sh
# Scale-run the sdsd ingest plane, in two acts:
#
#  1. Throughput — launch one sdsd, drive it with VMS concurrent sdsload
#     streams (default 10000) in binary-frame mode, assert zero sample
#     loss, and record the sustained samples/sec in the benchmark
#     trajectory. A second pass with the same parameters over CSV frames
#     gives the baseline the binary plane is measured against.
#
#  2. Scale correctness — stream VMS100K VMs (default 100000) through a
#     bounded window of -inflight concurrent sockets, split over two load
#     processes rotating across eight loopback destination addresses, and
#     assert zero loss plus alarm-count parity against a single-process
#     reference run. The inflight bound exists because RLIMIT_NOFILE's
#     hard cap (20000 in the reference container) rules out 100k
#     concurrent sockets; the address rotation exists because 100k
#     connections' TIME_WAIT entries would exhaust a single destination's
#     ~28k ephemeral-port 4-tuple space mid-run.
#
#   scripts/scale_sdsload.sh                 # both acts
#   SDSD_VMS=2000 SDSD_100K_VMS=20000 scripts/scale_sdsload.sh  # rehearsal
#   SDSD_SKIP_100K=1 scripts/scale_sdsload.sh # throughput only
#   SDSD_BENCH_OUT=bench_scale.txt           # where the bench lines land
#
# Throughput streams are pre-rendered (-prebuild) so the timed window
# measures the transport and server ingest, not client-side sample
# generation. Each VM streams 60 virtual seconds at the Table 1 sampling
# interval with a 15 s Stage-1 profile window — long enough to clear the
# profiler's minimum window count and amortize the connection ramp, short
# enough that 10k profile windows fit comfortably in memory. The 100k act
# generates on the fly (pre-rendering 100k bodies while holding an
# inflight bound would decouple rendering from its socket anyway) with
# 30 s attacked streams — long enough past the H_C=30 detection streak
# that every VM alarms: it asserts accounting and detection parity, not
# peak rate.
#
# All processes run with GOGC=600: at 10k connections the default GC
# target spends a measurable slice of the single-digit-core budget on
# collection cycles, and the steady-state live set (profile windows +
# per-conn buffers) is small relative to host memory.
set -eu

ADDR=${SDSD_ADDR:-127.0.0.1:17041}
OPS=${SDSD_OPS:-127.0.0.1:17042}
VMS=${SDSD_VMS:-10000}
SECONDS_PER_VM=${SDSD_SECONDS:-60}
PROFILE=${SDSD_PROFILE:-15}
OUT=${SDSD_BENCH_OUT:-bench_scale.txt}
VMS100K=${SDSD_100K_VMS:-100000}
INFLIGHT=${SDSD_100K_INFLIGHT:-6000}
PORT100K=${SDSD_100K_PORT:-17043}
export GOGC=${GOGC:-600}

fdneed=$((VMS + 100))
if [ "$INFLIGHT" -gt "$VMS" ]; then fdneed=$((INFLIGHT + 100)); fi
if [ "$(ulimit -n)" -lt "$fdneed" ]; then
    # Best effort before failing: the hard limit often has headroom.
    ulimit -n "$fdneed" 2>/dev/null || {
        echo "scale: need $fdneed fds, have $(ulimit -n) (raise ulimit -n)" >&2
        exit 1
    }
fi

tmp=$(mktemp -d)
sdsd_pid=""
cleanup() {
    [ -n "$sdsd_pid" ] && kill "$sdsd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/sdsd" ./cmd/sdsd
go build -o "$tmp/sdsload" ./cmd/sdsload

: > "$OUT"

stop_sdsd() {
    kill -TERM "$sdsd_pid"
    wait "$sdsd_pid" || {
        echo "scale: sdsd exited non-zero on drain ($1)" >&2
        tail -20 "$2" >&2
        exit 1
    }
    sdsd_pid=""
}

run_pass() {
    frames=$1
    name=$2
    # -quiet: logging 10k per-stream done lines costs more than ingesting
    # them on a small-core host and skews the measured window.
    "$tmp/sdsd" -listen "$ADDR" -ops "$OPS" -profile-seconds "$PROFILE" -quiet \
        2>"$tmp/sdsd-$frames.log" &
    sdsd_pid=$!
    # sdsload retries its connections, so no explicit wait-for-listen is
    # needed; 100 retries ride out 10k streams racing one accept loop.
    "$tmp/sdsload" -addr "$ADDR" -vms "$VMS" -seconds "$SECONDS_PER_VM" \
        -profile-seconds "$PROFILE" -frames "$frames" -prebuild \
        -connect-retries 100 -bench-name "$name" | tee -a "$OUT" || {
        echo "scale: $frames pass failed; server log tail:" >&2
        tail -20 "$tmp/sdsd-$frames.log" >&2
        exit 1
    }
    stop_sdsd "$frames pass" "$tmp/sdsd-$frames.log"
}

run_pass bin "ServerIngestBin${VMS}VMs"
run_pass csv "ServerIngestCSV${VMS}VMs"

if [ "${SDSD_SKIP_100K:-0}" = "1" ]; then
    echo "scale: ok — bench lines appended to $OUT (100k act skipped)"
    exit 0
fi

# --- Act 2: the 100k-stream correctness run -------------------------------

# Eight loopback destinations, all reaching one wildcard-bound sdsd.
ADDRS100K="127.0.0.1:$PORT100K"
for ip in 2 3 4 5 6 7 8; do
    ADDRS100K="$ADDRS100K,127.0.0.$ip:$PORT100K"
done

kname=$((VMS100K / 1000))

run_100k() {
    procs=$1
    name=$2
    tag=$3
    if [ -n "$name" ]; then
        set -- -bench-name "$name"
    else
        set --
    fi
    # profile=12: the Stage-1 profiler needs >= 1150 samples (20 MA
    # windows); at the Table 1 interval that is 11.5 virtual seconds.
    "$tmp/sdsd" -listen "0.0.0.0:$PORT100K" -ops "$OPS" -profile-seconds 12 \
        -shards 2 -quiet 2>"$tmp/sdsd-$tag.log" &
    sdsd_pid=$!
    # -attack-at 13: every stream comes under bus-locking attack right
    # after its profile window closes, so the alarm-parity assertion
    # below compares nonzero, detection-driven counts.
    "$tmp/sdsload" -addr "$ADDRS100K" -vms "$VMS100K" -seconds 30 \
        -profile-seconds 12 -frames bin -inflight "$INFLIGHT" -procs "$procs" \
        -attack-at 13 -connect-retries 100 "$@" \
        >"$tmp/load-$tag.txt" || {
        cat "$tmp/load-$tag.txt"
        echo "scale: $tag pass failed; server log tail:" >&2
        tail -20 "$tmp/sdsd-$tag.log" >&2
        exit 1
    }
    cat "$tmp/load-$tag.txt"
    stop_sdsd "$tag pass" "$tmp/sdsd-$tag.log"
}

run_100k 2 "ServerIngestBin${kname}kVMs" 100k-procs2
grep '^Benchmark' "$tmp/load-100k-procs2.txt" >> "$OUT"
run_100k 1 "" 100k-ref

# sdsload already asserted zero loss per stream (sent == accounted) inside
# each pass; what only this script can check is that splitting the fleet
# over processes changed nothing the detector saw. Alarm totals are
# deterministic per seed, so the two passes must agree exactly.
alarms_multi=$(awk '/^sdsload:/ {print $(NF-1)}' "$tmp/load-100k-procs2.txt")
alarms_ref=$(awk '/^sdsload:/ {print $(NF-1)}' "$tmp/load-100k-ref.txt")
if [ -z "$alarms_multi" ] || [ "$alarms_multi" != "$alarms_ref" ]; then
    echo "scale: alarm parity broken — -procs 2 raised '${alarms_multi:-?}', single-process reference raised '${alarms_ref:-?}'" >&2
    exit 1
fi
echo "scale: 100k act ok — $VMS100K streams, zero loss, $alarms_multi alarms in both runs"

echo "scale: ok — bench lines appended to $OUT"
