// Package profiling wires Go's runtime profilers into the command-line
// tools: every long-running command takes -cpuprofile/-memprofile flags so
// performance work on the evaluation pipeline can be grounded in pprof data
// rather than guesswork.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (if non-empty). The stop function must run before process exit — defer it
// from main. Either path may be empty; with both empty, Start is a no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: create %s: %w", cpuPath, err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: create %s: %w", memPath, err)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
