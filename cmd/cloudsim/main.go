// Command cloudsim runs the event-driven datacenter simulation: attacker
// campaigns and churn across a cluster of hosts, with the provider's closed
// mitigation loop, scored end to end. It compares mitigation policies on
// matched seeds and reports victim slowdown recovered, false-migration rate
// and time-to-quarantine alongside the engine's throughput.
//
//	cloudsim -hosts 1000 -seconds 900                    # detection only
//	cloudsim -policies none,migrate,throttle-migrate     # policy comparison
//	cloudsim -scenario cluster.json -json                # scenario file, JSON out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/memdos/sds/internal/cloudsim"
	"github.com/memdos/sds/internal/experiment"
)

func main() {
	var (
		scenario  = flag.String("scenario", "", "scenario JSON file (flags below override its fields)")
		hosts     = flag.Int("hosts", 100, "number of hosts")
		vms       = flag.Int("vms", 0, "VMs per host (0 = scenario or default 8)")
		seconds   = flag.Float64("seconds", 0, "virtual run duration (0 = scenario or default 900)")
		fidelity  = flag.String("fidelity", "", "telemetry fidelity: window or exact (default window)")
		scheme    = flag.String("scheme", "", `detection scheme (default "SDS")`)
		attackers = flag.Int("attackers", -1, "attacker VM count (-1 = scenario or hosts/20+1)")
		strategy  = flag.String("attack-strategy", "", `evasive attacker strategy: steady, duty-cycle, period-mimic, slow-ramp, coordinated or reprofile-timed (default "steady")`)
		policies  = flag.String("policies", "none,throttle-migrate", "comma-separated mitigation policies to compare")
		runs      = flag.Int("runs", 3, "repetitions per policy")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		parallel  = flag.Int("parallel", 0, "concurrent cluster runs (0 = all CPUs); results are identical at any setting")
		jsonOut   = flag.Bool("json", false, "emit the full per-cell results as JSON instead of the table")
	)
	flag.Parse()

	base, err := loadScenario(*scenario)
	if err == nil {
		applyFlags(&base, *hosts, *vms, *seconds, *fidelity, *scheme, *attackers, *strategy)
		cfg := experiment.DefaultConfig()
		cfg.Runs = *runs
		cfg.Seed = *seed
		cfg.Parallel = *parallel
		err = run(os.Stdout, cfg, base, splitPolicies(*policies), *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudsim:", err)
		os.Exit(1)
	}
}

// loadScenario reads a scenario file, or returns the zero scenario for "".
func loadScenario(path string) (cloudsim.Scenario, error) {
	if path == "" {
		return cloudsim.Scenario{}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return cloudsim.Scenario{}, err
	}
	return cloudsim.ParseScenario(data)
}

// applyFlags overlays command-line settings onto the scenario.
func applyFlags(sc *cloudsim.Scenario, hosts, vms int, seconds float64, fidelity, scheme string, attackers int, strategy string) {
	if sc.Hosts == 0 {
		sc.Hosts = hosts
	}
	if vms > 0 {
		sc.VMsPerHost = vms
	}
	if seconds > 0 {
		sc.Seconds = seconds
	}
	if fidelity != "" {
		sc.Fidelity = fidelity
	}
	if scheme != "" {
		sc.Scheme = scheme
	}
	if attackers >= 0 {
		sc.Attackers = attackers
	} else if sc.Attackers == 0 {
		sc.Attackers = sc.Hosts/20 + 1
	}
	if strategy != "" {
		sc.AttackStrategy = strategy
	}
	if sc.Name == "" {
		sc.Name = "cloudsim"
	}
}

func splitPolicies(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// run executes the policy grid and renders the comparison.
func run(out io.Writer, cfg experiment.Config, base cloudsim.Scenario, policies []string, jsonOut bool) error {
	start := time.Now()
	cells, err := cfg.CloudGrid(base, policies)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Cells     []experiment.CloudCell          `json:"cells"`
			Summaries []experiment.CloudPolicySummary `json:"summaries"`
		}{cells, experiment.SummarizeCloud(cells)})
	}

	var samples int64
	for _, cell := range cells {
		samples += cell.Result.SamplesRepresented
	}
	tb := experiment.Table{
		Title: fmt.Sprintf("cloud mitigation policies — %d hosts × %d VMs × %.0f s, %d attackers, %d runs each",
			cells[0].Result.Hosts, cells[0].Result.VMs, cells[0].Result.Seconds, cells[0].Result.Attackers, cfg.Runs),
		Header: []string{"policy", "slowdown", "recovered %", "exposure s", "migrations", "false-mig %", "quarantines", "t-to-quarantine s"},
	}
	for _, s := range experiment.SummarizeCloud(cells) {
		ttq := "n/a"
		if s.TimeToQuarantine.N > 0 {
			ttq = fmt.Sprintf("%.1f [%.1f, %.1f]", s.TimeToQuarantine.Median, s.TimeToQuarantine.P10, s.TimeToQuarantine.P90)
		}
		tb.AddRow(
			s.Policy,
			fmt.Sprintf("%.4f", s.VictimSlowdown),
			fmt.Sprintf("%.1f", s.SlowdownRecovered*100),
			fmt.Sprintf("%.1f", s.ExposureSec),
			fmt.Sprintf("%d", s.Migrations),
			fmt.Sprintf("%.1f", s.FalseMigrationRate*100),
			fmt.Sprintf("%d", s.Quarantines),
			ttq,
		)
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n%d cluster runs in %.2f s wall clock — %.1fM samples represented (%.1fM samples/s)\n",
		len(cells), elapsed.Seconds(), float64(samples)/1e6, float64(samples)/1e6/elapsed.Seconds())
	return nil
}
