// Periodic detection: SDS/P on FaceNet, the paper's Fig. 8 walk-through.
// The detector tracks the period of the application's moving-average
// AccessNum series; the LLC-cleansing attack slows each training batch, the
// period stretches past the 20% tolerance, and five consecutive deviant
// estimates raise the alarm.
//
//	go run ./examples/periodic
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/memdos/sds"
)

func main() {
	cfg := sds.DefaultConfig()

	profile, err := sds.CollectProfile(sds.FaceNet, 8, 900, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !profile.Periodic {
		log.Fatalf("FaceNet did not profile as periodic: %+v", profile)
	}
	fmt.Printf("FaceNet normal period: %d MA windows (%.1f s per batch cycle)\n",
		profile.PeriodMA, float64(profile.PeriodMA)*float64(cfg.DW)*cfg.TPCM)

	var track []sds.PeriodStat
	detector, err := sds.NewSDSP(profile, cfg, sds.WithSDSPEstimateHook(func(p sds.PeriodStat) {
		if p.Metric == sds.MetricAccess { // Fig. 8(b) plots the AccessNum period
			track = append(track, p)
		}
	}))
	if err != nil {
		log.Fatal(err)
	}

	app, err := sds.NewApplication(sds.FaceNet, 9)
	if err != nil {
		log.Fatal(err)
	}
	const attackAt = 150.0
	alarms, err := sds.Simulate(app, detector, cfg, sds.SimulateOptions{
		Seconds: 300,
		Attack:  sds.AttackSchedule{Kind: sds.CleanseAttack, Start: attackAt, Ramp: 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Render the computed-period sequence (paper Fig. 8b): each estimate
	// prints its period; '?' marks windows with no detectable period.
	var b strings.Builder
	for _, p := range track {
		if p.T == 0 {
			continue
		}
		mark := fmt.Sprintf("%d", p.Period)
		if !p.Found {
			mark = "?"
		}
		if p.Deviant {
			mark += "!"
		}
		fmt.Fprintf(&b, "%s ", mark)
	}
	fmt.Printf("computed periods over time (! = deviation):\n  %s\n", b.String())

	for _, alarm := range alarms {
		fmt.Printf("[%7.2fs] %s: %s\n", alarm.T, alarm.Detector, alarm.Reason)
	}
	for _, alarm := range alarms {
		if alarm.T >= attackAt {
			fmt.Printf("attack detected %.1f s after launch\n", alarm.T-attackAt)
			break
		}
	}
}
