package cloudsim

import "testing"

// Probe: every long-lived victim should accrue elapsed ≈ Seconds (elapsed
// accrues even while paused). If migration can land a VM on a host already
// advanced past the event tick, victimElapsed will undercount.
func TestProbeVictimElapsed(t *testing.T) {
	for _, pol := range []string{PolicyNone, PolicyMigrate, PolicyThrottleMigrate} {
		sc := mitigationScenario(pol)
		e, err := newEngine(sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.run()
		if err != nil {
			t.Fatal(err)
		}
		nv := float64(len(e.victims))
		want := nv * 600
		t.Logf("policy=%s victims=%v victimElapsed=%.1f want=%.1f migrations=%d recoveries=%d realarms=%d",
			pol, nv, e.victimElapsed, want, res.Migrations, res.Recoveries, res.ReAlarms)
		for _, h := range e.hosts {
			t.Logf("  host %d tick=%d (%.1fs)", h.id, h.tick, float64(h.tick)*e.tpcm)
		}
		for _, id := range e.victims {
			v := e.vms[id]
			t.Logf("  victim vm%d host=%d elapsed=%.1f migrations=%d", v.id, v.host, v.elapsed, v.migrations)
		}
	}
}
