// Package pcm models the Processor Counter Monitor tool the paper runs on
// each server's hypervisor: every T_PCM seconds (0.01 s in the paper,
// Table 1) it samples a VM's cumulative LLC-access and LLC-miss counters and
// reports the per-interval deltas, AccessNum and MissNum. Those samples are
// the only input the detection schemes consume, which is what makes SDS
// lightweight: no throttling, no instrumentation inside the VMs.
package pcm

import (
	"fmt"
	"math"
)

// SampleCount returns the number of whole T_PCM intervals that fit in
// seconds. A plain int(seconds/tpcm) truncation silently drops the final
// sample whenever the quotient lands just below an integer from float
// representation error (0.3/0.1 = 2.999…96 truncates to 2); durations that
// are exact multiples of tpcm up to a small relative epsilon therefore
// round to the full count instead. Non-positive inputs yield 0.
func SampleCount(seconds, tpcm float64) int {
	if seconds <= 0 || tpcm <= 0 {
		return 0
	}
	q := seconds / tpcm
	if r := math.Round(q); math.Abs(q-r) <= 1e-9*math.Max(r, 1) {
		return int(r)
	}
	return int(q)
}

// Sample is one PCM observation of a VM: the number of LLC accesses and
// misses during the preceding T_PCM interval.
type Sample struct {
	// T is the virtual time at the end of the sampled interval, seconds.
	T float64
	// Access is AccessNum: LLC accesses during the interval.
	Access float64
	// Miss is MissNum: LLC misses during the interval.
	Miss float64
}

// CounterReader supplies cumulative (access, miss) counters for one VM; the
// vmm machine's per-VM cache statistics satisfy this via a closure.
type CounterReader func() (access, miss uint64)

// Monitor converts cumulative counters into periodic Samples.
type Monitor struct {
	read       CounterReader
	tpcm       float64
	now        float64
	next       float64
	lastAccess uint64
	lastMiss   uint64
}

// NewMonitor returns a Monitor sampling the reader every tpcm seconds.
func NewMonitor(read CounterReader, tpcm float64) (*Monitor, error) {
	if read == nil {
		return nil, fmt.Errorf("pcm: nil counter reader")
	}
	if tpcm <= 0 {
		return nil, fmt.Errorf("pcm: T_PCM must be positive, got %v", tpcm)
	}
	a, m := read()
	return &Monitor{read: read, tpcm: tpcm, next: tpcm, lastAccess: a, lastMiss: m}, nil
}

// TPCM returns the sampling interval.
func (m *Monitor) TPCM() float64 { return m.tpcm }

// Advance moves the monitor's clock forward by dt seconds and returns the
// samples whose intervals completed during that span (usually zero or one;
// more if dt spans several T_PCM intervals, in which case the deltas of the
// whole span are attributed to the final sample and intermediate samples
// report zero — callers should advance in steps no larger than T_PCM for
// full fidelity).
func (m *Monitor) Advance(dt float64) ([]Sample, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("pcm: advance duration must be positive, got %v", dt)
	}
	m.now += dt
	var out []Sample
	for m.now >= m.next-1e-12 {
		a, miss := m.read()
		out = append(out, Sample{
			T:      m.next,
			Access: float64(a - m.lastAccess),
			Miss:   float64(miss - m.lastMiss),
		})
		m.lastAccess, m.lastMiss = a, miss
		m.next += m.tpcm
	}
	return out, nil
}
