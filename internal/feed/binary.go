package feed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/memdos/sds/internal/pcm"
)

// Binary frame encoding (`frames=bin` in the sds/1 handshake).
//
// The CSV text protocol costs one strconv parse per field per sample; at
// the stream volumes of a hypervisor-wide deployment (one detector per
// co-resident VM, T_PCM = 10 ms) that parse dominates the ingest path. The
// binary encoding batches samples into length-prefixed frames of fixed
// 24-byte little-endian records, so decoding is a bounds check and three
// Float64frombits per sample, into a caller-owned buffer — zero
// allocations per frame in steady state.
//
// Wire format, after the text handshake and its `ok … frames=bin` reply:
//
//	frame     := sampleFrame | endFrame
//	sampleFrame := 0x01 count:uint16le count*sample
//	sample    := t:float64le access:float64le miss:float64le
//	endFrame  := 0x02
//
// count is 1..MaxFrameSamples. The sender batches as many samples per
// frame as it likes within that cap (latency is the sender's tradeoff: a
// live telemetry agent flushes small frames every T_PCM, a replay client
// sends full ones). An endFrame marks the clean end of stream; a plain
// EOF at a frame boundary is also accepted, mirroring CSV streams that
// simply close.
//
// Error semantics differ from CSV deliberately: CSV is self-synchronizing
// at newlines, so malformed lines are quarantined and the stream
// continues. A binary stream that presents an unknown frame type or a bad
// count has lost framing — there is no resynchronization point — so those
// are fatal. Per-sample damage that leaves framing intact (non-finite
// fields) is quarantined exactly like a malformed CSV line: ReadFrame
// compacts such samples out and reports them.
const (
	frameSamples byte = 0x01
	frameEnd     byte = 0x02

	// MaxFrameSamples caps the per-frame batch: bounds the decoder's
	// buffer (24 KiB payload) and the per-connection pooled batch memory.
	MaxFrameSamples = 1024

	sampleBytes = 24 // 3 × float64
)

// BinWriter encodes samples into binary frames. Not safe for concurrent
// use.
type BinWriter struct {
	w   *bufio.Writer
	buf []byte // frame assembly scratch: header + payload
}

// NewBinWriter returns a BinWriter over w.
func NewBinWriter(w io.Writer) *BinWriter {
	return &BinWriter{
		w:   bufio.NewWriterSize(w, 64*1024),
		buf: make([]byte, 3+MaxFrameSamples*sampleBytes),
	}
}

// WriteBatch emits batch as one or more sample frames (splitting batches
// beyond MaxFrameSamples). An empty batch writes nothing.
func (w *BinWriter) WriteBatch(batch []pcm.Sample) error {
	for len(batch) > 0 {
		n := len(batch)
		if n > MaxFrameSamples {
			n = MaxFrameSamples
		}
		w.buf[0] = frameSamples
		binary.LittleEndian.PutUint16(w.buf[1:3], uint16(n))
		off := 3
		for _, s := range batch[:n] {
			binary.LittleEndian.PutUint64(w.buf[off:], math.Float64bits(s.T))
			binary.LittleEndian.PutUint64(w.buf[off+8:], math.Float64bits(s.Access))
			binary.LittleEndian.PutUint64(w.buf[off+16:], math.Float64bits(s.Miss))
			off += sampleBytes
		}
		if _, err := w.w.Write(w.buf[:off]); err != nil {
			return err
		}
		batch = batch[n:]
	}
	return nil
}

// Write emits one sample as a single-sample frame (the live-telemetry
// shape: one frame per T_PCM tick, immediately flushable).
func (w *BinWriter) Write(s pcm.Sample) error {
	w.buf[0] = frameSamples
	binary.LittleEndian.PutUint16(w.buf[1:3], 1)
	binary.LittleEndian.PutUint64(w.buf[3:], math.Float64bits(s.T))
	binary.LittleEndian.PutUint64(w.buf[11:], math.Float64bits(s.Access))
	binary.LittleEndian.PutUint64(w.buf[19:], math.Float64bits(s.Miss))
	_, err := w.w.Write(w.buf[:3+sampleBytes])
	return err
}

// End writes the end-of-stream frame and flushes.
func (w *BinWriter) End() error {
	if err := w.w.WriteByte(frameEnd); err != nil {
		return err
	}
	return w.w.Flush()
}

// Flush flushes buffered frames without ending the stream.
func (w *BinWriter) Flush() error { return w.w.Flush() }

// BinReader decodes a binary frame stream. Not safe for concurrent use.
type BinReader struct {
	br     *bufio.Reader
	buf    []byte // payload scratch, reused across frames
	frames int    // sample frames consumed, for error positions
	ended  bool
}

// NewBinReader returns a BinReader over r. If r is already a
// *bufio.Reader it is used directly (no double buffering).
func NewBinReader(r io.Reader) *BinReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	return &BinReader{br: br, buf: make([]byte, MaxFrameSamples*sampleBytes)}
}

// Frames returns the number of sample frames decoded so far.
func (r *BinReader) Frames() int { return r.frames }

// ReadFrame decodes the next sample frame into dst, whose capacity must be
// at least MaxFrameSamples, and returns the number of samples decoded plus
// the number of quarantined samples (non-finite fields, compacted out of
// dst). It returns io.EOF after an end frame or at a clean EOF on a frame
// boundary; any other failure is fatal (framing cannot be recovered).
// Steady-state calls perform no allocation.
func (r *BinReader) ReadFrame(dst []pcm.Sample) (n, quarantined int, err error) {
	if r.ended {
		return 0, 0, io.EOF
	}
	typ, err := r.br.ReadByte()
	if err == io.EOF {
		r.ended = true
		return 0, 0, io.EOF
	}
	if err != nil {
		return 0, 0, fmt.Errorf("feed: frame %d: read: %w", r.frames+1, err)
	}
	switch typ {
	case frameEnd:
		r.ended = true
		return 0, 0, io.EOF
	case frameSamples:
	default:
		return 0, 0, fmt.Errorf("feed: frame %d: unknown frame type 0x%02x (framing lost)", r.frames+1, typ)
	}
	// The count header reuses the payload scratch so nothing escapes to
	// the heap (a stack [2]byte would escape through io.ReadFull).
	if _, err := io.ReadFull(r.br, r.buf[:2]); err != nil {
		return 0, 0, fmt.Errorf("feed: frame %d: truncated header: %w", r.frames+1, noEOF(err))
	}
	count := int(binary.LittleEndian.Uint16(r.buf[:2]))
	if count == 0 || count > MaxFrameSamples {
		return 0, 0, fmt.Errorf("feed: frame %d: bad sample count %d (want 1..%d)", r.frames+1, count, MaxFrameSamples)
	}
	if cap(dst) < count {
		return 0, 0, fmt.Errorf("feed: frame %d: destination capacity %d < frame count %d", r.frames+1, cap(dst), count)
	}
	payload := r.buf[:count*sampleBytes]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return 0, 0, fmt.Errorf("feed: frame %d: truncated payload: %w", r.frames+1, noEOF(err))
	}
	r.frames++
	dst = dst[:0]
	for off := 0; off < len(payload); off += sampleBytes {
		s := pcm.Sample{
			T:      math.Float64frombits(binary.LittleEndian.Uint64(payload[off:])),
			Access: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:])),
			Miss:   math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:])),
		}
		if nonFinite(s.T) || nonFinite(s.Access) || nonFinite(s.Miss) {
			// Same policy as a malformed CSV line: quarantine the sample,
			// keep the stream. Framing is intact, so this is per-sample
			// damage, not a protocol failure.
			quarantined++
			continue
		}
		dst = append(dst, s)
	}
	return len(dst), quarantined, nil
}

// ReadAll drains the frame stream (testing helper; allocates freely).
func (r *BinReader) ReadAll() (samples []pcm.Sample, quarantined int, err error) {
	batch := make([]pcm.Sample, 0, MaxFrameSamples)
	for {
		n, q, err := r.ReadFrame(batch)
		quarantined += q
		if err == io.EOF {
			return samples, quarantined, nil
		}
		if err != nil {
			return samples, quarantined, err
		}
		samples = append(samples, batch[:n]...)
	}
}

func nonFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// noEOF upgrades io.EOF to io.ErrUnexpectedEOF: inside a frame, EOF means
// the stream was cut mid-record.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
