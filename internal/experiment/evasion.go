package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/metrics"
)

// The evasion tournament: every scheme is first tuned to its FPR-budget
// operating point by the ROC machinery, then each evasive strategy attacks
// it at a grid of peak intensities. A scheme's evasion margin against a
// strategy is the largest peak intensity that stays completely undetected —
// the attacker-side dual of the ROC's provider-side question: "how hard can
// an adaptive adversary hit this scheme, tuned as deployed, without
// tripping it?" A margin of 0 means even the weakest swept intensity is
// caught; a margin of 1 means the strategy evades the scheme outright.

// evasionPeaks is the swept peak-intensity grid (ascending, dyadic so the
// values are exact floats). The low end sits in the sub-band regime where a
// persistent mean shift stays inside a μ±kσ boundary band and only
// accumulating or distributional detectors can respond.
var evasionPeaks = []float64{0.0625, 0.125, 0.25, 0.5, 1}

// EvasionPeaks returns the swept peak-intensity grid (a copy, ascending).
func EvasionPeaks() []float64 {
	out := make([]float64, len(evasionPeaks))
	copy(out, evasionPeaks)
	return out
}

// evasionKinds are the attack vectors each strategy drives.
var evasionKinds = []attack.Kind{attack.BusLock, attack.Cleanse}

// EvasionPoint is one swept peak intensity of one (scheme, strategy, kind)
// cell: how many of the app × run attack runs raised any alarm during the
// attack stage.
type EvasionPoint struct {
	Peak     float64
	Runs     int
	Detected int
	// Rate is Detected/Runs.
	Rate float64
}

// EvasionCell is one strategy × attack-kind row of a scheme's report.
type EvasionCell struct {
	// Strategy is the attack.Strategy* name ("steady" = unmodulated).
	Strategy string
	// Kind is the attack vector name (attack.Kind.String()).
	Kind string
	// Points are in peak-ascending grid order.
	Points []EvasionPoint
	// Margin is the largest swept peak with zero detections at or below
	// it (the prefix rule: a low-intensity detection caps the margin even
	// if a higher peak happens to slip through). 0 when the lowest peak
	// is already detected.
	Margin float64
	// FullRate is the detection rate at the highest swept peak.
	FullRate float64
}

// EvasionCurve is one scheme's evasion report at its operating point.
type EvasionCurve struct {
	Scheme Scheme
	// Knob and Threshold identify the operating point the scheme was
	// tuned to (from the ROC tournament at ROCBudgetFPR).
	Knob      string
	Threshold float64
	// Budgeted reports whether the operating point met the FPR budget;
	// when no ROC point qualified the minimum-FPR point is used instead
	// and the margins are against an over-alarming configuration.
	Budgeted bool
	// OperatingFPR is the operating point's pooled ROC false-positive
	// rate, for context.
	OperatingFPR float64
	// Cells are strategy-major, kind-minor, in StrategyNames order.
	Cells []EvasionCell
}

// Cell returns the (strategy, kind) cell, ok reporting whether it exists.
func (c EvasionCurve) Cell(strategy, kind string) (EvasionCell, bool) {
	for _, cell := range c.Cells {
		if cell.Strategy == strategy && cell.Kind == kind {
			return cell, true
		}
	}
	return EvasionCell{}, false
}

// evasionStrategy builds the named strategy tuned against the operating
// configuration's detector geometry and the victim's Stage-1 profile: the
// duty cycle ducks under the configuration's H_C streak at its MA window
// step, and the period mimic phase-locks to the profile's estimated period
// (PeriodMA is the shared DFT–ACF estimator's output in MA windows).
func evasionStrategy(name string, cfg Config, prof detect.Profile) (attack.Strategy, error) {
	step := float64(cfg.Detect.DW) * cfg.Detect.TPCM
	params := attack.StrategyParams{
		WindowStep: step,
		HC:         cfg.Detect.HC,
	}
	if prof.Periodic && prof.PeriodMA > 0 {
		params.VictimPeriod = float64(prof.PeriodMA) * step
	}
	return attack.NamedStrategy(name, params)
}

// evasionRun executes one detection run with the named strategy attached at
// the given peak intensity. The underlying sample path is identical to the
// steady DetectionRun with the same arguments — the strategy only modulates
// the contention envelope.
func (c Config) evasionRun(app string, kind attack.Kind, scheme Scheme, run int,
	strategy string, peak float64) (metrics.Outcome, error) {
	return c.detectionRun(app, kind, scheme, run,
		func(prof detect.Profile, sched attack.Schedule) (attack.Schedule, error) {
			st, err := evasionStrategy(strategy, c, prof)
			if err != nil {
				return attack.Schedule{}, err
			}
			sched.Strategy = st
			sched.Peak = peak
			return sched, nil
		})
}

// minFPRIndex is the fallback operating point when no ROC setting met the
// FPR budget: the lowest-FPR point (ties toward higher TPR, then earlier
// grid index).
func minFPRIndex(points []ROCPoint) int {
	best := -1
	for i, p := range points {
		if best < 0 || p.FPR < points[best].FPR ||
			(p.FPR == points[best].FPR && p.TPR > points[best].TPR) {
			best = i
		}
	}
	return best
}

// Evasion runs the evasion tournament over the given applications: the ROC
// tournament first fixes every scheme's operating point, then each named
// strategy attacks each scheme across both vectors and the peak grid, with
// margins pooled over apps × runs. All cells fan out onto the parallel
// engine and are pooled in input order, so the result is bit-identical at
// every Config.Parallel setting. Schemes marked periodic-only (SDS/P) are
// scored on the periodic applications.
func (c Config) Evasion(apps []string) ([]EvasionCurve, error) {
	curves, err := c.ROC(apps)
	if err != nil {
		return nil, err
	}
	c.profiles = newProfileCache()

	// Tune each scheme to its operating point.
	type schemeOp struct {
		s    rocScheme
		cfg  Config
		apps []string
		out  EvasionCurve
	}
	byScheme := make(map[Scheme]ROCCurve, len(curves))
	for _, curve := range curves {
		byScheme[curve.Scheme] = curve
	}
	var ops []schemeOp
	for _, s := range rocSchemes() {
		curve, ok := byScheme[s.scheme]
		if !ok {
			continue // no eligible app (SDS/P without periodic apps)
		}
		idx, budgeted := curve.Operating, true
		if idx < 0 {
			idx, budgeted = minFPRIndex(curve.Points), false
		}
		if idx < 0 {
			continue
		}
		point := curve.Points[idx]
		cfg := c
		if err := s.apply(&cfg, point.Threshold); err != nil {
			return nil, fmt.Errorf("%s %s=%v: %w", s.scheme, s.knob, point.Threshold, err)
		}
		schemeApps, err := rocApps(apps, s.periodicOnly)
		if err != nil {
			return nil, err
		}
		ops = append(ops, schemeOp{s: s, cfg: cfg, apps: schemeApps, out: EvasionCurve{
			Scheme:       s.scheme,
			Knob:         s.knob,
			Threshold:    point.Threshold,
			Budgeted:     budgeted,
			OperatingFPR: point.FPR,
		}})
	}

	strategies := attack.StrategyNames()
	type job struct {
		oi, si, ki, pi int
		app            string
		run            int
	}
	var jobs []job
	for oi, op := range ops {
		for si := range strategies {
			for ki := range evasionKinds {
				for pi := range evasionPeaks {
					for _, app := range op.apps {
						for run := 0; run < c.Runs; run++ {
							jobs = append(jobs, job{oi, si, ki, pi, app, run})
						}
					}
				}
			}
		}
	}

	outs, err := parallelMap(c.workers(), len(jobs), func(i int) (metrics.Outcome, error) {
		j := jobs[i]
		op := &ops[j.oi]
		out, err := op.cfg.evasionRun(j.app, evasionKinds[j.ki], op.s.scheme, j.run,
			strategies[j.si], evasionPeaks[j.pi])
		if err != nil {
			return metrics.Outcome{}, fmt.Errorf("%s %s %s peak=%v %s run %d: %w",
				op.s.scheme, strategies[j.si], evasionKinds[j.ki], evasionPeaks[j.pi], j.app, j.run, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Pool detections per (scheme, strategy, kind, peak) in input order.
	runsAt := make([][][][]int, len(ops))
	detAt := make([][][][]int, len(ops))
	for oi := range ops {
		runsAt[oi] = make([][][]int, len(strategies))
		detAt[oi] = make([][][]int, len(strategies))
		for si := range strategies {
			runsAt[oi][si] = make([][]int, len(evasionKinds))
			detAt[oi][si] = make([][]int, len(evasionKinds))
			for ki := range evasionKinds {
				runsAt[oi][si][ki] = make([]int, len(evasionPeaks))
				detAt[oi][si][ki] = make([]int, len(evasionPeaks))
			}
		}
	}
	for i, j := range jobs {
		runsAt[j.oi][j.si][j.ki][j.pi]++
		if outs[i].Detected {
			detAt[j.oi][j.si][j.ki][j.pi]++
		}
	}

	results := make([]EvasionCurve, 0, len(ops))
	for oi := range ops {
		out := ops[oi].out
		for si, strat := range strategies {
			for ki, kind := range evasionKinds {
				cell := EvasionCell{Strategy: strat, Kind: kind.String()}
				clean := true
				for pi, peak := range evasionPeaks {
					runs, det := runsAt[oi][si][ki][pi], detAt[oi][si][ki][pi]
					cell.Points = append(cell.Points, EvasionPoint{
						Peak:     peak,
						Runs:     runs,
						Detected: det,
						Rate:     safeRate(det, runs),
					})
					if clean && det == 0 {
						cell.Margin = peak
					} else {
						clean = false
					}
				}
				cell.FullRate = cell.Points[len(cell.Points)-1].Rate
				out.Cells = append(out.Cells, cell)
			}
		}
		results = append(results, out)
	}
	return results, nil
}
