package experiment

// This file records the values the paper reports, so that the harness (and
// EXPERIMENTS.md) can print measured results side by side with the
// published ones. Ranges are [lo, hi] in the unit of the experiment.

// PaperKStestFalseAlarmRate is the §3.2 study: the fraction of attack-free
// L_R intervals in which KStest declares an attack. The paper reports
// "more than 60%" for TeraSort; Join is not reported and carries the value
// of its sibling Hive queries.
var PaperKStestFalseAlarmRate = map[string]float64{
	"bayes":       0.30,
	"svm":         0.35,
	"kmeans":      0.20,
	"pca":         0.60,
	"aggregation": 0.40,
	"join":        0.40, // not reported; Hive siblings Aggregation/Scan are 40%
	"scan":        0.40,
	"terasort":    0.60, // "more than 60%"
	"pagerank":    0.30,
	"facenet":     0.55,
}

// Paper evaluation ranges (§5.2).
var (
	// PaperRecallMedian is the median recall of both SDS and KStest.
	PaperRecallMedian = 100.0
	// PaperSDSSpecificityRange is SDS's specificity across applications.
	PaperSDSSpecificityRange = [2]float64{90, 100}
	// PaperKStestSpecificityRange is the baseline's specificity range.
	PaperKStestSpecificityRange = [2]float64{30, 80}
	// PaperSDSBSpecificityRange is standalone SDS/B on periodic apps.
	PaperSDSBSpecificityRange = [2]float64{94, 97}
	// PaperSDSPSpecificityRange is standalone SDS/P on periodic apps.
	PaperSDSPSpecificityRange = [2]float64{93, 94}
	// PaperSDSDelayRange is SDS's detection delay in seconds.
	PaperSDSDelayRange = [2]float64{15, 30}
	// PaperKStestDelayRange is the baseline's detection delay in seconds.
	PaperKStestDelayRange = [2]float64{20, 50}
	// PaperSDSOverheadRange is SDS's normalized execution time.
	PaperSDSOverheadRange = [2]float64{1.01, 1.02}
	// PaperKStestOverheadRange is the baseline's normalized execution time.
	PaperKStestOverheadRange = [2]float64{1.03, 1.08}
	// PaperFaceNetPeriod is the FaceNet MA-series period of Fig. 8.
	PaperFaceNetPeriod = 17
)
