package attack

import (
	"math"
	"testing"
)

// FuzzStrategyIntensity drives every strategy with random knobs and time
// points and checks the schedule-composition contract: intensity is always
// finite, inside [0, peak-clamped max], Active agrees with Intensity > 0,
// and the analytic window means stay in range. Degenerate knobs (zero,
// negative, Inf, NaN) must sanitize, never trap or leak NaN.
func FuzzStrategyIntensity(f *testing.F) {
	f.Add(6.5, 8.0, 0.3, 3, 120.0, 20.0, 0.8, 350.0, 12.0)
	f.Add(0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-1.0, math.Inf(1), 1.5, -2, 10.0, 10.0, -0.5, 299.5, 0.25)
	f.Add(math.NaN(), 1.0, 0.9, 100, math.NaN(), 5.0, 2.0, 600.0, 90.0)
	f.Fuzz(func(t *testing.T, on, off, duty float64, k int, every, quiet, peak, at, span float64) {
		if k < -1000 || k > 1000 {
			k %= 1000 // keep NewCoordinated's member slice bounded
		}
		strategies := []Strategy{
			nil,
			DutyCycle{On: on, Off: off, Phase: duty},
			PeriodMimic{Period: on, Duty: duty, Cycles: k, Phase: off},
			SlowRamp{Rise: on},
			NewCoordinated(k, on),
			ReprofileTimed{Every: every, Quiet: quiet, Offset: duty,
				Inner: DutyCycle{On: on, Off: off}},
		}
		for i, st := range strategies {
			sched := Schedule{Kind: BusLock, Start: 300, Ramp: 12, Stop: 600,
				Peak: peak, Strategy: st}
			if !math.IsNaN(at) && !math.IsInf(at, 0) {
				v := sched.Intensity(at)
				if math.IsNaN(v) || v < 0 || v > 1 {
					t.Fatalf("strategy %d: Intensity(%v) = %v out of [0, 1]", i, at, v)
				}
				if sched.Active(at) != (v > 0) {
					t.Fatalf("strategy %d: Active(%v) disagrees with Intensity %v", i, at, v)
				}
				env := sched.Env(at, false)
				if math.IsNaN(env.BusLock) || env.BusLock != v {
					t.Fatalf("strategy %d: Env multiplier %v != intensity %v", i, env.BusLock, v)
				}
				if !math.IsNaN(span) && !math.IsInf(span, 0) && span > 0 && span < 1e9 {
					m := sched.MeanIntensity(at, at+span)
					if math.IsNaN(m) || m < 0 || m > 1 {
						t.Fatalf("strategy %d: MeanIntensity(%v, %v) = %v out of [0, 1]",
							i, at, at+span, m)
					}
				}
			}
		}
	})
}
