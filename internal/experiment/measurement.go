package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/signal"
	"github.com/memdos/sds/internal/timeseries"
	"github.com/memdos/sds/internal/workload"
)

// KStestIntervalResult describes one L_R interval of the paper's Fig. 1
// experiment: the per-check KS decisions and whether the interval would
// declare an attack (≥ Consecutive consecutive rejections).
type KStestIntervalResult struct {
	Index    int
	Checks   []bool // true = distributions judged distinct ("1" in Fig. 1)
	Declared bool
}

// FalseAlarmResult is one row of the §3.2 study: how often KStest declares
// an attack on an attack-free application.
type FalseAlarmResult struct {
	App       string
	Intervals int
	Declared  int
	// Rate = Declared/Intervals (the paper: TeraSort >60%, Bayes 30%, …).
	Rate float64
}

// KStestIntervals runs the baseline on an attack-free application for the
// given number of L_R intervals (the paper uses twenty) and reports each
// interval's check series — the paper's Fig. 1 for TeraSort.
func (c Config) KStestIntervals(app string, intervals int) ([]KStestIntervalResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if intervals <= 0 {
		return nil, fmt.Errorf("experiment: interval count must be positive, got %d", intervals)
	}
	model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(c.Seed, app+"/fig1"))
	if err != nil {
		return nil, err
	}

	results := make([]KStestIntervalResult, intervals)
	for i := range results {
		results[i].Index = i
	}
	// The measurement study follows the published protocol exactly: a
	// reference is collected at the start of every L_R interval and an
	// interval declares an attack when it contains Consecutive consecutive
	// rejections — no confirmation streaks, no baseline freezing.
	kcfg := c.KSTest
	kcfg.ConfirmStreaks = 1
	kcfg.FreezeBaselineOnSuspicion = false
	flag := &ThrottleState{}
	var checks []detect.CheckStat
	det, err := detect.NewKSTest(kcfg, flag, detect.WithKSTestCheckHook(func(s detect.CheckStat) {
		checks = append(checks, s)
	}))
	if err != nil {
		return nil, err
	}

	tpcm := c.KSTest.TPCM
	total := float64(intervals) * c.KSTest.LR
	n := pcm.SampleCount(total, tpcm)
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		a, m := model.Sample(tpcm, workload.Env{Quiesced: flag.paused})
		det.Observe(pcm.Sample{T: now, Access: a, Miss: m})
	}

	for _, chk := range checks {
		idx := int(chk.T / c.KSTest.LR)
		if idx >= intervals {
			idx = intervals - 1
		}
		results[idx].Checks = append(results[idx].Checks, chk.Rejected)
	}
	for i := range results {
		results[i].Declared = hasConsecutive(results[i].Checks, c.KSTest.Consecutive)
	}
	return results, nil
}

// hasConsecutive reports whether the series contains at least n consecutive
// true values.
func hasConsecutive(series []bool, n int) bool {
	run := 0
	for _, v := range series {
		if !v {
			run = 0
			continue
		}
		run++
		if run >= n {
			return true
		}
	}
	return false
}

// KStestFalseAlarms reproduces the §3.2 false-alarm study across the given
// applications (all when empty).
func (c Config) KStestFalseAlarms(apps []string, intervals int) ([]FalseAlarmResult, error) {
	if len(apps) == 0 {
		apps = workload.AppNames()
	}
	results := make([]FalseAlarmResult, 0, len(apps))
	for _, app := range apps {
		ivs, err := c.KStestIntervals(app, intervals)
		if err != nil {
			return nil, err
		}
		declared := 0
		for _, iv := range ivs {
			if iv.Declared {
				declared++
			}
		}
		results = append(results, FalseAlarmResult{
			App:       app,
			Intervals: len(ivs),
			Declared:  declared,
			Rate:      float64(declared) / float64(len(ivs)),
		})
	}
	return results, nil
}

// Trace is one panel of the paper's Figs. 2–6: the relevant counter over a
// run in which the attack starts halfway, plus the summary statistics that
// constitute Observations (1) and (2).
type Trace struct {
	App    string
	Attack attack.Kind
	// Metric is the counter the paper plots for this attack (AccessNum for
	// bus locking, MissNum for cleansing).
	Metric detect.Metric
	// T and Value are the raw PCM series.
	T, Value []float64
	// AttackStart is when the attack began.
	AttackStart float64
	// MeanBefore and MeanAfter are the counter means of the two halves.
	MeanBefore, MeanAfter float64
	// PeriodBefore and PeriodAfter are the MA-series periods of the two
	// halves (0 when not detected; meaningful for periodic applications).
	PeriodBefore, PeriodAfter int
}

// AttackTrace reproduces one panel of Figs. 2–6: seconds/2 of normal
// execution followed by seconds/2 under the attack (the paper uses 60+60).
func (c Config) AttackTrace(app string, kind attack.Kind, seconds float64) (Trace, error) {
	if err := c.Validate(); err != nil {
		return Trace{}, err
	}
	if kind != attack.BusLock && kind != attack.Cleanse {
		return Trace{}, fmt.Errorf("experiment: trace requires a concrete attack, got %v", kind)
	}
	model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(c.Seed, app+"/trace"))
	if err != nil {
		return Trace{}, err
	}
	tr := Trace{App: app, Attack: kind, AttackStart: seconds / 2, Metric: detect.MetricAccess}
	if kind == attack.Cleanse {
		tr.Metric = detect.MetricMiss
	}
	sched := attack.Schedule{Kind: kind, Start: seconds / 2, Ramp: 5}

	tpcm := c.Detect.TPCM
	n := pcm.SampleCount(seconds, tpcm)
	tr.T = make([]float64, n)
	tr.Value = make([]float64, n)
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		a, m := model.Sample(tpcm, sched.Env(now, false))
		tr.T[i] = now
		if tr.Metric == detect.MetricAccess {
			tr.Value[i] = a
		} else {
			tr.Value[i] = m
		}
	}

	half := n / 2
	tr.MeanBefore = timeseries.Mean(tr.Value[:half])
	tr.MeanAfter = timeseries.Mean(tr.Value[half:])
	maBefore, err := timeseries.MovingAverage(tr.Value[:half], c.Detect.W, c.Detect.DW)
	if err != nil {
		return Trace{}, err
	}
	// Period analysis of the attack half skips the attacker's ramp-up so
	// that the stretched steady-state period is measured, not the mixture.
	rampSamples := int(sched.Ramp/tpcm) + 1
	if rampSamples > n/4 {
		rampSamples = n / 4
	}
	maAfter, err := timeseries.MovingAverage(tr.Value[half+rampSamples:], c.Detect.W, c.Detect.DW)
	if err != nil {
		return Trace{}, err
	}
	// Period analysis is meaningful only for the applications the paper
	// identifies as periodic; occasional pseudo-periods in other apps'
	// short windows would just be noise fits.
	if workload.MustAppProfile(app).Periodic {
		opts := signal.PeriodOptions{MaxPeriod: 60}
		if est, ok := signal.EstimatePeriod(maBefore, opts); ok {
			tr.PeriodBefore = est.Period
		}
		if est, ok := signal.EstimatePeriod(maAfter, opts); ok {
			tr.PeriodAfter = est.Period
		}
	}
	return tr, nil
}

// Fig7Result is the paper's Fig. 7 walk-through: the k-means EWMA series
// with its normal range and the moment SDS/B raised the alarm.
type Fig7Result struct {
	App          string
	Windows      []detect.WindowStat
	Lower, Upper float64
	AlarmWindow  int // index of the window at which the alarm fired; -1 if none
	AlarmTime    float64
	AttackStart  float64
}

// SDSBExample reproduces Fig. 7 for the given app under a bus-locking
// attack starting mid-run.
func (c Config) SDSBExample(app string, seconds float64) (Fig7Result, error) {
	if err := c.Validate(); err != nil {
		return Fig7Result{}, err
	}
	seed := randx.Derive(c.Seed, 7).Uint64()
	prof, err := c.buildProfile(app, seed)
	if err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{App: app, AlarmWindow: -1, AttackStart: seconds / 2}
	res.Lower, res.Upper, err = prof.Bounds(detect.MetricAccess, c.Detect.K)
	if err != nil {
		return Fig7Result{}, err
	}
	det, err := detect.NewSDSB(prof, c.Detect, detect.WithSDSBWindowHook(func(w detect.WindowStat) {
		res.Windows = append(res.Windows, w)
	}))
	if err != nil {
		return Fig7Result{}, err
	}
	model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(seed, app+"/fig7"))
	if err != nil {
		return Fig7Result{}, err
	}
	sched := attack.Schedule{Kind: attack.BusLock, Start: seconds / 2, Ramp: 5}
	tpcm := c.Detect.TPCM
	n := pcm.SampleCount(seconds, tpcm)
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		a, m := model.Sample(tpcm, sched.Env(now, false))
		det.Observe(pcm.Sample{T: now, Access: a, Miss: m})
		if res.AlarmWindow < 0 && det.Alarmed() && now >= res.AttackStart {
			res.AlarmWindow = len(res.Windows) - 1
			res.AlarmTime = now
		}
	}
	return res, nil
}

// Fig8Result is the paper's Fig. 8 walk-through: the FaceNet MA series and
// the sequence of periods SDS/P computed in real time.
type Fig8Result struct {
	App          string
	NormalPeriod int
	MA           []detect.WindowStat
	Estimates    []detect.PeriodStat
	AlarmTime    float64 // -1 if never alarmed
	AttackStart  float64
}

// SDSPExample reproduces Fig. 8 for a periodic app under a bus-locking
// attack starting mid-run.
func (c Config) SDSPExample(app string, seconds float64) (Fig8Result, error) {
	if err := c.Validate(); err != nil {
		return Fig8Result{}, err
	}
	seed := randx.Derive(c.Seed, 8).Uint64()
	prof, err := c.buildProfile(app, seed)
	if err != nil {
		return Fig8Result{}, err
	}
	if !prof.Periodic {
		return Fig8Result{}, fmt.Errorf("experiment: %s did not profile as periodic", app)
	}
	res := Fig8Result{App: app, NormalPeriod: prof.PeriodMA, AlarmTime: -1, AttackStart: seconds / 2}

	det, err := detect.NewSDSP(prof, c.Detect, detect.WithSDSPEstimateHook(func(p detect.PeriodStat) {
		// Fig. 8(b) plots the AccessNum period sequence.
		if p.Metric == detect.MetricAccess {
			res.Estimates = append(res.Estimates, p)
		}
	}))
	if err != nil {
		return Fig8Result{}, err
	}
	// A side SDS/B-style hook records the MA series for the figure.
	maRecorder, err := detect.NewSDSB(prof, c.Detect, detect.WithSDSBWindowHook(func(w detect.WindowStat) {
		res.MA = append(res.MA, w)
	}))
	if err != nil {
		return Fig8Result{}, err
	}

	model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(seed, app+"/fig8"))
	if err != nil {
		return Fig8Result{}, err
	}
	sched := attack.Schedule{Kind: attack.BusLock, Start: seconds / 2, Ramp: 5}
	tpcm := c.Detect.TPCM
	n := pcm.SampleCount(seconds, tpcm)
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		a, m := model.Sample(tpcm, sched.Env(now, false))
		s := pcm.Sample{T: now, Access: a, Miss: m}
		det.Observe(s)
		maRecorder.Observe(s)
		if res.AlarmTime < 0 && det.Alarmed() && now >= res.AttackStart {
			res.AlarmTime = now
		}
	}
	return res, nil
}
