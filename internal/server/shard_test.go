package server

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
)

// The ingest plane applies its 256 KiB socket read buffer through this
// interface, uniformly across transports — both conn types the daemon
// serves must keep implementing it.
var (
	_ interface{ SetReadBuffer(int) error } = (*net.TCPConn)(nil)
	_ interface{ SetReadBuffer(int) error } = (*net.UnixConn)(nil)
)

// readBufferConn records SetReadBuffer calls; everything else is the
// wrapped conn.
type readBufferConn struct {
	net.Conn
	calls chan int
}

func (c *readBufferConn) SetReadBuffer(n int) error {
	select {
	case c.calls <- n:
	default:
	}
	return nil
}

// TestSetReadBufferAppliedUniformly: the server sizes the receive buffer
// on ANY conn that can take one — the regression here is the old
// *net.TCPConn type assertion, which silently skipped unix sockets.
func TestSetReadBufferAppliedUniformly(t *testing.T) {
	s := New(Options{ProfileSeconds: 20})
	srvEnd, cliEnd := net.Pipe()
	defer cliEnd.Close()
	conn := &readBufferConn{Conn: srvEnd, calls: make(chan int, 1)}
	go s.handleConn(conn)
	go fmt.Fprintf(cliEnd, "sds/1 vm=rb profile=20\n")
	select {
	case n := <-conn.calls:
		if n != 256*1024 {
			t.Errorf("SetReadBuffer(%d), want %d", n, 256*1024)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never sized the receive buffer")
	}
	cliEnd.Close()
}

// TestListenShardsFallback: non-TCP networks and single-shard servers get
// exactly one plain listener; on Linux a multi-shard TCP server gets one
// SO_REUSEPORT accept queue per shard, all bound to the same address.
func TestListenShardsFallback(t *testing.T) {
	t.Run("unix is never sharded", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "sds.sock")
		ls, sharded, err := ListenShards("unix", path, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer ls[0].Close()
		if len(ls) != 1 || sharded {
			t.Errorf("unix: %d listeners, sharded=%v; want 1 unsharded", len(ls), sharded)
		}
	})
	t.Run("single shard takes the plain path", func(t *testing.T) {
		ls, sharded, err := ListenShards("tcp", "127.0.0.1:0", 1)
		if err != nil {
			t.Fatal(err)
		}
		defer ls[0].Close()
		if len(ls) != 1 || sharded {
			t.Errorf("n=1: %d listeners, sharded=%v; want 1 unsharded", len(ls), sharded)
		}
	})
	t.Run("multi-shard tcp", func(t *testing.T) {
		ls, sharded, err := ListenShards("tcp", "127.0.0.1:0", 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range ls {
			defer l.Close()
		}
		if runtime.GOOS != "linux" {
			if len(ls) != 1 || sharded {
				t.Errorf("non-linux: %d listeners, sharded=%v; want 1 unsharded", len(ls), sharded)
			}
			return
		}
		if len(ls) != 4 || !sharded {
			t.Fatalf("linux: %d listeners, sharded=%v; want 4 sharded", len(ls), sharded)
		}
		addr := ls[0].Addr().String()
		for i, l := range ls {
			if l.Addr().String() != addr {
				t.Errorf("listener %d bound %s, want %s (one address, many queues)", i, l.Addr(), addr)
			}
		}
	})
}

// TestShardAffinity is the affinity invariant under -race: every VM's
// samples are accounted on exactly the shard its name stripes to, no
// matter which accept queue or decode path (event loop vs pump) carried
// them. With concurrent binary streams on all shards, any cross-shard
// observation shows up as a counter mismatch — and as a data race on the
// shard-striped fleet state.
func TestShardAffinity(t *testing.T) {
	const (
		vms     = 16
		tpcm    = 0.01
		total   = 3000
		profile = 20.0
	)
	s, addr := startServer(t, Options{ProfileSeconds: profile, Shards: 4, BufferSamples: 256})
	var wg sync.WaitGroup
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hs := fmt.Sprintf("sds/1 vm=aff-%02d profile=%g frames=bin", i, profile)
			res := runClient(t, addr, hs, synthBin(t, 0, total, tpcm, 100))
			if len(res.errorLines) > 0 {
				t.Errorf("vm %d: server errors: %v", i, res.errorLines)
			}
			if res.done == nil || res.done.samples != total {
				t.Errorf("vm %d: done = %+v, want %d samples", i, res.done, total)
			}
		}(i)
	}
	wg.Wait()

	expected := make([]uint64, len(s.shards))
	for i := 0; i < vms; i++ {
		expected[s.fleet.Stripe(fmt.Sprintf("aff-%02d", i))%len(s.shards)] += total
	}
	var sum uint64
	for i, sh := range s.shards {
		got := sh.samples.Load()
		if got != expected[i] {
			t.Errorf("shard %d accounted %d samples, want %d (affinity broken)", i, got, expected[i])
		}
		if c := sh.conns.Load(); c != 0 {
			t.Errorf("shard %d still reports %d attached conns", i, c)
		}
		sum += got
	}
	if m := s.Metrics(); sum != m.TotalSamples || m.TotalSamples != vms*total {
		t.Errorf("shard sum %d, server total %d, want %d", sum, m.TotalSamples, vms*total)
	}
}

// synthBinOpen renders samples [from, to) as binary frames with NO end
// frame — a stream that is still mid-flight.
func synthBinOpen(t *testing.T, from, to int, tpcm, base float64) []byte {
	t.Helper()
	var buf []pcm.Sample
	for i := from; i < to; i++ {
		buf = append(buf, synthSample(i, tpcm, base))
	}
	var b writerBuffer
	w := feed.NewBinWriter(&b)
	if err := w.WriteBatch(buf); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return b.data
}

type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// TestServerShardedGracefulDrain: a multi-shard server behind its
// SO_REUSEPORT accept queues drains mid-flight binary streams on every
// shard — all samples accounted, every client gets its done line.
func TestServerShardedGracefulDrain(t *testing.T) {
	const (
		clients = 8
		tpcm    = 0.01
		total   = 2500
	)
	s := New(Options{ProfileSeconds: 20, BufferSamples: 64, Shards: 4})
	ls, _, err := ListenShards("tcp", "127.0.0.1:0", s.ShardCount())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ls {
		go s.Serve(l)
	}
	addr := ls[0].Addr().String()

	var wg sync.WaitGroup
	drained := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer conn.Close()
			res := readResponses(t, conn, func() {
				fmt.Fprintf(conn, "sds/1 vm=sdrain-%02d profile=20 frames=bin\n", i)
				if _, err := conn.Write(synthBinOpen(t, 0, total, tpcm, 100)); err != nil {
					t.Errorf("client %d: body write: %v", i, err)
					return
				}
				// Hold the stream open: the server must drain it.
				<-drained
			})
			if res.done == nil {
				t.Errorf("client %d: no done line after drain", i)
				return
			}
			if res.done.samples != total {
				t.Errorf("client %d: drained stream accounted %d of %d samples", i, res.done.samples, total)
			}
		}(i)
	}

	deadline := time.Now().Add(20 * time.Second)
	for s.Metrics().TotalSamples < clients*total {
		if time.Now().After(deadline) {
			t.Fatalf("server processed %d of %d samples before drain", s.Metrics().TotalSamples, clients*total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	close(drained)
	wg.Wait()
}

// TestMetricsShardGauges: /metricsz carries one gauge block per shard and
// their sums reconcile with the server totals.
func TestMetricsShardGauges(t *testing.T) {
	const (
		vms   = 8
		total = 2000
	)
	s, addr := startServer(t, Options{ProfileSeconds: 10, Shards: 4})
	var wg sync.WaitGroup
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hs := fmt.Sprintf("sds/1 vm=gauge-%d profile=10 frames=bin", i)
			runClient(t, addr, hs, synthBin(t, 0, total, 0.01, 100))
		}(i)
	}
	wg.Wait()

	m := s.Metrics()
	if len(m.Shards) != s.ShardCount() {
		t.Fatalf("metrics carry %d shard blocks, want %d", len(m.Shards), s.ShardCount())
	}
	var samples, frames uint64
	for _, sh := range m.Shards {
		samples += sh.Samples
		frames += sh.BinFrames
		if sh.Conns != 0 {
			t.Errorf("shard gauge reports %d attached conns after all streams closed", sh.Conns)
		}
	}
	if samples != m.TotalSamples {
		t.Errorf("shard samples sum to %d, server total %d", samples, m.TotalSamples)
	}
	if frames != m.TotalBinFrames {
		t.Errorf("shard frames sum to %d, server total %d", frames, m.TotalBinFrames)
	}
	if m.ShardSkew < 1.0 {
		t.Errorf("shard skew %.3f < 1.0 (skew is max/mean, so ≥ 1 whenever samples flowed)", m.ShardSkew)
	}
}
