package cloudsim

import (
	"testing"

	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// clusterScenario is the parameterized cluster shape shared by the tracked
// benchmarks: every VM monitored, attackers running mixed campaigns with
// churn in the background and the full mitigation loop closed.
func clusterScenario(hosts int, seconds float64, fidelity string) Scenario {
	return Scenario{
		Name:                "bench",
		Seed:                1,
		Hosts:               hosts,
		VMsPerHost:          8,
		Seconds:             seconds,
		Fidelity:            fidelity,
		MonitorAll:          true,
		ProfileSeconds:      600,
		Attackers:           hosts/20 + 1,
		AttackKind:          AttackMixed,
		DwellMean:           200,
		ChurnArrivalsPerMin: float64(hosts) / 10,
		ChurnLifetimeMean:   180,
		Mitigation:          Mitigation{Policy: PolicyThrottleMigrate},
	}
}

// BenchmarkCloud1000x8x900Window is the tentpole scale target: 1000 hosts ×
// 8 VMs × 900 virtual seconds, all monitored, in single-digit seconds.
func BenchmarkCloud1000x8x900Window(b *testing.B) {
	sc := clusterScenario(1000, 900, FidelityWindow)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SamplesRepresented), "samples")
	}
}

// BenchmarkCloud20x8x300Window and ...Exact are the same small cluster at
// both fidelities — the direct measure of what the closed-form window
// substrate buys over per-sample lockstep.
func BenchmarkCloud20x8x300Window(b *testing.B) {
	sc := clusterScenario(20, 300, FidelityWindow)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloud20x8x300Exact(b *testing.B) {
	sc := clusterScenario(20, 300, FidelityExact)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockModelStep isolates the hot path of the window substrate:
// one closed-form ΔW-sample block of telemetry. Must stay allocation-free.
func BenchmarkBlockModelStep(b *testing.B) {
	prof := workload.MustAppProfile(workload.KMeans)
	cfg := Scenario{Hosts: 1}.withDefaults().Detect
	bm := newBlockModel(prof, randx.New(99, 0), float64(cfg.DW)*cfg.TPCM, cfg.DW)
	b.ReportAllocs()
	b.ResetTimer()
	var sa, sm float64
	for i := 0; i < b.N; i++ {
		a, m := bm.step(0.3, 0)
		sa += a
		sm += m
	}
	_, _ = sa, sm
}
