package attack

import (
	"fmt"
	"sort"

	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/vmm"
)

// BusLocker is the micro-simulation bus-locking attacker: while active it
// requests atomic lock windows covering most of every tick, plus a small
// stream of its own accesses (the atomic operations themselves).
type BusLocker struct {
	name     string
	rng      *randx.Rand
	start    float64
	lockFrac float64
	perSec   float64
	now      float64
}

var _ vmm.Workload = (*BusLocker)(nil)

// NewBusLocker returns a bus-locking attacker that activates at start
// seconds and thereafter holds the bus locked for lockFrac of each tick.
func NewBusLocker(start, lockFrac float64, rng *randx.Rand) (*BusLocker, error) {
	if lockFrac <= 0 || lockFrac > 1 || rng == nil {
		return nil, fmt.Errorf("attack: bad BusLocker parameters (lockFrac=%v)", lockFrac)
	}
	return &BusLocker{
		name:     "buslock-attacker",
		rng:      rng,
		start:    start,
		lockFrac: lockFrac,
		perSec:   20000,
	}, nil
}

// Name implements vmm.Workload.
func (b *BusLocker) Name() string { return b.name }

// Demand implements vmm.Workload.
func (b *BusLocker) Demand(dt float64) (int, float64) {
	b.now += dt
	if b.now < b.start {
		return 0, 0
	}
	return int(b.perSec * dt), b.lockFrac
}

// Issue implements vmm.Workload. The attacker's own accesses touch a tiny
// buffer (the lock cadence matters, not its footprint).
func (b *BusLocker) Issue(granted int, c *cachesim.Cache, owner cachesim.Owner) {
	for i := 0; i < granted; i++ {
		c.Access(owner, uint64(b.rng.IntN(16))*64)
	}
}

// Cleanser is the micro-simulation LLC-cleansing attacker. Before attacking
// it probes: it fills cache sets with its own lines, waits, and re-accesses
// them, counting self-misses per set — a miss means another VM evicted the
// attacker's line, i.e. the set is contended. It then repeatedly sweeps the
// most contended sets with fresh tags, cleansing the victims' lines.
type Cleanser struct {
	name   string
	rng    *randx.Rand
	start  float64
	perSec float64
	now    float64

	probing   bool
	probePass int
	probeSet  int
	missBySet []int
	hotSets   []int
	sweepTag  uint64
	sweepIdx  int
}

var _ vmm.Workload = (*Cleanser)(nil)

// NewCleanser returns a cleansing attacker that activates at start seconds,
// issuing perSec accesses per second while probing and cleansing.
func NewCleanser(start, perSec float64, rng *randx.Rand) (*Cleanser, error) {
	if perSec <= 0 || rng == nil {
		return nil, fmt.Errorf("attack: bad Cleanser parameters (perSec=%v)", perSec)
	}
	return &Cleanser{
		name:    "cleansing-attacker",
		rng:     rng,
		start:   start,
		perSec:  perSec,
		probing: true,
	}, nil
}

// Name implements vmm.Workload.
func (a *Cleanser) Name() string { return a.name }

// Probing reports whether the attacker is still in its probe phase.
func (a *Cleanser) Probing() bool { return a.probing }

// HotSets returns the contended sets discovered by the probe (nil while
// probing).
func (a *Cleanser) HotSets() []int {
	out := make([]int, len(a.hotSets))
	copy(out, a.hotSets)
	return out
}

// Demand implements vmm.Workload.
func (a *Cleanser) Demand(dt float64) (int, float64) {
	a.now += dt
	if a.now < a.start {
		return 0, 0
	}
	return int(a.perSec * dt), 0
}

// Issue implements vmm.Workload.
func (a *Cleanser) Issue(granted int, c *cachesim.Cache, owner cachesim.Owner) {
	if a.missBySet == nil {
		a.missBySet = make([]int, c.NumSets())
	}
	for i := 0; i < granted; i++ {
		if a.probing {
			a.probeStep(c, owner)
		} else {
			a.cleanseStep(c, owner)
		}
	}
}

// probeStep advances the two-pass probe by one access. Pass 0 plants one
// line per set; pass 1 re-accesses it and records a self-miss wherever the
// line was evicted by someone else in the meantime.
func (a *Cleanser) probeStep(c *cachesim.Cache, owner cachesim.Owner) {
	set := a.probeSet
	addr := c.AddrForSet(set, 1<<20) // a tag victims are unlikely to use
	hit := c.Access(owner, addr)
	if a.probePass == 1 && !hit {
		a.missBySet[set]++
	}
	a.probeSet++
	if a.probeSet < c.NumSets() {
		return
	}
	a.probeSet = 0
	a.probePass++
	// Two passes: plant, then measure (victims evict in between because
	// probe accesses are interleaved with their execution).
	if a.probePass < 2 {
		return
	}
	a.finishProbe(c)
}

func (a *Cleanser) finishProbe(c *cachesim.Cache) {
	type setMiss struct{ set, misses int }
	ranked := make([]setMiss, 0, len(a.missBySet))
	for set, m := range a.missBySet {
		if m > 0 {
			ranked = append(ranked, setMiss{set, m})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].misses > ranked[j].misses })
	for _, sm := range ranked {
		a.hotSets = append(a.hotSets, sm.set)
	}
	if len(a.hotSets) == 0 {
		// Nothing contended was found: cleanse the whole cache.
		for set := 0; set < c.NumSets(); set++ {
			a.hotSets = append(a.hotSets, set)
		}
	}
	a.probing = false
}

// cleanseStep walks fresh tags through the contended sets, one access per
// step, cycling through enough distinct tags per set (associativity + 4)
// that every visit chain flushes the whole set — including lines the victim
// keeps hot, which a single-tag sweep could never displace from an LRU set.
func (a *Cleanser) cleanseStep(c *cachesim.Cache, owner cachesim.Owner) {
	set := a.hotSets[a.sweepIdx]
	depth := uint64(c.Config().Ways + 4)
	c.Access(owner, c.AddrForSet(set, 2<<20+a.sweepTag%depth))
	a.sweepTag++
	if a.sweepTag%depth == 0 {
		a.sweepIdx = (a.sweepIdx + 1) % len(a.hotSets)
	}
}
