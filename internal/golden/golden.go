// Package golden implements the repository's paper-fidelity conformance
// fixtures: committed captures of figure tables and alarm transcripts at
// fixed seeds, compared byte for byte on every test run. Any behavioural
// drift in detect, signal, experiment or server fails the owning test with
// a readable line diff; intentional changes regenerate every fixture with
// the shared -update flag:
//
//	make goldens            # or: go test <golden packages> -update
//
// The flag is registered once here, so every test package that imports
// golden accepts -update.
package golden

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// update is the shared regeneration flag. It is defined in this package
// (not per test file) so all golden suites regenerate with one command.
var update = flag.Bool("update", false, "rewrite golden files with the current output")

// Update reports whether the test run was asked to regenerate fixtures.
func Update() bool { return *update }

// T is the subset of *testing.T golden needs (keeps the package usable
// from helpers and testable itself).
type T interface {
	Helper()
	Logf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Assert compares got against the fixture at path (relative to the test's
// working directory, conventionally testdata/golden/<name>). On mismatch it
// fails the test with a line diff; with -update it (re)writes the fixture
// instead and logs the refresh.
func Assert(t T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("golden: create %s: %v", filepath.Dir(path), err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("golden: write %s: %v", path, err)
		}
		t.Logf("golden: wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		// Return as well: a non-testing.T implementation of T may not stop
		// the goroutine in Fatalf.
		t.Fatalf("golden: read %s: %v (regenerate with -update)", path, err)
		return
	}
	if string(want) == string(got) {
		return
	}
	t.Fatalf("golden: output diverged from %s (regenerate intentional changes with -update)\n%s",
		path, Diff(string(want), string(got)))
}

// AssertString is Assert for string output.
func AssertString(t T, path, got string) {
	t.Helper()
	Assert(t, path, []byte(got))
}

// Diff renders a line-oriented diff between the fixture (want) and the new
// output (got): common lines as context (elided when long), fixture-only
// lines prefixed '-', new lines prefixed '+'. It is an LCS diff, exact for
// fixture-sized inputs.
func Diff(want, got string) string {
	a := splitLines(want)
	b := splitLines(got)
	ops := diffOps(a, b)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- fixture (%d lines)\n+++ current (%d lines)\n", len(a), len(b))
	// Collapse long runs of unchanged context to their edges.
	const ctx = 2
	for i := 0; i < len(ops); {
		if ops[i].kind != opSame {
			sb.WriteString(ops[i].String())
			i++
			continue
		}
		j := i
		for j < len(ops) && ops[j].kind == opSame {
			j++
		}
		run := ops[i:j]
		if len(run) <= 2*ctx+1 {
			for _, op := range run {
				sb.WriteString(op.String())
			}
		} else {
			head, tail := run[:ctx], run[len(run)-ctx:]
			if i == 0 {
				head = nil // no leading context before the first change
			}
			if j == len(ops) {
				tail = nil // no trailing context after the last change
			}
			for _, op := range head {
				sb.WriteString(op.String())
			}
			fmt.Fprintf(&sb, "  … %d unchanged lines …\n", len(run)-len(head)-len(tail))
			for _, op := range tail {
				sb.WriteString(op.String())
			}
		}
		i = j
	}
	return sb.String()
}

type opKind byte

const (
	opSame opKind = iota
	opDel         // in fixture, not in current output
	opAdd         // in current output, not in fixture
)

type diffOp struct {
	kind opKind
	text string
}

func (o diffOp) String() string {
	switch o.kind {
	case opDel:
		return "-" + o.text + "\n"
	case opAdd:
		return "+" + o.text + "\n"
	default:
		return " " + o.text + "\n"
	}
}

// diffOps computes an LCS edit script between line slices a and b.
func diffOps(a, b []string) []diffOp {
	// lcs[i][j] = length of the LCS of a[i:] and b[j:].
	lcs := make([][]int, len(a)+1)
	for i := range lcs {
		lcs[i] = make([]int, len(b)+1)
	}
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{opSame, a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{opDel, a[i]})
			i++
		default:
			ops = append(ops, diffOp{opAdd, b[j]})
			j++
		}
	}
	for ; i < len(a); i++ {
		ops = append(ops, diffOp{opDel, a[i]})
	}
	for ; j < len(b); j++ {
		ops = append(ops, diffOp{opAdd, b[j]})
	}
	return ops
}

// splitLines splits on '\n' without producing a phantom empty line for a
// trailing newline.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}
