package experiment

import (
	"testing"

	"github.com/memdos/sds/internal/workload"
)

func TestInterferenceStudyDetectsNoisyNeighbour(t *testing.T) {
	// §6: even benign co-located VMs interfere; the provider's detector
	// must flag the contention from the victim's counters.
	res, err := MicroConfig{App: workload.KMeans, Seed: 5}.InterferenceStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.MissRateDuring <= res.MissRateBefore {
		t.Fatalf("noisy neighbour did not raise the miss rate: %v → %v",
			res.MissRateBefore, res.MissRateDuring)
	}
	if !res.Detected {
		t.Fatalf("interference not detected: %+v", res)
	}
	if res.Delay < 0 || res.Delay > 25 {
		t.Fatalf("interference delay %v, want within (0, 25]", res.Delay)
	}
}

func TestInterferenceStudyAll(t *testing.T) {
	results, err := MicroConfig{Seed: 6}.InterferenceStudyAll([]string{workload.Bayes, workload.FaceNet})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	detected := 0
	for _, r := range results {
		if r.Detected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no interference detected for any app")
	}
}
