package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
)

// Handshake is the first line every stream connection must send:
//
//	sds/1 vm=<id> [app=<name>] [scheme=<sds|sdsb|sdsp|kstest>] [profile=<seconds>]
//
// followed by the feed CSV stream (`t,access,miss` lines; header and '#'
// comments allowed). Key=value fields may appear in any order; omitted
// fields fall back to the server's defaults. The server answers with
// line-oriented responses on the same connection:
//
//	ok vm=<id> app=<name> scheme=<scheme> profile=<seconds>
//	alarm {"t":…,"detector":…,"metric":…,"reason":…}
//	done vm=<id> samples=<ingested> monitored=<n> dropped=<d> alarms=<a>
//	error: <message>
//
// Clients that stream without reading MUST at minimum drain the socket at
// end of stream: alarm lines are written inline and TCP backpressure from
// an unread response buffer eventually pauses that VM's ingestion.
const handshakeMagic = "sds/1"

// maxHandshakeLen bounds the handshake line.
const maxHandshakeLen = 4096

// Options configures a Server. Zero-value fields fall back to defaults.
type Options struct {
	// Scheme, App, ProfileSeconds, Config and KSConfig are the per-stream
	// defaults applied when a handshake omits the matching field.
	Scheme         string
	App            string
	ProfileSeconds float64
	Config         detect.Config
	KSConfig       detect.KSTestConfig
	// BufferSamples bounds the per-connection sample buffer between the
	// connection reader and the detection worker (default 1024). When the
	// worker falls behind, the reader blocks — backpressure propagates to
	// the client through TCP instead of growing memory.
	BufferSamples int
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server ingests many VM sample streams concurrently, one detector
// lifecycle per stream, and exposes fleet-wide state to the provider's
// control plane.
type Server struct {
	opts  Options
	fleet *detect.Fleet
	start time.Time

	mu        sync.Mutex
	sessions  map[string]*vmState
	order     []string // registration order, for stable /metricsz output
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	wg       sync.WaitGroup // connection handlers
	draining atomic.Bool

	totalSamples atomic.Uint64
	totalAlarms  atomic.Uint64
}

// vmState tracks one VM's stream across its lifetime (it outlives the
// connection so /metricsz keeps reporting final state after disconnect).
type vmState struct {
	sess      *Session
	connected atomic.Bool
}

// New returns a Server with the given defaults.
func New(opts Options) *Server {
	if opts.Scheme == "" {
		opts.Scheme = "sds"
	}
	if opts.App == "" {
		opts.App = "monitored-vm"
	}
	if opts.ProfileSeconds <= 0 {
		opts.ProfileSeconds = 900
	}
	if opts.Config == (detect.Config{}) {
		opts.Config = detect.DefaultConfig()
	}
	if opts.KSConfig == (detect.KSTestConfig{}) {
		opts.KSConfig = detect.DefaultKSTestConfig()
	}
	if opts.BufferSamples <= 0 {
		opts.BufferSamples = 1024
	}
	return &Server{
		opts:      opts,
		fleet:     detect.NewFleet(),
		start:     time.Now(),
		sessions:  make(map[string]*vmState),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Fleet returns the server's detector fleet (aggregate alarm state).
func (s *Server) Fleet() *detect.Fleet { return s.fleet }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts stream connections on l until the listener is closed or the
// server shuts down. Call once per listener (TCP and unix socket listeners
// can be served concurrently).
func (s *Server) Serve(l net.Listener) error {
	if s.draining.Load() {
		return fmt.Errorf("server: already shut down")
	}
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops accepting connections and drains active streams: every
// sample already read from a connection is processed before its handler
// exits. Handlers still running when ctx expires have their connections
// force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Interrupt blocking reads; handlers treat the deadline error as end
	// of stream and drain their buffered samples.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// streamSpec builds the per-stream spec from a parsed handshake.
func (s *Server) streamSpec(h handshake) StreamSpec {
	spec := StreamSpec{
		VM:             h.vm,
		App:            s.opts.App,
		Scheme:         s.opts.Scheme,
		ProfileSeconds: s.opts.ProfileSeconds,
		Config:         s.opts.Config,
		KSConfig:       s.opts.KSConfig,
	}
	if h.app != "" {
		spec.App = h.app
	}
	if h.scheme != "" {
		spec.Scheme = h.scheme
	}
	if h.profileSeconds > 0 {
		spec.ProfileSeconds = h.profileSeconds
	}
	return spec
}

// register installs a new session for vm, rejecting duplicates that are
// still streaming (a reconnect after disconnect replaces the old state).
func (s *Server) register(vm string, sess *Session) (*vmState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sessions[vm]; ok && st.connected.Load() {
		return nil, fmt.Errorf("vm %q is already streaming", vm)
	} else if !ok {
		s.order = append(s.order, vm)
	}
	st := &vmState{sess: sess}
	st.connected.Store(true)
	s.sessions[vm] = st
	if err := s.fleet.Protect(vm, detectorView{sess}); err != nil {
		return nil, err
	}
	return st, nil
}

// release marks vm's stream ended and removes it from the active fleet.
func (s *Server) release(vm string, st *vmState) {
	st.connected.Store(false)
	s.fleet.Unprotect(vm)
}

// handleConn runs one VM stream: handshake, then a bounded-buffer pipeline
// from the feed parser to the detection worker.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	cw := &connWriter{w: bufio.NewWriter(conn)}
	br := bufio.NewReaderSize(conn, 64*1024)
	h, err := readHandshake(br)
	if err != nil {
		cw.line("error: %v", err)
		return
	}
	spec := s.streamSpec(h)
	spec.OnAlarm = func(a detect.Alarm) error {
		s.totalAlarms.Add(1)
		s.logf("vm %s: ALARM %s (%s) at %.2fs: %s", h.vm, a.Detector, a.Metric, a.T, a.Reason)
		return cw.line("alarm %s", alarmJSON(a))
	}
	spec.OnProfile = func(p detect.Profile, n int) {
		s.logf("vm %s: profiled %s over %d samples (μ_access=%.4g σ=%.4g periodic=%v)",
			h.vm, p.App, n, p.MeanAccess, p.StdAccess, p.Periodic)
	}
	sess, err := NewSession(spec)
	if err != nil {
		cw.line("error: %v", err)
		return
	}
	st, err := s.register(h.vm, sess)
	if err != nil {
		cw.line("error: %v", err)
		return
	}
	defer s.release(h.vm, st)
	s.logf("vm %s: stream open (app=%s scheme=%s profile=%gs)", h.vm, spec.App, spec.Scheme, spec.ProfileSeconds)
	if err := cw.line("ok vm=%s app=%s scheme=%s profile=%g", h.vm, spec.App, spec.Scheme, spec.ProfileSeconds); err != nil {
		return
	}

	// Bounded pipeline: the reader parses samples into ch; the worker
	// drains ch into the session. A full channel blocks the reader, which
	// backpressures the client through TCP. On shutdown the reader stops
	// (read deadline) and the worker still drains everything buffered, so
	// no accepted sample is lost.
	ch := make(chan pcm.Sample, s.opts.BufferSamples)
	var procErr error
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		for smp := range ch {
			if procErr != nil {
				continue // poisoned: unblock the reader, discard
			}
			if err := sess.Observe(smp); err != nil {
				procErr = err
				continue
			}
			s.totalSamples.Add(1)
		}
	}()

	var readErr error
	reader := feed.NewReader(br)
	for {
		smp, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !isDeadlineErr(err) {
				readErr = err
			}
			break
		}
		ch <- smp
	}
	close(ch)
	<-workerDone

	stats, closeErr := sess.Close()
	switch {
	case procErr != nil:
		cw.line("error: %v", procErr)
	case readErr != nil:
		cw.line("error: %v", readErr)
	case closeErr != nil:
		cw.line("error: %v", closeErr)
	}
	cw.line("done vm=%s samples=%d monitored=%d dropped=%d alarms=%d",
		h.vm, stats.Ingested(), stats.Monitored, stats.Dropped, stats.Alarms)
	s.logf("vm %s: stream closed (%d samples, %d dropped, %d alarms, alarmed=%v)",
		h.vm, stats.Ingested(), stats.Dropped, stats.Alarms, stats.Alarmed)
}

// Stream is an in-process VM stream: the same lifecycle as a connection,
// fed directly by the caller (which provides natural backpressure).
type Stream struct {
	srv  *Server
	vm   string
	st   *vmState
	sess *Session
}

// OpenStream registers an in-process stream for spec.VM. The spec's zero
// fields default like a handshake's omitted fields.
func (s *Server) OpenStream(spec StreamSpec) (*Stream, error) {
	if spec.VM == "" {
		return nil, fmt.Errorf("in-process stream needs a VM name")
	}
	if spec.App == "" {
		spec.App = s.opts.App
	}
	if spec.Scheme == "" {
		spec.Scheme = s.opts.Scheme
	}
	if spec.ProfileSeconds <= 0 {
		spec.ProfileSeconds = s.opts.ProfileSeconds
	}
	if spec.Config == (detect.Config{}) {
		spec.Config = s.opts.Config
	}
	if spec.KSConfig == (detect.KSTestConfig{}) {
		spec.KSConfig = s.opts.KSConfig
	}
	userAlarm := spec.OnAlarm
	spec.OnAlarm = func(a detect.Alarm) error {
		s.totalAlarms.Add(1)
		if userAlarm != nil {
			return userAlarm(a)
		}
		return nil
	}
	sess, err := NewSession(spec)
	if err != nil {
		return nil, err
	}
	st, err := s.register(spec.VM, sess)
	if err != nil {
		return nil, err
	}
	return &Stream{srv: s, vm: spec.VM, st: st, sess: sess}, nil
}

// Observe ingests one sample.
func (st *Stream) Observe(smp pcm.Sample) error {
	if err := st.sess.Observe(smp); err != nil {
		return err
	}
	st.srv.totalSamples.Add(1)
	return nil
}

// Session exposes the stream's session (stats, profile, alarms).
func (st *Stream) Session() *Session { return st.sess }

// Close ends the stream and releases its fleet slot.
func (st *Stream) Close() (SessionStats, error) {
	st.srv.release(st.vm, st.st)
	return st.sess.Close()
}

// handshake is the parsed first line of a stream connection.
type handshake struct {
	vm             string
	app            string
	scheme         string
	profileSeconds float64
}

// readHandshake reads and parses the handshake line.
func readHandshake(br *bufio.Reader) (handshake, error) {
	line, err := br.ReadString('\n')
	if err != nil && (err != io.EOF || line == "") {
		return handshake{}, fmt.Errorf("reading handshake: %v", err)
	}
	if len(line) > maxHandshakeLen {
		return handshake{}, fmt.Errorf("handshake line exceeds %d bytes", maxHandshakeLen)
	}
	return parseHandshake(strings.TrimSpace(line))
}

// parseHandshake parses `sds/1 vm=<id> [key=value]...`.
func parseHandshake(line string) (handshake, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != handshakeMagic {
		return handshake{}, fmt.Errorf("want handshake %q vm=<id> [app=] [scheme=] [profile=], got %q", handshakeMagic, line)
	}
	var h handshake
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok || val == "" {
			return handshake{}, fmt.Errorf("malformed handshake field %q (want key=value)", f)
		}
		switch key {
		case "vm":
			h.vm = val
		case "app":
			h.app = val
		case "scheme":
			h.scheme = val
		case "profile":
			sec, err := strconv.ParseFloat(val, 64)
			if err != nil || sec <= 0 {
				return handshake{}, fmt.Errorf("bad profile window %q", val)
			}
			h.profileSeconds = sec
		default:
			return handshake{}, fmt.Errorf("unknown handshake field %q", key)
		}
	}
	if h.vm == "" {
		return handshake{}, fmt.Errorf("handshake is missing the vm=<id> field")
	}
	return h, nil
}

// connWriter serializes line writes to a connection (alarms come from the
// worker goroutine, errors from the reader).
type connWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

func (c *connWriter) line(format string, args ...any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if _, err := fmt.Fprintf(c.w, format+"\n", args...); err != nil {
		c.err = err
		return err
	}
	if err := c.w.Flush(); err != nil {
		c.err = err
		return err
	}
	return nil
}

// AlarmEvent is the JSON wire format of one alarm (also detectd's -json
// output format).
type AlarmEvent struct {
	T        float64 `json:"t"`
	Detector string  `json:"detector"`
	Metric   string  `json:"metric"`
	Reason   string  `json:"reason"`
}

// NewAlarmEvent converts a detect.Alarm to its wire format.
func NewAlarmEvent(a detect.Alarm) AlarmEvent {
	return AlarmEvent{T: a.T, Detector: a.Detector, Metric: a.Metric.String(), Reason: a.Reason}
}

// alarmJSON renders an alarm as a one-line JSON object.
func alarmJSON(a detect.Alarm) string {
	b, err := json.Marshal(NewAlarmEvent(a))
	if err != nil {
		return fmt.Sprintf(`{"t":%g,"detector":%q}`, a.T, a.Detector)
	}
	return string(b)
}

// isDeadlineErr reports whether err stems from the shutdown read deadline.
func isDeadlineErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
