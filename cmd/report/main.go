// Command report runs the reproduction's verification harness: it re-runs
// the experiments and checks every headline claim of the paper against the
// measured results, printing a PASS/FAIL table (see EXPERIMENTS.md for the
// claim inventory). It exits non-zero when any check fails, so it can gate
// CI on the reproduction staying intact.
//
//	report            # full verification (a few minutes)
//	report -quick     # subset of apps, fewer runs, no microsim (~30 s)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/memdos/sds/internal/report"
	"github.com/memdos/sds/internal/workload"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "fast verification: 3 apps, 4 runs, no microsim checks")
		runs  = flag.Int("runs", 0, "override runs per accuracy cell (0 = default)")
		seed  = flag.Uint64("seed", 1, "verification seed")
	)
	flag.Parse()

	opts := report.Options{Seed: *seed, Runs: *runs}
	if *quick {
		opts.Runs = 4
		opts.Apps = []string{workload.KMeans, workload.TeraSort, workload.FaceNet}
		opts.SkipMicro = true
		if *runs > 0 {
			opts.Runs = *runs
		}
	}

	checks, err := report.Run(opts, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	failures, err := report.Render(os.Stdout, checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	if failures > 0 {
		os.Exit(1)
	}
}
