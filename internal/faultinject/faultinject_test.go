package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"github.com/memdos/sds/internal/feed"
)

// stream renders n synthetic feed CSV lines (with header).
func stream(n int) []byte {
	var b bytes.Buffer
	b.WriteString("t,access,miss\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%g,%g,%g\n", float64(i+1)*0.01, 100+float64(i%7), 10+float64(i%3))
	}
	return b.Bytes()
}

// parseCounts replays a damaged stream through the feed parser and counts
// parsed records and malformed lines.
func parseCounts(t *testing.T, data []byte) (ok, bad int) {
	t.Helper()
	r := feed.NewReader(bytes.NewReader(data))
	for {
		_, err := r.Next()
		if err == io.EOF {
			return ok, bad
		}
		if err != nil {
			bad++
			continue
		}
		ok++
	}
}

func TestApplyDeterministic(t *testing.T) {
	in := stream(200)
	f := Faults{Seed: 42, SkipLines: 1, CorruptEvery: 7, TruncateEvery: 31}
	a := Apply(in, f)
	b := Apply(in, f)
	if !bytes.Equal(a, b) {
		t.Fatal("same schedule produced different damage")
	}
	f2 := f
	f2.Seed = 43
	if bytes.Equal(a, Apply(in, f2)) {
		t.Fatal("different seeds produced identical damage (corruption positions should differ)")
	}
	if bytes.Equal(a, in) {
		t.Fatal("schedule injected nothing")
	}
}

func TestZeroValueInjectsNothing(t *testing.T) {
	in := stream(50)
	if got := Apply(in, Faults{}); !bytes.Equal(got, in) {
		t.Fatal("zero-value schedule damaged the stream")
	}
}

// TestCorruptionAlwaysQuarantinable: every corrupted line fails to parse —
// corruption can never silently become a different valid sample — and the
// damage count is exactly the schedule's cadence.
func TestCorruptionAlwaysQuarantinable(t *testing.T) {
	const n, every = 400, 9
	in := stream(n)
	got := Apply(in, Faults{Seed: 3, SkipLines: 1, CorruptEvery: every})
	ok, bad := parseCounts(t, got)
	wantBad := n / every
	if bad != wantBad {
		t.Errorf("%d malformed lines, want %d", bad, wantBad)
	}
	if ok != n-wantBad {
		t.Errorf("%d parsed records, want %d", ok, n-wantBad)
	}
}

// TestTruncationMergesLines: a truncated line loses its newline and merges
// with its successor into one malformed record — each truncation destroys
// two records and yields one parse error.
func TestTruncationMergesLines(t *testing.T) {
	// n is chosen so the last truncated line (300) still has a successor.
	const n, every = 301, 50
	in := stream(n)
	got := Apply(in, Faults{Seed: 5, SkipLines: 1, TruncateEvery: every})
	ok, bad := parseCounts(t, got)
	events := n / every
	if bad != events {
		t.Errorf("%d malformed lines, want %d", bad, events)
	}
	if ok != n-2*events {
		t.Errorf("%d parsed records, want %d (each truncation takes its successor down too)", ok, n-2*events)
	}
}

// TestOversizeExceedsParserCap pins the contract between the fault layer
// and the feed parser: an inflated line is strictly longer than
// feed.MaxLineBytes, so the parser must quarantine exactly the inflated
// lines and keep every record around them.
func TestOversizeExceedsParserCap(t *testing.T) {
	if OversizeLen <= feed.MaxLineBytes {
		t.Fatalf("OversizeLen %d does not exceed feed.MaxLineBytes %d", OversizeLen, feed.MaxLineBytes)
	}
	const n, every = 101, 25
	in := stream(n)
	got := Apply(in, Faults{Seed: 6, SkipLines: 1, OversizeEvery: every})
	for _, line := range bytes.Split(got, []byte{'\n'}) {
		if len(line) > len("t,access,miss") && len(line) <= feed.MaxLineBytes {
			if i := bytes.IndexByte(line, 'x'); i >= 0 {
				t.Fatalf("inflated line is only %d bytes, under the parser cap", len(line))
			}
		}
	}
	ok, bad := parseCounts(t, got)
	events := n / every
	if bad != events {
		t.Errorf("%d malformed lines, want %d", bad, events)
	}
	if ok != n-events {
		t.Errorf("%d parsed records, want %d (oversize must not take neighbors down)", ok, n-events)
	}
}

// TestReaderAbruptEOF: a drop schedule ends the wrapped reader with a clean
// io.EOF after exactly N lines, mid-stream.
func TestReaderAbruptEOF(t *testing.T) {
	const n, dropAfter = 100, 37
	r := NewReader(bytes.NewReader(stream(n)), Faults{SkipLines: 1, DropAfterLines: dropAfter})
	fr := feed.NewReader(r)
	got := 0
	for {
		_, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("unexpected parse error: %v", err)
		}
		got++
	}
	if got != dropAfter {
		t.Errorf("reader yielded %d records before EOF, want %d", got, dropAfter)
	}
}

// TestReaderMatchesApply: the streaming reader and the batch oracle produce
// identical bytes for the same schedule.
func TestReaderMatchesApply(t *testing.T) {
	in := stream(250)
	f := Faults{Seed: 11, SkipLines: 1, CorruptEvery: 13, TruncateEvery: 41, DropAfterLines: 200}
	want := Apply(in, f)
	got, err := io.ReadAll(NewReader(bytes.NewReader(in), f))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Reader output diverges from Apply oracle")
	}
}

// fakeConn is a net.Conn that records write sizes and bytes.
type fakeConn struct {
	writes []int
	buf    bytes.Buffer
	closed bool
}

func (c *fakeConn) Write(p []byte) (int, error) {
	c.writes = append(c.writes, len(p))
	return c.buf.Write(p)
}
func (c *fakeConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (c *fakeConn) Close() error                     { c.closed = true; return nil }
func (c *fakeConn) LocalAddr() net.Addr              { return nil }
func (c *fakeConn) RemoteAddr() net.Addr             { return nil }
func (c *fakeConn) SetDeadline(time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(time.Time) error { return nil }

// TestConnMatchesApply: the conn wrapper delivers exactly the oracle bytes
// even when the application writes in awkward chunk sizes.
func TestConnMatchesApply(t *testing.T) {
	in := stream(150)
	f := Faults{Seed: 9, SkipLines: 2, CorruptEvery: 11, TruncateEvery: 29}
	var fc fakeConn
	c := Wrap(&fc, f)
	for i := 0; i < len(in); i += 23 {
		end := i + 23
		if end > len(in) {
			end = len(in)
		}
		if _, err := c.Write(in[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if want := Apply(in, f); !bytes.Equal(fc.buf.Bytes(), want) {
		t.Fatal("conn delivery diverges from Apply oracle")
	}
}

// TestConnPartialWrites: every underlying write obeys the torn-write bound.
func TestConnPartialWrites(t *testing.T) {
	in := stream(40)
	var fc fakeConn
	c := Wrap(&fc, Faults{PartialWriteMax: 5})
	if _, err := c.Write(in); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fc.buf.Bytes(), in) {
		t.Fatal("partial writes changed the byte stream")
	}
	for _, w := range fc.writes {
		if w > 5 {
			t.Fatalf("underlying write of %d bytes exceeds PartialWriteMax=5", w)
		}
	}
	if len(fc.writes) <= 41 {
		t.Fatalf("expected torn writes, got %d underlying writes for %d lines", len(fc.writes), 41)
	}
}

// TestConnDrop: the drop fault closes the transport and fails the write,
// and the failure is sticky.
func TestConnDrop(t *testing.T) {
	in := stream(100)
	var fc fakeConn
	c := Wrap(&fc, Faults{SkipLines: 1, DropAfterLines: 20})
	_, err := c.Write(in)
	if err != ErrDrop {
		t.Fatalf("want ErrDrop, got %v", err)
	}
	if !fc.closed {
		t.Error("underlying connection not closed on drop")
	}
	if _, err := c.Write([]byte("1,2,3\n")); err != ErrDrop {
		t.Errorf("drop not sticky: %v", err)
	}
	// Exactly header + 20 data lines were delivered before the cut.
	if want := Apply(in, Faults{SkipLines: 1, DropAfterLines: 20}); !bytes.Equal(fc.buf.Bytes(), want) {
		t.Error("delivered prefix diverges from Apply oracle")
	}
}

// TestConnFailWrites: after the cut-off, writes fail without delivering.
func TestConnFailWrites(t *testing.T) {
	in := stream(30)
	var fc fakeConn
	c := Wrap(&fc, Faults{FailWritesAfterLines: 10})
	_, err := c.Write(in)
	if err != ErrWriteFail {
		t.Fatalf("want ErrWriteFail, got %v", err)
	}
	delivered := bytes.Count(fc.buf.Bytes(), []byte("\n"))
	if delivered != 10 {
		t.Errorf("%d lines delivered before failure, want 10", delivered)
	}
}

// TestStallDelaysDelivery: stalls delay but never damage the stream.
func TestStallDelaysDelivery(t *testing.T) {
	in := stream(10)
	var fc fakeConn
	c := Wrap(&fc, Faults{SkipLines: 1, StallEvery: 5, Stall: time.Millisecond})
	start := time.Now()
	if _, err := c.Write(in); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("two scheduled stalls took only %v", elapsed)
	}
	if !bytes.Equal(fc.buf.Bytes(), in) {
		t.Error("stalls damaged the stream")
	}
}
