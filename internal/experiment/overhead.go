package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// OverheadCell is one bar of the paper's Fig. 12: the normalized execution
// time of an application on a co-located VM while the hypervisor runs a
// detection scheme (1.00 = no overhead).
type OverheadCell struct {
	App        string
	Scheme     Scheme
	Normalized metrics.Distribution
}

// Overhead model constants. The paper attributes the baseline's 3–8%
// overhead to execution throttling (co-located VMs are paused W_R seconds
// out of every L_R) plus the cost of high-frequency sampling and repeated
// KS computations, and SDS's 1–2% to lightweight PCM sampling and O(1)
// statistics. The same decomposition is modelled here; the throttling term
// is exact (W_R/L_R of wall time) and the computation taxes carry
// run-to-run jitter for the error bars.
const (
	pcmSamplingTax  = 0.008 // PCM tool at 100 Hz
	sdsbAnalysisTax = 0.004 // bounds check per window
	sdspAnalysisTax = 0.006 // DFT–ACF every ΔW_P windows
	ksComputeTaxMin = 0.005 // KS tests + sample management
	ksComputeTaxMax = 0.030
	overheadJitter  = 0.003
)

// OverheadRun models one 2·StageSeconds run of an application on a
// co-located VM under the given detection scheme and returns its
// normalized execution time.
func (c Config) OverheadRun(app string, scheme Scheme, run int) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	prof, err := workload.AppProfile(app)
	if err != nil {
		return 0, err
	}
	rng := randx.DeriveString(randx.Derive(c.Seed, uint64(run)).Uint64(), app+"/overhead/"+string(scheme))

	tax := 0.0
	switch scheme {
	case SchemeNone:
		// no detection, no overhead
	case SchemeSDSB:
		tax = pcmSamplingTax + sdsbAnalysisTax
	case SchemeCUSUM, SchemeTimeFrag, SchemeEWMAVar:
		// The zoo detectors keep O(1) state per window (four CUSUM
		// accumulators, a boolean ring, one variance EWMA) on the same
		// PCM sampling path, so they price like the bounds check.
		tax = pcmSamplingTax + sdsbAnalysisTax
	case SchemeSDSP:
		tax = pcmSamplingTax + sdspAnalysisTax
	case SchemeSDS:
		tax = pcmSamplingTax + sdsbAnalysisTax
		if prof.Periodic {
			tax += sdspAnalysisTax
		}
	case SchemeKSTest:
		// Throttling stalls co-located VMs for W_R out of every L_R
		// seconds, on top of the sampling and KS-computation cost.
		tax = c.KSTest.WR/c.KSTest.LR + pcmSamplingTax + rng.Uniform(ksComputeTaxMin, ksComputeTaxMax)
	default:
		return 0, fmt.Errorf("experiment: unknown scheme %q", scheme)
	}
	tax *= prof.OverheadSensitivity
	tax += rng.Normal(0, overheadJitter)
	if tax < 0 {
		tax = 0
	}
	if tax > 0.5 {
		return 0, fmt.Errorf("experiment: implausible overhead %v for %s/%s", tax, app, scheme)
	}

	elapsed := 2 * c.StageSeconds
	progress := elapsed * (1 - tax)
	return metrics.NormalizedExecTime(progress, elapsed)
}

// Overhead reproduces Fig. 12: normalized execution times for every
// application under every applicable detection scheme, without any attack,
// fanned out on the parallel engine; see Config.Parallel.
func (c Config) Overhead(apps []string) ([]OverheadCell, error) {
	if len(apps) == 0 {
		apps = workload.AppNames()
	}
	type cellKey struct {
		app    string
		scheme Scheme
	}
	var keys []cellKey
	for _, app := range apps {
		for _, scheme := range SchemesFor(app) {
			keys = append(keys, cellKey{app, scheme})
		}
	}
	values, err := parallelMap(c.workers(), len(keys)*c.Runs, func(i int) (float64, error) {
		k := keys[i/c.Runs]
		return c.OverheadRun(k.app, k.scheme, i%c.Runs)
	})
	if err != nil {
		return nil, err
	}
	cells := make([]OverheadCell, 0, len(keys))
	for i, k := range keys {
		cells = append(cells, OverheadCell{
			App:        k.app,
			Scheme:     k.scheme,
			Normalized: metrics.Summarize(values[i*c.Runs : (i+1)*c.Runs]),
		})
	}
	return cells, nil
}
