// Package experiment reproduces the paper's measurement study (§3) and
// evaluation (§5): every figure and table has a runner here that assembles
// the workload models, attack schedules and detectors, executes seeded
// closed-loop runs, and reports the same statistics the paper plots.
// EXPERIMENTS.md records how the outputs compare with the published values.
package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// Scheme identifies a detection scheme under evaluation.
type Scheme string

// The schemes of the paper's evaluation (§5.1), plus the detector-zoo
// baselines fielded for the ROC tournament.
const (
	SchemeSDS      Scheme = "SDS"      // combined system
	SchemeSDSB     Scheme = "SDS/B"    // boundary-based alone
	SchemeSDSP     Scheme = "SDS/P"    // period-based alone (periodic apps only)
	SchemeKSTest   Scheme = "KStest"   // baseline of Zhang et al.
	SchemeCUSUM    Scheme = "CUSUM"    // two-sided change-point over EWMA counters
	SchemeTimeFrag Scheme = "TimeFrag" // fragmentation-tolerant windowed density
	SchemeEWMAVar  Scheme = "EWMAVar"  // EWMA-of-variance baseline
	SchemeNone     Scheme = "none"     // no detection (overhead baseline)
)

// Config parameterizes the evaluation harness. Construct with
// DefaultConfig and override fields as needed.
type Config struct {
	// Seed drives every random choice; equal seeds reproduce runs exactly.
	Seed uint64
	// Runs is the number of repetitions per cell (the paper uses 20).
	Runs int
	// Parallel bounds the experiment engine's worker pool: the number of
	// detection runs executed concurrently by Accuracy, Sweep and
	// Overhead. Zero means one worker per available CPU; results are
	// bit-identical at every setting because each run is independently
	// seeded and collected in input order.
	Parallel int
	// ProfileSeconds is the Stage-1 attack-free profiling duration. It
	// must cover enough execution-phase cycles of the slowest application
	// for stable μ/σ estimates (k-means alternates phases every ~2.5 min,
	// so the default is ~33 min of virtual time — cheap in simulation).
	ProfileSeconds float64
	// StageSeconds is the length of each evaluation stage: the run lasts
	// 2·StageSeconds with the attack starting at StageSeconds (the paper
	// uses 300 s + 300 s).
	StageSeconds float64
	// EpochSeconds is the accuracy-scoring epoch length.
	EpochSeconds float64
	// RampMin and RampMax bound the attacker's randomized ramp-up time.
	RampMin, RampMax float64
	// Detect carries the SDS parameters (Table 1).
	Detect detect.Config
	// KSTest carries the baseline parameters.
	KSTest detect.KSTestConfig

	// profiles deduplicates Stage-1 profiling across grid cells that share
	// a (app, seed, parameters) profile. Attached by the grid runners
	// (Accuracy, Sweep); nil means profiles are built per run.
	profiles *profileCache
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Runs:           20,
		ProfileSeconds: 2000,
		StageSeconds:   300,
		EpochSeconds:   30,
		RampMin:        8,
		RampMax:        18,
		Detect:         detect.DefaultConfig(),
		KSTest:         detect.DefaultKSTestConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Runs <= 0:
		return fmt.Errorf("experiment: Runs must be positive, got %d", c.Runs)
	case c.Parallel < 0:
		return fmt.Errorf("experiment: Parallel must be ≥ 0 (0 = all CPUs), got %d", c.Parallel)
	case c.ProfileSeconds <= 0 || c.StageSeconds <= 0 || c.EpochSeconds <= 0:
		return fmt.Errorf("experiment: durations must be positive: %+v", c)
	case c.RampMin < 0 || c.RampMax < c.RampMin:
		return fmt.Errorf("experiment: bad ramp range [%v, %v]", c.RampMin, c.RampMax)
	}
	if err := c.Detect.Validate(); err != nil {
		return err
	}
	return c.KSTest.Validate()
}

// SchemesFor returns the schemes evaluated for an application: the paper's
// set — SDS and KStest everywhere, plus standalone SDS/B and SDS/P for the
// periodic applications (PCA, FaceNet) — extended with the detector-zoo
// baselines (CUSUM, TimeFrag, EWMAVar), which apply to every application.
func SchemesFor(app string) []Scheme {
	prof := workload.MustAppProfile(app)
	if prof.Periodic {
		return []Scheme{SchemeSDS, SchemeSDSB, SchemeSDSP, SchemeKSTest,
			SchemeCUSUM, SchemeTimeFrag, SchemeEWMAVar}
	}
	return []Scheme{SchemeSDS, SchemeKSTest, SchemeCUSUM, SchemeTimeFrag, SchemeEWMAVar}
}

// ThrottleState adapts the KStest throttling callbacks to the telemetry
// environment: while set, co-located VMs (attacker included) are paused.
type ThrottleState struct{ paused bool }

// PauseOthers implements detect.Throttler.
func (f *ThrottleState) PauseOthers() { f.paused = true }

// ResumeOthers implements detect.Throttler.
func (f *ThrottleState) ResumeOthers() { f.paused = false }

// Paused reports whether co-located VMs are currently throttled.
func (f *ThrottleState) Paused() bool { return f.paused }

// buildProfile runs Stage 1: an attack-free profiling pass for the app.
func (c Config) buildProfile(app string, seed uint64) (detect.Profile, error) {
	model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(seed, app+"/profile"))
	if err != nil {
		return detect.Profile{}, err
	}
	tpcm := c.Detect.TPCM
	n := pcm.SampleCount(c.ProfileSeconds, tpcm)
	samples := make([]pcm.Sample, n)
	for i := 0; i < n; i++ {
		a, m := model.Sample(tpcm, workload.Env{})
		samples[i] = pcm.Sample{T: float64(i+1) * tpcm, Access: a, Miss: m}
	}
	return detect.BuildProfile(app, samples, c.Detect)
}

// newDetector constructs the scheme's detector from a Stage-1 profile. The
// returned ThrottleState is non-nil only for KStest.
func (c Config) newDetector(scheme Scheme, prof detect.Profile) (detect.Detector, *ThrottleState, error) {
	switch scheme {
	case SchemeSDS:
		d, err := detect.NewSDS(prof, c.Detect)
		return d, nil, err
	case SchemeSDSB:
		d, err := detect.NewSDSB(prof, c.Detect)
		return d, nil, err
	case SchemeSDSP:
		d, err := detect.NewSDSP(prof, c.Detect)
		return d, nil, err
	case SchemeKSTest:
		flag := &ThrottleState{}
		d, err := detect.NewKSTest(c.KSTest, flag)
		return d, flag, err
	case SchemeCUSUM:
		d, err := detect.NewCUSUM(prof, c.Detect)
		return d, nil, err
	case SchemeTimeFrag:
		d, err := detect.NewTimeFrag(prof, c.Detect)
		return d, nil, err
	case SchemeEWMAVar:
		d, err := detect.NewEWMAVar(prof, c.Detect)
		return d, nil, err
	default:
		return nil, nil, fmt.Errorf("experiment: unknown scheme %q", scheme)
	}
}

// BuildDetector runs Stage-1 profiling for the app and constructs the
// scheme's detector. The returned ThrottleState is never nil; it stays
// false for throttle-free schemes. This is the entry point interactive
// tools use (cmd/sdsmon).
func (c Config) BuildDetector(app string, scheme Scheme, seed uint64) (detect.Profile, detect.Detector, *ThrottleState, error) {
	if err := c.Validate(); err != nil {
		return detect.Profile{}, nil, nil, err
	}
	prof, err := c.buildProfile(app, seed)
	if err != nil {
		return detect.Profile{}, nil, nil, fmt.Errorf("profile %s: %w", app, err)
	}
	det, flag, err := c.newDetector(scheme, prof)
	if err != nil {
		return detect.Profile{}, nil, nil, fmt.Errorf("build %s for %s: %w", scheme, app, err)
	}
	if flag == nil {
		flag = &ThrottleState{}
	}
	return prof, det, flag, nil
}

// DetectionRun executes one closed-loop evaluation run: StageSeconds
// without attack, then StageSeconds under the given attack, with the
// detector observing PCM samples in real time. It returns the epoch-scored
// outcome.
func (c Config) DetectionRun(app string, kind attack.Kind, scheme Scheme, run int) (metrics.Outcome, error) {
	return c.detectionRun(app, kind, scheme, run, nil)
}

// detectionRun is DetectionRun with an optional schedule modifier: mod runs
// after the attack schedule is drawn (and consumes no run randomness, so
// modified runs share the unmodified runs' sample paths exactly) with the
// Stage-1 profile in scope — the evasion grid uses it to attach adaptive
// strategies tuned against the victim's profiled period and the detector's
// window geometry.
func (c Config) detectionRun(app string, kind attack.Kind, scheme Scheme, run int,
	mod func(prof detect.Profile, sched attack.Schedule) (attack.Schedule, error)) (metrics.Outcome, error) {
	if err := c.Validate(); err != nil {
		return metrics.Outcome{}, err
	}
	seed := randx.Derive(c.Seed, uint64(run)).Uint64()
	prof, err := c.cachedProfile(app, seed)
	if err != nil {
		return metrics.Outcome{}, fmt.Errorf("profile %s: %w", app, err)
	}
	det, flag, err := c.newDetector(scheme, prof)
	if err != nil {
		return metrics.Outcome{}, fmt.Errorf("build %s for %s: %w", scheme, app, err)
	}
	if flag == nil {
		flag = &ThrottleState{} // stays false for throttle-free schemes
	}

	runRng := randx.DeriveString(seed, app+"/run")
	model, err := workload.NewModel(workload.MustAppProfile(app), runRng)
	if err != nil {
		return metrics.Outcome{}, err
	}
	sched := attack.Schedule{
		Kind:  kind,
		Start: c.StageSeconds,
		Ramp:  runRng.Uniform(c.RampMin, c.RampMax),
	}
	if mod != nil {
		// By-value in and out: handing mod a *Schedule would make sched
		// escape to the heap on every detection run, modified or not.
		if sched, err = mod(prof, sched); err != nil {
			return metrics.Outcome{}, err
		}
	}

	tpcm := c.Detect.TPCM
	total := 2 * c.StageSeconds
	n := pcm.SampleCount(total, tpcm)
	states := make([]metrics.AlarmState, n)
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		a, m := model.Sample(tpcm, sched.Env(now, flag.paused))
		det.Observe(pcm.Sample{T: now, Access: a, Miss: m})
		states[i] = metrics.AlarmState{T: now, Alarmed: det.Alarmed()}
	}

	scorer := metrics.Scorer{
		RunSeconds:   total,
		AttackStart:  c.StageSeconds,
		EpochSeconds: c.EpochSeconds,
	}
	if kind == attack.None {
		scorer.AttackStart = 0
	}
	return scorer.Score(states)
}
