module github.com/memdos/sds

go 1.22
