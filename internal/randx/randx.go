// Package randx provides deterministic, seedable random utilities for the
// simulator. Every experiment in this repository derives its randomness from
// an explicit seed so that runs are reproducible; no package-level mutable
// RNG state exists.
package randx

import (
	"math"
	"math/rand/v2"
)

// Rand is a deterministic random source with the distribution helpers the
// workload and attack models need. It is not safe for concurrent use; derive
// one per goroutine with Derive.
type Rand struct {
	src *rand.Rand
}

// New returns a Rand seeded from the two seed words.
func New(seed1, seed2 uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed1, seed2))}
}

// Derive returns a new Rand whose stream is a deterministic function of the
// parent seed and the stream labels. It is used to give every run, VM and
// model its own independent substream, so that adding consumers does not
// perturb the draws seen by existing ones.
func Derive(seed uint64, labels ...uint64) *Rand {
	h := splitmix(seed)
	for _, l := range labels {
		h = splitmix(h ^ splitmix(l))
	}
	return New(h, splitmix(h))
}

// DeriveString is Derive with a string label, hashed with FNV-1a.
func DeriveString(seed uint64, label string) *Rand {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return Derive(seed, h)
}

// splitmix is the SplitMix64 finalizer, used only for seed derivation.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// IntN returns a uniform draw in [0, n). n must be positive.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit draw.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a lognormal draw whose underlying normal has the given
// mu and sigma. For sigma=0 it returns exp(mu) exactly.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// NoiseFactor returns a multiplicative noise term with mean 1 and the given
// coefficient of variation, drawn from a lognormal. cv=0 returns exactly 1.
func (r *Rand) NoiseFactor(cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	// For a lognormal with parameters (mu, sigma), mean = exp(mu+sigma^2/2)
	// and cv^2 = exp(sigma^2)-1. Solve for mean 1.
	sigma2 := math.Log(1 + cv*cv)
	return r.LogNormal(-sigma2/2, math.Sqrt(sigma2))
}

// Noise is a precomputed mean-1 multiplicative-noise distribution with a
// fixed coefficient of variation: the lognormal (mu, sigma) parameters are
// solved once at construction, not on every draw as NoiseFactor does. Draws
// are bit-identical to NoiseFactor with the same cv. The zero value draws a
// constant 1.
type Noise struct {
	mu, sigma float64
	active    bool
}

// NewNoise returns the noise distribution for the given coefficient of
// variation. cv <= 0 yields the constant 1.
func NewNoise(cv float64) Noise {
	if cv <= 0 {
		return Noise{}
	}
	// For a lognormal with parameters (mu, sigma), mean = exp(mu+sigma^2/2)
	// and cv^2 = exp(sigma^2)-1. Solve for mean 1.
	sigma2 := math.Log(1 + cv*cv)
	return Noise{mu: -sigma2 / 2, sigma: math.Sqrt(sigma2), active: true}
}

// Factor draws one noise factor from r.
func (n Noise) Factor(r *Rand) float64 {
	if !n.active {
		return 1
	}
	return math.Exp(r.Normal(n.mu, n.sigma))
}

// Exp returns an exponential draw with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }
