// Quickstart: profile an application, attach the combined SDS detector,
// inject a bus-locking attack, and watch the alarm fire.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/memdos/sds"
)

func main() {
	cfg := sds.DefaultConfig() // the paper's Table 1 parameters

	// Stage 1: collect an attack-free profile of the protected VM's
	// application — the provider does this right after VM placement.
	profile, err := sds.CollectProfile(sds.KMeans, 1 /* seed */, 900 /* s */, cfg)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi, err := profile.Bounds(sds.MetricAccess, cfg.K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: AccessNum normal range [%.4g, %.4g]\n", profile.App, lo, hi)

	// Stage 2: attach the combined detector to the live PCM stream.
	detector, err := sds.NewSDS(profile, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the protected VM; a co-located attacker starts a
	// bus-locking attack two minutes in.
	app, err := sds.NewApplication(sds.KMeans, 2)
	if err != nil {
		log.Fatal(err)
	}
	const attackAt = 120.0
	alarms, err := sds.Simulate(app, detector, cfg, sds.SimulateOptions{
		Seconds: 240,
		Attack:  sds.AttackSchedule{Kind: sds.BusLockAttack, Start: attackAt, Ramp: 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, alarm := range alarms {
		fmt.Printf("[%7.2fs] %s alarm on %s: %s\n", alarm.T, alarm.Detector, alarm.Metric, alarm.Reason)
	}
	if len(alarms) == 0 {
		fmt.Println("no alarms raised")
		return
	}
	fmt.Printf("detection delay: %.1f s after the attack began\n", alarms[len(alarms)-1].T-attackAt)
}
