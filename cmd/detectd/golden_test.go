package main

import (
	"bytes"
	"testing"

	"github.com/memdos/sds"
	"github.com/memdos/sds/internal/golden"
)

// TestGoldenAlarmTranscripts pins detectd's alarm output — both the human
// text format and the -json wire format — byte for byte at a fixed seed:
// the same recorded k-means stream (seed 7, bus locking at 150 s) the
// detectd-vs-server equivalence test replays. Drift in detect, signal or
// the session lifecycle changes alarm times or reasons and fails here with
// a line diff; intentional changes regenerate with -update (make goldens).
func TestGoldenAlarmTranscripts(t *testing.T) {
	const (
		seconds        = 160.0
		attackAt       = 100.0
		profileSeconds = 60.0
	)
	t.Run("text", func(t *testing.T) {
		in := recordStream(t, sds.KMeans, seconds, attackAt)
		var out bytes.Buffer
		if err := runDetect(in, &out, "sds", sds.KMeans, profileSeconds, false); err != nil {
			t.Fatal(err)
		}
		golden.Assert(t, "testdata/golden/transcript_sds_text.txt", out.Bytes())
	})
	t.Run("json", func(t *testing.T) {
		in := recordStream(t, sds.KMeans, seconds, attackAt)
		var out bytes.Buffer
		if err := runDetect(in, &out, "sds", sds.KMeans, profileSeconds, true); err != nil {
			t.Fatal(err)
		}
		golden.Assert(t, "testdata/golden/transcript_sds_json.txt", out.Bytes())
	})
	// The KStest baseline takes a different code path (Stage-1 seeded
	// reference); pin its transcript too.
	t.Run("kstest", func(t *testing.T) {
		in := recordStream(t, sds.KMeans, seconds, attackAt)
		var out bytes.Buffer
		if err := runDetect(in, &out, "kstest", sds.KMeans, profileSeconds, true); err != nil {
			t.Fatal(err)
		}
		golden.Assert(t, "testdata/golden/transcript_kstest_json.txt", out.Bytes())
	})
}
