package main

import (
	"os"
	"strings"
	"testing"
)

// TestRunMatchesGolden pins the full fixed-seed CLI output byte for byte
// against a capture taken before the plan/scratch optimisation of the signal
// pipeline (testdata/golden_small.txt, generated with:
//
//	evaluate -fig9 -fig10 -fig11 -fig12 -table1 -ablation \
//	  -runs 2 -apps kmeans,facenet -seed 1 -parallel 0
//
// ). Any numerical drift in the detection pipeline — FFT tables, ACF
// evaluation order, estimator reuse, profile caching — shows up here as a
// table diff.
func TestRunMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced evaluation grid; skipped in -short mode")
	}
	want, err := os.ReadFile("testdata/golden_small.txt")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var got strings.Builder
	if err := run(&got, true, true, true, true, true, true, 2, 1, "kmeans,facenet", 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got.String() != string(want) {
		t.Fatalf("output diverged from golden capture.\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}
}
