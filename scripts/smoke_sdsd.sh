#!/bin/sh
# Smoke-test the sdsd deployment path end to end: build the server and the
# load generator, launch sdsd, replay attacked VM streams at it with
# sdsload, and assert zero sample loss plus at least one alarm per VM
# (sdsload exits non-zero otherwise). Finishes with a SIGTERM drain and an
# ops-surface check.
set -eu

ADDR=${SDSD_ADDR:-127.0.0.1:17031}
OPS=${SDSD_OPS:-127.0.0.1:17032}
VMS=${SDSD_VMS:-8}

tmp=$(mktemp -d)
sdsd_pid=""
cleanup() {
    [ -n "$sdsd_pid" ] && kill "$sdsd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/sdsd" ./cmd/sdsd
go build -o "$tmp/sdsload" ./cmd/sdsload

"$tmp/sdsd" -listen "$ADDR" -ops "$OPS" -profile-seconds 60 2>"$tmp/sdsd.log" &
sdsd_pid=$!

# sdsload retries its connections, so no explicit wait-for-listen is needed.
"$tmp/sdsload" -addr "$ADDR" -vms "$VMS" -seconds 180 -profile-seconds 60 \
    -attack-at 120 -expect-alarms 1 || {
    echo "smoke: sdsload failed; server log:" >&2
    cat "$tmp/sdsd.log" >&2
    exit 1
}

# The ops surface must be healthy and report every stream's samples.
if command -v curl >/dev/null 2>&1; then
    health=$(curl -fs "http://$OPS/healthz")
    [ "$health" = "ok" ] || { echo "smoke: healthz said '$health'" >&2; exit 1; }
    curl -fs "http://$OPS/metricsz" | grep -q '"total_samples": 144000' || {
        echo "smoke: metricsz missing expected sample count" >&2
        curl -fs "http://$OPS/metricsz" >&2
        exit 1
    }
fi

# Graceful drain: SIGTERM must end the process cleanly.
kill -TERM "$sdsd_pid"
wait "$sdsd_pid" || { echo "smoke: sdsd exited non-zero on drain" >&2; cat "$tmp/sdsd.log" >&2; exit 1; }
sdsd_pid=""
grep -q "drained" "$tmp/sdsd.log" || { echo "smoke: no drain log line" >&2; cat "$tmp/sdsd.log" >&2; exit 1; }
echo "smoke: ok"
