package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer launches a Server on a loopback TCP listener and returns it
// with its address; shutdown is handled by test cleanup.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s := New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, l.Addr().String()
}

// doneLine holds the parsed end-of-stream summary a client receives.
type doneLine struct {
	vm                                  string
	samples, monitored, dropped, alarms int
}

// clientResult is everything a test client observed on its connection.
type clientResult struct {
	okLine     string
	alarmLines []string
	errorLines []string
	done       *doneLine
}

// runClient opens a stream connection, sends the handshake and body, half-
// closes the write side, and reads every response line until the server
// closes the connection.
func runClient(t *testing.T, addr, hs string, body []byte) clientResult {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res := readResponses(t, conn, func() {
		if _, err := fmt.Fprintf(conn, "%s\n", hs); err != nil {
			t.Errorf("handshake write: %v", err)
			return
		}
		if _, err := conn.Write(body); err != nil {
			t.Errorf("body write: %v", err)
			return
		}
		conn.(*net.TCPConn).CloseWrite()
	})
	return res
}

// readResponses runs send() while collecting response lines concurrently
// (the server streams alarms inline, so a client must read while writing).
func readResponses(t *testing.T, conn net.Conn, send func()) clientResult {
	t.Helper()
	var res clientResult
	lines := make(chan clientResult, 1)
	go func() {
		var r clientResult
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "ok "):
				r.okLine = line
			case strings.HasPrefix(line, "alarm "):
				r.alarmLines = append(r.alarmLines, strings.TrimPrefix(line, "alarm "))
			case strings.HasPrefix(line, "error: "):
				r.errorLines = append(r.errorLines, line)
			case strings.HasPrefix(line, "done "):
				d := parseDone(t, line)
				r.done = &d
			default:
				t.Errorf("unexpected response line %q", line)
			}
		}
		lines <- r
	}()
	send()
	select {
	case res = <-lines:
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for server responses")
	}
	return res
}

func parseDone(t *testing.T, line string) doneLine {
	t.Helper()
	var d doneLine
	for _, f := range strings.Fields(line)[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("malformed done field %q in %q", f, line)
		}
		switch key {
		case "vm":
			d.vm = val
		default:
			n, err := strconv.Atoi(val)
			if err != nil {
				t.Fatalf("bad done field %q: %v", f, err)
			}
			switch key {
			case "samples":
				d.samples = n
			case "monitored":
				d.monitored = n
			case "dropped":
				d.dropped = n
			case "alarms":
				d.alarms = n
			}
		}
	}
	return d
}

// synthCSV renders samples [from, to) as a feed CSV body (with header).
func synthCSV(from, to int, tpcm, base float64) []byte {
	var b bytes.Buffer
	b.WriteString("t,access,miss\n")
	for i := from; i < to; i++ {
		s := synthSample(i, tpcm, base)
		fmt.Fprintf(&b, "%g,%g,%g\n", s.T, s.Access, s.Miss)
	}
	return b.Bytes()
}

// TestServerManyConcurrentStreams is the scale acceptance test: 32 VM
// streams at once, every sample accounted for, none lost. Run under -race
// in CI, it also proves the fleet/session locking.
func TestServerManyConcurrentStreams(t *testing.T) {
	const (
		vms     = 32
		tpcm    = 0.01
		total   = 4000 // 20 s profile + 20 s monitored per VM
		profile = 20.0
	)
	s, addr := startServer(t, Options{ProfileSeconds: profile, BufferSamples: 64})
	var wg sync.WaitGroup
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hs := fmt.Sprintf("sds/1 vm=race-%02d profile=%g", i, profile)
			res := runClient(t, addr, hs, synthCSV(0, total, tpcm, 100))
			if len(res.errorLines) > 0 {
				t.Errorf("vm %d: server errors: %v", i, res.errorLines)
			}
			if res.done == nil {
				t.Errorf("vm %d: no done line", i)
				return
			}
			if res.done.samples != total {
				t.Errorf("vm %d: server ingested %d of %d samples", i, res.done.samples, total)
			}
			if res.done.dropped != 0 {
				t.Errorf("vm %d: %d samples dropped", i, res.done.dropped)
			}
		}(i)
	}
	wg.Wait()
	m := s.Metrics()
	if m.TotalSamples != vms*total {
		t.Errorf("aggregate samples = %d, want %d", m.TotalSamples, vms*total)
	}
	if m.ActiveVMs != 0 {
		t.Errorf("%d VMs still active after all streams closed", m.ActiveVMs)
	}
	if len(m.VMs) != vms {
		t.Errorf("metrics report %d VMs, want %d", len(m.VMs), vms)
	}
}

// TestServerAlarmsOnAttackedStream: an attacked recorded stream produces
// alarm lines on the wire and alarm state in the ops surface.
func TestServerAlarmsOnAttackedStream(t *testing.T) {
	var stream bytes.Buffer
	n, err := WriteSimulatedStream(&stream, ReplaySpec{
		App: "kmeans", Seconds: 160, AttackAt: 100, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, Options{})
	res := runClient(t, addr, "sds/1 vm=victim app=kmeans scheme=sds profile=60", stream.Bytes())
	if len(res.errorLines) > 0 {
		t.Fatalf("server errors: %v", res.errorLines)
	}
	if res.done == nil || res.done.samples != n {
		t.Fatalf("done = %+v, want %d samples", res.done, n)
	}
	if len(res.alarmLines) == 0 {
		t.Fatal("no alarm lines for an attacked stream")
	}
	var ev AlarmEvent
	if err := json.Unmarshal([]byte(res.alarmLines[0]), &ev); err != nil {
		t.Fatalf("alarm line is not JSON: %v", err)
	}
	if ev.T <= 100 || ev.Detector == "" || ev.Reason == "" {
		t.Fatalf("implausible alarm event %+v", ev)
	}
	if res.done.alarms != len(res.alarmLines) {
		t.Errorf("done reports %d alarms, wire carried %d", res.done.alarms, len(res.alarmLines))
	}
	m := s.Metrics()
	if m.TotalAlarms == 0 {
		t.Error("ops surface reports zero alarms")
	}
}

// TestServerZooSchemesAlarmOnAttackedStream runs the detector-zoo schemes
// end to end over the wire: handshake with scheme=cusum/timefrag/ewmavar,
// stream an attacked telemetry replay, and require a structurally valid
// alarm after the attack onset plus a clean done line.
func TestServerZooSchemesAlarmOnAttackedStream(t *testing.T) {
	// k-means shifts its mean ±10% every ~150 s; the zoo detectors need a
	// profile spanning several phases (the experiment pipeline profiles
	// 2000 s) or the first post-profile phase change reads as an attack.
	// 500 s covers ≥3 phases.
	const profileSec = 500
	cases := []struct {
		scheme            string
		seconds, attackAt float64
	}{
		{scheme: "cusum", seconds: profileSec + 120, attackAt: profileSec + 60},
		{scheme: "timefrag", seconds: profileSec + 120, attackAt: profileSec + 60},
		// EWMAVar self-calibrates for ~82 s of window cadence after the
		// profile stage (variance burn-in plus Welford calibration) before
		// it can alarm, so its attack starts later in a longer stream.
		{scheme: "ewmavar", seconds: profileSec + 180, attackAt: profileSec + 120},
	}
	s, addr := startServer(t, Options{})
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			var stream bytes.Buffer
			n, err := WriteSimulatedStream(&stream, ReplaySpec{
				App: "kmeans", Seconds: tc.seconds, AttackAt: tc.attackAt, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			hs := fmt.Sprintf("sds/1 vm=zoo-%s app=kmeans scheme=%s profile=%d", tc.scheme, tc.scheme, profileSec)
			res := runClient(t, addr, hs, stream.Bytes())
			if len(res.errorLines) > 0 {
				t.Fatalf("server errors: %v", res.errorLines)
			}
			if res.done == nil || res.done.samples != n {
				t.Fatalf("done = %+v, want %d samples", res.done, n)
			}
			if len(res.alarmLines) == 0 {
				t.Fatal("no alarm lines for an attacked stream")
			}
			// A 60 s profile of a phased app leaves the zoo detectors
			// prone to pre-onset false alarms at their default knobs (the
			// ROC tournament quantifies exactly that), so the wire test
			// requires a well-formed alarm during the attack rather than
			// a silent pre-onset stage.
			inAttack := false
			for _, line := range res.alarmLines {
				var ev AlarmEvent
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("alarm line is not JSON: %v", err)
				}
				if ev.Detector == "" || ev.Reason == "" || ev.T <= 0 {
					t.Fatalf("implausible alarm event %+v", ev)
				}
				if ev.T > tc.attackAt {
					inAttack = true
				}
			}
			if !inAttack {
				t.Fatalf("no alarm after the %v s attack onset: %v", tc.attackAt, res.alarmLines)
			}
			if res.done.alarms != len(res.alarmLines) {
				t.Errorf("done reports %d alarms, wire carried %d", res.done.alarms, len(res.alarmLines))
			}
		})
	}
	if m := s.Metrics(); m.TotalAlarms == 0 {
		t.Error("ops surface reports zero alarms")
	}
}

// TestServerGracefulDrain: samples accepted before Shutdown are all
// processed — the drain leaves no buffered sample behind.
func TestServerGracefulDrain(t *testing.T) {
	const (
		tpcm  = 0.01
		total = 2500 // 20 s profile + 5 s monitored
	)
	s, addr := startServer(t, Options{ProfileSeconds: 20, BufferSamples: 8})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	res := readResponses(t, conn, func() {
		fmt.Fprintf(conn, "sds/1 vm=drain profile=20\n")
		if _, err := conn.Write(synthCSV(0, total, tpcm, 100)); err != nil {
			t.Errorf("body write: %v", err)
			return
		}
		// Do NOT close the write side: the stream is mid-flight when the
		// server shuts down. Wait until everything sent has been
		// processed, then drain.
		deadline := time.Now().Add(10 * time.Second)
		for s.Metrics().TotalSamples < total {
			if time.Now().After(deadline) {
				t.Errorf("server processed %d of %d samples before drain", s.Metrics().TotalSamples, total)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	if res.done == nil {
		t.Fatal("no done line after drain")
	}
	if res.done.samples != total {
		t.Errorf("drained stream accounted %d of %d samples", res.done.samples, total)
	}
}

// TestServerHandshakeErrors: malformed handshakes and duplicate VMs are
// rejected with error lines, not crashes.
func TestServerHandshakeErrors(t *testing.T) {
	_, addr := startServer(t, Options{ProfileSeconds: 20})
	for _, tt := range []struct {
		name, hs string
	}{
		{"bad magic", "nope vm=a"},
		{"missing vm", "sds/1 app=kmeans"},
		{"bad profile", "sds/1 vm=a profile=-3"},
		{"unknown field", "sds/1 vm=a color=red"},
		{"bad scheme", "sds/1 vm=a scheme=bogus"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			res := runClient(t, addr, tt.hs, nil)
			if len(res.errorLines) == 0 {
				t.Errorf("handshake %q accepted", tt.hs)
			}
		})
	}

	t.Run("duplicate vm", func(t *testing.T) {
		first, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer first.Close()
		fmt.Fprintf(first, "sds/1 vm=dup profile=20\n")
		// Make sure the first stream is registered before racing the
		// second connection against it.
		okLine := bufio.NewScanner(first)
		if !okLine.Scan() || !strings.HasPrefix(okLine.Text(), "ok ") {
			t.Fatalf("first stream not accepted: %q", okLine.Text())
		}
		res := runClient(t, addr, "sds/1 vm=dup profile=20", nil)
		if len(res.errorLines) == 0 {
			t.Error("duplicate active vm accepted")
		}
	})
}

// TestServerOpsSurface: /healthz flips to 503 on drain; /metricsz reports
// per-VM state.
func TestServerOpsSurface(t *testing.T) {
	s, addr := startServer(t, Options{ProfileSeconds: 20})
	res := runClient(t, addr, "sds/1 vm=web-1 app=kmeans profile=20", synthCSV(0, 2200, 0.01, 100))
	if res.done == nil || res.done.samples != 2200 {
		t.Fatalf("stream not ingested: %+v", res.done)
	}

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "ok") {
		t.Errorf("healthz = %d %q", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metricsz", nil))
	var m Metrics
	if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
		t.Fatalf("metricsz is not JSON: %v\n%s", err, rr.Body.String())
	}
	vm, ok := m.VMs["web-1"]
	if !ok {
		t.Fatalf("metricsz lacks vm web-1: %+v", m)
	}
	if vm.App != "kmeans" || vm.Scheme != "sds" || vm.Connected || vm.Profiling {
		t.Errorf("vm metrics = %+v", vm)
	}
	if got := vm.ProfileSamples + int(vm.Monitored); got != 2200 {
		t.Errorf("vm ingested %d, want 2200", got)
	}
	if m.TotalSamples != 2200 || m.SamplesPerSecond <= 0 {
		t.Errorf("aggregate = %+v", m)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 503 {
		t.Errorf("healthz after drain = %d, want 503", rr.Code)
	}
}

// TestServerInProcessStream: the in-process API runs the same lifecycle
// without a socket.
func TestServerInProcessStream(t *testing.T) {
	s := New(Options{ProfileSeconds: 20})
	st, err := s.OpenStream(StreamSpec{VM: "local-1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenStream(StreamSpec{VM: "local-1"}); err == nil {
		t.Error("duplicate in-process vm accepted")
	}
	for i := 0; i < 2500; i++ {
		if err := st.Observe(synthSample(i, 0.01, 100)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ingested() != 2500 {
		t.Errorf("ingested %d, want 2500", stats.Ingested())
	}
	if s.Metrics().TotalSamples != 2500 {
		t.Errorf("aggregate %d, want 2500", s.Metrics().TotalSamples)
	}
	// The slot frees on close: the VM can stream again.
	if _, err := s.OpenStream(StreamSpec{VM: "local-1"}); err != nil {
		t.Errorf("reopen after close: %v", err)
	}
}

// TestServerUnixSocket: the same protocol works over a unix socket.
func TestServerUnixSocket(t *testing.T) {
	dir := t.TempDir()
	sock := dir + "/sds.sock"
	s := New(Options{ProfileSeconds: 20})
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res := readResponses(t, conn, func() {
		fmt.Fprintf(conn, "sds/1 vm=ux profile=20\n")
		conn.Write(synthCSV(0, 2200, 0.01, 100))
		conn.(*net.UnixConn).CloseWrite()
	})
	if res.done == nil || res.done.samples != 2200 {
		t.Fatalf("unix stream done = %+v", res.done)
	}
}

// TestParseHandshake covers the wire-format grammar directly.
func TestParseHandshake(t *testing.T) {
	h, err := parseHandshake("sds/1 vm=web-1 app=facenet scheme=sdsp profile=300")
	if err != nil {
		t.Fatal(err)
	}
	if h.vm != "web-1" || h.app != "facenet" || h.scheme != "sdsp" || h.profileSeconds != 300 {
		t.Errorf("handshake = %+v", h)
	}
	if _, err := parseHandshake("sds/1 vm=a"); err != nil {
		t.Errorf("minimal handshake rejected: %v", err)
	}
	for _, bad := range []string{
		"", "sds/2 vm=a", "sds/1", "sds/1 vm=", "sds/1 profile=10",
		"sds/1 vm=a profile=zero", "sds/1 vm=a extra",
	} {
		if _, err := parseHandshake(bad); err == nil {
			t.Errorf("handshake %q accepted", bad)
		}
	}
}
