package cloudsim

import (
	"math"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// blockModel is the closed-form telemetry generator of FidelityWindow: one
// step produces the mean of a ΔW-sample block of (AccessNum, MissNum)
// counters with the same per-block distribution the per-sample
// workload.Model induces, at a fraction of the draws.
//
//   - The phase level is integrated exactly over the block (renewal walk of
//     the two-level process, time-weighted).
//   - The periodic waveform is integrated in closed form over the block's
//     cycle span, with the same work-term period stretch under attack and
//     the same OU phase noise (stepped once per block).
//   - Bursts trigger with the per-block probability BurstProb·Δt and
//     contribute their time overlap with the block.
//   - Sampling noise enters once per counter per block as the CLT image of
//     ΔW iid mean-1 lognormal factors: Normal(1, cv/√ΔW). Consecutive
//     moving-average windows share ΔW-blocks through the caller's ring, so
//     the MA series keeps the overlap correlation of the exact pipeline.
//
// Attack responses use the block-mean intensities (the schedules are
// piecewise linear, so their interval means are exact): AccessNum shrinks
// by BusLockDrop·Ī_bus, MissNum inflates by CleanseMissGain·Ī_cleanse, and
// the period stretches by PeriodStretch·max(Ī).
type blockModel struct {
	prof workload.Profile
	rng  *randx.Rand

	dt  float64 // block duration, seconds
	sdA float64 // CLT std of the block-mean access noise factor
	sdM float64

	t          float64
	phaseHigh  bool
	phaseUntil float64
	burstUntil float64
	burstSign  float64
	cyclePos   float64
	phaseNoise float64
	ouDecay    float64
	ouSigma    float64
}

// newBlockModel returns a block generator for the profile, drawing from rng.
// samplesPerBlock is ΔW; blockSeconds is ΔW·T_PCM.
func newBlockModel(prof workload.Profile, rng *randx.Rand, blockSeconds float64, samplesPerBlock int) *blockModel {
	m := &blockModel{prof: prof, rng: rng, dt: blockSeconds}
	sqrtK := math.Sqrt(float64(samplesPerBlock))
	m.sdA = prof.AccessCV / sqrtK
	m.sdM = prof.MissCV / sqrtK
	if prof.PhaseDelta > 0 {
		m.phaseHigh = rng.Bool(0.5)
		m.phaseUntil = m.phaseDuration()
	}
	if prof.Periodic {
		m.cyclePos = rng.Float64()
		if prof.PeriodJitter > 0 {
			m.phaseNoise = rng.Normal(0, prof.PeriodJitter)
			const tau = 10.0 // same OU relaxation as workload.Model
			m.ouDecay = math.Exp(-blockSeconds / tau)
			m.ouSigma = prof.PeriodJitter * math.Sqrt(1-m.ouDecay*m.ouDecay)
		}
	}
	return m
}

// phaseDuration draws the next phase length with the model's bounded
// renewal distribution.
func (m *blockModel) phaseDuration() float64 {
	return m.prof.MeanPhaseDur * m.rng.Uniform(0.5, 1.5)
}

// step advances one block under the given block-mean attack intensities and
// returns the block-mean counters.
func (m *blockModel) step(bus, cleanse float64) (access, miss float64) {
	p := &m.prof
	t0 := m.t
	m.t += m.dt

	level := 1.0
	if p.PhaseDelta > 0 {
		level = m.levelOver(t0, m.t)
	}

	wave := 0.0
	if p.Periodic {
		intensity := bus
		if cleanse > intensity {
			intensity = cleanse
		}
		period := p.PeriodSec * (1 + p.PeriodStretch*intensity)
		span := m.dt / period
		pos := m.cyclePos + m.phaseNoise
		m.cyclePos += span
		m.cyclePos -= math.Floor(m.cyclePos)
		if p.PeriodJitter > 0 {
			m.phaseNoise = m.phaseNoise*m.ouDecay + m.rng.Normal(0, m.ouSigma)
		}
		wave = p.PeriodAmp * waveMean(pos, span)
	}

	burst := m.burstOver(t0, m.t)

	access = p.BaseAccess * (level + wave + burst)
	if m.sdA > 0 {
		access *= 1 + m.rng.Normal(0, m.sdA)
	}
	if bus > 0 {
		access *= 1 - p.BusLockDrop*bus
	}
	if access < 0 {
		access = 0
	}
	miss = access * p.MissRatio
	if m.sdM > 0 {
		miss *= 1 + m.rng.Normal(0, m.sdM)
	}
	if cleanse > 0 {
		miss *= 1 + p.CleanseMissGain*cleanse
	}
	if miss < 0 {
		miss = 0
	}
	if miss > access {
		miss = access
	}
	return access, miss
}

// levelOver integrates the two-level phase process over [t0, t1] and
// returns its time-weighted mean, walking the renewal chain as it goes.
func (m *blockModel) levelOver(t0, t1 float64) float64 {
	p := &m.prof
	acc := 0.0
	cur := t0
	for {
		end := t1
		if m.phaseUntil < end {
			end = m.phaseUntil
		}
		lv := 1 - p.PhaseDelta
		if m.phaseHigh {
			lv = 1 + p.PhaseDelta
		}
		acc += lv * (end - cur)
		cur = end
		if cur >= t1 {
			return acc / (t1 - t0)
		}
		m.phaseHigh = !m.phaseHigh
		m.phaseUntil += m.phaseDuration()
	}
}

// burstOver triggers and integrates rare out-of-profile bursts over the
// block, returning their mean contribution.
func (m *blockModel) burstOver(t0, t1 float64) float64 {
	p := &m.prof
	if p.BurstProb <= 0 {
		return 0
	}
	if t0 >= m.burstUntil && m.rng.Bool(p.BurstProb*(t1-t0)) {
		m.burstUntil = t0 + p.BurstDur
		m.burstSign = 1
		if m.rng.Bool(0.5) {
			m.burstSign = -1
		}
	}
	if m.burstUntil <= t0 {
		return 0
	}
	overlap := math.Min(m.burstUntil, t1) - t0
	return m.burstSign * p.BurstMag * overlap / (t1 - t0)
}

// waveMean returns the mean of the model's two-harmonic waveform
// 0.8·sin(2πx) + 0.2·sin(4πx+1) over cycle positions [pos, pos+span].
func waveMean(pos, span float64) float64 {
	if span < 1e-12 {
		a := 2 * math.Pi * pos
		return 0.8*math.Sin(a) + 0.2*math.Sin(2*a+1)
	}
	a0 := 2 * math.Pi * pos
	a1 := 2 * math.Pi * (pos + span)
	first := 0.8 * (math.Cos(a0) - math.Cos(a1)) / (2 * math.Pi)
	second := 0.2 * (math.Cos(2*a0+1) - math.Cos(2*a1+1)) / (4 * math.Pi)
	return (first + second) / span
}

// meanIntensity returns the exact mean of a schedule's intensity over
// [a, b]. Strategy-modulated or peak-scaled schedules integrate through the
// shared Schedule.MeanIntensity composition; the steady trapezoid stays
// inlined here on a pointer receiver — it runs once per VM per block step,
// where the schedule copy and the composition's strategy branches are
// measurable (BenchmarkBlockModelStep gates this path).
func meanIntensity(s *attack.Schedule, a, b float64) float64 {
	if s.Strategy != nil || s.Peak != 0 {
		return s.MeanIntensity(a, b)
	}
	if s.Kind == attack.None || b <= a {
		return 0
	}
	stop := s.Stop
	if stop <= 0 {
		stop = math.Inf(1)
	}
	lo := math.Max(a, s.Start)
	hi := math.Min(b, stop)
	if hi <= lo {
		return 0
	}
	var area float64
	if s.Ramp > 0 {
		if rampEnd := s.Start + s.Ramp; lo < rampEnd {
			re := math.Min(hi, rampEnd)
			i0 := (lo - s.Start) / s.Ramp
			i1 := (re - s.Start) / s.Ramp
			area += (i0 + i1) / 2 * (re - lo)
			lo = re
		}
	}
	if hi > lo {
		area += hi - lo
	}
	return area / (b - a)
}
