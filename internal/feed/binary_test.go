package feed

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
)

func genBinSamples(n int, seed uint64) []pcm.Sample {
	r := randx.New(seed, 0xb1)
	out := make([]pcm.Sample, n)
	for i := range out {
		out[i] = pcm.Sample{
			T:      float64(i+1) * 0.01,
			Access: float64(r.IntN(1 << 20)),
			Miss:   float64(r.IntN(1 << 16)),
		}
	}
	return out
}

func TestBinRoundTrip(t *testing.T) {
	want := genBinSamples(3000, 1) // spans several frames at MaxFrameSamples
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	if err := w.WriteBatch(want); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	got, q, err := NewBinReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Fatalf("%d samples quarantined from a clean stream", q)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip lost samples: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestBinSingleSampleWrites(t *testing.T) {
	want := genBinSamples(50, 2)
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	for _, s := range want {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	r := NewBinReader(&buf)
	got, _, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames() != len(want) {
		t.Fatalf("Frames() = %d, want one frame per Write (%d)", r.Frames(), len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
}

// TestBinRoundTripProperty: any finite sample round-trips bit-exactly
// through the 24-byte record encoding (float64 bits are copied verbatim).
func TestBinRoundTripProperty(t *testing.T) {
	f := func(tBits, aBits, mBits uint64) bool {
		s := pcm.Sample{
			T:      math.Float64frombits(tBits),
			Access: math.Float64frombits(aBits),
			Miss:   math.Float64frombits(mBits),
		}
		if nonFinite(s.T) || nonFinite(s.Access) || nonFinite(s.Miss) {
			return true // quarantined, covered separately
		}
		var buf bytes.Buffer
		w := NewBinWriter(&buf)
		if w.WriteBatch([]pcm.Sample{s}) != nil || w.End() != nil {
			return false
		}
		got, q, err := NewBinReader(&buf).ReadAll()
		return err == nil && q == 0 && len(got) == 1 &&
			math.Float64bits(got[0].T) == tBits &&
			math.Float64bits(got[0].Access) == aBits &&
			math.Float64bits(got[0].Miss) == mBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestBinQuarantinesNonFinite: non-finite samples are compacted out and
// counted, the surrounding frame survives — the binary twin of the CSV
// NaN-line quarantine.
func TestBinQuarantinesNonFinite(t *testing.T) {
	batch := []pcm.Sample{
		{T: 0.01, Access: 100, Miss: 10},
		{T: math.NaN(), Access: 100, Miss: 10},
		{T: 0.03, Access: math.Inf(1), Miss: 10},
		{T: 0.04, Access: 100, Miss: math.Inf(-1)},
		{T: 0.05, Access: 110, Miss: 11},
	}
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	if err := w.WriteBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	got, q, err := NewBinReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 {
		t.Errorf("quarantined %d samples, want 3", q)
	}
	if len(got) != 2 || got[0].T != 0.01 || got[1].T != 0.05 {
		t.Errorf("surviving samples = %+v", got)
	}
}

func TestBinFramingErrorsAreFatal(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		w := NewBinWriter(&buf)
		w.WriteBatch(genBinSamples(2, 3))
		w.Flush()
		return buf.Bytes()
	}()
	tests := []struct {
		name string
		data []byte
		want string
	}{
		{"unknown frame type", []byte{0x7f, 0x01, 0x00}, "unknown frame type"},
		{"zero count", []byte{frameSamples, 0x00, 0x00}, "bad sample count"},
		{"count beyond cap", []byte{frameSamples, 0xff, 0xff}, "bad sample count"},
		{"truncated header", []byte{frameSamples, 0x01}, "truncated header"},
		{"truncated payload", valid[:len(valid)-5], "truncated payload"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := NewBinReader(bytes.NewReader(tt.data)).ReadAll()
			if err == nil {
				t.Fatal("malformed frame stream decoded without error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %v, want %q", err, tt.want)
			}
			if !strings.Contains(err.Error(), "feed: frame") {
				t.Fatalf("error %v lacks the frame position prefix", err)
			}
		})
	}
}

func TestBinCleanEOFWithoutEndFrame(t *testing.T) {
	// A transport that closes at a frame boundary (CSV streams do the
	// same) is a clean end of stream.
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	w.WriteBatch(genBinSamples(10, 4))
	w.Flush() // no End()
	got, _, err := NewBinReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d samples, want 10", len(got))
	}
}

func TestBinReadAfterEnd(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	w.WriteBatch(genBinSamples(1, 5))
	w.End()
	w.WriteBatch(genBinSamples(1, 6)) // trailing junk after the end frame
	w.Flush()
	r := NewBinReader(&buf)
	if _, _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if n, _, err := r.ReadFrame(make([]pcm.Sample, 0, MaxFrameSamples)); n != 0 || err != io.EOF {
		t.Fatalf("read past end frame returned (%d, %v), want (0, EOF)", n, err)
	}
}

// TestBinCSVEquivalence: the two encodings are carriers for the same
// samples — a stream written as CSV text and one written as binary frames
// decode to identical sample sequences.
func TestBinCSVEquivalence(t *testing.T) {
	samples := genBinSamples(2500, 7)

	var csvBuf bytes.Buffer
	cw := NewWriter(&csvBuf)
	for _, s := range samples {
		if err := cw.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	var binBuf bytes.Buffer
	bw := NewBinWriter(&binBuf)
	if err := bw.WriteBatch(samples); err != nil {
		t.Fatal(err)
	}
	if err := bw.End(); err != nil {
		t.Fatal(err)
	}
	fromBin, _, err := NewBinReader(&binBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	if len(fromCSV) != len(fromBin) {
		t.Fatalf("CSV decoded %d samples, binary %d", len(fromCSV), len(fromBin))
	}
	for i := range fromCSV {
		if fromCSV[i] != fromBin[i] {
			t.Fatalf("sample %d differs across encodings: csv %+v, bin %+v", i, fromCSV[i], fromBin[i])
		}
	}
}

// TestBinReadFrameZeroAlloc pins the steady-state decode path at zero
// allocations per frame — the property the 10k-stream ingest plane rests
// on (alloc_test.go-style, mirroring the detector Observe contract).
func TestBinReadFrameZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	const frames = 200
	for i := 0; i < frames; i++ {
		if err := w.WriteBatch(genBinSamples(MaxFrameSamples, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	r := NewBinReader(bytes.NewReader(buf.Bytes()))
	dst := make([]pcm.Sample, 0, MaxFrameSamples)
	// Warm: first frame may grow nothing, but keep symmetry with the
	// detector alloc tests.
	if _, _, err := r.ReadFrame(dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(frames-2, func() {
		if _, _, err := r.ReadFrame(dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("BinReader.ReadFrame: %.2f allocs/op in steady state, want 0", allocs)
	}
}

func BenchmarkBinReadFrame(b *testing.B) {
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	batch := genBinSamples(MaxFrameSamples, 9)
	if err := w.WriteBatch(batch); err != nil {
		b.Fatal(err)
	}
	w.Flush()
	frame := buf.Bytes()
	data := bytes.Repeat(frame, 64)
	dst := make([]pcm.Sample, 0, MaxFrameSamples)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	r := NewBinReader(bytes.NewReader(data))
	for i := 0; i < b.N; i++ {
		_, _, err := r.ReadFrame(dst)
		if err == io.EOF {
			b.StopTimer()
			r = NewBinReader(bytes.NewReader(data))
			b.StartTimer()
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(MaxFrameSamples), "samples/frame")
}

// BenchmarkCSVReadSample is the text-protocol baseline BenchmarkBinReadFrame
// is compared against (per-sample cost; one binary frame carries
// MaxFrameSamples of these).
func BenchmarkCSVReadSample(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, s := range genBinSamples(10000, 10) {
		if err := w.Write(s); err != nil {
			b.Fatal(err)
		}
	}
	w.Flush()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(bytes.NewReader(data))
	for i := 0; i < b.N; i++ {
		_, err := r.Next()
		if err == io.EOF {
			b.StopTimer()
			r = NewReader(bytes.NewReader(data))
			b.StartTimer()
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
