// Package metrics scores detection runs the way the paper's evaluation
// (§5.2) does: recall (ability to detect a present attack), specificity
// (ability to stay quiet without one), detection delay, and the normalized
// execution-time overhead of running a detection scheme at all.
//
// Accuracy is scored over fixed-length epochs: each run has an attack-free
// stage and an attack stage; every epoch is labelled by whether the attack
// was active in it and predicted by whether the detector's alarm was active
// at any point inside it. Recall and specificity are then standard
// confusion-matrix ratios, which is what gives the paper its percentage
// values per run.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// AlarmState is one (time, alarmed) observation of a detector's state.
type AlarmState struct {
	T       float64
	Alarmed bool
}

// Outcome is the scored result of one run.
type Outcome struct {
	// TP, FP, TN, FN are epoch counts.
	TP, FP, TN, FN int
	// Recall = TP / (TP+FN); 1 when there were no positive epochs.
	Recall float64
	// Specificity = TN / (TN+FP); 1 when there were no negative epochs.
	Specificity float64
	// Delay is the seconds from attack start to the first alarm *onset*
	// (rising edge) at or after it — an alarm that was already falsely
	// active when the attack began does not count as instant detection.
	// Negative when no onset occurred during the attack (either the attack
	// was missed, or a pre-existing alarm latched across it; distinguish
	// with Detected).
	Delay float64
	// Detected reports whether the alarm was active at any point while the
	// attack ran.
	Detected bool
}

// Scorer configures epoch-based scoring.
type Scorer struct {
	// RunSeconds is the total run duration.
	RunSeconds float64
	// AttackStart is when the attack begins (attack runs to the end).
	// Zero means the run has no attack (all epochs negative).
	AttackStart float64
	// EpochSeconds is the scoring epoch length (the paper's L_R-sized 30 s
	// works well; it must divide the stage lengths sensibly).
	EpochSeconds float64
}

// Validate reports configuration errors.
func (s Scorer) Validate() error {
	if s.RunSeconds <= 0 || s.EpochSeconds <= 0 {
		return fmt.Errorf("metrics: durations must be positive: %+v", s)
	}
	if s.AttackStart < 0 || s.AttackStart > s.RunSeconds {
		return fmt.Errorf("metrics: attack start %v outside run of %v s", s.AttackStart, s.RunSeconds)
	}
	if s.EpochSeconds > s.RunSeconds {
		return fmt.Errorf("metrics: epoch %v s longer than run %v s", s.EpochSeconds, s.RunSeconds)
	}
	return nil
}

// Score evaluates a time-ordered alarm-state trace. states must cover the
// run; gaps count as "not alarmed".
func (s Scorer) Score(states []AlarmState) (Outcome, error) {
	if err := s.Validate(); err != nil {
		return Outcome{}, err
	}
	for i := 1; i < len(states); i++ {
		if states[i].T < states[i-1].T {
			return Outcome{}, fmt.Errorf("metrics: alarm states out of order at %d (%v after %v)",
				i, states[i].T, states[i-1].T)
		}
	}

	nEpochs := int(math.Ceil(s.RunSeconds/s.EpochSeconds - 1e-9))
	alarmInEpoch := make([]bool, nEpochs)
	for _, st := range states {
		if !st.Alarmed {
			continue
		}
		e := int(st.T / s.EpochSeconds)
		if e >= 0 && e < nEpochs {
			alarmInEpoch[e] = true
		}
	}

	hasAttack := s.AttackStart > 0 && s.AttackStart < s.RunSeconds
	var out Outcome
	out.Delay = -1
	for e := 0; e < nEpochs; e++ {
		epochEnd := float64(e+1) * s.EpochSeconds
		positive := hasAttack && epochEnd > s.AttackStart
		switch {
		case positive && alarmInEpoch[e]:
			out.TP++
		case positive && !alarmInEpoch[e]:
			out.FN++
		case !positive && alarmInEpoch[e]:
			out.FP++
		default:
			out.TN++
		}
	}
	out.Recall = ratioOrOne(out.TP, out.TP+out.FN)
	out.Specificity = ratioOrOne(out.TN, out.TN+out.FP)

	if hasAttack {
		prevAlarmed := false
		for i, st := range states {
			if st.Alarmed && st.T >= s.AttackStart {
				out.Detected = true
				rising := i == 0 || !prevAlarmed
				if rising {
					out.Delay = st.T - s.AttackStart
					break
				}
			}
			prevAlarmed = st.Alarmed
		}
	}
	return out, nil
}

func ratioOrOne(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// Distribution summarizes per-run values across repeated runs the way the
// paper reports them: median with 10th/90th percentile error bars.
type Distribution struct {
	N                int
	Median, P10, P90 float64
}

// Summarize builds a Distribution (zero value for empty input).
func Summarize(values []float64) Distribution {
	if len(values) == 0 {
		return Distribution{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return Distribution{
		N:      len(values),
		Median: percentile(sorted, 50),
		P10:    percentile(sorted, 10),
		P90:    percentile(sorted, 90),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// NormalizedExecTime converts achieved progress over elapsed virtual time
// into the paper's Fig. 12 metric: execution time normalized to the
// no-detection case (≥ 1; 1.02 means 2% overhead).
func NormalizedExecTime(progress, elapsed float64) (float64, error) {
	if progress <= 0 || elapsed <= 0 {
		return 0, fmt.Errorf("metrics: progress and elapsed must be positive (%v, %v)", progress, elapsed)
	}
	if progress > elapsed*(1+1e-9) {
		return 0, fmt.Errorf("metrics: progress %v exceeds elapsed %v", progress, elapsed)
	}
	return elapsed / progress, nil
}
