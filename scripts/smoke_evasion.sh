#!/bin/sh
# Smoke-test the evasion-margin tournament end to end: build the evaluate
# CLI, run a reduced strategy × scheme grid at -parallel 1 and -parallel 8,
# and assert the JSON outputs are byte-identical. The golden fixtures pin
# the numbers across commits; this pins the other half of the promise —
# that the fan-out order never leaks into the results at any worker count.
set -eu

tmp=$(mktemp -d)
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT INT TERM

go build -o "$tmp/evaluate" ./cmd/evaluate

"$tmp/evaluate" -evasion -json -runs 1 -seed 1 -apps facenet \
    -parallel 1 >"$tmp/p1.json" || {
    echo "smoke-evasion: serial run failed" >&2
    cat "$tmp/p1.json" >&2
    exit 1
}
"$tmp/evaluate" -evasion -json -runs 1 -seed 1 -apps facenet \
    -parallel 8 >"$tmp/p8.json" || {
    echo "smoke-evasion: parallel run failed" >&2
    cat "$tmp/p8.json" >&2
    exit 1
}

cmp -s "$tmp/p1.json" "$tmp/p8.json" || {
    echo "smoke-evasion: JSON differs between -parallel 1 and -parallel 8" >&2
    diff "$tmp/p1.json" "$tmp/p8.json" >&2 || true
    exit 1
}

# Every strategy of the suite must appear in the grid, and the steady
# baseline must be detected at full intensity somewhere (the tournament is
# scoring real detections, not an empty grid).
for s in steady duty-cycle period-mimic slow-ramp coordinated reprofile-timed; do
    grep -q "\"Strategy\": \"$s\"" "$tmp/p1.json" || {
        echo "smoke-evasion: strategy $s missing from the grid" >&2
        exit 1
    }
done

echo "smoke-evasion: ok"
