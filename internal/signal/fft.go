// Package signal implements the signal-processing substrate of SDS/P (paper
// §4.2.2): the discrete Fourier transform, the autocorrelation function, and
// the combined DFT–ACF period estimator of Vlachos et al. that SDS/P adopts.
// It also provides the correlation measures (Pearson, cross-correlation,
// spectral coherence) that the paper explored and rejected in §3.4.
package signal

import "fmt"

// FFT returns the discrete Fourier transform of x. Any length is accepted:
// power-of-two inputs use the iterative radix-2 algorithm and all other
// lengths use Bluestein's chirp-z transform. The input is not modified.
//
// The twiddle and chirp tables for each size are computed once and cached
// process-wide (see plan.go); callers transforming the same size repeatedly
// should hold an FFTPlan instead to also reuse the output and scratch
// buffers.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	t := tablesFor(n)
	out := make([]complex128, n)
	var scratch []complex128
	if !t.pow2 {
		scratch = make([]complex128, t.m)
	}
	t.transform(out, x, scratch, false)
	return out
}

// IFFT returns the inverse discrete Fourier transform of X, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	t := tablesFor(n)
	out := make([]complex128, n)
	var scratch []complex128
	if !t.pow2 {
		scratch = make([]complex128, t.m)
	}
	t.transform(out, x, scratch, true)
	nn := complex(float64(n), 0)
	for i := range out {
		out[i] /= nn
	}
	return out
}

// FFTReal transforms a real series.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// Periodogram returns the power spectral density estimate |X_k|^2 / N for
// k = 0..N/2 of the (demeaned) real series x.
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]float64, n/2+1)
	p := borrowEstimator()
	p.periodogramInto(out, x)
	returnEstimator(p)
	return out
}

// checkLengths validates that two series have equal, nonzero lengths.
func checkLengths(op string, a, b []float64) error {
	if len(a) == 0 || len(a) != len(b) {
		return fmt.Errorf("signal: %s requires equal nonzero lengths, got %d and %d", op, len(a), len(b))
	}
	return nil
}
