package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// MigrationPolicy selects the provider's response strategy in the
// migration study.
type MigrationPolicy string

// The policies of the migration study.
const (
	// PolicyNone never migrates: the attack persists once co-located.
	PolicyNone MigrationPolicy = "none"
	// PolicyOnAlarm migrates the victim when the detector alarms.
	PolicyOnAlarm MigrationPolicy = "migrate-on-alarm"
)

// MigrationResult is one row of the migration study, which reproduces the
// paper's introduction argument: VM migration alone is not sufficient to
// defeat memory DoS attacks, because the attacker can re-co-locate with the
// victim cheaply and in minutes [Ristenpart et al., Varadarajan et al., Xu
// et al.] — but pairing migration with a fast detector bounds the fraction
// of time the victim spends degraded, and faster detection bounds it
// tighter.
type MigrationResult struct {
	Policy MigrationPolicy
	Scheme Scheme // detector driving migrations (empty for PolicyNone)

	// UnderAttackFrac is the fraction of run time with the attack at full
	// ramp against the victim.
	UnderAttackFrac float64
	// AvgSlowdown is the victim's mean attack-induced slowdown factor
	// (0 = unimpeded, 0.6 = running at 40% speed).
	AvgSlowdown float64
	// Migrations is the number of times the victim was migrated.
	Migrations int
	// FalseMigrations is how many of those happened with no attack active.
	FalseMigrations int
}

// MigrationStudyConfig tunes the migration scenario.
type MigrationStudyConfig struct {
	// App is the victim application.
	App string
	// Seconds is the scenario length (default 1800).
	Seconds float64
	// FirstAttack is when the attacker first achieves co-location
	// (default 120).
	FirstAttack float64
	// MeanRelocate is the mean time the attacker needs to re-co-locate
	// after a migration (default 180 s — co-location takes minutes in the
	// studies the paper cites).
	MeanRelocate float64
	// MigrationPause is the victim's service interruption per migration
	// (default 2 s).
	MigrationPause float64
	// Kind is the attack used (default bus locking).
	Kind attack.Kind
}

func (m MigrationStudyConfig) withDefaults() MigrationStudyConfig {
	if m.App == "" {
		m.App = workload.KMeans
	}
	if m.Seconds == 0 {
		m.Seconds = 1800
	}
	if m.FirstAttack == 0 {
		m.FirstAttack = 120
	}
	if m.MeanRelocate == 0 {
		m.MeanRelocate = 180
	}
	if m.MigrationPause == 0 {
		m.MigrationPause = 2
	}
	if m.Kind == attack.None {
		m.Kind = attack.BusLock
	}
	return m
}

// MigrationStudy runs the scenario under the given policy and detector
// scheme (ignored for PolicyNone).
func (c Config) MigrationStudy(study MigrationStudyConfig, policy MigrationPolicy, scheme Scheme) (MigrationResult, error) {
	if err := c.Validate(); err != nil {
		return MigrationResult{}, err
	}
	study = study.withDefaults()
	if policy != PolicyNone && policy != PolicyOnAlarm {
		return MigrationResult{}, fmt.Errorf("experiment: unknown migration policy %q", policy)
	}

	seed := randx.Derive(c.Seed, 0x316772a7e).Uint64()
	res := MigrationResult{Policy: policy, Scheme: scheme}

	var det detect.Detector
	flag := &ThrottleState{}
	if policy == PolicyOnAlarm {
		prof, err := c.buildProfile(study.App, seed)
		if err != nil {
			return MigrationResult{}, err
		}
		det, flag, err = c.newDetectorWithFallback(scheme, prof)
		if err != nil {
			return MigrationResult{}, err
		}
		res.Scheme = scheme
	}

	rng := randx.DeriveString(seed, study.App+"/migration")
	model, err := workload.NewModel(workload.MustAppProfile(study.App), rng)
	if err != nil {
		return MigrationResult{}, err
	}

	prof := model.Profile()
	tpcm := c.Detect.TPCM
	n := pcm.SampleCount(study.Seconds, tpcm)
	sched := attack.Schedule{Kind: study.Kind, Start: study.FirstAttack, Ramp: rng.Uniform(c.RampMin, c.RampMax)}
	var (
		pausedUntil float64
		attackTicks int
		slowdownSum float64
	)
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		env := sched.Env(now, flag.paused)
		if now < pausedUntil {
			// Mid-migration: the victim is being moved; the attacker
			// cannot reach it, but the victim also does no useful work.
			env = workload.Env{}
			slowdownSum++
		} else {
			slowdownSum += prof.BusLockDrop*env.BusLock + 0.5*env.Cleanse
		}
		if env.BusLock > 0 || env.Cleanse > 0 {
			if sched.Intensity(now) >= 1 {
				attackTicks++
			}
		}
		a, m := model.Sample(tpcm, env)
		if det == nil {
			continue
		}
		det.Observe(pcm.Sample{T: now, Access: a, Miss: m})
		if det.Alarmed() && now >= pausedUntil {
			// Migrate: the attack (if any) is broken off; the attacker
			// needs to re-co-locate before it can resume.
			res.Migrations++
			if !sched.Active(now) {
				res.FalseMigrations++
			}
			pausedUntil = now + study.MigrationPause
			relocate := rng.Exp(study.MeanRelocate)
			sched = attack.Schedule{
				Kind:  study.Kind,
				Start: now + relocate,
				Ramp:  rng.Uniform(c.RampMin, c.RampMax),
			}
			det, flag, err = c.resetDetector(scheme, study.App, seed+uint64(res.Migrations))
			if err != nil {
				return MigrationResult{}, err
			}
		}
	}
	res.UnderAttackFrac = float64(attackTicks) / float64(n)
	res.AvgSlowdown = slowdownSum / float64(n)
	return res, nil
}

// newDetectorWithFallback builds the scheme's detector, falling back to
// SDS/B when SDS/P is requested for a non-periodic profile.
func (c Config) newDetectorWithFallback(scheme Scheme, prof detect.Profile) (detect.Detector, *ThrottleState, error) {
	det, flag, err := c.newDetector(scheme, prof)
	if err != nil {
		return nil, nil, err
	}
	if flag == nil {
		flag = &ThrottleState{}
	}
	return det, flag, nil
}

// resetDetector re-profiles and rebuilds the detector after a migration —
// the paper's Stage 1 runs anew whenever a VM is migrated, since the new
// host is attack-free at that moment.
func (c Config) resetDetector(scheme Scheme, app string, seed uint64) (detect.Detector, *ThrottleState, error) {
	prof, err := c.buildProfile(app, seed)
	if err != nil {
		return nil, nil, err
	}
	return c.newDetectorWithFallback(scheme, prof)
}
