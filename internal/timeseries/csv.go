package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes columns of equal length as CSV with the given headers.
// It is used by the cmd/ tools to export figure data for plotting.
func WriteCSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("timeseries: %d headers for %d columns", len(headers), len(cols))
	}
	n := 0
	for i, c := range cols {
		if i == 0 {
			n = len(c)
			continue
		}
		if len(c) != n {
			return fmt.Errorf("timeseries: column %q has %d rows, want %d", headers[i], len(c), n)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	row := make([]string, len(cols))
	for r := 0; r < n; r++ {
		for c := range cols {
			row[c] = strconv.FormatFloat(cols[c][r], 'g', 8, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
