package main

import (
	"strings"
	"testing"

	"github.com/memdos/sds/internal/golden"
)

// TestRunMatchesGolden pins the full fixed-seed CLI output byte for byte
// against the committed conformance fixture
// (testdata/golden/evaluate_small.txt, equivalent to:
//
//	evaluate -fig9 -fig10 -fig11 -fig12 -table1 -ablation \
//	  -runs 2 -apps kmeans,facenet -seed 1 -parallel 0
//
// ). Any numerical drift in the detection pipeline — FFT tables, ACF
// evaluation order, estimator reuse, profile caching — shows up here as a
// line diff. Intentional changes regenerate with -update (see make goldens).
func TestRunMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced evaluation grid; skipped in -short mode")
	}
	var got strings.Builder
	if err := run(&got, true, true, true, true, true, true, 2, 1, "kmeans,facenet", 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	golden.AssertString(t, "testdata/golden/evaluate_small.txt", got.String())
}
