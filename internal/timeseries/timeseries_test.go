package timeseries

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
)

func TestNewMovingAveragerValidation(t *testing.T) {
	tests := []struct {
		name  string
		w, dw int
		ok    bool
	}{
		{"valid", 200, 50, true},
		{"step equals window", 10, 10, true},
		{"zero window", 0, 1, false},
		{"zero step", 10, 0, false},
		{"negative window", -5, 1, false},
		{"step exceeds window", 10, 11, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewMovingAverager(tt.w, tt.dw)
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok {
				if err == nil {
					t.Fatal("expected error")
				}
				if !errors.Is(err, ErrBadWindow) {
					t.Fatalf("error %v is not ErrBadWindow", err)
				}
			}
		})
	}
}

func TestMovingAverageEmissionSchedule(t *testing.T) {
	m, err := NewMovingAverager(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []float64
	for i := 1; i <= 10; i++ {
		if v, ok := m.Push(float64(i)); ok {
			emitted = append(emitted, v)
		}
	}
	// Windows: [1..4]=2.5, [3..6]=4.5, [5..8]=6.5, [7..10]=8.5.
	want := []float64{2.5, 4.5, 6.5, 8.5}
	if len(emitted) != len(want) {
		t.Fatalf("emitted %v, want %v", emitted, want)
	}
	for i := range want {
		if math.Abs(emitted[i]-want[i]) > 1e-12 {
			t.Errorf("window %d = %v, want %v", i, emitted[i], want[i])
		}
	}
}

func TestMovingAverageMatchesPaperEquation(t *testing.T) {
	// Eq. 1: M_n = mean of raw samples {A_{1+n·ΔW} .. A_{W+n·ΔW}}.
	const (
		w  = 200
		dw = 50
	)
	r := randx.New(1, 1)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = r.Uniform(0, 100)
	}
	got, err := MovingAverage(data, w, dw)
	if err != nil {
		t.Fatal(err)
	}
	wantN := (len(data)-w)/dw + 1
	if len(got) != wantN {
		t.Fatalf("got %d windows, want %d", len(got), wantN)
	}
	for n := range got {
		want := Mean(data[n*dw : n*dw+w])
		if math.Abs(got[n]-want) > 1e-9 {
			t.Fatalf("window %d = %v, want %v", n, got[n], want)
		}
	}
}

func TestMovingAverageReset(t *testing.T) {
	m, _ := NewMovingAverager(3, 1)
	for i := 0; i < 5; i++ {
		m.Push(float64(i))
	}
	m.Reset()
	if _, ok := m.Push(1); ok {
		t.Fatal("emitted immediately after reset")
	}
	m.Push(2)
	v, ok := m.Push(3)
	if !ok || math.Abs(v-2) > 1e-12 {
		t.Fatalf("after reset got (%v,%v), want (2,true)", v, ok)
	}
}

func TestMovingAverageBoundedProperty(t *testing.T) {
	// Property: every MA output lies within [min, max] of the inputs.
	r := randx.New(2, 3)
	f := func(wRaw, dwRaw uint8, n uint16) bool {
		w := int(wRaw)%50 + 1
		dw := int(dwRaw)%w + 1
		count := int(n)%400 + w
		data := make([]float64, count)
		for i := range data {
			data[i] = r.Normal(0, 10)
		}
		out, err := MovingAverage(data, w, dw)
		if err != nil {
			return false
		}
		lo, hi := MinMax(data)
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return len(out) == (count-w)/dw+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, alpha := range []float64{-0.1, 0, 1.0001, math.NaN()} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Errorf("NewEWMA(%v) succeeded, want error", alpha)
		}
	}
	for _, alpha := range []float64{0.01, 0.2, 1} {
		if _, err := NewEWMA(alpha); err != nil {
			t.Errorf("NewEWMA(%v) failed: %v", alpha, err)
		}
	}
}

func TestEWMAMatchesPaperEquation(t *testing.T) {
	// Eq. 2: S_0 = M_0; S_n = (1-α)S_{n-1} + αM_n.
	e, err := NewEWMA(0.2)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{10, 20, 30, 40}
	want := []float64{10, 12, 15.6, 20.48}
	for i, x := range in {
		if got := e.Push(x); math.Abs(got-want[i]) > 1e-12 {
			t.Fatalf("S_%d = %v, want %v", i, got, want[i])
		}
	}
	if got := e.Value(); math.Abs(got-20.48) > 1e-12 {
		t.Fatalf("Value() = %v, want 20.48", got)
	}
}

func TestEWMAAlphaOneIsIdentity(t *testing.T) {
	// The paper notes that α=1 reduces EWMA to the MA series itself.
	e, _ := NewEWMA(1)
	r := randx.New(4, 5)
	for i := 0; i < 100; i++ {
		x := r.Uniform(-50, 50)
		if got := e.Push(x); got != x {
			t.Fatalf("alpha=1 Push(%v) = %v", x, got)
		}
	}
}

func TestEWMABoundedProperty(t *testing.T) {
	r := randx.New(6, 7)
	f := func(alphaRaw uint8, n uint8) bool {
		alpha := (float64(alphaRaw) + 1) / 256
		e, err := NewEWMA(alpha)
		if err != nil {
			return false
		}
		count := int(n) + 1
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < count; i++ {
			x := r.Normal(0, 5)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			v := e.Push(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAReset(t *testing.T) {
	e, _ := NewEWMA(0.5)
	e.Push(100)
	e.Reset()
	if got := e.Push(4); got != 4 {
		t.Fatalf("first push after reset = %v, want 4", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(data); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(data); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := StdDev([]float64{3}); got != 0 {
		t.Errorf("StdDev of one point = %v, want 0", got)
	}
}

func TestConstantSeriesInvariants(t *testing.T) {
	// MA of a constant series is that constant, and its σ is zero.
	data := make([]float64, 500)
	for i := range data {
		data[i] = 7.5
	}
	ma, err := MovingAverage(data, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ma {
		if math.Abs(v-7.5) > 1e-12 {
			t.Fatalf("MA of constant = %v", v)
		}
	}
	if got := StdDev(ma); got != 0 {
		t.Fatalf("StdDev of constant MA = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4}, {90, 4.6},
	}
	for _, tt := range tests {
		if got := Percentile(data, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	var zero Summary
	if got := Summarize(nil); got != zero {
		t.Fatalf("Summarize(nil) = %+v, want zero", got)
	}
}

func TestDemean(t *testing.T) {
	out := Demean([]float64{1, 2, 3})
	if math.Abs(Mean(out)) > 1e-12 {
		t.Fatalf("demeaned mean = %v", Mean(out))
	}
	if out[0] != -1 || out[2] != 1 {
		t.Fatalf("Demean = %v", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"t", "v"}, []float64{0, 1}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "t,v" {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

func TestWriteCSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Error("header/column mismatch accepted")
	}
	if err := WriteCSV(&buf, []string{"a", "b"}, []float64{1, 2}, []float64{3}); err == nil {
		t.Error("ragged columns accepted")
	}
}
