package server

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
)

// synthBin renders samples [from, to) as a binary frame body (batch size
// chosen to span several frames), terminated by an end frame.
func synthBin(t *testing.T, from, to int, tpcm, base float64) []byte {
	t.Helper()
	var b bytes.Buffer
	w := feed.NewBinWriter(&b)
	batch := make([]pcm.Sample, 0, 256)
	for i := from; i < to; i++ {
		batch = append(batch, synthSample(i, tpcm, base))
		if len(batch) == cap(batch) {
			if err := w.WriteBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := w.WriteBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestServerBinaryStream: a frames=bin session ingests every sample, the
// ok line confirms the negotiated encoding, and the frame counter moves.
func TestServerBinaryStream(t *testing.T) {
	const (
		tpcm    = 0.01
		profile = 20.0
		total   = 2600
	)
	s, addr := startServer(t, Options{ProfileSeconds: profile})
	body := synthBin(t, 0, total, tpcm, 1000)
	res := runClient(t, addr, "sds/1 vm=bin-1 app=synth profile=20 frames=bin", body)
	if res.okLine != "ok vm=bin-1 app=synth scheme=sds profile=20 frames=bin" {
		t.Errorf("ok line = %q, want frames=bin confirmation", res.okLine)
	}
	if len(res.errorLines) > 0 {
		t.Fatalf("stream errored: %v", res.errorLines)
	}
	if res.done == nil {
		t.Fatal("no done line")
	}
	if res.done.samples != total {
		t.Errorf("server accounted %d samples, want %d (zero loss)", res.done.samples, total)
	}
	if got := s.Metrics().TotalBinFrames; got == 0 {
		t.Errorf("TotalBinFrames = %d, want > 0", got)
	}
}

// TestServerCSVBinaryAlarmEquivalence is the cross-encoding conformance
// contract: the same simulated attacked stream, sent once as CSV text and
// once as binary frames, must produce identical alarm streams and
// identical done accounting — the encoding is a carrier, not a detector
// input.
func TestServerCSVBinaryAlarmEquivalence(t *testing.T) {
	spec := ReplaySpec{App: "kmeans", Seconds: 160, AttackAt: 100, Seed: 7}
	var csvBody, binBody bytes.Buffer
	nCSV, err := WriteSimulatedStream(&csvBody, spec)
	if err != nil {
		t.Fatal(err)
	}
	nBin, err := WriteSimulatedStreamBinary(&binBody, spec)
	if err != nil {
		t.Fatal(err)
	}
	if nCSV != nBin {
		t.Fatalf("replay emitted %d CSV samples but %d binary samples", nCSV, nBin)
	}

	_, addr := startServer(t, Options{})
	var (
		wg     sync.WaitGroup
		resCSV clientResult
		resBin clientResult
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		resCSV = runClient(t, addr, "sds/1 vm=eq-csv app=kmeans scheme=sds profile=60", csvBody.Bytes())
	}()
	go func() {
		defer wg.Done()
		resBin = runClient(t, addr, "sds/1 vm=eq-bin app=kmeans scheme=sds profile=60 frames=bin", binBody.Bytes())
	}()
	wg.Wait()

	if len(resCSV.alarmLines) == 0 {
		t.Fatal("CSV session raised no alarms — equivalence test is vacuous")
	}
	if !reflect.DeepEqual(resCSV.alarmLines, resBin.alarmLines) {
		t.Errorf("alarm streams differ across encodings:\ncsv: %v\nbin: %v", resCSV.alarmLines, resBin.alarmLines)
	}
	if resCSV.done == nil || resBin.done == nil {
		t.Fatal("missing done line")
	}
	if resCSV.done.samples != resBin.done.samples ||
		resCSV.done.monitored != resBin.done.monitored ||
		resCSV.done.dropped != resBin.done.dropped ||
		resCSV.done.alarms != resBin.done.alarms {
		t.Errorf("done accounting differs: csv %+v, bin %+v", resCSV.done, resBin.done)
	}
}

// TestServerBinaryNonFiniteQuarantine: non-finite samples inside a frame
// are quarantined (counted on /metricsz) without killing the stream — the
// binary twin of the malformed-CSV-line contract.
func TestServerBinaryNonFiniteQuarantine(t *testing.T) {
	const (
		tpcm    = 0.01
		profile = 20.0
		total   = 2600
	)
	var b bytes.Buffer
	w := feed.NewBinWriter(&b)
	bad := 0
	batch := make([]pcm.Sample, 0, 128)
	for i := 0; i < total; i++ {
		s := synthSample(i, tpcm, 1000)
		if i > 2100 && i%97 == 0 { // damage only monitored-stage samples
			s.Access = math.NaN()
			bad++
		}
		batch = append(batch, s)
		if len(batch) == cap(batch) {
			if err := w.WriteBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := w.WriteBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Fatal("test generated no damaged samples")
	}

	s, addr := startServer(t, Options{ProfileSeconds: profile})
	res := runClient(t, addr, "sds/1 vm=bin-q profile=20 frames=bin", b.Bytes())
	if len(res.errorLines) > 0 {
		t.Fatalf("quarantinable damage killed the stream: %v", res.errorLines)
	}
	if res.done == nil {
		t.Fatal("no done line")
	}
	if res.done.samples != total-bad {
		t.Errorf("ingested %d samples, want %d (total %d - %d quarantined)", res.done.samples, total-bad, total, bad)
	}
	m := s.Metrics()
	if m.TotalQuarantined != uint64(bad) {
		t.Errorf("TotalQuarantined = %d, want %d", m.TotalQuarantined, bad)
	}
	if vm := m.VMs["bin-q"]; vm.Quarantined != uint64(bad) {
		t.Errorf("per-VM quarantined = %d, want %d", vm.Quarantined, bad)
	}
}

// TestServerBinaryFramingErrorIsFatal: framing damage has no resync point,
// so the server must end the stream with an error line — but still drain
// what it accepted and emit the done accounting.
func TestServerBinaryFramingErrorIsFatal(t *testing.T) {
	const (
		tpcm    = 0.01
		profile = 20.0
		total   = 2400
	)
	body := synthBin(t, 0, total, tpcm, 1000)
	body = body[:len(body)-1]                         // strip the end frame
	body = append(body, 0x7f, 0xde, 0xad, 0xbe, 0xef) // junk frame type

	_, addr := startServer(t, Options{ProfileSeconds: profile})
	res := runClient(t, addr, "sds/1 vm=bin-f profile=20 frames=bin", body)
	if len(res.errorLines) != 1 {
		t.Fatalf("error lines = %v, want exactly one framing error", res.errorLines)
	}
	if res.done == nil {
		t.Fatal("no done line after framing error — accepted samples were not drained")
	}
	if res.done.samples != total {
		t.Errorf("drained %d samples, want all %d accepted before the bad frame", res.done.samples, total)
	}
}

// TestServerBinaryManyConcurrentStreams: the binary plane keeps the
// zero-loss contract under concurrency (run with -race in CI).
func TestServerBinaryManyConcurrentStreams(t *testing.T) {
	const (
		vms   = 16
		tpcm  = 0.01
		total = 3000
	)
	s, addr := startServer(t, Options{ProfileSeconds: 20, BufferSamples: 2048})
	var wg sync.WaitGroup
	results := make([]clientResult, vms)
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := synthBin(t, 0, total, tpcm, 1000+float64(i))
			results[i] = runClient(t, addr,
				fmt.Sprintf("sds/1 vm=bin-%02d profile=20 frames=bin", i), body)
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if len(res.errorLines) > 0 {
			t.Errorf("vm %d errored: %v", i, res.errorLines)
			continue
		}
		if res.done == nil || res.done.samples != total {
			t.Errorf("vm %d accounted %v samples, want %d", i, res.done, total)
		}
	}
	if got := s.Metrics().TotalSamples; got != uint64(vms*total) {
		t.Errorf("fleet-wide samples = %d, want %d", got, vms*total)
	}
}

// TestServerBadFramesField: an unknown frames= value is a handshake error.
func TestServerBadFramesField(t *testing.T) {
	_, addr := startServer(t, Options{})
	res := runClient(t, addr, "sds/1 vm=x frames=proto9", nil)
	if len(res.errorLines) != 1 || res.okLine != "" {
		t.Fatalf("bad frames value accepted: ok=%q errors=%v", res.okLine, res.errorLines)
	}
}
