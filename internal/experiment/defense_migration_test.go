package experiment

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/workload"
)

func TestDefenseStudyReproducesSection23(t *testing.T) {
	c := fastConfig()
	results, err := c.DefenseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d cells, want 4", len(results))
	}
	byKey := make(map[string]DefenseResult, 4)
	for _, r := range results {
		key := r.Attack.String()
		if r.Partitioned {
			key += "/part"
		}
		byKey[key] = r
	}

	// Cleansing without partitioning inflates the victim's miss rate;
	// partitioning the cache stops that.
	clean := byKey["llc-cleansing"]
	cleanPart := byKey["llc-cleansing/part"]
	if clean.MissRate < 5*cleanPart.MissRate+0.01 {
		t.Errorf("partitioning did not stop cleansing: miss rate %v vs %v (partitioned)",
			clean.MissRate, cleanPart.MissRate)
	}

	// Bus locking starves the victim regardless of partitioning — the bus
	// is still locked during atomic operations (§2.3).
	bus := byKey["bus-locking"]
	busPart := byKey["bus-locking/part"]
	if bus.ProgressRatio > 0.45 {
		t.Errorf("unpartitioned bus locking barely hurt: progress ratio %v", bus.ProgressRatio)
	}
	if busPart.ProgressRatio > 0.45 {
		t.Errorf("partitioning 'defended' against bus locking (progress %v); §2.3 says it cannot", busPart.ProgressRatio)
	}
}

func TestMigrationStudyValidation(t *testing.T) {
	c := fastConfig()
	if _, err := c.MigrationStudy(MigrationStudyConfig{}, MigrationPolicy("bogus"), SchemeSDS); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMigrationStudyReproducesIntroArgument(t *testing.T) {
	c := fastConfig()
	c.ProfileSeconds = 1200 // migration study re-profiles repeatedly; keep it quick
	study := MigrationStudyConfig{
		App:          workload.KMeans,
		Seconds:      900,
		FirstAttack:  60,
		MeanRelocate: 120,
		Kind:         attack.BusLock,
	}

	none, err := c.MigrationStudy(study, PolicyNone, "")
	if err != nil {
		t.Fatal(err)
	}
	withSDS, err := c.MigrationStudy(study, PolicyOnAlarm, SchemeSDS)
	if err != nil {
		t.Fatal(err)
	}

	// Without a response, the attack persists for nearly the whole run
	// after co-location.
	if none.UnderAttackFrac < 0.8 {
		t.Fatalf("no-response run under attack only %v of the time", none.UnderAttackFrac)
	}
	if none.Migrations != 0 {
		t.Fatalf("no-response run migrated %d times", none.Migrations)
	}

	// Migration-on-alarm breaks each co-location, but the attacker keeps
	// coming back (the intro's point): multiple migrations happen, attack
	// time is bounded but not zero.
	if withSDS.Migrations < 2 {
		t.Fatalf("only %d migrations in a run with repeated re-co-location", withSDS.Migrations)
	}
	if withSDS.UnderAttackFrac >= none.UnderAttackFrac {
		t.Fatalf("migration did not reduce attack exposure: %v vs %v",
			withSDS.UnderAttackFrac, none.UnderAttackFrac)
	}
	if withSDS.UnderAttackFrac == 0 {
		t.Fatal("attacker never re-established co-location; the insufficiency argument needs recurrence")
	}
	if withSDS.AvgSlowdown >= none.AvgSlowdown {
		t.Fatalf("migration did not reduce average slowdown: %v vs %v",
			withSDS.AvgSlowdown, none.AvgSlowdown)
	}
}
