//go:build linux

package server

import (
	"fmt"
	"syscall"
)

// EnsureFDLimit makes sure the process may hold at least need open file
// descriptors, raising RLIMIT_NOFILE when the current soft limit is short.
// It returns the effective limit. Raising the hard cap needs privilege;
// without it the soft limit is raised as far as the hard cap allows and the
// error says precisely how short the budget is — a 100k-stream run that
// would otherwise die mid-dial with a cryptic EMFILE should fail (or warn)
// up front instead.
func EnsureFDLimit(need uint64) (uint64, error) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0, fmt.Errorf("getrlimit: %w", err)
	}
	if rl.Cur >= need {
		return rl.Cur, nil
	}
	want := rl
	want.Cur = need
	if want.Max < need {
		want.Max = need
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err == nil {
		return need, nil
	} else if rl.Cur < rl.Max {
		want = rl
		want.Cur = rl.Max
		if err2 := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err2 == nil {
			return rl.Max, fmt.Errorf("fd limit: need %d open files, raised soft limit only to the hard cap %d (raising the cap: %v)", need, rl.Max, err)
		}
	}
	return rl.Cur, fmt.Errorf("fd limit: need %d open files, have %d and cannot raise it", need, rl.Cur)
}
