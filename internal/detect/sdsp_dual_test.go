package detect

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/workload"
)

func TestSDSPEmitsBothMetrics(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 90)
	counts := map[Metric]int{}
	d, err := NewSDSP(prof, DefaultConfig(), WithSDSPEstimateHook(func(p PeriodStat) {
		counts[p.Metric]++
	}))
	if err != nil {
		t.Fatal(err)
	}
	feed(d, genSamples(t, workload.FaceNet, 91, 120, attack.Schedule{}))
	if counts[MetricAccess] == 0 || counts[MetricMiss] == 0 {
		t.Fatalf("estimate counts per metric = %v, want both counters analysed", counts)
	}
	if counts[MetricAccess] != counts[MetricMiss] {
		t.Fatalf("metric estimate counts diverged: %v", counts)
	}
}

func TestSDSPCleansingDisruptsMissPeriodQuickly(t *testing.T) {
	// The dual-metric design exists so that cleansing — which leaves the
	// AccessNum waveform intact but explodes MissNum — is caught at the
	// same structural delay as bus locking (paper Fig. 11: SDS delays stay
	// within 15–30 s for both attacks).
	cfg := DefaultConfig()
	prof := steadyProfile(t, workload.FaceNet, 92)
	d, err := NewSDSP(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := attack.Schedule{Kind: attack.Cleanse, Start: 300, Ramp: 10}
	feed(d, genSamples(t, workload.FaceNet, 93, 400, sched))
	at := firstAlarmAfter(d, 300)
	if at < 0 {
		t.Fatal("cleansing not detected")
	}
	// The miss-side disruption keeps the total near the structural floor
	// of H_P·ΔW_P·ΔW·T_PCM = 25 s (occasionally below it when pre-attack
	// deviations had already accumulated).
	if delay := at - 300; delay < 15 || delay > 45 {
		t.Fatalf("cleansing delay %v s, want ≈15–45", delay)
	}
}

func TestSDSPStructuralDelayFloor(t *testing.T) {
	// §4.2.2: with a clean (deviation-free) history, detection can be no
	// faster than H_P·ΔW_P·ΔW·T_PCM seconds after the period changes.
	// Verified on a noise-free synthetic periodic stream whose period
	// jumps from 17 to 25 MA windows.
	cfg := DefaultConfig()
	prof := Profile{
		App: "synthetic", Periodic: true, PeriodMA: 17,
		MeanAccess: 100, StdAccess: 10, MeanMiss: 20, StdMiss: 2,
	}
	d, err := NewSDSP(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	push := func(start int, n int, rawPeriod int) int {
		for i := 0; i < n; i++ {
			tick := start + i
			phase := float64(tick%rawPeriod) / float64(rawPeriod)
			v := 100 + 30*phase // sawtooth
			d.Observe(samp(float64(tick+1)*cfg.TPCM, v, v/5))
		}
		return start + n
	}
	normalRaw := 17 * cfg.DW
	tick := push(0, 30*normalRaw, normalRaw)
	if d.Alarmed() || len(d.Alarms()) != 0 {
		t.Fatalf("false alarm on a clean periodic stream: %+v", d.Alarms())
	}
	changeT := float64(tick) * cfg.TPCM
	push(tick, 30*normalRaw, 25*cfg.DW)
	at := firstAlarmAfter(d, changeT)
	if at < 0 {
		t.Fatal("period change not detected")
	}
	floor := float64(cfg.HP*cfg.DWP*cfg.DW) * cfg.TPCM
	if at-changeT < floor-1e-9 {
		t.Fatalf("delay %v below structural floor %v", at-changeT, floor)
	}
}
