package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/memdos/sds/internal/workload"
)

func TestQuickVerificationPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("verification run is not short")
	}
	checks, err := Run(Options{
		Runs:      2,
		Apps:      []string{workload.KMeans, workload.FaceNet},
		Seed:      1,
		SkipMicro: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 10 {
		t.Fatalf("only %d checks produced", len(checks))
	}
	var failed []string
	for _, c := range checks {
		if !c.Pass {
			failed = append(failed, c.ID+": "+c.Detail)
		}
	}
	// A 2-run verification is noisy; allow one marginal failure but no
	// systematic breakage.
	if len(failed) > 1 {
		t.Fatalf("%d checks failed:\n%s", len(failed), strings.Join(failed, "\n"))
	}
}

func TestRenderCountsFailures(t *testing.T) {
	checks := []Check{
		{ID: "a", Claim: "c1", Pass: true, Detail: "d1"},
		{ID: "b", Claim: "c2", Pass: false, Detail: "d2"},
	}
	var buf bytes.Buffer
	failures, err := Render(&buf, checks)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "1/2 checks passed") {
		t.Fatalf("report output:\n%s", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Runs != 8 || len(o.Apps) != 10 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
}
