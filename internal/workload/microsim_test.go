package workload

import (
	"testing"

	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/randx"
)

func testCache(t *testing.T) *cachesim.Cache {
	t.Helper()
	c, err := cachesim.New(cachesim.Config{SizeBytes: 256 * 1024, LineSize: 64, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLoopValidation(t *testing.T) {
	rng := randx.New(1, 2)
	if _, err := NewLoop("x", 0, 32, 100, rng); err == nil {
		t.Error("tiny working set accepted")
	}
	if _, err := NewLoop("x", 0, 4096, 0, rng); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewLoop("x", 0, 4096, 100, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestLoopDemandProportionalToDt(t *testing.T) {
	l, err := NewLoop("app", 0, 64*1024, 10000, randx.New(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got, lock := l.Demand(0.01); got != 100 || lock != 0 {
		t.Fatalf("Demand(0.01) = (%d, %v), want (100, 0)", got, lock)
	}
}

func TestLoopCacheResidency(t *testing.T) {
	// A working set that fits should mostly hit after warm-up.
	c := testCache(t)
	l, err := NewLoop("app", 0, 64*1024, 10000, randx.New(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	l.Issue(20000, c, 0)
	warm := c.Stats(0)
	l.Issue(10000, c, 0)
	st := c.Stats(0)
	missRate := float64(st.Misses-warm.Misses) / float64(st.Accesses-warm.Accesses)
	if missRate > 0.02 {
		t.Fatalf("steady-state miss rate %v, want ~0", missRate)
	}
}

func TestPhasedLoopValidation(t *testing.T) {
	rng := randx.New(7, 8)
	if _, err := NewPhasedLoop("x", 0, 100, nil, rng); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := NewPhasedLoop("x", 0, 100, []LoopPhase{{Lines: 0, Work: 5}}, rng); err == nil {
		t.Error("zero-line phase accepted")
	}
}

func TestPhasedLoopAdvancesByWork(t *testing.T) {
	c := testCache(t)
	p, err := NewPhasedLoop("periodic", 0, 10000, []LoopPhase{
		{Lines: 100, Work: 500},
		{Lines: 200, Work: 500},
	}, randx.New(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if p.Phase() != 0 {
		t.Fatal("did not start in phase 0")
	}
	// Issue enough accesses to accumulate 500 hits.
	for i := 0; i < 50 && p.Phase() == 0; i++ {
		p.Issue(100, c, 0)
	}
	if p.Phase() != 1 {
		t.Fatalf("phase = %d after plenty of work, want 1", p.Phase())
	}
}

func TestPhasedLoopStallsWithoutAccesses(t *testing.T) {
	c := testCache(t)
	p, err := NewPhasedLoop("periodic", 0, 10000, []LoopPhase{
		{Lines: 100, Work: 100},
		{Lines: 100, Work: 100},
	}, randx.New(11, 12))
	if err != nil {
		t.Fatal(err)
	}
	p.Issue(0, c, 0) // starved: no accesses granted
	if p.Phase() != 0 {
		t.Fatal("phase advanced without any accesses")
	}
}

func TestIdleWorkload(t *testing.T) {
	c := testCache(t)
	u, err := NewIdle("utility", 100, randx.New(13, 14))
	if err != nil {
		t.Fatal(err)
	}
	if d, lock := u.Demand(0.01); d != 1 || lock != 0 {
		t.Fatalf("Demand = (%d, %v), want (1, 0)", d, lock)
	}
	u.Issue(10, c, 3)
	if got := c.Stats(3).Accesses; got != 10 {
		t.Fatalf("accesses = %d, want 10", got)
	}
	if _, err := NewIdle("x", -1, randx.New(1, 1)); err == nil {
		t.Error("negative rate accepted")
	}
}
