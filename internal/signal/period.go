package signal

import "sort"

// PeriodEstimate is the result of DFT–ACF period detection.
type PeriodEstimate struct {
	// Period is the detected period in samples (an ACF-refined lag).
	Period int
	// Power is the periodogram power of the winning DFT candidate.
	Power float64
	// Candidates lists the DFT candidate periods that were examined, in
	// decreasing power order (useful for diagnostics).
	Candidates []int
}

// PeriodOptions tunes EstimatePeriod. The zero value selects the defaults
// used by SDS/P.
type PeriodOptions struct {
	// MinPeriod rejects candidates shorter than this many samples
	// (default 2): one- and two-sample "periods" are indistinguishable
	// from noise.
	MinPeriod int
	// MaxPeriod rejects candidates longer than this many samples (default
	// and hard cap: half the series length). Callers that know the
	// plausible period range — e.g. the SDS profiler, for which a very
	// long "period" is just slow phase alternation — can narrow it.
	MaxPeriod int
	// MaxCandidates bounds how many periodogram peaks are validated
	// against the ACF (default 8).
	MaxCandidates int
	// PowerThreshold is the fraction of the strongest (non-DC) periodogram
	// bin a candidate must reach to be considered (default 0.25). On top
	// of this, every candidate must carry at least three times the mean
	// non-DC bin power, so that featureless spectra yield no candidates.
	PowerThreshold float64
}

func (o PeriodOptions) withDefaults() PeriodOptions {
	if o.MinPeriod < 2 {
		o.MinPeriod = 2
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 8
	}
	if o.PowerThreshold <= 0 {
		o.PowerThreshold = 0.25
	}
	return o
}

// EstimatePeriod detects the dominant period of x using the combined
// DFT–ACF method the paper adopts from Vlachos et al. (SDM '05):
//
//  1. the periodogram proposes candidate periods at its strongest
//     frequencies (DFT alone may report spurious frequencies caused by
//     spectral leakage), and
//  2. each candidate is accepted only if it lies on a hill of the
//     autocorrelation function, where it is refined to the exact ACF local
//     maximum (ACF alone would also accept integer multiples of the true
//     period, so the DFT ordering decides which hill to trust first).
//
// ok is false when no candidate passes validation — i.e. the series has no
// detectable periodicity.
func EstimatePeriod(x []float64, opts PeriodOptions) (PeriodEstimate, bool) {
	o := opts.withDefaults()
	n := len(x)
	if n < 2*o.MinPeriod {
		return PeriodEstimate{}, false
	}
	spec := Periodogram(x)
	var total, peak float64
	for k := 1; k < len(spec); k++ {
		total += spec[k]
		if spec[k] > peak {
			peak = spec[k]
		}
	}
	if total == 0 {
		return PeriodEstimate{}, false
	}
	mean := total / float64(len(spec)-1)
	floor := 2 * mean
	if t := o.PowerThreshold * peak; t > floor {
		floor = t
	}
	type candidate struct {
		k     int
		power float64
	}
	maxPeriod := n / 2
	if o.MaxPeriod > 0 && o.MaxPeriod < maxPeriod {
		maxPeriod = o.MaxPeriod
	}
	var cands []candidate
	for k := 1; k < len(spec); k++ {
		period := n / k
		if period < o.MinPeriod || period > maxPeriod {
			continue
		}
		if spec[k] >= floor {
			cands = append(cands, candidate{k: k, power: spec[k]})
		}
	}
	if len(cands) == 0 {
		return PeriodEstimate{}, false
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].power > cands[j].power })
	if len(cands) > o.MaxCandidates {
		cands = cands[:o.MaxCandidates]
	}
	est := PeriodEstimate{Candidates: make([]int, 0, len(cands))}
	acf := ACF(x, n/2)
	for _, c := range cands {
		period := n / c.k
		est.Candidates = append(est.Candidates, period)
		if refined, ok := onACFHill(acf, period); ok {
			est.Period = refined
			est.Power = c.power
			return est, true
		}
	}
	return est, false
}

// IsPeriodic reports whether the series has a stable detectable period: the
// period estimated on the first and second halves of the series must both
// exist and agree within tolerance (fractional difference). This is the
// Stage-1 periodicity check the paper runs when a VM is newly started or
// migrated.
func IsPeriodic(x []float64, tolerance float64, opts PeriodOptions) (period int, ok bool) {
	if len(x) < 8 {
		return 0, false
	}
	whole, ok := EstimatePeriod(x, opts)
	if !ok {
		return 0, false
	}
	half := len(x) / 2
	a, okA := EstimatePeriod(x[:half], opts)
	b, okB := EstimatePeriod(x[half:], opts)
	if !okA || !okB {
		return 0, false
	}
	if relDiff(float64(a.Period), float64(b.Period)) > tolerance {
		return 0, false
	}
	if relDiff(float64(whole.Period), float64(a.Period)) > tolerance {
		// The whole-series estimate may lock onto a harmonic; trust the
		// halves when they agree with each other but not with it.
		return a.Period, true
	}
	return whole.Period, true
}

// relDiff returns |a-b| / max(|a|,|b|) (0 when both are 0).
func relDiff(a, b float64) float64 {
	den := max(absf(a), absf(b))
	if den == 0 {
		return 0
	}
	return absf(a-b) / den
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
