package cloudsim

import (
	"strings"
	"testing"
)

func TestParseScenario(t *testing.T) {
	data := []byte(`{
		"name": "paper-grid",
		"seed": 42,
		"hosts": 100,
		"vms_per_host": 8,
		"seconds": 900,
		"attackers": 5,
		"attack_kind": "bus-locking",
		"placement": "random",
		"churn_arrivals_per_min": 4,
		"mitigation": {"policy": "throttle-migrate", "reaction_delay": 2}
	}`)
	sc, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Hosts != 100 || sc.Attackers != 5 || sc.Mitigation.Policy != PolicyThrottleMigrate {
		t.Fatalf("fields lost in parse: %+v", sc)
	}
	d := sc.withDefaults()
	if err := d.validate(); err != nil {
		t.Fatalf("parsed scenario invalid after defaults: %v", err)
	}
	if d.Fidelity != FidelityWindow || d.Scheme != "SDS" || d.Mitigation.ThrottleSeconds != 10 {
		t.Fatalf("defaults not applied: %+v", d)
	}
	if sc.Mitigation.ReactionDelay != 2 {
		t.Fatalf("explicit reaction delay overwritten: %+v", sc.Mitigation)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	_, err := ParseScenario([]byte(`{"hosts": 10, "vms_per_hosts": 8}`))
	if err == nil || !strings.Contains(err.Error(), "vms_per_hosts") {
		t.Fatalf("typo field not rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no hosts", func(s *Scenario) { s.Hosts = 0 }, "Hosts"},
		{"bad fidelity", func(s *Scenario) { s.Fidelity = "approximate" }, "fidelity"},
		{"bad scheme", func(s *Scenario) { s.Scheme = "SDS/X" }, "scheme"},
		{"bad placement", func(s *Scenario) { s.Placement = "round-robin" }, "placement"},
		{"bad policy", func(s *Scenario) { s.Mitigation.Policy = "reboot" }, "mitigation policy"},
		{"bad attack kind", func(s *Scenario) { s.AttackKind = "rowhammer" }, "attack kind"},
		{"bad app", func(s *Scenario) { s.Apps = []string{"doom"} }, "doom"},
		{"kstest needs exact", func(s *Scenario) { s.Scheme = "KStest" }, "fidelity"},
		{"policy needs scheme", func(s *Scenario) {
			s.Scheme = "none"
			s.Mitigation.Policy = PolicyMigrate
		}, "detection scheme"},
		{"window needs aligned horizon", func(s *Scenario) { s.Seconds = 900.3 }, "divisible"},
		{"bad ramp range", func(s *Scenario) { s.RampMin, s.RampMax = 18, 8 }, "ramp"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := Scenario{Hosts: 4}
			tc.mut(&sc)
			err := sc.withDefaults().validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error mentioning %q, got %v", tc.want, err)
			}
			if _, runErr := Run(sc); runErr == nil {
				t.Fatal("Run accepted the invalid scenario")
			}
		})
	}
}
