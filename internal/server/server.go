package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
)

// Handshake is the first line every stream connection must send:
//
//	sds/1 vm=<id> [app=<name>] [scheme=<sds|sdsb|sdsp|kstest|cusum|timefrag|ewmavar>] [profile=<seconds>] [frames=<csv|bin>]
//
// followed by the telemetry stream in the negotiated encoding: feed CSV
// (`t,access,miss` lines; header and '#' comments allowed — the default)
// or, with `frames=bin`, the compact binary frame format of
// feed.BinReader (batched 24-byte little-endian sample records; see
// internal/feed/binary.go for the wire grammar). Key=value fields may
// appear in any order; omitted fields fall back to the server's defaults.
// The server answers with line-oriented text responses on the same
// connection regardless of the stream encoding:
//
//	ok vm=<id> app=<name> scheme=<scheme> profile=<seconds> [frames=bin]
//	alarm {"t":…,"detector":…,"metric":…,"reason":…}
//	done vm=<id> samples=<ingested> monitored=<n> dropped=<d> alarms=<a>
//	error: <message>
//
// The ok line confirms `frames=bin` when the binary encoding was
// negotiated; CSV sessions keep the historical reply byte-for-byte (the
// golden transcripts pin it).
//
// Clients that stream without reading MUST at minimum drain the socket at
// end of stream: alarm lines are written inline and TCP backpressure from
// an unread response buffer eventually pauses that VM's ingestion.
const handshakeMagic = "sds/1"

// Stream encodings negotiable via the handshake's frames field.
const (
	framesCSV = "csv"
	framesBin = "bin"
)

// maxHandshakeLen bounds the handshake line.
const maxHandshakeLen = 4096

// Options configures a Server. Zero-value fields fall back to defaults.
type Options struct {
	// Scheme, App, ProfileSeconds, Config and KSConfig are the per-stream
	// defaults applied when a handshake omits the matching field.
	Scheme         string
	App            string
	ProfileSeconds float64
	Config         detect.Config
	KSConfig       detect.KSTestConfig
	// BufferSamples bounds the samples buffered between reading and
	// observing (default 1024): the per-connection batch of the goroutine
	// pumps, and a floor for the shard event loop's decode batch. When
	// observation falls behind, reading stops — backpressure propagates to
	// the client through TCP instead of growing memory.
	BufferSamples int
	// Shards is the number of ingest shards (default runtime.GOMAXPROCS(0)).
	// Every network stream is affine to one shard — shard = fleet stripe of
	// the VM name mod Shards — so shard-local state never crosses shards;
	// see shard.go for the model.
	Shards int
	// IdleTimeout evicts a connection whose client sends nothing for this
	// long: the session ends as if the stream closed, so a wedged client
	// cannot hold its VM slot (and its fleet registration) forever.
	// 0 disables idle eviction.
	IdleTimeout time.Duration
	// MaxResumes bounds how many times a VM id may reconnect and resume a
	// session that is still inside its Stage-1 profiling window (default 3;
	// negative disables resumption). Once profiling has completed — or the
	// budget is spent — a reconnect starts a fresh session, as before.
	MaxResumes int
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server ingests many VM sample streams concurrently, one detector
// lifecycle per stream, and exposes fleet-wide state to the provider's
// control plane.
type Server struct {
	opts  Options
	fleet *detect.Fleet
	start time.Time

	mu        sync.Mutex
	sessions  map[string]*vmState
	order     []string // registration order, for stable /metricsz output
	listeners map[net.Listener]struct{}
	// conns tracks goroutine-path connections (nil value until the handler
	// attaches idle-sweep state). Event-loop connections are owned by
	// their shard loop and are not in this map.
	conns map[net.Conn]*connActivity

	shards    []*ingestShard
	sweepOnce sync.Once
	sweepStop chan struct{}

	wg       sync.WaitGroup // connection handlers
	draining atomic.Bool

	totalSamples     atomic.Uint64
	totalAlarms      atomic.Uint64
	totalQuarantined atomic.Uint64
	totalBinFrames   atomic.Uint64
	idleEvictions    atomic.Uint64
}

// vmState tracks one VM's stream across its lifetime (it outlives the
// connection so /metricsz keeps reporting final state after disconnect).
type vmState struct {
	sess      *Session
	connected atomic.Bool
	// spec is the resolved stream spec, kept so a reconnect can be checked
	// for compatibility before resuming the session.
	spec StreamSpec
	// sink is the current connection's writer; alarms route through it so a
	// resumed session reports to the live connection, not the dead one. Nil
	// for in-process streams.
	sink atomic.Pointer[connWriter]
	// resumes counts profile-window resumptions (guarded by Server.mu).
	resumes int
	// quarantined counts malformed lines isolated from this VM's stream.
	quarantined atomic.Uint64
}

// New returns a Server with the given defaults.
func New(opts Options) *Server {
	if opts.Scheme == "" {
		opts.Scheme = "sds"
	}
	if opts.App == "" {
		opts.App = "monitored-vm"
	}
	if opts.ProfileSeconds <= 0 {
		opts.ProfileSeconds = 900
	}
	if opts.Config == (detect.Config{}) {
		opts.Config = detect.DefaultConfig()
	}
	if opts.KSConfig == (detect.KSTestConfig{}) {
		opts.KSConfig = detect.DefaultKSTestConfig()
	}
	if opts.BufferSamples <= 0 {
		opts.BufferSamples = 1024
	}
	if opts.MaxResumes == 0 {
		opts.MaxResumes = 3
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		opts:      opts,
		fleet:     detect.NewFleet(),
		start:     time.Now(),
		sessions:  make(map[string]*vmState),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]*connActivity),
		sweepStop: make(chan struct{}),
	}
	s.shards = make([]*ingestShard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &ingestShard{id: i, srv: s}
	}
	return s
}

// ShardCount returns the number of ingest shards.
func (s *Server) ShardCount() int { return len(s.shards) }

// Fleet returns the server's detector fleet (aggregate alarm state).
func (s *Server) Fleet() *detect.Fleet { return s.fleet }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts stream connections on l until the listener is closed or the
// server shuts down. Call once per listener (TCP and unix socket listeners
// can be served concurrently).
func (s *Server) Serve(l net.Listener) error {
	if s.draining.Load() {
		return fmt.Errorf("server: already shut down")
	}
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	s.startSweeper()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = nil
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops accepting connections and drains active streams: every
// sample already read from a connection is processed before its handler
// exits. Handlers still running when ctx expires have their connections
// force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.sweepStop)
	}
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Interrupt blocking reads; handlers treat the deadline error as end
	// of stream and drain their buffered samples.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	// Shard event loops see the draining flag on wake, drain each of
	// their connections' kernel buffers and finalize them.
	s.wakeLoops()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// streamSpec builds the per-stream spec from a parsed handshake.
func (s *Server) streamSpec(h handshake) StreamSpec {
	spec := StreamSpec{
		VM:             h.vm,
		App:            s.opts.App,
		Scheme:         s.opts.Scheme,
		ProfileSeconds: s.opts.ProfileSeconds,
		Config:         s.opts.Config,
		KSConfig:       s.opts.KSConfig,
	}
	if h.app != "" {
		spec.App = h.app
	}
	if h.scheme != "" {
		spec.Scheme = h.scheme
	}
	if h.profileSeconds > 0 {
		spec.ProfileSeconds = h.profileSeconds
	}
	return spec
}

// register installs a new session for vm, rejecting duplicates that are
// still streaming (a reconnect after disconnect replaces the old state).
func (s *Server) register(vm string, sess *Session) (*vmState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sessions[vm]; ok && st.connected.Load() {
		return nil, fmt.Errorf("vm %q is already streaming", vm)
	} else if !ok {
		s.order = append(s.order, vm)
	}
	st := &vmState{sess: sess}
	st.connected.Store(true)
	s.sessions[vm] = st
	if err := s.fleet.Protect(vm, detectorView{sess}); err != nil {
		return nil, err
	}
	return st, nil
}

// attach binds a stream connection to its VM state. A reconnect for a VM
// whose previous connection died inside the Stage-1 profiling window — with
// a matching spec and resume budget left — resumes the existing session
// where it left off (resumed=true); anything else installs a fresh session,
// replacing disconnected state like register. Duplicate active VM ids are
// rejected either way.
func (s *Server) attach(spec StreamSpec, cw *connWriter) (st *vmState, resumed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, known := s.sessions[spec.VM]
	if known && st.connected.Load() {
		return nil, false, fmt.Errorf("vm %q is already streaming", spec.VM)
	}
	if known && st.sink.Load() != nil && st.sess.Profiling() &&
		st.resumes < s.opts.MaxResumes && resumable(st.spec, spec) {
		st.resumes++
		st.sink.Store(cw)
		st.connected.Store(true)
		if err := s.fleet.Protect(spec.VM, detectorView{st.sess}); err != nil {
			st.connected.Store(false)
			return nil, false, err
		}
		return st, true, nil
	}
	if !known {
		s.order = append(s.order, spec.VM)
	}
	st = &vmState{spec: spec}
	st.sink.Store(cw)
	sess, err := NewSession(s.instrument(spec, st))
	if err != nil {
		return nil, false, err
	}
	st.sess = sess
	st.connected.Store(true)
	s.sessions[spec.VM] = st
	if err := s.fleet.Protect(spec.VM, detectorView{sess}); err != nil {
		return nil, false, err
	}
	return st, false, nil
}

// resumable reports whether a reconnect's spec is compatible with the
// session it wants to resume: the lifecycle parameters must match, or the
// half-built profile would not mean what the new handshake asked for.
func resumable(old, new StreamSpec) bool {
	return old.App == new.App && old.Scheme == new.Scheme &&
		old.ProfileSeconds == new.ProfileSeconds
}

// instrument wires a connection-backed spec's callbacks: alarms go to the
// VM's current sink (so resumption redirects them to the live connection)
// and never poison the session — a client that died mid-drain must not cost
// the surviving buffered samples their processing.
func (s *Server) instrument(spec StreamSpec, st *vmState) StreamSpec {
	vm := spec.VM
	spec.OnAlarm = func(a detect.Alarm) error {
		s.totalAlarms.Add(1)
		s.logf("vm %s: ALARM %s (%s) at %.2fs: %s", vm, a.Detector, a.Metric, a.T, a.Reason)
		if cw := st.sink.Load(); cw != nil {
			if err := cw.line("alarm %s", alarmJSON(a)); err != nil {
				// The client is gone; the alarm stays in the session record
				// and on /metricsz. Poisoning the session here would discard
				// every sample still buffered behind this one.
				s.logf("vm %s: client gone, alarm not delivered: %v", vm, err)
			}
		}
		return nil
	}
	spec.OnProfile = func(p detect.Profile, n int) {
		s.logf("vm %s: profiled %s over %d samples (μ_access=%.4g σ=%.4g periodic=%v)",
			vm, p.App, n, p.MeanAccess, p.StdAccess, p.Periodic)
	}
	return spec
}

// release marks vm's stream ended and removes it from the active fleet.
func (s *Server) release(vm string, st *vmState) {
	st.connected.Store(false)
	s.fleet.Unprotect(vm)
}

// handleConn runs one VM stream. Ownership either stays here for the whole
// stream (serveConn returns false: close and untrack the conn) or moves to
// a shard event loop (true: the loop closes, untracks and logs).
func (s *Server) handleConn(conn net.Conn) {
	if s.serveConn(conn) {
		return
	}
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn handshakes one VM stream and ingests it: binary streams on
// socket conns hand off to their shard's event loop right after the ok
// line; everything else (CSV, non-socket conns, platforms without the
// loop) runs an inline pump on this goroutine. Returns whether ownership
// transferred to an event loop.
func (s *Server) serveConn(conn net.Conn) (handed bool) {
	cw := &connWriter{w: bufio.NewWriter(conn), conn: conn}
	if rb, ok := conn.(interface{ SetReadBuffer(int) error }); ok {
		// A larger receive buffer batches the flow-control round trips: with
		// the kernel default, a backpressured stream ping-pongs ~128 KiB
		// chunks between sender wakeup and reader drain, and at 10k
		// connections those per-chunk syscalls dominate the host's CPU.
		// Both TCP and unix-socket conns expose the setter.
		rb.SetReadBuffer(256 * 1024)
	}
	var act *connActivity
	src := conn
	if s.opts.IdleTimeout > 0 {
		act = &connActivity{}
		src = &sweptConn{Conn: conn, act: act, srv: s}
		s.mu.Lock()
		s.conns[conn] = act
		s.mu.Unlock()
		s.startSweeper() // covers handlers invoked outside Serve
	}
	// The 64 KiB read buffer is recycled across connections: allocating and
	// zeroing one per conn is ~640 MB of memory traffic at 10k streams.
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(src)
	putReader := func() {
		br.Reset(nil) // drop the conn reference before pooling
		readerPool.Put(br)
	}
	h, err := readHandshake(br)
	if err != nil {
		putReader()
		cw.line("error: %v", err)
		return false
	}
	st, resumed, err := s.attach(s.streamSpec(h), cw)
	if err != nil {
		putReader()
		cw.line("error: %v", err)
		return false
	}
	sess, spec := st.sess, st.spec
	sh := s.shardFor(h.vm)
	sh.conns.Add(1)
	// A resumed client replays its stream from the start; samples at or
	// before the high-water mark were already ingested and are skipped so
	// the session sees each sample exactly once, in order.
	var resumeT float64
	binFrames := h.frames == framesBin
	var framesSuffix string
	if binFrames {
		framesSuffix = " frames=bin"
	}
	if resumed {
		resumeT = sess.Stats().LastT
		s.logf("vm %s: stream resumed (resume %d, last_t=%g)", h.vm, st.resumes, resumeT)
		err = cw.line("ok vm=%s app=%s scheme=%s profile=%g resumed=%d last_t=%g%s",
			h.vm, spec.App, spec.Scheme, spec.ProfileSeconds, st.resumes, resumeT, framesSuffix)
	} else {
		s.logf("vm %s: stream open (app=%s scheme=%s profile=%gs frames=%s)",
			h.vm, spec.App, spec.Scheme, spec.ProfileSeconds, orCSV(h.frames))
		err = cw.line("ok vm=%s app=%s scheme=%s profile=%g%s",
			h.vm, spec.App, spec.Scheme, spec.ProfileSeconds, framesSuffix)
	}
	if err != nil {
		putReader()
		sh.conns.Add(-1)
		s.release(h.vm, st)
		return false
	}

	if binFrames {
		// Stream bytes the handshake reader buffered past the handshake line
		// must travel with the connection.
		var leftover []byte
		if n := br.Buffered(); n > 0 {
			peek, _ := br.Peek(n)
			leftover = append([]byte(nil), peek...)
		}
		if s.tryEventLoopHandoff(conn, sh, cw, st, sess, h.vm, resumed, resumeT, leftover) {
			putReader()
			return true
		}
		if act != nil {
			// A failed handoff may have dropped the sweep registration.
			s.mu.Lock()
			s.conns[conn] = act
			s.mu.Unlock()
		}
	}
	defer putReader()
	defer sh.conns.Add(-1)
	defer s.release(h.vm, st)

	var procErr, readErr error
	var evicted bool
	if binFrames {
		procErr, readErr, evicted = s.pumpBinary(br, act, sh, st, sess, h.vm, resumed, resumeT)
	} else {
		procErr, readErr, evicted = s.pumpCSV(br, act, sh, st, sess, h.vm, resumed, resumeT)
	}

	stats, closeErr := sess.Close()
	switch {
	case procErr != nil:
		cw.line("error: %v", procErr)
	case readErr != nil:
		cw.line("error: %v", readErr)
	case evicted:
		cw.line("error: idle timeout: no samples for %v", s.opts.IdleTimeout)
	case closeErr != nil:
		cw.line("error: %v", closeErr)
	}
	cw.line("done vm=%s samples=%d monitored=%d dropped=%d alarms=%d",
		h.vm, stats.Ingested(), stats.Monitored, stats.Dropped, stats.Alarms)
	s.logf("vm %s: stream closed (%d samples, %d dropped, %d alarms, alarmed=%v)",
		h.vm, stats.Ingested(), stats.Dropped, stats.Alarms, stats.Alarmed)
	return false
}

// orCSV names the effective encoding for log lines.
func orCSV(frames string) string {
	if frames == "" {
		return framesCSV
	}
	return frames
}

// pumpCSV runs the CSV stream inline: parse a line, batch the sample,
// observe full batches under one session lock. Since PR 7's ObserveBatch,
// a separate worker goroutine bought nothing but channel traffic and a
// second stack — parsing and observing now interleave on this goroutine,
// and backpressure is simply not reading. After a session error the pump
// keeps reading to end of stream, discarding (same contract as before:
// the client gets its error after a full drain, not a mid-stream reset).
func (s *Server) pumpCSV(br *bufio.Reader, act *connActivity, sh *ingestShard, st *vmState, sess *Session, vm string, resumed bool, resumeT float64) (procErr, readErr error, evicted bool) {
	batch := batchPool.Get().([]pcm.Sample)
	defer func() { batchPool.Put(batch[:0]) }()
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if procErr == nil {
			n, err := sess.ObserveBatch(batch)
			s.totalSamples.Add(uint64(n))
			sh.samples.Add(uint64(n))
			if err != nil {
				procErr = err
			}
		}
		batch = batch[:0]
	}

	reader := feed.NewReader(br)
	for {
		if len(batch) > 0 && br.Buffered() == 0 {
			// About to block on the socket: observe what we have first, so a
			// live mid-flight stream is never parked in the batch.
			flush()
		}
		smp, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var pe *feed.ParseError
			if errors.As(err, &pe) {
				// Malformed line: quarantine it and keep the connection —
				// one torn write must not kill an otherwise healthy stream.
				st.quarantined.Add(1)
				s.totalQuarantined.Add(1)
				sh.quarantined.Add(1)
				s.logf("vm %s: quarantined malformed line %d: %v", vm, pe.Line, pe.Err)
				continue
			}
			if isDeadlineErr(err) {
				if act != nil && act.evicted.Load() {
					evicted = true
					s.idleEvictions.Add(1)
				}
				// Otherwise: shutdown interrupt — end of stream, drain.
			} else {
				readErr = err
			}
			break
		}
		if resumed && smp.T <= resumeT {
			continue
		}
		batch = append(batch, smp)
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
	return procErr, readErr, evicted
}

// readerPool and batchPool recycle the per-connection ingest buffers. A
// connection's working set (64 KiB read buffer plus depth+1 frame batches)
// is allocated-and-zeroed exactly once and then circulates: at 10k
// concurrent streams, per-conn allocation would cost >1 GB of memclr and
// the GC churn to match.
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 64*1024) }}
	batchPool  = sync.Pool{New: func() any { return make([]pcm.Sample, 0, feed.MaxFrameSamples) }}
)

// pumpBinary is the fallback binary pump for connections a shard event
// loop cannot own (non-socket conns, non-Linux, loop startup failure):
// decode one frame into a pooled buffer, observe it in bulk, repeat.
// Backpressure is not reading; a session error drains to end of stream
// discarding, so the client still gets its error after a full drain.
//
// Non-finite samples are quarantined per sample (framing stays intact);
// framing damage — unknown frame type, bad count, truncated payload — is
// fatal because a byte stream without newlines has no resync point.
func (s *Server) pumpBinary(br *bufio.Reader, act *connActivity, sh *ingestShard, st *vmState, sess *Session, vm string, resumed bool, resumeT float64) (procErr, readErr error, evicted bool) {
	buf := batchPool.Get().([]pcm.Sample)
	defer func() { batchPool.Put(buf[:0]) }()

	bin := feed.NewBinReader(br)
	for {
		n, q, err := bin.ReadFrame(buf)
		if q > 0 {
			st.quarantined.Add(uint64(q))
			s.totalQuarantined.Add(uint64(q))
			sh.quarantined.Add(uint64(q))
			s.logf("vm %s: quarantined %d non-finite samples in frame %d", vm, q, bin.Frames())
		}
		if err != nil {
			if err == io.EOF {
				break
			}
			if isDeadlineErr(err) {
				if act != nil && act.evicted.Load() {
					evicted = true
					s.idleEvictions.Add(1)
				}
				// Otherwise: shutdown interrupt — end of stream, drain.
			} else {
				readErr = err
			}
			break
		}
		s.totalBinFrames.Add(1)
		sh.frames.Add(1)
		if procErr != nil {
			continue // poisoned: drain the stream, discard
		}
		batch := buf[:n]
		if resumed {
			k := 0
			for _, smp := range batch {
				if smp.T > resumeT {
					batch[k] = smp
					k++
				}
			}
			batch = batch[:k]
		}
		if len(batch) == 0 {
			continue
		}
		nObs, err := sess.ObserveBatch(batch)
		s.totalSamples.Add(uint64(nObs))
		sh.samples.Add(uint64(nObs))
		if err != nil {
			procErr = err
		}
	}
	return procErr, readErr, evicted
}

// Stream is an in-process VM stream: the same lifecycle as a connection,
// fed directly by the caller (which provides natural backpressure).
type Stream struct {
	srv  *Server
	vm   string
	st   *vmState
	sess *Session
}

// OpenStream registers an in-process stream for spec.VM. The spec's zero
// fields default like a handshake's omitted fields.
func (s *Server) OpenStream(spec StreamSpec) (*Stream, error) {
	if spec.VM == "" {
		return nil, fmt.Errorf("in-process stream needs a VM name")
	}
	if spec.App == "" {
		spec.App = s.opts.App
	}
	if spec.Scheme == "" {
		spec.Scheme = s.opts.Scheme
	}
	if spec.ProfileSeconds <= 0 {
		spec.ProfileSeconds = s.opts.ProfileSeconds
	}
	if spec.Config == (detect.Config{}) {
		spec.Config = s.opts.Config
	}
	if spec.KSConfig == (detect.KSTestConfig{}) {
		spec.KSConfig = s.opts.KSConfig
	}
	userAlarm := spec.OnAlarm
	spec.OnAlarm = func(a detect.Alarm) error {
		s.totalAlarms.Add(1)
		if userAlarm != nil {
			return userAlarm(a)
		}
		return nil
	}
	sess, err := NewSession(spec)
	if err != nil {
		return nil, err
	}
	st, err := s.register(spec.VM, sess)
	if err != nil {
		return nil, err
	}
	return &Stream{srv: s, vm: spec.VM, st: st, sess: sess}, nil
}

// Observe ingests one sample.
func (st *Stream) Observe(smp pcm.Sample) error {
	if err := st.sess.Observe(smp); err != nil {
		return err
	}
	st.srv.totalSamples.Add(1)
	return nil
}

// Session exposes the stream's session (stats, profile, alarms).
func (st *Stream) Session() *Session { return st.sess }

// Close ends the stream and releases its fleet slot.
func (st *Stream) Close() (SessionStats, error) {
	st.srv.release(st.vm, st.st)
	return st.sess.Close()
}

// handshake is the parsed first line of a stream connection.
type handshake struct {
	vm             string
	app            string
	scheme         string
	profileSeconds float64
	frames         string // "", framesCSV or framesBin
}

// readHandshake reads and parses the handshake line.
func readHandshake(br *bufio.Reader) (handshake, error) {
	line, err := br.ReadString('\n')
	if err != nil && (err != io.EOF || line == "") {
		return handshake{}, fmt.Errorf("reading handshake: %v", err)
	}
	if len(line) > maxHandshakeLen {
		return handshake{}, fmt.Errorf("handshake line exceeds %d bytes", maxHandshakeLen)
	}
	return parseHandshake(strings.TrimSpace(line))
}

// parseHandshake parses `sds/1 vm=<id> [key=value]...`.
func parseHandshake(line string) (handshake, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != handshakeMagic {
		return handshake{}, fmt.Errorf("want handshake %q vm=<id> [app=] [scheme=] [profile=], got %q", handshakeMagic, line)
	}
	var h handshake
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok || val == "" {
			return handshake{}, fmt.Errorf("malformed handshake field %q (want key=value)", f)
		}
		switch key {
		case "vm":
			h.vm = val
		case "app":
			h.app = val
		case "scheme":
			h.scheme = val
		case "profile":
			sec, err := strconv.ParseFloat(val, 64)
			if err != nil || sec <= 0 {
				return handshake{}, fmt.Errorf("bad profile window %q", val)
			}
			h.profileSeconds = sec
		case "frames":
			switch val {
			case framesCSV, framesBin:
				h.frames = val
			default:
				return handshake{}, fmt.Errorf("unknown frames encoding %q (want csv or bin)", val)
			}
		default:
			return handshake{}, fmt.Errorf("unknown handshake field %q", key)
		}
	}
	if h.vm == "" {
		return handshake{}, fmt.Errorf("handshake is missing the vm=<id> field")
	}
	return h, nil
}

// connWriter serializes line writes to a connection (alarms can come from
// another VM's pump via the fleet, errors from this stream's owner). When
// writeTimeout is set — connections owned by a shard event loop — every
// line is bounded by a write deadline, so one wedged client cannot stall
// the single-threaded loop; past the deadline the writer goes sticky-failed
// like any dead client.
type connWriter struct {
	mu           sync.Mutex
	w            *bufio.Writer
	err          error
	conn         net.Conn
	writeTimeout time.Duration
}

func (c *connWriter) line(format string, args ...any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.writeTimeout > 0 && c.conn != nil {
		c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	if _, err := fmt.Fprintf(c.w, format+"\n", args...); err != nil {
		c.err = err
		return err
	}
	if err := c.w.Flush(); err != nil {
		c.err = err
		return err
	}
	return nil
}

// AlarmEvent is the JSON wire format of one alarm (also detectd's -json
// output format).
type AlarmEvent struct {
	T        float64 `json:"t"`
	Detector string  `json:"detector"`
	Metric   string  `json:"metric"`
	Reason   string  `json:"reason"`
}

// NewAlarmEvent converts a detect.Alarm to its wire format.
func NewAlarmEvent(a detect.Alarm) AlarmEvent {
	return AlarmEvent{T: a.T, Detector: a.Detector, Metric: a.Metric.String(), Reason: a.Reason}
}

// alarmJSON renders an alarm as a one-line JSON object.
func alarmJSON(a detect.Alarm) string {
	b, err := json.Marshal(NewAlarmEvent(a))
	if err != nil {
		return fmt.Sprintf(`{"t":%g,"detector":%q}`, a.T, a.Detector)
	}
	return string(b)
}

// isDeadlineErr reports whether err stems from the shutdown read deadline.
func isDeadlineErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
