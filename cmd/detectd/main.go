// Command detectd runs a detection scheme over a PCM counter stream read
// from stdin — the deployment shape of the paper's system: a
// hypervisor-side process consuming `t,access,miss` CSV lines (easily
// produced from Intel PCM or a perf wrapper) and emitting alarm events.
//
// The first -profile-seconds of the stream serve as the Stage-1 profile
// (the VM must be known attack-free during that window, e.g. right after
// placement); everything after is monitored.
//
//	# replay a recorded stream
//	detectd -scheme sds < samples.csv
//
//	# record a simulated stream, then detect over it
//	detectd -record 120 -app facenet > samples.csv
//	detectd -scheme sdsp < samples.csv
//
// With -json each alarm is emitted as one JSON object per line; the final
// summary goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/memdos/sds"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
)

func main() {
	var (
		scheme         = flag.String("scheme", "sds", "detection scheme: sds, sdsb, sdsp or kstest")
		profileSeconds = flag.Float64("profile-seconds", 900, "leading stream seconds used as the Stage-1 profile")
		appName        = flag.String("app", "monitored-vm", "application name for the profile")
		jsonOut        = flag.Bool("json", false, "emit alarms as JSON lines")
		record         = flag.Float64("record", 0, "instead of detecting, record this many seconds of simulated telemetry for -app to stdout")
		attackAt       = flag.Float64("attack-at", 0, "with -record: start a bus-locking attack at this time (0 = none)")
		seed           = flag.Uint64("seed", 1, "simulation seed for -record")
	)
	flag.Parse()
	var err error
	if *record > 0 {
		err = runRecord(*appName, *record, *attackAt, *seed)
	} else {
		err = runDetect(os.Stdin, os.Stdout, *scheme, *appName, *profileSeconds, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "detectd:", err)
		os.Exit(1)
	}
}

// runRecord writes a simulated telemetry stream to stdout in feed format.
func runRecord(app string, seconds, attackAt float64, seed uint64) error {
	model, err := sds.NewApplication(app, seed)
	if err != nil {
		return err
	}
	sched := sds.AttackSchedule{}
	if attackAt > 0 {
		sched = sds.AttackSchedule{Kind: sds.BusLockAttack, Start: attackAt, Ramp: 10}
	}
	w := feed.NewWriter(os.Stdout)
	cfg := sds.DefaultConfig()
	n := sds.SampleCount(seconds, cfg.TPCM)
	for i := 0; i < n; i++ {
		now := float64(i+1) * cfg.TPCM
		a, m := model.Sample(cfg.TPCM, sched.Env(now, false))
		if err := w.Write(pcm.Sample{T: now, Access: a, Miss: m}); err != nil {
			return err
		}
	}
	return w.Flush()
}

// runDetect profiles on the stream head and detects over the rest.
func runDetect(in io.Reader, out io.Writer, scheme, app string, profileSeconds float64, jsonOut bool) error {
	if profileSeconds <= 0 {
		return fmt.Errorf("profile window must be positive, got %v", profileSeconds)
	}
	cfg := sds.DefaultConfig()
	reader := feed.NewReader(in)

	// Stage 1: accumulate the profile window.
	var profileSamples []sds.Sample
	var cutoff float64
	for {
		s, err := reader.Next()
		if err == io.EOF {
			return fmt.Errorf("stream ended during the %g s profiling window (%d samples)", profileSeconds, len(profileSamples))
		}
		if err != nil {
			return err
		}
		if len(profileSamples) == 0 {
			cutoff = s.T + profileSeconds
		}
		profileSamples = append(profileSamples, s)
		if s.T >= cutoff {
			break
		}
	}
	profile, err := sds.BuildProfile(app, profileSamples, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "detectd: profiled %s over %d samples (μ_access=%.4g σ=%.4g periodic=%v)\n",
		app, len(profileSamples), profile.MeanAccess, profile.StdAccess, profile.Periodic)

	det, err := buildDetector(scheme, profile, cfg)
	if err != nil {
		return err
	}
	guard := detect.NewSanitizer(det)

	// Stage 2: stream detection.
	enc := json.NewEncoder(out)
	seen := 0
	emitted := 0
	for {
		s, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		seen++
		guard.Observe(s)
		for _, alarm := range guard.Alarms()[emitted:] {
			emitted++
			if jsonOut {
				if err := enc.Encode(alarmEvent{
					T:        alarm.T,
					Detector: alarm.Detector,
					Metric:   alarm.Metric.String(),
					Reason:   alarm.Reason,
				}); err != nil {
					return err
				}
			} else {
				fmt.Fprintf(out, "[%10.2fs] ALARM %s (%s): %s\n", alarm.T, alarm.Detector, alarm.Metric, alarm.Reason)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "detectd: %d samples monitored, %d dropped as malformed, %d alarms, final state alarmed=%v\n",
		seen, guard.Dropped(), emitted, guard.Alarmed())
	return nil
}

// alarmEvent is the JSON wire format of one alarm.
type alarmEvent struct {
	T        float64 `json:"t"`
	Detector string  `json:"detector"`
	Metric   string  `json:"metric"`
	Reason   string  `json:"reason"`
}

func buildDetector(scheme string, profile sds.Profile, cfg sds.Config) (sds.Detector, error) {
	switch scheme {
	case "sds":
		return sds.NewSDS(profile, cfg)
	case "sdsb":
		return sds.NewSDSB(profile, cfg)
	case "sdsp":
		return sds.NewSDSP(profile, cfg)
	case "kstest":
		return sds.NewKSTest(sds.DefaultKSTestConfig(), nil)
	default:
		return nil, fmt.Errorf("unknown scheme %q (want sds, sdsb, sdsp or kstest)", scheme)
	}
}
