package experiment

import (
	"math"
	"testing"
)

func TestPeriodEstimatorAblationValidation(t *testing.T) {
	c := fastConfig()
	if _, err := c.PeriodEstimatorAblation(0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestPeriodEstimatorAblationReproducesMotivation(t *testing.T) {
	// §4.2.2: "solely using DFT or ACF cannot accurately determine the
	// true frequencies" — the combined method must beat both single
	// methods, ACF-only must show multiple-of-period errors, and DFT-only
	// must show more false detections on trended noise than the combined
	// method.
	c := fastConfig()
	results, err := c.PeriodEstimatorAblation(300)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PeriodEstimatorResult{}
	for _, r := range results {
		byName[r.Method] = r
		total := r.Correct + r.MultipleErrors + r.OtherErrors
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("%s: outcome fractions sum to %v", r.Method, total)
		}
	}
	combined, dft, acf := byName["DFT-ACF"], byName["DFT-only"], byName["ACF-only"]

	if combined.Correct < 0.75 {
		t.Errorf("combined accuracy %v, want ≥ 0.75", combined.Correct)
	}
	if combined.Correct < dft.Correct && combined.Correct < acf.Correct {
		t.Errorf("combined (%v) beat neither DFT-only (%v) nor ACF-only (%v)",
			combined.Correct, dft.Correct, acf.Correct)
	}
	if acf.MultipleErrors <= combined.MultipleErrors {
		t.Errorf("ACF-only multiple-errors %v not above combined %v — the paper's ACF failure mode is missing",
			acf.MultipleErrors, combined.MultipleErrors)
	}
	if dft.FalseDetections <= combined.FalseDetections {
		t.Errorf("DFT-only false detections %v not above combined %v — the paper's DFT failure mode is missing",
			dft.FalseDetections, combined.FalseDetections)
	}
}
