package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/workload"
)

// AccuracyCell is one bar of the paper's Figs. 9–11: the distribution of
// recall, specificity and detection delay across runs for one
// (application, attack, scheme) combination.
type AccuracyCell struct {
	App    string
	Attack attack.Kind
	Scheme Scheme

	Recall      metrics.Distribution
	Specificity metrics.Distribution
	// Delay summarizes detection delays of the runs that detected the
	// attack at all; DetectionRate is the fraction that did.
	Delay         metrics.Distribution
	DetectionRate float64
}

// Accuracy reproduces Figs. 9 (recall), 10 (specificity) and 11 (delay):
// c.Runs seeded runs for every application in apps, both attacks, and every
// scheme the paper evaluates for that application.
func (c Config) Accuracy(apps []string) ([]AccuracyCell, error) {
	if len(apps) == 0 {
		apps = workload.AppNames()
	}
	var cells []AccuracyCell
	for _, app := range apps {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			for _, scheme := range SchemesFor(app) {
				cell, err := c.accuracyCell(app, kind, scheme)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

func (c Config) accuracyCell(app string, kind attack.Kind, scheme Scheme) (AccuracyCell, error) {
	var (
		recalls = make([]float64, 0, c.Runs)
		specs   = make([]float64, 0, c.Runs)
		delays  = make([]float64, 0, c.Runs)
	)
	detected := 0
	for run := 0; run < c.Runs; run++ {
		out, err := c.DetectionRun(app, kind, scheme, run)
		if err != nil {
			return AccuracyCell{}, fmt.Errorf("%s/%v/%s run %d: %w", app, kind, scheme, run, err)
		}
		recalls = append(recalls, out.Recall*100)
		specs = append(specs, out.Specificity*100)
		if out.Detected {
			detected++
		}
		if out.Delay >= 0 {
			delays = append(delays, out.Delay)
		}
	}
	return AccuracyCell{
		App:           app,
		Attack:        kind,
		Scheme:        scheme,
		Recall:        metrics.Summarize(recalls),
		Specificity:   metrics.Summarize(specs),
		Delay:         metrics.Summarize(delays),
		DetectionRate: float64(detected) / float64(c.Runs),
	}, nil
}
