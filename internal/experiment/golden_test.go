package experiment

import (
	"fmt"
	"strings"
	"testing"

	"github.com/memdos/sds/internal/golden"
	"github.com/memdos/sds/internal/workload"
)

// TestGoldenFig8WalkThrough pins the paper's Fig. 8 walk-through — the
// computed-period sequence SDS/P produces on FaceNet under a mid-run bus
// locking attack — byte for byte at the default seed. The period sequence
// is the most drift-sensitive artifact in the repository: it depends on
// the workload model, the FFT/ACF period estimator and the SDS/P window
// logic all at once. Intentional changes regenerate with -update.
func TestGoldenFig8WalkThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 300 s SDS/P walk-through; skipped in -short mode")
	}
	c := DefaultConfig()
	res, err := c.SDSPExample(workload.FaceNet, 300)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 8 — SDS/P walk-through on %s (bus locking at %g s)\n", res.App, res.AttackStart)
	fmt.Fprintf(&sb, "normal period: %d MA windows\n", res.NormalPeriod)
	if res.AlarmTime >= 0 {
		fmt.Fprintf(&sb, "alarm at: %.2f s\n", res.AlarmTime)
	} else {
		fmt.Fprintf(&sb, "alarm at: never\n")
	}
	fmt.Fprintf(&sb, "computed periods (AccessNum):\n")
	for _, p := range res.Estimates {
		found := "-"
		if p.Found {
			found = fmt.Sprint(p.Period)
		}
		dev := ""
		if p.Deviant {
			dev = "  deviant"
		}
		fmt.Fprintf(&sb, "t=%8.2f  period=%s%s\n", p.T, found, dev)
	}
	golden.AssertString(t, "testdata/golden/fig8_sdsp.txt", sb.String())
}

// TestGoldenAccuracyCells pins the Figs. 9–11 accuracy grid — the numbers
// the ISSUE calls the paper-fidelity contract — at a reduced but fixed
// configuration (2 runs, kmeans+facenet, seed 1). This is the same grid
// cmd/evaluate renders; pinning the raw cells here catches drift even if
// the CLI rendering changes.
func TestGoldenAccuracyCells(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced accuracy grid; skipped in -short mode")
	}
	c := DefaultConfig()
	c.Runs = 2
	c.Seed = 1
	c.Parallel = 0
	cells, err := c.Accuracy([]string{workload.KMeans, workload.FaceNet})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("app  attack  scheme  recall[med p10 p90]  specificity[med p10 p90]  delay[med p10 p90 n]  rate\n")
	for _, cell := range cells {
		fmt.Fprintf(&sb, "%s  %v  %s  %.4f %.4f %.4f  %.4f %.4f %.4f  %.4f %.4f %.4f %d  %.2f\n",
			cell.App, cell.Attack, cell.Scheme,
			cell.Recall.Median, cell.Recall.P10, cell.Recall.P90,
			cell.Specificity.Median, cell.Specificity.P10, cell.Specificity.P90,
			cell.Delay.Median, cell.Delay.P10, cell.Delay.P90, cell.Delay.N,
			cell.DetectionRate)
	}
	golden.AssertString(t, "testdata/golden/accuracy_cells.txt", sb.String())
}
