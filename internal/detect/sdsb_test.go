package detect

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

func TestNewSDSBValidation(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 10)
	bad := DefaultConfig()
	bad.K = 0.5
	if _, err := NewSDSB(prof, bad); err == nil {
		t.Error("bad config accepted")
	}
	negative := prof
	negative.StdAccess = -1
	if _, err := NewSDSB(negative, DefaultConfig()); err == nil {
		t.Error("negative σ accepted")
	}
}

func TestSDSBNoAlarmWithoutAttack(t *testing.T) {
	// A burst-free run should produce zero false alarms: phase levels stay
	// inside the Chebyshev band by construction.
	for _, app := range []string{workload.KMeans, workload.TeraSort, workload.FaceNet} {
		prof := steadyProfile(t, app, 11)
		d, err := NewSDSB(prof, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		feed(d, genSamples(t, app, 11, 300, attack.Schedule{}))
		// Same seed as the profile, so this replays similar phases; a few
		// alarms can still happen via rare bursts. Demand "rare".
		if alarms := d.Alarms(); len(alarms) > 2 {
			t.Errorf("%s: %d false alarms in 300 s: %+v", app, len(alarms), alarms)
		}
	}
}

func TestSDSBDetectsBusLocking(t *testing.T) {
	for _, app := range workload.AppNames() {
		prof := steadyProfile(t, app, 12)
		d, err := NewSDSB(prof, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sched := attack.Schedule{Kind: attack.BusLock, Start: 300, Ramp: 10}
		feed(d, genSamples(t, app, 13, 600, sched))
		at := firstAlarmAfter(d, 300)
		if at < 0 {
			t.Errorf("%s: no alarm after attack start (alarms: %+v)", app, d.Alarms())
			continue
		}
		// The theoretical floor is H_C·ΔW·T_PCM = 15 s after the effect
		// crosses the bound; allow EWMA lag and ramp.
		if delay := at - 300; delay > 60 {
			t.Errorf("%s: bus-lock detection delay %v s, want < 60", app, delay)
		}
		if !d.Alarmed() {
			t.Errorf("%s: alarm not latched while attack persists", app)
		}
	}
}

func TestSDSBDetectsCleansingViaMissNum(t *testing.T) {
	for _, app := range workload.AppNames() {
		prof := steadyProfile(t, app, 14)
		d, err := NewSDSB(prof, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sched := attack.Schedule{Kind: attack.Cleanse, Start: 300, Ramp: 10}
		feed(d, genSamples(t, app, 15, 600, sched))
		at := firstAlarmAfter(d, 300)
		if at < 0 || at-300 > 60 {
			t.Errorf("%s: cleansing alarm at %v, want within (300, 360]", app, at)
			continue
		}
		var metric Metric
		for _, a := range d.Alarms() {
			if a.T == at {
				metric = a.Metric
			}
		}
		if metric != MetricMiss {
			t.Errorf("%s: cleansing alarm metric = %v, want MissNum", app, metric)
		}
	}
}

func TestSDSBMinimumDetectionDelay(t *testing.T) {
	// The alarm can never fire before H_C EWMA windows have elapsed after
	// the statistics go out of range: H_C·ΔW·T_PCM = 15 s with Table 1
	// parameters (§4.2.1, "How fast can the attacks be detected?").
	cfg := DefaultConfig()
	prof := steadyProfile(t, workload.KMeans, 16)
	d, err := NewSDSB(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := attack.Schedule{Kind: attack.BusLock, Start: 100, Ramp: 0}
	feed(d, genSamples(t, workload.KMeans, 17, 300, sched))
	at := firstAlarmAfter(d, 100)
	minDelay := float64(cfg.HC) * float64(cfg.DW) * cfg.TPCM
	if at < 0 {
		t.Fatal("no alarm at all")
	}
	if at-100 < minDelay-1e-9 {
		t.Fatalf("alarm after %v s, below theoretical floor %v s", at-100, minDelay)
	}
}

func TestSDSBAlarmClearsWhenAttackStops(t *testing.T) {
	prof := steadyProfile(t, workload.Bayes, 18)
	d, err := NewSDSB(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := attack.Schedule{Kind: attack.BusLock, Start: 100, Ramp: 5, Stop: 200}
	feed(d, genSamples(t, workload.Bayes, 19, 400, sched))
	if d.Alarmed() {
		t.Fatal("alarm still latched 200 s after the attack ended")
	}
	if len(d.Alarms()) == 0 {
		t.Fatal("attack was never detected")
	}
}

func TestSDSBViolationCountingExact(t *testing.T) {
	// Feed handcrafted samples: a constant in-range stream, then a step
	// below the lower bound; the alarm must fire at exactly the H_C-th
	// consecutive violating window.
	cfg := DefaultConfig()
	cfg.W, cfg.DW, cfg.HC = 10, 10, 3
	prof := Profile{App: "synthetic", MeanAccess: 100, StdAccess: 5, MeanMiss: 20, StdMiss: 1}
	d, err := NewSDSB(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tick := 0
	push := func(v float64, n int) {
		for i := 0; i < n; i++ {
			tick++
			d.Observe(pcm.Sample{T: float64(tick) * cfg.TPCM, Access: v, Miss: 20})
		}
	}
	push(100, 50) // five in-range windows
	if d.Alarmed() {
		t.Fatal("alarmed while in range")
	}
	push(10, 20) // two violating windows — below H_C
	if a, _ := d.Violations(); a != 2 {
		t.Fatalf("violations = %d, want 2", a)
	}
	if d.Alarmed() {
		t.Fatal("alarmed before H_C consecutive violations")
	}
	push(10, 10) // third violating window
	if !d.Alarmed() {
		t.Fatal("no alarm at H_C-th violation")
	}
	// Returning in range clears the alarm once the EWMA recovers into the
	// band (the EWMA needs ~13 windows at α=0.2 to close a 90-unit gap).
	push(100, 200)
	if d.Alarmed() {
		t.Fatal("alarm not cleared after the EWMA recovered")
	}
}

func TestSDSBUpperBoundViolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.DW, cfg.HC = 10, 10, 2
	prof := Profile{App: "synthetic", MeanAccess: 100, StdAccess: 5, MeanMiss: 20, StdMiss: 1}
	d, err := NewSDSB(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d.Observe(pcm.Sample{T: float64(i+1) * cfg.TPCM, Access: 100, Miss: 100})
	}
	if !d.Alarmed() {
		t.Fatal("no alarm for MissNum above upper bound")
	}
	if got := d.Alarms()[0].Metric; got != MetricMiss {
		t.Fatalf("metric = %v, want MissNum", got)
	}
}

func TestSDSBWindowHook(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 20)
	var stats []WindowStat
	d, err := NewSDSB(prof, DefaultConfig(), WithSDSBWindowHook(func(w WindowStat) {
		stats = append(stats, w)
	}))
	if err != nil {
		t.Fatal(err)
	}
	feed(d, genSamples(t, workload.KMeans, 21, 60, attack.Schedule{}))
	// 60 s = 6000 samples → (6000−200)/50 + 1 = 117 windows.
	if len(stats) != 117 {
		t.Fatalf("hook saw %d windows, want 117", len(stats))
	}
	for i, w := range stats {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if w.EWMAAccess <= 0 || w.MAAccess <= 0 {
			t.Fatalf("window %d has non-positive values: %+v", i, w)
		}
	}
}

func TestSDSBPropertyNeverAlarmsInsideBounds(t *testing.T) {
	// Property: with all samples well inside the bounds, no alarm ever
	// fires regardless of noise pattern.
	cfg := DefaultConfig()
	cfg.W, cfg.DW = 20, 5
	prof := Profile{App: "synthetic", MeanAccess: 100, StdAccess: 30, MeanMiss: 50, StdMiss: 20}
	d, err := NewSDSB(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(30, 31)
	for i := 0; i < 20000; i++ {
		// ±1σ noise stays within the ±1.125σ band even unsmoothed.
		d.Observe(pcm.Sample{
			T:      float64(i+1) * cfg.TPCM,
			Access: 100 + 28*(r.Float64()*2-1),
			Miss:   50 + 18*(r.Float64()*2-1),
		})
	}
	if len(d.Alarms()) != 0 {
		t.Fatalf("alarms inside bounds: %+v", d.Alarms())
	}
}
