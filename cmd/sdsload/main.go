// Command sdsload replays N simulated VM telemetry streams against a
// running sdsd and reports aggregate throughput — a load generator and
// smoke-test client in one.
//
// Each simulated VM reuses the `detectd -record` replay path (same app
// models, same attack schedules, deterministic per-VM seeds), so a given
// flag set always produces the same streams. With -attack-at every VM
// comes under attack mid-stream and -expect-alarms turns the run into an
// assertion: the exit status is non-zero when any stream loses samples or
// raises fewer alarms than expected.
//
//	# 32 clean VM streams
//	sdsload -addr 127.0.0.1:7031 -vms 32 -seconds 120 -profile-seconds 60
//
//	# attacked streams; fail unless every VM alarms
//	sdsload -addr 127.0.0.1:7031 -vms 8 -seconds 180 -profile-seconds 60 \
//	        -attack-at 120 -expect-alarms 1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/memdos/sds/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:7031", "sdsd stream address")
		network        = flag.String("network", "tcp", "stream network: tcp or unix")
		vms            = flag.Int("vms", 8, "number of concurrent VM streams")
		seconds        = flag.Float64("seconds", 120, "virtual seconds of telemetry per VM")
		profileSeconds = flag.Float64("profile-seconds", 60, "Stage-1 profile window sent in the handshake")
		app            = flag.String("app", "kmeans", "application model for the simulated VMs")
		scheme         = flag.String("scheme", "sds", "detection scheme sent in the handshake")
		attackAt       = flag.Float64("attack-at", 0, "start a bus-locking attack at this stream time (0 = none)")
		seed           = flag.Uint64("seed", 1, "base seed; VM i streams with seed+i")
		expectAlarms   = flag.Int("expect-alarms", 0, "fail unless every VM raises at least this many alarms")
		retries        = flag.Int("connect-retries", 10, "connection attempts per VM (100ms apart) before giving up")
	)
	flag.Parse()
	if err := run(*addr, *network, *app, *scheme, *vms, *seconds, *profileSeconds, *attackAt, *seed, *expectAlarms, *retries); err != nil {
		fmt.Fprintln(os.Stderr, "sdsload:", err)
		os.Exit(1)
	}
}

// vmResult is one stream's outcome.
type vmResult struct {
	vm      string
	sent    int
	samples int // samples the server accounted for in its done line
	alarms  int
	err     error
}

func run(addr, network, app, scheme string, vms int, seconds, profileSeconds, attackAt float64, seed uint64, expectAlarms, retries int) error {
	if vms <= 0 {
		return fmt.Errorf("need at least one VM stream, got %d", vms)
	}
	results := make([]vmResult, vms)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vm := fmt.Sprintf("load-%03d", i)
			results[i] = streamVM(addr, network, vm, app, scheme, seconds, profileSeconds, attackAt, seed+uint64(i), retries)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total, alarms, failures int
	for _, r := range results {
		switch {
		case r.err != nil:
			failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: %v\n", r.vm, r.err)
		case r.samples != r.sent:
			failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: sent %d samples, server accounted %d — samples lost\n", r.vm, r.sent, r.samples)
		case r.alarms < expectAlarms:
			failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: %d alarms, expected at least %d\n", r.vm, r.alarms, expectAlarms)
		}
		total += r.samples
		alarms += r.alarms
	}
	fmt.Printf("sdsload: %d VMs, %d samples in %.2fs (%.0f samples/sec), %d alarms\n",
		vms, total, elapsed.Seconds(), float64(total)/elapsed.Seconds(), alarms)
	if failures > 0 {
		return fmt.Errorf("%d of %d streams failed", failures, vms)
	}
	return nil
}

// streamVM runs one VM's full stream lifecycle against the server.
func streamVM(addr, network, vm, app, scheme string, seconds, profileSeconds, attackAt float64, seed uint64, retries int) vmResult {
	res := vmResult{vm: vm}
	conn, err := dialRetry(network, addr, retries)
	if err != nil {
		res.err = err
		return res
	}
	defer conn.Close()

	// The handshake reply is validated synchronously before any telemetry is
	// sent: a server that rejects the handshake — or closes the connection
	// without replying at all — is a hard failure, not a stream that happens
	// to account zero samples.
	br := bufio.NewReaderSize(conn, 64*1024)
	if _, err := fmt.Fprintf(conn, "sds/1 vm=%s app=%s scheme=%s profile=%g\n", vm, app, scheme, profileSeconds); err != nil {
		res.err = err
		return res
	}
	reply, err := br.ReadString('\n')
	if err != nil {
		res.err = fmt.Errorf("handshake reply: %w", err)
		return res
	}
	switch reply = strings.TrimSpace(reply); {
	case strings.HasPrefix(reply, "error: "):
		res.err = fmt.Errorf("server rejected handshake: %s", strings.TrimPrefix(reply, "error: "))
		return res
	case !strings.HasPrefix(reply, "ok "):
		res.err = fmt.Errorf("unexpected handshake reply %q", reply)
		return res
	}

	// The server streams alarm lines inline, so read concurrently with the
	// write — an unread response buffer would backpressure our own stream.
	type doneInfo struct {
		samples int
		err     error
	}
	resp := make(chan doneInfo, 1)
	alarmCount := make(chan int, 1)
	go func() {
		alarms := 0
		var d doneInfo
		d.samples = -1
		sc := bufio.NewScanner(br)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "alarm "):
				alarms++
			case strings.HasPrefix(line, "error: "):
				d.err = fmt.Errorf("server: %s", strings.TrimPrefix(line, "error: "))
			case strings.HasPrefix(line, "done "):
				for _, f := range strings.Fields(line)[1:] {
					if v, ok := strings.CutPrefix(f, "samples="); ok {
						d.samples, _ = strconv.Atoi(v)
					}
				}
			}
		}
		if d.err == nil {
			d.err = sc.Err()
		}
		alarmCount <- alarms
		resp <- d
	}()

	n, err := server.WriteSimulatedStream(conn, server.ReplaySpec{
		App:      app,
		Seconds:  seconds,
		AttackAt: attackAt,
		Seed:     seed,
	})
	if err != nil {
		res.err = fmt.Errorf("streaming: %w", err)
		return res
	}
	res.sent = n
	if cw, ok := conn.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
	res.alarms = <-alarmCount
	d := <-resp
	res.samples = d.samples
	if d.err != nil {
		res.err = d.err
	} else if d.samples < 0 {
		res.err = fmt.Errorf("connection closed without a done line")
	}
	return res
}

// dialRetry connects with retries so sdsload can start before sdsd's
// listener is up (the smoke test launches both at once).
func dialRetry(network, addr string, retries int) (net.Conn, error) {
	var err error
	for i := 0; i < retries; i++ {
		var conn net.Conn
		if conn, err = net.Dial(network, addr); err == nil {
			return conn, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("connecting to %s %s: %w", network, addr, err)
}
