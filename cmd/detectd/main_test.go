package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/memdos/sds"
	"github.com/memdos/sds/internal/server"
)

// recordStream builds an in-memory CSV stream: attack-free until attackAt,
// then a bus-locking attack until the end. It uses the same replay path as
// `detectd -record`.
func recordStream(t *testing.T, app string, seconds, attackAt float64) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if _, err := server.WriteSimulatedStream(&buf, server.ReplaySpec{
		App:      app,
		Seconds:  seconds,
		AttackAt: attackAt,
		Seed:     7,
	}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRunDetectTextOutput(t *testing.T) {
	in := recordStream(t, sds.KMeans, 1400, 1100)
	var out bytes.Buffer
	if err := runDetect(in, &out, "sds", sds.KMeans, 900, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "ALARM") {
		t.Fatalf("no alarm emitted:\n%s", text)
	}
}

func TestRunDetectJSONOutput(t *testing.T) {
	in := recordStream(t, sds.KMeans, 1400, 1100)
	var out bytes.Buffer
	if err := runDetect(in, &out, "sdsb", sds.KMeans, 900, true); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	attackEvents := 0
	for sc.Scan() {
		var ev server.AlarmEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		if ev.Detector == "" || ev.Reason == "" || ev.Metric == "" {
			t.Fatalf("incomplete event %+v", ev)
		}
		// Rare pre-attack false alarms are part of the model; the attack
		// itself must be among the events.
		if ev.T >= 1100 {
			attackEvents++
		}
	}
	if attackEvents == 0 {
		t.Fatal("no JSON event for the attack")
	}
}

func TestRunDetectErrors(t *testing.T) {
	if err := runDetect(strings.NewReader(""), &bytes.Buffer{}, "sds", "x", 900, false); err == nil {
		t.Error("empty stream accepted")
	}
	in := recordStream(t, sds.KMeans, 1000, 0)
	if err := runDetect(in, &bytes.Buffer{}, "bogus", sds.KMeans, 900, false); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := runDetect(strings.NewReader("0.01,1,0\n"), &bytes.Buffer{}, "sds", "x", 0, false); err == nil {
		t.Error("zero profile window accepted")
	}
}

// TestRunDetectAllSchemes: every scheme profiles and monitors a recorded
// stream end to end through the shared session path.
func TestRunDetectAllSchemes(t *testing.T) {
	for _, scheme := range []string{"sds", "sdsb", "sdsp", "kstest"} {
		in := recordStream(t, sds.FaceNet, 100, 0)
		if err := runDetect(in, &bytes.Buffer{}, scheme, sds.FaceNet, 60, false); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
}

// TestDetectdMatchesServer is the equivalence acceptance check: the same
// recorded stream, run through detectd's stdin loop and through a sdsd-style
// TCP stream, must yield the same alarms (times, detectors, reasons).
func TestDetectdMatchesServer(t *testing.T) {
	stream := recordStream(t, sds.KMeans, 300, 150)
	const profileSeconds = 100.0

	// detectd path: stdin loop with -json output.
	var out bytes.Buffer
	if err := runDetect(bytes.NewReader(stream.Bytes()), &out, "sds", sds.KMeans, profileSeconds, true); err != nil {
		t.Fatal(err)
	}
	var local []server.AlarmEvent
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var ev server.AlarmEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		local = append(local, ev)
	}
	if len(local) == 0 {
		t.Fatal("detectd raised no alarms on the attacked stream")
	}

	// Server path: the same bytes over a TCP stream connection.
	srv := server.New(server.Options{App: sds.KMeans, ProfileSeconds: profileSeconds})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer l.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var remote []server.AlarmEvent
	respDone := make(chan error, 1)
	go func() {
		rsc := bufio.NewScanner(conn)
		rsc.Buffer(make([]byte, 64*1024), 1024*1024)
		for rsc.Scan() {
			line := rsc.Text()
			switch {
			case strings.HasPrefix(line, "alarm "):
				var ev server.AlarmEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "alarm ")), &ev); err != nil {
					respDone <- err
					return
				}
				remote = append(remote, ev)
			case strings.HasPrefix(line, "error: "):
				respDone <- fmt.Errorf("server: %s", line)
				return
			}
		}
		respDone <- rsc.Err()
	}()
	fmt.Fprintf(conn, "sds/1 vm=equiv scheme=sds profile=%g\n", profileSeconds)
	if _, err := conn.Write(stream.Bytes()); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	if err := <-respDone; err != nil {
		t.Fatal(err)
	}

	if len(remote) != len(local) {
		t.Fatalf("server raised %d alarms, detectd %d", len(remote), len(local))
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Errorf("alarm %d differs: detectd %+v, server %+v", i, local[i], remote[i])
		}
	}
}
