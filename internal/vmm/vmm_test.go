package vmm

import (
	"math"
	"testing"

	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/membus"
	"github.com/memdos/sds/internal/randx"
)

// fixedWorkload demands a constant rate and touches a small private buffer.
type fixedWorkload struct {
	name   string
	perSec float64
	lock   float64
	base   uint64
	issued int
}

func (f *fixedWorkload) Name() string { return f.name }

func (f *fixedWorkload) Demand(dt float64) (int, float64) {
	return int(f.perSec * dt), f.lock
}

func (f *fixedWorkload) Issue(granted int, c *cachesim.Cache, owner cachesim.Owner) {
	for i := 0; i < granted; i++ {
		c.Access(owner, f.base+uint64(i%64)*64)
	}
	f.issued += granted
}

func newMachine(t *testing.T, busPerSec float64) *Machine {
	t.Helper()
	cache, err := cachesim.New(cachesim.Config{SizeBytes: 256 * 1024, LineSize: 64, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	bus, err := membus.New(busPerSec, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cache, bus)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(nil, nil); err == nil {
		t.Error("nil resources accepted")
	}
}

func TestAddVMValidation(t *testing.T) {
	m := newMachine(t, 1e6)
	if _, err := m.AddVM("x", nil); err == nil {
		t.Error("nil workload accepted")
	}
	vm, err := m.AddVM("victim", &fixedWorkload{name: "w", perSec: 100})
	if err != nil {
		t.Fatal(err)
	}
	if vm.ID() != 0 || vm.Name() != "victim" {
		t.Fatalf("vm = %d %q", vm.ID(), vm.Name())
	}
}

func TestTickValidation(t *testing.T) {
	m := newMachine(t, 1e6)
	if err := m.Tick(0); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestUncontendedProgressIsRealTime(t *testing.T) {
	m := newMachine(t, 1e6)
	w := &fixedWorkload{name: "app", perSec: 1000}
	vm, _ := m.AddVM("v", w)
	if err := m.Run(10, 0.01); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Now()-10) > 1e-9 {
		t.Fatalf("Now = %v, want 10", m.Now())
	}
	if math.Abs(vm.Progress()-10) > 1e-6 {
		t.Fatalf("progress = %v, want 10", vm.Progress())
	}
	if vm.Granted() != vm.Demanded() {
		t.Fatalf("granted %d != demanded %d without contention", vm.Granted(), vm.Demanded())
	}
}

func TestThrottlingStopsProgressAndCounters(t *testing.T) {
	m := newMachine(t, 1e6)
	w0 := &fixedWorkload{name: "protected", perSec: 1000}
	w1 := &fixedWorkload{name: "other", perSec: 1000, base: 1 << 30}
	vm0, _ := m.AddVM("protected", w0)
	vm1, _ := m.AddVM("other", w1)
	if err := m.PauseAllExcept(vm0.ID()); err != nil {
		t.Fatal(err)
	}
	if !vm1.Paused() || vm0.Paused() {
		t.Fatal("wrong pause states")
	}
	if err := m.Run(5, 0.01); err != nil {
		t.Fatal(err)
	}
	if vm1.Progress() != 0 || vm1.Granted() != 0 {
		t.Fatalf("paused VM progressed: %v / %d", vm1.Progress(), vm1.Granted())
	}
	m.ResumeAll()
	if err := m.Run(10, 0.01); err != nil {
		t.Fatal(err)
	}
	if vm1.Progress() <= 0 {
		t.Fatal("resumed VM made no progress")
	}
	// The throttled VM lost exactly the paused window: 5s of a 10s run.
	if math.Abs(vm1.Progress()-5) > 1e-6 {
		t.Fatalf("throttled progress = %v, want 5", vm1.Progress())
	}
}

func TestPauseValidation(t *testing.T) {
	m := newMachine(t, 1e6)
	if err := m.Pause(0); err == nil {
		t.Error("pause of unknown VM accepted")
	}
	if err := m.PauseAllExcept(3); err == nil {
		t.Error("PauseAllExcept of unknown VM accepted")
	}
	if _, err := m.CacheStats(0); err == nil {
		t.Error("CacheStats of unknown VM accepted")
	}
}

func TestBusContentionSlowsProgress(t *testing.T) {
	// Two VMs demanding 2x the bus capacity each make ~50% progress.
	m := newMachine(t, 100000)
	w0 := &fixedWorkload{name: "a", perSec: 100000}
	w1 := &fixedWorkload{name: "b", perSec: 100000, base: 1 << 30}
	vm0, _ := m.AddVM("a", w0)
	vm1, _ := m.AddVM("b", w1)
	if err := m.Run(10, 0.01); err != nil {
		t.Fatal(err)
	}
	for _, vm := range []*VM{vm0, vm1} {
		if math.Abs(vm.Progress()-5) > 0.2 {
			t.Fatalf("%s progress = %v, want ~5", vm.Name(), vm.Progress())
		}
	}
}

func TestBusLockStarvationSlowsVictim(t *testing.T) {
	// A locking workload starves the victim of bus slots: the mechanism
	// behind the paper's bus-locking attack.
	m := newMachine(t, 100000)
	victim := &fixedWorkload{name: "victim", perSec: 50000}
	locker := &fixedWorkload{name: "locker", perSec: 1000, lock: 0.9, base: 1 << 30}
	vvm, _ := m.AddVM("victim", victim)
	m.AddVM("locker", locker)
	if err := m.Run(10, 0.01); err != nil {
		t.Fatal(err)
	}
	// Victim wants 500 slots/tick; only ~100 (10% of 1000) are unlocked.
	if ratio := vvm.Progress() / 10; ratio > 0.3 {
		t.Fatalf("victim progress ratio %v under lock, want < 0.3", ratio)
	}
	stats, err := m.CacheStats(vvm.ID())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses == 0 {
		t.Fatal("victim performed no accesses at all")
	}
}

func TestCacheStatsAttribution(t *testing.T) {
	m := newMachine(t, 1e6)
	w := &fixedWorkload{name: "app", perSec: 1000}
	vm, _ := m.AddVM("v", w)
	if err := m.Run(1, 0.01); err != nil {
		t.Fatal(err)
	}
	st, err := m.CacheStats(vm.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != vm.Granted() {
		t.Fatalf("cache accesses %d != granted %d", st.Accesses, vm.Granted())
	}
	if len(m.VMs()) != 1 {
		t.Fatalf("VMs() = %d entries", len(m.VMs()))
	}
}

func TestSchedulerConservationProperty(t *testing.T) {
	// Property: across arbitrary pause/resume patterns, every VM's
	// progress never exceeds elapsed virtual time and never decreases,
	// and granted never exceeds demanded.
	m := newMachine(t, 50000)
	vms := make([]*VM, 3)
	for i := range vms {
		w := &fixedWorkload{name: "w", perSec: 30000, base: uint64(i) << 30}
		vm, err := m.AddVM(w.name, w)
		if err != nil {
			t.Fatal(err)
		}
		vms[i] = vm
	}
	r := randx.New(70, 71)
	prev := make([]float64, len(vms))
	for step := 0; step < 400; step++ {
		for _, vm := range vms {
			if r.Bool(0.05) {
				if r.Bool(0.5) {
					if err := m.Pause(vm.ID()); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := m.Resume(vm.ID()); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := m.Tick(0.01); err != nil {
			t.Fatal(err)
		}
		for i, vm := range vms {
			p := vm.Progress()
			if p < prev[i]-1e-12 {
				t.Fatalf("step %d: progress of %d decreased: %v → %v", step, i, prev[i], p)
			}
			if p > m.Now()+1e-9 {
				t.Fatalf("step %d: progress %v exceeds elapsed %v", step, p, m.Now())
			}
			if vm.Granted() > vm.Demanded() {
				t.Fatalf("granted %d exceeds demanded %d", vm.Granted(), vm.Demanded())
			}
			prev[i] = p
		}
	}
}

// reversingBus delegates allocation to a real membus.Bus but returns the
// grants in reverse order — a legal Arbiter implementation that breaks any
// positional pairing of grants to demands.
type reversingBus struct{ inner *membus.Bus }

func (r reversingBus) Allocate(dt float64, demands []membus.Demand) ([]membus.Grant, error) {
	grants, err := r.inner.Allocate(dt, demands)
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(grants)-1; i < j; i, j = i+1, j-1 {
		grants[i], grants[j] = grants[j], grants[i]
	}
	return grants, nil
}

// TestTickPairsGrantsByOwner runs the same two-VM contention scenario on a
// plain bus and on a grant-reversing bus: per-VM accounting must be
// identical, because Tick pairs grants to demands by Owner, not by index.
func TestTickPairsGrantsByOwner(t *testing.T) {
	build := func(reorder bool) ([]*VM, *Machine) {
		cache, err := cachesim.New(cachesim.Config{SizeBytes: 256 * 1024, LineSize: 64, Ways: 8})
		if err != nil {
			t.Fatal(err)
		}
		bus, err := membus.New(5e4, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		var arb Arbiter = bus
		if reorder {
			arb = reversingBus{inner: bus}
		}
		m, err := NewMachine(cache, arb)
		if err != nil {
			t.Fatal(err)
		}
		// Asymmetric demands so a positional mix-up misattributes work.
		specs := []*fixedWorkload{
			{name: "heavy", perSec: 8e4, base: 0},
			{name: "light", perSec: 1e4, base: 1 << 20},
			{name: "locker", perSec: 2e4, lock: 0.5, base: 2 << 20},
		}
		vms := make([]*VM, len(specs))
		for i, w := range specs {
			vm, err := m.AddVM(w.name, w)
			if err != nil {
				t.Fatal(err)
			}
			vms[i] = vm
		}
		return vms, m
	}

	plainVMs, plain := build(false)
	reordVMs, reord := build(true)
	for step := 0; step < 200; step++ {
		if err := plain.Tick(0.01); err != nil {
			t.Fatal(err)
		}
		if err := reord.Tick(0.01); err != nil {
			t.Fatal(err)
		}
	}
	for i := range plainVMs {
		p, r := plainVMs[i], reordVMs[i]
		if p.Demanded() != r.Demanded() || p.Granted() != r.Granted() {
			t.Errorf("vm %d (%s): demanded/granted %d/%d with plain bus, %d/%d with reordering bus",
				i, p.Name(), p.Demanded(), p.Granted(), r.Demanded(), r.Granted())
		}
		if math.Abs(p.Progress()-r.Progress()) > 1e-12 {
			t.Errorf("vm %d (%s): progress %v with plain bus, %v with reordering bus",
				i, p.Name(), p.Progress(), r.Progress())
		}
	}
}

// echoBus grants every demand in full from a reused slice, so it contributes
// zero allocations itself — isolating Tick's own allocation behaviour.
type echoBus struct{ grants []membus.Grant }

func (e *echoBus) Allocate(dt float64, demands []membus.Demand) ([]membus.Grant, error) {
	e.grants = e.grants[:0]
	for _, d := range demands {
		e.grants = append(e.grants, membus.Grant{Owner: d.Owner, Accesses: d.Accesses})
	}
	return e.grants, nil
}

// TestTickZeroAlloc pins the steady-state Tick path at zero allocations:
// the demands slice is machine-owned scratch, not a per-tick allocation.
func TestTickZeroAlloc(t *testing.T) {
	cache, err := cachesim.New(cachesim.Config{SizeBytes: 256 * 1024, LineSize: 64, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cache, &echoBus{grants: make([]membus.Grant, 0, 8)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.AddVM("vm", &fixedWorkload{name: "w", perSec: 1000, base: uint64(i) << 20}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ { // warm the scratch buffers
		if err := m.Tick(0.01); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := m.Tick(0.01); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Tick: %.2f allocs/op in steady state, want 0", allocs)
	}
}

// badBus returns grants for owners that never demanded, or duplicates.
type badBus struct{ mode string }

func (b badBus) Allocate(dt float64, demands []membus.Demand) ([]membus.Grant, error) {
	switch b.mode {
	case "unknown":
		return []membus.Grant{{Owner: 99, Accesses: 1}}, nil
	case "duplicate":
		if len(demands) == 0 {
			return nil, nil
		}
		g := membus.Grant{Owner: demands[0].Owner, Accesses: 1}
		return []membus.Grant{g, g}, nil
	case "paused":
		return []membus.Grant{{Owner: 1, Accesses: 1}}, nil
	}
	return nil, nil
}

func TestTickRejectsBogusGrants(t *testing.T) {
	for _, mode := range []string{"unknown", "duplicate", "paused"} {
		cache, err := cachesim.New(cachesim.Config{SizeBytes: 256 * 1024, LineSize: 64, Ways: 8})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(cache, badBus{mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := m.AddVM("vm", &fixedWorkload{name: "w", perSec: 1000}); err != nil {
				t.Fatal(err)
			}
		}
		if mode == "paused" {
			if err := m.Pause(1); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Tick(0.01); err == nil {
			t.Errorf("mode %q: bogus grant accepted", mode)
		}
	}
}

// TestRunRejectsPastDeadline covers the silent-no-op bug: a deadline
// earlier than the machine's current virtual time used to round to a
// negative tick count and return nil without advancing anything.
func TestRunRejectsPastDeadline(t *testing.T) {
	m := newMachine(t, 1e6)
	if _, err := m.AddVM("vm", &fixedWorkload{name: "w", perSec: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1.0, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(0.5, 0.01); err == nil {
		t.Error("deadline before current time accepted as a silent no-op")
	}
	// An equal deadline is a legitimate no-op, not an error.
	if err := m.Run(1.0, 0.01); err != nil {
		t.Errorf("deadline equal to current time rejected: %v", err)
	}
}
