package faultinject

import (
	"bytes"
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn's write side with the fault schedule: the peer
// observes corrupted and truncated lines, torn (partial) writes, stalled
// delivery, write failures after a cut-off, and an abrupt connection drop.
// Reads pass through untouched (wrap the read side with NewReader when a
// damaged inbound stream is wanted). Conn is safe for one writer at a time,
// like net.Conn itself.
type Conn struct {
	net.Conn

	mu      sync.Mutex
	lf      *faulter
	pending []byte // bytes of an incomplete trailing line
	lines   int    // complete lines delivered (pre-skip included)
	err     error  // sticky injected failure
}

// Wrap wraps c's write side with schedule f.
func Wrap(c net.Conn, f Faults) *Conn {
	return &Conn{Conn: c, lf: newFaulter(f)}
}

// Write buffers p into lines and delivers each complete line through the
// fault schedule. It reports len(p) on success so callers account bytes the
// application wrote, not bytes that survived injection; once a drop or
// write-failure fault fires, it returns the injected error (sticky).
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, c.err
	}
	c.pending = append(c.pending, p...)
	for {
		i := bytes.IndexByte(c.pending, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := c.pending[:i+1]
		if err := c.deliverLocked(line); err != nil {
			c.err = err
			return 0, err
		}
		c.pending = c.pending[i+1:]
	}
}

// Close flushes any incomplete trailing line through the schedule before
// closing the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.err == nil && len(c.pending) > 0 {
		c.err = c.deliverLocked(c.pending)
		c.pending = nil
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// CloseWrite half-closes the write side (TCP/unix), flushing like Close.
func (c *Conn) CloseWrite() error {
	c.mu.Lock()
	if c.err == nil && len(c.pending) > 0 {
		c.err = c.deliverLocked(c.pending)
		c.pending = nil
	}
	c.mu.Unlock()
	if cw, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// deliverLocked pushes one complete line through the schedule and the
// underlying connection.
func (c *Conn) deliverLocked(line []byte) error {
	if c.lf.f.FailWritesAfterLines > 0 && c.lines >= c.lf.f.FailWritesAfterLines {
		return ErrWriteFail
	}
	out, stall, drop := c.lf.apply(line)
	if drop {
		// End the stream at an exact line boundary. Half-close when the
		// transport supports it: a hard Close discards in-flight kernel
		// buffers (TCP RST), making the cut point nondeterministic, while
		// CloseWrite flushes them so the peer observes precisely the lines
		// the schedule delivered. This and every later write fail.
		if hc, ok := c.Conn.(interface{ CloseWrite() error }); ok {
			hc.CloseWrite()
		} else {
			c.Conn.Close()
		}
		return ErrDrop
	}
	c.lines++
	if stall > 0 {
		time.Sleep(stall)
	}
	chunk := c.lf.f.PartialWriteMax
	if chunk <= 0 {
		chunk = len(out)
	}
	for len(out) > 0 {
		n := chunk
		if n > len(out) {
			n = len(out)
		}
		if _, err := c.Conn.Write(out[:n]); err != nil {
			return err
		}
		out = out[n:]
	}
	return nil
}
