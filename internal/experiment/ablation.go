package experiment

import (
	"fmt"
	"math"

	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/signal"
)

// PeriodEstimatorResult summarizes one estimator's behaviour in the period
// ablation (the paper's §4.2.2 motivation for combining DFT and ACF).
type PeriodEstimatorResult struct {
	Method string
	// Correct is the fraction of periodic trials where the estimate was
	// within 20% of the planted period.
	Correct float64
	// MultipleErrors is the fraction of periodic trials where the estimate
	// was within 20% of an integer multiple (≥2×) of the planted period —
	// the ACF failure mode.
	MultipleErrors float64
	// OtherErrors is the remaining fraction of periodic trials (wrong
	// frequency or no detection) — dominated by the DFT failure mode.
	OtherErrors float64
	// FalseDetections is the fraction of aperiodic (noise + trend) trials
	// where a period was reported at all.
	FalseDetections float64
}

// PeriodEstimatorAblation compares DFT-only, ACF-only, and the combined
// DFT–ACF method on planted-period series and on aperiodic series with
// trends (which provoke spectral leakage). trials controls the number of
// random series per condition.
func (c Config) PeriodEstimatorAblation(trials int) ([]PeriodEstimatorResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiment: ablation needs positive trials, got %d", trials)
	}
	type method struct {
		name string
		est  func([]float64) (int, bool)
	}
	opts := signal.PeriodOptions{}
	methods := []method{
		{"DFT-only", func(x []float64) (int, bool) { return signal.EstimatePeriodDFTOnly(x, opts) }},
		{"ACF-only", func(x []float64) (int, bool) { return signal.EstimatePeriodACFOnly(x, opts) }},
		{"DFT-ACF", func(x []float64) (int, bool) {
			est, ok := signal.EstimatePeriod(x, opts)
			return est.Period, ok
		}},
	}

	results := make([]PeriodEstimatorResult, len(methods))
	for i, m := range methods {
		results[i].Method = m.name
	}

	rng := randx.Derive(c.Seed, 0xab1a7e)
	for trial := 0; trial < trials; trial++ {
		period := 10 + rng.IntN(30)
		periodic := plantedSeries(rng, period)
		aperiodic := trendedNoise(rng)
		for i, m := range methods {
			if est, ok := m.est(periodic); ok {
				switch {
				case withinFrac(est, period, 0.2):
					results[i].Correct++
				case isMultiple(est, period, 0.2):
					results[i].MultipleErrors++
				default:
					results[i].OtherErrors++
				}
			} else {
				results[i].OtherErrors++
			}
			if _, ok := m.est(aperiodic); ok {
				results[i].FalseDetections++
			}
		}
	}
	for i := range results {
		results[i].Correct /= float64(trials)
		results[i].MultipleErrors /= float64(trials)
		results[i].OtherErrors /= float64(trials)
		results[i].FalseDetections /= float64(trials)
	}
	return results, nil
}

// plantedSeries builds a noisy asymmetric periodic series whose first
// harmonic is weakened relative to its second — the regime where a bare
// ACF peak at 2p can outgrow the peak at p.
func plantedSeries(rng *randx.Rand, period int) []float64 {
	n := 8 * period
	out := make([]float64, n)
	phase := rng.Float64()
	for i := range out {
		pos := float64(i)/float64(period) + phase
		out[i] = 100 +
			4*math.Sin(2*math.Pi*pos) +
			3.5*math.Sin(4*math.Pi*pos+0.7) +
			// A weak component at double the period: real batch jobs
			// often alternate heavy/light cycles, which is exactly what
			// makes a bare ACF latch onto 2p.
			2*math.Sin(math.Pi*pos+1.3) +
			rng.Normal(0, 5)
	}
	return out
}

// trendedNoise builds an aperiodic series with a slow trend, which leaks
// spectral power into low-frequency bins (the DFT false-frequency trap).
func trendedNoise(rng *randx.Rand) []float64 {
	n := 160
	out := make([]float64, n)
	slope := rng.Uniform(-0.3, 0.3)
	level := 100.0
	for i := range out {
		level += rng.Normal(0, 1.2)
		out[i] = level + slope*float64(i) + rng.Normal(0, 2)
	}
	return out
}

func withinFrac(got, want int, frac float64) bool {
	diff := math.Abs(float64(got - want))
	return diff <= frac*float64(want)
}

func isMultiple(got, want int, frac float64) bool {
	for k := 2; k <= 6; k++ {
		if withinFrac(got, k*want, frac/float64(k)) {
			return true
		}
	}
	return false
}
