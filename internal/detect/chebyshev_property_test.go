package detect

import (
	"fmt"
	"testing"

	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/timeseries"
)

// The Chebyshev property suite: the paper's false-alarm argument (Eq. 4)
// rests on Chebyshev's inequality, which bounds P(|X−μ| > kσ) ≤ 1/k² for
// ANY distribution with finite moments — the detector never assumes
// Gaussian traffic. These tests feed deliberately non-Gaussian no-attack
// window series (heavy-tailed lognormal, autocorrelated mean-reverting OU)
// through the real EWMA pipeline at the paper's k values and assert the
// per-window violation fraction honors the distribution-free bound.
//
// The streams are window-level (fed through ObserveMA) rather than raw
// samples: a 200-sample moving average would CLT the heavy tail away, and
// the guarantee under test is about the post-MA statistic the bounds are
// applied to.

// chebyshevStream generates a profiling series and an independent monitored
// series of n windows each from the same stationary process.
type chebyshevStream struct {
	name    string
	profile []float64
	monitor []float64
}

const chebyshevWindows = 8000

// lognormalStream: i.i.d. heavy-tailed windows, X = scale·LogNormal(0, σ).
// σ=0.5 gives skewness ≈ 1.75 — far from Gaussian.
func lognormalStream(seed1, seed2 uint64, scale float64) chebyshevStream {
	rng := randx.New(seed1, seed2)
	gen := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = scale * rng.LogNormal(0, 0.5)
		}
		return out
	}
	return chebyshevStream{
		name:    "lognormal",
		profile: gen(chebyshevWindows),
		monitor: gen(chebyshevWindows),
	}
}

// ouStream: an Ornstein–Uhlenbeck process sampled at window cadence —
// autocorrelated and mean-reverting, the shape of slowly drifting load.
// θ=0.15 gives a correlation time of ~7 windows: long enough to defeat any
// independence assumption, short enough that a 100-window calibration still
// holds a usable number of effective samples.
func ouStream(seed1, seed2 uint64, mean float64) chebyshevStream {
	rng := randx.New(seed1, seed2)
	const (
		theta = 0.15
		vol   = 0.07 // per-window volatility as a fraction of the mean
	)
	gen := func(n int) []float64 {
		out := make([]float64, n)
		x := mean
		// Burn in past the transient so both series are stationary draws.
		for i := 0; i < 1000; i++ {
			x += theta*(mean-x) + vol*mean*rng.Normal(0, 1)
		}
		for i := range out {
			x += theta*(mean-x) + vol*mean*rng.Normal(0, 1)
			out[i] = x
		}
		return out
	}
	return chebyshevStream{
		name:    "ou",
		profile: gen(chebyshevWindows),
		monitor: gen(chebyshevWindows),
	}
}

// profileFromWindows builds a Profile whose (μ_E, σ_E) are the moments of
// the EWMA'd profiling series — exactly what BuildProfile computes, minus
// the raw-sample MA stage the window-level streams skip.
func profileFromWindows(t *testing.T, access, miss []float64, alpha float64) Profile {
	t.Helper()
	ewA, err := timeseries.EWMASeries(access, alpha)
	if err != nil {
		t.Fatal(err)
	}
	ewM, err := timeseries.EWMASeries(miss, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return Profile{
		App:        "chebyshev-property",
		MeanAccess: timeseries.Mean(ewA),
		StdAccess:  timeseries.StdDev(ewA),
		MeanMiss:   timeseries.Mean(ewM),
		StdMiss:    timeseries.StdDev(ewM),
	}
}

// TestChebyshevBoundSDSB asserts the distribution-free per-window guarantee
// behind SDS/B's boundary check: on attack-free heavy-tailed traffic the
// fraction of windows whose EWMA leaves μ±kσ stays within 1/k² plus a
// sampling-slack term, at the paper's k (1.125) and tighter settings.
func TestChebyshevBoundSDSB(t *testing.T) {
	// Slack covers two finite-sample effects the asymptotic bound ignores:
	// profile moments estimated from 8000 autocorrelated windows, and the
	// violation fraction itself averaged over correlated indicators.
	const slack = 0.03
	streams := []chebyshevStream{
		lognormalStream(301, 302, 2.2e5),
		ouStream(303, 304, 2.2e5),
	}
	for _, ks := range []float64{1.125, 2, 3} {
		for _, st := range streams {
			t.Run(fmt.Sprintf("%s/k=%g", st.name, ks), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.K = ks
				// Miss counter: same process family at 1/10 the scale,
				// regenerated so the two counters are not identical.
				missProf := make([]float64, len(st.profile))
				missMon := make([]float64, len(st.monitor))
				for i := range missProf {
					missProf[i] = st.profile[i] * 0.1
					missMon[i] = st.monitor[i] * 0.1
				}
				prof := profileFromWindows(t, st.profile, missProf, cfg.Alpha)

				viol := 0
				d, err := NewSDSB(prof, cfg, WithSDSBWindowHook(func(w WindowStat) {
					loA, hiA, err := prof.Bounds(MetricAccess, ks)
					if err != nil {
						t.Fatal(err)
					}
					if w.EWMAAccess < loA || w.EWMAAccess > hiA {
						viol++
					}
				}))
				if err != nil {
					t.Fatal(err)
				}
				for i := range st.monitor {
					d.ObserveMA(float64(i), st.monitor[i], missMon[i])
				}
				frac := float64(viol) / float64(len(st.monitor))
				bound := 1/(ks*ks) + slack
				if frac > bound {
					t.Errorf("violation fraction %.4f exceeds Chebyshev bound 1/k²+slack = %.4f", frac, bound)
				}
				// The guarantee the paper builds on H_C: at the Table 1
				// operating point a false alarm needs H_C consecutive
				// violations. That streak argument ((1/k²)^H_C) assumes
				// independent windows, so it is asserted only on the
				// i.i.d. lognormal stream — OU's autocorrelation is
				// exactly the regime where it can fail, and only the
				// per-window bound above is distribution-free.
				if ks == 1.125 && st.name == "lognormal" && d.AlarmCount() > 0 {
					t.Errorf("SDS/B false alarm on attack-free %s traffic: %v", st.name, d.Alarms())
				}
			})
		}
	}
}

// TestChebyshevBoundEWMAVar asserts the same distribution-free logic for
// the variance-channel baseline: after self-calibration, detection-phase
// windows violate the μ_v ± k·varBandMult·σ_v band no more often than
// 1/(k·varBandMult)² plus slack, even on heavy-tailed no-attack streams.
func TestChebyshevBoundEWMAVar(t *testing.T) {
	// EWMAVar's band moments come from a 100-window Welford calibration of
	// an autocorrelated statistic, so the finite-sample slack is larger
	// than SDS/B's profile-moment slack.
	const slack = 0.05
	streams := []chebyshevStream{
		lognormalStream(311, 312, 2.2e5),
		ouStream(313, 314, 2.2e5),
	}
	for _, ks := range []float64{1.125, 2, 3} {
		for _, st := range streams {
			t.Run(fmt.Sprintf("%s/k=%g", st.name, ks), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.K = ks
				// Chebyshev holds with respect to the TRUE moments of the
				// variance statistic; the band uses Welford estimates. The
				// statistic's β-smoothing gives it a ~1/β-window
				// correlation time, so the default 100-window calibration
				// holds only a handful of effective samples and its σ_v
				// can come in far too narrow (the high-FPR behavior the
				// ROC tournament measures at default knobs). The property
				// test calibrates long enough for the estimates to
				// converge to the moments the inequality speaks about.
				cfg.VarCalib = 1000
				prof := profileFromWindows(t, st.profile, st.profile, cfg.Alpha)
				d, err := NewEWMAVar(prof, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := range st.monitor {
					d.ObserveMA(float64(i), st.monitor[i], st.monitor[i]*0.1)
				}
				if !d.Calibrated() {
					t.Fatalf("EWMAVar did not finish calibrating in %d windows", len(st.monitor))
				}
				windows, violations := d.ViolationStats()
				if windows < chebyshevWindows/2 {
					t.Fatalf("only %d detection-phase windows observed", windows)
				}
				frac := float64(violations) / float64(windows)
				eff := ks * varBandMult
				bound := 1/(eff*eff) + slack
				if frac > bound {
					t.Errorf("violation fraction %.4f exceeds Chebyshev bound 1/(k·%g)²+slack = %.4f",
						frac, varBandMult, bound)
				}
			})
		}
	}
}
