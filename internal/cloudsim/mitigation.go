package cloudsim

// The provider's closed mitigation loop: alarm → (throttle →) verify →
// migrate → post-migration watch. Every stage is an event; the detector
// itself arbitrates the throttle-stage verdict, which is what
// PolicyThrottleMigrate buys over PolicyMigrate — intrinsic anomalies
// (bursts) stay alarmed while co-residents are quiesced and are absolved
// instead of triggering a pointless migration.

// handleMitigate fires the scheduled reaction to an alarm.
func (e *engine) handleMitigate(v *vm, now float64) {
	if v.host < 0 {
		v.mitPending = false
		return
	}
	h := e.hosts[v.host]
	switch e.sc.Mitigation.Policy {
	case PolicyMigrate:
		e.migrate(v, now)
		e.push(event{tick: e.tickFor(now + e.sc.Mitigation.VerifySeconds), kind: evVerifyMigrate, host: -1, vm: int32(v.id)})
	case PolicyThrottleMigrate:
		if h.throttling {
			v.mitPending = false
			return
		}
		h.throttling = true
		for _, o := range h.vms {
			if o != v {
				o.paused = true
			}
		}
		e.push(event{tick: e.tickFor(now + e.sc.Mitigation.ThrottleSeconds), kind: evVerifyThrottle, host: -1, vm: int32(v.id)})
	default:
		v.mitPending = false
	}
}

// handleVerifyThrottle ends the throttle stage and reads the verdict off
// the victim's own detector: still alarmed under quiesced co-residents
// means the anomaly is intrinsic (absolve); recovered means the contention
// was external (migrate away from it).
func (e *engine) handleVerifyThrottle(v *vm, now float64) {
	if v.host < 0 {
		v.mitPending = false
		return
	}
	h := e.hosts[v.host]
	h.throttling = false
	for _, o := range h.vms {
		if o != v {
			o.paused = o.migrating
		}
	}
	if v.det.Alarmed() {
		e.res.Absolved++
		v.mitPending = false
		return
	}
	e.res.Confirmed++
	e.migrate(v, now)
	e.push(event{tick: e.tickFor(now + e.sc.Mitigation.VerifySeconds), kind: evVerifyMigrate, host: -1, vm: int32(v.id)})
}

// handleVerifyMigrate closes the post-migration watch: any alarm edge since
// the migration (the detector was rebuilt on arrival) counts the recovery
// as failed.
func (e *engine) handleVerifyMigrate(v *vm) {
	v.mitPending = false
	if v.host < 0 || v.counter == nil {
		return
	}
	if v.counter.AlarmCount() > 0 {
		e.res.ReAlarms++
	} else {
		e.res.Recoveries++
	}
}

// handleResume ends the victim's live-migration downtime and restarts
// monitoring with a fresh detector (Stage 1 anew on the new host, from the
// per-application profile cache).
func (e *engine) handleResume(v *vm) error {
	v.paused, v.migrating = false, false
	if !v.monitored {
		return nil
	}
	return e.attachDetector(v)
}

// migrate moves v off its current host: attack episodes targeting it end
// (quarantine scored), displaced attackers schedule their re-location, and
// v restarts — paused for the migration downtime — on the placement
// policy's choice of destination.
func (e *engine) migrate(v *vm, now float64) {
	h1 := e.hosts[v.host]
	e.res.Migrations++
	if !h1.attackActive(now) {
		e.res.FalseMigrations++
	}
	for _, a := range h1.vms {
		if a.role == roleAttacker && a.attacking && a.target == v.id {
			e.quarantines = append(e.quarantines, now-a.episodeStart)
			a.sched.Stop = now
			a.attacking = false
			e.scheduleRelocate(a, now)
		}
	}
	h1.remove(v)
	e.pickHost(h1.id).add(v, now)
	v.paused, v.migrating = true, true
	v.migrations++
	e.push(event{tick: e.tickFor(now + e.sc.Mitigation.MigrationPause), kind: evResume, host: -1, vm: int32(v.id)})
}
