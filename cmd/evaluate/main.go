// Command evaluate reproduces the paper's evaluation (§5.2):
//
//	evaluate -fig9     recall per application, attack and scheme
//	evaluate -fig10    specificity
//	evaluate -fig11    detection delay
//	evaluate -fig12    performance overhead (normalized execution time)
//	evaluate -table1   the SDS parameters in effect
//	evaluate -roc      threshold-sweep ROC tournament across all schemes
//	evaluate -evasion  evasive-strategy tournament: per-scheme evasion margins
//	evaluate -all      everything
//
// The accuracy figures share one experiment pass, so -fig9 -fig10 -fig11
// together cost the same as any one of them. Use -runs to trade precision
// for time (the paper uses 20 runs per cell). -json switches the ROC and
// evasion output to machine-readable JSON for plotting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/experiment"
	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/profiling"
	"github.com/memdos/sds/internal/workload"
)

func main() {
	var (
		fig9     = flag.Bool("fig9", false, "recall results")
		fig10    = flag.Bool("fig10", false, "specificity results")
		fig11    = flag.Bool("fig11", false, "detection delay results")
		fig12    = flag.Bool("fig12", false, "performance overhead results")
		table1   = flag.Bool("table1", false, "print the SDS parameters (Table 1)")
		ablate   = flag.Bool("ablation", false, "DFT-only vs ACF-only vs DFT-ACF period estimation (§4.2.2 motivation)")
		roc      = flag.Bool("roc", false, "threshold-sweep ROC tournament: AUC and budgeted operating point per scheme")
		evasion  = flag.Bool("evasion", false, "evasive-strategy tournament: per-scheme × per-strategy evasion margins at the ROC operating point")
		jsonOut  = flag.Bool("json", false, "emit the ROC/evasion results as JSON instead of tables (only affects -roc and -evasion)")
		all      = flag.Bool("all", false, "run the full evaluation")
		runs     = flag.Int("runs", 20, "runs per cell")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		apps     = flag.String("apps", "", "comma-separated application subset (default: all)")
		parallel = flag.Int("parallel", 0, "concurrent detection runs (0 = all CPUs); results are identical at any setting")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if !(*fig9 || *fig10 || *fig11 || *fig12 || *table1 || *ablate || *roc || *evasion || *all) {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
	err = run(os.Stdout, options{
		fig9:     *fig9 || *all,
		fig10:    *fig10 || *all,
		fig11:    *fig11 || *all,
		fig12:    *fig12 || *all,
		table1:   *table1 || *all,
		ablate:   *ablate || *all,
		roc:      *roc || *all,
		evasion:  *evasion || *all,
		jsonOut:  *jsonOut,
		runs:     *runs,
		seed:     *seed,
		apps:     *apps,
		parallel: *parallel,
	})
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

// options selects what run executes and how.
type options struct {
	fig9, fig10, fig11, fig12 bool
	table1, ablate, roc       bool
	evasion                   bool
	jsonOut                   bool
	runs                      int
	seed                      uint64
	apps                      string
	parallel                  int
}

func run(out io.Writer, opt options) error {
	fig9, fig10, fig11, fig12 := opt.fig9, opt.fig10, opt.fig11, opt.fig12
	table1, ablate := opt.table1, opt.ablate

	cfg := experiment.DefaultConfig()
	cfg.Runs = opt.runs
	cfg.Seed = opt.seed
	cfg.Parallel = opt.parallel

	var apps []string
	if opt.apps != "" {
		for _, a := range strings.Split(opt.apps, ",") {
			apps = append(apps, strings.TrimSpace(a))
		}
	} else {
		apps = workload.AppNames()
	}

	if table1 {
		if err := printTable1(out, cfg); err != nil {
			return err
		}
	}
	if ablate {
		if err := runAblation(out, cfg); err != nil {
			return err
		}
	}

	if fig9 || fig10 || fig11 {
		cells, err := cfg.Accuracy(apps)
		if err != nil {
			return err
		}
		if fig9 {
			if err := renderAccuracy(out, "Fig. 9 — recall (%), median [p10, p90] over runs; paper: medians 100% everywhere",
				cells, func(c experiment.AccuracyCell) string {
					return distCell(c.Recall)
				}); err != nil {
				return err
			}
		}
		if fig10 {
			if err := renderAccuracy(out, "Fig. 10 — specificity (%); paper: SDS 90–100, KStest 30–80, SDS/B 94–97, SDS/P 93–94",
				cells, func(c experiment.AccuracyCell) string {
					return distCell(c.Specificity)
				}); err != nil {
				return err
			}
		}
		if fig11 {
			if err := renderAccuracy(out, "Fig. 11 — detection delay (s); paper: SDS 15–30, KStest 20–50",
				cells, func(c experiment.AccuracyCell) string {
					// No run had an alarm onset during the attack: there is
					// no delay distribution to summarize, and printing its
					// zero value would read as instant detection.
					if c.Delay.N == 0 {
						return fmt.Sprintf("n/a (detection rate %.0f%%)", 100*c.DetectionRate)
					}
					return distCell(c.Delay)
				}); err != nil {
				return err
			}
		}
	}

	if fig12 {
		cells, err := cfg.Overhead(apps)
		if err != nil {
			return err
		}
		tb := experiment.Table{
			Title:  "Fig. 12 — normalized execution time; paper: SDS 1.01–1.02, KStest 1.03–1.08",
			Header: []string{"application", "scheme", "normalized [p10, p90]"},
		}
		for _, c := range cells {
			tb.AddRow(c.App, string(c.Scheme),
				fmt.Sprintf("%.3f [%.3f, %.3f]", c.Normalized.Median, c.Normalized.P10, c.Normalized.P90))
		}
		if err := tb.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if opt.roc {
		curves, err := cfg.ROC(apps)
		if err != nil {
			return err
		}
		if opt.jsonOut {
			if err := renderROCJSON(out, curves); err != nil {
				return err
			}
		} else if err := renderROC(out, curves); err != nil {
			return err
		}
	}

	if opt.evasion {
		curves, err := cfg.Evasion(apps)
		if err != nil {
			return err
		}
		if opt.jsonOut {
			if err := renderEvasionJSON(out, curves); err != nil {
				return err
			}
		} else if err := renderEvasion(out, curves); err != nil {
			return err
		}
	}
	return nil
}

// renderEvasion prints the per-scheme evasion-margin table (one row per
// scheme × strategy × attack vector) followed by the swept peak points.
func renderEvasion(out io.Writer, curves []experiment.EvasionCurve) error {
	summary := experiment.Table{
		Title: fmt.Sprintf("Evasion tournament — margin = largest undetected peak intensity at the FPR ≤ %.0f%% operating point",
			100*experiment.ROCBudgetFPR),
		Header: []string{"scheme", "op", "attack", "strategy", "margin", "det-rate@1.0"},
	}
	for _, c := range curves {
		op := fmt.Sprintf("%s=%g", c.Knob, c.Threshold)
		if !c.Budgeted {
			op += " (over budget: min-FPR fallback)"
		}
		for _, cell := range c.Cells {
			summary.AddRow(string(c.Scheme), op, cell.Kind, cell.Strategy,
				fmt.Sprintf("%.2f", cell.Margin),
				fmt.Sprintf("%.0f%%", 100*cell.FullRate))
		}
	}
	if err := summary.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	points := experiment.Table{
		Title:  "Evasion tournament — swept peaks (detections pooled over app × run)",
		Header: []string{"scheme", "attack", "strategy", "peak", "detected/runs"},
	}
	for _, c := range curves {
		for _, cell := range c.Cells {
			for _, p := range cell.Points {
				points.AddRow(string(c.Scheme), cell.Kind, cell.Strategy,
					fmt.Sprintf("%g", p.Peak),
					fmt.Sprintf("%d/%d", p.Detected, p.Runs))
			}
		}
	}
	if err := points.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

// renderEvasionJSON emits the evasion curves as indented JSON (stable field
// order, deterministic at any -parallel).
func renderEvasionJSON(out io.Writer, curves []experiment.EvasionCurve) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		BudgetFPR float64
		Peaks     []float64
		Curves    []experiment.EvasionCurve
	}{experiment.ROCBudgetFPR, experiment.EvasionPeaks(), curves})
}

// renderROC prints the tournament summary (AUC and budgeted operating
// point per scheme) followed by every curve's swept points.
func renderROC(out io.Writer, curves []experiment.ROCCurve) error {
	summary := experiment.Table{
		Title: fmt.Sprintf("ROC tournament — trapezoidal AUC and operating point at FPR ≤ %.0f%%",
			100*experiment.ROCBudgetFPR),
		Header: []string{"scheme", "knob", "AUC", "op knob", "op TPR", "op FPR", "op delay (s)", "op det-rate"},
	}
	for _, c := range curves {
		op, ok := c.OperatingPoint()
		if !ok {
			summary.AddRow(string(c.Scheme), c.Knob, fmt.Sprintf("%.3f", c.AUC),
				"n/a", "n/a", "n/a", "n/a", "n/a")
			continue
		}
		delay := "n/a"
		if op.Delay.N > 0 {
			delay = distCell(op.Delay)
		}
		summary.AddRow(string(c.Scheme), c.Knob, fmt.Sprintf("%.3f", c.AUC),
			fmt.Sprintf("%g", op.Threshold),
			fmt.Sprintf("%.3f", op.TPR), fmt.Sprintf("%.3f", op.FPR),
			delay, fmt.Sprintf("%.0f%%", 100*op.DetectionRate))
	}
	if err := summary.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	points := experiment.Table{
		Title:  "ROC tournament — swept points (epochs pooled over app × attack × run)",
		Header: []string{"scheme", "knob", "value", "TPR", "FPR", "delay (s)", "det-rate"},
	}
	for _, c := range curves {
		for _, p := range c.Points {
			delay := "n/a"
			if p.Delay.N > 0 {
				delay = distCell(p.Delay)
			}
			points.AddRow(string(c.Scheme), c.Knob, fmt.Sprintf("%g", p.Threshold),
				fmt.Sprintf("%.3f", p.TPR), fmt.Sprintf("%.3f", p.FPR),
				delay, fmt.Sprintf("%.0f%%", 100*p.DetectionRate))
		}
	}
	if err := points.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

// renderROCJSON emits the curves as indented JSON (stable field order,
// deterministic at any -parallel, ready for plotting).
func renderROCJSON(out io.Writer, curves []experiment.ROCCurve) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		BudgetFPR float64
		Curves    []experiment.ROCCurve
	}{experiment.ROCBudgetFPR, curves})
}

func distCell(d metrics.Distribution) string {
	return fmt.Sprintf("%.1f [%.1f, %.1f]", d.Median, d.P10, d.P90)
}

func renderAccuracy(out io.Writer, title string, cells []experiment.AccuracyCell, format func(experiment.AccuracyCell) string) error {
	for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
		tb := experiment.Table{
			Title:  fmt.Sprintf("%s — %s attack", title, kind),
			Header: []string{"application", "scheme", "median [p10, p90]"},
		}
		for _, c := range cells {
			if c.Attack != kind {
				continue
			}
			tb.AddRow(c.App, string(c.Scheme), format(c))
		}
		if err := tb.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

func runAblation(out io.Writer, cfg experiment.Config) error {
	results, err := cfg.PeriodEstimatorAblation(500)
	if err != nil {
		return err
	}
	tb := experiment.Table{
		Title:  "§4.2.2 motivation — period-estimator ablation (500 planted-period + 500 trended-noise trials)",
		Header: []string{"method", "correct", "multiple-of-period errors", "other errors", "false detections on noise"},
	}
	for _, r := range results {
		tb.AddRow(r.Method,
			fmt.Sprintf("%.0f%%", 100*r.Correct),
			fmt.Sprintf("%.0f%%", 100*r.MultipleErrors),
			fmt.Sprintf("%.0f%%", 100*r.OtherErrors),
			fmt.Sprintf("%.0f%%", 100*r.FalseDetections))
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

func printTable1(out io.Writer, cfg experiment.Config) error {
	d := cfg.Detect
	tb := experiment.Table{
		Title:  "Table 1 — SDS parameters",
		Header: []string{"parameter", "value"},
	}
	tb.AddRow("T_PCM", d.TPCM)
	tb.AddRow("window size W of raw data", d.W)
	tb.AddRow("sliding step size ΔW", d.DW)
	tb.AddRow("EWMA smooth factor α", d.Alpha)
	tb.AddRow("upper bound", fmt.Sprintf("μ + %gσ", d.K))
	tb.AddRow("lower bound", fmt.Sprintf("μ − %gσ", d.K))
	tb.AddRow("consecutive violation threshold H_C", d.HC)
	tb.AddRow("window size W_P in SDS/P", fmt.Sprintf("%d · period", d.WPFactor))
	tb.AddRow("sliding step size ΔW_P in SDS/P", d.DWP)
	tb.AddRow("consecutive period change threshold H_P", d.HP)
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}
