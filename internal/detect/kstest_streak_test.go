package detect

import (
	"testing"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
)

// synthStream feeds the detector samples drawn from N(mean, 10) at T_PCM
// starting at the given time, and returns the end time.
func synthStream(d *KSTest, r *randx.Rand, start, seconds, mean float64) float64 {
	const tpcm = 0.01
	n := int(seconds / tpcm)
	for i := 0; i < n; i++ {
		now := start + float64(i+1)*tpcm
		v := r.Normal(mean, 10)
		d.Observe(pcm.Sample{T: now, Access: v, Miss: v / 5})
	}
	return start + float64(n)*tpcm
}

func TestKSTestStreakConfirmationTiming(t *testing.T) {
	// A permanent distribution shift must be declared only after
	// ConfirmStreaks · Consecutive rejections: with the default 3×4 checks
	// every 2 s, no earlier than ~24 s after the shift.
	cfg := DefaultKSTestConfig()
	d, err := NewKSTest(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(1, 2)
	now := synthStream(d, r, 0, 50, 1000)
	if len(d.Alarms()) != 0 {
		t.Fatalf("alarms on a stationary stream: %+v", d.Alarms())
	}
	synthStream(d, r, now, 60, 1200) // clear shift
	alarms := d.Alarms()
	if len(alarms) == 0 {
		t.Fatal("shift never declared")
	}
	delay := alarms[0].T - now
	minDelay := float64(cfg.ConfirmStreaks*cfg.Consecutive-1) * cfg.LM
	if delay < minDelay {
		t.Fatalf("declared after %.1f s, below the streak floor %.1f s", delay, minDelay)
	}
	// Note: the alarm is NOT expected to stay latched forever — without
	// throttling, the (once-deferred) reference refresh re-learns the
	// shifted stream as the new baseline; TestKSTestRefreshAdaptsToNewBaseline
	// covers that, and the closed-loop tests cover the attack case where
	// throttled references keep the alarm alive.
}

func TestKSTestSingleStreakConfig(t *testing.T) {
	// ConfirmStreaks=1 declares at the first streak (the published
	// protocol used by the §3.2 measurement study).
	cfg := DefaultKSTestConfig()
	cfg.ConfirmStreaks = 1
	cfg.FreezeBaselineOnSuspicion = false
	d, err := NewKSTest(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(3, 4)
	now := synthStream(d, r, 0, 40, 1000)
	synthStream(d, r, now, 30, 1200)
	alarms := d.Alarms()
	if len(alarms) == 0 {
		t.Fatal("shift never declared")
	}
	if delay := alarms[0].T - now; delay > 15 {
		t.Fatalf("single-streak declaration took %.1f s, want ≈9 s", delay)
	}
}

func TestKSTestRefreshAdaptsToNewBaseline(t *testing.T) {
	// After a benign permanent shift, the next reference refresh must
	// adopt the new behaviour and clear the alarm: the false alarm is
	// bounded by the (deferred) refresh schedule.
	cfg := DefaultKSTestConfig()
	d, err := NewKSTest(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(5, 6)
	now := synthStream(d, r, 0, 40, 1000)
	synthStream(d, r, now, 120, 1200) // shift persists 2 minutes
	if !d.Alarmed() {
		// The alarm must have cleared after a refresh re-learned the
		// baseline — verify it fired at some point first.
		if len(d.Alarms()) == 0 {
			t.Fatal("benign shift never triggered the baseline at all")
		}
	} else {
		t.Fatal("alarm still standing 2 minutes after a benign shift; refresh never adapted")
	}
}

func TestKSTestIsolatedAcceptanceDoesNotResetStreaks(t *testing.T) {
	// Streaks accumulate against the same reference even when separated by
	// acceptances — the behaviour that preserves false positives on
	// periodic applications, whose rejections are intermittent.
	cfg := DefaultKSTestConfig()
	d, err := NewKSTest(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(7, 8)
	// Stationary phase to establish a reference.
	now := synthStream(d, r, 0, 10, 1000)
	// Alternate: 8 s shifted (one streak of ~4), 2 s back (acceptance), repeatedly.
	for i := 0; i < 6 && !d.Alarmed(); i++ {
		now = synthStream(d, r, now, 9, 1250)
		now = synthStream(d, r, now, 3, 1000)
	}
	if !d.Alarmed() {
		t.Fatal("intermittent rejection streaks never accumulated to a declaration")
	}
}
