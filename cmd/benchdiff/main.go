// Command benchdiff compares two benchmark trajectories (BENCH_PR*.json
// files, as written by benchjson) and exits non-zero when the newer one
// regresses — the CI gate that keeps the ingest and detection hot paths from
// backsliding between PRs:
//
//	benchdiff -old BENCH_PR3.json -new BENCH_PR6.json
//
// Three gates apply to every benchmark present in both files:
//
//   - allocs/op may not increase beyond -alloc-tol (default 0.01%).
//     Allocation counts are deterministic per build on the steady-state hot
//     paths, where the tolerance rounds to zero extra allocations — any
//     increase still fails exactly. The tolerance exists for the
//     whole-datacenter sims, which allocate hundreds of thousands of
//     objects per op and jitter by a handful through scheduler-dependent
//     map growth.
//   - ns/op may not regress by more than -ns-tol (default 10%). Wall-clock
//     measurements are noisy across machines and noisy neighbors, so the
//     gate is restricted to the benchmarks matching -ns-match — by default
//     the detector Observe, FFT/ACF and server ingest hot paths the
//     repository tracks PR over PR — and only applies when the baseline was
//     measured over at least -ns-min-iters iterations (early trajectories
//     recorded microbenchmarks at -benchtime=10x; ten iterations of a 30 ns
//     operation is noise, not a baseline).
//   - samples/sec — the sdsload scale-run throughput unit — may not drop by
//     more than -rate-tol (default 10%). The gate applies only when both
//     trajectories record the unit, so baselines that predate it are exempt.
//
// Wall-clock gates are drift-normalized: trajectories are recorded in
// different sessions on a shared cloud host whose effective speed moves
// between recordings (hypervisor scheduling, frequency changes — invisible
// to the guest and uniform across the suite). benchdiff estimates that
// machine drift as the median ns/op ratio across all stable benchmark pairs
// and divides it out of the ns and samples/sec comparisons, so a 25% slower
// box does not read as twenty spurious regressions — while a genuine
// hot-path regression still stands out against the suite median. The
// correction needs at least -drift-min stable pairs (default 8; below that
// the median is dominated by the very paths being gated) and is reported
// whenever it is applied. Allocation counts are deterministic and are never
// normalized.
//
// Benchmarks that appear in only one trajectory are reported but do not
// fail the gate (suites grow and get renamed); the comparison count is
// printed so an accidentally empty intersection is visible.
//
// -fail-list FILE writes one "kind name" line per violation (kind is
// alloc, ns or rate). The bench-check make target uses it to decide
// whether a failure is eligible for the same-machine A/B recheck
// (scripts/bench_ab.sh): wall-clock violations can be re-measured against
// the baseline commit on the current machine, allocation violations
// cannot be excused by any amount of re-measurement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// defaultNSMatch selects the hot-path benchmarks whose wall-clock time is
// gated: detector Observe paths, the FFT/ACF signal kernels, the server
// ingest plane (session batches and the sdsload scale-run lines), and the
// datacenter engine's block-telemetry generator. (The Cloud* scenario
// benchmarks record with -benchtime=1x, so the ≥50-iteration stability rule
// tracks them without ns-gating their single noisy iteration.)
const defaultNSMatch = `Observe|FFT|ACF|PeriodEstimat|ServerIngest|ReadFrame|ReadSample|BlockModel`

// Result mirrors benchjson's recorded measurement.
type Result struct {
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
	Iterations    int64   `json:"iterations"`
}

// gates bundles the thresholds diff applies.
type gates struct {
	nsTol      float64
	nsMinIters int64
	rateTol    float64
	allocTol   float64
	driftMin   int
	nsGated    *regexp.Regexp
}

func main() {
	oldPath := flag.String("old", "", "baseline trajectory (required)")
	newPath := flag.String("new", "", "candidate trajectory (required)")
	nsTol := flag.Float64("ns-tol", 0.10, "allowed fractional ns/op regression")
	nsMatch := flag.String("ns-match", defaultNSMatch, "regexp of benchmarks whose ns/op is gated")
	nsMinIters := flag.Int64("ns-min-iters", 50, "baseline iterations below which ns/op is not gated")
	rateTol := flag.Float64("rate-tol", 0.10, "allowed fractional samples/sec throughput drop")
	allocTol := flag.Float64("alloc-tol", 1e-4, "allowed fractional allocs/op increase (rounds to zero extra allocations below ~10k allocs/op)")
	driftMin := flag.Int("drift-min", 8, "stable benchmark pairs required before machine-drift normalization kicks in")
	failList := flag.String("fail-list", "", "write one 'kind name' line per violation to this file")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*nsMatch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: bad -ns-match:", err)
		os.Exit(2)
	}
	oldRes, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	compared, drift, violations := diff(oldRes, newRes, gates{
		nsTol:      *nsTol,
		nsMinIters: *nsMinIters,
		rateTol:    *rateTol,
		allocTol:   *allocTol,
		driftMin:   *driftMin,
		nsGated:    re,
	})
	if drift != 1 {
		fmt.Printf("benchdiff: machine drift x%.3f (suite-median ns ratio) divided out of wall-clock gates\n", drift)
	}
	for _, v := range violations {
		fmt.Println("FAIL:", v.msg)
	}
	if *failList != "" {
		var list strings.Builder
		for _, v := range violations {
			fmt.Fprintf(&list, "%s %s\n", v.kind, v.name)
		}
		if err := os.WriteFile(*failList, []byte(list.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	fmt.Printf("benchdiff: %d benchmarks compared (%s -> %s), %d regressions\n",
		compared, *oldPath, *newPath, len(violations))
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: the trajectories share no benchmarks")
		os.Exit(2)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func load(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res map[string]Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// violation is one gate failure: which gate tripped (alloc, ns or rate),
// on which benchmark, and the human-readable message.
type violation struct {
	kind string
	name string
	msg  string
}

// diff applies the gates to the benchmarks common to old and new, returning
// how many were compared, the machine-drift factor divided out of the
// wall-clock gates (1 when no correction applied), and one violation per
// gate failure, in name order.
func diff(oldRes, newRes map[string]Result, g gates) (int, float64, []violation) {
	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		if _, ok := newRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	drift := machineDrift(oldRes, newRes, names, g.nsMinIters, g.driftMin)

	var violations []violation
	for _, name := range names {
		o, n := oldRes[name], newRes[name]
		if n.AllocsPerOp > o.AllocsPerOp*(1+g.allocTol) {
			violations = append(violations, violation{"alloc", name, fmt.Sprintf(
				"%s: allocs/op %g -> %g (allocations may not increase)",
				name, o.AllocsPerOp, n.AllocsPerOp)})
		}
		if g.nsGated.MatchString(name) && o.Iterations >= g.nsMinIters &&
			o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+g.nsTol)*drift {
			violations = append(violations, violation{"ns", name, fmt.Sprintf(
				"%s: ns/op %.1f -> %.1f (+%.1f%% drift-adjusted, tolerance %.0f%%)",
				name, o.NsPerOp, n.NsPerOp, (n.NsPerOp/(o.NsPerOp*drift)-1)*100, g.nsTol*100)})
		}
		// Throughput gate: a scale run's samples/sec may not drop past
		// -rate-tol. Gated only when the baseline recorded the unit, so a
		// trajectory that predates the unit (or a microbenchmark) is exempt.
		if o.SamplesPerSec > 0 && n.SamplesPerSec > 0 &&
			n.SamplesPerSec*drift < o.SamplesPerSec*(1-g.rateTol) {
			violations = append(violations, violation{"rate", name, fmt.Sprintf(
				"%s: samples/sec %.0f -> %.0f (%.1f%% drift-adjusted, tolerance -%.0f%%)",
				name, o.SamplesPerSec, n.SamplesPerSec, (n.SamplesPerSec*drift/o.SamplesPerSec-1)*100, g.rateTol*100)})
		}
	}
	return len(names), drift, violations
}

// machineDrift estimates how much faster or slower the recording machine ran
// for the new trajectory as the median new/old ns ratio over every stable
// benchmark pair — stable meaning both sides measured ns and the baseline
// cleared the iteration floor. The median is robust to a handful of genuine
// regressions or improvements in the suite; with fewer than driftMin pairs
// that robustness is gone (the gated paths would dominate their own
// correction), so no normalization is applied and 1 is returned.
func machineDrift(oldRes, newRes map[string]Result, names []string, nsMinIters int64, driftMin int) float64 {
	var ratios []float64
	for _, name := range names {
		o, n := oldRes[name], newRes[name]
		if o.NsPerOp > 0 && n.NsPerOp > 0 && o.Iterations >= nsMinIters {
			ratios = append(ratios, n.NsPerOp/o.NsPerOp)
		}
	}
	if len(ratios) < driftMin || driftMin <= 0 {
		return 1
	}
	sort.Float64s(ratios)
	if len(ratios)%2 == 1 {
		return ratios[len(ratios)/2]
	}
	return (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
}
