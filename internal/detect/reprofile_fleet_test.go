package detect

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

func TestNewReprofilerValidation(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 130)
	if _, err := NewReprofiler(workload.KMeans, prof, DefaultConfig(), 5); err == nil {
		t.Error("undersized buffer accepted")
	}
	bad := DefaultConfig()
	bad.HC = 0
	if _, err := NewReprofiler(workload.KMeans, prof, bad, 600); err == nil {
		t.Error("bad config accepted")
	}
}

// shiftedModel returns a k-means telemetry model whose base level moved by
// the given factor — "the application changed dramatically" (§6).
func shiftedModel(t *testing.T, factor float64, seed uint64) *workload.Model {
	t.Helper()
	prof := workload.MustAppProfile(workload.KMeans)
	prof.BaseAccess *= factor
	m, err := workload.NewModel(prof, randx.Derive(seed, 7))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReprofilerRecoversFromApplicationChange(t *testing.T) {
	cfg := DefaultConfig()
	prof := steadyProfile(t, workload.KMeans, 131)
	r, err := NewReprofiler(workload.KMeans, prof, cfg, 600)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: normal behaviour — no persistent alarm.
	normal := shiftedModel(t, 1.0, 131)
	now := 0.0
	feedModel := func(m *workload.Model, seconds float64, env workload.Env) {
		n := int(seconds / cfg.TPCM)
		for i := 0; i < n; i++ {
			now += cfg.TPCM
			a, miss := m.Sample(cfg.TPCM, env)
			r.Observe(pcm.Sample{T: now, Access: a, Miss: miss})
		}
	}
	feedModel(normal, 300, workload.Env{})
	if r.StaleSuspected(120) {
		t.Fatal("stale suspected during normal behaviour")
	}

	// Phase 2: the application legitimately changes (base level +60%).
	// SDS starts alarming persistently — a stale profile, not an attack.
	changed := shiftedModel(t, 1.6, 132)
	feedModel(changed, 900, workload.Env{})
	if !r.Alarmed() {
		t.Fatal("no alarm after a 60% behavioural shift; the stale-profile scenario did not materialize")
	}
	if !r.StaleSuspected(120) {
		t.Fatal("persistent alarm not flagged as suspected-stale")
	}

	// Phase 3: the tenant confirms the change; the provider re-profiles
	// from the rolling buffer (filled with post-change samples).
	newProf, err := r.Reprofile()
	if err != nil {
		t.Fatal(err)
	}
	if newProf.MeanAccess < 1.3*prof.MeanAccess {
		t.Fatalf("re-profile mean %v did not track the change (was %v)", newProf.MeanAccess, prof.MeanAccess)
	}
	if r.Reprofiles() != 1 {
		t.Fatalf("reprofiles = %d", r.Reprofiles())
	}
	feedModel(changed, 300, workload.Env{})
	if r.Alarmed() {
		t.Fatal("still alarmed on the new baseline after re-profiling")
	}

	// Phase 4: an actual attack on the new baseline is still detected.
	sched := attack.Schedule{Kind: attack.BusLock, Start: now, Ramp: 10}
	n := int(200 / cfg.TPCM)
	for i := 0; i < n; i++ {
		now += cfg.TPCM
		a, miss := changed.Sample(cfg.TPCM, sched.Env(now, false))
		r.Observe(pcm.Sample{T: now, Access: a, Miss: miss})
	}
	if !r.Alarmed() {
		t.Fatal("attack on the re-profiled baseline missed")
	}
}

func TestReprofileRequiresFullBuffer(t *testing.T) {
	cfg := DefaultConfig()
	prof := steadyProfile(t, workload.KMeans, 133)
	r, err := NewReprofiler(workload.KMeans, prof, cfg, 600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reprofile(); err == nil {
		t.Fatal("reprofile with an empty buffer accepted")
	}
}

func TestFleetBasics(t *testing.T) {
	f := NewFleet()
	if err := f.Protect("", &countingDetector{}); err == nil {
		t.Error("empty VM name accepted")
	}
	if err := f.Protect("vm-a", nil); err == nil {
		t.Error("nil detector accepted")
	}
	a := &countingDetector{}
	b := &countingDetector{alarmed: true}
	if err := f.Protect("vm-a", a); err != nil {
		t.Fatal(err)
	}
	if err := f.Protect("vm-b", b); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Fatalf("size = %d", f.Size())
	}
	if err := f.Observe("vm-a", pcm.Sample{T: 1, Access: 10, Miss: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Observe("vm-c", pcm.Sample{}); err == nil {
		t.Error("unknown VM accepted")
	}
	if len(a.observed) != 1 {
		t.Fatalf("vm-a observed %d samples", len(a.observed))
	}
	if !f.Alarmed() {
		t.Fatal("fleet not alarmed while vm-b is")
	}
	if got := f.AlarmedVMs(); len(got) != 1 || got[0] != "vm-b" {
		t.Fatalf("alarmed VMs = %v", got)
	}
	f.Unprotect("vm-b")
	if f.Alarmed() || f.Size() != 1 {
		t.Fatal("unprotect did not remove vm-b")
	}
}

func TestFleetEndToEnd(t *testing.T) {
	// Two protected VMs on one server; only one is attacked; the fleet
	// reports exactly that one.
	cfg := DefaultConfig()
	f := NewFleet()
	models := make(map[string]*workload.Model, 2)
	for _, app := range []string{workload.KMeans, workload.Bayes} {
		prof := steadyProfile(t, app, 140)
		det, err := NewSDS(prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Protect(app, det); err != nil {
			t.Fatal(err)
		}
		m, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(141, app))
		if err != nil {
			t.Fatal(err)
		}
		models[app] = m
	}
	sched := attack.Schedule{Kind: attack.Cleanse, Start: 100, Ramp: 10}
	n := int(300 / cfg.TPCM)
	for i := 0; i < n; i++ {
		now := float64(i+1) * cfg.TPCM
		for app, m := range models {
			env := workload.Env{}
			if app == workload.KMeans {
				env = sched.Env(now, false)
			}
			a, miss := m.Sample(cfg.TPCM, env)
			if err := f.Observe(app, pcm.Sample{T: now, Access: a, Miss: miss}); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := f.AlarmedVMs()
	if len(got) != 1 || got[0] != workload.KMeans {
		t.Fatalf("alarmed VMs = %v, want [kmeans]", got)
	}
	alarms := f.Alarms()
	if len(alarms) == 0 || alarms[0].VM != workload.KMeans {
		t.Fatalf("fleet alarms = %+v", alarms)
	}
}
