// Command detectd runs a detection scheme over a PCM counter stream read
// from stdin — the single-VM deployment shape of the paper's system: a
// hypervisor-side process consuming `t,access,miss` CSV lines (easily
// produced from Intel PCM or a perf wrapper) and emitting alarm events.
// For many VMs at once, see cmd/sdsd, which serves the same lifecycle
// per connection; detectd is a thin stdin wrapper over that shared
// ingest code (internal/server.Session).
//
// The first -profile-seconds of the stream serve as the Stage-1 profile
// (the VM must be known attack-free during that window, e.g. right after
// placement); everything after is monitored.
//
//	# replay a recorded stream
//	detectd -scheme sds < samples.csv
//
//	# record a simulated stream, then detect over it
//	detectd -record 120 -app facenet > samples.csv
//	detectd -scheme sdsp < samples.csv
//
// With -json each alarm is emitted as one JSON object per line; the final
// summary goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/memdos/sds"
	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/server"
)

func main() {
	var (
		scheme         = flag.String("scheme", "sds", "detection scheme: sds, sdsb, sdsp or kstest")
		profileSeconds = flag.Float64("profile-seconds", 900, "leading stream seconds used as the Stage-1 profile")
		appName        = flag.String("app", "monitored-vm", "application name for the profile")
		jsonOut        = flag.Bool("json", false, "emit alarms as JSON lines")
		record         = flag.Float64("record", 0, "instead of detecting, record this many seconds of simulated telemetry for -app to stdout")
		attackAt       = flag.Float64("attack-at", 0, "with -record: start a bus-locking attack at this time (0 = none)")
		seed           = flag.Uint64("seed", 1, "simulation seed for -record")
	)
	flag.Parse()
	var err error
	if *record > 0 {
		err = runRecord(*appName, *record, *attackAt, *seed)
	} else {
		err = runDetect(os.Stdin, os.Stdout, *scheme, *appName, *profileSeconds, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "detectd:", err)
		os.Exit(1)
	}
}

// runRecord writes a simulated telemetry stream to stdout in feed format.
func runRecord(app string, seconds, attackAt float64, seed uint64) error {
	_, err := server.WriteSimulatedStream(os.Stdout, server.ReplaySpec{
		App:      app,
		Seconds:  seconds,
		AttackAt: attackAt,
		Seed:     seed,
	})
	return err
}

// runDetect profiles on the stream head and detects over the rest. It is a
// stdin front-end over the same Session lifecycle sdsd runs per connection.
func runDetect(in io.Reader, out io.Writer, scheme, app string, profileSeconds float64, jsonOut bool) error {
	enc := json.NewEncoder(out)
	sess, err := server.NewSession(server.StreamSpec{
		VM:             "stdin",
		App:            app,
		Scheme:         scheme,
		ProfileSeconds: profileSeconds,
		OnProfile: func(p sds.Profile, n int) {
			fmt.Fprintf(os.Stderr, "detectd: profiled %s over %d samples (μ_access=%.4g σ=%.4g periodic=%v)\n",
				app, n, p.MeanAccess, p.StdAccess, p.Periodic)
		},
		OnAlarm: func(a sds.Alarm) error {
			if jsonOut {
				return enc.Encode(server.NewAlarmEvent(a))
			}
			_, err := fmt.Fprintf(out, "[%10.2fs] ALARM %s (%s): %s\n", a.T, a.Detector, a.Metric, a.Reason)
			return err
		},
	})
	if err != nil {
		return err
	}
	reader := feed.NewReader(in)
	for {
		s, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := sess.Observe(s); err != nil {
			return err
		}
	}
	stats, err := sess.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "detectd: %d samples monitored, %d dropped as malformed, %d alarms, final state alarmed=%v\n",
		stats.Monitored, stats.Dropped, stats.Alarms, stats.Alarmed)
	return nil
}
