package membus

import (
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
)

func mustBus(t *testing.T, perSec, maxLock float64) *Bus {
	t.Helper()
	b, err := New(perSec, maxLock)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(-10, 0); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(100, 0); err != nil {
		t.Errorf("default max lock rejected: %v", err)
	}
}

func TestAllocateValidation(t *testing.T) {
	b := mustBus(t, 1000, 0)
	if _, err := b.Allocate(0, nil); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := b.Allocate(1, []Demand{{Accesses: -1}}); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := b.Allocate(1, []Demand{{LockFraction: 1.5}}); err == nil {
		t.Error("lock fraction > 1 accepted")
	}
}

func TestUncontendedDemandFullyGranted(t *testing.T) {
	b := mustBus(t, 10000, 0)
	grants, err := b.Allocate(0.01, []Demand{{Owner: 0, Accesses: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if grants[0].Accesses != 50 || grants[0].Stalled != 0 {
		t.Fatalf("grant = %+v, want full 50", grants[0])
	}
}

func TestFairSharingUnderContention(t *testing.T) {
	b := mustBus(t, 10000, 0) // 100 slots per 0.01s tick
	grants, err := b.Allocate(0.01, []Demand{
		{Owner: 0, Accesses: 80},
		{Owner: 1, Accesses: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if grants[0].Accesses != 50 || grants[1].Accesses != 50 {
		t.Fatalf("grants = %+v, want 50/50", grants)
	}
}

func TestMaxMinSmallDemandSatisfiedFirst(t *testing.T) {
	b := mustBus(t, 10000, 0) // 100 slots
	grants, err := b.Allocate(0.01, []Demand{
		{Owner: 0, Accesses: 10},
		{Owner: 1, Accesses: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if grants[0].Accesses != 10 {
		t.Fatalf("small demand granted %d, want 10", grants[0].Accesses)
	}
	if grants[1].Accesses != 90 {
		t.Fatalf("large demand granted %d, want 90", grants[1].Accesses)
	}
}

func TestBusLockStarvesOthers(t *testing.T) {
	// The atomic bus-locking attack: a 90% lock fraction leaves victims
	// only ~10% of the slots, while the attacker's own accesses proceed.
	b := mustBus(t, 10000, 0.95) // 100 slots per tick
	grants, err := b.Allocate(0.01, []Demand{
		{Owner: 0, Accesses: 100},                    // victim
		{Owner: 1, Accesses: 20, LockFraction: 0.90}, // attacker
	})
	if err != nil {
		t.Fatal(err)
	}
	attacker, victim := grants[1], grants[0]
	if attacker.Accesses != 20 {
		t.Fatalf("attacker granted %d, want 20", attacker.Accesses)
	}
	// Victim: open slots = 100*(1-0.9) = 10, minus nothing (attacker used
	// 20 of the full budget, 80 remain ≥ 10).
	if victim.Accesses != 10 {
		t.Fatalf("victim granted %d, want 10", victim.Accesses)
	}
}

func TestLockFractionCapped(t *testing.T) {
	b := mustBus(t, 10000, 0.80)
	grants, err := b.Allocate(0.01, []Demand{
		{Owner: 0, Accesses: 100},
		{Owner: 1, Accesses: 0, LockFraction: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cap at 0.8 → victims still get 20 slots.
	if grants[0].Accesses != 20 {
		t.Fatalf("victim granted %d, want 20", grants[0].Accesses)
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: granted ≤ demand per owner, Σ granted ≤ budget, and
	// granted + stalled == demand.
	r := randx.New(1, 2)
	b := mustBus(t, 50000, 0.95)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%6 + 1
		demands := make([]Demand, n)
		for i := range demands {
			demands[i] = Demand{Owner: i, Accesses: r.IntN(1000)}
			if r.Bool(0.2) {
				demands[i].LockFraction = r.Float64()
			}
		}
		grants, err := b.Allocate(0.01, demands)
		if err != nil {
			return false
		}
		total := 0
		for i, g := range grants {
			if g.Accesses < 0 || g.Accesses > demands[i].Accesses {
				return false
			}
			if g.Accesses+g.Stalled != demands[i].Accesses {
				return false
			}
			total += g.Accesses
		}
		return total <= 500 // budget per tick
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := mustBus(t, 10000, 0)
	_, err := b.Allocate(0.01, []Demand{{Owner: 0, Accesses: 150}})
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Requested != 150 || st.Granted != 100 || st.Stalled != 50 || st.Ticks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroDemands(t *testing.T) {
	b := mustBus(t, 1000, 0)
	grants, err := b.Allocate(0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 0 {
		t.Fatalf("grants = %v, want empty", grants)
	}
}
