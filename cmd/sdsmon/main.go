// Command sdsmon is a live demonstration of the detection system: it
// simulates a protected VM running an application, attaches the chosen
// detector to its PCM sample stream, injects a memory DoS attack at the
// requested time, and prints alarm transitions as they happen.
//
//	sdsmon -app facenet -attack buslock -at 60 -duration 180 -scheme sds
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/experiment"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", workload.KMeans, "application to protect (bayes, svm, kmeans, pca, aggregation, join, scan, terasort, pagerank, facenet)")
		attackAt = flag.Float64("at", 60, "attack start time in virtual seconds (0 disables)")
		kindName = flag.String("attack", "buslock", "attack kind: buslock or cleanse")
		duration = flag.Float64("duration", 180, "total virtual run time in seconds")
		scheme   = flag.String("scheme", "sds", "detection scheme: sds, sdsb, sdsp or kstest")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*app, *kindName, *attackAt, *duration, *scheme, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sdsmon:", err)
		os.Exit(1)
	}
}

func run(app, kindName string, attackAt, duration float64, schemeName string, seed uint64) error {
	kind := attack.BusLock
	switch kindName {
	case "buslock":
	case "cleanse":
		kind = attack.Cleanse
	default:
		return fmt.Errorf("unknown attack kind %q", kindName)
	}
	var scheme experiment.Scheme
	switch schemeName {
	case "sds":
		scheme = experiment.SchemeSDS
	case "sdsb":
		scheme = experiment.SchemeSDSB
	case "sdsp":
		scheme = experiment.SchemeSDSP
	case "kstest":
		scheme = experiment.SchemeKSTest
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}

	cfg := experiment.DefaultConfig()
	cfg.Seed = seed

	fmt.Printf("profiling %s (Stage 1, %.0f s of attack-free telemetry)...\n", app, cfg.ProfileSeconds)
	prof, det, flag, err := cfg.BuildDetector(app, scheme, seed)
	if err != nil {
		return err
	}
	fmt.Printf("profile: μ_access=%.4g σ_access=%.4g", prof.MeanAccess, prof.StdAccess)
	if prof.Periodic {
		fmt.Printf(" periodic (period %d MA windows)", prof.PeriodMA)
	}
	fmt.Println()

	model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(seed, app+"/sdsmon"))
	if err != nil {
		return err
	}
	sched := attack.Schedule{Kind: kind, Start: attackAt, Ramp: 10}
	if attackAt <= 0 {
		sched.Kind = attack.None
	}

	tpcm := cfg.Detect.TPCM
	n := pcm.SampleCount(duration, tpcm)
	wasAlarmed := false
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		if sched.Kind != attack.None && now-tpcm < attackAt && now >= attackAt {
			fmt.Printf("[%7.2fs] >>> %v attack launched (ramp %.0f s)\n", now, kind, sched.Ramp)
		}
		a, m := model.Sample(tpcm, sched.Env(now, flag.Paused()))
		det.Observe(pcm.Sample{T: now, Access: a, Miss: m})
		if det.Alarmed() != wasAlarmed {
			wasAlarmed = det.Alarmed()
			if wasAlarmed {
				alarms := det.Alarms()
				last := alarms[len(alarms)-1]
				fmt.Printf("[%7.2fs] ALARM (%s): %s\n", now, last.Detector, last.Reason)
			} else {
				fmt.Printf("[%7.2fs] alarm cleared\n", now)
			}
		}
	}
	fmt.Printf("run complete: %d samples, %d alarm events\n", n, len(det.Alarms()))
	return nil
}
