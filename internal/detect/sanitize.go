package detect

import (
	"math"

	"github.com/memdos/sds/internal/pcm"
)

// Sanitizer guards a detector against malformed PCM input: NaN or negative
// counters (counter wrap-around, tool restart) and out-of-order or
// duplicate timestamps (buffering glitches). Malformed samples are dropped
// and counted, never forwarded — a hypervisor-resident detector must not
// corrupt its state because the measurement tool hiccupped.
//
// Wrap any Detector:
//
//	d, _ := detect.NewSDS(prof, cfg)
//	s := detect.NewSanitizer(d)
//	s.Observe(sample) // forwards only well-formed samples
type Sanitizer struct {
	inner Detector

	lastT   float64
	started bool
	dropped uint64
}

var _ Detector = (*Sanitizer)(nil)

// NewSanitizer wraps a detector with input validation. A nil inner detector
// yields a Sanitizer that drops everything (still safe to use).
func NewSanitizer(inner Detector) *Sanitizer {
	return &Sanitizer{inner: inner}
}

// Name implements Detector.
func (s *Sanitizer) Name() string {
	if s.inner == nil {
		return "sanitizer"
	}
	return s.inner.Name()
}

// Observe implements Detector: well-formed samples are forwarded, malformed
// ones dropped and counted.
func (s *Sanitizer) Observe(sample pcm.Sample) {
	if s.inner == nil || !s.valid(sample) {
		s.dropped++
		return
	}
	s.lastT = sample.T
	s.started = true
	s.inner.Observe(sample)
}

func (s *Sanitizer) valid(sample pcm.Sample) bool {
	switch {
	// !(|x| <= MaxFloat64) rejects exactly NaN and ±Inf: one branch per
	// field instead of the IsNaN/IsInf pair on this per-sample path.
	case !(math.Abs(sample.T) <= math.MaxFloat64):
		return false
	case !(math.Abs(sample.Access) <= math.MaxFloat64):
		return false
	case !(math.Abs(sample.Miss) <= math.MaxFloat64):
		return false
	case sample.Access < 0 || sample.Miss < 0:
		return false
	case sample.Miss > sample.Access:
		// More misses than accesses means a counter glitch.
		return false
	case s.started && sample.T <= s.lastT:
		return false
	}
	return true
}

// Alarmed implements Detector.
func (s *Sanitizer) Alarmed() bool {
	return s.inner != nil && s.inner.Alarmed()
}

// Alarms implements Detector.
func (s *Sanitizer) Alarms() []Alarm {
	if s.inner == nil {
		return nil
	}
	return s.inner.Alarms()
}

// AlarmCount implements AlarmCounter.
func (s *Sanitizer) AlarmCount() int {
	if s.inner == nil {
		return 0
	}
	return alarmCount(s.inner)
}

// alarmCount reads a detector's alarm count, through the AlarmCounter fast
// path when it has one and an Alarms() copy otherwise.
func alarmCount(d Detector) int {
	if c, ok := d.(AlarmCounter); ok {
		return c.AlarmCount()
	}
	return len(d.Alarms())
}

// Dropped returns the number of malformed samples rejected so far.
func (s *Sanitizer) Dropped() uint64 { return s.dropped }
