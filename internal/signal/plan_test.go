package signal

import (
	"math"
	"math/bits"
	"math/cmplx"
	"testing"

	"github.com/memdos/sds/internal/randx"
)

// This file pins the numerical contract of the plan/scratch layer: the
// table-driven transforms must be BIT-IDENTICAL to the historical free
// implementations (reproduced verbatim below as ref*), and the FFT-based
// autocorrelation must agree with the direct summation to well under the
// margins any detection threshold uses. Fixed-seed experiment outputs
// depend on this.

// refDFT/refRadix2/refBluestein are the pre-plan implementations, kept
// verbatim as the reference oracle.
func refDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		refRadix2(out, inverse)
		return out
	}
	return refBluestein(x, inverse)
}

func refRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n == 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

func refBluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		k2 := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(k2)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	refRadix2(a, false)
	refRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	refRadix2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

func refIFFT(x []complex128) []complex128 {
	out := refDFT(x, true)
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

// testSizes covers powers of two, odd primes, and composite non-powers —
// both Bluestein and radix-2 paths at several table depths.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 30, 34, 64, 100, 128, 255, 256, 300, 750, 1024}

func randomComplex(n int, r *randx.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
	}
	return x
}

func TestFFTBitIdenticalToReference(t *testing.T) {
	r := randx.New(11, 7)
	for _, n := range testSizes {
		x := randomComplex(n, r)
		got, want := FFT(x), refDFT(x, false)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("FFT n=%d bin %d: got %v, reference %v", n, k, got[k], want[k])
			}
		}
		gotI, wantI := IFFT(x), refIFFT(x)
		for k := range wantI {
			if gotI[k] != wantI[k] {
				t.Fatalf("IFFT n=%d bin %d: got %v, reference %v", n, k, gotI[k], wantI[k])
			}
		}
	}
}

func TestFFTPlanBitIdenticalToFreeFunctions(t *testing.T) {
	r := randx.New(12, 7)
	for _, n := range testSizes {
		p := NewFFTPlan(n)
		if p.Size() != n {
			t.Fatalf("plan size %d, want %d", p.Size(), n)
		}
		x := randomComplex(n, r)
		dst := make([]complex128, n)

		p.Forward(dst, x)
		want := FFT(x)
		for k := range want {
			if dst[k] != want[k] {
				t.Fatalf("Forward n=%d bin %d: got %v, want %v", n, k, dst[k], want[k])
			}
		}

		// In place: dst and src the same slice.
		inPlace := append([]complex128(nil), x...)
		p.Forward(inPlace, inPlace)
		for k := range want {
			if inPlace[k] != want[k] {
				t.Fatalf("in-place Forward n=%d bin %d: got %v, want %v", n, k, inPlace[k], want[k])
			}
		}

		p.Inverse(dst, x)
		wantI := IFFT(x)
		for k := range wantI {
			if dst[k] != wantI[k] {
				t.Fatalf("Inverse n=%d bin %d: got %v, want %v", n, k, dst[k], wantI[k])
			}
		}
	}
}

func TestFFTPlanRoundTrip(t *testing.T) {
	r := randx.New(13, 7)
	for _, n := range []int{8, 34, 100, 256} {
		p := NewFFTPlan(n)
		x := randomComplex(n, r)
		fwd := make([]complex128, n)
		back := make([]complex128, n)
		p.Forward(fwd, x)
		p.Inverse(back, fwd)
		for k := range x {
			if cmplx.Abs(back[k]-x[k]) > 1e-9 {
				t.Fatalf("round trip n=%d index %d: got %v, want %v", n, k, back[k], x[k])
			}
		}
	}
}

func TestPeriodogramBitIdenticalToReference(t *testing.T) {
	r := randx.New(14, 7)
	for _, n := range []int{8, 34, 100, 256, 750} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Normal(0, 1)
		}
		// Reference: demean, full DFT via the reference implementation,
		// |X_k|^2/n — exactly what the historical Periodogram computed.
		mean := 0.0
		for _, v := range x {
			mean += v
		}
		mean /= float64(n)
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v-mean, 0)
		}
		X := refDFT(cx, false)
		got := Periodogram(x)
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: periodogram length %d, want %d", n, len(got), n/2+1)
		}
		for k := range got {
			re, im := real(X[k]), imag(X[k])
			want := (re*re + im*im) / float64(n)
			if got[k] != want {
				t.Fatalf("periodogram n=%d bin %d: got %v, want %v", n, k, got[k], want)
			}
		}
	}
}

func TestFFTACFMatchesDirect(t *testing.T) {
	r := randx.New(15, 7)
	e := NewPeriodEstimator()
	// Sizes large enough that n·maxLag exceeds acfFFTThreshold, forcing the
	// Wiener–Khinchin path; compare against the direct summation.
	for _, n := range []int{200, 500, 1000, 2048} {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2*math.Pi*float64(i)/34) + r.Normal(0, 0.3)
		}
		maxLag := n / 2
		if n*maxLag <= acfFFTThreshold {
			t.Fatalf("n=%d does not exercise the FFT path; fix the test sizes", n)
		}
		got := make([]float64, maxLag+1)
		e.acfInto(got, make([]float64, len(x)), x, maxLag)
		want := ACF(x, maxLag)
		for lag := range want {
			if math.Abs(got[lag]-want[lag]) > 1e-9 {
				t.Fatalf("n=%d lag %d: FFT ACF %v, direct %v", n, lag, got[lag], want[lag])
			}
		}
	}
}

func TestFFTACFConstantSeries(t *testing.T) {
	e := NewPeriodEstimator()
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 3.5
	}
	out := make([]float64, 501)
	e.acfInto(out, make([]float64, len(x)), x, 500)
	if out[0] != 1 {
		t.Fatalf("lag 0: got %v, want 1", out[0])
	}
	for lag := 1; lag <= 500; lag++ {
		if out[lag] != 0 {
			t.Fatalf("lag %d: got %v, want 0", lag, out[lag])
		}
	}
}

func TestPeriodEstimatorMatchesEstimatePeriod(t *testing.T) {
	r := randx.New(16, 7)
	e := NewPeriodEstimator()
	for trial := 0; trial < 50; trial++ {
		period := 5 + int(r.Uniform(0, 40))
		n := period * (4 + int(r.Uniform(0, 8)))
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + r.Normal(0, 0.4)
		}
		var opts PeriodOptions
		want, wantOK := EstimatePeriod(x, opts)
		got, gotOK := e.Estimate(x, opts)
		if gotOK != wantOK || got.Period != want.Period || got.Power != want.Power {
			t.Fatalf("trial %d (n=%d, period=%d): estimator (%+v, %v) != free function (%+v, %v)",
				trial, n, period, got, gotOK, want, wantOK)
		}
		if len(got.Candidates) != len(want.Candidates) {
			t.Fatalf("trial %d: candidate count %d != %d", trial, len(got.Candidates), len(want.Candidates))
		}
		for i := range want.Candidates {
			if got.Candidates[i] != want.Candidates[i] {
				t.Fatalf("trial %d candidate %d: %d != %d", trial, i, got.Candidates[i], want.Candidates[i])
			}
		}
	}
}

func TestPeriodEstimatorEstimateZeroAlloc(t *testing.T) {
	r := randx.New(17, 7)
	n := 68 // SDS/P's W_P = 2p for the FaceNet-like period 34
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/34) + r.Normal(0, 0.2)
	}
	e := NewPeriodEstimator()
	opts := PeriodOptions{MinPeriod: 11, MaxPeriod: n / 2}
	e.Estimate(x, opts) // warm up plans and scratch
	allocs := testing.AllocsPerRun(100, func() {
		e.Estimate(x, opts)
	})
	if allocs != 0 {
		t.Fatalf("PeriodEstimator.Estimate allocated %.1f allocs/op in steady state, want 0", allocs)
	}
}

func TestPeriodEstimatorEstimateZeroAllocFFTACF(t *testing.T) {
	r := randx.New(18, 7)
	n := 1024 // large enough for the Wiener–Khinchin ACF path
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/64) + r.Normal(0, 0.2)
	}
	e := NewPeriodEstimator()
	var opts PeriodOptions
	e.Estimate(x, opts)
	allocs := testing.AllocsPerRun(100, func() {
		e.Estimate(x, opts)
	})
	if allocs != 0 {
		t.Fatalf("Estimate (FFT-ACF path) allocated %.1f allocs/op in steady state, want 0", allocs)
	}
}
