package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/workload"
)

func TestParallelMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got, err := parallelMap(workers, 37, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestParallelMapEmpty(t *testing.T) {
	got, err := parallelMap(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestParallelMapErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := parallelMap(workers, 20, func(i int) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("run %d: %w", i, sentinel)
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
	}
}

func TestParallelMapSerialReturnsFirstError(t *testing.T) {
	_, err := parallelMap(1, 10, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("err at %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "err at 3" {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
}

func TestParallelMapErrorCancelsRemainingWork(t *testing.T) {
	var executed atomic.Int64
	const n = 10000
	_, err := parallelMap(2, n, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, errors.New("immediate failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if got := executed.Load(); got >= n {
		t.Fatalf("all %d jobs ran despite an early error", got)
	}
}

func TestWorkersDefaultsToCPUs(t *testing.T) {
	c := DefaultConfig()
	if got := c.workers(); got < 1 {
		t.Fatalf("workers() = %d", got)
	}
	c.Parallel = 3
	if got := c.workers(); got != 3 {
		t.Fatalf("workers() = %d, want 3", got)
	}
}

func TestValidateRejectsNegativeParallel(t *testing.T) {
	c := DefaultConfig()
	c.Parallel = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative Parallel accepted")
	}
}

// TestRunPoolFiltersLatchedAlarms pins the shared pooling contract: a
// latched pre-existing alarm (Detected == true, Delay == -1) counts toward
// the detection rate but must never leak a negative value into the delay
// distribution.
func TestRunPoolFiltersLatchedAlarms(t *testing.T) {
	var pool runPool
	pool.add(metrics.Outcome{TP: 10, TN: 9, FP: 1, Recall: 1, Specificity: 0.9, Detected: true, Delay: 12})
	pool.add(metrics.Outcome{TP: 10, TN: 5, FP: 5, Recall: 1, Specificity: 0.5, Detected: true, Delay: -1}) // latched
	pool.add(metrics.Outcome{FN: 10, TN: 10, Recall: 0, Specificity: 1, Detected: false, Delay: -1})        // missed

	d := pool.delay()
	if d.N != 1 {
		t.Fatalf("delay distribution pooled %d values, want 1 (onsets only)", d.N)
	}
	if d.Median != 12 || d.P10 < 0 {
		t.Fatalf("delay distribution = %+v, want the single onset delay", d)
	}
	if got := pool.detectionRate(); got != 2.0/3.0 {
		t.Fatalf("detection rate = %v, want 2/3", got)
	}
	if r := pool.recall(); r.N != 3 {
		t.Fatalf("recall pooled %d values, want all 3", r.N)
	}
}

// TestAccuracyDeterministicAcrossWorkerCounts asserts the acceptance
// criterion of the parallel engine: Accuracy output is bit-identical at
// any worker-pool size.
func TestAccuracyDeterministicAcrossWorkerCounts(t *testing.T) {
	base := fastConfig()
	var ref []AccuracyCell
	for _, parallel := range []int{1, 2, 8} {
		c := base
		c.Parallel = parallel
		cells, err := c.Accuracy([]string{workload.KMeans})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if ref == nil {
			ref = cells
			continue
		}
		if !reflect.DeepEqual(ref, cells) {
			t.Fatalf("parallel=%d diverges from parallel=1:\n%+v\nvs\n%+v", parallel, cells, ref)
		}
	}
}

// TestSweepDeterministicAcrossWorkerCounts does the same for the
// sensitivity sweeps, and doubles as the regression test that no negative
// delay can enter a sweep's delay distribution.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	base := fastConfig()
	base.Runs = 1
	var ref []SweepPoint
	for _, parallel := range []int{1, 2, 8} {
		c := base
		c.Parallel = parallel
		points, err := c.SweepAlpha(workload.KMeans, []float64{0.2, 0.6})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for _, p := range points {
			if p.Delay.N > 0 && (p.Delay.P10 < 0 || p.Delay.Median < 0 || p.Delay.P90 < 0) {
				t.Fatalf("parallel=%d: negative delay in distribution at %v: %+v", parallel, p.Value, p.Delay)
			}
		}
		if ref == nil {
			ref = points
			continue
		}
		if !reflect.DeepEqual(ref, points) {
			t.Fatalf("parallel=%d diverges from parallel=1:\n%+v\nvs\n%+v", parallel, points, ref)
		}
	}
}

// TestOverheadDeterministicAcrossWorkerCounts covers the third rewired
// entry point.
func TestOverheadDeterministicAcrossWorkerCounts(t *testing.T) {
	base := fastConfig()
	var ref []OverheadCell
	for _, parallel := range []int{1, 2, 8} {
		c := base
		c.Parallel = parallel
		cells, err := c.Overhead([]string{workload.FaceNet})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if ref == nil {
			ref = cells
			continue
		}
		if !reflect.DeepEqual(ref, cells) {
			t.Fatalf("parallel=%d diverges from parallel=1:\n%+v\nvs\n%+v", parallel, cells, ref)
		}
	}
}

// TestAccuracyErrorPropagation asserts errgroup-style semantics end to
// end: a failing cell surfaces as an error, not a panic or a hang.
func TestAccuracyErrorPropagation(t *testing.T) {
	c := fastConfig()
	c.Parallel = 4
	c.Detect.TPCM = 0 // invalid: every DetectionRun fails validation
	if _, err := c.Accuracy([]string{workload.KMeans}); err == nil {
		t.Fatal("invalid config did not propagate an error")
	}
}
