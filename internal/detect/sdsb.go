package detect

import (
	"fmt"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/timeseries"
)

// SDSB is the Boundary-based Statistical Detection Scheme (paper §4.2.1).
// It preprocesses each counter with a sliding-window moving average and an
// EWMA, and flags an attack when the smoothed value leaves the profiled
// normal range [μ_E−kσ_E, μ_E+kσ_E] for H_C consecutive windows — a drop in
// AccessNum signals bus locking, a rise in MissNum signals LLC cleansing.
type SDSB struct {
	cfg  Config
	prof Profile

	loA, hiA float64
	loM, hiM float64

	maA, maM *timeseries.MovingAverager
	ewA, ewM *timeseries.EWMA

	windows    int
	violA      int
	violM      int
	alarmed    bool
	alarms     []Alarm
	windowHook func(WindowStat)
}

var _ Detector = (*SDSB)(nil)

// SDSBOption customizes an SDSB detector.
type SDSBOption interface{ applySDSB(*SDSB) }

type sdsbWindowHook func(WindowStat)

func (h sdsbWindowHook) applySDSB(d *SDSB) { d.windowHook = h }

// WithSDSBWindowHook registers a callback invoked at every MA window
// boundary with the preprocessed values — used to trace the EWMA series of
// the paper's Fig. 7.
func WithSDSBWindowHook(hook func(WindowStat)) SDSBOption {
	return sdsbWindowHook(hook)
}

// NewSDSB returns an SDS/B detector for an application with the given
// Stage-1 profile.
func NewSDSB(prof Profile, cfg Config, opts ...SDSBOption) (*SDSB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prof.StdAccess < 0 || prof.StdMiss < 0 {
		return nil, fmt.Errorf("detect: profile for %q has negative σ", prof.App)
	}
	d := &SDSB{cfg: cfg, prof: prof}
	var err error
	if d.loA, d.hiA, err = prof.Bounds(MetricAccess, cfg.K); err != nil {
		return nil, err
	}
	if d.loM, d.hiM, err = prof.Bounds(MetricMiss, cfg.K); err != nil {
		return nil, err
	}
	if d.maA, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.maM, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.ewA, err = timeseries.NewEWMA(cfg.Alpha); err != nil {
		return nil, err
	}
	if d.ewM, err = timeseries.NewEWMA(cfg.Alpha); err != nil {
		return nil, err
	}
	for _, o := range opts {
		o.applySDSB(d)
	}
	return d, nil
}

// Name implements Detector.
func (d *SDSB) Name() string { return "SDS/B" }

// Profile returns the profile the detector was built with.
func (d *SDSB) Profile() Profile { return d.prof }

// Observe implements Detector.
func (d *SDSB) Observe(s pcm.Sample) {
	mA, okA := d.maA.Push(s.Access)
	mM, okM := d.maM.Push(s.Miss)
	if !okA && !okM {
		return
	}
	// Both averagers share the same geometry, so they emit together.
	d.ObserveMA(s.T, mA, mM)
}

// ObserveMA feeds one window-level observation — the moving averages M_n of
// the two counters at virtual time t — directly into the post-MA pipeline
// (EWMA, boundary check, violation streak). It is the batch-observation
// entry point of the event-driven cloud simulator, which generates telemetry
// in closed-form ΔW-sample blocks instead of raw samples. Feed a detector
// through either Observe or ObserveMA, never both.
func (d *SDSB) ObserveMA(t float64, mA, mM float64) {
	eA := d.ewA.Push(mA)
	eM := d.ewM.Push(mM)
	d.windows++

	if d.windowHook != nil {
		d.windowHook(WindowStat{
			Index:      d.windows - 1,
			T:          t,
			MAAccess:   mA,
			MAMiss:     mM,
			EWMAAccess: eA,
			EWMAMiss:   eM,
		})
	}

	// Condition C_n (Eq. 3), tracked per counter.
	d.violA = nextViolationCount(d.violA, eA < d.loA || eA > d.hiA)
	d.violM = nextViolationCount(d.violM, eM < d.loM || eM > d.hiM)

	nowAlarmed := d.violA >= d.cfg.HC || d.violM >= d.cfg.HC
	if nowAlarmed && !d.alarmed {
		metric, reason := MetricAccess, violationReason("AccessNum", eA, d.loA, d.hiA)
		if d.violM >= d.cfg.HC {
			metric, reason = MetricMiss, violationReason("MissNum", eM, d.loM, d.hiM)
		}
		d.alarms = append(d.alarms, Alarm{
			T:        t,
			Detector: d.Name(),
			Metric:   metric,
			Reason:   reason,
		})
	}
	d.alarmed = nowAlarmed
}

// Alarmed implements Detector.
func (d *SDSB) Alarmed() bool { return d.alarmed }

// AlarmCount implements AlarmCounter.
func (d *SDSB) AlarmCount() int { return len(d.alarms) }

// Alarms implements Detector.
func (d *SDSB) Alarms() []Alarm { return cloneAlarms(d.alarms) }

// Violations returns the current consecutive-violation counts for the two
// counters (diagnostics and tests).
func (d *SDSB) Violations() (access, miss int) { return d.violA, d.violM }

func nextViolationCount(count int, violated bool) int {
	if !violated {
		return 0
	}
	return count + 1
}

func violationReason(counter string, v, lo, hi float64) string {
	if v < lo {
		return fmt.Sprintf("%s EWMA %.4g below normal range [%.4g, %.4g]", counter, v, lo, hi)
	}
	return fmt.Sprintf("%s EWMA %.4g above normal range [%.4g, %.4g]", counter, v, lo, hi)
}
