// Command sensitivity reproduces the paper's sensitivity analysis (§5.3,
// Figs. 13–18): recall, specificity and detection delay of SDS as one
// parameter varies, on k-means (SDS/B parameters) and FaceNet (SDS/P
// parameters), as in the paper.
//
//	sensitivity -alpha    Fig. 13: EWMA smoothing factor α ∈ [0.05, 1]
//	sensitivity -k        Fig. 14: boundary factor k ∈ [1.1, 2] (H_C from Chebyshev)
//	sensitivity -w        Fig. 15: MA window size W ∈ [100, 1000]
//	sensitivity -dw       Fig. 16: MA sliding step ΔW ∈ [20, 200]
//	sensitivity -wp       Fig. 17: SDS/P window W_P ∈ [2p, 6p]
//	sensitivity -dwp      Fig. 18: SDS/P sliding step ΔW_P ∈ [5, 25]
//	sensitivity -all      all six sweeps
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/memdos/sds/internal/experiment"
	"github.com/memdos/sds/internal/profiling"
	"github.com/memdos/sds/internal/workload"
)

type sweep struct {
	name   string
	figure string
	app    string
	values []float64
	run    func(experiment.Config, string, []float64) ([]experiment.SweepPoint, error)
}

func main() {
	var (
		alpha    = flag.Bool("alpha", false, "Fig. 13: EWMA smoothing factor")
		k        = flag.Bool("k", false, "Fig. 14: boundary factor k")
		w        = flag.Bool("w", false, "Fig. 15: MA window size W")
		dw       = flag.Bool("dw", false, "Fig. 16: MA sliding step ΔW")
		wp       = flag.Bool("wp", false, "Fig. 17: SDS/P window W_P")
		dwp      = flag.Bool("dwp", false, "Fig. 18: SDS/P sliding step ΔW_P")
		all      = flag.Bool("all", false, "every sweep")
		runs     = flag.Int("runs", 10, "runs per point (per attack)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		parallel = flag.Int("parallel", 0, "concurrent detection runs (0 = all CPUs); results are identical at any setting")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if !(*alpha || *k || *w || *dw || *wp || *dwp || *all) {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}

	cfg := experiment.DefaultConfig()
	cfg.Runs = *runs
	cfg.Seed = *seed
	cfg.Parallel = *parallel

	err = run(os.Stdout, cfg, selectSweeps(*alpha || *all, *k || *all, *w || *all, *dw || *all, *wp || *all, *dwp || *all))
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}

// selectSweeps returns the enabled sweeps in figure order.
func selectSweeps(alpha, k, w, dw, wp, dwp bool) []sweep {
	all := []struct {
		enabled bool
		s       sweep
	}{
		{alpha, sweep{"α", "Fig. 13", workload.KMeans,
			[]float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0},
			experiment.Config.SweepAlpha}},
		{k, sweep{"k", "Fig. 14", workload.KMeans,
			[]float64{1.1, 1.125, 1.2, 1.3, 1.5, 2.0},
			experiment.Config.SweepK}},
		{w, sweep{"W", "Fig. 15", workload.KMeans,
			[]float64{100, 200, 400, 600, 800, 1000},
			experiment.Config.SweepW}},
		{dw, sweep{"ΔW", "Fig. 16", workload.KMeans,
			[]float64{20, 50, 100, 150, 200},
			experiment.Config.SweepDW}},
		{wp, sweep{"W_P factor", "Fig. 17", workload.FaceNet,
			[]float64{2, 3, 4, 5, 6},
			experiment.Config.SweepWPFactor}},
		{dwp, sweep{"ΔW_P", "Fig. 18", workload.FaceNet,
			[]float64{5, 10, 15, 20, 25},
			experiment.Config.SweepDWP}},
	}
	var out []sweep
	for _, entry := range all {
		if entry.enabled {
			out = append(out, entry.s)
		}
	}
	return out
}

// run executes the sweeps in order and renders each table to out.
func run(out io.Writer, cfg experiment.Config, sweeps []sweep) error {
	for _, s := range sweeps {
		if err := runSweep(out, cfg, s); err != nil {
			return err
		}
	}
	return nil
}

func runSweep(out io.Writer, cfg experiment.Config, s sweep) error {
	points, err := s.run(cfg, s.app, s.values)
	if err != nil {
		return err
	}
	tb := experiment.Table{
		Title:  fmt.Sprintf("%s — sensitivity of %s on %s (SDS, both attacks pooled)", s.figure, s.name, s.app),
		Header: []string{s.name, "recall %", "specificity %", "delay s"},
	}
	for _, p := range points {
		// An empty delay distribution (no run had an alarm onset during
		// the attack) renders as n/a, not as misleading zeros.
		delay := "n/a"
		if p.Delay.N > 0 {
			delay = fmt.Sprintf("%.1f [%.1f, %.1f]", p.Delay.Median, p.Delay.P10, p.Delay.P90)
		}
		tb.AddRow(
			fmt.Sprintf("%g", p.Value),
			fmt.Sprintf("%.1f [%.1f, %.1f]", p.Recall.Median, p.Recall.P10, p.Recall.P90),
			fmt.Sprintf("%.1f [%.1f, %.1f]", p.Specificity.Median, p.Specificity.P10, p.Specificity.P90),
			delay,
		)
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}
