package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/memdos/sds/internal/server"
)

// startServer launches a real sdsd Server on a loopback listener.
func startServer(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	s := server.New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, l.Addr().String()
}

// TestStreamVMHappyPath: a full attacked stream against a real server
// accounts every sample and reports its alarms.
func TestStreamVMHappyPath(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	res := streamVM(addr, "tcp", "load-ok", "kmeans", "sds", 160, 60, 100, 7, 1)
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.samples != res.sent || res.sent == 0 {
		t.Errorf("sent %d samples, server accounted %d", res.sent, res.samples)
	}
	if res.alarms == 0 {
		t.Error("attacked stream raised no alarms")
	}
}

// TestStreamVMRejectedHandshakeIsHardFailure is the regression test for the
// silent-success bug: when the server rejects the handshake (or closes the
// connection before replying), streamVM must fail before sending a single
// sample — previously it streamed the whole payload into a dead socket and
// the failure surfaced, if at all, only through the sample accounting.
func TestStreamVMRejectedHandshakeIsHardFailure(t *testing.T) {
	t.Run("error reply", func(t *testing.T) {
		_, addr := startServer(t, server.Options{})
		// An unknown scheme is rejected at handshake time.
		res := streamVM(addr, "tcp", "load-bad", "kmeans", "bogus", 160, 60, 0, 7, 1)
		if res.err == nil {
			t.Fatal("rejected handshake reported success")
		}
		if !strings.Contains(res.err.Error(), "rejected handshake") {
			t.Errorf("error %v does not identify the handshake rejection", res.err)
		}
		if res.sent != 0 {
			t.Errorf("streamed %d samples after a rejected handshake", res.sent)
		}
	})

	t.Run("connection closed before reply", func(t *testing.T) {
		// A listener that accepts and immediately hangs up, replying nothing.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				conn.Close()
			}
		}()
		res := streamVM(l.Addr().String(), "tcp", "load-hup", "kmeans", "sds", 160, 60, 0, 7, 1)
		if res.err == nil {
			t.Fatal("server hang-up before handshake reply reported success")
		}
		if !strings.Contains(res.err.Error(), "handshake reply") {
			t.Errorf("error %v does not identify the short handshake read", res.err)
		}
		if res.sent != 0 {
			t.Errorf("streamed %d samples into a closed connection", res.sent)
		}
	})
}

// TestRunExpectAlarms: the run-level assertion wiring — every stream must
// meet the alarm floor or the whole run fails.
func TestRunExpectAlarms(t *testing.T) {
	if testing.Short() {
		t.Skip("replays full streams")
	}
	_, addr := startServer(t, server.Options{})
	if err := run(addr, "tcp", "kmeans", "sds", 2, 160, 60, 100, 7, 1, 1); err != nil {
		t.Errorf("attacked run with alarms failed: %v", err)
	}
	// No stream can meet an absurd alarm floor; the run must fail.
	if err := run(addr, "tcp", "kmeans", "sds", 1, 120, 60, 0, 9, 1000, 1); err == nil {
		t.Error("run satisfied -expect-alarms 1000")
	}
}
