//go:build linux

package server

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
)

// soReusePort is SO_REUSEPORT, which the linux/amd64 syscall package does
// not export (the value is 15 on every Linux architecture).
const soReusePort = 0xf

// epollWriteTimeout bounds response-line writes issued from a shard loop
// (alarm, error, done). The loop is single-threaded per shard, so an
// unbounded write to a wedged client would stall every connection on the
// shard; past the deadline the connWriter goes sticky-failed and the
// write becomes the same best-effort no-op a dead client already gets.
const epollWriteTimeout = 5 * time.Second

// drainReadBudget caps how many bytes one connection may contribute
// during shutdown drain: enough to empty a full kernel receive buffer,
// finite so a still-streaming client cannot hold the drain open.
const drainReadBudget = 1 << 20

// epConn is one event-loop-owned binary stream. Fields are owned by the
// shard loop after registration; the handshake goroutine hands the
// connection off through epollLoop.add and never touches it again.
type epConn struct {
	fd      int32
	conn    net.Conn
	cw      *connWriter
	st      *vmState
	sess    *Session
	vm      string
	resumed bool
	resumeT float64

	scan     feed.FrameScanner
	carry    []byte // partial trailing frame from the previous window
	lastData int64  // sinceStart nanos of the last byte received
	procErr  error  // sticky session error; stream drains to EOF discarded
}

// epollLoop is one shard's event loop: a single goroutine multiplexing
// every epoll-capable connection on the shard over one epoll instance,
// one 256 KiB block-read buffer, and one decode batch.
type epollLoop struct {
	shard *ingestShard
	srv   *Server
	epfd  int
	wakeR int
	wakeW int

	mu      sync.Mutex
	pending []*epConn
	stopped bool

	// Loop-owned state below; never touched off the loop goroutine.
	conns   map[int32]*epConn
	readBuf []byte
	batch   []pcm.Sample
	events  []syscall.EpollEvent
}

// newEpollLoop starts the shard's event loop.
func newEpollLoop(sh *ingestShard) (*epollLoop, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("epoll_create1: %w", err)
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("pipe2: %w", err)
	}
	l := &epollLoop{
		shard:   sh,
		srv:     sh.srv,
		epfd:    epfd,
		wakeR:   p[0],
		wakeW:   p[1],
		conns:   make(map[int32]*epConn),
		readBuf: make([]byte, 256*1024+feed.MaxFrameSamples*24+8),
		batch:   make([]pcm.Sample, 0, batchCap(sh.srv.opts.BufferSamples)),
		events:  make([]syscall.EpollEvent, 128),
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(p[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p[0], &ev); err != nil {
		l.closeFDs()
		return nil, fmt.Errorf("epoll_ctl wake: %w", err)
	}
	go l.run()
	return l, nil
}

// batchCap sizes the shard decode batch: at least four full frames per
// ObserveBatch pass, or the configured buffer when it is larger.
func batchCap(bufferSamples int) int {
	if n := 4 * feed.MaxFrameSamples; bufferSamples < n {
		return n
	}
	return bufferSamples
}

func (l *epollLoop) closeFDs() {
	syscall.Close(l.epfd)
	syscall.Close(l.wakeR)
	syscall.Close(l.wakeW)
}

// wake nudges the loop out of epoll_wait.
func (l *epollLoop) wake() {
	var b [1]byte
	syscall.Write(l.wakeW, b[:]) // EAGAIN means a wake is already queued
}

// add hands a handshook connection to the loop. The caller must already
// hold a server wg slot for it; the loop releases the slot at finalize.
// An error means the loop has stopped and the caller keeps ownership.
func (l *epollLoop) add(ec *epConn) error {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return fmt.Errorf("shard %d: event loop stopped", l.shard.id)
	}
	l.pending = append(l.pending, ec)
	l.mu.Unlock()
	l.wake()
	return nil
}

// run is the shard loop: wait, register pending conns, service readiness,
// sweep idle, drain on shutdown.
func (l *epollLoop) run() {
	idle := l.srv.opts.IdleTimeout
	waitMs := -1
	var sweepEvery int64
	if idle > 0 {
		sweepEvery = int64(sweepPeriod(idle))
		waitMs = int(sweepPeriod(idle) / time.Millisecond)
		if waitMs < 1 {
			waitMs = 1
		}
	}
	var lastSweep int64
	for {
		n, err := syscall.EpollWait(l.epfd, l.events, waitMs)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			// Unrecoverable wait failure: stop taking conns, drain what we
			// have so no session is left without its done line.
			l.srv.logf("shard %d: epoll_wait: %v", l.shard.id, err)
			l.shutdown(l.srv.sinceStart())
			return
		}
		now := l.srv.sinceStart()
		// Drain the wake pipe BEFORE taking pending registrations. In the
		// other order an add() racing between the two swallows its own wake
		// byte into this drain while its entry misses the take — and the
		// next epoll_wait blocks forever on a registration nobody signals
		// again. Drain-first makes the race benign: an entry missed by this
		// take wrote its byte after this drain, so the byte survives to wake
		// the next iteration.
		for i := 0; i < n; i++ {
			if int(l.events[i].Fd) == l.wakeR {
				var buf [64]byte
				syscall.Read(l.wakeR, buf[:])
			}
		}
		l.takePending(now)
		l.shard.queueDepth.Store(int64(n))
		for i := 0; i < n; i++ {
			fd := l.events[i].Fd
			if int(fd) == l.wakeR {
				continue
			}
			if ec, ok := l.conns[fd]; ok {
				l.service(ec, now, false)
			}
			l.shard.queueDepth.Store(int64(n - i - 1))
		}
		if l.srv.draining.Load() {
			l.shutdown(now)
			return
		}
		if idle > 0 && now-lastSweep >= sweepEvery {
			lastSweep = now
			for fd, ec := range l.conns {
				if now-ec.lastData > int64(idle) {
					_ = fd
					l.finalize(ec, nil, true)
				}
			}
		}
	}
}

// takePending registers handed-off connections with the epoll set and
// immediately services the bytes their handshake reader had buffered
// (a short stream can be entirely buffered before handoff).
func (l *epollLoop) takePending(now int64) {
	l.mu.Lock()
	pend := l.pending
	l.pending = nil
	l.mu.Unlock()
	for _, ec := range pend {
		ev := syscall.EpollEvent{
			Events: syscall.EPOLLIN | epollRDHUP,
			Fd:     ec.fd,
		}
		if err := syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_ADD, int(ec.fd), &ev); err != nil {
			ec.lastData = now
			l.conns[ec.fd] = ec
			l.finalize(ec, fmt.Errorf("epoll_ctl: %v", err), false)
			continue
		}
		ec.lastData = now
		l.conns[ec.fd] = ec
		// The handshake reader may have buffered stream bytes past the
		// handshake line — whole frames, even a whole short stream. Decode
		// them now; afterwards the carry only ever holds a partial frame.
		if len(ec.carry) > 0 {
			cl := copy(l.readBuf, ec.carry)
			if l.decode(ec, l.readBuf[:cl], false) {
				continue
			}
		}
		l.service(ec, now, false)
	}
}

// epollRDHUP is EPOLLRDHUP (0x2000), not exported by the syscall package.
const epollRDHUP = 0x2000

// service runs one read-and-decode pass for ec. With drain set it loops
// until the kernel buffer is empty (or the drain budget is spent) instead
// of relying on another readiness event. Terminal conditions finalize the
// connection inline.
func (l *epollLoop) service(ec *epConn, now int64, drain bool) {
	budget := drainReadBudget
	for {
		cl := copy(l.readBuf, ec.carry)
		n, err := syscall.Read(int(ec.fd), l.readBuf[cl:])
		for err == syscall.EINTR {
			n, err = syscall.Read(int(ec.fd), l.readBuf[cl:])
		}
		switch {
		case n > 0:
			ec.lastData = now
			if done := l.decode(ec, l.readBuf[:cl+n], false); done {
				return
			}
			if !drain {
				return // level-triggered: more data re-arms the event
			}
			budget -= n
			if budget <= 0 {
				l.finalize(ec, nil, false)
				return
			}
		case n == 0 && err == nil:
			l.decode(ec, l.readBuf[:cl], true)
			return
		case err == syscall.EAGAIN:
			// The carry is partial-only between passes; nothing to decode.
			if drain {
				l.finalize(ec, nil, false)
			}
			return
		default:
			l.finalize(ec, fmt.Errorf("feed: frame %d: read: %v",
				ec.scan.Frames()+1, os.NewSyscallError("read", err)), false)
			return
		}
	}
}

// decode walks every complete frame in window, batching samples into the
// shard batch and observing them in bulk. eof marks the stream's end: a
// leftover partial frame is then a truncation error. Returns true when
// the connection was finalized.
func (l *epollLoop) decode(ec *epConn, window []byte, eof bool) bool {
	batch := l.batch[:0]
	pos := 0
	for {
		if cap(batch)-len(batch) < feed.MaxFrameSamples {
			l.flush(ec, batch)
			batch = l.batch[:0]
		}
		dst := batch[len(batch):len(batch)]
		consumed, n, q, err := ec.scan.Next(window[pos:], dst)
		if q > 0 {
			ec.st.quarantined.Add(uint64(q))
			l.srv.totalQuarantined.Add(uint64(q))
			l.shard.quarantined.Add(uint64(q))
			l.srv.logf("vm %s: quarantined %d non-finite samples in frame %d", ec.vm, q, ec.scan.Frames())
		}
		if err == io.EOF {
			l.flush(ec, batch)
			l.finalize(ec, nil, false)
			return true
		}
		if err != nil {
			l.flush(ec, batch)
			l.finalize(ec, err, false)
			return true
		}
		if consumed == 0 {
			break // partial frame: carry the tail
		}
		pos += consumed
		l.srv.totalBinFrames.Add(1)
		l.shard.frames.Add(1)
		if ec.resumed {
			k := 0
			for _, smp := range dst[:n] {
				if smp.T > ec.resumeT {
					dst[k] = smp
					k++
				}
			}
			n = k
		}
		batch = batch[:len(batch)+n]
	}
	l.flush(ec, batch)
	tail := window[pos:]
	if eof {
		l.finalize(ec, ec.scan.Truncated(tail), false)
		return true
	}
	ec.carry = append(ec.carry[:0], tail...)
	return false
}

// flush observes a batched run of samples under one session lock.
func (l *epollLoop) flush(ec *epConn, batch []pcm.Sample) {
	if len(batch) == 0 || ec.procErr != nil {
		return
	}
	n, err := ec.sess.ObserveBatch(batch)
	l.srv.totalSamples.Add(uint64(n))
	l.shard.samples.Add(uint64(n))
	if err != nil {
		ec.procErr = err
	}
}

// finalize ends one event-loop stream: fleet release, session close,
// error/done lines (under the loop write deadline), connection close, wg
// slot release. Mirrors the tail of the goroutine handler byte for byte.
func (l *epollLoop) finalize(ec *epConn, readErr error, evicted bool) {
	delete(l.conns, ec.fd)
	syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_DEL, int(ec.fd), nil)
	l.shard.conns.Add(-1)

	s := l.srv
	s.release(ec.vm, ec.st)
	stats, closeErr := ec.sess.Close()
	if evicted {
		s.idleEvictions.Add(1)
	}
	switch {
	case ec.procErr != nil:
		ec.cw.line("error: %v", ec.procErr)
	case readErr != nil:
		ec.cw.line("error: %v", readErr)
	case evicted:
		ec.cw.line("error: idle timeout: no samples for %v", s.opts.IdleTimeout)
	case closeErr != nil:
		ec.cw.line("error: %v", closeErr)
	}
	ec.cw.line("done vm=%s samples=%d monitored=%d dropped=%d alarms=%d",
		ec.vm, stats.Ingested(), stats.Monitored, stats.Dropped, stats.Alarms)
	s.logf("vm %s: stream closed (%d samples, %d dropped, %d alarms, alarmed=%v)",
		ec.vm, stats.Ingested(), stats.Dropped, stats.Alarms, stats.Alarmed)
	ec.conn.Close()
	s.wg.Done()
}

// tryEventLoopHandoff moves a handshook binary stream onto its shard's
// event loop. Returns true when ownership transferred: the caller must
// not touch conn again — the loop owns the read side, the response lines,
// the close, and the server wg slot. leftover holds stream bytes the
// handshake reader had already buffered.
func (s *Server) tryEventLoopHandoff(conn net.Conn, sh *ingestShard, cw *connWriter, st *vmState, sess *Session, vm string, resumed bool, resumeT float64, leftover []byte) bool {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	fd := int32(-1)
	if err := raw.Control(func(f uintptr) { fd = int32(f) }); err != nil || fd < 0 {
		return false
	}
	ep := sh.eventLoop()
	if ep == nil {
		return false
	}
	ec := &epConn{
		fd:      fd,
		conn:    conn,
		cw:      cw,
		st:      st,
		sess:    sess,
		vm:      vm,
		resumed: resumed,
		resumeT: resumeT,
	}
	if len(leftover) > 0 {
		ec.carry = append(ec.carry, leftover...)
	}
	// Response lines written from the loop must not be able to stall the
	// whole shard on one wedged client.
	cw.conn = conn
	cw.writeTimeout = epollWriteTimeout
	// The loop owns the close from here; take the conn out of the
	// goroutine-path tracking map so Shutdown neither deadline-interrupts
	// nor force-closes an fd the loop is still servicing.
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Add(1)
	if err := ep.add(ec); err != nil {
		// Loop already stopped (shutdown race): fall back to the goroutine
		// pump, which observes the draining flag normally.
		s.wg.Done()
		cw.conn, cw.writeTimeout = nil, 0
		s.mu.Lock()
		s.conns[conn] = nil
		s.mu.Unlock()
		return false
	}
	return true
}

// shutdown drains and finalizes every connection, then stops the loop.
// Pending registrations that raced the shutdown are finalized too (their
// wg slots are already held).
func (l *epollLoop) shutdown(now int64) {
	l.mu.Lock()
	l.stopped = true
	pend := l.pending
	l.pending = nil
	l.mu.Unlock()
	for _, ec := range pend {
		l.conns[ec.fd] = ec
	}
	for _, ec := range l.conns {
		l.service(ec, now, true)
	}
	// service finalizes on EAGAIN/EOF in drain mode, so the map is empty
	// unless a conn was finalized twice-defensively; sweep any stragglers.
	for _, ec := range l.conns {
		l.finalize(ec, nil, false)
	}
	l.closeFDs()
}
