package main

import (
	"strings"
	"testing"

	"github.com/memdos/sds/internal/golden"
)

// TestRunMatchesGolden pins the full fixed-seed CLI output byte for byte
// against the committed conformance fixture
// (testdata/golden/evaluate_small.txt, equivalent to:
//
//	evaluate -fig9 -fig10 -fig11 -fig12 -table1 -ablation \
//	  -runs 2 -apps kmeans,facenet -seed 1 -parallel 0
//
// ). Any numerical drift in the detection pipeline — FFT tables, ACF
// evaluation order, estimator reuse, profile caching — shows up here as a
// line diff. Intentional changes regenerate with -update (see make goldens).
func TestRunMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced evaluation grid; skipped in -short mode")
	}
	var got strings.Builder
	err := run(&got, options{
		fig9: true, fig10: true, fig11: true, fig12: true,
		table1: true, ablate: true,
		runs: 2, seed: 1, apps: "kmeans,facenet", parallel: 0,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	golden.AssertString(t, "testdata/golden/evaluate_small.txt", got.String())
}

// TestROCMatchesGolden pins the ROC tournament tables the same way
// (equivalent to: evaluate -roc -runs 2 -apps kmeans,facenet -seed 1).
// The tournament promises bit-identical output at any -parallel setting;
// the fixture is the cross-machine half of that promise, and any change to
// the threshold grids, the pooling accounting or the AUC integration
// surfaces here as a line diff.
func TestROCMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced tournament grid; skipped in -short mode")
	}
	var got strings.Builder
	err := run(&got, options{
		roc:  true,
		runs: 2, seed: 1, apps: "kmeans,facenet", parallel: 0,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	golden.AssertString(t, "testdata/golden/roc_small.txt", got.String())
}

// TestROCJSONMatchesGolden pins the -json encoding of the same tournament
// (field order, indentation, numeric formatting) for downstream plotting
// scripts.
func TestROCJSONMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced tournament grid; skipped in -short mode")
	}
	var got strings.Builder
	err := run(&got, options{
		roc: true, jsonOut: true,
		runs: 2, seed: 1, apps: "kmeans,facenet", parallel: 0,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	golden.AssertString(t, "testdata/golden/roc_small.json", got.String())
}

// TestEvasionMatchesGolden pins the evasion-margin grid (equivalent to:
// evaluate -evasion -runs 2 -apps kmeans,facenet -seed 1). The grid reuses
// the ROC tournament to pick each scheme's FPR-budgeted operating point and
// then sweeps every evasive strategy over the peak-intensity ladder, so a
// drift in either the tournament or the strategy envelopes shows up here as
// a margin or detection-count diff.
func TestEvasionMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced evasion grid; skipped in -short mode")
	}
	var got strings.Builder
	err := run(&got, options{
		evasion: true,
		runs:    2, seed: 1, apps: "kmeans,facenet", parallel: 0,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	golden.AssertString(t, "testdata/golden/evasion_small.txt", got.String())
}

// TestEvasionJSONMatchesGolden pins the -json encoding of the same grid.
// scripts/smoke_evasion.sh additionally asserts this encoding is
// byte-identical at -parallel 1 and -parallel 8.
func TestEvasionJSONMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced evasion grid; skipped in -short mode")
	}
	var got strings.Builder
	err := run(&got, options{
		evasion: true, jsonOut: true,
		runs: 2, seed: 1, apps: "kmeans,facenet", parallel: 0,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	golden.AssertString(t, "testdata/golden/evasion_small.json", got.String())
}
