package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/memdos/sds/internal/metrics"
)

// The parallel experiment engine. The evaluation grid — app × attack ×
// scheme × run for Figs. 9–12 and value × attack × run for Figs. 13–18 —
// is embarrassingly parallel: every detection run derives all of its
// randomness from (Seed, app, attack, scheme, run index), shares no state
// with any other run, and is scored independently. The engine fans the
// flattened grid out over a bounded worker pool and writes each result
// into its input-order slot, so the pooled distributions are bit-identical
// to the serial path at any worker count.

// workers returns the effective worker-pool size: Config.Parallel when
// positive, else one worker per available CPU.
func (c Config) workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// parallelMap runs fn(0..n-1) on a pool of the given size and returns the
// results in input order. The first error cancels the remaining work —
// queued indices are never started, in-flight ones finish — and is
// returned; when several workers fail concurrently, the lowest-index error
// wins so failures are as deterministic as the results. workers ≤ 1 runs
// serially, which is also the bit-exactness reference for the pool.
func parallelMap[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		errIdx   = n
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// runPool accumulates per-run detection outcomes into the distributions
// the paper's figures plot. It is the single pooling path shared by the
// accuracy cells (Figs. 9–11) and the sensitivity sweeps (Figs. 13–18), so
// the delay contract is enforced in exactly one place: a latched
// pre-existing alarm yields Detected == true with Delay == -1 (no rising
// edge occurred during the attack), and only real onsets — Delay ≥ 0 —
// may enter the delay distribution.
type runPool struct {
	recalls, specs, delays []float64
	detected, onsets, runs int
}

// add pools one run's outcome. Vacuous statistics are excluded per side:
// recall, detection and delay only exist for runs that actually contained
// an attack onset (TP+FN > 0) — a no-attack run's Recall is a vacuous 1
// (metrics.ratioOrOne) and pooling it would inflate the recall and
// detection-rate of any cell that mixes attack kinds with Kind None, as
// the ROC tournament's FPR cells do. Symmetrically, specificity is pooled
// only from runs with negative epochs. This mirrors the fig11 "n/a"
// accounting: a denominator no run contributes to yields no sample, not a
// fake perfect one.
func (p *runPool) add(out metrics.Outcome) {
	p.runs++
	if out.TP+out.FN > 0 {
		p.onsets++
		p.recalls = append(p.recalls, out.Recall*100)
		if out.Detected {
			p.detected++
		}
		if out.Delay >= 0 {
			p.delays = append(p.delays, out.Delay)
		}
	}
	if out.TN+out.FP > 0 {
		p.specs = append(p.specs, out.Specificity*100)
	}
}

// recall, specificity and delay summarize the pooled runs.
func (p *runPool) recall() metrics.Distribution      { return metrics.Summarize(p.recalls) }
func (p *runPool) specificity() metrics.Distribution { return metrics.Summarize(p.specs) }
func (p *runPool) delay() metrics.Distribution       { return metrics.Summarize(p.delays) }

// detectionRate is the fraction of pooled attack-onset runs that detected
// the attack. Runs without an onset are excluded from the denominator —
// there was nothing to detect.
func (p *runPool) detectionRate() float64 {
	if p.onsets == 0 {
		return 0
	}
	return float64(p.detected) / float64(p.onsets)
}
