package detect

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/workload"
)

func TestNewSDSPRequiresPeriodicProfile(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 40)
	if _, err := NewSDSP(prof, DefaultConfig()); err == nil {
		t.Fatal("non-periodic profile accepted")
	}
	bad := DefaultConfig()
	bad.HP = 0
	periodic := steadyProfile(t, workload.FaceNet, 40)
	if _, err := NewSDSP(periodic, bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSDSPWindowSize(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 41)
	d, err := NewSDSP(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.WP() != 2*prof.PeriodMA {
		t.Fatalf("W_P = %d, want 2·%d", d.WP(), prof.PeriodMA)
	}
}

func TestSDSPNoAlarmWithoutAttack(t *testing.T) {
	for _, app := range workload.PeriodicApps() {
		prof := steadyProfile(t, app, 42)
		d, err := NewSDSP(prof, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		feed(d, genSamples(t, app, 43, 300, attack.Schedule{}))
		if alarms := d.Alarms(); len(alarms) > 1 {
			t.Errorf("%s: %d false alarms without attack", app, len(alarms))
		}
	}
}

func TestSDSPDetectsPeriodStretch(t *testing.T) {
	for _, app := range workload.PeriodicApps() {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			prof := steadyProfile(t, app, 44)
			d, err := NewSDSP(prof, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			sched := attack.Schedule{Kind: kind, Start: 300, Ramp: 10}
			feed(d, genSamples(t, app, 45, 600, sched))
			at := firstAlarmTime(d)
			if at < 300 {
				t.Errorf("%s/%v: alarm at %v, want after 300", app, kind, at)
				continue
			}
			if delay := at - 300; delay > 90 {
				t.Errorf("%s/%v: detection delay %v s, want < 90", app, kind, delay)
			}
		}
	}
}

func TestSDSPEstimateHookTracksPeriod(t *testing.T) {
	// Fig. 8(b): before the attack the computed period hovers at the
	// normal period; after it, estimates deviate.
	prof := steadyProfile(t, workload.FaceNet, 46)
	var stats []PeriodStat
	d, err := NewSDSP(prof, DefaultConfig(), WithSDSPEstimateHook(func(p PeriodStat) {
		stats = append(stats, p)
	}))
	if err != nil {
		t.Fatal(err)
	}
	sched := attack.Schedule{Kind: attack.BusLock, Start: 300, Ramp: 10}
	feed(d, genSamples(t, workload.FaceNet, 47, 600, sched))
	if len(stats) < 20 {
		t.Fatalf("only %d estimates", len(stats))
	}
	var preGood, preTotal, postDeviant, postTotal int
	for _, s := range stats {
		if s.T < 300 {
			preTotal++
			if !s.Deviant {
				preGood++
			}
		} else if s.T > 330 {
			postTotal++
			if s.Deviant {
				postDeviant++
			}
		}
	}
	if preTotal == 0 || postTotal == 0 {
		t.Fatalf("estimates not spread across stages: %d/%d", preTotal, postTotal)
	}
	if frac := float64(preGood) / float64(preTotal); frac < 0.8 {
		t.Errorf("only %v of pre-attack estimates matched the normal period", frac)
	}
	if frac := float64(postDeviant) / float64(postTotal); frac < 0.8 {
		t.Errorf("only %v of post-attack estimates deviated", frac)
	}
}

func TestSDSPDeviationCountingAndClear(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 48)
	d, err := NewSDSP(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Attack window long enough to alarm, then recovery.
	sched := attack.Schedule{Kind: attack.BusLock, Start: 100, Ramp: 5, Stop: 250}
	feed(d, genSamples(t, workload.FaceNet, 49, 500, sched))
	if len(d.Alarms()) == 0 {
		t.Fatal("attack not detected")
	}
	if d.Alarmed() {
		t.Fatal("alarm still latched 250 s after the attack ended")
	}
}
