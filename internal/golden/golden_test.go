package golden

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeT captures Fatalf/Logf calls so Assert's failure paths are testable.
type fakeT struct {
	fatals []string
	logs   []string
}

func (f *fakeT) Helper() {}
func (f *fakeT) Logf(format string, args ...any) {
	f.logs = append(f.logs, fmt.Sprintf(format, args...))
}
func (f *fakeT) Fatalf(format string, args ...any) {
	f.fatals = append(f.fatals, fmt.Sprintf(format, args...))
}

func TestAssertMatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fix.txt")
	if err := os.WriteFile(path, []byte("a\nb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ft fakeT
	Assert(&ft, path, []byte("a\nb\n"))
	if len(ft.fatals) != 0 {
		t.Fatalf("matching output failed: %v", ft.fatals)
	}
}

func TestAssertMismatchPrintsDiff(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fix.txt")
	if err := os.WriteFile(path, []byte("alpha\nbeta\ngamma\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ft fakeT
	Assert(&ft, path, []byte("alpha\nBETA\ngamma\n"))
	if len(ft.fatals) != 1 {
		t.Fatalf("expected one failure, got %v", ft.fatals)
	}
	msg := ft.fatals[0]
	for _, want := range []string{"-beta", "+BETA", " alpha", "-update"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diff output missing %q:\n%s", want, msg)
		}
	}
}

func TestAssertMissingFixture(t *testing.T) {
	var ft fakeT
	Assert(&ft, filepath.Join(t.TempDir(), "absent.txt"), []byte("x"))
	if len(ft.fatals) != 1 || !strings.Contains(ft.fatals[0], "-update") {
		t.Fatalf("missing fixture should fail with a regeneration hint, got %v", ft.fatals)
	}
}

func TestAssertUpdateWritesFixture(t *testing.T) {
	old := *update
	*update = true
	defer func() { *update = old }()

	path := filepath.Join(t.TempDir(), "golden", "new.txt")
	var ft fakeT
	Assert(&ft, path, []byte("fresh\n"))
	if len(ft.fatals) != 0 {
		t.Fatalf("update mode failed: %v", ft.fatals)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "fresh\n" {
		t.Fatalf("fixture not written: %q, %v", got, err)
	}
}

func TestDiffContextElision(t *testing.T) {
	var a, b strings.Builder
	for i := 0; i < 40; i++ {
		line := fmt.Sprintf("line %d", i)
		a.WriteString(line + "\n")
		if i == 20 {
			line = "CHANGED"
		}
		b.WriteString(line + "\n")
	}
	d := Diff(a.String(), b.String())
	if !strings.Contains(d, "unchanged lines") {
		t.Errorf("long common runs not elided:\n%s", d)
	}
	if !strings.Contains(d, "-line 20") || !strings.Contains(d, "+CHANGED") {
		t.Errorf("changed line not shown:\n%s", d)
	}
	// The elided diff must stay far shorter than the full inputs.
	if strings.Count(d, "\n") > 20 {
		t.Errorf("diff did not elide context (%d lines)", strings.Count(d, "\n"))
	}
}

func TestDiffPureAddRemove(t *testing.T) {
	d := Diff("a\n", "a\nb\n")
	if !strings.Contains(d, "+b") {
		t.Errorf("added line missing:\n%s", d)
	}
	d = Diff("a\nb\n", "a\n")
	if !strings.Contains(d, "-b") {
		t.Errorf("removed line missing:\n%s", d)
	}
	if got := Diff("", ""); !strings.Contains(got, "0 lines") {
		t.Errorf("empty diff header wrong:\n%s", got)
	}
}
