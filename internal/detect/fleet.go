package detect

import (
	"fmt"
	"sort"
	"sync"

	"github.com/memdos/sds/internal/pcm"
)

// fleetShardCount is the number of registry shards (power of two so the
// FNV hash maps with a mask). 64 shards keep the per-shard collision rate
// negligible at the 100k-stream scale the ingest plane targets while
// costing ~6 KiB of empty maps.
const fleetShardCount = 64

// Fleet manages the detectors of every PROTECTED VM on one server — the
// deployment unit of the paper (§4: "SDS … will be deployed in the
// hypervisor on each server by the provider"). One PCM pass per sampling
// interval feeds each VM's sample to its own detector; the fleet exposes
// the aggregate alarm state the provider's control plane consumes.
//
// A Fleet is safe for concurrent use and built for many thousands of
// concurrently-observing VMs: the registry is shard-striped (FNV-1a hash
// of the VM name picks one of fleetShardCount shards, each with its own
// RWMutex), so no global lock sits on the Observe path — two VMs contend
// only in the unlucky case they hash to the same shard, and even then only
// for the map lookup, not the detector call. Every detector call is
// serialized through a per-VM mutex. Samples for a single VM must still
// arrive in time order (one feeding goroutine per VM, the natural shape of
// a per-connection server).
type Fleet struct {
	shards [fleetShardCount]fleetShard
}

// fleetShard is one stripe of the registry.
type fleetShard struct {
	mu        sync.RWMutex
	detectors map[string]*fleetEntry
}

// fleetEntry serializes all access to one VM's detector. The entry lock is
// held across inner Detector calls; detectors themselves need no locking.
type fleetEntry struct {
	mu  sync.Mutex
	det Detector
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	f := &Fleet{}
	for i := range f.shards {
		f.shards[i].detectors = make(map[string]*fleetEntry)
	}
	return f
}

// shard maps a VM name to its registry stripe via FNV-1a (inlined so the
// hot path allocates nothing — hash/fnv would force the string through an
// io.Writer).
func (f *Fleet) shard(vm string) *fleetShard {
	return &f.shards[stripeIndex(vm)]
}

// stripeIndex is the FNV-1a stripe mapping shared by shard and Stripe.
func stripeIndex(vm string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(vm); i++ {
		h ^= uint32(vm[i])
		h *= 16777619
	}
	return h & (fleetShardCount - 1)
}

// StripeCount returns the number of registry stripes (a power of two,
// fixed at construction).
func (f *Fleet) StripeCount() int { return fleetShardCount }

// Stripe returns the registry stripe index the named VM maps to. The
// ingest plane derives connection→shard affinity from it (ingest shard =
// Stripe(vm) mod shard count), so an ingest shard's VMs occupy a disjoint
// stripe subset: with N ingest shards, shard s touches only stripes ≡ s
// (mod N), and Protect/Unprotect traffic from different ingest shards
// never contends on a stripe lock.
func (f *Fleet) Stripe(vm string) int { return int(stripeIndex(vm)) }

// Protect registers a detector for the named VM. Re-registering a name
// replaces its detector (e.g. after re-profiling).
func (f *Fleet) Protect(vm string, det Detector) error {
	if vm == "" {
		return fmt.Errorf("detect: fleet needs a VM name")
	}
	if det == nil {
		return fmt.Errorf("detect: fleet needs a detector for %q", vm)
	}
	sh := f.shard(vm)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.detectors[vm]; ok {
		// Swap under the entry lock so an in-flight Observe completes
		// against the old detector before the replacement is visible.
		e.mu.Lock()
		e.det = det
		e.mu.Unlock()
		return nil
	}
	sh.detectors[vm] = &fleetEntry{det: det}
	return nil
}

// Unprotect removes the named VM (idempotent) — e.g. after migration off
// this server.
func (f *Fleet) Unprotect(vm string) {
	sh := f.shard(vm)
	sh.mu.Lock()
	delete(sh.detectors, vm)
	sh.mu.Unlock()
}

// Size returns the number of protected VMs.
func (f *Fleet) Size() int {
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		n += len(sh.detectors)
		sh.mu.RUnlock()
	}
	return n
}

// entry returns the named VM's entry, or nil.
func (f *Fleet) entry(vm string) *fleetEntry {
	sh := f.shard(vm)
	sh.mu.RLock()
	e := sh.detectors[vm]
	sh.mu.RUnlock()
	return e
}

// Observe feeds one VM's PCM sample to its detector. Unknown VMs are an
// error: the caller's wiring is broken, not the data.
func (f *Fleet) Observe(vm string, s pcm.Sample) error {
	e := f.entry(vm)
	if e == nil {
		return fmt.Errorf("detect: fleet does not protect %q", vm)
	}
	e.mu.Lock()
	e.det.Observe(s)
	e.mu.Unlock()
	return nil
}

// VMAlarmed reports the named VM's current alarm state.
func (f *Fleet) VMAlarmed(vm string) (bool, error) {
	e := f.entry(vm)
	if e == nil {
		return false, fmt.Errorf("detect: fleet does not protect %q", vm)
	}
	e.mu.Lock()
	alarmed := e.det.Alarmed()
	e.mu.Unlock()
	return alarmed, nil
}

// VMAlarms returns a copy of the named VM's alarms so far.
func (f *Fleet) VMAlarms(vm string) ([]Alarm, error) {
	e := f.entry(vm)
	if e == nil {
		return nil, fmt.Errorf("detect: fleet does not protect %q", vm)
	}
	e.mu.Lock()
	alarms := e.det.Alarms()
	e.mu.Unlock()
	return alarms, nil
}

// snapshot returns the current (vm, entry) pairs without holding any
// registry lock across detector calls. Shards are copied one at a time, so
// the snapshot is per-shard consistent (registrations racing the snapshot
// may or may not appear — same contract as the single-registry version).
func (f *Fleet) snapshot() map[string]*fleetEntry {
	out := make(map[string]*fleetEntry, 64)
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for vm, e := range sh.detectors {
			out[vm] = e
		}
		sh.mu.RUnlock()
	}
	return out
}

// Alarmed reports whether any protected VM is currently alarmed.
func (f *Fleet) Alarmed() bool {
	for _, e := range f.snapshot() {
		e.mu.Lock()
		alarmed := e.det.Alarmed()
		e.mu.Unlock()
		if alarmed {
			return true
		}
	}
	return false
}

// AlarmedVMs returns the names of currently-alarmed VMs, sorted.
func (f *Fleet) AlarmedVMs() []string {
	var out []string
	for vm, e := range f.snapshot() {
		e.mu.Lock()
		alarmed := e.det.Alarmed()
		e.mu.Unlock()
		if alarmed {
			out = append(out, vm)
		}
	}
	sort.Strings(out)
	return out
}

// VMAlarm pairs an alarm with the VM it concerns.
type VMAlarm struct {
	VM string
	Alarm
}

// Alarms returns every alarm raised across the fleet, ordered by time.
func (f *Fleet) Alarms() []VMAlarm {
	var out []VMAlarm
	for vm, e := range f.snapshot() {
		e.mu.Lock()
		alarms := e.det.Alarms()
		e.mu.Unlock()
		for _, a := range alarms {
			out = append(out, VMAlarm{VM: vm, Alarm: a})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].VM < out[j].VM
	})
	return out
}
