// Cloud-server scenario: the paper's evaluation testbed in miniature. A
// protected VM runs TeraSort while the provider's hypervisor runs all four
// detection schemes side by side on the same PCM stream; an LLC-cleansing
// attack starts halfway through. The example prints a timeline comparing
// when each scheme alarms — including the KStest baseline's false alarms
// before the attack even begins (the paper's §3.2 observation).
//
//	go run ./examples/cloudserver
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/memdos/sds"
)

func main() {
	cfg := sds.DefaultConfig()
	const (
		app      = sds.TeraSort
		seed     = 42
		duration = 600.0
		attackAt = 300.0
	)

	profile, err := sds.CollectProfile(app, seed, 900, cfg)
	if err != nil {
		log.Fatal(err)
	}

	combined, err := sds.NewSDS(profile, cfg)
	if err != nil {
		log.Fatal(err)
	}
	boundary, err := sds.NewSDSB(profile, cfg)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := sds.NewKSTest(sds.DefaultKSTestConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// All detectors observe the same protected VM. Each gets its own model
	// instance seeded identically so the streams are identical except for
	// KStest's throttling windows.
	type entry struct {
		name string
		det  sds.Detector
	}
	detectors := []entry{
		{"SDS", combined},
		{"SDS/B", boundary},
		{"KStest", baseline},
	}
	schedule := sds.AttackSchedule{Kind: sds.CleanseAttack, Start: attackAt, Ramp: 12}

	type event struct {
		t      float64
		scheme string
		what   string
	}
	var events []event
	for _, d := range detectors {
		vm, err := sds.NewApplication(app, seed+1)
		if err != nil {
			log.Fatal(err)
		}
		alarms, err := sds.Simulate(vm, d.det, cfg, sds.SimulateOptions{
			Seconds: duration,
			Attack:  schedule,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range alarms {
			what := "DETECTION"
			if a.T < attackAt {
				what = "false alarm"
			}
			events = append(events, event{t: a.T, scheme: d.name, what: what + ": " + a.Reason})
		}
	}

	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	fmt.Printf("protected VM: %s; %v attack at %.0f s\n", app, schedule.Kind, attackAt)
	fmt.Println("timeline:")
	for _, e := range events {
		fmt.Printf("  [%7.2fs] %-7s %s\n", e.t, e.scheme, e.what)
	}
}
