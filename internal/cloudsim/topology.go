package cloudsim

import (
	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/workload"
)

// role classifies a VM.
type role uint8

const (
	// roleVictim is a long-lived monitored VM attackers target.
	roleVictim role = iota
	// roleBenign is a long-lived or churn VM that only contributes load
	// (and, under MonitorAll, a detector stream).
	roleBenign
	// roleAttacker runs a memory DoS attack against its target victim.
	roleAttacker
)

// throttleFlag adapts the KStest throttling callbacks; the engine reads the
// detector's Collecting probe instead of the flag, matching Simulate.
type throttleFlag struct{ paused bool }

// PauseOthers implements detect.Throttler.
func (f *throttleFlag) PauseOthers() { f.paused = true }

// ResumeOthers implements detect.Throttler.
func (f *throttleFlag) ResumeOthers() { f.paused = false }

// collectProbe is the KStest reference-collection probe (see Simulate).
type collectProbe interface{ Collecting() bool }

// vm is one virtual machine. Telemetry state is only populated for
// monitored VMs; attacker state only for roleAttacker.
type vm struct {
	id   int
	name string
	role role
	app  string
	prof workload.Profile
	host int // current host id, -1 while unplaced

	// Telemetry and detection (monitored VMs).
	monitored bool
	model     *workload.Model // FidelityExact
	bm        *blockModel     // FidelityWindow
	det       detect.Detector
	wobs      detect.WindowObserver
	counter   detect.AlarmCounter
	probe     collectProbe // KStest only
	// ringA/ringM hold the last W/ΔW block means; full rings emit one
	// moving-average observation per block, preserving the exact pipeline's
	// window overlap.
	ringA, ringM []float64
	ringPos      int
	ringN        int
	alarmsSeen   int

	// Attacker campaign state.
	kind      attack.Kind
	target    int // victim VM id
	targetIdx int // index into engine.victims
	sched     attack.Schedule
	attacking bool
	// nextStart carries the exact (unquantized) virtual time the pending
	// placement uses as schedule start, so attack ramps are not perturbed
	// by event-tick rounding.
	nextStart    float64
	episodeStart float64

	paused     bool // provider throttle or live-migration downtime
	migrating  bool // paused specifically for live-migration downtime
	mitPending bool // a mitigation is scheduled or in flight for this VM

	// Accounting.
	placedAt   float64
	elapsed    float64
	progress   float64
	exposure   float64 // ∫ attack intensity dt while placed (victims)
	migrations int
}

// slowdownRate returns the instantaneous fraction of useful work lost to
// the given attack intensities (the repository's analytic convention, see
// experiment/migration.go).
func (v *vm) slowdownRate(bus, cleanse float64) float64 {
	s := v.prof.BusLockDrop*bus + 0.5*cleanse
	if s > 1 {
		s = 1
	}
	return s
}

// host is one simulated socket: the set of co-resident VMs plus the virtual
// tick it has been lazily advanced to.
type host struct {
	id   int
	tick int64
	vms  []*vm
	// throttling marks an in-flight throttle-verification stage, so
	// concurrent alarms on co-resident victims cannot stack provider
	// actions on one host.
	throttling bool
}

// add places v on h at virtual time now.
func (h *host) add(v *vm, now float64) {
	h.vms = append(h.vms, v)
	v.host = h.id
	v.placedAt = now
}

// remove takes v off h, preserving the order of the remaining VMs (order is
// part of the deterministic iteration contract).
func (h *host) remove(v *vm) {
	for i, o := range h.vms {
		if o == v {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			v.host = -1
			return
		}
	}
}

// attackActive reports whether any attacker on h has an active schedule at
// time t. Throttled (paused) attackers count: they are present and hostile,
// which is what migration classification needs.
func (h *host) attackActive(t float64) bool {
	for _, v := range h.vms {
		if v.role == roleAttacker && v.sched.Active(t) {
			return true
		}
	}
	return false
}

// envAt returns the instantaneous attack intensities on h at time t,
// combining co-resident attackers by taking the maximum per kind (a second
// bus locker does not lock the bus harder). Paused attackers contribute
// nothing.
func (h *host) envAt(t float64) (bus, cleanse float64) {
	for _, v := range h.vms {
		if v.role != roleAttacker || v.paused {
			continue
		}
		i := v.sched.Intensity(t)
		switch {
		case v.sched.Kind == attack.BusLock && i > bus:
			bus = i
		case v.sched.Kind == attack.Cleanse && i > cleanse:
			cleanse = i
		}
	}
	return bus, cleanse
}

// envOver returns the block-mean attack intensities on h over [t0, t1],
// combined like envAt.
func (h *host) envOver(t0, t1 float64) (bus, cleanse float64) {
	for _, v := range h.vms {
		if v.role != roleAttacker || v.paused {
			continue
		}
		i := meanIntensity(&v.sched, t0, t1)
		switch {
		case v.sched.Kind == attack.BusLock && i > bus:
			bus = i
		case v.sched.Kind == attack.Cleanse && i > cleanse:
			cleanse = i
		}
	}
	return bus, cleanse
}

// pickHost selects the placement target for a churn arrival or a migrated
// victim, excluding the given host id (-1 excludes none). Deterministic for
// a fixed placement-RNG state.
func (e *engine) pickHost(exclude int) *host {
	switch e.sc.Placement {
	case PlaceRandom:
		n := len(e.hosts)
		if exclude >= 0 && n > 1 {
			n--
		}
		k := 0
		if n > 1 {
			k = e.placeRng.IntN(n)
		}
		for _, h := range e.hosts {
			if h.id == exclude && len(e.hosts) > 1 {
				continue
			}
			if k == 0 {
				return h
			}
			k--
		}
		return e.hosts[0]
	case PlaceFirstFit:
		for _, h := range e.hosts {
			if h.id == exclude && len(e.hosts) > 1 {
				continue
			}
			if len(h.vms) < e.sc.VMsPerHost {
				return h
			}
		}
		fallthrough
	default: // PlaceLeastLoaded
		var best *host
		for _, h := range e.hosts {
			if h.id == exclude && len(e.hosts) > 1 {
				continue
			}
			if best == nil || len(h.vms) < len(best.vms) {
				best = h
			}
		}
		return best
	}
}
