//go:build !linux

package server

// EnsureFDLimit is a no-op where RLIMIT_NOFILE is not portable; the
// reported limit is optimistic and the dial path surfaces any real
// shortfall.
func EnsureFDLimit(need uint64) (uint64, error) { return need, nil }
