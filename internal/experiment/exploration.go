package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/signal"
	"github.com/memdos/sds/internal/timeseries"
	"github.com/memdos/sds/internal/workload"
)

// ExplorationResult is one row of the §3.4 exploration study: the paper
// tried spectral coherence, cross-correlation and Pearson correlation as
// attack signals before designing SDS, and found that none of them shows a
// usable decrease once an attack starts. Each correlation is computed
// between consecutive segments of the AccessNum series, averaged within the
// attack-free and under-attack halves of a run.
type ExplorationResult struct {
	App    string
	Attack attack.Kind

	// PearsonBefore/After are mean Pearson correlations of consecutive
	// segments before and during the attack.
	PearsonBefore, PearsonAfter float64
	// CrossCorrBefore/After are the mean peak cross-correlations.
	CrossCorrBefore, CrossCorrAfter float64
	// CoherenceBefore/After are the mean spectral coherences.
	CoherenceBefore, CoherenceAfter float64
}

// Separation quantifies how much an approach's statistic drops under
// attack (positive = drops, i.e. potentially usable as a detector signal).
func (r ExplorationResult) Separation(approach string) (float64, error) {
	switch approach {
	case "pearson":
		return r.PearsonBefore - r.PearsonAfter, nil
	case "crosscorr":
		return r.CrossCorrBefore - r.CrossCorrAfter, nil
	case "coherence":
		return r.CoherenceBefore - r.CoherenceAfter, nil
	default:
		return 0, fmt.Errorf("experiment: unknown exploration approach %q", approach)
	}
}

// ExplorationApproaches lists the §3.4 approaches in presentation order.
func ExplorationApproaches() []string { return []string{"pearson", "crosscorr", "coherence"} }

// Exploration reproduces the §3.4 study for one application and attack:
// seconds/2 attack-free, seconds/2 under attack, correlations computed over
// consecutive windows of segmentSeconds.
func (c Config) Exploration(app string, kind attack.Kind, seconds, segmentSeconds float64) (ExplorationResult, error) {
	if err := c.Validate(); err != nil {
		return ExplorationResult{}, err
	}
	if kind != attack.BusLock && kind != attack.Cleanse {
		return ExplorationResult{}, fmt.Errorf("experiment: exploration requires a concrete attack, got %v", kind)
	}
	if segmentSeconds <= 0 || seconds < 4*segmentSeconds {
		return ExplorationResult{}, fmt.Errorf("experiment: need ≥ 4 segments of %v s in %v s", segmentSeconds, seconds)
	}
	prof, err := workload.AppProfile(app)
	if err != nil {
		return ExplorationResult{}, err
	}
	model, err := workload.NewModel(prof, randx.DeriveString(c.Seed, app+"/exploration"))
	if err != nil {
		return ExplorationResult{}, err
	}
	sched := attack.Schedule{Kind: kind, Start: seconds / 2, Ramp: 5}

	tpcm := c.Detect.TPCM
	n := pcm.SampleCount(seconds, tpcm)
	series := make([]float64, n)
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		a, _ := model.Sample(tpcm, sched.Env(now, false))
		series[i] = a
	}

	segLen := pcm.SampleCount(segmentSeconds, tpcm)
	half := n / 2
	res := ExplorationResult{App: app, Attack: kind}
	var err2 error
	res.PearsonBefore, res.CrossCorrBefore, res.CoherenceBefore, err2 = segmentCorrelations(series[:half], segLen)
	if err2 != nil {
		return ExplorationResult{}, err2
	}
	// Skip the ramp in the attack half so the statistics describe the
	// steady attacked state.
	rampSamples := int(sched.Ramp / tpcm)
	res.PearsonAfter, res.CrossCorrAfter, res.CoherenceAfter, err2 = segmentCorrelations(series[half+rampSamples:], segLen)
	if err2 != nil {
		return ExplorationResult{}, err2
	}
	return res, nil
}

// segmentCorrelations splits the series into consecutive segments and
// returns the mean Pearson correlation, peak cross-correlation, and
// spectral coherence of adjacent segment pairs.
func segmentCorrelations(series []float64, segLen int) (pearson, crosscorr, coherence float64, err error) {
	segments := len(series) / segLen
	if segments < 2 {
		return 0, 0, 0, fmt.Errorf("experiment: only %d segments available", segments)
	}
	var pSum, xSum, cSum float64
	pairs := 0
	for i := 0; i+1 < segments; i++ {
		a := series[i*segLen : (i+1)*segLen]
		b := series[(i+1)*segLen : (i+2)*segLen]
		p, err := signal.Pearson(a, b)
		if err != nil {
			return 0, 0, 0, err
		}
		xc, err := signal.CrossCorrelation(a, b, segLen/4)
		if err != nil {
			return 0, 0, 0, err
		}
		peak := 0.0
		for _, v := range xc {
			if v > peak {
				peak = v
			}
		}
		coh, err := signal.SpectralCoherence(timeseries.Demean(a), timeseries.Demean(b), 64)
		if err != nil {
			return 0, 0, 0, err
		}
		pSum += p
		xSum += peak
		cSum += coh
		pairs++
	}
	return pSum / float64(pairs), xSum / float64(pairs), cSum / float64(pairs), nil
}

// ExplorationStudy runs the §3.4 exploration across the given applications
// (all when empty) and both attacks.
func (c Config) ExplorationStudy(apps []string) ([]ExplorationResult, error) {
	if len(apps) == 0 {
		apps = workload.AppNames()
	}
	var out []ExplorationResult
	for _, app := range apps {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			r, err := c.Exploration(app, kind, 120, 5)
			if err != nil {
				return nil, fmt.Errorf("exploration %s/%v: %w", app, kind, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
