package signal

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
)

// sawtooth builds a noisy repeating ramp with the given period in samples,
// resembling the periodic MA patterns of PCA/FaceNet in the paper.
func sawtooth(n, period int, noise float64, r *randx.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		phase := float64(i%period) / float64(period)
		out[i] = 100 + 40*phase
		if noise > 0 {
			out[i] += r.Normal(0, noise)
		}
	}
	return out
}

func TestACFBasics(t *testing.T) {
	r := randx.New(1, 2)
	x := make([]float64, 300)
	for i := range x {
		x[i] = r.Normal(0, 1)
	}
	acf := ACF(x, 50)
	if len(acf) != 51 {
		t.Fatalf("len = %d, want 51", len(acf))
	}
	if acf[0] != 1 {
		t.Fatalf("ACF[0] = %v, want 1", acf[0])
	}
	for lag, v := range acf {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("ACF[%d] = %v out of [-1,1]", lag, v)
		}
	}
}

func TestACFOfPeriodicSignalPeaksAtPeriod(t *testing.T) {
	const period = 20
	x := make([]float64, 400)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	acf := ACF(x, 40)
	// The lag-20 value should be a local max and near 1.
	if acf[period] < 0.9 {
		t.Fatalf("ACF at period = %v, want > 0.9", acf[period])
	}
	if acf[period] < acf[period-1] || acf[period] < acf[period+1] {
		t.Fatalf("ACF at period is not a local max: %v %v %v",
			acf[period-1], acf[period], acf[period+1])
	}
}

func TestACFConstantSeries(t *testing.T) {
	acf := ACF([]float64{5, 5, 5, 5, 5}, 3)
	if acf[0] != 1 {
		t.Fatalf("ACF[0] = %v", acf[0])
	}
	for lag := 1; lag < len(acf); lag++ {
		if acf[lag] != 0 {
			t.Fatalf("ACF[%d] = %v, want 0 for constant series", lag, acf[lag])
		}
	}
}

func TestACFEdgeCases(t *testing.T) {
	if got := ACF(nil, 5); got != nil {
		t.Fatalf("ACF(nil) = %v", got)
	}
	got := ACF([]float64{1, 2, 3}, 99)
	if len(got) != 3 {
		t.Fatalf("maxLag clamp: len = %d, want 3", len(got))
	}
	got = ACF([]float64{1, 2, 3}, -4)
	if len(got) != 1 {
		t.Fatalf("negative maxLag: len = %d, want 1", len(got))
	}
}

func TestEstimatePeriodRecoversPlantedPeriods(t *testing.T) {
	r := randx.New(3, 4)
	for _, period := range []int{10, 17, 25, 34} {
		x := sawtooth(12*period, period, 2, r)
		est, ok := EstimatePeriod(x, PeriodOptions{})
		if !ok {
			t.Fatalf("period %d: no period detected", period)
		}
		if relDiff(float64(est.Period), float64(period)) > 0.15 {
			t.Fatalf("period %d: estimated %d", period, est.Period)
		}
	}
}

func TestEstimatePeriodRejectsNoise(t *testing.T) {
	r := randx.New(5, 6)
	falsePositives := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 200)
		for i := range x {
			x[i] = r.Normal(100, 5)
		}
		if _, ok := EstimatePeriod(x, PeriodOptions{}); ok {
			falsePositives++
		}
	}
	// White noise occasionally produces a spurious hill; demand it is rare.
	if falsePositives > trials/5 {
		t.Fatalf("detected periods in %d/%d pure-noise series", falsePositives, trials)
	}
}

func TestEstimatePeriodShortInput(t *testing.T) {
	if _, ok := EstimatePeriod([]float64{1, 2, 3}, PeriodOptions{}); ok {
		t.Fatal("detected a period in a 3-sample series")
	}
	if _, ok := EstimatePeriod(nil, PeriodOptions{}); ok {
		t.Fatal("detected a period in an empty series")
	}
}

func TestEstimatePeriodConstantSeries(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 42
	}
	if _, ok := EstimatePeriod(x, PeriodOptions{}); ok {
		t.Fatal("detected a period in a constant series")
	}
}

func TestEstimatePeriodStretchDetectable(t *testing.T) {
	// The SDS/P attack signal: a stretched period must read >20% longer.
	r := randx.New(7, 8)
	normal := sawtooth(340, 17, 1.5, r)
	stretched := sawtooth(340, 23, 1.5, r) // ~35% longer
	en, okN := EstimatePeriod(normal, PeriodOptions{})
	es, okS := EstimatePeriod(stretched, PeriodOptions{})
	if !okN || !okS {
		t.Fatalf("detection failed: normal ok=%v attack ok=%v", okN, okS)
	}
	if relDiff(float64(es.Period), float64(en.Period)) <= 0.2 {
		t.Fatalf("stretch not detectable: normal %d vs stretched %d", en.Period, es.Period)
	}
}

func TestEstimatePeriodProperty(t *testing.T) {
	// Property: planted sawtooth periods in [8, 40] are recovered within 20%
	// across random phases and mild noise.
	r := randx.New(9, 10)
	f := func(pRaw, offRaw uint8) bool {
		period := int(pRaw)%33 + 8
		x := sawtooth(10*period+int(offRaw)%period, period, 1, r)
		est, ok := EstimatePeriod(x, PeriodOptions{})
		if !ok {
			return false
		}
		return relDiff(float64(est.Period), float64(period)) <= 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsPeriodic(t *testing.T) {
	r := randx.New(11, 12)
	periodic := sawtooth(400, 20, 1, r)
	if p, ok := IsPeriodic(periodic, 0.2, PeriodOptions{}); !ok || relDiff(float64(p), 20) > 0.2 {
		t.Fatalf("IsPeriodic(periodic) = (%d, %v)", p, ok)
	}
	noise := make([]float64, 400)
	for i := range noise {
		noise[i] = r.Normal(0, 1)
	}
	if p, ok := IsPeriodic(noise, 0.2, PeriodOptions{}); ok {
		t.Fatalf("IsPeriodic(noise) = (%d, true)", p)
	}
	if _, ok := IsPeriodic(noise[:4], 0.2, PeriodOptions{}); ok {
		t.Fatal("IsPeriodic accepted a 4-sample series")
	}
}
