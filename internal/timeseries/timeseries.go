// Package timeseries implements the data-preprocessing primitives of the SDS
// detection pipeline (paper §4.1): sliding-window moving averages (Eq. 1),
// exponentially weighted moving averages (Eq. 2), and the summary statistics
// used to build detection profiles.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadWindow reports invalid moving-average window geometry.
var ErrBadWindow = errors.New("timeseries: window and step sizes must be positive and step must not exceed window")

// MovingAverager computes the sliding-window moving average of a stream
// (paper Eq. 1): the average of the last W raw samples, emitted once the
// first window fills and then every ΔW new samples.
type MovingAverager struct {
	w, dw int
	buf   []float64 // ring buffer of the last w samples
	next  int       // ring index of the next slot to overwrite
	count int       // total samples observed
	sum   float64
	since int // samples since last emission
}

// NewMovingAverager returns a streaming moving averager with window size w
// and step size dw.
func NewMovingAverager(w, dw int) (*MovingAverager, error) {
	if w <= 0 || dw <= 0 || dw > w {
		return nil, fmt.Errorf("%w (W=%d, ΔW=%d)", ErrBadWindow, w, dw)
	}
	return &MovingAverager{w: w, dw: dw, buf: make([]float64, w)}, nil
}

// Window returns the configured window size W.
func (m *MovingAverager) Window() int { return m.w }

// Step returns the configured step size ΔW.
func (m *MovingAverager) Step() int { return m.dw }

// Push observes one raw sample. It returns the new moving-average value and
// true when a window boundary is reached, otherwise (0, false).
//
// The warm path (window full) comes first and touches neither count nor the
// fill logic: on the ingest hot path virtually every call lands there, and
// the detector pipeline runs several averagers per raw sample. The eviction
// subtract and the insertion add stay separate statements — fusing them into
// sum += x - old changes the rounding and would break the bit-exact golden
// transcripts.
func (m *MovingAverager) Push(x float64) (float64, bool) {
	if m.count >= m.w {
		m.sum -= m.buf[m.next]
		m.buf[m.next] = x
		// Conditional wrap: integer division is measurably slower than a
		// predictable branch on this per-sample path.
		if m.next++; m.next == m.w {
			m.next = 0
		}
		m.sum += x
		if m.since++; m.since == m.dw {
			m.since = 0
			return m.sum / float64(m.w), true
		}
		return 0, false
	}
	m.buf[m.next] = x
	if m.next++; m.next == m.w {
		m.next = 0
	}
	m.sum += x
	m.count++
	if m.count < m.w {
		return 0, false
	}
	m.since = 0
	return m.sum / float64(m.w), true
}

// Reset discards all buffered samples.
func (m *MovingAverager) Reset() {
	m.count, m.next, m.since, m.sum = 0, 0, 0, 0
}

// EWMA computes the exponentially weighted moving average (paper Eq. 2):
// S_0 = M_0 and S_n = (1-α)·S_{n-1} + α·M_n. The zero value is not usable;
// construct with NewEWMA.
type EWMA struct {
	alpha   float64
	val     float64
	started bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. alpha=1
// reproduces the raw input (no smoothing), matching the paper's observation
// that α=1 degenerates EWMA into MA when fed MA values.
func NewEWMA(alpha float64) (*EWMA, error) {
	if !(alpha > 0 && alpha <= 1) { // written to also reject NaN
		return nil, fmt.Errorf("timeseries: EWMA smoothing factor must be in (0, 1], got %v", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Alpha returns the smoothing factor.
func (e *EWMA) Alpha() float64 { return e.alpha }

// Push observes one value and returns the smoothed result.
func (e *EWMA) Push(x float64) float64 {
	if !e.started {
		e.started = true
		e.val = x
		return x
	}
	e.val = (1-e.alpha)*e.val + e.alpha*x
	return e.val
}

// Value returns the current smoothed value (0 before the first Push).
func (e *EWMA) Value() float64 { return e.val }

// Reset discards the smoothing state.
func (e *EWMA) Reset() { e.started, e.val = false, 0 }

// MovingAverage computes the batch moving average of data with window w and
// step dw, returning one value per emitted window.
func MovingAverage(data []float64, w, dw int) ([]float64, error) {
	m, err := NewMovingAverager(w, dw)
	if err != nil {
		return nil, err
	}
	// One emission when the window fills, then one per dw samples.
	var out []float64
	if n := len(data); n >= w {
		out = make([]float64, 0, 1+(n-w)/dw)
	}
	for _, x := range data {
		if v, ok := m.Push(x); ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// EWMASeries applies EWMA smoothing to the whole series.
func EWMASeries(data []float64, alpha float64) ([]float64, error) {
	e, err := NewEWMA(alpha)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(data))
	for i, x := range data {
		out[i] = e.Push(x)
	}
	return out, nil
}

// Mean returns the arithmetic mean of data (0 for empty input).
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	var sum float64
	for _, x := range data {
		sum += x
	}
	return sum / float64(len(data))
}

// StdDev returns the population standard deviation of data (0 for fewer than
// two points). The profile bounds in the paper use the population form.
func StdDev(data []float64) float64 {
	if len(data) < 2 {
		return 0
	}
	mean := Mean(data)
	var ss float64
	for _, x := range data {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(data)))
}

// MinMax returns the minimum and maximum of data. It panics on empty input
// since there is no sensible zero answer.
func MinMax(data []float64) (lo, hi float64) {
	if len(data) == 0 {
		panic("timeseries: MinMax of empty series")
	}
	lo, hi = data[0], data[0]
	for _, x := range data[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of data using linear
// interpolation between closest ranks. It panics on empty input.
func Percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		panic("timeseries: Percentile of empty series")
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the descriptive statistics reported throughout the
// evaluation: the paper reports medians with 10th/90th percentile error bars.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P10, Median, P90 float64
}

// Summarize computes a Summary of data. Empty input yields a zero Summary.
func Summarize(data []float64) Summary {
	if len(data) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return Summary{
		N:      len(data),
		Mean:   Mean(data),
		Std:    StdDev(data),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P10:    percentileSorted(sorted, 10),
		Median: percentileSorted(sorted, 50),
		P90:    percentileSorted(sorted, 90),
	}
}

// Demean returns data shifted to zero mean.
func Demean(data []float64) []float64 {
	mean := Mean(data)
	out := make([]float64, len(data))
	for i, x := range data {
		out[i] = x - mean
	}
	return out
}
