package experiment

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
)

// The strategy-vs-scheme regression suite: each test pins an evasion at
// Table 1 parameters that a pre-zoo, SDS-only deployment cannot see, and
// the zoo detector that closes the gap. Substituting the catching scheme
// with SDS/B (the single-scheme baseline) makes each test fail — that
// asymmetry is the point.

// evasionRate runs the strategy against the scheme over facenet with the
// given config and returns detected runs out of total.
func evasionRate(t *testing.T, cfg Config, scheme Scheme, strategy string, peak float64) (detected, total int) {
	t.Helper()
	for run := 0; run < cfg.Runs; run++ {
		out, err := cfg.evasionRun("facenet", attack.BusLock, scheme, run, strategy, peak)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if out.Detected {
			detected++
		}
	}
	return detected, total
}

func regressionConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 4
	cfg.Seed = 1
	return cfg
}

// TestDutyCycleEvadesSDSBCaughtByTimeFrag: a full-intensity duty cycle
// tuned below the H_C=30 streak never trips SDS/B — every pause resets the
// consecutive-violation counter — while TimeFrag's windowed suspicion
// density accumulates the same bursts and catches every run. The steady
// attacker control shows SDS/B is not simply blind.
func TestDutyCycleEvadesSDSBCaughtByTimeFrag(t *testing.T) {
	cfg := regressionConfig()
	if det, n := evasionRate(t, cfg, SchemeSDSB, attack.StrategySteady, 1); det != n {
		t.Fatalf("control: SDS/B caught steady attack in %d/%d runs, want all", det, n)
	}
	if det, n := evasionRate(t, cfg, SchemeSDSB, attack.StrategyDutyCycle, 1); det != 0 {
		t.Errorf("SDS/B caught the duty-cycled attack in %d/%d runs; the streak reset evasion regressed", det, n)
	}
	if det, n := evasionRate(t, cfg, SchemeTimeFrag, attack.StrategyDutyCycle, 1); det < n-1 {
		t.Errorf("TimeFrag caught the duty-cycled attack in only %d/%d runs", det, n)
	}
}

// TestPeriodMimicEvadesSDSP: a plain duty cycle plants its own spectral
// line, so SDS/P still catches it as a period anomaly; phase-locking the
// bursts to the victim's estimated period removes that line and collapses
// SDS/P's detection rate, while SDS/B remains as blind to the mimic as to
// any below-streak burst train.
func TestPeriodMimicEvadesSDSP(t *testing.T) {
	cfg := regressionConfig()
	if det, n := evasionRate(t, cfg, SchemeSDSP, attack.StrategyDutyCycle, 1); det < n-1 {
		t.Fatalf("control: SDS/P caught the un-locked duty cycle in only %d/%d runs", det, n)
	}
	if det, n := evasionRate(t, cfg, SchemeSDSP, attack.StrategyPeriodMimic, 1); det > 1 {
		t.Errorf("SDS/P caught the period-locked mimic in %d/%d runs; phase-locking evasion regressed", det, n)
	}
	if det, n := evasionRate(t, cfg, SchemeSDSB, attack.StrategyPeriodMimic, 1); det > 1 {
		t.Errorf("SDS/B caught the period-locked mimic in %d/%d runs; its bursts exceed the streak budget", det, n)
	}
}

// TestSlowRampSubBandTripsCUSUM: a slow ramp to a sub-band plateau (the
// mean shift stays inside μ±kσ_E, the Chebyshev per-window bound's
// operating regime) never produces an SDS/B violation streak, but CUSUM
// with the classical half-shift slack accumulates the persistent drift and
// trips on every run.
func TestSlowRampSubBandTripsCUSUM(t *testing.T) {
	cfg := regressionConfig()
	cfg.Detect.CusumK = 0.5
	const subBandPeak = 0.125
	if det, n := evasionRate(t, cfg, SchemeSDSB, attack.StrategySlowRamp, subBandPeak); det != 0 {
		t.Errorf("SDS/B caught the sub-band slow ramp in %d/%d runs; peak %v is no longer sub-band",
			det, n, subBandPeak)
	}
	if det, n := evasionRate(t, cfg, SchemeCUSUM, attack.StrategySlowRamp, subBandPeak); det < n-1 {
		t.Errorf("CUSUM caught the sub-band slow ramp in only %d/%d runs", det, n)
	}
}
