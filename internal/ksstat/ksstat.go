// Package ksstat implements the two-sample Kolmogorov–Smirnov test, the
// statistical engine of the KStest baseline detector (Zhang et al.,
// AsiaCCS '17) that the paper compares SDS against. The baseline declares an
// attack when real-time "monitored" counter samples stop following the same
// distribution as throttled "reference" samples.
package ksstat

import (
	"fmt"
	"math"
	"sort"
)

// Statistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) − F_b(x)|, the maximum distance between the empirical
// CDFs of the two samples. Inputs are not modified.
func Statistic(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("ksstat: both samples must be nonempty (got %d and %d)", len(a), len(b))
	}
	return StatisticSorted(sortedCopy(a), sortedCopy(b))
}

// StatisticSorted is Statistic for samples that are already sorted in
// ascending order. It allocates nothing, so callers comparing windows
// repeatedly (the KStest detector) can sort into reusable scratch and keep
// their steady state allocation-free.
func StatisticSorted(sa, sb []float64) (float64, error) {
	if len(sa) == 0 || len(sb) == 0 {
		return 0, fmt.Errorf("ksstat: both samples must be nonempty (got %d and %d)", len(sa), len(sb))
	}
	var (
		d    float64
		i, j int
	)
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		// The empirical CDFs only change at data points, so evaluate the
		// distance once per distinct value: advance both cursors through
		// every duplicate of the smaller current value first. Evaluating
		// mid-run through a tie shared by both samples would compare CDFs
		// at a point where neither is fully stepped, inflating D (two
		// all-equal windows must have D = 0, not a spurious n/m mismatch).
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// PValue returns the asymptotic two-sided p-value for a two-sample KS
// statistic d with sample sizes n and m, using the Kolmogorov distribution
// with the small-sample correction of Stephens (as in Numerical Recipes).
func PValue(d float64, n, m int) float64 {
	if n <= 0 || m <= 0 {
		return 1
	}
	ne := float64(n) * float64(m) / float64(n+m)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return kolmogorovQ(lambda)
}

// kolmogorovQ evaluates Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const (
		maxTerms = 100
		eps      = 1e-10
	)
	var (
		sum  float64
		sign = 1.0
	)
	for j := 1; j <= maxTerms; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		if math.Abs(term) < eps*math.Abs(sum) || math.Abs(term) < 1e-300 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	return math.Max(0, math.Min(1, q))
}

// Reject reports whether the two samples have significantly different
// distributions at the given significance level alpha (e.g. 0.05). This is
// the per-round decision of the KStest detector: a result of true
// corresponds to the value "1" in the paper's Figure 1.
func Reject(a, b []float64, alpha float64) (bool, error) {
	d, err := Statistic(a, b)
	if err != nil {
		return false, err
	}
	return PValue(d, len(a), len(b)) < alpha, nil
}

// CriticalValue returns the approximate critical D above which the
// two-sample test rejects at level alpha, c(α)·sqrt((n+m)/(n·m)) with
// c(α) = sqrt(−ln(α/2)/2).
func CriticalValue(alpha float64, n, m int) float64 {
	if n <= 0 || m <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}

func sortedCopy(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	sort.Float64s(out)
	return out
}
