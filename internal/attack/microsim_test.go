package attack

import (
	"testing"

	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/membus"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/vmm"
	"github.com/memdos/sds/internal/workload"
)

// buildMachine assembles a small machine with a victim loop workload and
// returns (machine, victim VM).
func buildMachine(t *testing.T, victimSetBytes int, extra ...vmm.Workload) (*vmm.Machine, *vmm.VM) {
	t.Helper()
	cache, err := cachesim.New(cachesim.Config{SizeBytes: 512 * 1024, LineSize: 64, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	bus, err := membus.New(2e6, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vmm.NewMachine(cache, bus)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := workload.NewLoop("victim-app", 0, victimSetBytes, 5e5, randx.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	vvm, err := m.AddVM("victim", victim)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range extra {
		if _, err := m.AddVM(w.Name(), w); err != nil {
			t.Fatalf("add VM %d: %v", i, err)
		}
	}
	return m, vvm
}

func TestNewAttackerValidation(t *testing.T) {
	rng := randx.New(1, 1)
	if _, err := NewBusLocker(0, 0, rng); err == nil {
		t.Error("zero lock fraction accepted")
	}
	if _, err := NewBusLocker(0, 0.5, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewCleanser(0, 0, rng); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewCleanser(0, 1000, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

// TestBusLockerReducesVictimAccessRate reproduces Observation 1 (bus-lock
// half) from first principles: once the attacker starts, the victim's
// per-interval LLC access count collapses.
func TestBusLockerReducesVictimAccessRate(t *testing.T) {
	locker, err := NewBusLocker(5 /* start */, 0.9, randx.New(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	m, vvm := buildMachine(t, 64*1024, locker)

	readAccesses := func() uint64 {
		st, err := m.CacheStats(vvm.ID())
		if err != nil {
			t.Fatal(err)
		}
		return st.Accesses
	}
	if err := m.Run(5, 0.01); err != nil {
		t.Fatal(err)
	}
	before := readAccesses()
	if err := m.Run(10, 0.01); err != nil {
		t.Fatal(err)
	}
	after := readAccesses() - before

	// Per-second rates before vs during the attack.
	rateBefore := float64(before) / 5
	rateDuring := float64(after) / 5
	if rateDuring > 0.4*rateBefore {
		t.Fatalf("victim access rate %0.f → %0.f under bus lock; want ≥60%% drop", rateBefore, rateDuring)
	}
}

// TestCleanserInflatesVictimMissRate reproduces Observation 1 (cleansing
// half): after probing, the attacker's sweeps evict the victim's working
// set and its miss rate jumps.
func TestCleanserInflatesVictimMissRate(t *testing.T) {
	cleanser, err := NewCleanser(5 /* start */, 1e6, randx.New(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	m, vvm := buildMachine(t, 64*1024, cleanser)

	readStats := func() cachesim.Stats {
		st, err := m.CacheStats(vvm.ID())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if err := m.Run(5, 0.01); err != nil {
		t.Fatal(err)
	}
	before := readStats()
	if err := m.Run(15, 0.01); err != nil {
		t.Fatal(err)
	}
	during := readStats()

	missBefore := float64(before.Misses) / float64(before.Accesses)
	missDuring := float64(during.Misses-before.Misses) / float64(during.Accesses-before.Accesses)
	if missDuring < 4*missBefore+0.02 {
		t.Fatalf("victim miss rate %v → %v under cleansing; want a clear jump", missBefore, missDuring)
	}
	if cleanser.Probing() {
		t.Fatal("cleanser never finished probing")
	}
	if len(cleanser.HotSets()) == 0 {
		t.Fatal("cleanser found no sets to cleanse")
	}
}

// TestAttackStretchesPhasedLoopPeriod reproduces Observation 2 from first
// principles: a work-based periodic loop takes longer per cycle when
// starved of bus slots.
func TestAttackStretchesPhasedLoopPeriod(t *testing.T) {
	mkVictim := func() *workload.PhasedLoop {
		p, err := workload.NewPhasedLoop("periodic-app", 0, 5e5, []workload.LoopPhase{
			{Lines: 256, Work: 40000},
			{Lines: 512, Work: 40000},
		}, randx.New(7, 8))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	cyclesIn := func(extra vmm.Workload, seconds float64) int {
		cache, _ := cachesim.New(cachesim.Config{SizeBytes: 512 * 1024, LineSize: 64, Ways: 8})
		bus, _ := membus.New(2e6, 0.95)
		m, _ := vmm.NewMachine(cache, bus)
		victim := mkVictim()
		if _, err := m.AddVM("victim", victim); err != nil {
			t.Fatal(err)
		}
		if extra != nil {
			if _, err := m.AddVM(extra.Name(), extra); err != nil {
				t.Fatal(err)
			}
		}
		phaseChanges := 0
		last := victim.Phase()
		for now := 0.0; now < seconds; now += 0.01 {
			if err := m.Tick(0.01); err != nil {
				t.Fatal(err)
			}
			if victim.Phase() != last {
				phaseChanges++
				last = victim.Phase()
			}
		}
		return phaseChanges / 2 // two phase changes per full cycle
	}

	baseline := cyclesIn(nil, 10)
	locker, err := NewBusLocker(0, 0.9, randx.New(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	attacked := cyclesIn(locker, 10)
	if baseline < 3 {
		t.Fatalf("baseline completed only %d cycles; test needs more", baseline)
	}
	if float64(attacked) > 0.7*float64(baseline) {
		t.Fatalf("cycles: baseline %d vs attacked %d; want a clear slowdown (longer period)", baseline, attacked)
	}
}
