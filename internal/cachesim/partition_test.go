package cachesim

import (
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
)

func TestPartitionValidation(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64 * 64, LineSize: 64, Ways: 8})
	if err := c.Partition(-1, 0, 4); err == nil {
		t.Error("negative owner accepted")
	}
	if err := c.Partition(0, 4, 8); err == nil {
		t.Error("range beyond associativity accepted")
	}
	if err := c.Partition(0, -1, 2); err == nil {
		t.Error("negative first way accepted")
	}
	if err := c.Partition(0, 0, 4); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if err := c.Partition(0, 0, 0); err != nil {
		t.Fatalf("clearing a partition failed: %v", err)
	}
}

func TestPartitionConfinesFills(t *testing.T) {
	// Owner 1 confined to ways [4,8); its misses must never displace lines
	// in ways [0,4).
	c := mustNew(t, Config{SizeBytes: 64 * 16, LineSize: 64, Ways: 8}) // 2 sets
	const victim, attacker Owner = 0, 1
	if err := c.Partition(attacker, 4, 4); err != nil {
		t.Fatal(err)
	}
	set := 0
	// Victim plants 4 lines (fills ways 0–3, being first).
	for tag := uint64(0); tag < 4; tag++ {
		c.Access(victim, c.AddrForSet(set, tag))
	}
	// Attacker sweeps 32 fresh tags through the set.
	for tag := uint64(100); tag < 132; tag++ {
		c.Access(attacker, c.AddrForSet(set, tag))
	}
	if got := c.Occupancy(set, victim); got != 4 {
		t.Fatalf("victim occupancy = %d after partitioned sweep, want 4 (untouched)", got)
	}
	if got := c.Stats(attacker).EvictedOthers; got != 0 {
		t.Fatalf("partitioned attacker evicted %d victim lines", got)
	}
	// Victim re-access: all hits.
	before := c.Stats(victim).Misses
	for tag := uint64(0); tag < 4; tag++ {
		c.Access(victim, c.AddrForSet(set, tag))
	}
	if got := c.Stats(victim).Misses - before; got != 0 {
		t.Fatalf("victim missed %d times after partitioned cleansing, want 0", got)
	}
}

func TestPartitionHitsAllowedAnywhere(t *testing.T) {
	// CAT masks restrict allocation, not lookup: a line an owner installed
	// before partitioning (or that another owner installed) still hits.
	c := mustNew(t, Config{SizeBytes: 64 * 16, LineSize: 64, Ways: 8})
	const o Owner = 0
	addr := c.AddrForSet(0, 7)
	c.Access(o, addr) // fills way 0
	if err := c.Partition(o, 4, 4); err != nil {
		t.Fatal(err)
	}
	if !c.Access(o, addr) {
		t.Fatal("post-partition lookup missed a resident line")
	}
}

func TestPartitionSelfThrashing(t *testing.T) {
	// A partition smaller than the working set makes the owner thrash its
	// own ways — the LLC-waste cost of partitioning the paper mentions.
	c := mustNew(t, Config{SizeBytes: 64 * 16, LineSize: 64, Ways: 8})
	const o Owner = 0
	if err := c.Partition(o, 0, 2); err != nil {
		t.Fatal(err)
	}
	set := 0
	// Working set of 4 tags in a 2-way partition, accessed cyclically:
	// always misses after warm-up.
	for round := 0; round < 3; round++ {
		for tag := uint64(0); tag < 4; tag++ {
			c.Access(o, c.AddrForSet(set, tag))
		}
	}
	st := c.Stats(o)
	if st.Hits != 0 {
		t.Fatalf("cyclic sweep over an undersized partition hit %d times, want 0 (LRU thrash)", st.Hits)
	}
}

func TestPartitionContainmentProperty(t *testing.T) {
	// Property: under arbitrary interleaved access streams, a partitioned
	// owner never displaces lines outside its way range — other owners'
	// occupancy per set never drops because of it.
	c := mustNew(t, Config{SizeBytes: 64 * 64, LineSize: 64, Ways: 8})
	const guarded, confined Owner = 0, 1
	if err := c.Partition(confined, 4, 4); err != nil {
		t.Fatal(err)
	}
	rng := randx.New(60, 61)
	// The guarded owner plants up to 4 lines per set (fits ways 0–3 when
	// filled first), then the confined owner sweeps aggressively.
	for set := 0; set < c.NumSets(); set++ {
		for tag := uint64(0); tag < 4; tag++ {
			c.Access(guarded, c.AddrForSet(set, tag))
		}
	}
	before := make([]int, c.NumSets())
	for set := range before {
		before[set] = c.Occupancy(set, guarded)
	}
	f := func(n uint16) bool {
		for i := 0; i < int(n)%500+1; i++ {
			set := rng.IntN(c.NumSets())
			c.Access(confined, c.AddrForSet(set, 1000+uint64(rng.IntN(64))))
		}
		for set := range before {
			if c.Occupancy(set, guarded) < before[set] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	if c.Stats(confined).EvictedOthers != 0 {
		t.Fatalf("confined owner evicted %d foreign lines", c.Stats(confined).EvictedOthers)
	}
}
