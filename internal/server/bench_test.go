package server

import (
	"testing"

	"github.com/memdos/sds/internal/pcm"
)

// BenchmarkSessionObserveBatch measures the monitored-stage ingest cost of
// the batched path the binary frame plane drives: one ObserveBatch call per
// 256-sample frame. This is the server-side hot path the bench gate watches —
// ns/op is per frame, and allocs/op must stay at zero (the frame pipeline's
// steady state allocates nothing per frame).
func BenchmarkSessionObserveBatch(b *testing.B) {
	const (
		tpcm    = 0.01
		profile = 20.0
		frame   = 256
	)
	sess, err := NewSession(StreamSpec{
		VM: "bench", App: "synth", Scheme: "sds", ProfileSeconds: profile,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Drive Stage 1 to completion so the timed loop measures only the
	// monitored stage.
	i := 0
	for ; i < int(profile/tpcm)+1; i++ {
		if err := sess.Observe(synthSample(i, tpcm, 1000)); err != nil {
			b.Fatal(err)
		}
	}
	if sess.Profiling() {
		b.Fatal("session still profiling after the Stage-1 window")
	}
	batch := make([]pcm.Sample, frame)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for j := range batch {
			batch[j] = synthSample(i, tpcm, 1000)
			i++
		}
		if _, err := sess.ObserveBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
