package cloudsim

import "container/heap"

// eventKind identifies what an event does. The declaration order is the
// tie-break order between different events scheduled for the same tick:
// capacity is released (departures, campaign hops) before verdicts and new
// mitigations are applied, and those before capacity is consumed (arrivals,
// attacker placements).
type eventKind uint8

const (
	evDepart         eventKind = iota // churn VM leaves the cluster
	evHop                             // attacker abandons its host mid-campaign
	evVerifyThrottle                  // end of throttle stage: confirm or absolve
	evVerifyMigrate                   // end of post-migration watch
	evResume                          // migrated VM resumes on its new host
	evMitigate                        // reaction to an alarm fires
	evArrive                          // churn VM arrives
	evPlace                           // attacker (re-)co-locates with its target
)

// event is one scheduled state change. vm is the subject VM id (-1 for
// arrivals, which create their VM on application); host is only meaningful
// where the subject VM is not yet placed. seq is the insertion counter and
// the *last* comparison key: it only breaks ties between events that are
// identical in every semantic field, so permuting the insertion order of
// same-tick events cannot reorder distinct work (the determinism property
// pinned by TestEventOrderInsensitive).
type event struct {
	tick int64
	kind eventKind
	host int32
	vm   int32
	seq  uint64
}

// less is the total order of the event queue.
func (a event) less(b event) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.host != b.host {
		return a.host < b.host
	}
	if a.vm != b.vm {
		return a.vm < b.vm
	}
	return a.seq < b.seq
}

// eventHeap is a standard container/heap min-heap over events.
type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].less(h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// push inserts an event, assigning the next sequence number.
func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.heap, ev)
}

// pop removes and returns the earliest event.
func (e *engine) pop() event {
	return heap.Pop(&e.heap).(event)
}
