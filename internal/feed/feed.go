// Package feed parses PCM counter streams from external tools. The
// expected format is CSV lines of `t,access,miss` — time in seconds plus
// the LLC access and miss counts of the monitored VM for the preceding
// sampling interval — which is trivial to produce from Intel PCM's csv
// output or a perf-stat wrapper. A header line and comment lines starting
// with '#' are skipped.
//
// For high-throughput deployments the package also implements the compact
// binary frame encoding negotiated by the sds/1 handshake (`frames=bin`);
// see binary.go. Both encodings carry the same samples: a stream written
// with Writer and one written with BinWriter decode to identical
// pcm.Sample sequences.
package feed

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/memdos/sds/internal/pcm"
)

// MaxLineBytes caps one CSV line. Longer lines are quarantined as a
// recoverable ParseError: the reader discards the remainder of the line
// and keeps its position, so one runaway write cannot kill the stream.
const MaxLineBytes = 1024 * 1024

// ParseError describes one malformed line in an otherwise healthy stream.
// The Reader keeps its position after returning one, so callers may treat
// it as recoverable — quarantine the line and call Next again — while I/O
// failures (which are not ParseErrors) remain fatal.
type ParseError struct {
	Line int    // 1-based physical line number
	Text string // the offending line as read (truncated for oversized lines)
	Err  error  // what was wrong with it
}

func (e *ParseError) Error() string { return fmt.Sprintf("feed: line %d: %v", e.Line, e.Err) }

func (e *ParseError) Unwrap() error { return e.Err }

// Reader parses a PCM sample stream.
type Reader struct {
	br      *bufio.Reader
	buf     []byte // scratch for lines spanning bufio fragments
	line    int
	sawData bool // a data candidate line (non-blank, non-comment) was seen
}

// NewReader returns a Reader over r. If r is already a *bufio.Reader it is
// used directly (no double buffering).
func NewReader(r io.Reader) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	return &Reader{br: br}
}

// Next returns the next sample, io.EOF at end of stream, or a parse error
// annotated with the line number. Blank lines, comments and a leading
// header are skipped. Malformed lines — including lines beyond
// MaxLineBytes, whose remainder is discarded — surface as recoverable
// *ParseErrors; only I/O failures are fatal.
func (r *Reader) Next() (pcm.Sample, error) {
	for {
		raw, err := r.readLine()
		if err != nil {
			return pcm.Sample{}, err
		}
		text := strings.TrimSpace(string(raw))
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		first := !r.sawData
		r.sawData = true
		s, err := parseLine(text)
		if err != nil {
			// A header is only valid on the first non-comment, non-blank
			// line — not necessarily physical line 1, since PCM wrappers
			// commonly emit '#' comment banners above it.
			if first && isHeader(text) {
				continue
			}
			return pcm.Sample{}, &ParseError{Line: r.line, Text: text, Err: err}
		}
		return s, nil
	}
}

// readLine reads one physical line (newline stripped), incrementing the
// line counter. A line longer than MaxLineBytes is consumed to its
// newline and returned as a *ParseError, so the stream stays readable.
// io.EOF is returned only at a clean end of input.
func (r *Reader) readLine() ([]byte, error) {
	r.line++
	r.buf = r.buf[:0]
	for {
		frag, err := r.br.ReadSlice('\n')
		r.buf = append(r.buf, frag...)
		switch err {
		case nil:
			if len(r.buf) > MaxLineBytes {
				return nil, r.oversizeError(len(r.buf))
			}
			return trimEOL(r.buf), nil
		case bufio.ErrBufferFull:
			if len(r.buf) > MaxLineBytes {
				return nil, r.discardLine()
			}
		case io.EOF:
			if len(r.buf) == 0 {
				return nil, io.EOF
			}
			if len(r.buf) > MaxLineBytes {
				return nil, r.oversizeError(len(r.buf))
			}
			return trimEOL(r.buf), nil
		default:
			return nil, fmt.Errorf("feed: read: %w", err)
		}
	}
}

// discardLine consumes the remainder of an oversized line and reports it
// as a quarantinable ParseError carrying a truncated prefix of the line.
func (r *Reader) discardLine() error {
	total := len(r.buf)
	for {
		frag, err := r.br.ReadSlice('\n')
		total += len(frag)
		switch err {
		case nil, io.EOF:
			return r.oversizeError(total)
		case bufio.ErrBufferFull:
			// keep draining
		default:
			return fmt.Errorf("feed: read: %w", err)
		}
	}
}

// oversizeError builds the recoverable ParseError for a too-long line,
// keeping only a short prefix of the offending text.
func (r *Reader) oversizeError(total int) error {
	keep := 64
	if keep > len(r.buf) {
		keep = len(r.buf)
	}
	return &ParseError{
		Line: r.line,
		Text: string(r.buf[:keep]) + "…",
		Err:  fmt.Errorf("line exceeds %d bytes (%d read)", MaxLineBytes, total),
	}
}

// trimEOL strips a trailing \n or \r\n.
func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n := len(b); n > 0 && b[n-1] == '\r' {
			b = b[:n-1]
		}
	}
	return b
}

// ReadAll drains the stream into a slice (profiling helper).
func (r *Reader) ReadAll() ([]pcm.Sample, error) {
	var out []pcm.Sample
	for {
		s, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}

func parseLine(text string) (pcm.Sample, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 3 {
		return pcm.Sample{}, fmt.Errorf("want 3 comma-separated fields (t,access,miss), got %d", len(fields))
	}
	var (
		s   pcm.Sample
		err error
	)
	if s.T, err = parseFinite(fields[0]); err != nil {
		return pcm.Sample{}, fmt.Errorf("bad time %q: %v", fields[0], err)
	}
	if s.Access, err = parseFinite(fields[1]); err != nil {
		return pcm.Sample{}, fmt.Errorf("bad access count %q: %v", fields[1], err)
	}
	if s.Miss, err = parseFinite(fields[2]); err != nil {
		return pcm.Sample{}, fmt.Errorf("bad miss count %q: %v", fields[2], err)
	}
	return s, nil
}

// parseFinite parses one field, rejecting the non-finite values
// strconv.ParseFloat accepts. A NaN smuggled through here would poison
// every downstream sorted-window invariant (ksstat assumes a totally
// ordered window) and corrupt SDS profile means, so non-finite samples are
// a parse error the server quarantines, not data.
func parseFinite(field string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
	if err != nil {
		return 0, fmt.Errorf("not a number")
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value")
	}
	return v, nil
}

// isHeader reports whether the first data line is the CSV header. Only the
// canonical header counts: its first field must be `t` (case-insensitive,
// e.g. `t,access,miss` or `T,ACCESS,MISS`). Anything else on the first
// line is malformed data to quarantine — the old any-non-numeric-line
// heuristic silently swallowed garbage first lines without accounting.
func isHeader(text string) bool {
	first, _, _ := strings.Cut(text, ",")
	return strings.EqualFold(strings.TrimSpace(first), "t")
}

// Writer emits samples in the same CSV format (for recording simulated
// streams that detectd or external tools can replay).
type Writer struct {
	w      *bufio.Writer
	header bool
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one sample (writing the header first).
func (w *Writer) Write(s pcm.Sample) error {
	if !w.header {
		if _, err := w.w.WriteString("t,access,miss\n"); err != nil {
			return err
		}
		w.header = true
	}
	// 'g' with precision -1 is the shortest exact representation, so
	// Write→Read round trips losslessly.
	_, err := fmt.Fprintf(w.w, "%s,%s,%s\n",
		strconv.FormatFloat(s.T, 'g', -1, 64),
		strconv.FormatFloat(s.Access, 'g', -1, 64),
		strconv.FormatFloat(s.Miss, 'g', -1, 64))
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
