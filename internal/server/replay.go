package server

import (
	"fmt"
	"io"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// ReplaySpec describes a simulated telemetry stream: the `-record` path of
// detectd and the per-VM streams the sdsload generator replays.
type ReplaySpec struct {
	// App names the application model (bayes, svm, kmeans, …).
	App string
	// Seconds is the stream duration in virtual seconds.
	Seconds float64
	// AttackAt starts a memory DoS attack at this time (0 = none).
	AttackAt float64
	// AttackKind selects the attack; the zero value means bus locking
	// (the recorded-stream default detectd has always used).
	AttackKind attack.Kind
	// Ramp is the attacker's probe/ramp-up span in seconds; negative
	// means instant full intensity, zero means the 10 s default.
	Ramp float64
	// Strategy names an evasive attacker strategy (attack.StrategyNames;
	// "" = steady). The strategy is tuned against the Table 1 detector
	// geometry and, for period-mimicking, the app's profiled period —
	// wire-level replays then carry the same evasive envelopes the
	// experiment plane scores.
	Strategy string
	// Seed derives the deterministic telemetry stream.
	Seed uint64
	// TPCM is the sampling interval (0 = the Table 1 default).
	TPCM float64
}

// simulateStream derives spec's deterministic sample sequence and feeds
// each sample to emit — the single generator behind both stream encodings,
// which is what makes a CSV replay and a binary replay of the same spec
// sample-identical.
func simulateStream(spec ReplaySpec, emit func(pcm.Sample) error) (int, error) {
	if spec.Seconds <= 0 {
		return 0, fmt.Errorf("replay duration must be positive, got %v", spec.Seconds)
	}
	prof, err := workload.AppProfile(spec.App)
	if err != nil {
		return 0, err
	}
	model, err := workload.NewModel(prof, randx.DeriveString(spec.Seed, spec.App))
	if err != nil {
		return 0, err
	}
	tpcm := spec.TPCM
	if tpcm <= 0 {
		tpcm = detect.DefaultConfig().TPCM
	}
	sched := attack.Schedule{}
	if spec.AttackAt > 0 {
		kind := spec.AttackKind
		if kind == attack.None {
			kind = attack.BusLock
		}
		ramp := spec.Ramp
		switch {
		case ramp == 0:
			ramp = 10
		case ramp < 0:
			ramp = 0
		}
		dcfg := detect.DefaultConfig()
		params := attack.StrategyParams{
			WindowStep: float64(dcfg.DW) * tpcm,
			HC:         dcfg.HC,
		}
		if prof.Periodic {
			params.VictimPeriod = prof.PeriodSec
		}
		strategy, err := attack.NamedStrategy(spec.Strategy, params)
		if err != nil {
			return 0, err
		}
		sched = attack.Schedule{Kind: kind, Start: spec.AttackAt, Ramp: ramp, Strategy: strategy}
	}
	n := pcm.SampleCount(spec.Seconds, tpcm)
	for i := 0; i < n; i++ {
		now := float64(i+1) * tpcm
		a, m := model.Sample(tpcm, sched.Env(now, false))
		if err := emit(pcm.Sample{T: now, Access: a, Miss: m}); err != nil {
			return i, err
		}
	}
	return n, nil
}

// WriteSimulatedStream writes spec's telemetry stream to w in feed CSV
// format (header included) and returns the number of samples written. The
// stream is byte-identical to historical `detectd -record` output for the
// same app/seed/attack parameters.
func WriteSimulatedStream(w io.Writer, spec ReplaySpec) (int, error) {
	fw := feed.NewWriter(w)
	n, err := simulateStream(spec, fw.Write)
	if err != nil {
		return n, err
	}
	return n, fw.Flush()
}

// WriteSimulatedStreamBinary writes spec's telemetry stream to w as binary
// frames (batched at feed.MaxFrameSamples, terminated by an end frame) and
// returns the number of samples written. The samples are identical to
// WriteSimulatedStream's for the same spec — only the encoding differs.
func WriteSimulatedStreamBinary(w io.Writer, spec ReplaySpec) (int, error) {
	bw := feed.NewBinWriter(w)
	batch := make([]pcm.Sample, 0, feed.MaxFrameSamples)
	n, err := simulateStream(spec, func(s pcm.Sample) error {
		batch = append(batch, s)
		if len(batch) == feed.MaxFrameSamples {
			err := bw.WriteBatch(batch)
			batch = batch[:0]
			return err
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	if err := bw.WriteBatch(batch); err != nil {
		return n, err
	}
	return n, bw.End()
}
