//go:build !linux

package server

import "net"

// ListenShards degrades to one plain listener where SO_REUSEPORT accept
// sharding is not portable; the ingest shards still exist, they just
// share a single accept queue.
func ListenShards(network, addr string, n int) ([]net.Listener, bool, error) {
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, false, err
	}
	return []net.Listener{l}, false, nil
}
