// Evasive attacker strategies: adaptive intensity envelopes that try to
// stay below a detection scheme's trigger while still inflicting damage.
//
// The paper evaluates its schemes against steady attackers only; real
// adversaries adapt. Time-fragmented attacks reset consecutive-violation
// streaks (Prada et al., arXiv 1904.11268), slow onset ramps starve
// self-calibrating detectors (CacheShield, arXiv 1709.01795), and a
// coordinated group can keep each member intermittent while their
// superposition stays continuous. Each strategy here is a pure, allocation-
// free modulation of a Schedule's intensity envelope; the experiment layer
// sweeps them against every scheme and scores the largest intensity that
// stays undetected (the scheme's evasion margin).
package attack

import (
	"fmt"
	"math"

	"github.com/memdos/sds/internal/signal"
)

// Strategy modulates a Schedule's intensity over time. Implementations are
// pure functions of the time offset: equal inputs give equal outputs, no
// internal state, no allocation — Schedule.Intensity sits on the per-sample
// hot path of every execution plane.
type Strategy interface {
	// Name returns the strategy name used in reports and CLI flags.
	Name() string
	// Factor returns the multiplicative intensity modulation at rel
	// seconds after the schedule's start. Values are clamped to [0, 1] by
	// Schedule.Intensity; rel < 0 must return 0.
	Factor(rel float64) float64
	// MeanFactor returns the mean of Factor over [rel0, rel1] — exact for
	// every built-in strategy — which is what lets the window-fidelity
	// cloud simulator integrate strategy-modulated schedules in closed
	// form. rel1 ≤ rel0 returns Factor(max(rel0, 0)).
	MeanFactor(rel0, rel1 float64) float64
}

// Strategy names accepted by NamedStrategy, scenario files and the
// -attack-strategy CLI flags. StrategySteady is the zero value: no
// modulation, the pre-existing ramp-and-plateau schedule.
const (
	StrategySteady         = "steady"
	StrategyDutyCycle      = "duty-cycle"
	StrategyPeriodMimic    = "period-mimic"
	StrategySlowRamp       = "slow-ramp"
	StrategyCoordinated    = "coordinated"
	StrategyReprofileTimed = "reprofile-timed"
)

// StrategyNames lists every named strategy in report order.
func StrategyNames() []string {
	return []string{StrategySteady, StrategyDutyCycle, StrategyPeriodMimic,
		StrategySlowRamp, StrategyCoordinated, StrategyReprofileTimed}
}

// sanitizeFactor maps a strategy output into [0, 1]: NaN and negative
// values become 0, values above 1 become 1. Degenerate knobs (zero-duration
// bursts, zero-length cycles) must never leak NaN into the contention
// environment a victim model consumes.
func sanitizeFactor(f float64) float64 {
	switch {
	case math.IsNaN(f) || f <= 0:
		return 0
	case f > 1:
		return 1
	}
	return f
}

// DutyCycle attacks in on/off bursts: full intensity for On seconds, quiet
// for Off seconds, repeating. Phase shifts the cycle start (0 ≤ Phase <
// On+Off begins mid-cycle). Tuned right — see DutyCycleBelowStreak — the
// bursts sit just below a boundary scheme's H_C consecutive-violation
// streak, so SDS/B's counter resets on every pause while density-based
// schemes (TimeFrag) still accumulate the suspicious windows.
//
// Degenerate knobs are defined, never NaN: On ≤ 0 never attacks, On > 0
// with Off ≤ 0 always attacks.
type DutyCycle struct {
	On, Off float64
	Phase   float64
}

var _ Strategy = DutyCycle{}

// Name implements Strategy.
func (d DutyCycle) Name() string { return StrategyDutyCycle }

// Factor implements Strategy.
func (d DutyCycle) Factor(rel float64) float64 {
	if rel < 0 || d.On <= 0 {
		return 0
	}
	if d.Off <= 0 {
		return 1
	}
	period := d.On + d.Off
	pos := math.Mod(rel+d.Phase, period)
	if pos < 0 {
		pos += period
	}
	if pos < d.On {
		return 1
	}
	return 0
}

// onTime returns the cumulative on-time of the cycle over [0, rel] for a
// non-degenerate duty cycle (On > 0, Off > 0), before the phase shift.
func (d DutyCycle) onTime(rel float64) float64 {
	if rel <= 0 {
		return 0
	}
	period := d.On + d.Off
	cycles := math.Floor(rel / period)
	return cycles*d.On + math.Min(rel-cycles*period, d.On)
}

// MeanFactor implements Strategy: the exact on-time fraction of [rel0, rel1].
func (d DutyCycle) MeanFactor(rel0, rel1 float64) float64 {
	if rel1 <= rel0 {
		return d.Factor(math.Max(rel0, 0))
	}
	if d.On <= 0 {
		return 0
	}
	if d.Off <= 0 {
		return sanitizeFactor(positiveSpanFraction(rel0, rel1))
	}
	lo, hi := math.Max(rel0, 0), rel1
	if hi <= lo {
		return 0
	}
	on := d.onTime(hi+d.Phase) - d.onTime(lo+d.Phase)
	return sanitizeFactor(on / (rel1 - rel0))
}

// positiveSpanFraction returns the fraction of [rel0, rel1] at rel ≥ 0 —
// the mean of an always-on strategy whose factor is 0 before the start.
func positiveSpanFraction(rel0, rel1 float64) float64 {
	lo := math.Max(rel0, 0)
	if rel1 <= lo {
		return 0
	}
	return (rel1 - lo) / (rel1 - rel0)
}

// streakGuardWindows pads the H_C budget of DutyCycleBelowStreak for the
// two ways a burst outlives itself in the violation streak: the moving
// average smears it across the W/ΔW ≈ 4 windows that overlap it (Table 1
// geometry), and after the MA recovers the EWMA decays back into the band
// from a deep excursion over ≈ ln(band/excursion)/ln(1−α) ≈ 11 windows at
// α=0.2 and a full bus-locking drop. The guard keeps burst + smear + decay
// below H_C.
const streakGuardWindows = 16

// DutyCycleBelowStreak returns a DutyCycle tuned against a boundary scheme
// with the given MA window step (ΔW·T_PCM seconds) and consecutive-
// violation threshold hc: the on-burst covers at most hc−1−guard window
// boundaries (never fewer than one), and the pause is long enough for the
// EWMA to re-enter the band and reset the streak. By construction no burst
// can produce hc consecutive out-of-band windows from burst overlap alone
// (the property test in evasive_test.go pins this over seed grids).
func DutyCycleBelowStreak(windowStep float64, hc int) DutyCycle {
	if windowStep <= 0 {
		windowStep = 0.5 // Table 1 geometry: ΔW·T_PCM = 50·0.01
	}
	onWindows := hc - 1 - streakGuardWindows
	if onWindows < 1 {
		onWindows = 1
	}
	on := float64(onWindows) * windowStep
	off := math.Max(on, float64(streakGuardWindows)*windowStep)
	return DutyCycle{On: on, Off: off}
}

// SlowRamp grows the intensity linearly from 0 to full over Rise seconds —
// far slower than the schedule's own probe ramp. Each MA window adds at most
// windowStep/Rise of full intensity, so no single window jumps the profiled
// normal range by itself and a boundary scheme whose band absorbs the final
// plateau (peak effect within k·σ_E, the Chebyshev per-window bound's
// operating regime) never sees a violation streak at all. Accumulating
// schemes (CUSUM) integrate the persistent sub-band drift and trip anyway.
// Rise ≤ 0 degenerates to full intensity immediately.
type SlowRamp struct {
	Rise float64
}

var _ Strategy = SlowRamp{}

// Name implements Strategy.
func (s SlowRamp) Name() string { return StrategySlowRamp }

// Factor implements Strategy.
func (s SlowRamp) Factor(rel float64) float64 {
	if rel < 0 {
		return 0
	}
	if s.Rise <= 0 || rel >= s.Rise {
		return 1
	}
	return rel / s.Rise
}

// MeanFactor implements Strategy: exact trapezoid of the clamped ramp.
func (s SlowRamp) MeanFactor(rel0, rel1 float64) float64 {
	if rel1 <= rel0 {
		return s.Factor(math.Max(rel0, 0))
	}
	if s.Rise <= 0 {
		return sanitizeFactor(positiveSpanFraction(rel0, rel1))
	}
	lo := math.Max(rel0, 0)
	if rel1 <= lo {
		return 0
	}
	var area float64
	if re := math.Min(rel1, s.Rise); lo < re {
		area += (lo + re) / 2 / s.Rise * (re - lo)
	}
	if rel1 > s.Rise {
		area += rel1 - math.Max(lo, s.Rise)
	}
	return sanitizeFactor(area / (rel1 - rel0))
}

// PeriodMimic phase-locks duty-cycled bursts to the victim's period so the
// period channel stays quiet: the victim's observed period stretches with
// the *mean* attack intensity (work-term stretch), so bursts covering a Duty
// fraction of every Cycles victim periods keep the average stretch at
// Duty·PeriodStretch — below SDS/P's deviation tolerance for small Duty —
// while each burst still hits at the same cycle position. The burst length
// additionally respects the boundary scheme's streak budget when built by
// MimicVictim. Non-positive knobs degenerate to a silent strategy (never
// NaN).
type PeriodMimic struct {
	// Period is the victim's (estimated) period in seconds.
	Period float64
	// Duty is the attacked fraction of each burst cycle (0..1).
	Duty float64
	// Cycles is how many victim periods one on+off burst cycle spans.
	Cycles int
	// Phase shifts the burst within the cycle (seconds).
	Phase float64
	// Estimated reports whether Period came from a real DFT–ACF estimate
	// of victim telemetry (MimicVictim) or a fallback default.
	Estimated bool
}

var _ Strategy = PeriodMimic{}

// Name implements Strategy.
func (p PeriodMimic) Name() string { return StrategyPeriodMimic }

// cycle returns the equivalent duty cycle; ok is false for degenerate knobs.
func (p PeriodMimic) cycle() (DutyCycle, bool) {
	if p.Period <= 0 || p.Duty <= 0 || p.Cycles <= 0 {
		return DutyCycle{}, false
	}
	duty := math.Min(p.Duty, 1)
	span := float64(p.Cycles) * p.Period
	return DutyCycle{On: duty * span, Off: (1 - duty) * span, Phase: p.Phase}, true
}

// Factor implements Strategy.
func (p PeriodMimic) Factor(rel float64) float64 {
	c, ok := p.cycle()
	if !ok {
		return 0
	}
	return c.Factor(rel)
}

// MeanFactor implements Strategy.
func (p PeriodMimic) MeanFactor(rel0, rel1 float64) float64 {
	c, ok := p.cycle()
	if !ok {
		return 0
	}
	return c.MeanFactor(rel0, rel1)
}

// fallbackMimicPeriod stands in for the victim's period when no periodic
// structure is estimable (non-periodic victims): the mimic degenerates to a
// plain duty cycle at a phase-alternation-scale period.
const fallbackMimicPeriod = 30.0

// MimicVictim builds a PeriodMimic from a victim's attack-free moving-
// average telemetry trace: ma holds MA values spaced maStep seconds apart
// (the same series SDS/P consumes), and the period is estimated with the
// shared DFT–ACF estimator. When no period is detectable the mimic falls
// back to fallbackMimicPeriod with Estimated false. duty is the attacked
// fraction; the burst span is capped so one burst covers at most
// hc−1−guard MA window boundaries of the boundary scheme's geometry
// (windowStep seconds apart) — a mimic that evades the period channel but
// trips the streak channel would be pointless.
func MimicVictim(ma []float64, maStep float64, duty float64, windowStep float64, hc int) PeriodMimic {
	period, estimated := EstimateVictimPeriod(ma, maStep)
	if duty <= 0 || duty > 1 {
		duty = 0.3
	}
	m := PeriodMimic{Period: period, Duty: duty, Cycles: 1, Estimated: estimated}
	capMimicDuty(&m, windowStep, hc)
	return m
}

// capMimicDuty shrinks the mimic's duty so one burst stays inside the
// boundary scheme's streak budget. The cycle count stays at one victim
// period: bursting every N > 1 periods would plant a spectral line at
// N·period that the DFT–ACF estimator latches onto, turning the mimic into
// exactly the period anomaly it is built to avoid.
func capMimicDuty(m *PeriodMimic, windowStep float64, hc int) {
	if m.Period <= 0 {
		return
	}
	if budget := DutyCycleBelowStreak(windowStep, hc).On; m.Duty*m.Period > budget {
		m.Duty = budget / m.Period
	}
}

// EstimateVictimPeriod runs the shared DFT–ACF period estimator over a
// victim MA trace (values maStep seconds apart) and returns the period in
// seconds. ok is false — and the fallback period returned — when the trace
// has no detectable periodic structure.
func EstimateVictimPeriod(ma []float64, maStep float64) (seconds float64, ok bool) {
	if len(ma) < 8 || maStep <= 0 {
		return fallbackMimicPeriod, false
	}
	est, found := signal.EstimatePeriod(ma, signal.PeriodOptions{})
	if !found || est.Period <= 0 {
		return fallbackMimicPeriod, false
	}
	return float64(est.Period) * maStep, true
}

// Coordinated is the superposition of K phase-offset duty-cycled attackers:
// member i bursts for Burst seconds once per K·Burst cycle, offset by
// i·Burst, so exactly one member is active at any instant — the victim
// experiences continuous full-intensity contention while every individual
// attacker stays intermittent (and individually below the streak budget
// when built by NewCoordinated). Factor is the superposition min(1, Σ
// member factors); with the tiling construction the sum never exceeds 1,
// which the composition property test pins.
type Coordinated struct {
	members []DutyCycle
}

var _ Strategy = Coordinated{}

// NewCoordinated returns a K-member coordinated strategy whose members
// burst for burst seconds in rotation. K < 1 or burst ≤ 0 degenerate to a
// memberless (silent) strategy.
func NewCoordinated(k int, burst float64) Coordinated {
	if k < 1 || burst <= 0 {
		return Coordinated{}
	}
	members := make([]DutyCycle, k)
	for i := range members {
		members[i] = DutyCycle{
			On:    burst,
			Off:   float64(k-1) * burst,
			Phase: -float64(i) * burst,
		}
	}
	return Coordinated{members: members}
}

// CoordinatedBelowStreak returns a NewCoordinated whose member bursts each
// sit below the (windowStep, hc) streak budget — each individual attacker
// evades the boundary scheme while the group's superposition is continuous.
func CoordinatedBelowStreak(k int, windowStep float64, hc int) Coordinated {
	return NewCoordinated(k, DutyCycleBelowStreak(windowStep, hc).On)
}

// Members returns the individual attackers' strategies (copies).
func (c Coordinated) Members() []DutyCycle {
	out := make([]DutyCycle, len(c.members))
	copy(out, c.members)
	return out
}

// Member returns member i's strategy (i taken modulo the member count);
// the zero-member degenerate returns a silent DutyCycle.
func (c Coordinated) Member(i int) DutyCycle {
	if len(c.members) == 0 {
		return DutyCycle{}
	}
	i %= len(c.members)
	if i < 0 {
		i += len(c.members)
	}
	return c.members[i]
}

// Name implements Strategy.
func (c Coordinated) Name() string { return StrategyCoordinated }

// Factor implements Strategy: the clamped superposition of the members.
func (c Coordinated) Factor(rel float64) float64 {
	sum := 0.0
	for _, m := range c.members {
		sum += m.Factor(rel)
	}
	return sanitizeFactor(sum)
}

// MeanFactor implements Strategy: the clamped sum of member means — exact
// whenever member bursts do not overlap, which the NewCoordinated tiling
// guarantees.
func (c Coordinated) MeanFactor(rel0, rel1 float64) float64 {
	sum := 0.0
	for _, m := range c.members {
		sum += m.MeanFactor(rel0, rel1)
	}
	return sanitizeFactor(sum)
}

// ReprofileTimed attacks at full intensity except during recurring
// re-profiling windows: the tenant rebuilds the detection profile every
// Every seconds from a rolling telemetry buffer, and the attacker quiesces
// for the Quiet seconds leading into each rebuild. The operator sees no
// active alarm at swap time (nobody re-profiles mid-alarm), yet the buffer
// still contains the attacked spans between quiet windows — the rebuilt
// μ/σ absorb them, the band widens, and the ongoing attack becomes the new
// normal. Inner optionally modulates the attacking spans (nil = full
// intensity). Quiet ≥ Every quiesces permanently; Every ≤ 0 never
// quiesces.
type ReprofileTimed struct {
	// Every is the victim's re-profiling interval in seconds.
	Every float64
	// Quiet is the quiesced span before each rebuild (seconds).
	Quiet float64
	// Offset shifts the first rebuild time (seconds; rebuilds at
	// Offset, Offset+Every, …).
	Offset float64
	// Inner modulates the non-quiesced spans (nil = full intensity).
	Inner Strategy
}

var _ Strategy = ReprofileTimed{}

// Name implements Strategy.
func (r ReprofileTimed) Name() string { return StrategyReprofileTimed }

// knobs returns the sanitized (every, quiet, offset) cycle: non-finite or
// non-positive Every/Quiet disable quiescing (ok false), a non-finite
// Offset resets to 0. NaN knobs must neither leak into factors nor hang
// the window walk (NaN compares false against every loop bound).
func (r ReprofileTimed) knobs() (every, quiet, offset float64, ok bool) {
	every, quiet, offset = r.Every, r.Quiet, r.Offset
	if !finitePositive(every) || !(quiet > 0) {
		return 0, 0, 0, false
	}
	if math.IsNaN(offset) || math.IsInf(offset, 0) {
		offset = 0
	}
	return every, quiet, offset, true
}

// finitePositive reports v > 0 and finite (false for NaN and ±Inf).
func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0)
}

// quiet reports whether rel falls inside a quiesced window — the Quiet
// seconds before each rebuild at Offset + k·Every.
func (r ReprofileTimed) quiet(rel float64) bool {
	every, quiet, offset, ok := r.knobs()
	if !ok {
		return false
	}
	if quiet >= every {
		return true
	}
	pos := math.Mod(rel-offset, every)
	if pos < 0 {
		pos += every
	}
	return pos >= every-quiet
}

// Factor implements Strategy.
func (r ReprofileTimed) Factor(rel float64) float64 {
	if rel < 0 || r.quiet(rel) {
		return 0
	}
	if r.Inner != nil {
		return sanitizeFactor(r.Inner.Factor(rel))
	}
	return 1
}

// MeanFactor implements Strategy: a segment walk over the quiet windows
// intersecting [rel0, rel1], integrating the inner strategy over the
// attacking spans. Exact whenever Inner.MeanFactor is.
func (r ReprofileTimed) MeanFactor(rel0, rel1 float64) float64 {
	if rel1 <= rel0 {
		return r.Factor(math.Max(rel0, 0))
	}
	lo := math.Max(rel0, 0)
	if rel1 <= lo {
		return 0
	}
	every, quiet, offset, ok := r.knobs()
	if !ok {
		return sanitizeFactor(r.innerArea(lo, rel1) / (rel1 - rel0))
	}
	if quiet >= every {
		return 0
	}
	// Walk the attacking spans between quiet windows.
	area := 0.0
	// First quiet-window start at or before lo.
	k := math.Floor((lo - offset) / every)
	for qs := offset + k*every + (every - quiet); ; qs += every {
		attackEnd := math.Min(qs, rel1) // attacking span runs up to the quiet start
		if attackEnd > lo {
			area += r.innerArea(lo, attackEnd)
		}
		lo = math.Max(lo, qs+quiet) // skip the quiet window
		if qs >= rel1 || lo >= rel1 {
			break
		}
	}
	return sanitizeFactor(area / (rel1 - rel0))
}

// innerArea integrates the inner strategy (or 1) over [lo, hi].
func (r ReprofileTimed) innerArea(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	if r.Inner == nil {
		return hi - lo
	}
	return sanitizeFactor(r.Inner.MeanFactor(lo, hi)) * (hi - lo)
}

// StrategyParams carries the detector-geometry and victim knowledge a named
// strategy is tuned against. The zero value selects Table 1 geometry
// (windowStep 0.5 s, H_C 30), a 30 s fallback victim period, and a 150 s
// slow-ramp rise.
type StrategyParams struct {
	// WindowStep is the boundary scheme's MA window step ΔW·T_PCM in
	// seconds (0 = 0.5, Table 1).
	WindowStep float64
	// HC is the consecutive-violation threshold the duty cycle ducks
	// under (0 = 30, Table 1).
	HC int
	// VictimPeriod is the victim's (estimated or profiled) period in
	// seconds for period-mimicking (0 = the 30 s fallback).
	VictimPeriod float64
	// SlowRise is the slow-ramp rise time in seconds (0 = 150).
	SlowRise float64
	// Coordinated is the coordinated group size K (0 = 3).
	Coordinated int
	// ReprofileEvery and ReprofileQuiet shape the reprofile-timed windows
	// (0 = 120 s interval, 20 s quiet).
	ReprofileEvery, ReprofileQuiet float64
}

func (p StrategyParams) withDefaults() StrategyParams {
	if p.WindowStep <= 0 {
		p.WindowStep = 0.5
	}
	if p.HC <= 0 {
		p.HC = 30
	}
	if p.VictimPeriod <= 0 {
		p.VictimPeriod = fallbackMimicPeriod
	}
	if p.SlowRise <= 0 {
		p.SlowRise = 150
	}
	if p.Coordinated <= 0 {
		p.Coordinated = 3
	}
	if p.ReprofileEvery <= 0 {
		p.ReprofileEvery = 120
	}
	if p.ReprofileQuiet <= 0 {
		p.ReprofileQuiet = 20
	}
	return p
}

// NamedStrategy builds one of the named strategies with knobs derived from
// params. StrategySteady (and "") returns nil: the unmodulated schedule.
func NamedStrategy(name string, params StrategyParams) (Strategy, error) {
	p := params.withDefaults()
	switch name {
	case "", StrategySteady:
		return nil, nil
	case StrategyDutyCycle:
		return DutyCycleBelowStreak(p.WindowStep, p.HC), nil
	case StrategyPeriodMimic:
		m := PeriodMimic{Period: p.VictimPeriod, Duty: 0.3, Cycles: 1,
			Estimated: params.VictimPeriod > 0}
		capMimicDuty(&m, p.WindowStep, p.HC)
		return m, nil
	case StrategySlowRamp:
		return SlowRamp{Rise: p.SlowRise}, nil
	case StrategyCoordinated:
		return CoordinatedBelowStreak(p.Coordinated, p.WindowStep, p.HC), nil
	case StrategyReprofileTimed:
		return ReprofileTimed{Every: p.ReprofileEvery, Quiet: p.ReprofileQuiet}, nil
	default:
		return nil, fmt.Errorf("attack: unknown strategy %q (known: %v)", name, StrategyNames())
	}
}
