package detect

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/workload"
)

// These tests pin the steady-state allocation behaviour of every detector's
// Observe path at zero: the per-sample pipeline (ring updates, moving
// averages, period estimation, KS comparisons) must run without touching
// the heap once warmed up. A regression here silently reintroduces GC
// pressure multiplied by ~60k samples per run across the whole grid.

// observeAllocs feeds the detector `warm` samples to fill windows, build FFT
// plans and grow scratch, then measures allocations over the next batch.
func observeAllocs(t *testing.T, d Detector, samples []pcm.Sample, warm int) float64 {
	t.Helper()
	if warm >= len(samples) {
		t.Fatalf("warmup %d consumes all %d samples", warm, len(samples))
	}
	for _, s := range samples[:warm] {
		d.Observe(s)
	}
	rest := samples[warm:]
	i := 0
	return testing.AllocsPerRun(len(rest)-1, func() {
		d.Observe(rest[i])
		i++
	})
}

func TestSDSBObserveZeroAlloc(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 71)
	d, err := NewSDSB(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := genSamples(t, workload.KMeans, 72, 120, attack.Schedule{})
	if allocs := observeAllocs(t, d, samples, len(samples)/2); allocs != 0 {
		t.Fatalf("SDSB.Observe: %.2f allocs/op in steady state, want 0", allocs)
	}
}

func TestSDSPObserveZeroAlloc(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 73)
	d, err := NewSDSP(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 120 s of attack-free samples cover many ΔW_P estimation rounds, so
	// the measured window includes full DFT–ACF estimates, not just ring
	// pushes — those too must be allocation-free.
	samples := genSamples(t, workload.FaceNet, 74, 120, attack.Schedule{})
	if allocs := observeAllocs(t, d, samples, len(samples)/2); allocs != 0 {
		t.Fatalf("SDSP.Observe: %.2f allocs/op in steady state (estimate rounds included), want 0", allocs)
	}
}

func TestSDSObserveZeroAlloc(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 75)
	d, err := NewSDS(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := genSamples(t, workload.FaceNet, 76, 120, attack.Schedule{})
	if allocs := observeAllocs(t, d, samples, len(samples)/2); allocs != 0 {
		t.Fatalf("SDS.Observe: %.2f allocs/op in steady state, want 0", allocs)
	}
}

func TestKSTestObserveSteadyStateZeroAlloc(t *testing.T) {
	d, err := NewKSTest(DefaultKSTestConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	samples := genSamples(t, workload.KMeans, 77, 29, attack.Schedule{})
	// Warm past the first reference collection (W_R = 1 s) but stop before
	// the next one at L_R = 30 s: the measured window then covers monitored
	// ring pushes and KS checks only. Reference collection itself appends
	// to a reusable buffer and is amortized (W_R/L_R of samples).
	warm := len(samples) / 4
	if allocs := observeAllocs(t, d, samples, warm); allocs != 0 {
		t.Fatalf("KSTest.Observe: %.2f allocs/op in steady state (checks included), want 0", allocs)
	}
}

func TestCUSUMObserveZeroAlloc(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 78)
	d, err := NewCUSUM(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := genSamples(t, workload.KMeans, 79, 120, attack.Schedule{})
	if allocs := observeAllocs(t, d, samples, len(samples)/2); allocs != 0 {
		t.Fatalf("CUSUM.Observe: %.2f allocs/op in steady state, want 0", allocs)
	}
}

func TestTimeFragObserveZeroAlloc(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 80)
	d, err := NewTimeFrag(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := genSamples(t, workload.KMeans, 81, 120, attack.Schedule{})
	if allocs := observeAllocs(t, d, samples, len(samples)/2); allocs != 0 {
		t.Fatalf("TimeFrag.Observe: %.2f allocs/op in steady state, want 0", allocs)
	}
}

func TestEWMAVarObserveZeroAlloc(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 82)
	d, err := NewEWMAVar(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 120 s spans burn-in, calibration and a long detection phase, so the
	// measured window includes post-calibration violation tracking.
	samples := genSamples(t, workload.KMeans, 83, 120, attack.Schedule{})
	if allocs := observeAllocs(t, d, samples, len(samples)/2); allocs != 0 {
		t.Fatalf("EWMAVar.Observe: %.2f allocs/op in steady state, want 0", allocs)
	}
}
