// Package server implements the provider-side deployment shape of the
// paper's system (§4: "SDS … will be deployed in the hypervisor on each
// server by the provider"): a concurrent multi-VM detection service that
// ingests one `t,access,miss` PCM counter stream per protected VM and runs
// the profile→detect lifecycle on each.
//
// The package has three layers:
//
//   - Session: the single-stream lifecycle — accumulate the Stage-1
//     profiling window, build the profile and detector, then monitor. This
//     is the code path cmd/detectd wraps for stdin streams and Server runs
//     once per connection.
//   - Server: accepts many VM streams at once over TCP and/or unix sockets
//     (plus an in-process API), with bounded per-connection buffering,
//     backpressure, graceful drain, and a /healthz + /metricsz ops surface.
//   - WriteSimulatedStream: the recorded-telemetry replay path shared by
//     `detectd -record` and the sdsload load generator.
package server

import (
	"fmt"
	"sync"

	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/pcm"
)

// StreamSpec configures one VM stream's detection lifecycle.
type StreamSpec struct {
	// VM identifies the protected VM (ops surface and fleet key).
	VM string
	// App names the profiled application.
	App string
	// Scheme selects the detector: sds, sdsb, sdsp, kstest, cusum,
	// timefrag or ewmavar.
	Scheme string
	// ProfileSeconds is the leading stream span used as the Stage-1
	// profile; the VM must be known attack-free during it.
	ProfileSeconds float64
	// Config carries the SDS parameters (zero value: DefaultConfig).
	Config detect.Config
	// KSConfig carries the KStest baseline parameters (zero value:
	// DefaultKSTestConfig). Only consulted for Scheme == "kstest".
	KSConfig detect.KSTestConfig
	// OnProfile, when set, observes the completed Stage-1 profile and the
	// number of samples it was built from.
	OnProfile func(p detect.Profile, samples int)
	// OnAlarm, when set, observes every alarm as it fires; a non-nil
	// return poisons the session (subsequent Observes fail).
	OnAlarm func(a detect.Alarm) error
	// KSOptions is passed through to NewKSTest (tracing hooks in tests).
	KSOptions []detect.KSTestOption
}

// normalize fills defaults and validates.
func (spec *StreamSpec) normalize() error {
	if spec.App == "" {
		spec.App = "monitored-vm"
	}
	if spec.Scheme == "" {
		spec.Scheme = "sds"
	}
	switch spec.Scheme {
	case "sds", "sdsb", "sdsp", "kstest", "cusum", "timefrag", "ewmavar":
	default:
		return fmt.Errorf("unknown scheme %q (want sds, sdsb, sdsp, kstest, cusum, timefrag or ewmavar)", spec.Scheme)
	}
	if spec.ProfileSeconds <= 0 {
		return fmt.Errorf("profile window must be positive, got %v", spec.ProfileSeconds)
	}
	if spec.Config == (detect.Config{}) {
		spec.Config = detect.DefaultConfig()
	}
	if err := spec.Config.Validate(); err != nil {
		return err
	}
	if spec.KSConfig == (detect.KSTestConfig{}) {
		spec.KSConfig = detect.DefaultKSTestConfig()
	}
	return nil
}

// SessionStats is a point-in-time snapshot of one stream's state.
type SessionStats struct {
	VM, App, Scheme string
	// Profiling reports that the Stage-1 window is still accumulating.
	Profiling bool
	// ProfileSamples is the number of samples in the Stage-1 window (its
	// current fill while profiling, its final size afterwards).
	ProfileSamples int
	// Monitored counts Stage-2 samples ingested (malformed ones included —
	// they are counted in Dropped too).
	Monitored uint64
	// Dropped counts malformed Stage-2 samples the sanitizer rejected.
	Dropped uint64
	// Alarms is the number of alarms raised; Alarmed the current state.
	Alarms  int
	Alarmed bool
	// LastT is the virtual time of the newest ingested sample.
	LastT float64
}

// Ingested returns the total samples consumed across both stages.
func (st SessionStats) Ingested() uint64 {
	return uint64(st.ProfileSamples) + st.Monitored
}

// Session runs the profile→detect lifecycle over one VM's sample stream.
// The first ProfileSeconds of stream time form the Stage-1 profile; the
// sample at the window boundary starts the monitored stage (it is NOT part
// of the profile). All methods are safe for concurrent use, but samples
// must be fed by a single goroutine in time order.
type Session struct {
	spec StreamSpec

	mu             sync.Mutex
	profiling      bool
	cutoff         float64
	profileSamples []pcm.Sample
	profileCount   int
	profile        detect.Profile
	guard          *detect.Sanitizer
	monitored      uint64
	emitted        int
	lastT          float64
	err            error
}

// NewSession validates the spec and returns a session in the profiling
// stage.
func NewSession(spec StreamSpec) (*Session, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	return &Session{spec: spec, profiling: true}, nil
}

// Name returns the scheme name.
func (s *Session) Name() string { return s.spec.Scheme }

// VM returns the VM identifier.
func (s *Session) VM() string { return s.spec.VM }

// Observe ingests the next stream sample. During Stage 1 samples accumulate
// in the profiling window; the first sample at or past the window boundary
// triggers profile construction and becomes the first monitored sample.
func (s *Session) Observe(smp pcm.Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.observeLocked(smp); err != nil {
		return err
	}
	return s.emitLocked()
}

// ObserveBatch ingests a decoded frame under a single lock acquisition,
// with one alarm-emission pass at the end instead of one per sample — the
// binary ingest pipeline's hot path. It returns how many samples were
// consumed before any error.
func (s *Session) ObserveBatch(batch []pcm.Sample) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, smp := range batch {
		if s.err != nil {
			return i, s.err
		}
		if err := s.observeLocked(smp); err != nil {
			return i, err
		}
	}
	return len(batch), s.emitLocked()
}

// observeLocked advances the lifecycle for one sample. Alarm emission is
// left to the caller's trailing emitLocked so batched callers pay for it
// once per frame.
func (s *Session) observeLocked(smp pcm.Sample) error {
	s.lastT = smp.T
	if s.profiling {
		if s.profileSamples == nil {
			s.cutoff = smp.T + s.spec.ProfileSeconds
			// Preallocate the whole Stage-1 window. Growing it by doubling
			// re-copies every session's window ~twice — at thousands of
			// concurrent sessions that is hundreds of MB of memmove on the
			// ingest hot path. The cap keeps an absurd ProfileSeconds from
			// reserving memory up front; append grows past it if needed.
			n := int(s.spec.ProfileSeconds/s.spec.Config.TPCM) + 1
			if n > 1<<20 {
				n = 1 << 20
			}
			s.profileSamples = make([]pcm.Sample, 0, n)
		}
		if smp.T < s.cutoff {
			s.profileSamples = append(s.profileSamples, smp)
			s.profileCount = len(s.profileSamples)
			return nil
		}
		// The boundary sample starts the monitored stage: a window of
		// ProfileSeconds starting at the first sample ends strictly
		// before firstSample.T + ProfileSeconds.
		if err := s.finishProfileLocked(); err != nil {
			s.err = err
			return err
		}
	}
	s.monitored++
	s.guard.Observe(smp)
	return nil
}

// finishProfileLocked builds the profile and detector from the accumulated
// Stage-1 window.
func (s *Session) finishProfileLocked() error {
	prof, err := detect.BuildProfile(s.spec.App, s.profileSamples, s.spec.Config)
	if err != nil {
		return err
	}
	det, err := newDetector(s.spec, prof)
	if err != nil {
		return err
	}
	if ks, ok := det.(*detect.KSTest); ok {
		// Seed the baseline from the attack-free Stage-1 window. Without
		// this the detector would collect its first reference from the
		// monitored tail — a stream attacked right after profiling would
		// teach KStest an under-attack baseline and it would never alarm.
		for _, ps := range s.profileSamples {
			ks.Observe(ps)
		}
	}
	s.profile = prof
	s.guard = detect.NewSanitizer(det)
	s.profiling = false
	s.profileSamples = nil
	if s.spec.OnProfile != nil {
		s.spec.OnProfile(prof, s.profileCount)
	}
	// Surface any alarms the seeding pass raised (a poisoned "attack-free"
	// window should be visible, not silently absorbed).
	return s.emitLocked()
}

// emitLocked forwards alarms raised since the last emission to OnAlarm.
// The count poll keeps the per-sample path allocation-free: Alarms() copies
// the slice, so it only runs when something new actually fired.
func (s *Session) emitLocked() error {
	if s.guard == nil || s.guard.AlarmCount() == s.emitted {
		return nil
	}
	alarms := s.guard.Alarms()
	for _, a := range alarms[s.emitted:] {
		s.emitted++
		if s.spec.OnAlarm != nil {
			if err := s.spec.OnAlarm(a); err != nil {
				s.err = err
				return err
			}
		}
	}
	return nil
}

// Profiling reports whether the session is still in Stage 1.
func (s *Session) Profiling() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.profiling
}

// Profile returns the Stage-1 profile once built.
func (s *Session) Profile() (detect.Profile, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.profile, !s.profiling
}

// Alarmed reports the current alarm state (false while profiling).
func (s *Session) Alarmed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.guard != nil && s.guard.Alarmed()
}

// Alarms returns a copy of every alarm raised so far.
func (s *Session) Alarms() []detect.Alarm {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.guard == nil {
		return nil
	}
	return s.guard.Alarms()
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStats{
		VM:             s.spec.VM,
		App:            s.spec.App,
		Scheme:         s.spec.Scheme,
		Profiling:      s.profiling,
		ProfileSamples: s.profileCount,
		Monitored:      s.monitored,
		LastT:          s.lastT,
	}
	if s.guard != nil {
		st.Dropped = s.guard.Dropped()
		st.Alarms = s.emitted
		st.Alarmed = s.guard.Alarmed()
	}
	return st
}

// Close finalizes the stream. It returns the final stats, and an error when
// the stream ended before the Stage-1 window completed.
func (s *Session) Close() (SessionStats, error) {
	st := s.Stats()
	if st.Profiling {
		return st, fmt.Errorf("stream ended during the %g s profiling window (%d samples)",
			s.spec.ProfileSeconds, st.ProfileSamples)
	}
	return st, nil
}

// detectorView adapts a Session to detect.Detector so it can be registered
// in a detect.Fleet; session methods carry their own locking.
type detectorView struct{ s *Session }

func (v detectorView) Name() string           { return v.s.Name() }
func (v detectorView) Observe(smp pcm.Sample) { _ = v.s.Observe(smp) }
func (v detectorView) Alarmed() bool          { return v.s.Alarmed() }
func (v detectorView) Alarms() []detect.Alarm { return v.s.Alarms() }

// newDetector constructs the configured scheme for a completed profile.
func newDetector(spec StreamSpec, prof detect.Profile) (detect.Detector, error) {
	switch spec.Scheme {
	case "sds":
		return detect.NewSDS(prof, spec.Config)
	case "sdsb":
		return detect.NewSDSB(prof, spec.Config)
	case "sdsp":
		return detect.NewSDSP(prof, spec.Config)
	case "kstest":
		return detect.NewKSTest(spec.KSConfig, nil, spec.KSOptions...)
	case "cusum":
		return detect.NewCUSUM(prof, spec.Config)
	case "timefrag":
		return detect.NewTimeFrag(prof, spec.Config)
	case "ewmavar":
		return detect.NewEWMAVar(prof, spec.Config)
	default:
		return nil, fmt.Errorf("unknown scheme %q (want sds, sdsb, sdsp, kstest, cusum, timefrag or ewmavar)", spec.Scheme)
	}
}
