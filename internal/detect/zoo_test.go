package detect

import (
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// The detector zoo: behavioural tests for CUSUM, TimeFrag and EWMAVar, plus
// the Alarms() aliasing contract enforced across every registered scheme.

func TestCUSUMDetectsAttacks(t *testing.T) {
	for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
		t.Run(kind.String(), func(t *testing.T) {
			prof := steadyProfile(t, workload.KMeans, 91)
			d, err := NewCUSUM(prof, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			sched := attack.Schedule{Kind: kind, Start: 250, Ramp: 10}
			feed(d, genSamples(t, workload.KMeans, 92, 500, sched))
			at := firstAlarmAfter(d, sched.Start)
			if at < 0 {
				t.Fatalf("CUSUM missed a full-intensity %v attack", kind)
			}
			if delay := at - sched.Start; delay > 120 {
				t.Fatalf("CUSUM detected %v only after %.0f s", kind, delay)
			}
		})
	}
}

func TestCUSUMStatisticsCapBoundsReArm(t *testing.T) {
	prof := Profile{App: "synthetic", MeanAccess: 1000, StdAccess: 50, MeanMiss: 100, StdMiss: 5}
	d, err := NewCUSUM(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A long, hard level drop saturates the drop statistic at the cap
	// instead of growing without bound.
	for i := 0; i < 5000; i++ {
		d.ObserveMA(float64(i), 200, 100)
	}
	_, negA, _, _ := d.Statistics()
	if want := cusumCapMult * d.Interval(); negA != want {
		t.Fatalf("drop statistic = %v after sustained shift, want capped at %v", negA, want)
	}
	if !d.Alarmed() {
		t.Fatal("CUSUM not alarmed during sustained shift")
	}
	// After the shift ends the statistic must drain and the alarm clear in
	// a bounded number of windows: ~(capMult−1)·H/slack once the EWMA has
	// recovered into the slack band (≈12 windows at α=0.2), ~100 in total.
	// Without the cap, 5000 windows at z≈−16 would need tens of thousands
	// of windows to drain — that unbounded latch is what the cap prevents.
	const drain = 100
	for i := 0; i < drain; i++ {
		d.ObserveMA(float64(5000+i), 1000, 100)
	}
	if d.Alarmed() {
		t.Fatalf("CUSUM still alarmed %d windows after the shift ended", drain)
	}
}

// TestTimeFragSurvivesFragmentedAttack pins the zoo's reason for existing:
// an attacker that duty-cycles below SDS/B's consecutive-violation streak
// H_C evades the boundary scheme entirely, but TimeFrag's density count
// still crosses its threshold. The stream is synthesized at MA-window level
// so the duty cycle is exact: 15-window bursts separated by 20 in-profile
// windows. EWMA smoothing (α=0.2) keeps the signal out of range ~11 windows
// into each recovery, so SDS/B sees ≈26-violation streaks — under H_C=30 —
// while any 60-window span holds ≈44 suspicious windows, over TimeFrag's
// 30-window density threshold.
func TestTimeFragSurvivesFragmentedAttack(t *testing.T) {
	prof := Profile{App: "synthetic", MeanAccess: 1000, StdAccess: 50, MeanMiss: 100, StdMiss: 5}
	cfg := DefaultConfig()
	tf, err := NewTimeFrag(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSDSB(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HC != 30 {
		t.Fatalf("test assumes H_C = 30, Table 1 gives %d", cfg.HC)
	}

	now := 0.0
	emit := func(n int, access float64) {
		for i := 0; i < n; i++ {
			now++
			tf.ObserveMA(now, access, 100)
			sb.ObserveMA(now, access, 100)
		}
	}
	emit(100, 1000) // settle both EWMAs in profile
	for cycle := 0; cycle < 8; cycle++ {
		emit(15, 400) // burst: far below μ−kσ, but < H_C consecutive
		emit(20, 1000)
	}
	if sb.Alarmed() || sb.AlarmCount() != 0 {
		t.Fatalf("SDS/B alarmed on a sub-H_C duty cycle (count %d); fragmentation premise broken", sb.AlarmCount())
	}
	if tf.AlarmCount() == 0 {
		t.Fatal("TimeFrag missed the fragmented attack SDS/B cannot see")
	}
	// EWMA smoothing means suspicion outlasts each burst slightly; the
	// density must still have crossed the configured threshold.
	if tf.Suspicious() < tf.Need() && !tf.Alarmed() {
		t.Fatalf("TimeFrag suspicious count %d below threshold %d and not alarmed", tf.Suspicious(), tf.Need())
	}
}

func TestTimeFragQuietOnCleanTraffic(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 93)
	d, err := NewTimeFrag(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(d, genSamples(t, workload.FaceNet, 94, 500, attack.Schedule{}))
	if d.AlarmCount() != 0 {
		t.Fatalf("TimeFrag raised %d alarms on attack-free traffic", d.AlarmCount())
	}
}

func TestTimeFragDetectsSustainedAttack(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 95)
	d, err := NewTimeFrag(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := attack.Schedule{Kind: attack.BusLock, Start: 250, Ramp: 10}
	feed(d, genSamples(t, workload.KMeans, 96, 500, sched))
	if at := firstAlarmAfter(d, sched.Start); at < 0 {
		t.Fatal("TimeFrag missed a sustained bus-locking attack")
	}
}

func TestEWMAVarCalibratesThenDetects(t *testing.T) {
	prof := Profile{App: "synthetic", MeanAccess: 1000, StdAccess: 50, MeanMiss: 100, StdMiss: 5}
	d, err := NewEWMAVar(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Calibration phase: mild in-profile jitter around the mean.
	jitter := []float64{-30, 20, -10, 35, -25, 15}
	i := 0
	emit := func(n int, scale float64) {
		for j := 0; j < n; j++ {
			i++
			d.ObserveMA(float64(i), 1000+scale*jitter[i%len(jitter)], 100)
		}
	}
	emit(100, 1)
	if d.Calibrated() {
		t.Fatal("calibrated before burn-in + VarCalib windows")
	}
	emit(80, 1)
	if !d.Calibrated() {
		t.Fatal("not calibrated after burn-in + VarCalib windows")
	}
	if _, _, _, _, ok := d.VarianceBounds(); !ok {
		t.Fatal("VarianceBounds not available after calibration")
	}
	if d.AlarmCount() != 0 {
		t.Fatalf("%d alarms on calibration-like traffic", d.AlarmCount())
	}
	// Attack phase: same mean, 20× the dispersion — invisible to a pure
	// level detector, loud in the variance channel.
	emit(200, 20)
	if d.AlarmCount() == 0 {
		t.Fatal("EWMAVar missed a 20× dispersion increase")
	}
}

// TestEWMAVarQuietOnStationaryTraffic feeds a stationary Gaussian MA stream
// — the traffic class EWMAVar's self-calibration assumes. On periodic or
// phased applications its variance signal oscillates and the per-window
// violation rate approaches the Chebyshev bound (that FPR weakness is why
// it is fielded as a tournament baseline, and what the ROC sweep shows);
// on stationary traffic it must be quiet.
func TestEWMAVarQuietOnStationaryTraffic(t *testing.T) {
	prof := Profile{App: "synthetic", MeanAccess: 1000, StdAccess: 50, MeanMiss: 100, StdMiss: 5}
	d, err := NewEWMAVar(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(97, 98)
	for i := 0; i < 1000; i++ {
		d.ObserveMA(float64(i+1), r.Normal(1000, 30), r.Normal(100, 3))
	}
	windows, violations := d.ViolationStats()
	if windows == 0 {
		t.Fatal("no detection-phase windows observed")
	}
	if d.AlarmCount() != 0 {
		t.Fatalf("EWMAVar raised %d alarms on stationary traffic (violations %d/%d)",
			d.AlarmCount(), violations, windows)
	}
}

// TestAlarmsNoAliasing pins the Alarms() contract for every registered
// scheme: the returned slice is the caller's to keep, so mutating it — or
// alarms firing afterwards — must not corrupt either side. The test writes
// through the returned slice and checks the detector's next snapshot is
// unaffected (a detector returning its internal slice fails immediately).
func TestAlarmsNoAliasing(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 99)
	cfg := DefaultConfig()
	injected := Alarm{T: 1, Detector: "test", Metric: MetricAccess, Reason: "original"}

	cases := []struct {
		scheme string
		build  func(t *testing.T) (Detector, *[]Alarm)
	}{
		{"SDS/B", func(t *testing.T) (Detector, *[]Alarm) {
			d, err := NewSDSB(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d, &d.alarms
		}},
		{"SDS/P", func(t *testing.T) (Detector, *[]Alarm) {
			d, err := NewSDSP(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d, &d.alarms
		}},
		{"SDS", func(t *testing.T) (Detector, *[]Alarm) {
			d, err := NewSDS(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d, &d.alarms
		}},
		{"KStest", func(t *testing.T) (Detector, *[]Alarm) {
			d, err := NewKSTest(DefaultKSTestConfig(), nil)
			if err != nil {
				t.Fatal(err)
			}
			return d, &d.alarms
		}},
		{"CUSUM", func(t *testing.T) (Detector, *[]Alarm) {
			d, err := NewCUSUM(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d, &d.alarms
		}},
		{"TimeFrag", func(t *testing.T) (Detector, *[]Alarm) {
			d, err := NewTimeFrag(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d, &d.alarms
		}},
		{"EWMAVar", func(t *testing.T) (Detector, *[]Alarm) {
			d, err := NewEWMAVar(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d, &d.alarms
		}},
		{"Reprofiler", func(t *testing.T) (Detector, *[]Alarm) {
			r, err := NewReprofiler(workload.FaceNet, prof, cfg, 600)
			if err != nil {
				t.Fatal(err)
			}
			// Inject into the retired-generation history: the concatenated
			// view must still be aliasing-safe.
			return r, &r.history
		}},
	}
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			d, internal := tc.build(t)
			*internal = append(*internal, injected)

			got := d.Alarms()
			if len(got) != 1 || got[0].Reason != "original" {
				t.Fatalf("Alarms() = %+v, want the injected alarm", got)
			}
			got[0].Reason = "mutated by caller"
			_ = append(got, Alarm{Reason: "appended by caller"})

			if (*internal)[0].Reason != "original" {
				t.Fatalf("%s: caller mutation reached the internal slice", tc.scheme)
			}
			again := d.Alarms()
			if len(again) != 1 || again[0].Reason != "original" {
				t.Fatalf("%s: second snapshot corrupted: %+v", tc.scheme, again)
			}
		})
	}
}
