package cloudsim

import (
	"reflect"
	"testing"

	sds "github.com/memdos/sds"
	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// TestEngineReproducesLockstepSimulate is the equivalence property of the
// event-driven engine: at exact fidelity, a single-host single-VM scenario
// with one scheduled attacker reproduces the lockstep Simulate loop's
// alarms BIT-IDENTICALLY — same alarm times, metrics and reason strings —
// across the paper grid of applications, attack kinds and schemes. This is
// what licenses replacing per-sample lockstep simulation with the event
// engine everywhere else.
func TestEngineReproducesLockstepSimulate(t *testing.T) {
	const (
		seed           = 20260807
		profileSeconds = 400
		seconds        = 240
		attackStart    = 60
		attackRamp     = 10
	)
	cfg := detect.DefaultConfig()
	kinds := []attack.Kind{attack.None, attack.BusLock, attack.Cleanse}
	apps := workload.AppNames()
	if testing.Short() {
		apps = []string{workload.KMeans, workload.FaceNet}
	}

	totalAlarms := 0
	for _, app := range apps {
		for _, kind := range kinds {
			for _, scheme := range []string{"SDS", "KStest"} {
				t.Run(app+"/"+kind.String()+"/"+scheme, func(t *testing.T) {
					// Reference: the lockstep per-sample loop, built with
					// the engine's exact stream-labelling conventions.
					refDet, err := newReferenceDetector(t, scheme, app, seed, profileSeconds, cfg)
					if err != nil {
						t.Fatal(err)
					}
					model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(seed, "vm0/model"))
					if err != nil {
						t.Fatal(err)
					}
					sched := attack.Schedule{Kind: kind, Start: attackStart, Ramp: attackRamp}
					want, err := sds.Simulate(model, refDet, cfg, sds.SimulateOptions{Seconds: seconds, Attack: sched})
					if err != nil {
						t.Fatal(err)
					}

					// Event-driven engine, exact fidelity, same shape.
					sc := Scenario{
						Seed:           seed,
						Hosts:          1,
						VMsPerHost:     1,
						Seconds:        seconds,
						Fidelity:       FidelityExact,
						Apps:           []string{app},
						Scheme:         scheme,
						ProfileSeconds: profileSeconds,
						AttackStart:    attackStart,
						AttackRamp:     attackRamp,
					}
					if kind != attack.None {
						sc.Attackers = 1
						sc.AttackKind = kind.String()
					}
					e, err := newEngine(sc)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := e.run(); err != nil {
						t.Fatal(err)
					}
					got := e.vms[0].det.Alarms()
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("event engine diverges from lockstep Simulate:\n got %+v\nwant %+v", got, want)
					}
					totalAlarms += len(want)
				})
			}
		}
	}
	if totalAlarms == 0 {
		t.Fatal("equivalence vacuous: no cell raised any alarm")
	}
}

// newReferenceDetector builds the lockstep reference detector exactly as
// the engine would: same Stage-1 stream label, same configs.
func newReferenceDetector(t *testing.T, scheme, app string, seed uint64, profileSeconds float64, cfg detect.Config) (detect.Detector, error) {
	t.Helper()
	if scheme == "KStest" {
		return detect.NewKSTest(detect.DefaultKSTestConfig(), &throttleFlag{})
	}
	prof, err := stage1Profile(app, seed, profileSeconds, cfg)
	if err != nil {
		return nil, err
	}
	return detect.NewSDS(prof, cfg)
}
