// Package detect implements the paper's contribution: two lightweight
// statistical schemes for real-time detection of memory DoS attacks from
// PCM counter samples, plus the prior-work baseline they are evaluated
// against.
//
//   - SDSB (paper §4.2.1) profiles the mean μ_E and standard deviation σ_E
//     of the EWMA-smoothed counter series and raises an alarm after H_C
//     consecutive samples outside [μ_E−kσ_E, μ_E+kσ_E]; Chebyshev's
//     inequality bounds the false-alarm probability for any counter
//     distribution.
//   - SDSP (paper §4.2.2) tracks the period of the moving-average series of
//     a periodic application with a DFT+ACF estimator and raises an alarm
//     after H_P consecutive >20% period deviations.
//   - SDS combines them: SDS/B alone for non-periodic applications, the
//     conjunction of SDS/B and SDS/P for periodic ones (§5.1).
//   - KSTest is the baseline of Zhang et al. (AsiaCCS '17): it throttles
//     co-located VMs to collect attack-free reference samples and compares
//     them with monitored samples using the two-sample Kolmogorov–Smirnov
//     test.
package detect

import (
	"fmt"

	"github.com/memdos/sds/internal/pcm"
)

// Metric identifies which PCM counter a detection event concerns.
type Metric int

// The two counters of the paper: AccessNum reacts to bus locking, MissNum
// to LLC cleansing.
const (
	MetricAccess Metric = iota + 1
	MetricMiss
	MetricPeriod // SDS/P's derived period signal
)

// String returns the counter name used in the paper.
func (m Metric) String() string {
	switch m {
	case MetricAccess:
		return "AccessNum"
	case MetricMiss:
		return "MissNum"
	case MetricPeriod:
		return "Period"
	default:
		return fmt.Sprintf("detect.Metric(%d)", int(m))
	}
}

// Alarm records one rising edge of a detector's alarm state.
type Alarm struct {
	// T is the virtual time at which the alarm fired, seconds.
	T float64
	// Detector is the detector name ("SDS/B", "SDS/P", "SDS", "KStest").
	Detector string
	// Metric is the counter that triggered the alarm.
	Metric Metric
	// Reason is a human-readable explanation.
	Reason string
}

// Detector is the streaming interface every scheme implements: feed it PCM
// samples in time order and inspect its alarm state.
type Detector interface {
	// Name returns the scheme name used in reports.
	Name() string
	// Observe processes the next PCM sample.
	Observe(s pcm.Sample)
	// Alarmed reports whether the detector currently believes an attack is
	// in progress.
	Alarmed() bool
	// Alarms returns every alarm raised so far (rising edges only).
	Alarms() []Alarm
}

// WindowObserver is the window-level batch-observation contract next to
// Detector.Observe: implementations accept the moving averages M_n of the
// two counters directly, bypassing their internal averagers. The
// event-driven cloud simulator generates telemetry in closed-form ΔW-sample
// blocks and feeds detectors through this interface; SDS, SDS/B and SDS/P
// implement it (KStest does not — it consumes raw samples and is only
// available at exact fidelity). A detector must be fed through either
// Observe or ObserveMA for its whole lifetime, never a mix.
type WindowObserver interface {
	ObserveMA(t float64, maAccess, maMiss float64)
}

// AlarmCounter is the optional fast path next to Detector.Alarms: it
// reports how many alarms have been raised without copying them. Per-sample
// consumers (the server's session loop) poll the count and call Alarms()
// only when it moved, keeping the steady-state Observe path allocation-free.
type AlarmCounter interface {
	AlarmCount() int
}

// Config carries the SDS parameters of the paper's Table 1. The zero value
// is invalid; start from DefaultConfig.
type Config struct {
	// TPCM is the PCM sampling interval in seconds (Table 1: 0.01).
	TPCM float64
	// W is the moving-average window size in raw samples (Table 1: 200).
	W int
	// DW is the moving-average sliding step ΔW in raw samples (Table 1: 50).
	DW int
	// Alpha is the EWMA smoothing factor (Table 1: 0.2).
	Alpha float64
	// K is the boundary factor k of the normal range μ±kσ (Table 1: 1.125).
	K float64
	// HC is the consecutive-violation threshold H_C (Table 1: 30).
	HC int
	// WPFactor sets the SDS/P window W_P as a multiple of the profiled
	// period p (Table 1: W_P = 2·p).
	WPFactor int
	// DWP is the SDS/P sliding step ΔW_P in MA values (Table 1: 10).
	DWP int
	// HP is the consecutive-period-change threshold H_P (Table 1: 5).
	HP int
	// PeriodTolerance is the fractional period deviation that counts as a
	// change (paper: 20%).
	PeriodTolerance float64

	// The detector-zoo knobs below parameterize the non-paper schemes
	// (CUSUM, TimeFrag, EWMAVar). Zero selects the scheme's default, so
	// configs written before the zoo existed keep validating and behaving
	// identically.

	// CusumK is the CUSUM slack (reference drift) in profiled σ_E units:
	// per-window deviations within K·σ_E are absorbed before the
	// change-point statistic accumulates. Zero selects the boundary factor
	// K, tying the slack to the same Chebyshev-calibrated normal range
	// SDS/B uses.
	CusumK float64
	// CusumH is the CUSUM decision interval in σ_E units; the alarm raises
	// when either one-sided statistic reaches it. Zero selects 8.
	CusumH float64
	// FragWindow is TimeFrag's evaluation window length in MA windows.
	// Zero selects 60 (30 s at Table 1 geometry).
	FragWindow int
	// FragFrac is the fraction of suspicious windows within FragWindow
	// that raises the TimeFrag alarm. Zero selects 0.5 — the same 30
	// suspicious windows as H_C, but without the consecutiveness demand.
	FragFrac float64
	// VarBeta is EWMAVar's variance-smoothing factor. Zero selects 0.05.
	VarBeta float64
	// VarCalib is EWMAVar's self-calibration length in MA windows (the
	// leading monitored windows it learns its own variance baseline from).
	// Zero selects 100.
	VarCalib int
	// VarH is EWMAVar's consecutive-violation threshold. Zero selects 10.
	VarH int
}

// DefaultConfig returns the paper's Table 1 parameters.
func DefaultConfig() Config {
	return Config{
		TPCM:            0.01,
		W:               200,
		DW:              50,
		Alpha:           0.2,
		K:               1.125,
		HC:              30,
		WPFactor:        2,
		DWP:             10,
		HP:              5,
		PeriodTolerance: 0.2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TPCM <= 0:
		return fmt.Errorf("detect: T_PCM must be positive, got %v", c.TPCM)
	case c.W <= 0 || c.DW <= 0 || c.DW > c.W:
		return fmt.Errorf("detect: invalid MA geometry W=%d ΔW=%d", c.W, c.DW)
	case !(c.Alpha > 0 && c.Alpha <= 1):
		return fmt.Errorf("detect: EWMA α must be in (0,1], got %v", c.Alpha)
	case c.K <= 1:
		return fmt.Errorf("detect: boundary factor k must exceed 1 (Chebyshev), got %v", c.K)
	case c.HC <= 0:
		return fmt.Errorf("detect: H_C must be positive, got %d", c.HC)
	case c.WPFactor < 2:
		return fmt.Errorf("detect: W_P factor must be ≥ 2 (need two periods to estimate one), got %d", c.WPFactor)
	case c.DWP <= 0:
		return fmt.Errorf("detect: ΔW_P must be positive, got %d", c.DWP)
	case c.HP <= 0:
		return fmt.Errorf("detect: H_P must be positive, got %d", c.HP)
	case c.PeriodTolerance <= 0 || c.PeriodTolerance >= 1:
		return fmt.Errorf("detect: period tolerance must be in (0,1), got %v", c.PeriodTolerance)
	case c.CusumK < 0 || c.CusumH < 0:
		return fmt.Errorf("detect: CUSUM slack/interval must be ≥ 0 (0 = default), got k=%v H=%v", c.CusumK, c.CusumH)
	case c.FragWindow < 0 || c.FragFrac < 0 || c.FragFrac > 1:
		return fmt.Errorf("detect: TimeFrag window must be ≥ 0 and fraction in [0,1] (0 = default), got W=%d frac=%v", c.FragWindow, c.FragFrac)
	case c.VarBeta < 0 || c.VarBeta > 1 || c.VarCalib < 0 || c.VarH < 0:
		return fmt.Errorf("detect: EWMAVar β must be in [0,1] and calib/H ≥ 0 (0 = default), got β=%v calib=%d H=%d", c.VarBeta, c.VarCalib, c.VarH)
	}
	return nil
}

// cloneAlarms is the defensive copy every Alarms() implementation returns.
// The contract is uniform across the detector zoo: the returned slice is the
// caller's to keep, append to, or mutate — it must never alias the
// detector's internal history, or a caller that retains it would observe
// later rising edges appearing in (or racing with) a slice it believes is a
// point-in-time snapshot. TestAlarmsNoAliasing enforces this for every
// registered scheme.
func cloneAlarms(alarms []Alarm) []Alarm {
	out := make([]Alarm, len(alarms))
	copy(out, alarms)
	return out
}

// WindowStat is one preprocessed observation emitted by the SDS pipeline
// at each moving-average window boundary, exposed to hooks for tracing and
// figure generation.
type WindowStat struct {
	// Index is the window number n.
	Index int
	// T is the virtual time of the window's last raw sample.
	T float64
	// MAAccess and MAMiss are the moving averages M_n (Eq. 1).
	MAAccess, MAMiss float64
	// EWMAAccess and EWMAMiss are the smoothed values S_n (Eq. 2).
	EWMAAccess, EWMAMiss float64
}
