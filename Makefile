GO ?= go

.PHONY: all build test race vet bench bench-all bench-scale bench-check cover cover-check chaos goldens verify repro smoke smoke-cloudsim smoke-evasion fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l .

test:
	$(GO) test ./...

# Run the test suite under the race detector (the experiment engine fans
# detection runs out over a worker pool; this keeps it provably race-free).
race:
	$(GO) test -race ./...

# Record the PR's benchmark trajectory BENCH_PR$(BENCH_PR).json. The root
# figure benchmarks run with fixed iteration counts (they seed each iteration
# separately, so time-based -benchtime can step onto seeds outside the
# profiled regime); the hot-path microbenchmarks in feed/detect/server run
# with the default time budget for stable ns/op. When a scale run has left
# bench_scale.txt behind (make bench-scale), its sustained-throughput lines
# are merged into the same trajectory.
BENCH_PR ?= 10
BENCH_FIGURES := Table1Defaults|Fig|Sec32FalseAlarmRates|Ablation
BENCH_MICRO := MovingAveragerPush|EWMAPush|FFT|PeriodEstimat|ACFDirect|KSStatistic|KSTestObserve|CacheAccess|ModelSample|SDSObserve|CUSUMObserve|TimeFragObserve|EWMAVarObserve|StrategyIntensity
# The ns-gated microbenchmarks record -count=3; benchjson keeps the
# fastest run of each (shared-host interference is one-sided, so the
# minimum is the low-noise estimator the gate should compare).
bench:
	$(GO) test -run=NONE -bench='$(BENCH_FIGURES)' -benchmem -benchtime=10x . | tee bench_output.txt
	$(GO) test -run=NONE -bench='$(BENCH_MICRO)' -benchmem -count=3 . | tee -a bench_output.txt
	$(GO) test -run=NONE -bench=. -benchmem -count=3 ./internal/feed ./internal/detect ./internal/server | tee -a bench_output.txt
	$(GO) test -run=NONE -bench='BenchmarkCloud' -benchmem -benchtime=1x -count=3 ./internal/cloudsim | tee -a bench_output.txt
	$(GO) test -run=NONE -bench='BlockModelStep' -benchmem -count=3 ./internal/cloudsim | tee -a bench_output.txt
	$(GO) run ./cmd/benchjson -o BENCH_PR$(BENCH_PR).json bench_output.txt $(wildcard bench_scale.txt)

# The ingest scale runs: the 10k-stream throughput passes (binary + CSV
# baseline) and the 100k-stream correctness run (bounded-inflight, 2 load
# processes, alarm parity against a single-process reference); appends the
# sustained samples/sec lines to bench_scale.txt for `make bench`.
bench-scale:
	./scripts/scale_sdsload.sh

# Gate the newest trajectory against the previous one: any allocs/op
# increase, >10% ns/op regression on the tracked hot paths, or >10%
# samples/sec drop on the recorded scale runs, fails. When the only
# violations are wall-clock ones, scripts/bench_ab.sh gets the final say:
# it re-benchmarks the flagged names under the baseline commit's code and
# the working tree interleaved on the current machine, so cross-session
# machine drift (which moves non-uniformly across benchmark classes) can
# be told apart from a genuine code regression.
bench-check:
	@set -- $$(ls BENCH_PR*.json 2>/dev/null | sort -V); \
	if [ $$# -lt 2 ]; then echo "bench-check: fewer than two trajectories, nothing to gate"; exit 0; fi; \
	while [ $$# -gt 2 ]; do shift; done; \
	$(GO) run ./cmd/benchdiff -old "$$1" -new "$$2" -fail-list bench_fails.txt \
		|| ./scripts/bench_ab.sh "$$1" bench_fails.txt

# Benchmark everything (slower; no JSON emission).
bench-all:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Enforce the statement-coverage floor (CI fails below it). The floor is a
# ratchet: raise it when coverage grows, never lower it to admit a regression.
COVER_FLOOR := 70.0
cover-check:
	$(GO) test -coverprofile=cover.out ./... > /dev/null
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{sub(/%/,"",$$3); print $$3}'); \
	echo "total statement coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }'

# The fault-injection suite under the race detector: deterministic chaos
# schedules against the detection server (zero-loss drain, quarantine,
# resume, idle eviction) plus the fault layer's own tests and the sdsload
# client's failure-path tests.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject ./internal/server ./cmd/sdsload

# Regenerate every golden fixture (conformance transcripts, figure walk-
# throughs, CLI outputs). Only packages that import internal/golden register
# the -update flag, so the target lists them explicitly.
goldens:
	$(GO) test -count=1 \
		./cmd/evaluate ./cmd/sensitivity ./cmd/detectd \
		./internal/server ./internal/experiment -update

# Verify every headline claim of the paper (PASS/FAIL, nonzero exit on FAIL).
verify:
	$(GO) run ./cmd/report

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
# evaluate and sensitivity fan their run grids out over all CPUs by default
# (-parallel 0); results are bit-identical at any worker count.
repro:
	$(GO) run ./cmd/measure -all -intervals 20
	$(GO) run ./cmd/evaluate -all -runs 20 -parallel 0
	$(GO) run ./cmd/sensitivity -all -runs 10 -parallel 0

# End-to-end smoke of the sdsd deployment path: launch the server, replay
# attacked VM streams at it with sdsload, assert zero loss + alarms + drain.
smoke:
	./scripts/smoke_sdsd.sh

# End-to-end smoke of the datacenter simulation: build the cloudsim CLI,
# compare mitigation policies on a small cluster, assert a quarantine is
# scored and the JSON output is deterministic across invocations.
smoke-cloudsim:
	./scripts/smoke_cloudsim.sh

# The evasion-margin grid: run the reduced tournament through the evaluate
# CLI at two worker counts and assert byte-identical JSON (the determinism
# half of the golden fixtures' promise).
smoke-evasion:
	./scripts/smoke_evasion.sh

# Short fuzz pass over the feed parsers — CSV and the binary frame codec —
# plus the evasive-schedule composition (Intensity/MeanIntensity must stay
# finite, clamped and loop-free for arbitrary strategy knobs; one fuzzer
# counterexample is already pinned in testdata/fuzz).
fuzz-smoke:
	$(GO) test ./internal/feed -run=NONE -fuzz=FuzzParseLine -fuzztime=5s
	$(GO) test ./internal/feed -run=NONE -fuzz=FuzzReader -fuzztime=5s
	$(GO) test ./internal/feed -run=NONE -fuzz=FuzzRoundTrip -fuzztime=5s
	$(GO) test ./internal/feed -run=NONE -fuzz=FuzzBinReader -fuzztime=5s
	$(GO) test ./internal/feed -run=NONE -fuzz=FuzzBinRoundTrip -fuzztime=5s
	$(GO) test ./internal/attack -run=NONE -fuzz=FuzzStrategyIntensity -fuzztime=5s

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_scale.txt
