package detect

import (
	"fmt"
	"sort"

	"github.com/memdos/sds/internal/pcm"
)

// Fleet manages the detectors of every PROTECTED VM on one server — the
// deployment unit of the paper (§4: "SDS … will be deployed in the
// hypervisor on each server by the provider"). One PCM pass per sampling
// interval feeds each VM's sample to its own detector; the fleet exposes
// the aggregate alarm state the provider's control plane consumes.
type Fleet struct {
	detectors map[string]Detector
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{detectors: make(map[string]Detector)}
}

// Protect registers a detector for the named VM. Re-registering a name
// replaces its detector (e.g. after re-profiling).
func (f *Fleet) Protect(vm string, det Detector) error {
	if vm == "" {
		return fmt.Errorf("detect: fleet needs a VM name")
	}
	if det == nil {
		return fmt.Errorf("detect: fleet needs a detector for %q", vm)
	}
	f.detectors[vm] = det
	return nil
}

// Unprotect removes the named VM (idempotent) — e.g. after migration off
// this server.
func (f *Fleet) Unprotect(vm string) {
	delete(f.detectors, vm)
}

// Size returns the number of protected VMs.
func (f *Fleet) Size() int { return len(f.detectors) }

// Observe feeds one VM's PCM sample to its detector. Unknown VMs are an
// error: the caller's wiring is broken, not the data.
func (f *Fleet) Observe(vm string, s pcm.Sample) error {
	det, ok := f.detectors[vm]
	if !ok {
		return fmt.Errorf("detect: fleet does not protect %q", vm)
	}
	det.Observe(s)
	return nil
}

// Alarmed reports whether any protected VM is currently alarmed.
func (f *Fleet) Alarmed() bool {
	for _, det := range f.detectors {
		if det.Alarmed() {
			return true
		}
	}
	return false
}

// AlarmedVMs returns the names of currently-alarmed VMs, sorted.
func (f *Fleet) AlarmedVMs() []string {
	var out []string
	for vm, det := range f.detectors {
		if det.Alarmed() {
			out = append(out, vm)
		}
	}
	sort.Strings(out)
	return out
}

// VMAlarm pairs an alarm with the VM it concerns.
type VMAlarm struct {
	VM string
	Alarm
}

// Alarms returns every alarm raised across the fleet, ordered by time.
func (f *Fleet) Alarms() []VMAlarm {
	var out []VMAlarm
	for vm, det := range f.detectors {
		for _, a := range det.Alarms() {
			out = append(out, VMAlarm{VM: vm, Alarm: a})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].VM < out[j].VM
	})
	return out
}
