package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/memdos/sds/internal/server"
)

// startServer launches a real sdsd Server on a loopback listener.
func startServer(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	s := server.New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, l.Addr().String()
}

// testCfg is the shared flag set of the client tests: one attacked kmeans
// stream, CSV frames unless a test overrides.
func testCfg(addr, app, scheme string, retries int) config {
	return config{
		addr:           addr,
		network:        "tcp",
		app:            app,
		scheme:         scheme,
		frames:         framesCSV,
		vms:            1,
		seconds:        160,
		profileSeconds: 60,
		attackAt:       100,
		seed:           7,
		retries:        retries,
	}
}

// TestStreamVMHappyPath: a full attacked stream against a real server
// accounts every sample and reports its alarms.
func TestStreamVMHappyPath(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	res := streamVM(testCfg(addr, "kmeans", "sds", 1), "load-ok", 7, nil, nil, addr)
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.samples != res.sent || res.sent == 0 {
		t.Errorf("sent %d samples, server accounted %d", res.sent, res.samples)
	}
	if res.alarms == 0 {
		t.Error("attacked stream raised no alarms")
	}
}

// TestStreamVMRejectedHandshakeIsHardFailure is the regression test for the
// silent-success bug: when the server rejects the handshake (or closes the
// connection before replying), streamVM must fail before sending a single
// sample — previously it streamed the whole payload into a dead socket and
// the failure surfaced, if at all, only through the sample accounting.
func TestStreamVMRejectedHandshakeIsHardFailure(t *testing.T) {
	t.Run("error reply", func(t *testing.T) {
		_, addr := startServer(t, server.Options{})
		// An unknown scheme is rejected at handshake time.
		res := streamVM(testCfg(addr, "kmeans", "bogus", 1), "load-bad", 7, nil, nil, addr)
		if res.err == nil {
			t.Fatal("rejected handshake reported success")
		}
		if !strings.Contains(res.err.Error(), "rejected handshake") {
			t.Errorf("error %v does not identify the handshake rejection", res.err)
		}
		if res.sent != 0 {
			t.Errorf("streamed %d samples after a rejected handshake", res.sent)
		}
	})

	t.Run("connection closed before reply", func(t *testing.T) {
		// A listener that accepts and immediately hangs up, replying nothing.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				conn.Close()
			}
		}()
		res := streamVM(testCfg(l.Addr().String(), "kmeans", "sds", 1), "load-hup", 7, nil, nil, l.Addr().String())
		if res.err == nil {
			t.Fatal("server hang-up before handshake reply reported success")
		}
		if !strings.Contains(res.err.Error(), "handshake reply") {
			t.Errorf("error %v does not identify the short handshake read", res.err)
		}
		if res.sent != 0 {
			t.Errorf("streamed %d samples into a closed connection", res.sent)
		}
	})
}

// TestRunExpectAlarms: the run-level assertion wiring — every stream must
// meet the alarm floor or the whole run fails.
func TestRunExpectAlarms(t *testing.T) {
	if testing.Short() {
		t.Skip("replays full streams")
	}
	_, addr := startServer(t, server.Options{})
	cfg := testCfg(addr, "kmeans", "sds", 1)
	cfg.vms = 2
	cfg.expectAlarms = 1
	if err := run(cfg); err != nil {
		t.Errorf("attacked run with alarms failed: %v", err)
	}
	// No stream can meet an absurd alarm floor; the run must fail.
	cfg = testCfg(addr, "kmeans", "sds", 1)
	cfg.seconds, cfg.attackAt, cfg.seed = 120, 0, 9
	cfg.expectAlarms = 1000
	if err := run(cfg); err == nil {
		t.Error("run satisfied -expect-alarms 1000")
	}
}

// TestStreamVMBinaryFrames: the binary client path negotiates frames=bin
// and keeps the zero-loss accounting; prebuilt and on-the-fly streams of
// the same seed must account identically.
func TestStreamVMBinaryFrames(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	cfg := testCfg(addr, "kmeans", "sds", 1)
	cfg.frames = framesBin

	live := streamVM(cfg, "load-bin", 7, nil, nil, cfg.addr)
	if live.err != nil {
		t.Fatal(live.err)
	}
	if live.samples != live.sent || live.sent == 0 {
		t.Errorf("sent %d samples, server accounted %d", live.sent, live.samples)
	}
	if live.alarms == 0 {
		t.Error("attacked binary stream raised no alarms")
	}

	pre, err := renderStream(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	rendered := streamVM(cfg, "load-bin-pre", 7, &pre, nil, cfg.addr)
	if rendered.err != nil {
		t.Fatal(rendered.err)
	}
	if rendered.sent != live.sent || rendered.samples != live.samples || rendered.alarms != live.alarms {
		t.Errorf("prebuilt stream accounted (%d sent, %d samples, %d alarms), live (%d, %d, %d)",
			rendered.sent, rendered.samples, rendered.alarms, live.sent, live.samples, live.alarms)
	}
}
