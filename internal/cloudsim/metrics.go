package cloudsim

import (
	"github.com/memdos/sds/internal/metrics"
)

// Result is the end-to-end score of one datacenter run. It is fully
// deterministic for a given Scenario: the determinism tests compare
// JSON-marshalled Results byte for byte.
type Result struct {
	// Scenario echoes the scenario name and headline shape.
	Scenario string `json:"scenario,omitempty"`
	Policy   string `json:"policy"`
	Fidelity string `json:"fidelity"`
	Scheme   string `json:"scheme"`
	Hosts    int    `json:"hosts"`
	// VMs counts the long-lived benign VMs (victims included), Attackers
	// the attacker VMs, Churned the churn VMs created during the run.
	VMs       int     `json:"vms"`
	Attackers int     `json:"attackers"`
	Churned   int     `json:"churned"`
	Seconds   float64 `json:"seconds"`

	// Events is the number of discrete events applied; Blocks the number
	// of telemetry blocks generated; SamplesRepresented the raw-sample
	// equivalents those cover (blocks·ΔW at window fidelity). The ratio of
	// SamplesRepresented to wall time is the engine's headline throughput.
	Events             int64 `json:"events"`
	Blocks             int64 `json:"blocks"`
	SamplesRepresented int64 `json:"samples_represented"`

	// Detection outcomes. FalseAlarms are alarms raised on a host with no
	// active attacker.
	Alarms      int `json:"alarms"`
	TrueAlarms  int `json:"true_alarms"`
	FalseAlarms int `json:"false_alarms"`

	// Mitigation-loop outcomes. FalseMigrations are migrations executed
	// while no attacker was active on the victim's host; Absolved counts
	// throttle-stage verdicts that correctly attributed the anomaly to the
	// VM itself (no migration); Confirmed counts throttle-stage verdicts
	// that confirmed external contention. Recoveries/ReAlarms split the
	// post-migration verification watch.
	Mitigations     int `json:"mitigations"`
	Migrations      int `json:"migrations"`
	FalseMigrations int `json:"false_migrations"`
	Absolved        int `json:"absolved"`
	Confirmed       int `json:"confirmed"`
	Recoveries      int `json:"recoveries"`
	ReAlarms        int `json:"re_alarms"`

	// TimeToQuarantine summarizes, per ended attack episode, the seconds
	// from the attacker achieving co-location to the victim being migrated
	// away from it.
	TimeToQuarantine metrics.Distribution `json:"time_to_quarantine"`
	// QuarantineCount is the number of episodes ended by a migration.
	QuarantineCount int `json:"quarantine_count"`

	// VictimSlowdown and BenignSlowdown are 1 − progress/elapsed pooled
	// over the respective populations (migration downtime included).
	// VictimExposureSec is the mean intensity-seconds of attack each
	// victim absorbed.
	VictimSlowdown    float64 `json:"victim_slowdown"`
	BenignSlowdown    float64 `json:"benign_slowdown"`
	VictimExposureSec float64 `json:"victim_exposure_sec"`

	// AlarmDigest is an FNV-1a hash over every (vm, tick) alarm edge — a
	// strong per-VM determinism witness that survives in the compact
	// Result.
	AlarmDigest uint64 `json:"alarm_digest"`
}

// noteAlarm folds one alarm edge into the digest.
func (r *Result) noteAlarm(vmID int, tick int64) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := r.AlarmDigest
	if h == 0 {
		h = offset
	}
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(vmID))
	mix(uint64(tick))
	r.AlarmDigest = h
}
