package server

import (
	"bufio"
	"bytes"
	"net"
	"os"
	"strings"
	"testing"

	"github.com/memdos/sds/internal/golden"
)

// TestGoldenSDSDTranscript pins the complete wire transcript of one sdsd
// stream connection — the ok line, every inline alarm line, and the done
// summary, in order — for a fixed-seed attacked k-means stream. This is
// the server-side conformance contract: any change to the wire format, the
// session lifecycle, or the detection pipeline shows up as a line diff.
// Intentional changes regenerate with -update (make goldens).
func TestGoldenSDSDTranscript(t *testing.T) {
	var stream bytes.Buffer
	if _, err := WriteSimulatedStream(&stream, ReplaySpec{
		App: "kmeans", Seconds: 160, AttackAt: 100, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}

	_, addr := startServer(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	transcript := make(chan string, 1)
	go func() {
		var sb strings.Builder
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		transcript <- sb.String()
	}()
	if _, err := conn.Write([]byte("sds/1 vm=golden app=kmeans scheme=sds profile=60\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(stream.Bytes()); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()

	golden.AssertString(t, "testdata/golden/sdsd_transcript.txt", <-transcript)
}

// TestGoldenSDSDBinaryTranscript pins the same session as
// TestGoldenSDSDTranscript carried over binary frames. Its fixture must
// match the CSV one line-for-line after the ok line (which differs only by
// vm name and the negotiated `frames=bin` suffix) — the byte-identical
// alarm/done proof that the encoding does not leak into detection.
func TestGoldenSDSDBinaryTranscript(t *testing.T) {
	var stream bytes.Buffer
	if _, err := WriteSimulatedStreamBinary(&stream, ReplaySpec{
		App: "kmeans", Seconds: 160, AttackAt: 100, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}

	_, addr := startServer(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	transcript := make(chan string, 1)
	go func() {
		var sb strings.Builder
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		transcript <- sb.String()
	}()
	if _, err := conn.Write([]byte("sds/1 vm=golden app=kmeans scheme=sds profile=60 frames=bin\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(stream.Bytes()); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()

	got := <-transcript
	golden.AssertString(t, "testdata/golden/sdsd_transcript_bin.txt", got)

	// Cross-check against the CSV fixture: everything after the ok line is
	// byte-identical, and the ok lines differ only by the frames suffix.
	csvBytes, err := os.ReadFile("testdata/golden/sdsd_transcript.txt")
	if err != nil {
		t.Fatal(err)
	}
	csv := string(csvBytes)
	csvOK, csvRest, _ := strings.Cut(csv, "\n")
	binOK, binRest, _ := strings.Cut(got, "\n")
	if binRest != csvRest {
		t.Errorf("alarm/done lines differ between CSV and binary transcripts")
	}
	if binOK != csvOK+" frames=bin" {
		t.Errorf("ok lines: csv %q, bin %q — want same + \" frames=bin\"", csvOK, binOK)
	}
}
