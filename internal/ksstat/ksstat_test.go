package ksstat

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
)

func TestStatisticKnownValues(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"disjoint", []float64{1, 2, 3}, []float64{10, 11, 12}, 1},
		{"half overlap", []float64{1, 2}, []float64{2, 3}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Statistic(tt.a, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("D = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStatisticErrors(t *testing.T) {
	if _, err := Statistic(nil, []float64{1}); err == nil {
		t.Error("empty a accepted")
	}
	if _, err := Statistic([]float64{1}, nil); err == nil {
		t.Error("empty b accepted")
	}
}

func TestStatisticProperties(t *testing.T) {
	r := randx.New(1, 2)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw)%50 + 1
		m := int(mRaw)%50 + 1
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = r.Normal(0, 1)
		}
		for i := range b {
			b[i] = r.Normal(0.5, 1.5)
		}
		dab, err1 := Statistic(a, b)
		dba, err2 := Statistic(b, a)
		daa, err3 := Statistic(a, a)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		// Range, symmetry, identity.
		return dab >= 0 && dab <= 1 && math.Abs(dab-dba) < 1e-12 && daa == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatisticShiftMonotonicity(t *testing.T) {
	// Growing the location shift between two Gaussian samples must not
	// shrink D (checked on expectation with a fixed base sample).
	r := randx.New(3, 4)
	const n = 400
	base := make([]float64, n)
	for i := range base {
		base[i] = r.Normal(0, 1)
	}
	prev := -1.0
	for _, shift := range []float64{0, 0.5, 1, 2, 4} {
		shifted := make([]float64, n)
		for i := range shifted {
			shifted[i] = base[i] + shift
		}
		d, err := Statistic(base, shifted)
		if err != nil {
			t.Fatal(err)
		}
		if d < prev-1e-9 {
			t.Fatalf("D decreased from %v to %v at shift %v", prev, d, shift)
		}
		prev = d
	}
}

func TestPValueRange(t *testing.T) {
	for _, d := range []float64{0, 0.1, 0.3, 0.5, 1} {
		p := PValue(d, 100, 100)
		if p < 0 || p > 1 {
			t.Fatalf("PValue(%v) = %v out of range", d, p)
		}
	}
	if p := PValue(0, 100, 100); p < 0.999 {
		t.Fatalf("PValue(0) = %v, want ~1", p)
	}
	if p := PValue(1, 100, 100); p > 1e-6 {
		t.Fatalf("PValue(1) = %v, want ~0", p)
	}
	if p := PValue(0.5, 0, 10); p != 1 {
		t.Fatalf("PValue with n=0 = %v, want 1", p)
	}
}

func TestPValueMonotoneInD(t *testing.T) {
	prev := 2.0
	for d := 0.0; d <= 1.0; d += 0.02 {
		p := PValue(d, 100, 100)
		if p > prev+1e-12 {
			t.Fatalf("p-value increased at D=%v", d)
		}
		prev = p
	}
}

func TestRejectSameDistribution(t *testing.T) {
	// At alpha = 0.05, samples from the same distribution should be
	// rejected roughly 5% of the time.
	r := randx.New(5, 6)
	const trials = 400
	rejections := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 100)
		b := make([]float64, 100)
		for i := range a {
			a[i] = r.Normal(10, 2)
			b[i] = r.Normal(10, 2)
		}
		rej, err := Reject(a, b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if rej {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.10 {
		t.Fatalf("false rejection rate %v, want ≲ 0.05", rate)
	}
}

func TestRejectShiftedDistribution(t *testing.T) {
	r := randx.New(7, 8)
	const trials = 100
	detections := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 100)
		b := make([]float64, 100)
		for i := range a {
			a[i] = r.Normal(10, 2)
			b[i] = r.Normal(12, 2) // one-sigma shift
		}
		rej, err := Reject(a, b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if rej {
			detections++
		}
	}
	if rate := float64(detections) / trials; rate < 0.8 {
		t.Fatalf("detection rate %v for a 1σ shift, want ≥ 0.8", rate)
	}
}

func TestCriticalValue(t *testing.T) {
	// For n=m=100 at alpha=0.05 the classical critical value is
	// 1.358*sqrt(2/100) ≈ 0.192.
	got := CriticalValue(0.05, 100, 100)
	if math.Abs(got-0.192) > 0.002 {
		t.Fatalf("critical value = %v, want ≈0.192", got)
	}
	if !math.IsNaN(CriticalValue(0.05, 0, 100)) {
		t.Error("invalid n accepted")
	}
	if !math.IsNaN(CriticalValue(1.5, 100, 100)) {
		t.Error("invalid alpha accepted")
	}
}

func TestCriticalValueConsistentWithPValue(t *testing.T) {
	// D slightly above the critical value should have p < alpha, slightly
	// below should have p > alpha (asymptotic approximations differ a bit,
	// so test with a margin).
	const alpha = 0.05
	dc := CriticalValue(alpha, 200, 200)
	if p := PValue(dc*1.1, 200, 200); p >= alpha {
		t.Fatalf("p above critical = %v, want < %v", p, alpha)
	}
	if p := PValue(dc*0.9, 200, 200); p <= alpha {
		t.Fatalf("p below critical = %v, want > %v", p, alpha)
	}
}

// TestStatisticEdgeCases is the table-driven boundary sweep: tied samples,
// single- and two-sample windows, all-equal windows, and unequal lengths —
// the degenerate shapes a live detector window can take right after the
// profile boundary or during a stalled stream.
func TestStatisticEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical n=1", []float64{5}, []float64{5}, 0},
		{"disjoint n=1", []float64{1}, []float64{2}, 1},
		{"n=1 vs n=2 straddling", []float64{2}, []float64{1, 3}, 0.5},
		{"identical n=2", []float64{1, 2}, []float64{1, 2}, 0},
		{"disjoint n=2", []float64{1, 2}, []float64{3, 4}, 1},
		{"all-equal windows same value", []float64{7, 7, 7}, []float64{7, 7, 7, 7}, 0},
		{"all-equal windows different value", []float64{7, 7, 7}, []float64{8, 8}, 1},
		{"heavy ties across both", []float64{1, 1, 2, 2}, []float64{1, 2, 2, 2}, 0.25},
		{"ties at the supremum", []float64{1, 1, 1, 2}, []float64{1, 2, 2, 2}, 0.5},
		{"unequal lengths identical support", []float64{1, 2, 3, 4, 5, 6}, []float64{1, 3, 5}, 1.0 / 6},
		{"singleton inside long run", []float64{3}, []float64{1, 2, 3, 4, 5}, 0.4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Statistic(tt.a, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("D(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			// Symmetry must hold on every edge shape.
			rev, err := Statistic(tt.b, tt.a)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-rev) > 1e-12 {
				t.Errorf("D asymmetric: %v vs %v", got, rev)
			}
			// The sorted fast path must agree with the allocating one.
			sa, sb := sortedCopy(tt.a), sortedCopy(tt.b)
			fast, err := StatisticSorted(sa, sb)
			if err != nil {
				t.Fatal(err)
			}
			if fast != got {
				t.Errorf("StatisticSorted = %v, Statistic = %v", fast, got)
			}
		})
	}
}

// TestRejectEdgeCases: tiny and degenerate windows never reject at any
// reasonable level — n=1 and n=2 carry too little evidence even when the
// samples are disjoint — and empty windows error rather than decide.
func TestRejectEdgeCases(t *testing.T) {
	for _, tt := range []struct {
		name string
		a, b []float64
	}{
		{"disjoint n=1", []float64{1}, []float64{100}},
		{"disjoint n=2", []float64{1, 2}, []float64{100, 200}},
		{"all-equal vs all-equal", []float64{5, 5}, []float64{9, 9}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			reject, err := Reject(tt.a, tt.b, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if reject {
				t.Errorf("rejected with %d vs %d samples — too little evidence", len(tt.a), len(tt.b))
			}
		})
	}
	if _, err := Reject(nil, []float64{1}, 0.05); err == nil {
		t.Error("empty window decided instead of erroring")
	}
	if _, err := Reject([]float64{1}, []float64{}, 0.05); err == nil {
		t.Error("empty window decided instead of erroring")
	}
}
