package cloudsim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/workload"
)

// Telemetry fidelities.
const (
	// FidelityWindow generates telemetry in closed-form ΔW-sample blocks —
	// the fast path for cluster-scale runs.
	FidelityWindow = "window"
	// FidelityExact advances monitored VMs sample by sample, bit-identical
	// to the lockstep Simulate loop.
	FidelityExact = "exact"
)

// Placement policies for churn arrivals and migration targets.
const (
	PlaceLeastLoaded = "least-loaded"
	PlaceRandom      = "random"
	PlaceFirstFit    = "first-fit"
)

// Mitigation policies.
const (
	// PolicyNone never reacts to alarms (detection-only baseline).
	PolicyNone = "none"
	// PolicyMigrate migrates the alarmed victim immediately after the
	// reaction delay.
	PolicyMigrate = "migrate"
	// PolicyThrottleMigrate first throttles the victim's co-residents; if
	// the detector recovers, the contention was external and the victim is
	// migrated; if it stays alarmed, the anomaly is intrinsic and the alarm
	// is absolved without a migration.
	PolicyThrottleMigrate = "throttle-migrate"
)

// Attack kind selectors (AttackKindMixed alternates per attacker index).
const (
	AttackBusLock = "bus-locking"
	AttackCleanse = "llc-cleansing"
	AttackMixed   = "mixed"
)

// Mitigation configures the provider's closed response loop.
type Mitigation struct {
	// Policy selects the response strategy (PolicyNone default).
	Policy string `json:"policy,omitempty"`
	// ReactionDelay is the seconds between an alarm and the provider's
	// first action (default 1).
	ReactionDelay float64 `json:"reaction_delay,omitempty"`
	// ThrottleSeconds is the length of the throttle verification stage
	// under PolicyThrottleMigrate (default 10).
	ThrottleSeconds float64 `json:"throttle_seconds,omitempty"`
	// VerifySeconds is the post-migration watch: a fresh alarm within it
	// counts the migration as a failed recovery (default 30).
	VerifySeconds float64 `json:"verify_seconds,omitempty"`
	// MigrationPause is the victim's downtime during a live migration
	// (default 2).
	MigrationPause float64 `json:"migration_pause,omitempty"`
}

// Scenario describes one datacenter run. The zero value of most fields
// selects a sensible default (see withDefaults); Hosts is mandatory.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Seed drives every random choice; equal seeds reproduce runs exactly.
	Seed uint64 `json:"seed"`
	// Hosts is the number of simulated hosts (sockets).
	Hosts int `json:"hosts"`
	// VMsPerHost is the number of long-lived benign VMs started on each
	// host (default 8). The first VM of every host is its designated
	// victim: always monitored, and the unit attackers target.
	VMsPerHost int `json:"vms_per_host"`
	// Seconds is the virtual run duration (default 900).
	Seconds float64 `json:"seconds"`
	// Fidelity selects the telemetry substrate (default FidelityWindow).
	Fidelity string `json:"fidelity,omitempty"`
	// Apps cycles over the initial VMs (default: all ten paper apps).
	Apps []string `json:"apps,omitempty"`
	// Scheme is the detection scheme of monitored VMs: "SDS", "SDS/B",
	// "SDS/P", "CUSUM", "TimeFrag", "EWMAVar", "KStest" (exact fidelity
	// only) or "none" (default "SDS").
	Scheme string `json:"scheme,omitempty"`
	// MonitorAll monitors every benign VM, not just each host's victim.
	MonitorAll bool `json:"monitor_all,omitempty"`
	// ProfileSeconds is the Stage-1 attack-free profiling duration per
	// application (default 2000, shared across VMs running the same app).
	ProfileSeconds float64 `json:"profile_seconds,omitempty"`

	// Attackers is the number of attacker VMs in the cluster.
	Attackers int `json:"attackers,omitempty"`
	// AttackKind selects their attack (default AttackMixed).
	AttackKind string `json:"attack_kind,omitempty"`
	// AttackStrategy selects the attackers' evasive strategy by name
	// (attack.StrategyNames; default "steady"). Strategies are tuned per
	// placement against the configured detector geometry and the target
	// victim's profiled period.
	AttackStrategy string `json:"attack_strategy,omitempty"`
	// AttackStart is the virtual time of the first co-location (default 60).
	AttackStart float64 `json:"attack_start,omitempty"`
	// AttackRamp fixes the attacker ramp-up; 0 draws it per placement from
	// [RampMin, RampMax].
	AttackRamp float64 `json:"attack_ramp,omitempty"`
	// RampMin and RampMax bound the randomized ramp draw (default 8, 18).
	RampMin float64 `json:"ramp_min,omitempty"`
	RampMax float64 `json:"ramp_max,omitempty"`
	// RelocateMean is the mean delay before a displaced attacker re-locates
	// its target and achieves co-location again (default 120).
	RelocateMean float64 `json:"relocate_mean,omitempty"`
	// DwellMean, when positive, makes attackers run campaigns: after an
	// exponential dwell they abandon the host and move on to another victim.
	DwellMean float64 `json:"dwell_mean,omitempty"`

	// Placement selects where churn arrivals and migrated victims land
	// (default PlaceLeastLoaded).
	Placement string `json:"placement,omitempty"`

	// ChurnArrivalsPerMin is the benign VM arrival rate (0 disables churn).
	ChurnArrivalsPerMin float64 `json:"churn_arrivals_per_min,omitempty"`
	// ChurnLifetimeMean is the mean lifetime of a churn VM (default 300).
	ChurnLifetimeMean float64 `json:"churn_lifetime_mean,omitempty"`

	// Mitigation configures the provider's response loop.
	Mitigation Mitigation `json:"mitigation"`

	// Detect carries the SDS parameters; the zero value means the paper's
	// Table 1 defaults. Not part of scenario files.
	Detect detect.Config `json:"-"`
	// KSTest carries the baseline parameters for Scheme "KStest"; the zero
	// value means defaults. Not part of scenario files.
	KSTest detect.KSTestConfig `json:"-"`
}

// withDefaults fills unset fields with their documented defaults.
func (s Scenario) withDefaults() Scenario {
	if s.VMsPerHost == 0 {
		s.VMsPerHost = 8
	}
	if s.Seconds == 0 {
		s.Seconds = 900
	}
	if s.Fidelity == "" {
		s.Fidelity = FidelityWindow
	}
	if len(s.Apps) == 0 {
		s.Apps = workload.AppNames()
	}
	if s.Scheme == "" {
		s.Scheme = "SDS"
	}
	if s.ProfileSeconds == 0 {
		s.ProfileSeconds = 2000
	}
	if s.AttackKind == "" {
		s.AttackKind = AttackMixed
	}
	if s.AttackStart == 0 {
		s.AttackStart = 60
	}
	if s.RampMin == 0 && s.RampMax == 0 {
		s.RampMin, s.RampMax = 8, 18
	}
	if s.RelocateMean == 0 {
		s.RelocateMean = 120
	}
	if s.Placement == "" {
		s.Placement = PlaceLeastLoaded
	}
	if s.ChurnLifetimeMean == 0 {
		s.ChurnLifetimeMean = 300
	}
	if s.Mitigation.Policy == "" {
		s.Mitigation.Policy = PolicyNone
	}
	if s.Mitigation.ReactionDelay == 0 {
		s.Mitigation.ReactionDelay = 1
	}
	if s.Mitigation.ThrottleSeconds == 0 {
		s.Mitigation.ThrottleSeconds = 10
	}
	if s.Mitigation.VerifySeconds == 0 {
		s.Mitigation.VerifySeconds = 30
	}
	if s.Mitigation.MigrationPause == 0 {
		s.Mitigation.MigrationPause = 2
	}
	if s.Detect.TPCM == 0 {
		s.Detect = detect.DefaultConfig()
	}
	if s.KSTest.TPCM == 0 {
		s.KSTest = detect.DefaultKSTestConfig()
	}
	return s
}

// validate reports scenario errors. It expects defaults to be filled.
func (s Scenario) validate() error {
	switch {
	case s.Hosts <= 0:
		return fmt.Errorf("cloudsim: Hosts must be positive, got %d", s.Hosts)
	case s.VMsPerHost <= 0:
		return fmt.Errorf("cloudsim: VMsPerHost must be positive, got %d", s.VMsPerHost)
	case s.Seconds <= 0:
		return fmt.Errorf("cloudsim: Seconds must be positive, got %v", s.Seconds)
	case s.Attackers < 0:
		return fmt.Errorf("cloudsim: Attackers must be ≥ 0, got %d", s.Attackers)
	case s.ProfileSeconds <= 0:
		return fmt.Errorf("cloudsim: ProfileSeconds must be positive, got %v", s.ProfileSeconds)
	case s.RampMax < s.RampMin || s.RampMin < 0:
		return fmt.Errorf("cloudsim: bad ramp range [%v, %v]", s.RampMin, s.RampMax)
	case s.RelocateMean <= 0:
		return fmt.Errorf("cloudsim: RelocateMean must be positive, got %v", s.RelocateMean)
	case s.DwellMean < 0:
		return fmt.Errorf("cloudsim: DwellMean must be ≥ 0, got %v", s.DwellMean)
	case s.ChurnArrivalsPerMin < 0 || s.ChurnLifetimeMean <= 0:
		return fmt.Errorf("cloudsim: bad churn parameters (%v/min, %vs lifetime)",
			s.ChurnArrivalsPerMin, s.ChurnLifetimeMean)
	case s.Mitigation.ReactionDelay < 0 || s.Mitigation.ThrottleSeconds <= 0 ||
		s.Mitigation.VerifySeconds <= 0 || s.Mitigation.MigrationPause < 0:
		return fmt.Errorf("cloudsim: bad mitigation timings %+v", s.Mitigation)
	}
	switch s.Fidelity {
	case FidelityWindow, FidelityExact:
	default:
		return fmt.Errorf("cloudsim: unknown fidelity %q", s.Fidelity)
	}
	switch s.Scheme {
	case "SDS", "SDS/B", "SDS/P", "CUSUM", "TimeFrag", "EWMAVar", "KStest", "none":
	default:
		return fmt.Errorf("cloudsim: unknown scheme %q", s.Scheme)
	}
	switch s.Placement {
	case PlaceLeastLoaded, PlaceRandom, PlaceFirstFit:
	default:
		return fmt.Errorf("cloudsim: unknown placement policy %q", s.Placement)
	}
	switch s.Mitigation.Policy {
	case PolicyNone, PolicyMigrate, PolicyThrottleMigrate:
	default:
		return fmt.Errorf("cloudsim: unknown mitigation policy %q", s.Mitigation.Policy)
	}
	switch s.AttackKind {
	case AttackBusLock, AttackCleanse, AttackMixed:
	default:
		return fmt.Errorf("cloudsim: unknown attack kind %q", s.AttackKind)
	}
	if _, err := attack.NamedStrategy(s.AttackStrategy, attack.StrategyParams{}); err != nil {
		return err
	}
	if err := s.Detect.Validate(); err != nil {
		return err
	}
	if s.Scheme == "KStest" {
		if s.Fidelity != FidelityExact {
			return fmt.Errorf("cloudsim: the KStest baseline consumes raw samples and needs %q fidelity", FidelityExact)
		}
		if err := s.KSTest.Validate(); err != nil {
			return err
		}
	}
	if s.Mitigation.Policy != PolicyNone && s.Scheme == "none" {
		return fmt.Errorf("cloudsim: mitigation policy %q needs a detection scheme", s.Mitigation.Policy)
	}
	for _, app := range s.Apps {
		if _, err := workload.AppProfile(app); err != nil {
			return err
		}
	}
	if s.Fidelity == FidelityWindow {
		if s.Detect.W%s.Detect.DW != 0 {
			return fmt.Errorf("cloudsim: %s fidelity needs W (%d) divisible by ΔW (%d)",
				FidelityWindow, s.Detect.W, s.Detect.DW)
		}
		n := pcm.SampleCount(s.Seconds, s.Detect.TPCM)
		if n%s.Detect.DW != 0 {
			return fmt.Errorf("cloudsim: %s fidelity needs the horizon (%d samples) divisible by ΔW (%d)",
				FidelityWindow, n, s.Detect.DW)
		}
	}
	return nil
}

// ParseScenario decodes a scenario file. Unknown fields are rejected so a
// typo in a scenario file fails loudly instead of silently running defaults.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("cloudsim: parse scenario: %w", err)
	}
	return s, nil
}
