package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// InterferenceResult is the outcome of the §6 broader-impact study: the
// paper notes that even all-benign co-located VMs can degrade each other
// through the shared memory hierarchy, and that SDS's ideas apply there too
// — the provider detects the interference and responds (e.g. migrates).
// This study places a heavy but *benign* neighbour next to the protected
// VM on the micro-architectural simulator and checks that SDS/B flags the
// contention from the victim's counters alone.
type InterferenceResult struct {
	App string
	// Detected reports whether SDS/B flagged the interference.
	Detected bool
	// Delay is seconds from the neighbour's arrival to the alarm
	// (micro-scale; negative when undetected).
	Delay float64
	// MissRateBefore and MissRateDuring are the victim's LLC miss rates
	// without and with the noisy neighbour.
	MissRateBefore, MissRateDuring float64
}

// InterferenceStudy runs the benign-interference scenario for one
// application at micro scale: 60 s profiling, 30 s quiet monitoring, then a
// cache-hungry benign neighbour (a large streaming scan — think a backup or
// analytics job, not an attacker) lands on the machine.
func (mc MicroConfig) InterferenceStudy() (InterferenceResult, error) {
	cfg := mc.withDefaults()
	res := InterferenceResult{App: cfg.App, Delay: -1}

	// Stage 1: profile without the neighbour.
	profCfg := cfg
	profCfg.AttackKind = attack.None
	profMachine, profVictim, err := buildMicroMachine(profCfg, 0)
	if err != nil {
		return res, err
	}
	profMonitor, err := newVictimMonitor(profMachine, profVictim, cfg.Detect.TPCM)
	if err != nil {
		return res, err
	}
	profSamples, err := collectMicroSamples(profMachine, profVictim, profMonitor, cfg.ProfileSeconds)
	if err != nil {
		return res, err
	}
	prof, err := detect.BuildProfile(cfg.App, profSamples, cfg.Detect)
	if err != nil {
		return res, err
	}
	det, err := detect.NewSDSB(prof, cfg.Detect)
	if err != nil {
		return res, err
	}

	// Live machine: same placement plus a pending noisy neighbour.
	arriveAt := cfg.StageSeconds
	liveCfg := cfg
	liveCfg.AttackKind = attack.None
	m, victim, err := buildMicroMachine(liveCfg, 0)
	if err != nil {
		return res, err
	}
	neighbour, err := newNoisyNeighbour(arriveAt, randx.Derive(cfg.Seed, 230))
	if err != nil {
		return res, err
	}
	if _, err := m.AddVM(neighbour.Name(), neighbour); err != nil {
		return res, err
	}
	monitor, err := newVictimMonitor(m, victim, cfg.Detect.TPCM)
	if err != nil {
		return res, err
	}

	statsAt := func() (accesses, misses uint64, err error) {
		st, err := m.CacheStats(victim.ID())
		if err != nil {
			return 0, 0, err
		}
		return st.Accesses, st.Misses, nil
	}

	samples, err := collectMicroSamples(m, victim, monitor, arriveAt)
	if err != nil {
		return res, err
	}
	quietAccess, quietMiss, err := statsAt()
	if err != nil {
		return res, err
	}
	rest, err := collectMicroSamples(m, victim, monitor, 2*cfg.StageSeconds)
	if err != nil {
		return res, err
	}
	samples = append(samples, rest...)
	totalAccess, totalMiss, err := statsAt()
	if err != nil {
		return res, err
	}
	if quietAccess > 0 {
		res.MissRateBefore = float64(quietMiss) / float64(quietAccess)
	}
	if totalAccess > quietAccess {
		res.MissRateDuring = float64(totalMiss-quietMiss) / float64(totalAccess-quietAccess)
	}

	for _, s := range samples {
		wasAlarmed := det.Alarmed()
		det.Observe(s)
		if s.T >= arriveAt && det.Alarmed() && !res.Detected {
			res.Detected = true
			if !wasAlarmed {
				res.Delay = s.T - arriveAt
			}
		}
	}
	return res, nil
}

// newNoisyNeighbour builds the benign heavy workload: a streaming scan over
// a working set far larger than the LLC, arriving at the given time. It
// thrashes the shared cache exactly as a backup or big analytics job would.
type noisyNeighbour struct {
	inner *workload.Loop
	start float64
	now   float64
}

func newNoisyNeighbour(start float64, rng *randx.Rand) (*noisyNeighbour, error) {
	// 8 MiB working set against a 1 MiB LLC, high demand.
	inner, err := workload.NewLoop("noisy-neighbour", 1<<40, 8<<20, 1.2e5, rng)
	if err != nil {
		return nil, err
	}
	return &noisyNeighbour{inner: inner, start: start}, nil
}

func (n *noisyNeighbour) Name() string { return n.inner.Name() }

func (n *noisyNeighbour) Demand(dt float64) (int, float64) {
	n.now += dt
	if n.now < n.start {
		return 0, 0
	}
	return n.inner.Demand(dt)
}

func (n *noisyNeighbour) Issue(granted int, c *cachesim.Cache, owner cachesim.Owner) {
	n.inner.Issue(granted, c, owner)
}

// InterferenceStudyAll runs the study for the given applications (all when
// empty).
func (mc MicroConfig) InterferenceStudyAll(apps []string) ([]InterferenceResult, error) {
	if len(apps) == 0 {
		apps = workload.AppNames()
	}
	out := make([]InterferenceResult, 0, len(apps))
	for _, app := range apps {
		cfg := mc
		cfg.App = app
		r, err := cfg.InterferenceStudy()
		if err != nil {
			return nil, fmt.Errorf("interference %s: %w", app, err)
		}
		out = append(out, r)
	}
	return out, nil
}
