package detect

import (
	"strings"
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// genSamples produces PCM samples from an application telemetry model under
// an attack schedule. Stage-1 profiles come from a schedule of Kind None.
func genSamples(t *testing.T, app string, seed uint64, seconds float64, sched attack.Schedule) []pcm.Sample {
	t.Helper()
	model, err := workload.NewModel(workload.MustAppProfile(app), randx.DeriveString(seed, app))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	n := int(seconds / cfg.TPCM)
	out := make([]pcm.Sample, n)
	for i := 0; i < n; i++ {
		now := float64(i+1) * cfg.TPCM
		a, m := model.Sample(cfg.TPCM, sched.Env(now, false))
		out[i] = pcm.Sample{T: now, Access: a, Miss: m}
	}
	return out
}

// steadyProfile returns a Stage-1 profile for the app built from 900 s of
// attack-free telemetry — long enough to cover several execution phases of
// every modelled application.
func steadyProfile(t *testing.T, app string, seed uint64) Profile {
	t.Helper()
	prof, err := BuildProfile(app, genSamples(t, app, seed, 900, attack.Schedule{}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func feed(d Detector, samples []pcm.Sample) {
	for _, s := range samples {
		d.Observe(s)
	}
}

// firstAlarmTime returns the time of the first alarm, or -1.
func firstAlarmTime(d Detector) float64 {
	alarms := d.Alarms()
	if len(alarms) == 0 {
		return -1
	}
	return alarms[0].T
}

// firstAlarmAfter returns the time of the first alarm at or after t0, or -1.
// Rare pre-attack false alarms are part of the model (the paper's SDS
// specificity is 90–100%, not 100%), so attack-detection tests anchor on
// the attack start.
func firstAlarmAfter(d Detector, t0 float64) float64 {
	for _, a := range d.Alarms() {
		if a.T >= t0 {
			return a.T
		}
	}
	return -1
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero tpcm", func(c *Config) { c.TPCM = 0 }},
		{"bad window", func(c *Config) { c.DW = c.W + 1 }},
		{"alpha too big", func(c *Config) { c.Alpha = 1.5 }},
		{"k not above 1", func(c *Config) { c.K = 1 }},
		{"zero HC", func(c *Config) { c.HC = 0 }},
		{"WP factor 1", func(c *Config) { c.WPFactor = 1 }},
		{"zero DWP", func(c *Config) { c.DWP = 0 }},
		{"zero HP", func(c *Config) { c.HP = 0 }},
		{"tolerance 1", func(c *Config) { c.PeriodTolerance = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestMetricString(t *testing.T) {
	if MetricAccess.String() != "AccessNum" || MetricMiss.String() != "MissNum" || MetricPeriod.String() != "Period" {
		t.Error("bad metric names")
	}
	if !strings.Contains(Metric(9).String(), "9") {
		t.Error("unknown metric string")
	}
}

func TestChebyshevHCPaperValues(t *testing.T) {
	// Table 1: k=1.125 at 99.9% confidence gives H_C=30.
	hc, err := ChebyshevHC(1.125, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if hc != 30 {
		t.Fatalf("ChebyshevHC(1.125, 0.999) = %d, want 30", hc)
	}
	// §4.2.1 also cites k=2, H_C=6 as an option; the minimal H_C is 5.
	hc, err = ChebyshevHC(2, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if hc != 5 {
		t.Fatalf("ChebyshevHC(2, 0.999) = %d, want 5", hc)
	}
}

func TestChebyshevHCMeetsBound(t *testing.T) {
	for _, k := range []float64{1.05, 1.125, 1.3, 1.5, 2, 3} {
		for _, conf := range []float64{0.99, 0.999, 0.9999} {
			hc, err := ChebyshevHC(k, conf)
			if err != nil {
				t.Fatal(err)
			}
			bound, err := ChebyshevFalseAlarmBound(k, hc)
			if err != nil {
				t.Fatal(err)
			}
			if bound > 1-conf+1e-12 {
				t.Errorf("k=%v conf=%v: H_C=%d bound %v exceeds %v", k, conf, hc, bound, 1-conf)
			}
			if hc > 1 {
				looser, _ := ChebyshevFalseAlarmBound(k, hc-1)
				if looser <= 1-conf {
					t.Errorf("k=%v conf=%v: H_C=%d not minimal", k, conf, hc)
				}
			}
		}
	}
}

func TestChebyshevErrors(t *testing.T) {
	if _, err := ChebyshevHC(1, 0.999); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := ChebyshevHC(2, 1); err == nil {
		t.Error("confidence=1 accepted")
	}
	if _, err := ChebyshevFalseAlarmBound(0.5, 3); err == nil {
		t.Error("k<1 accepted")
	}
	if _, err := ChebyshevFalseAlarmBound(2, 0); err == nil {
		t.Error("hc=0 accepted")
	}
}

func TestBuildProfileBasics(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 1)
	base := workload.MustAppProfile(workload.KMeans).BaseAccess
	if prof.MeanAccess < 0.7*base || prof.MeanAccess > 1.3*base {
		t.Fatalf("profiled mean %v far from base %v", prof.MeanAccess, base)
	}
	if prof.StdAccess <= 0 || prof.StdMiss <= 0 {
		t.Fatalf("profiled σ not positive: %+v", prof)
	}
	if prof.Periodic {
		t.Fatal("k-means profiled as periodic")
	}
	if prof.Windows < 100 {
		t.Fatalf("too few windows: %d", prof.Windows)
	}
}

func TestBuildProfileDetectsFaceNetPeriod(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 2)
	if !prof.Periodic {
		t.Fatal("FaceNet not detected as periodic")
	}
	// The paper's Fig. 8: FaceNet period ≈ 17 MA windows
	// (8.5 s / (ΔW·T_PCM) = 8.5/0.5 = 17).
	if prof.PeriodMA < 14 || prof.PeriodMA > 20 {
		t.Fatalf("FaceNet MA period = %d, want ≈17", prof.PeriodMA)
	}
}

func TestBuildProfileDetectsPCAPeriod(t *testing.T) {
	prof := steadyProfile(t, workload.PCA, 3)
	if !prof.Periodic {
		t.Fatal("PCA not detected as periodic")
	}
	if prof.PeriodMA < 10 || prof.PeriodMA > 15 {
		t.Fatalf("PCA MA period = %d, want ≈12", prof.PeriodMA)
	}
}

func TestBuildProfileTooFewSamples(t *testing.T) {
	if _, err := BuildProfile("x", genSamples(t, workload.Bayes, 4, 5, attack.Schedule{}), DefaultConfig()); err == nil {
		t.Fatal("short profile accepted")
	}
}

func TestProfileBounds(t *testing.T) {
	prof := Profile{MeanAccess: 100, StdAccess: 10, MeanMiss: 20, StdMiss: 2}
	lo, hi, err := prof.Bounds(MetricAccess, 1.5)
	if err != nil || lo != 85 || hi != 115 {
		t.Fatalf("access bounds = (%v, %v, %v)", lo, hi, err)
	}
	if _, _, err := prof.Bounds(MetricPeriod, 1.5); err == nil {
		t.Error("period bounds accepted")
	}
}
