// Command sdsload replays N simulated VM telemetry streams against a
// running sdsd and reports aggregate throughput — a load generator and
// smoke-test client in one.
//
// Each simulated VM reuses the `detectd -record` replay path (same app
// models, same attack schedules, deterministic per-VM seeds), so a given
// flag set always produces the same streams. With -attack-at every VM
// comes under attack mid-stream and -expect-alarms turns the run into an
// assertion: the exit status is non-zero when any stream loses samples or
// raises fewer alarms than expected.
//
//	# 32 clean VM streams
//	sdsload -addr 127.0.0.1:7031 -vms 32 -seconds 120 -profile-seconds 60
//
//	# attacked streams; fail unless every VM alarms
//	sdsload -addr 127.0.0.1:7031 -vms 8 -seconds 180 -profile-seconds 60 \
//	        -attack-at 120 -expect-alarms 1
//
//	# 10k binary-frame streams, pre-rendered so the measured window is
//	# pure ingest; emit a go-bench line for benchjson
//	sdsload -addr 127.0.0.1:7031 -vms 10000 -seconds 30 -profile-seconds 15 \
//	        -frames bin -prebuild -bench-name ServerIngestBin10k
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/memdos/sds/internal/server"
)

// config is one sdsload run's full parameter set.
type config struct {
	addr           string
	network        string // tcp or unix
	app            string
	scheme         string
	frames         string // csv or bin
	vms            int
	seconds        float64
	profileSeconds float64
	attackAt       float64
	seed           uint64 // VM i streams with seed+i
	expectAlarms   int
	retries        int
	prebuild       bool   // render every stream before the clock starts
	benchName      string // emit a go-bench result line under this name
}

const (
	framesCSV = "csv"
	framesBin = "bin"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7031", "sdsd stream address")
	flag.StringVar(&cfg.network, "network", "tcp", "stream network: tcp or unix")
	flag.IntVar(&cfg.vms, "vms", 8, "number of concurrent VM streams")
	flag.Float64Var(&cfg.seconds, "seconds", 120, "virtual seconds of telemetry per VM")
	flag.Float64Var(&cfg.profileSeconds, "profile-seconds", 60, "Stage-1 profile window sent in the handshake")
	flag.StringVar(&cfg.app, "app", "kmeans", "application model for the simulated VMs")
	flag.StringVar(&cfg.scheme, "scheme", "sds", "detection scheme sent in the handshake")
	flag.StringVar(&cfg.frames, "frames", framesCSV, "stream encoding: csv or bin")
	flag.Float64Var(&cfg.attackAt, "attack-at", 0, "start a bus-locking attack at this stream time (0 = none)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base seed; VM i streams with seed+i")
	flag.IntVar(&cfg.expectAlarms, "expect-alarms", 0, "fail unless every VM raises at least this many alarms")
	flag.IntVar(&cfg.retries, "connect-retries", 10, "connection attempts per VM (100ms apart) before giving up")
	flag.BoolVar(&cfg.prebuild, "prebuild", false, "render every stream to memory first so the timed window measures ingest, not sample generation")
	flag.StringVar(&cfg.benchName, "bench-name", "", "also print a `go test -bench`-style result line (Benchmark<name> …) for benchjson")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdsload:", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	if err := run(cfg); err != nil {
		pprof.StopCPUProfile()
		fmt.Fprintln(os.Stderr, "sdsload:", err)
		os.Exit(1)
	}
}

// vmResult is one stream's outcome.
type vmResult struct {
	vm      string
	sent    int
	samples int // samples the server accounted for in its done line
	alarms  int
	err     error
}

// body is one VM's pre-rendered stream.
type body struct {
	data []byte
	n    int // samples encoded in data
}

func run(cfg config) error {
	if cfg.vms <= 0 {
		return fmt.Errorf("need at least one VM stream, got %d", cfg.vms)
	}
	if cfg.frames != framesCSV && cfg.frames != framesBin {
		return fmt.Errorf("unknown -frames value %q (want csv or bin)", cfg.frames)
	}

	// -prebuild trades memory for a clean measurement: every stream is
	// rendered — and every connection dialed — before the clock starts, so
	// the timed window contains only the handshakes, the encoded transport,
	// and server-side ingest. Dialing up front matters at 10k streams: a
	// cold connect storm overflows the accept backlog and the resulting
	// SYN retransmits would otherwise dominate the measured window.
	var bodies []body
	var conns []net.Conn
	if cfg.prebuild {
		bodies = make([]body, cfg.vms)
		for i := range bodies {
			b, err := renderStream(cfg, cfg.seed+uint64(i))
			if err != nil {
				return fmt.Errorf("prebuilding stream %d: %w", i, err)
			}
			bodies[i] = b
		}
		conns = make([]net.Conn, cfg.vms)
		defer func() {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
		}()
		var dialErr error
		var mu sync.Mutex
		var dwg sync.WaitGroup
		for i := 0; i < cfg.vms; i++ {
			dwg.Add(1)
			go func(i int) {
				defer dwg.Done()
				c, err := dialRetry(cfg.network, cfg.addr, cfg.retries)
				if err != nil {
					mu.Lock()
					dialErr = err
					mu.Unlock()
					return
				}
				conns[i] = c
			}(i)
		}
		dwg.Wait()
		if dialErr != nil {
			return fmt.Errorf("pre-dialing %d streams: %w", cfg.vms, dialErr)
		}
	}

	results := make([]vmResult, cfg.vms)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vm := fmt.Sprintf("load-%05d", i)
			var pre *body
			var conn net.Conn
			if cfg.prebuild {
				pre, conn = &bodies[i], conns[i]
			}
			results[i] = streamVM(cfg, vm, cfg.seed+uint64(i), pre, conn)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total, alarms, failures int
	for _, r := range results {
		switch {
		case r.err != nil:
			failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: %v\n", r.vm, r.err)
		case r.samples != r.sent:
			failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: sent %d samples, server accounted %d — samples lost\n", r.vm, r.sent, r.samples)
		case r.alarms < cfg.expectAlarms:
			failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: %d alarms, expected at least %d\n", r.vm, r.alarms, cfg.expectAlarms)
		}
		total += r.samples
		alarms += r.alarms
	}
	rate := float64(total) / elapsed.Seconds()
	fmt.Printf("sdsload: %d VMs, %d samples in %.2fs (%.0f samples/sec), %d alarms\n",
		cfg.vms, total, elapsed.Seconds(), rate, alarms)
	if cfg.benchName != "" && total > 0 {
		// One result line in `go test -bench` format so the run lands in the
		// BENCH_PR*.json trajectory through the same benchjson pipeline as
		// the in-process benchmarks: iterations = samples ingested, ns/op =
		// wall time per sample across all streams.
		fmt.Printf("Benchmark%s \t%8d\t%12.1f ns/op\t%12.0f samples/sec\n",
			cfg.benchName, total, float64(elapsed.Nanoseconds())/float64(total), rate)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d streams failed", failures, cfg.vms)
	}
	return nil
}

// spec builds the deterministic replay spec for one VM.
func spec(cfg config, seed uint64) server.ReplaySpec {
	return server.ReplaySpec{
		App:      cfg.app,
		Seconds:  cfg.seconds,
		AttackAt: cfg.attackAt,
		Seed:     seed,
	}
}

// renderStream encodes one VM's full stream into memory.
func renderStream(cfg config, seed uint64) (body, error) {
	var buf bytes.Buffer
	// Pre-size the body: growing a multi-MB buffer by doubling re-copies
	// it ~twice, which adds up across 10k prebuilt streams. The estimate
	// uses the Table 1 sampling interval (~100 samples per virtual second)
	// and each encoding's worst-case bytes per sample.
	est := int(cfg.seconds*100) + 128
	if cfg.frames == framesBin {
		buf.Grow(est*24 + est/1024*3 + 64)
	} else {
		buf.Grow(est * 48)
	}
	var n int
	var err error
	if cfg.frames == framesBin {
		n, err = server.WriteSimulatedStreamBinary(&buf, spec(cfg, seed))
	} else {
		n, err = server.WriteSimulatedStream(&buf, spec(cfg, seed))
	}
	return body{data: buf.Bytes(), n: n}, err
}

// streamVM runs one VM's full stream lifecycle against the server. With a
// pre-rendered body the telemetry is a single bulk write; otherwise the
// stream is generated and encoded on the fly. A non-nil conn (pre-dialed
// by run) is used as-is; otherwise streamVM dials its own.
func streamVM(cfg config, vm string, seed uint64, pre *body, conn net.Conn) vmResult {
	res := vmResult{vm: vm}
	if conn == nil {
		var err error
		conn, err = dialRetry(cfg.network, cfg.addr, cfg.retries)
		if err != nil {
			res.err = err
			return res
		}
	}
	defer conn.Close()

	// The handshake reply is validated synchronously before any telemetry is
	// sent: a server that rejects the handshake — or closes the connection
	// without replying at all — is a hard failure, not a stream that happens
	// to account zero samples.
	br := bufio.NewReaderSize(conn, 64*1024)
	hs := fmt.Sprintf("sds/1 vm=%s app=%s scheme=%s profile=%g", vm, cfg.app, cfg.scheme, cfg.profileSeconds)
	if cfg.frames == framesBin {
		hs += " frames=bin"
	}
	if _, err := fmt.Fprintf(conn, "%s\n", hs); err != nil {
		res.err = err
		return res
	}
	reply, err := br.ReadString('\n')
	if err != nil {
		res.err = fmt.Errorf("handshake reply: %w", err)
		return res
	}
	switch reply = strings.TrimSpace(reply); {
	case strings.HasPrefix(reply, "error: "):
		res.err = fmt.Errorf("server rejected handshake: %s", strings.TrimPrefix(reply, "error: "))
		return res
	case !strings.HasPrefix(reply, "ok "):
		res.err = fmt.Errorf("unexpected handshake reply %q", reply)
		return res
	case cfg.frames == framesBin && !strings.HasSuffix(reply, " frames=bin"):
		res.err = fmt.Errorf("server did not confirm binary frames: %q", reply)
		return res
	}

	// The server streams alarm lines inline, so read concurrently with the
	// write — an unread response buffer would backpressure our own stream.
	type doneInfo struct {
		samples int
		err     error
	}
	resp := make(chan doneInfo, 1)
	alarmCount := make(chan int, 1)
	go func() {
		alarms := 0
		var d doneInfo
		d.samples = -1
		sc := bufio.NewScanner(br)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "alarm "):
				alarms++
			case strings.HasPrefix(line, "error: "):
				d.err = fmt.Errorf("server: %s", strings.TrimPrefix(line, "error: "))
			case strings.HasPrefix(line, "done "):
				for _, f := range strings.Fields(line)[1:] {
					if v, ok := strings.CutPrefix(f, "samples="); ok {
						d.samples, _ = strconv.Atoi(v)
					}
				}
			}
		}
		if d.err == nil {
			d.err = sc.Err()
		}
		alarmCount <- alarms
		resp <- d
	}()

	if pre != nil {
		if _, err := conn.Write(pre.data); err != nil {
			res.err = fmt.Errorf("streaming: %w", err)
			return res
		}
		res.sent = pre.n
	} else {
		var n int
		var err error
		if cfg.frames == framesBin {
			n, err = server.WriteSimulatedStreamBinary(conn, spec(cfg, seed))
		} else {
			n, err = server.WriteSimulatedStream(conn, spec(cfg, seed))
		}
		if err != nil {
			res.err = fmt.Errorf("streaming: %w", err)
			return res
		}
		res.sent = n
	}
	if cw, ok := conn.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
	res.alarms = <-alarmCount
	d := <-resp
	res.samples = d.samples
	if d.err != nil {
		res.err = d.err
	} else if d.samples < 0 {
		res.err = fmt.Errorf("connection closed without a done line")
	}
	return res
}

// dialRetry connects with retries so sdsload can start before sdsd's
// listener is up (the smoke test launches both at once).
func dialRetry(network, addr string, retries int) (net.Conn, error) {
	var err error
	for i := 0; i < retries; i++ {
		var conn net.Conn
		if conn, err = net.Dial(network, addr); err == nil {
			return conn, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("connecting to %s %s: %w", network, addr, err)
}
