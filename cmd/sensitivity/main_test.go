package main

import (
	"strings"
	"testing"

	"github.com/memdos/sds/internal/experiment"
	"github.com/memdos/sds/internal/golden"
)

// TestRunMatchesGolden pins the fixed-seed sweep output byte for byte
// against the committed conformance fixture
// (testdata/golden/sensitivity_small.txt, equivalent to:
//
//	sensitivity -wp -alpha -runs 2 -seed 1 -parallel 0
//
// ). The W_P sweep exercises SDS/P's reusable period estimator at several
// window sizes; the α sweep exercises the profile cache across configs that
// differ in detection parameters. Intentional changes regenerate with
// -update (see make goldens).
func TestRunMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced sensitivity sweep; skipped in -short mode")
	}
	cfg := experiment.DefaultConfig()
	cfg.Runs = 2
	cfg.Seed = 1
	cfg.Parallel = 0
	// Flag order on the capture command line does not matter: sweeps always
	// execute in figure order, so -wp -alpha renders α (Fig. 13) first.
	sweeps := selectSweeps(true, false, false, false, true, false)
	var got strings.Builder
	if err := run(&got, cfg, sweeps); err != nil {
		t.Fatalf("run: %v", err)
	}
	golden.AssertString(t, "testdata/golden/sensitivity_small.txt", got.String())
}
