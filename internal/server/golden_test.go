package server

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"testing"

	"github.com/memdos/sds/internal/golden"
)

// TestGoldenSDSDTranscript pins the complete wire transcript of one sdsd
// stream connection — the ok line, every inline alarm line, and the done
// summary, in order — for a fixed-seed attacked k-means stream. This is
// the server-side conformance contract: any change to the wire format, the
// session lifecycle, or the detection pipeline shows up as a line diff.
// Intentional changes regenerate with -update (make goldens).
func TestGoldenSDSDTranscript(t *testing.T) {
	var stream bytes.Buffer
	if _, err := WriteSimulatedStream(&stream, ReplaySpec{
		App: "kmeans", Seconds: 160, AttackAt: 100, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}

	_, addr := startServer(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	transcript := make(chan string, 1)
	go func() {
		var sb strings.Builder
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		transcript <- sb.String()
	}()
	if _, err := conn.Write([]byte("sds/1 vm=golden app=kmeans scheme=sds profile=60\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(stream.Bytes()); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()

	golden.AssertString(t, "testdata/golden/sdsd_transcript.txt", <-transcript)
}
