package feed

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/memdos/sds/internal/pcm"
)

// FrameScanner is the zero-copy sibling of BinReader: it decodes the same
// binary frame grammar, but out of caller-managed byte windows instead of
// an io.Reader. The sharded ingest plane reads a large block of bytes per
// socket syscall and walks every complete frame in place — no bufio layer,
// no per-frame scratch copy, no io.ReadFull. A partial trailing frame is
// the caller's to carry into the next window (see Next's consumed result);
// the scanner itself holds no buffered bytes, only the frame counter and
// end-of-stream latch, so it is cheap enough to embed per connection.
//
// Error semantics are identical to BinReader (framing loss is fatal,
// non-finite samples are quarantined and compacted out), and the error
// text matches byte for byte so the two decode paths report
// indistinguishably — pinned by an equivalence test against BinReader over
// randomized streams.
type FrameScanner struct {
	frames int
	ended  bool
}

// Frames returns the number of sample frames decoded so far.
func (s *FrameScanner) Frames() int { return s.frames }

// Ended reports whether an end frame has been consumed.
func (s *FrameScanner) Ended() bool { return s.ended }

// Next decodes the next frame from b into dst (capacity ≥ MaxFrameSamples).
//
//	consumed > 0, err == nil  — one sample frame decoded: n samples in
//	                            dst[:n], quarantined non-finite samples
//	                            compacted out and counted.
//	consumed == 0, err == nil — b holds only a partial frame; the caller
//	                            must carry b and present it again with more
//	                            bytes appended.
//	err == io.EOF             — an end frame was consumed (consumed == 1),
//	                            or the stream had already ended.
//	any other err             — framing lost; fatal, same text as BinReader.
func (s *FrameScanner) Next(b []byte, dst []pcm.Sample) (consumed, n, quarantined int, err error) {
	if s.ended {
		return 0, 0, 0, io.EOF
	}
	if len(b) == 0 {
		return 0, 0, 0, nil
	}
	switch b[0] {
	case frameEnd:
		s.ended = true
		return 1, 0, 0, io.EOF
	case frameSamples:
	default:
		return 0, 0, 0, fmt.Errorf("feed: frame %d: unknown frame type 0x%02x (framing lost)", s.frames+1, b[0])
	}
	if len(b) < 3 {
		return 0, 0, 0, nil
	}
	count := int(binary.LittleEndian.Uint16(b[1:3]))
	if count == 0 || count > MaxFrameSamples {
		return 0, 0, 0, fmt.Errorf("feed: frame %d: bad sample count %d (want 1..%d)", s.frames+1, count, MaxFrameSamples)
	}
	if cap(dst) < count {
		return 0, 0, 0, fmt.Errorf("feed: frame %d: destination capacity %d < frame count %d", s.frames+1, cap(dst), count)
	}
	total := 3 + count*sampleBytes
	if len(b) < total {
		return 0, 0, 0, nil
	}
	s.frames++
	dst = dst[:0]
	for off := 3; off < total; off += sampleBytes {
		tb := binary.LittleEndian.Uint64(b[off:])
		ab := binary.LittleEndian.Uint64(b[off+8:])
		mb := binary.LittleEndian.Uint64(b[off+16:])
		// Non-finite ⇔ all exponent bits set (NaN or ±Inf): one mask test
		// per field instead of IsNaN||IsInf on materialized floats. The OR
		// across fields is a cheap negative filter — if it lacks an exponent
		// bit, no field can be non-finite — so the common all-finite case
		// costs one branch.
		if (tb|ab|mb)&finiteMask == finiteMask &&
			(tb&finiteMask == finiteMask || ab&finiteMask == finiteMask || mb&finiteMask == finiteMask) {
			quarantined++
			continue
		}
		dst = append(dst, pcm.Sample{
			T:      math.Float64frombits(tb),
			Access: math.Float64frombits(ab),
			Miss:   math.Float64frombits(mb),
		})
	}
	return total, len(dst), quarantined, nil
}

// finiteMask selects a float64's exponent bits; a value is NaN or ±Inf
// exactly when all of them are set.
const finiteMask = uint64(0x7ff) << 52

// Truncated maps the bytes left over at EOF to BinReader's terminal error
// for the same stream: nil for a clean frame boundary, otherwise the
// truncated-header/payload (or framing) error the reader-based decoder
// would have produced when the stream was cut mid-frame.
func (s *FrameScanner) Truncated(pending []byte) error {
	if s.ended || len(pending) == 0 {
		return nil
	}
	switch pending[0] {
	case frameSamples:
	default:
		return fmt.Errorf("feed: frame %d: unknown frame type 0x%02x (framing lost)", s.frames+1, pending[0])
	}
	if len(pending) < 3 {
		return fmt.Errorf("feed: frame %d: truncated header: %w", s.frames+1, io.ErrUnexpectedEOF)
	}
	count := int(binary.LittleEndian.Uint16(pending[1:3]))
	if count == 0 || count > MaxFrameSamples {
		return fmt.Errorf("feed: frame %d: bad sample count %d (want 1..%d)", s.frames+1, count, MaxFrameSamples)
	}
	return fmt.Errorf("feed: frame %d: truncated payload: %w", s.frames+1, io.ErrUnexpectedEOF)
}
