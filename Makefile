GO ?= go

.PHONY: all build test vet bench cover verify repro clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l .

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Verify every headline claim of the paper (PASS/FAIL, nonzero exit on FAIL).
verify:
	$(GO) run ./cmd/report

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/measure -all -intervals 20
	$(GO) run ./cmd/evaluate -all -runs 20
	$(GO) run ./cmd/sensitivity -all -runs 10

clean:
	rm -f cover.out test_output.txt bench_output.txt
