#!/bin/sh
# Same-machine A/B recheck of wall-clock benchmark-gate failures.
#
#   scripts/bench_ab.sh OLD_JSON FAIL_LIST
#
# benchdiff compares trajectories recorded in different sessions, and on a
# shared cloud host the machine's effective speed moves between sessions —
# non-uniformly: FP-dense kernels can slow 25% while syscall-bound paths
# don't move, so even the suite-median drift correction under-corrects
# them. The ground truth for "did this PR regress benchmark X" is an
# interleaved A/B on one machine at one time: benchmark X under the
# baseline commit's code and under the working tree, alternating runs so
# both sides sample the same machine weather, and compare the per-side
# minima (interference is one-sided, so the minimum is the robust
# estimator).
#
# FAIL_LIST is benchdiff's -fail-list output ("kind name" lines). Only
# wall-clock (ns) violations are eligible: allocation counts are
# deterministic per build, and a samples/sec drop means re-running the
# scale runs, not excusing them — any alloc or rate line fails
# immediately. The baseline code is the commit that last touched OLD_JSON
# (the commit that recorded the baseline trajectory), checked out into a
# throwaway git worktree.
#
# The verdict per benchmark: the working tree passes when its minimum
# ns/op is within AB_NS_TOL (default the gate's 10%) of the baseline
# code's minimum measured in the same interleaved session.
set -eu

OLD_JSON=$1
FAIL_LIST=$2
ROUNDS=${AB_ROUNDS:-3}
NS_TOL=${AB_NS_TOL:-0.10}

if grep -qv '^ns ' "$FAIL_LIST"; then
    echo "bench-ab: non-wall-clock violations present; A/B cannot excuse them:" >&2
    grep -v '^ns ' "$FAIL_LIST" >&2
    exit 1
fi
names=$(awk '{print $2}' "$FAIL_LIST")
if [ -z "$names" ]; then
    echo "bench-ab: empty fail list" >&2
    exit 1
fi
regex="^($(printf '%s' "$names" | tr '\n' '|'))$"

base_ref=$(git log -1 --format=%H -- "$OLD_JSON")
if [ -z "$base_ref" ]; then
    echo "bench-ab: cannot find the commit that recorded $OLD_JSON" >&2
    exit 1
fi

tmp=$(mktemp -d)
cleanup() {
    git worktree remove --force "$tmp/base" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "bench-ab: interleaved A/B vs $base_ref over $ROUNDS rounds: $(printf '%s' "$names" | tr '\n' ' ')"
git worktree add --detach --quiet "$tmp/base" "$base_ref"

# The gated hot-path benchmarks all live in the root package or under
# internal/; -run=NONE keeps this to benchmark selection only.
run_side() {
    (cd "$1" && go test -run=NONE -bench "$regex" -benchtime=1s . ./internal/... 2>/dev/null) \
        | grep '^Benchmark' >> "$2" || true
}

i=0
while [ "$i" -lt "$ROUNDS" ]; do
    run_side "$tmp/base" "$tmp/base.txt"
    run_side . "$tmp/cand.txt"
    i=$((i + 1))
done

fail=0
for name in $names; do
    base_ns=$(awk -v n="$name" '$1 ~ "^"n"(-[0-9]+)?$" {if (min==0||$3<min) min=$3} END {print min+0}' "$tmp/base.txt")
    cand_ns=$(awk -v n="$name" '$1 ~ "^"n"(-[0-9]+)?$" {if (min==0||$3<min) min=$3} END {print min+0}' "$tmp/cand.txt")
    if [ "${base_ns%%.*}" = "0" ] || [ "${cand_ns%%.*}" = "0" ]; then
        echo "bench-ab: FAIL $name: no measurement (base=$base_ns cand=$cand_ns)" >&2
        fail=1
        continue
    fi
    verdict=$(awk -v b="$base_ns" -v c="$cand_ns" -v tol="$NS_TOL" \
        'BEGIN {printf "%s %.1f", (c <= b*(1+tol)) ? "ok" : "FAIL", (c/b-1)*100}')
    echo "bench-ab: ${verdict#* }% $name: baseline code $base_ns ns/op, working tree $cand_ns ns/op -> ${verdict%% *}"
    [ "${verdict%% *}" = "ok" ] || fail=1
done

if [ "$fail" -ne 0 ]; then
    echo "bench-ab: regression confirmed against baseline code on this machine" >&2
    exit 1
fi
echo "bench-ab: all wall-clock violations explained by machine drift; gate passes"
