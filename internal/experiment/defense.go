package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/membus"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/vmm"
	"github.com/memdos/sds/internal/workload"
)

// DefenseResult is one cell of the cache-partitioning defense study. The
// paper's related work (§2.3) argues that performance-isolation defenses
// are insufficient: way partitioning stops LLC cleansing (at the cost of
// wasted cache) but cannot stop the bus-locking attack, because the bus is
// still locked during atomic operations. This study reproduces that
// argument on the micro-architectural simulator.
type DefenseResult struct {
	Attack      attack.Kind
	Partitioned bool

	// MissRate is the victim's LLC miss rate during the attack window.
	MissRate float64
	// AccessRate is the victim's LLC accesses per second during the attack
	// window.
	AccessRate float64
	// ProgressRatio is the victim's useful-work rate during the attack
	// window (1 = unimpeded).
	ProgressRatio float64
}

// DefenseStudy runs the partitioning experiment: a victim working-set loop
// and an attacker VM share a machine, with and without CAT-style way
// partitioning, under each attack. Durations are fixed (10 s settle, 20 s
// attack window); the simulation is deterministic given c.Seed.
func (c Config) DefenseStudy() ([]DefenseResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var out []DefenseResult
	for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
		for _, partitioned := range []bool{false, true} {
			r, err := c.defenseCell(kind, partitioned)
			if err != nil {
				return nil, fmt.Errorf("defense %v partitioned=%v: %w", kind, partitioned, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func (c Config) defenseCell(kind attack.Kind, partitioned bool) (DefenseResult, error) {
	const (
		settle   = 10.0
		duration = 30.0
		tick     = 0.01
	)
	cache, err := cachesim.New(cachesim.Config{SizeBytes: 512 * 1024, LineSize: 64, Ways: 8})
	if err != nil {
		return DefenseResult{}, err
	}
	bus, err := membus.New(2e6, 0.95)
	if err != nil {
		return DefenseResult{}, err
	}
	m, err := vmm.NewMachine(cache, bus)
	if err != nil {
		return DefenseResult{}, err
	}

	victim, err := workload.NewLoop("victim", 0, 64*1024, 5e5, randx.Derive(c.Seed, 101))
	if err != nil {
		return DefenseResult{}, err
	}
	victimVM, err := m.AddVM("victim", victim)
	if err != nil {
		return DefenseResult{}, err
	}

	var attackerWorkload vmm.Workload
	switch kind {
	case attack.BusLock:
		attackerWorkload, err = attack.NewBusLocker(settle, 0.9, randx.Derive(c.Seed, 102))
	case attack.Cleanse:
		attackerWorkload, err = attack.NewCleanser(settle, 1e6, randx.Derive(c.Seed, 103))
	default:
		return DefenseResult{}, fmt.Errorf("experiment: defense study needs a concrete attack, got %v", kind)
	}
	if err != nil {
		return DefenseResult{}, err
	}
	attackerVM, err := m.AddVM(attackerWorkload.Name(), attackerWorkload)
	if err != nil {
		return DefenseResult{}, err
	}

	if partitioned {
		// Victim gets 6 of 8 ways, the attacker the remaining 2 — the
		// fairness-based partitioning of the defenses in §2.3.
		if err := cache.Partition(cachesim.Owner(victimVM.ID()), 0, 6); err != nil {
			return DefenseResult{}, err
		}
		if err := cache.Partition(cachesim.Owner(attackerVM.ID()), 6, 2); err != nil {
			return DefenseResult{}, err
		}
	}

	if err := m.Run(settle, tick); err != nil {
		return DefenseResult{}, err
	}
	statsBefore, err := m.CacheStats(victimVM.ID())
	if err != nil {
		return DefenseResult{}, err
	}
	progressBefore := victimVM.Progress()

	if err := m.Run(duration, tick); err != nil {
		return DefenseResult{}, err
	}
	statsAfter, err := m.CacheStats(victimVM.ID())
	if err != nil {
		return DefenseResult{}, err
	}

	window := duration - settle
	accesses := float64(statsAfter.Accesses - statsBefore.Accesses)
	misses := float64(statsAfter.Misses - statsBefore.Misses)
	res := DefenseResult{
		Attack:        kind,
		Partitioned:   partitioned,
		AccessRate:    accesses / window,
		ProgressRatio: (victimVM.Progress() - progressBefore) / window,
	}
	if accesses > 0 {
		res.MissRate = misses / accesses
	}
	return res, nil
}
