package detect

import (
	"fmt"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/timeseries"
)

// CUSUM default knobs (Config.CusumK/CusumH zero values resolve to these;
// CusumK additionally falls back to the boundary factor K when both are
// zero, so the slack absorbs exactly the normal range SDS/B tolerates).
const (
	defaultCusumH = 8.0
	// cusumCapMult caps each one-sided statistic at this multiple of the
	// decision interval. Without the cap a long attack drives the statistic
	// arbitrarily high and the detector takes (statistic−H)/slack windows to
	// re-arm after the attack ends — hours of latched alarm for a
	// minutes-long attack. Capping bounds the de-alarm lag to
	// (capMult−1)·H/slack windows, preserving rising-edge semantics for the
	// next attack.
	cusumCapMult = 4.0
)

// CUSUM is a two-sided cumulative-sum change-point detector over the same
// MA→EWMA preprocessed counter series SDS/B monitors — the detection style
// CacheShield (Briongos et al., arXiv 1709.01795) applies to hardware
// performance counters, transplanted onto the paper's two-counter PCM
// telemetry and Stage-1 profile. Per counter, the standardized deviation
// z_n = (S_n − μ_E)/σ_E feeds two one-sided statistics
//
//	C⁺_n = max(0, C⁺_{n−1} + z_n − k)    (level rise: LLC cleansing)
//	C⁻_n = max(0, C⁻_{n−1} − z_n − k)    (level drop: bus locking)
//
// with slack k (Config.CusumK, in σ_E units) absorbing in-profile drift; an
// alarm raises while any statistic is at or above the decision interval H
// (Config.CusumH). Unlike SDS/B's consecutive-violation streak, CUSUM
// integrates small persistent shifts, so a sub-kσ drift still accumulates —
// the classic change-point trade: faster on sustained shifts, and the
// slack/interval pair (not a streak length) sets the ARL.
type CUSUM struct {
	cfg  Config
	prof Profile

	slack, h, bound float64

	muA, invSdA float64
	muM, invSdM float64

	maA, maM *timeseries.MovingAverager
	ewA, ewM *timeseries.EWMA

	posA, negA float64
	posM, negM float64

	windows int
	alarmed bool
	alarms  []Alarm
}

var _ Detector = (*CUSUM)(nil)
var _ WindowObserver = (*CUSUM)(nil)
var _ AlarmCounter = (*CUSUM)(nil)

// NewCUSUM returns a CUSUM detector for an application with the given
// Stage-1 profile.
func NewCUSUM(prof Profile, cfg Config) (*CUSUM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prof.StdAccess < 0 || prof.StdMiss < 0 {
		return nil, fmt.Errorf("detect: profile for %q has negative σ", prof.App)
	}
	d := &CUSUM{
		cfg:   cfg,
		prof:  prof,
		slack: cfg.CusumK,
		h:     cfg.CusumH,
		muA:   prof.MeanAccess,
		muM:   prof.MeanMiss,
	}
	if d.slack == 0 {
		d.slack = cfg.K
	}
	if d.h == 0 {
		d.h = defaultCusumH
	}
	d.bound = cusumCapMult * d.h
	d.invSdA = invStd(prof.StdAccess)
	d.invSdM = invStd(prof.StdMiss)
	var err error
	if d.maA, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.maM, err = timeseries.NewMovingAverager(cfg.W, cfg.DW); err != nil {
		return nil, err
	}
	if d.ewA, err = timeseries.NewEWMA(cfg.Alpha); err != nil {
		return nil, err
	}
	if d.ewM, err = timeseries.NewEWMA(cfg.Alpha); err != nil {
		return nil, err
	}
	return d, nil
}

// invStd guards the standardization against a degenerate profile: a zero-σ
// profile means any deviation is infinitely surprising, so a tiny synthetic
// σ keeps z finite while still accumulating fast.
func invStd(sd float64) float64 {
	if sd <= 0 {
		return 1e12
	}
	return 1 / sd
}

// Name implements Detector.
func (d *CUSUM) Name() string { return "CUSUM" }

// Profile returns the profile the detector was built with.
func (d *CUSUM) Profile() Profile { return d.prof }

// Slack and Interval return the resolved slack k and decision interval H in
// σ_E units (diagnostics and tests).
func (d *CUSUM) Slack() float64    { return d.slack }
func (d *CUSUM) Interval() float64 { return d.h }

// Observe implements Detector.
func (d *CUSUM) Observe(s pcm.Sample) {
	mA, okA := d.maA.Push(s.Access)
	mM, okM := d.maM.Push(s.Miss)
	if !okA && !okM {
		return
	}
	// Both averagers share the same geometry, so they emit together.
	d.ObserveMA(s.T, mA, mM)
}

// ObserveMA feeds one window-level observation — the moving averages M_n of
// the two counters at virtual time t — directly into the post-MA pipeline.
// Feed a detector through either Observe or ObserveMA, never both.
func (d *CUSUM) ObserveMA(t float64, mA, mM float64) {
	zA := (d.ewA.Push(mA) - d.muA) * d.invSdA
	zM := (d.ewM.Push(mM) - d.muM) * d.invSdM
	d.windows++

	d.posA = cusumStep(d.posA, zA-d.slack, d.bound)
	d.negA = cusumStep(d.negA, -zA-d.slack, d.bound)
	d.posM = cusumStep(d.posM, zM-d.slack, d.bound)
	d.negM = cusumStep(d.negM, -zM-d.slack, d.bound)

	nowAlarmed := d.posA >= d.h || d.negA >= d.h || d.posM >= d.h || d.negM >= d.h
	if nowAlarmed && !d.alarmed {
		metric, stat, dir := MetricAccess, d.negA, "drop"
		switch {
		case d.posM >= d.h || d.negM >= d.h:
			metric, stat, dir = MetricMiss, d.posM, "rise"
			if d.negM > d.posM {
				stat, dir = d.negM, "drop"
			}
		case d.posA > d.negA:
			stat, dir = d.posA, "rise"
		}
		d.alarms = append(d.alarms, Alarm{
			T:        t,
			Detector: d.Name(),
			Metric:   metric,
			Reason: fmt.Sprintf("%s CUSUM %s statistic %.2f ≥ decision interval %.2f (slack %.3gσ)",
				metric, dir, stat, d.h, d.slack),
		})
	}
	d.alarmed = nowAlarmed
}

// cusumStep advances one one-sided statistic: accumulate the slack-adjusted
// deviation, floor at zero, cap at the re-arm bound.
func cusumStep(c, dz, bound float64) float64 {
	c += dz
	if c < 0 {
		return 0
	}
	if c > bound {
		return bound
	}
	return c
}

// Statistics returns the four one-sided statistics (AccessNum rise/drop,
// MissNum rise/drop) for diagnostics and tests.
func (d *CUSUM) Statistics() (posA, negA, posM, negM float64) {
	return d.posA, d.negA, d.posM, d.negM
}

// Alarmed implements Detector.
func (d *CUSUM) Alarmed() bool { return d.alarmed }

// AlarmCount implements AlarmCounter.
func (d *CUSUM) AlarmCount() int { return len(d.alarms) }

// Alarms implements Detector.
func (d *CUSUM) Alarms() []Alarm { return cloneAlarms(d.alarms) }
