package sds

import (
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/pcm"
)

// Core detection types, re-exported from the implementation packages so
// that downstream users never import internal paths.
type (
	// Sample is one PCM observation of the protected VM: AccessNum and
	// MissNum for the preceding T_PCM interval.
	Sample = pcm.Sample
	// Detector is the streaming interface implemented by every scheme.
	Detector = detect.Detector
	// Alarm records one rising edge of a detector's alarm state.
	Alarm = detect.Alarm
	// Metric identifies the counter a detection event concerns.
	Metric = detect.Metric
	// Config carries the SDS parameters of the paper's Table 1.
	Config = detect.Config
	// KSTestConfig carries the baseline detector's parameters.
	KSTestConfig = detect.KSTestConfig
	// Profile is the Stage-1 normal-behaviour profile of an application.
	Profile = detect.Profile
	// Throttler is the hypervisor hook the KStest baseline needs.
	Throttler = detect.Throttler
	// WindowStat is a preprocessed observation exposed to SDS/B hooks.
	WindowStat = detect.WindowStat
	// PeriodStat is one SDS/P period estimate exposed to hooks.
	PeriodStat = detect.PeriodStat
	// CheckStat is one KStest comparison outcome exposed to hooks.
	CheckStat = detect.CheckStat

	// SDSB is the boundary-based detection scheme (paper §4.2.1).
	SDSB = detect.SDSB
	// SDSP is the period-based detection scheme (paper §4.2.2).
	SDSP = detect.SDSP
	// SDS is the combined detection system (paper §5.1).
	SDS = detect.SDS
	// KSTest is the Kolmogorov–Smirnov baseline (Zhang et al.).
	KSTest = detect.KSTest

	// Reprofiler wraps SDS with the paper's §6 re-profiling workflow for
	// applications whose behaviour legitimately changes over time.
	Reprofiler = detect.Reprofiler
	// Fleet manages the detectors of every protected VM on one server.
	Fleet = detect.Fleet
	// VMAlarm pairs an alarm with the protected VM it concerns.
	VMAlarm = detect.VMAlarm
	// Sanitizer guards a detector against malformed PCM input.
	Sanitizer = detect.Sanitizer

	// SDSBOption customizes NewSDSB.
	SDSBOption = detect.SDSBOption
	// SDSPOption customizes NewSDSP.
	SDSPOption = detect.SDSPOption
	// KSTestOption customizes NewKSTest.
	KSTestOption = detect.KSTestOption
)

// Counter identifiers.
const (
	MetricAccess = detect.MetricAccess
	MetricMiss   = detect.MetricMiss
	MetricPeriod = detect.MetricPeriod
)

// DefaultConfig returns the paper's Table 1 parameters.
func DefaultConfig() Config { return detect.DefaultConfig() }

// SampleCount returns the number of whole T_PCM intervals in seconds of
// telemetry, rounding up quotients that sit a float representation error
// below an integer so exact multiples never lose their final sample.
func SampleCount(seconds, tpcm float64) int { return pcm.SampleCount(seconds, tpcm) }

// DefaultKSTestConfig returns the baseline parameters the paper reuses from
// Zhang et al.
func DefaultKSTestConfig() KSTestConfig { return detect.DefaultKSTestConfig() }

// BuildProfile computes a Stage-1 Profile from attack-free PCM samples.
func BuildProfile(app string, samples []Sample, cfg Config) (Profile, error) {
	return detect.BuildProfile(app, samples, cfg)
}

// NewSDS returns the combined detection system for a profiled application.
func NewSDS(prof Profile, cfg Config) (*SDS, error) {
	return detect.NewSDS(prof, cfg)
}

// NewSDSB returns the boundary-based scheme for a profiled application.
func NewSDSB(prof Profile, cfg Config, opts ...SDSBOption) (*SDSB, error) {
	return detect.NewSDSB(prof, cfg, opts...)
}

// NewSDSP returns the period-based scheme; the profile must be periodic.
func NewSDSP(prof Profile, cfg Config, opts ...SDSPOption) (*SDSP, error) {
	return detect.NewSDSP(prof, cfg, opts...)
}

// NewKSTest returns the baseline detector; throttler may be nil when
// throttling is accounted for externally.
func NewKSTest(cfg KSTestConfig, throttler Throttler, opts ...KSTestOption) (*KSTest, error) {
	return detect.NewKSTest(cfg, throttler, opts...)
}

// WithSDSBWindowHook traces the preprocessed EWMA series (paper Fig. 7).
func WithSDSBWindowHook(hook func(WindowStat)) SDSBOption {
	return detect.WithSDSBWindowHook(hook)
}

// WithSDSPEstimateHook traces the computed-period sequence (paper Fig. 8b).
func WithSDSPEstimateHook(hook func(PeriodStat)) SDSPOption {
	return detect.WithSDSPEstimateHook(hook)
}

// WithKSTestCheckHook traces the per-check KS decisions (paper Fig. 1).
func WithKSTestCheckHook(hook func(CheckStat)) KSTestOption {
	return detect.WithKSTestCheckHook(hook)
}

// NewReprofiler wraps a combined SDS detector with a rolling sample buffer
// from which the profile can be rebuilt on demand (§6: dynamic
// applications / tenant-requested re-profiling).
func NewReprofiler(app string, initial Profile, cfg Config, bufferSeconds float64) (*Reprofiler, error) {
	return detect.NewReprofiler(app, initial, cfg, bufferSeconds)
}

// NewFleet returns an empty per-server detector fleet.
func NewFleet() *Fleet { return detect.NewFleet() }

// NewSanitizer wraps a detector with input validation: NaN/negative
// counters and out-of-order timestamps are dropped, never forwarded.
func NewSanitizer(inner Detector) *Sanitizer { return detect.NewSanitizer(inner) }

// ChebyshevHC returns the smallest H_C meeting the confidence level for the
// boundary factor k (paper Eq. 4); k=1.125 at 99.9% gives the paper's 30.
func ChebyshevHC(k, confidence float64) (int, error) {
	return detect.ChebyshevHC(k, confidence)
}

// ChebyshevFalseAlarmBound returns the Chebyshev bound (1/k²)^H_C on the
// false-alarm probability of an (k, H_C) pair.
func ChebyshevFalseAlarmBound(k float64, hc int) (float64, error) {
	return detect.ChebyshevFalseAlarmBound(k, hc)
}
