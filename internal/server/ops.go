package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"
)

// VMMetrics is one VM's row in the /metricsz report.
type VMMetrics struct {
	App            string  `json:"app"`
	Scheme         string  `json:"scheme"`
	Connected      bool    `json:"connected"`
	Profiling      bool    `json:"profiling"`
	ProfileSamples int     `json:"profile_samples"`
	Monitored      uint64  `json:"monitored"`
	Dropped        uint64  `json:"dropped"`
	Quarantined    uint64  `json:"quarantined"`
	Resumes        int     `json:"resumes"`
	Alarms         int     `json:"alarms"`
	Alarmed        bool    `json:"alarmed"`
	LastT          float64 `json:"last_t"`
}

// ShardMetrics is one ingest shard's row in the /metricsz report.
type ShardMetrics struct {
	Conns       int64  `json:"conns"`
	Samples     uint64 `json:"samples"`
	BinFrames   uint64 `json:"bin_frames"`
	Quarantined uint64 `json:"quarantined"`
	QueueDepth  int64  `json:"queue_depth"`
}

// Metrics is the /metricsz report: per-VM ingestion counters plus the
// aggregate throughput of the whole server.
type Metrics struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	ActiveVMs        int     `json:"active_vms"`
	TotalSamples     uint64  `json:"total_samples"`
	TotalAlarms      uint64  `json:"total_alarms"`
	TotalQuarantined uint64  `json:"total_quarantined"`
	TotalBinFrames   uint64  `json:"total_bin_frames"`
	IdleEvictions    uint64  `json:"idle_evictions"`
	SamplesPerSecond float64 `json:"samples_per_second"`
	// Shards has one row per ingest shard; ShardSkew is the hottest shard's
	// sample count over the per-shard mean (1.0 = perfectly even). The VM
	// name hash fixes the assignment, so persistent skew means the fleet's
	// names are clustering and a different shard count may spread better.
	Shards     []ShardMetrics       `json:"shards"`
	ShardSkew  float64              `json:"shard_skew"`
	AlarmedVMs []string             `json:"alarmed_vms"`
	VMs        map[string]VMMetrics `json:"vms"`
}

// Metrics snapshots the server's state.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	type entry struct {
		vm      string
		st      *vmState
		resumes int
	}
	entries := make([]entry, 0, len(s.order))
	for _, vm := range s.order {
		if st, ok := s.sessions[vm]; ok {
			// resumes is guarded by s.mu; copy it while we hold the lock.
			entries = append(entries, entry{vm, st, st.resumes})
		}
	}
	s.mu.Unlock()

	m := Metrics{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		TotalSamples:     s.totalSamples.Load(),
		TotalAlarms:      s.totalAlarms.Load(),
		TotalQuarantined: s.totalQuarantined.Load(),
		TotalBinFrames:   s.totalBinFrames.Load(),
		IdleEvictions:    s.idleEvictions.Load(),
		AlarmedVMs:       s.fleet.AlarmedVMs(),
		VMs:              make(map[string]VMMetrics, len(entries)),
	}
	if m.AlarmedVMs == nil {
		m.AlarmedVMs = []string{}
	}
	if m.UptimeSeconds > 0 {
		m.SamplesPerSecond = float64(m.TotalSamples) / m.UptimeSeconds
	}
	m.Shards = make([]ShardMetrics, len(s.shards))
	var shardMax, shardSum uint64
	for i, sh := range s.shards {
		row := ShardMetrics{
			Conns:       sh.conns.Load(),
			Samples:     sh.samples.Load(),
			BinFrames:   sh.frames.Load(),
			Quarantined: sh.quarantined.Load(),
			QueueDepth:  sh.queueDepth.Load(),
		}
		m.Shards[i] = row
		shardSum += row.Samples
		if row.Samples > shardMax {
			shardMax = row.Samples
		}
	}
	if shardSum > 0 {
		m.ShardSkew = float64(shardMax) * float64(len(s.shards)) / float64(shardSum)
	}
	for _, e := range entries {
		st := e.st.sess.Stats()
		connected := e.st.connected.Load()
		if connected {
			m.ActiveVMs++
		}
		m.VMs[e.vm] = VMMetrics{
			App:            st.App,
			Scheme:         st.Scheme,
			Connected:      connected,
			Profiling:      st.Profiling,
			ProfileSamples: st.ProfileSamples,
			Monitored:      st.Monitored,
			Dropped:        st.Dropped,
			Quarantined:    e.st.quarantined.Load(),
			Resumes:        e.resumes,
			Alarms:         st.Alarms,
			Alarmed:        st.Alarmed,
			LastT:          st.LastT,
		}
	}
	return m
}

// Handler returns the ops surface: GET /healthz (200 "ok", 503 while
// draining) and GET /metricsz (the Metrics snapshot as JSON).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Metrics())
	})
	// Standard pprof endpoints so scale runs can be profiled in place
	// (the ops listener is loopback-only by default).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	return mux
}
