package detect

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// countingDetector records observations for sanitizer tests.
type countingDetector struct {
	observed []pcm.Sample
	alarmed  bool
}

func (c *countingDetector) Name() string         { return "counting" }
func (c *countingDetector) Observe(s pcm.Sample) { c.observed = append(c.observed, s) }
func (c *countingDetector) Alarmed() bool        { return c.alarmed }
func (c *countingDetector) Alarms() []Alarm      { return nil }

func TestSanitizerDropsMalformedSamples(t *testing.T) {
	inner := &countingDetector{}
	s := NewSanitizer(inner)
	good := []pcm.Sample{
		{T: 0.01, Access: 100, Miss: 10},
		{T: 0.02, Access: 120, Miss: 12},
		{T: 0.03, Access: 0, Miss: 0}, // zero counters are legitimate (idle)
	}
	bad := []pcm.Sample{
		{T: math.NaN(), Access: 100, Miss: 10},
		{T: 0.025, Access: math.NaN(), Miss: 10},
		{T: 0.026, Access: 100, Miss: math.Inf(1)},
		{T: 0.027, Access: -5, Miss: 1},
		{T: 0.028, Access: 10, Miss: 20}, // misses exceed accesses
	}
	s.Observe(good[0])
	for _, b := range bad {
		s.Observe(b)
	}
	s.Observe(good[1])
	s.Observe(pcm.Sample{T: 0.02, Access: 100, Miss: 10})  // duplicate timestamp
	s.Observe(pcm.Sample{T: 0.015, Access: 100, Miss: 10}) // goes backward
	s.Observe(good[2])

	if got, want := len(inner.observed), 3; got != want {
		t.Fatalf("inner observed %d samples, want %d: %+v", got, want, inner.observed)
	}
	if got := s.Dropped(); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}
}

func TestSanitizerForwardsAlarmState(t *testing.T) {
	inner := &countingDetector{alarmed: true}
	s := NewSanitizer(inner)
	if !s.Alarmed() {
		t.Fatal("alarm state not forwarded")
	}
	if s.Name() != "counting" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSanitizerNilInner(t *testing.T) {
	s := NewSanitizer(nil)
	s.Observe(pcm.Sample{T: 1, Access: 10, Miss: 1})
	if s.Alarmed() || s.Alarms() != nil {
		t.Fatal("nil-inner sanitizer reported state")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
	if s.Name() != "sanitizer" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSanitizerPropertyNeverForwardsInvalid(t *testing.T) {
	inner := &countingDetector{}
	s := NewSanitizer(inner)
	f := func(tRaw, aRaw, mRaw int16, nanT, nanA bool) bool {
		sample := pcm.Sample{
			T:      float64(tRaw),
			Access: float64(aRaw),
			Miss:   float64(mRaw),
		}
		if nanT {
			sample.T = math.NaN()
		}
		if nanA {
			sample.Access = math.NaN()
		}
		before := len(inner.observed)
		s.Observe(sample)
		if len(inner.observed) == before {
			return true // dropped
		}
		fwd := inner.observed[len(inner.observed)-1]
		return !math.IsNaN(fwd.T) && !math.IsNaN(fwd.Access) &&
			fwd.Access >= 0 && fwd.Miss >= 0 && fwd.Miss <= fwd.Access
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizedSDSStillDetects(t *testing.T) {
	// End to end: a detector behind the sanitizer still catches the attack
	// when fed a stream polluted with garbage samples.
	prof := steadyProfile(t, workload.KMeans, 120)
	inner, err := NewSDS(prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSanitizer(inner)
	r := randx.New(121, 122)
	samples := genSamples(t, workload.KMeans, 121, 600, attack.Schedule{Kind: attack.BusLock, Start: 300, Ramp: 10})
	for _, smp := range samples {
		if r.Bool(0.01) { // inject 1% garbage
			s.Observe(pcm.Sample{T: smp.T, Access: math.NaN(), Miss: -1})
		}
		s.Observe(smp)
	}
	if !s.Alarmed() {
		t.Fatal("sanitized SDS missed the attack")
	}
	if s.Dropped() == 0 {
		t.Fatal("no garbage was dropped")
	}
}
