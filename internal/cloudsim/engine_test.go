package cloudsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/memdos/sds/internal/workload"
)

// busyScenario is a cluster with everything moving at once: mixed attacker
// campaigns, churn, migrations — the stress shape for determinism tests.
func busyScenario(seed uint64) Scenario {
	return Scenario{
		Name:                "busy",
		Seed:                seed,
		Hosts:               6,
		VMsPerHost:          4,
		Seconds:             300,
		Apps:                []string{workload.KMeans, workload.FaceNet, workload.Scan, workload.TeraSort},
		MonitorAll:          true,
		ProfileSeconds:      400,
		Attackers:           3,
		AttackKind:          AttackMixed,
		AttackStart:         60,
		RelocateMean:        60,
		DwellMean:           90,
		ChurnArrivalsPerMin: 6,
		ChurnLifetimeMean:   120,
		Mitigation:          Mitigation{Policy: PolicyMigrate},
	}
}

// TestRunDeterministic pins byte-identical repeatability: two runs of the
// same busy scenario must produce identical JSON results, including the
// per-VM alarm digest.
func TestRunDeterministic(t *testing.T) {
	first, err := Run(busyScenario(11))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(busyScenario(11))
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("repeated runs diverge:\n run1 %s\n run2 %s", a, b)
	}
	if first.Events == 0 || first.Churned == 0 || first.Alarms == 0 {
		t.Fatalf("busy scenario too quiet to be a determinism witness: %+v", first)
	}
	if second.AlarmDigest != first.AlarmDigest || first.AlarmDigest == 0 {
		t.Fatalf("alarm digests diverge or empty: %d vs %d", first.AlarmDigest, second.AlarmDigest)
	}
}

// TestSeedChangesOutcome guards against accidentally ignoring the seed.
func TestSeedChangesOutcome(t *testing.T) {
	first, err := Run(busyScenario(11))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(busyScenario(12))
	if err != nil {
		t.Fatal(err)
	}
	if first.AlarmDigest == second.AlarmDigest {
		t.Fatal("different seeds produced identical alarm digests")
	}
}

// mitigationScenario is a small cluster where one bus-locking attacker
// chases the victims and the provider runs the full closed loop.
func mitigationScenario(policy string) Scenario {
	return Scenario{
		Seed:           7,
		Hosts:          4,
		VMsPerHost:     3,
		Seconds:        600,
		Apps:           []string{workload.KMeans},
		ProfileSeconds: 400,
		Attackers:      1,
		AttackKind:     AttackBusLock,
		AttackStart:    120,
		AttackRamp:     10,
		RelocateMean:   100,
		Mitigation:     Mitigation{Policy: policy},
	}
}

// TestMitigationLoopQuarantinesAttacker runs the closed loop end to end:
// the attack must be detected, the victim migrated away from the attacker
// (a quarantine scored with a plausible time), and the mitigated run must
// recover victim slowdown and attack exposure relative to the no-response
// baseline.
func TestMitigationLoopQuarantinesAttacker(t *testing.T) {
	none, err := Run(mitigationScenario(PolicyNone))
	if err != nil {
		t.Fatal(err)
	}
	mitigated, err := Run(mitigationScenario(PolicyThrottleMigrate))
	if err != nil {
		t.Fatal(err)
	}

	if none.Alarms == 0 || none.TrueAlarms == 0 {
		t.Fatalf("attack undetected in baseline run: %+v", none)
	}
	if none.Migrations != 0 || none.QuarantineCount != 0 {
		t.Fatalf("PolicyNone must not migrate: %+v", none)
	}
	if mitigated.Migrations == 0 || mitigated.QuarantineCount == 0 {
		t.Fatalf("mitigation loop never quarantined the attacker: %+v", mitigated)
	}
	if mitigated.Confirmed == 0 {
		t.Fatalf("throttle stage never confirmed external contention: %+v", mitigated)
	}
	ttq := mitigated.TimeToQuarantine
	if ttq.Median <= 0 || ttq.Median > 120 {
		t.Fatalf("implausible time-to-quarantine %v (want within (0, 120] s of co-location)", ttq.Median)
	}
	if mitigated.VictimSlowdown >= none.VictimSlowdown {
		t.Fatalf("mitigation did not recover victim slowdown: %.4f (mitigated) vs %.4f (none)",
			mitigated.VictimSlowdown, none.VictimSlowdown)
	}
	if mitigated.VictimExposureSec >= none.VictimExposureSec {
		t.Fatalf("mitigation did not reduce attack exposure: %.2f vs %.2f",
			mitigated.VictimExposureSec, none.VictimExposureSec)
	}
}

// TestNoAttackHasNoTrueAlarms is the structural specificity check: with no
// attackers in the cluster every alarm is scored false, nothing is
// quarantined, and the residual false-alarm rate of the window fidelity
// stays in the same low range the detectors show on raw samples.
func TestNoAttackHasNoTrueAlarms(t *testing.T) {
	sc := Scenario{
		Seed:           3,
		Hosts:          2,
		VMsPerHost:     2,
		Seconds:        900,
		Apps:           []string{workload.KMeans, workload.FaceNet},
		MonitorAll:     true,
		ProfileSeconds: 400,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueAlarms != 0 || res.QuarantineCount != 0 || res.Migrations != 0 {
		t.Fatalf("attack-free run scored attack outcomes: %+v", res)
	}
	if res.Alarms > 8 {
		t.Fatalf("false-alarm flood in attack-free run: %d alarms from 4 VMs in 900 s", res.Alarms)
	}
	if res.VictimSlowdown != 0 {
		t.Fatalf("attack-free victims slowed down: %v", res.VictimSlowdown)
	}
	if res.SamplesRepresented == 0 || res.Blocks == 0 {
		t.Fatalf("window fidelity generated no telemetry: %+v", res)
	}
}

// TestWindowFidelityDetectsAttack checks the fast path end to end: the
// closed-form block telemetry must still drive the detector to a true
// alarm within a plausible delay of the attack reaching full intensity.
func TestWindowFidelityDetectsAttack(t *testing.T) {
	sc := mitigationScenario(PolicyNone)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueAlarms == 0 {
		t.Fatalf("window fidelity missed the attack: %+v", res)
	}
	if res.VictimExposureSec == 0 {
		t.Fatalf("victim exposure not accounted: %+v", res)
	}
}

// TestChurnAndCampaignsKeepRunning exercises arrivals, departures and
// attacker hops over a longer horizon and checks the bookkeeping stays
// consistent.
func TestChurnAndCampaignsKeepRunning(t *testing.T) {
	sc := busyScenario(21)
	sc.Seconds = 600
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Churned == 0 {
		t.Fatalf("churn produced no arrivals: %+v", res)
	}
	if res.Events < int64(res.Churned)*2 {
		t.Fatalf("each churn VM needs at least arrive+depart events, got %d events for %d churned",
			res.Events, res.Churned)
	}
	if res.FalseMigrations > res.Migrations {
		t.Fatalf("false migrations exceed migrations: %+v", res)
	}
	if res.TrueAlarms+res.FalseAlarms != res.Alarms {
		t.Fatalf("alarm classification does not add up: %+v", res)
	}
	if res.Recoveries+res.ReAlarms > res.Migrations {
		t.Fatalf("more post-migration verdicts than migrations: %+v", res)
	}
}

// TestPlacementPolicies smoke-tests each placement policy deterministically.
func TestPlacementPolicies(t *testing.T) {
	for _, placement := range []string{PlaceLeastLoaded, PlaceRandom, PlaceFirstFit} {
		t.Run(placement, func(t *testing.T) {
			sc := busyScenario(31)
			sc.Placement = placement
			sc.Seconds = 150
			first, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if first.AlarmDigest != second.AlarmDigest || first.Events != second.Events {
				t.Fatalf("placement %q not deterministic", placement)
			}
		})
	}
}
