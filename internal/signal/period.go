package signal

import (
	"sort"
	"sync"
)

// PeriodEstimate is the result of DFT–ACF period detection.
type PeriodEstimate struct {
	// Period is the detected period in samples (an ACF-refined lag).
	Period int
	// Power is the periodogram power of the winning DFT candidate.
	Power float64
	// Candidates lists the DFT candidate periods that were examined, in
	// decreasing power order (useful for diagnostics).
	Candidates []int
}

// PeriodOptions tunes EstimatePeriod. The zero value selects the defaults
// used by SDS/P.
type PeriodOptions struct {
	// MinPeriod rejects candidates shorter than this many samples
	// (default 2): one- and two-sample "periods" are indistinguishable
	// from noise.
	MinPeriod int
	// MaxPeriod rejects candidates longer than this many samples (default
	// and hard cap: half the series length). Callers that know the
	// plausible period range — e.g. the SDS profiler, for which a very
	// long "period" is just slow phase alternation — can narrow it.
	MaxPeriod int
	// MaxCandidates bounds how many periodogram peaks are validated
	// against the ACF (default 8).
	MaxCandidates int
	// PowerThreshold is the fraction of the strongest (non-DC) periodogram
	// bin a candidate must reach to be considered (default 0.25). On top
	// of this, every candidate must carry at least three times the mean
	// non-DC bin power, so that featureless spectra yield no candidates.
	PowerThreshold float64
}

func (o PeriodOptions) withDefaults() PeriodOptions {
	if o.MinPeriod < 2 {
		o.MinPeriod = 2
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 8
	}
	if o.PowerThreshold <= 0 {
		o.PowerThreshold = 0.25
	}
	return o
}

// periodCandidate is one periodogram peak under consideration.
type periodCandidate struct {
	k     int
	power float64
}

// candidateList sorts candidates by decreasing power. It implements
// sort.Interface on its pointer so sorting performs no allocation.
type candidateList []periodCandidate

func (c *candidateList) Len() int           { return len(*c) }
func (c *candidateList) Less(i, j int) bool { return (*c)[i].power > (*c)[j].power }
func (c *candidateList) Swap(i, j int)      { (*c)[i], (*c)[j] = (*c)[j], (*c)[i] }

// PeriodEstimator runs DFT–ACF period detection with reusable state: FFT
// plans per window size, and scratch for the demeaned series, periodogram,
// autocorrelation and candidate lists. After the first call at a given
// window size, Estimate performs no heap allocation — this is what lets
// SDS/P re-estimate every ΔW_P windows without pressuring the collector.
//
// An estimator is NOT safe for concurrent use; each detector owns one. The
// Candidates slice of a returned PeriodEstimate aliases estimator scratch
// and is only valid until the next Estimate call — the EstimatePeriod free
// function returns a private copy instead.
type PeriodEstimator struct {
	plans       map[int]*FFTPlan
	cx          []complex128
	spec        []float64
	acf         []float64 // ACF result plus demeaned-series scratch behind it
	cands       candidateList
	candPeriods []int
}

// NewPeriodEstimator returns an empty estimator; buffers and plans are
// built lazily on first use at each window size.
func NewPeriodEstimator() *PeriodEstimator {
	return &PeriodEstimator{plans: make(map[int]*FFTPlan)}
}

// planFor returns the estimator's plan for size n, creating it on first use.
func (e *PeriodEstimator) planFor(n int) *FFTPlan {
	if p, ok := e.plans[n]; ok {
		return p
	}
	p := NewFFTPlan(n)
	e.plans[n] = p
	return p
}

// growComplex returns s resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func growComplex(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}

// growFloats is growComplex for float64 slices.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// periodogramInto fills out (length len(x)/2+1) with the power spectral
// density estimate |X_k|²/N of the demeaned series x. Bit-identical to the
// Periodogram free function.
func (e *PeriodEstimator) periodogramInto(out, x []float64) {
	n := len(x)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	e.cx = growComplex(e.cx, n)
	cx := e.cx
	for i, v := range x {
		cx[i] = complex(v-mean, 0)
	}
	e.planFor(n).Forward(cx, cx)
	for k := range out {
		re, im := real(cx[k]), imag(cx[k])
		out[k] = (re*re + im*im) / float64(n)
	}
}

// acfFFTThreshold is the naive-work level (n·maxLag multiply-adds) above
// which the Wiener–Khinchin O(n log n) autocorrelation wins over the direct
// O(n·maxLag) loop. Below it — e.g. SDS/P's W_P = 2p windows — the direct
// loop is both faster and bit-identical to the historical ACF.
const acfFFTThreshold = 1 << 14

// acfInto fills out (length maxLag+1, maxLag pre-clamped to len(x)-1) with
// the normalized autocorrelation of x, using dm (length ≥ len(x)) as
// demeaned-series scratch. Small problems use the direct loop
// (bit-identical to ACF); large ones — the profiler's whole-series ACF —
// use the FFT-based method, which agrees to ~1e-12 relative.
func (e *PeriodEstimator) acfInto(out, dm, x []float64, maxLag int) {
	n := len(x)
	if n*maxLag <= acfFFTThreshold {
		acfDirectInto(out, dm, x, maxLag)
		return
	}

	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var c0 float64
	for _, v := range x {
		d := v - mean
		c0 += d * d
	}
	out[0] = 1
	for i := 1; i <= maxLag; i++ {
		out[i] = 0
	}
	if c0 == 0 {
		return
	}

	// Wiener–Khinchin with zero-padding to m ≥ n+maxLag so circular
	// correlation equals linear correlation for every lag we read.
	m := 1
	for m < n+maxLag+1 {
		m <<= 1
	}
	e.cx = growComplex(e.cx, m)
	cx := e.cx
	for i, v := range x {
		cx[i] = complex(v-mean, 0)
	}
	for i := n; i < m; i++ {
		cx[i] = 0
	}
	p := e.planFor(m)
	p.Forward(cx, cx)
	for i := range cx {
		re, im := real(cx[i]), imag(cx[i])
		cx[i] = complex(re*re+im*im, 0)
	}
	p.Inverse(cx, cx)
	r0 := real(cx[0])
	if r0 == 0 {
		return
	}
	for lag := 1; lag <= maxLag; lag++ {
		out[lag] = real(cx[lag]) / r0
	}
}

// Estimate detects the dominant period of x; see EstimatePeriod for the
// method. The returned Candidates slice aliases estimator scratch.
func (e *PeriodEstimator) Estimate(x []float64, opts PeriodOptions) (PeriodEstimate, bool) {
	o := opts.withDefaults()
	n := len(x)
	if n < 2*o.MinPeriod {
		return PeriodEstimate{}, false
	}
	e.spec = growFloats(e.spec, n/2+1)
	spec := e.spec
	e.periodogramInto(spec, x)
	var total, peak float64
	for k := 1; k < len(spec); k++ {
		total += spec[k]
		if spec[k] > peak {
			peak = spec[k]
		}
	}
	if total == 0 {
		return PeriodEstimate{}, false
	}
	mean := total / float64(len(spec)-1)
	floor := 2 * mean
	if t := o.PowerThreshold * peak; t > floor {
		floor = t
	}
	maxPeriod := n / 2
	if o.MaxPeriod > 0 && o.MaxPeriod < maxPeriod {
		maxPeriod = o.MaxPeriod
	}
	e.cands = e.cands[:0]
	for k := 1; k < len(spec); k++ {
		period := n / k
		if period < o.MinPeriod || period > maxPeriod {
			continue
		}
		if spec[k] >= floor {
			e.cands = append(e.cands, periodCandidate{k: k, power: spec[k]})
		}
	}
	if len(e.cands) == 0 {
		return PeriodEstimate{}, false
	}
	sort.Sort(&e.cands)
	cands := e.cands
	if len(cands) > o.MaxCandidates {
		cands = cands[:o.MaxCandidates]
	}
	var est PeriodEstimate
	e.candPeriods = e.candPeriods[:0]
	maxLag := n / 2
	// One buffer serves both the ACF values and the direct path's demeaned
	// scratch, so first use at a window size costs a single allocation.
	e.acf = growFloats(e.acf, maxLag+1+n)
	acf := e.acf[:maxLag+1]
	e.acfInto(acf, e.acf[maxLag+1:], x, maxLag)
	for _, c := range cands {
		period := n / c.k
		e.candPeriods = append(e.candPeriods, period)
		if refined, ok := onACFHill(acf, period); ok {
			est.Period = refined
			est.Power = c.power
			est.Candidates = e.candPeriods
			return est, true
		}
	}
	est.Candidates = e.candPeriods
	return est, false
}

// estimatorPool recycles estimators behind the free functions so one-shot
// callers (the Stage-1 profiler, tests) still reuse plans and scratch.
var estimatorPool = sync.Pool{New: func() any { return NewPeriodEstimator() }}

func borrowEstimator() *PeriodEstimator  { return estimatorPool.Get().(*PeriodEstimator) }
func returnEstimator(e *PeriodEstimator) { estimatorPool.Put(e) }

// EstimatePeriod detects the dominant period of x using the combined
// DFT–ACF method the paper adopts from Vlachos et al. (SDM '05):
//
//  1. the periodogram proposes candidate periods at its strongest
//     frequencies (DFT alone may report spurious frequencies caused by
//     spectral leakage), and
//  2. each candidate is accepted only if it lies on a hill of the
//     autocorrelation function, where it is refined to the exact ACF local
//     maximum (ACF alone would also accept integer multiples of the true
//     period, so the DFT ordering decides which hill to trust first).
//
// ok is false when no candidate passes validation — i.e. the series has no
// detectable periodicity.
//
// This is a convenience wrapper over PeriodEstimator; hot loops that
// estimate repeatedly (SDS/P) should hold their own estimator, which makes
// every call allocation-free.
func EstimatePeriod(x []float64, opts PeriodOptions) (PeriodEstimate, bool) {
	e := borrowEstimator()
	est, ok := e.Estimate(x, opts)
	if len(est.Candidates) > 0 {
		est.Candidates = append([]int(nil), est.Candidates...)
	}
	returnEstimator(e)
	return est, ok
}

// IsPeriodic reports whether the series has a stable detectable period: the
// period estimated on the first and second halves of the series must both
// exist and agree within tolerance (fractional difference). This is the
// Stage-1 periodicity check the paper runs when a VM is newly started or
// migrated.
func IsPeriodic(x []float64, tolerance float64, opts PeriodOptions) (period int, ok bool) {
	if len(x) < 8 {
		return 0, false
	}
	e := borrowEstimator()
	defer returnEstimator(e)
	whole, ok := e.Estimate(x, opts)
	if !ok {
		return 0, false
	}
	half := len(x) / 2
	a, okA := e.Estimate(x[:half], opts)
	if !okA {
		return 0, false
	}
	b, okB := e.Estimate(x[half:], opts)
	if !okB {
		return 0, false
	}
	if relDiff(float64(a.Period), float64(b.Period)) > tolerance {
		return 0, false
	}
	if relDiff(float64(whole.Period), float64(a.Period)) > tolerance {
		// The whole-series estimate may lock onto a harmonic; trust the
		// halves when they agree with each other but not with it.
		return a.Period, true
	}
	return whole.Period, true
}

// relDiff returns |a-b| / max(|a|,|b|) (0 when both are 0).
func relDiff(a, b float64) float64 {
	den := max(absf(a), absf(b))
	if den == 0 {
		return 0
	}
	return absf(a-b) / den
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
