// Package workload models the cloud applications of the paper's measurement
// study (§3). It provides two substrates:
//
//   - Telemetry models (this file, profiles in apps.go): calibrated
//     stochastic generators of per-T_PCM (AccessNum, MissNum) counter
//     samples — the input every detector consumes. These reproduce the
//     statistical signatures the paper measured: non-stationary phase
//     shifts (which defeat the KStest baseline), periodic cache-access
//     patterns (PCA, FaceNet), and each attack's counter response.
//   - Micro-architectural workloads (microsim.go): access-stream programs
//     that run on the cachesim/membus/vmm machine and exhibit the same
//     behaviours from first principles.
package workload

import (
	"fmt"
	"math"

	"github.com/memdos/sds/internal/randx"
)

// Env describes the contention environment a VM experiences at an instant of
// virtual time. Attack intensities ramp from 0 (inactive) to 1 (full effect)
// as the attacker finishes probing and spins up.
type Env struct {
	// BusLock is the intensity of an atomic bus-locking attack (0..1).
	BusLock float64
	// Cleanse is the intensity of an LLC-cleansing attack (0..1).
	Cleanse float64
	// Quiesced reports that all co-located VMs are paused (KStest
	// reference collection): background contention vanishes.
	Quiesced bool
}

// Profile is the calibrated statistical signature of one application.
// See apps.go for the per-application values and their derivation.
type Profile struct {
	// Name is the application name (lower case, e.g. "terasort").
	Name string

	// BaseAccess is the mean AccessNum per T_PCM sample (arbitrary units).
	BaseAccess float64
	// AccessCV is the within-phase coefficient of variation of AccessNum.
	AccessCV float64
	// MissRatio is the base MissNum/AccessNum ratio.
	MissRatio float64
	// MissCV is the extra multiplicative noise on MissNum.
	MissCV float64

	// PhaseDelta is the fractional offset of the two execution-phase
	// levels: the application alternates between (1−δ) and (1+δ) times
	// its base level. Zero for stationary or purely periodic applications.
	PhaseDelta float64
	// MeanPhaseDur is the mean phase duration in seconds (exponentially
	// distributed). This is the knob that calibrates the application's
	// KStest false-alarm rate (§3.2 of the paper).
	MeanPhaseDur float64

	// Periodic marks applications with repeating cache-access patterns
	// (PCA, FaceNet in the paper).
	Periodic bool
	// PeriodSec is the cycle length in seconds of the periodic component.
	PeriodSec float64
	// PeriodAmp is the peak amplitude of the cycle relative to BaseAccess.
	PeriodAmp float64
	// PeriodJitter is the stationary standard deviation, in cycles, of the
	// mean-reverting phase noise on the periodic component (batches are
	// not perfectly uniform). It keeps the cycle from locking into
	// resonance with the KStest check interval without diffusing the
	// long-run spectrum, and stays well inside SDS/P's 20% deviation
	// tolerance.
	PeriodJitter float64

	// BurstProb is the per-second probability of a rare out-of-profile
	// burst (the residual behaviour that keeps SDS specificity below 100%).
	BurstProb float64
	// BurstDur is the burst duration in seconds.
	BurstDur float64
	// BurstMag is the burst magnitude relative to BaseAccess (±).
	BurstMag float64

	// BusLockDrop is the fraction of AccessNum suppressed by a bus-locking
	// attack at full intensity (Observation 1 of the paper).
	BusLockDrop float64
	// CleanseMissGain is the multiplicative inflation added to MissNum by
	// a cleansing attack at full intensity: miss → miss·(1+gain).
	CleanseMissGain float64
	// PeriodStretch is the fractional period increase under either attack
	// at full intensity (Observation 2; periodic applications only).
	PeriodStretch float64

	// OverheadSensitivity scales how strongly detector monitoring cost
	// slows this application (1 = average).
	OverheadSensitivity float64
}

// Validate reports configuration errors in a profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case p.BaseAccess <= 0:
		return fmt.Errorf("workload: %s: BaseAccess must be positive", p.Name)
	case p.AccessCV < 0 || p.MissCV < 0:
		return fmt.Errorf("workload: %s: CVs must be non-negative", p.Name)
	case p.MissRatio <= 0 || p.MissRatio > 1:
		return fmt.Errorf("workload: %s: MissRatio must be in (0,1]", p.Name)
	case p.PhaseDelta < 0 || p.PhaseDelta >= 1:
		return fmt.Errorf("workload: %s: PhaseDelta must be in [0,1)", p.Name)
	case p.PhaseDelta > 0 && p.MeanPhaseDur <= 0:
		return fmt.Errorf("workload: %s: phased profile needs MeanPhaseDur", p.Name)
	case p.Periodic && (p.PeriodSec <= 0 || p.PeriodAmp <= 0):
		return fmt.Errorf("workload: %s: periodic profile needs PeriodSec and PeriodAmp", p.Name)
	case p.BusLockDrop < 0 || p.BusLockDrop >= 1:
		return fmt.Errorf("workload: %s: BusLockDrop must be in [0,1)", p.Name)
	case p.CleanseMissGain < 0:
		return fmt.Errorf("workload: %s: CleanseMissGain must be non-negative", p.Name)
	}
	return nil
}

// Model is a running telemetry generator for one application instance. It
// is deterministic given its Profile and random stream, and not safe for
// concurrent use.
type Model struct {
	prof Profile
	rng  *randx.Rand

	t          float64
	phaseHigh  bool
	phaseUntil float64
	burstUntil float64
	burstSign  float64
	cyclePos   float64 // ideal position within the periodic cycle
	phaseNoise float64 // OU phase offset, in cycles

	// Per-sample precomputation: the lognormal noise parameters depend only
	// on the profile, and the OU decay terms only on dt (constant across a
	// run), so neither is recomputed inside Sample.
	accessNoise, missNoise randx.Noise
	ouDt, ouDecay, ouSigma float64
}

// NewModel returns a telemetry model for the profile, drawing randomness
// from rng.
func NewModel(prof Profile, rng *randx.Rand) (*Model, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: %s: nil rng", prof.Name)
	}
	m := &Model{
		prof:        prof,
		rng:         rng,
		accessNoise: randx.NewNoise(prof.AccessCV),
		missNoise:   randx.NewNoise(prof.MissCV),
	}
	if prof.PhaseDelta > 0 {
		m.phaseHigh = rng.Bool(0.5)
		m.phaseUntil = m.phaseDuration()
	}
	if prof.Periodic {
		m.cyclePos = rng.Float64()
		if prof.PeriodJitter > 0 {
			m.phaseNoise = rng.Normal(0, prof.PeriodJitter)
		}
	}
	return m, nil
}

// Profile returns the model's profile.
func (m *Model) Profile() Profile { return m.prof }

// phaseDuration draws the next phase length: bounded around the mean
// (uniform in [0.6, 1.4]·mean) so that a Stage-1 profile of a few phase
// cycles reliably sees both levels with a near-even mix, while the renewal
// rate still calibrates the KStest false-alarm probability
// (P(switch within w seconds) ≈ w/mean for w ≪ mean).
func (m *Model) phaseDuration() float64 {
	return m.prof.MeanPhaseDur * m.rng.Uniform(0.5, 1.5)
}

// Now returns the model's current virtual time.
func (m *Model) Now() float64 { return m.t }

// Sample advances virtual time by dt seconds under the given environment and
// returns the (AccessNum, MissNum) counters a PCM tool would report for that
// interval.
func (m *Model) Sample(dt float64, env Env) (access, miss float64) {
	p := &m.prof
	m.t += dt

	// Execution phases: two symmetric levels (1±δ). Symmetry keeps the
	// extreme levels within the Chebyshev band k·σ of a long profile while
	// still shifting the distribution enough for a KS test to reject.
	level := 1.0
	if p.PhaseDelta > 0 {
		for m.t >= m.phaseUntil {
			m.phaseHigh = !m.phaseHigh
			m.phaseUntil += m.phaseDuration()
		}
		if m.phaseHigh {
			level += p.PhaseDelta
		} else {
			level -= p.PhaseDelta
		}
	}

	// Periodic component: the cycle advances in *work* terms, so attacks
	// that slow the application stretch the observed period
	// (Observation 2). An asymmetric two-harmonic waveform mimics the
	// batch-processing ramps of PCA/FaceNet.
	wave := 0.0
	if p.Periodic {
		intensity := env.BusLock
		if env.Cleanse > intensity {
			intensity = env.Cleanse
		}
		period := p.PeriodSec * (1 + p.PeriodStretch*intensity)
		m.cyclePos += dt / period
		m.cyclePos -= math.Floor(m.cyclePos)
		if p.PeriodJitter > 0 {
			// Ornstein–Uhlenbeck phase noise with a ~10 s relaxation time:
			// bounded cycle-to-cycle desynchronization, sharp spectrum. The
			// decay terms depend only on dt, which is constant across a run.
			if dt != m.ouDt {
				const tau = 10.0
				m.ouDt = dt
				m.ouDecay = math.Exp(-dt / tau)
				m.ouSigma = p.PeriodJitter * math.Sqrt(1-m.ouDecay*m.ouDecay)
			}
			m.phaseNoise = m.phaseNoise*m.ouDecay + m.rng.Normal(0, m.ouSigma)
		}
		pos := m.cyclePos + m.phaseNoise
		pos -= math.Floor(pos)
		angle := 2 * math.Pi * pos
		wave = p.PeriodAmp * (0.8*math.Sin(angle) + 0.2*math.Sin(2*angle+1))
	}

	// Rare out-of-profile bursts.
	burst := 0.0
	if p.BurstProb > 0 {
		if m.t >= m.burstUntil && m.rng.Bool(p.BurstProb*dt) {
			m.burstUntil = m.t + p.BurstDur
			m.burstSign = 1
			if m.rng.Bool(0.5) {
				m.burstSign = -1
			}
		}
		if m.t < m.burstUntil {
			burst = m.burstSign * p.BurstMag
		}
	}

	access = p.BaseAccess * (level + wave + burst) * m.accessNoise.Factor(m.rng)
	if env.Quiesced {
		// Background contention from the lightly-loaded co-located VMs
		// disappears while they are throttled. The effect is small —
		// benign neighbours run near-idle utilities — and in particular
		// small enough that it does not by itself separate reference from
		// monitored distributions.
		access *= 1.005
	}

	// Bus locking starves the VM of bus slots: AccessNum collapses
	// (Observation 1, bus-lock half).
	if env.BusLock > 0 {
		access *= 1 - p.BusLockDrop*env.BusLock
	}
	if access < 0 {
		access = 0
	}

	missRatio := p.MissRatio
	if env.Quiesced {
		missRatio *= 0.995
	}
	miss = access * missRatio * m.missNoise.Factor(m.rng)
	// Cleansing evicts the VM's lines: MissNum inflates (Observation 1,
	// cleansing half) while AccessNum is largely unaffected.
	if env.Cleanse > 0 {
		miss *= 1 + p.CleanseMissGain*env.Cleanse
	}
	if miss > access {
		miss = access
	}
	return access, miss
}
