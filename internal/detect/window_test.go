package detect

import (
	"reflect"
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/timeseries"
	"github.com/memdos/sds/internal/workload"
)

// These tests pin the ObserveMA window-level batch-observation path: feeding
// a detector the moving-average series directly must be indistinguishable
// from feeding the raw samples the averages came from. The event-driven
// cloud simulator relies on this equivalence when it generates telemetry in
// closed-form ΔW-sample blocks.

// maEquivalence streams samples into `raw` via Observe and the reference
// moving-average series into `windowed` via ObserveMA, then compares alarms.
func maEquivalence(t *testing.T, raw Detector, windowed WindowObserver, samples []pcm.Sample, cfg Config) {
	t.Helper()
	maA, err := timeseries.NewMovingAverager(cfg.W, cfg.DW)
	if err != nil {
		t.Fatal(err)
	}
	maM, err := timeseries.NewMovingAverager(cfg.W, cfg.DW)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		raw.Observe(s)
		mA, okA := maA.Push(s.Access)
		mM, okM := maM.Push(s.Miss)
		if okA != okM {
			t.Fatalf("averagers desynchronized at t=%v", s.T)
		}
		if okA {
			windowed.ObserveMA(s.T, mA, mM)
		}
	}
	wd, ok := windowed.(Detector)
	if !ok {
		t.Fatalf("window observer %T is not a Detector", windowed)
	}
	if got, want := wd.Alarms(), raw.Alarms(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ObserveMA alarms diverge from Observe:\n got %+v\nwant %+v", got, want)
	}
	if wd.Alarmed() != raw.Alarmed() {
		t.Fatalf("final alarm state: ObserveMA %v, Observe %v", wd.Alarmed(), raw.Alarmed())
	}
}

func TestSDSBObserveMAEquivalence(t *testing.T) {
	prof := steadyProfile(t, workload.KMeans, 311)
	cfg := DefaultConfig()
	sched := attack.Schedule{Kind: attack.BusLock, Start: 60, Ramp: 10}
	samples := genSamples(t, workload.KMeans, 312, 180, sched)
	raw, err := NewSDSB(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := NewSDSB(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maEquivalence(t, raw, windowed, samples, cfg)
	if raw.AlarmCount() == 0 {
		t.Fatal("equivalence vacuous: no alarms raised under attack")
	}
}

func TestSDSPObserveMAEquivalence(t *testing.T) {
	prof := steadyProfile(t, workload.FaceNet, 313)
	cfg := DefaultConfig()
	sched := attack.Schedule{Kind: attack.Cleanse, Start: 120, Ramp: 10}
	samples := genSamples(t, workload.FaceNet, 314, 300, sched)
	raw, err := NewSDSP(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := NewSDSP(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maEquivalence(t, raw, windowed, samples, cfg)
}

func TestSDSObserveMAEquivalence(t *testing.T) {
	for _, app := range []string{workload.KMeans, workload.FaceNet} {
		prof := steadyProfile(t, app, 315)
		cfg := DefaultConfig()
		sched := attack.Schedule{Kind: attack.BusLock, Start: 90, Ramp: 8}
		samples := genSamples(t, app, 316, 240, sched)
		raw, err := NewSDS(prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		windowed, err := NewSDS(prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		maEquivalence(t, raw, windowed, samples, cfg)
	}
}

// TestObserveMAZeroAlloc pins the window-level path at zero steady-state
// allocations, like the raw Observe path: the cloud simulator calls it once
// per ΔW block for every monitored VM in the fleet.
func TestObserveMAZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	build := func(t *testing.T, app string, new func(Profile, Config) (WindowObserver, error)) WindowObserver {
		t.Helper()
		prof := steadyProfile(t, app, 317)
		d, err := new(prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name string
		d    WindowObserver
	}{
		{"SDSB", build(t, workload.KMeans, func(p Profile, c Config) (WindowObserver, error) { return NewSDSB(p, c) })},
		{"SDSP", build(t, workload.FaceNet, func(p Profile, c Config) (WindowObserver, error) { return NewSDSP(p, c) })},
		{"SDS", build(t, workload.FaceNet, func(p Profile, c Config) (WindowObserver, error) { return NewSDS(p, c) })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm with enough windows to fill the SDS/P ring and trigger
			// estimation rounds, then measure.
			tick := 0.0
			next := func() (float64, float64, float64) {
				tick += float64(cfg.DW) * cfg.TPCM
				return tick, 1000 + 10*float64(int(tick)%7), 100 + float64(int(tick)%5)
			}
			for i := 0; i < 400; i++ {
				tc.d.ObserveMA(next())
			}
			if allocs := testing.AllocsPerRun(400, func() {
				tc.d.ObserveMA(next())
			}); allocs != 0 {
				t.Fatalf("%s.ObserveMA: %.2f allocs/op in steady state, want 0", tc.name, allocs)
			}
		})
	}
}
