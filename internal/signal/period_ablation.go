package signal

// Single-method period estimators. The paper (§4.2.2) explains why SDS/P
// uses neither alone: DFT "may detect false frequencies that do not exist
// in the time series" (spectral leakage), while ACF "may result in the
// detection of multiples of a true period". These estimators exist so the
// repository can reproduce that motivation experimentally (see
// experiment.PeriodEstimatorAblation); EstimatePeriod is the combined
// method SDS/P actually uses.

// EstimatePeriodDFTOnly returns the period corresponding to the strongest
// periodogram bin, with no ACF validation.
func EstimatePeriodDFTOnly(x []float64, opts PeriodOptions) (int, bool) {
	o := opts.withDefaults()
	n := len(x)
	if n < 2*o.MinPeriod {
		return 0, false
	}
	spec := Periodogram(x)
	maxPeriod := n / 2
	if o.MaxPeriod > 0 && o.MaxPeriod < maxPeriod {
		maxPeriod = o.MaxPeriod
	}
	best, bestPower := 0, 0.0
	var total float64
	for k := 1; k < len(spec); k++ {
		total += spec[k]
		period := n / k
		if period < o.MinPeriod || period > maxPeriod {
			continue
		}
		if spec[k] > bestPower {
			best, bestPower = period, spec[k]
		}
	}
	if best == 0 || total == 0 {
		return 0, false
	}
	// The same significance floor the combined method uses, so the
	// comparison isolates the missing ACF validation.
	mean := total / float64(len(spec)-1)
	if bestPower < 2*mean {
		return 0, false
	}
	return best, true
}

// EstimatePeriodACFOnly returns the lag of the first significant local
// maximum of the autocorrelation function, with no spectral guidance. This
// is where multiple-of-period errors come from: if noise suppresses the
// first peak slightly, the next peak (at 2p, 3p, …) wins.
func EstimatePeriodACFOnly(x []float64, opts PeriodOptions) (int, bool) {
	o := opts.withDefaults()
	n := len(x)
	if n < 2*o.MinPeriod {
		return 0, false
	}
	maxLag := n / 2
	if o.MaxPeriod > 0 && o.MaxPeriod < maxLag {
		maxLag = o.MaxPeriod
	}
	acf := ACF(x, maxLag)
	best, bestVal := 0, 0.0
	for lag := o.MinPeriod; lag < len(acf); lag++ {
		if lag == 0 || lag+1 >= len(acf) {
			continue
		}
		// Local maximum above the noise floor.
		if acf[lag] > acf[lag-1] && acf[lag] >= acf[lag+1] && acf[lag] > bestVal {
			best, bestVal = lag, acf[lag]
		}
	}
	const minCorrelation = 0.2
	if best == 0 || bestVal < minCorrelation {
		return 0, false
	}
	return best, true
}
