package feed

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"testing"

	"github.com/memdos/sds/internal/pcm"
)

// scanDecode drains stream through a FrameScanner the way the event loop
// does: random-sized byte windows, a carry for the partial trailing frame,
// and Truncated mapping the leftover at EOF. Returns everything a
// BinReader-based drain returns so the two can be compared field by field.
func scanDecode(stream []byte, r *rand.Rand) (samples []pcm.Sample, quarantined, frames int, err error) {
	var sc FrameScanner
	dst := make([]pcm.Sample, 0, MaxFrameSamples)
	var carry []byte
	pos := 0
	for {
		// Append a random-sized chunk, as if one socket read arrived.
		n := 1 + r.Intn(97)
		if pos+n > len(stream) {
			n = len(stream) - pos
		}
		carry = append(carry, stream[pos:pos+n]...)
		pos += n
		for {
			consumed, n, q, err := sc.Next(carry, dst)
			if err == io.EOF {
				return samples, quarantined, sc.Frames(), nil
			}
			if err != nil {
				return samples, quarantined, sc.Frames(), err
			}
			if consumed == 0 {
				break
			}
			quarantined += q
			samples = append(samples, dst[:n]...)
			carry = carry[consumed:]
		}
		if pos >= len(stream) {
			return samples, quarantined, sc.Frames(), sc.Truncated(carry)
		}
	}
}

// readerDecode drains stream through the BinReader reference decoder.
func readerDecode(stream []byte) (samples []pcm.Sample, quarantined, frames int, err error) {
	r := NewBinReader(bytes.NewReader(stream))
	batch := make([]pcm.Sample, 0, MaxFrameSamples)
	for {
		n, q, err := r.ReadFrame(batch)
		quarantined += q
		if err == io.EOF {
			return samples, quarantined, r.Frames(), nil
		}
		if err != nil {
			return samples, quarantined, r.Frames(), err
		}
		samples = append(samples, batch[:n]...)
	}
}

// compareDecodes asserts the two decoders agree on every observable.
func compareDecodes(t *testing.T, stream []byte, r *rand.Rand) {
	t.Helper()
	ss, sq, sf, serr := scanDecode(stream, r)
	rs, rq, rf, rerr := readerDecode(stream)
	if (serr == nil) != (rerr == nil) {
		t.Fatalf("scanner err %v, reader err %v", serr, rerr)
	}
	if serr != nil && serr.Error() != rerr.Error() {
		t.Fatalf("error text diverged:\n scanner: %s\n reader:  %s", serr, rerr)
	}
	if sq != rq {
		t.Fatalf("scanner quarantined %d, reader %d", sq, rq)
	}
	if sf != rf {
		t.Fatalf("scanner counted %d frames, reader %d", sf, rf)
	}
	if len(ss) != len(rs) {
		t.Fatalf("scanner decoded %d samples, reader %d", len(ss), len(rs))
	}
	for i := range ss {
		if ss[i] != rs[i] {
			t.Fatalf("sample %d diverged: scanner %+v, reader %+v", i, ss[i], rs[i])
		}
	}
}

// randomStream renders a random well-formed frame sequence with occasional
// non-finite samples, ended by an end frame, a bare frame boundary, or
// nothing special (the caller may truncate further).
func randomStream(r *rand.Rand) []byte {
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	nonFin := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	frames := r.Intn(8)
	for f := 0; f < frames; f++ {
		n := 1 + r.Intn(2*MaxFrameSamples) // WriteBatch splits past the cap
		batch := make([]pcm.Sample, n)
		for i := range batch {
			s := pcm.Sample{T: float64(i) * 0.01, Access: r.Float64() * 1000, Miss: r.Float64() * 100}
			if r.Intn(13) == 0 {
				switch r.Intn(3) {
				case 0:
					s.T = nonFin[r.Intn(3)]
				case 1:
					s.Access = nonFin[r.Intn(3)]
				default:
					s.Miss = nonFin[r.Intn(3)]
				}
			}
			batch[i] = s
		}
		w.WriteBatch(batch)
	}
	if r.Intn(2) == 0 {
		w.End()
	} else {
		w.Flush()
	}
	return buf.Bytes()
}

// TestFrameScannerMatchesBinReader is the equivalence contract the scanner
// documents: over randomized streams — damaged, truncated at arbitrary
// byte offsets, or clean — both decode paths yield identical samples,
// quarantine counts, frame counts, and byte-identical error text.
func TestFrameScannerMatchesBinReader(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		stream := randomStream(r)
		compareDecodes(t, stream, r)
		if len(stream) > 0 {
			// Truncate at a random offset: header cuts, payload cuts, clean
			// boundary cuts — whatever the offset lands on.
			compareDecodes(t, stream[:r.Intn(len(stream))], r)
		}
		// Corrupt one byte: may hit a frame type (framing lost), a count
		// (bad count or a desync), or a float payload (still well-framed).
		if len(stream) > 0 {
			damaged := append([]byte(nil), stream...)
			damaged[r.Intn(len(damaged))] ^= byte(1 + r.Intn(255))
			compareDecodes(t, damaged, r)
		}
	}
}

// TestFrameScannerEveryPrefix walks every prefix of a small valid stream:
// each cut point must map to exactly the error (or clean EOF) BinReader
// reports for the same bytes.
func TestFrameScannerEveryPrefix(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	w.WriteBatch([]pcm.Sample{{T: 0.01, Access: 10, Miss: 1}, {T: 0.02, Access: math.NaN(), Miss: 2}})
	w.WriteBatch([]pcm.Sample{{T: 0.03, Access: 30, Miss: 3}})
	w.End()
	stream := buf.Bytes()
	for cut := 0; cut <= len(stream); cut++ {
		compareDecodes(t, stream[:cut], r)
	}
}

// TestFrameScannerExplicitFramingErrors pins the fatal paths' positions
// and text against the reader on hand-built wire bytes.
func TestFrameScannerExplicitFramingErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	valid := func() []byte {
		var buf bytes.Buffer
		w := NewBinWriter(&buf)
		w.WriteBatch([]pcm.Sample{{T: 0.01, Access: 1, Miss: 0}})
		w.Flush()
		return buf.Bytes()
	}
	badCount := func(count uint16) []byte {
		b := []byte{frameSamples, 0, 0}
		binary.LittleEndian.PutUint16(b[1:3], count)
		return b
	}
	for name, stream := range map[string][]byte{
		"unknown type first":      {0x7f},
		"unknown type mid-stream": append(valid(), 0x99),
		"count zero":              badCount(0),
		"count over cap":          badCount(MaxFrameSamples + 1),
		"count over cap later":    append(valid(), badCount(2000)...),
		"bytes after end frame":   append(append(valid(), frameEnd), 0x7f),
	} {
		t.Run(name, func(t *testing.T) { compareDecodes(t, stream, r) })
	}
}
