// Package sds is the public API of this repository: a reproduction of
// "Impact of Memory DoS Attacks on Cloud Applications and Real-Time
// Detection Schemes" (Li, Sen, Shen, Chuah; ICPP 2020).
//
// It provides the paper's two lightweight statistical detectors for memory
// denial-of-service attacks between co-located cloud VMs, the combined
// detection system, and the prior-work baseline they are evaluated against:
//
//   - SDS/B (NewSDSB): boundary-based detection. An EWMA of PCM counter
//     samples is compared against the profiled normal range
//     [μ−kσ, μ+kσ]; H_C consecutive violations raise the alarm.
//     Chebyshev's inequality bounds the false-alarm rate for any counter
//     distribution (ChebyshevHC).
//   - SDS/P (NewSDSP): period-based detection for applications with
//     periodic cache-access patterns. The period of the moving-average
//     counter series is tracked with a DFT+ACF estimator; H_P consecutive
//     >20% deviations from the profiled period raise the alarm.
//   - SDS (NewSDS): the combined system — SDS/B alone for non-periodic
//     applications, the conjunction of both schemes for periodic ones.
//   - KStest (NewKSTest): the baseline of Zhang et al. (AsiaCCS '17),
//     which throttles co-located VMs to collect reference samples and
//     compares them with monitored samples using the two-sample
//     Kolmogorov–Smirnov test.
//
// Detectors consume a stream of PCM Samples — per-interval LLC access and
// miss counts for the protected VM — through the Detector interface, and
// expose their alarm state after every observation.
//
// Because the paper's testbed (Intel Xeon LLC, KVM, Intel PCM, HiBench
// workloads) requires privileged hardware access, the package also ships a
// calibrated simulation substrate: NewApplication instantiates telemetry
// models of the paper's ten cloud applications, and AttackSchedule injects
// bus-locking and LLC-cleansing attacks into their counter streams. The
// Simulate helper wires a model, a schedule and a detector into a
// closed-loop run. See DESIGN.md for the full substitution map and
// EXPERIMENTS.md for measured-vs-published results.
package sds
