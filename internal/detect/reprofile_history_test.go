package detect

import (
	"testing"

	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/workload"
)

// These tests pin the reprofiling alarm-history contract: swapping in a
// fresh detector generation must not rewrite the past. Before the fix,
// Reprofile() dropped the retired generation's alarms, so AlarmCount()
// regressed and an emitted-count consumer (the server's alarm-forwarding
// poll slices Alarms()[emitted:]) either suppressed every later rising
// edge or sliced out of range.

// reprofilerUnderShift drives a Reprofiler through: normal traffic → a
// behavioural shift that raises a persistent alarm → Reprofile(). It
// returns the reprofiler and a feed function bound to the shifted model.
func reprofilerUnderShift(t *testing.T) (*Reprofiler, func(seconds float64)) {
	t.Helper()
	cfg := DefaultConfig()
	prof := steadyProfile(t, workload.KMeans, 141)
	r, err := NewReprofiler(workload.KMeans, prof, cfg, 600)
	if err != nil {
		t.Fatal(err)
	}
	changed := shiftedModel(t, 1.6, 142)
	now := 0.0
	feed := func(seconds float64) {
		n := int(seconds / cfg.TPCM)
		for i := 0; i < n; i++ {
			now += cfg.TPCM
			a, miss := changed.Sample(cfg.TPCM, workload.Env{})
			r.Observe(pcm.Sample{T: now, Access: a, Miss: miss})
		}
	}
	feed(900) // stale-profile alarm materializes, buffer fills with shifted traffic
	if !r.Alarmed() || r.AlarmCount() == 0 {
		t.Fatal("no persistent alarm before reprofiling; scenario did not materialize")
	}
	return r, feed
}

func TestReprofileKeepsAlarmHistory(t *testing.T) {
	r, feed := reprofilerUnderShift(t)
	before := r.AlarmCount()
	beforeAlarms := r.Alarms()

	if _, err := r.Reprofile(); err != nil {
		t.Fatal(err)
	}
	if got := r.AlarmCount(); got < before {
		t.Fatalf("AlarmCount regressed across Reprofile: %d → %d", before, got)
	}
	after := r.Alarms()
	if len(after) < len(beforeAlarms) {
		t.Fatalf("Alarms shrank across Reprofile: %d → %d", len(beforeAlarms), len(after))
	}
	for i, a := range beforeAlarms {
		if after[i] != a {
			t.Fatalf("alarm %d rewritten across Reprofile: %+v → %+v", i, a, after[i])
		}
	}

	// The fresh generation must still be able to raise new edges that land
	// after the history. A second behavioural shift on top of the new
	// profile re-alarms; its alarms must extend, not replace, the history.
	feed(60) // settle the fresh detector on the now-normal traffic
	if r.Alarmed() {
		t.Fatal("fresh generation still alarmed on re-profiled traffic")
	}
	count := r.AlarmCount()
	if count < before {
		t.Fatalf("AlarmCount regressed after settling: %d → %d", before, count)
	}
}

// TestReprofileEmittedCountConsumer replays the server's alarm-forwarding
// pattern against a Reprofiler across a reprofiling window: poll
// AlarmCount(), forward Alarms()[emitted:], advance emitted. With history
// dropped this pattern slices out of range or never forwards again.
func TestReprofileEmittedCountConsumer(t *testing.T) {
	r, feed := reprofilerUnderShift(t)

	emitted := 0
	var forwarded []Alarm
	pump := func() {
		t.Helper()
		if r.AlarmCount() == emitted {
			return
		}
		alarms := r.Alarms()
		if len(alarms) < emitted {
			t.Fatalf("AlarmCount/Alarms shrank below emitted index: %d < %d", len(alarms), emitted)
		}
		for _, a := range alarms[emitted:] {
			emitted++
			forwarded = append(forwarded, a)
		}
	}
	pump()
	if len(forwarded) == 0 {
		t.Fatal("no alarms forwarded before reprofiling")
	}
	preReprofile := len(forwarded)

	if _, err := r.Reprofile(); err != nil {
		t.Fatal(err)
	}
	pump() // must be a no-op, not a crash or a re-emission
	if len(forwarded) != preReprofile {
		t.Fatalf("reprofiling duplicated edges: %d forwarded after swap, want %d", len(forwarded), preReprofile)
	}

	// Drive the fresh generation back into alarm with a second shift —
	// 2.6× the original base, i.e. ~1.6× the just-learned profile — and
	// verify its new edges flow through the same consumer.
	feed(60) // settle the fresh detector on re-profiled traffic first
	pump()
	shifted := shiftedModel(t, 2.6, 143)
	now := r.lastSeen
	for i := 0; i < int(600/r.cfg.TPCM); i++ {
		now += r.cfg.TPCM
		a, miss := shifted.Sample(r.cfg.TPCM, workload.Env{})
		r.Observe(pcm.Sample{T: now, Access: a, Miss: miss})
	}
	pump()
	if len(forwarded) <= preReprofile {
		t.Fatal("post-reprofile rising edge never reached the emitted-count consumer")
	}
	for i := 1; i < len(forwarded); i++ {
		if forwarded[i].T < forwarded[i-1].T {
			t.Fatalf("forwarded alarms out of order at %d: %v after %v", i, forwarded[i].T, forwarded[i-1].T)
		}
	}
}
