package cachesim

import (
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{}, true},
		{"paper-like scaled", Config{SizeBytes: 1 << 20, LineSize: 64, Ways: 16}, true},
		{"non power-of-two line", Config{SizeBytes: 1 << 20, LineSize: 48, Ways: 16}, false},
		{"negative size", Config{SizeBytes: -1, LineSize: 64, Ways: 4}, false},
		{"lines not divisible by ways", Config{SizeBytes: 64 * 3, LineSize: 64, Ways: 2}, false},
		{"non power-of-two sets", Config{SizeBytes: 64 * 12, LineSize: 64, Ways: 4}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("New(%+v) err = %v, want ok=%v", tt.cfg, err, tt.ok)
			}
		})
	}
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64 * 1024, LineSize: 64, Ways: 4})
	if got, want := c.NumSets(), 256; got != want {
		t.Fatalf("NumSets = %d, want %d", got, want)
	}
	// Addresses differing only inside the line share a set and tag (hit).
	if c.Access(0, 0x1000) {
		t.Fatal("first access hit")
	}
	if !c.Access(0, 0x103F) {
		t.Fatal("same-line access missed")
	}
	if c.SetOf(0x1000) != c.SetOf(0x103F) {
		t.Fatal("same line mapped to different sets")
	}
}

func TestAddrForSetRoundTrip(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1 << 18, LineSize: 64, Ways: 8})
	for _, set := range []int{0, 1, 100, c.NumSets() - 1} {
		for tag := uint64(0); tag < 4; tag++ {
			addr := c.AddrForSet(set, tag)
			if got := c.SetOf(addr); got != set {
				t.Fatalf("AddrForSet(%d,%d) maps to set %d", set, tag, got)
			}
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustNew(t, Config{})
	if c.Access(1, 4096) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1, 4096) {
		t.Fatal("warm access missed")
	}
	st := c.Stats(1)
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64 * 8, LineSize: 64, Ways: 4}) // 2 sets
	set := 0
	// Fill the 4 ways of set 0.
	for tag := uint64(0); tag < 4; tag++ {
		c.Access(0, c.AddrForSet(set, tag))
	}
	// Touch tag 0 to make it MRU; then insert a 5th tag.
	c.Access(0, c.AddrForSet(set, 0))
	c.Access(0, c.AddrForSet(set, 4))
	// Tag 1 was LRU and must be gone; tag 0 must survive.
	if !c.Access(0, c.AddrForSet(set, 0)) {
		t.Fatal("MRU line was evicted")
	}
	if c.Access(0, c.AddrForSet(set, 1)) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestCrossOwnerEviction(t *testing.T) {
	// The cleansing mechanism: attacker sweeps a set, victim lines vanish.
	c := mustNew(t, Config{SizeBytes: 64 * 16, LineSize: 64, Ways: 8}) // 2 sets
	const victim, attacker Owner = 0, 1
	set := 1
	for tag := uint64(0); tag < 4; tag++ {
		c.Access(victim, c.AddrForSet(set, tag))
	}
	if got := c.Occupancy(set, victim); got != 4 {
		t.Fatalf("victim occupancy = %d, want 4", got)
	}
	// Attacker sweeps 8 fresh tags through the same set.
	for tag := uint64(100); tag < 108; tag++ {
		c.Access(attacker, c.AddrForSet(set, tag))
	}
	if got := c.Occupancy(set, victim); got != 0 {
		t.Fatalf("victim occupancy after cleansing = %d, want 0", got)
	}
	if got := c.Stats(attacker).EvictedOthers; got != 4 {
		t.Fatalf("attacker EvictedOthers = %d, want 4", got)
	}
	// Victim re-access now misses: the attack inflated its miss count.
	before := c.Stats(victim).Misses
	for tag := uint64(0); tag < 4; tag++ {
		c.Access(victim, c.AddrForSet(set, tag))
	}
	if got := c.Stats(victim).Misses - before; got != 4 {
		t.Fatalf("victim misses after cleansing = %d, want 4", got)
	}
}

func TestWorkingSetFitsNoSteadyStateMisses(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1 << 20, LineSize: 64, Ways: 16})
	const lines = 1000
	// Warm-up pass.
	c.AccessSeries(0, 0, 64, lines)
	// Steady state: no more misses.
	if misses := c.AccessSeries(0, 0, 64, lines); misses != 0 {
		t.Fatalf("steady-state misses = %d, want 0", misses)
	}
}

func TestWorkingSetExceedsCacheAlwaysMisses(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64 * 64, LineSize: 64, Ways: 4})
	// Working set twice the cache size, sequential sweep: with LRU this
	// thrashes and every access misses after warm-up too.
	const lines = 128
	c.AccessSeries(0, 0, 64, lines)
	if misses := c.AccessSeries(0, 0, 64, lines); misses != lines {
		t.Fatalf("thrash misses = %d, want %d", misses, lines)
	}
}

func TestStatsInvariantProperty(t *testing.T) {
	// Property: for random access streams, Hits+Misses == Accesses per
	// owner, occupancy never exceeds capacity, and per-set occupancy never
	// exceeds associativity.
	c := mustNew(t, Config{SizeBytes: 64 * 256, LineSize: 64, Ways: 4})
	r := randx.New(1, 2)
	f := func(n uint16) bool {
		count := int(n)%2000 + 1
		for i := 0; i < count; i++ {
			owner := Owner(r.IntN(3))
			c.Access(owner, uint64(r.IntN(1<<20)))
		}
		var total uint64
		for o := Owner(0); o < 3; o++ {
			st := c.Stats(o)
			if st.Hits+st.Misses != st.Accesses {
				return false
			}
			total += st.Accesses
		}
		if c.TotalOccupancy() > 256 {
			return false
		}
		for set := 0; set < c.NumSets(); set++ {
			occ := 0
			for o := Owner(0); o < 3; o++ {
				occ += c.Occupancy(set, o)
			}
			if occ > 4 {
				return false
			}
			if c.Occupancy(set, 0)+c.ForeignOccupancy(set, 0) != occ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsUnknownOwner(t *testing.T) {
	c := mustNew(t, Config{})
	if got := c.Stats(7); got != (Stats{}) {
		t.Fatalf("unknown owner stats = %+v", got)
	}
	if got := c.Stats(NoOwner); got != (Stats{}) {
		t.Fatalf("NoOwner stats = %+v", got)
	}
}

func TestOccupancyOutOfRangeSet(t *testing.T) {
	c := mustNew(t, Config{})
	if c.Occupancy(-1, 0) != 0 || c.Occupancy(c.NumSets(), 0) != 0 {
		t.Fatal("out-of-range set occupancy not zero")
	}
	if c.ForeignOccupancy(-1, 0) != 0 {
		t.Fatal("out-of-range foreign occupancy not zero")
	}
}
