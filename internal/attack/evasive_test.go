package attack

import (
	"math"
	"testing"

	"github.com/memdos/sds/internal/randx"
)

// timeGrid returns deterministic sample times spanning negative offsets,
// cycle boundaries and long horizons, seeded per test case.
func timeGrid(seed uint64, n int, span float64) []float64 {
	rng := randx.Derive(seed, 0xe7a51)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Uniform(-5, span)
	}
	return out
}

// TestCoordinatedSuperposition pins the composition invariant: the
// coordinated factor equals the sum of its members' factors (the tiling
// construction keeps the sum in [0, 1], so the min(1, Σ) clamp never
// engages), and exactly one member is active at any instant inside the
// attack span.
func TestCoordinatedSuperposition(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		for _, burst := range []float64{0.5, 1.7, 3, 6.5} {
			c := NewCoordinated(k, burst)
			members := c.Members()
			if len(members) != k {
				t.Fatalf("k=%d burst=%v: %d members", k, burst, len(members))
			}
			for _, rel := range timeGrid(uint64(k)<<8|uint64(burst*10), 400, 120) {
				sum := 0.0
				for _, m := range members {
					sum += m.Factor(rel)
				}
				if got := c.Factor(rel); got != sum {
					t.Fatalf("k=%d burst=%v rel=%v: factor %v != member sum %v",
						k, burst, rel, got, sum)
				}
				if sum > 1 {
					t.Fatalf("k=%d burst=%v rel=%v: member bursts overlap (sum %v)",
						k, burst, rel, sum)
				}
				if rel >= 0 && sum != 1 {
					t.Fatalf("k=%d burst=%v rel=%v: superposition not continuous (sum %v)",
						k, burst, rel, sum)
				}
			}
		}
	}
}

// TestDutyCycleBelowStreakWindows pins the streak-budget construction: at
// any (windowStep, H_C) geometry, the number of consecutive MA window
// boundaries falling inside an on-burst never reaches H_C, and the off
// span covers the guard so the streak can reset.
func TestDutyCycleBelowStreakWindows(t *testing.T) {
	for _, hc := range []int{2, 9, 20, 30, 45} {
		for _, step := range []float64{0.25, 0.5, 1.0} {
			d := DutyCycleBelowStreak(step, hc)
			if d.On <= 0 || d.Off < d.On {
				t.Fatalf("hc=%d step=%v: degenerate cycle %+v", hc, step, d)
			}
			maxRun, run := 0, 0
			for i := 0; i < 4000; i++ {
				if d.Factor(float64(i)*step) > 0 {
					run++
					if run > maxRun {
						maxRun = run
					}
				} else {
					run = 0
				}
			}
			// A burst of n window-steps can cover n+1 boundaries.
			if limit := hc - 1; hc > streakGuardWindows+2 && maxRun > limit {
				t.Fatalf("hc=%d step=%v: %d consecutive active windows ≥ H_C budget %d",
					hc, step, maxRun, limit)
			}
			if maxRun == 0 {
				t.Fatalf("hc=%d step=%v: never active", hc, step)
			}
		}
	}
}

// strategiesUnderTest returns a labelled lineup covering every strategy
// with healthy and degenerate knobs.
func strategiesUnderTest() map[string]Strategy {
	return map[string]Strategy{
		"duty":            DutyCycle{On: 6.5, Off: 8},
		"duty-phase":      DutyCycle{On: 2, Off: 3, Phase: 1.3},
		"duty-always":     DutyCycle{On: 2},
		"duty-never":      DutyCycle{Off: 3},
		"mimic":           PeriodMimic{Period: 8.5, Duty: 0.3, Cycles: 1},
		"mimic-multi":     PeriodMimic{Period: 6, Duty: 0.45, Cycles: 2, Phase: 2},
		"mimic-zero":      PeriodMimic{},
		"slow":            SlowRamp{Rise: 150},
		"slow-zero":       SlowRamp{},
		"coord":           NewCoordinated(3, 6.5),
		"coord-one":       NewCoordinated(1, 2),
		"coord-zero":      NewCoordinated(0, 0),
		"reprofile":       ReprofileTimed{Every: 120, Quiet: 20},
		"reprofile-off":   ReprofileTimed{Every: 120, Quiet: 20, Offset: 33},
		"reprofile-inner": ReprofileTimed{Every: 90, Quiet: 15, Inner: DutyCycle{On: 4, Off: 5}},
		"reprofile-solid": ReprofileTimed{Every: 120, Quiet: 130},
		"reprofile-zero":  ReprofileTimed{},
	}
}

// TestScheduleMeanIntensityMatchesQuadrature checks every strategy's
// analytic MeanFactor against dense numeric integration of the composed
// Schedule.Intensity — the contract the window-fidelity cloud simulator
// depends on.
func TestScheduleMeanIntensityMatchesQuadrature(t *testing.T) {
	for name, st := range strategiesUnderTest() {
		sched := Schedule{Kind: BusLock, Start: 300, Ramp: 12, Stop: 580, Peak: 0.8, Strategy: st}
		rng := randx.Derive(0xbead, uint64(len(name)))
		for trial := 0; trial < 60; trial++ {
			a := rng.Uniform(250, 600)
			b := a + rng.Uniform(0.1, 90)
			got := sched.MeanIntensity(a, b)
			const steps = 20000
			sum := 0.0
			for i := 0; i < steps; i++ {
				sum += sched.Intensity(a + (float64(i)+0.5)*(b-a)/steps)
			}
			want := sum / steps
			// Windows overlapping the ramp exercise the fixed-step ramp
			// quadrature, which is approximate by design for discontinuous
			// factors; plateau windows must match the analytic mean to the
			// reference quadrature's own resolution.
			tol := 2e-3
			if a < sched.Start+sched.Ramp && b > sched.Start {
				tol = 6e-3
			}
			if math.Abs(got-want) > tol {
				t.Fatalf("%s: MeanIntensity(%v, %v) = %v, quadrature %v", name, a, b, got, want)
			}
		}
	}
}

// TestMeanIntensitySteadyUnchanged pins the strategy-free path against the
// closed-form trapezoid: the cloudsim block model integrated through this
// arithmetic before it moved here, and its exact-fidelity property rests on
// it staying bit-identical.
func TestMeanIntensitySteadyUnchanged(t *testing.T) {
	s := Schedule{Kind: Cleanse, Start: 100, Ramp: 15, Stop: 400}
	cases := []struct{ a, b, want float64 }{
		{0, 100, 0},
		{100, 115, 0.5},
		{100, 130, (7.5 + 15) / 30},
		{115, 200, 1},
		{390, 410, 0.5},
		{400, 500, 0},
	}
	for _, c := range cases {
		if got := s.MeanIntensity(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("MeanIntensity(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestScheduleEnvDegenerateBurstsNoNaN is the regression test for the
// quiesced-path NaN fix: degenerate strategy knobs (zero-duration bursts,
// zero-length cycles, NaN factors) and a NaN peak must never leak NaN or
// out-of-range multipliers into the contention environment.
func TestScheduleEnvDegenerateBurstsNoNaN(t *testing.T) {
	degenerate := []Strategy{
		DutyCycle{},
		DutyCycle{On: 0, Off: 0, Phase: 5},
		PeriodMimic{},
		PeriodMimic{Period: math.Inf(1), Duty: 0.5, Cycles: 1},
		NewCoordinated(0, 0),
		ReprofileTimed{Every: 10, Quiet: 10},
		nanStrategy{},
	}
	for i, st := range degenerate {
		for _, peak := range []float64{0, 0.5, 1, 2, -1, math.NaN()} {
			sched := Schedule{Kind: BusLock, Start: 10, Ramp: 5, Peak: peak, Strategy: st}
			for _, tt := range []float64{0, 9.999, 10, 12.5, 15, 1e6} {
				for _, q := range []bool{false, true} {
					env := sched.Env(tt, q)
					for _, v := range []float64{env.BusLock, env.Cleanse} {
						if math.IsNaN(v) || v < 0 || v > 1 {
							t.Fatalf("strategy %d peak=%v t=%v quiesced=%v: env multiplier %v out of range",
								i, peak, tt, q, v)
						}
					}
					if q && (env.BusLock != 0 || env.Cleanse != 0) {
						t.Fatalf("strategy %d: quiesced attacker still attacking: %+v", i, env)
					}
				}
			}
		}
	}
}

// TestIntensityZeroAlloc pins the per-sample intensity path at zero heap
// allocations for every named strategy: it runs once per telemetry sample
// on every attacked stream, so a single escape here multiplies into GC
// pressure across the whole generator plane.
func TestIntensityZeroAlloc(t *testing.T) {
	for _, name := range StrategyNames() {
		st, err := NamedStrategy(name, StrategyParams{})
		if err != nil {
			t.Fatal(err)
		}
		sched := Schedule{Kind: BusLock, Start: 300, Ramp: 10, Peak: 0.8, Strategy: st}
		at := 300.0
		allocs := testing.AllocsPerRun(1000, func() {
			sched.Intensity(at)
			sched.MeanIntensity(at, at+0.5)
			at += 0.7
		})
		if allocs != 0 {
			t.Errorf("strategy %q: intensity path allocates %.1f per sample, want 0", name, allocs)
		}
	}
}

// nanStrategy models a buggy third-party strategy whose knobs divide by
// zero; the schedule must sanitize it.
type nanStrategy struct{}

func (nanStrategy) Name() string                    { return "nan" }
func (nanStrategy) Factor(float64) float64          { return math.NaN() }
func (nanStrategy) MeanFactor(_, _ float64) float64 { return math.NaN() }

// TestNamedStrategy pins name round-trips and the tuning knobs that named
// construction derives from the detector geometry.
func TestNamedStrategy(t *testing.T) {
	for _, name := range StrategyNames() {
		st, err := NamedStrategy(name, StrategyParams{})
		if err != nil {
			t.Fatalf("NamedStrategy(%q): %v", name, err)
		}
		if name == StrategySteady {
			if st != nil {
				t.Fatalf("steady must be nil (unmodulated), got %T", st)
			}
			continue
		}
		if st == nil || st.Name() != name {
			t.Fatalf("NamedStrategy(%q) = %v", name, st)
		}
	}
	if _, err := NamedStrategy("warp-core", StrategyParams{}); err == nil {
		t.Fatal("unknown strategy must error")
	}
	// The duty cycle must duck under the configured streak, not Table 1's.
	d, err := NamedStrategy(StrategyDutyCycle, StrategyParams{WindowStep: 0.5, HC: 45})
	if err != nil {
		t.Fatal(err)
	}
	if dc := d.(DutyCycle); dc.On != float64(45-1-streakGuardWindows)*0.5 {
		t.Fatalf("duty cycle not tuned to H_C=45: %+v", dc)
	}
	// The mimic must phase-lock to the victim period passed in.
	m, err := NamedStrategy(StrategyPeriodMimic, StrategyParams{VictimPeriod: 8.5})
	if err != nil {
		t.Fatal(err)
	}
	if pm := m.(PeriodMimic); pm.Period != 8.5 || !pm.Estimated || pm.Cycles != 1 {
		t.Fatalf("mimic not locked to victim period: %+v", pm)
	}
}

// TestEstimateVictimPeriod checks the estimator-backed mimic construction
// recovers a planted period from MA telemetry and falls back cleanly on
// noise-free short traces.
func TestEstimateVictimPeriod(t *testing.T) {
	const step = 0.5
	rng := randx.Derive(7, 7)
	ma := make([]float64, 400)
	for i := range ma {
		tt := float64(i) * step
		ma[i] = 100 + 12*math.Sin(2*math.Pi*tt/8.5) + rng.Uniform(-1, 1)
	}
	sec, ok := EstimateVictimPeriod(ma, step)
	if !ok {
		t.Fatal("planted 8.5 s period not found")
	}
	if math.Abs(sec-8.5) > 1.0 {
		t.Fatalf("estimated period %v s, want ≈ 8.5", sec)
	}
	m := MimicVictim(ma, step, 0.3, 0.5, 30)
	if !m.Estimated || math.Abs(m.Period-sec) > 1e-9 {
		t.Fatalf("MimicVictim not estimator-backed: %+v", m)
	}
	if m.Duty*m.Period > DutyCycleBelowStreak(0.5, 30).On+1e-9 {
		t.Fatalf("mimic burst %v s exceeds streak budget", m.Duty*m.Period)
	}
	if _, ok := EstimateVictimPeriod(ma[:4], step); ok {
		t.Fatal("short trace must fall back")
	}
}
